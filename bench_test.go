// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation (the E1..E16 index in
// DESIGN.md §3), plus the DESIGN.md §5 ablations.
//
// Each benchmark runs the corresponding experiment driver over a shared
// fleet simulation and reports the headline numbers via b.ReportMetric,
// so `go test -bench=. -benchmem` regenerates every artifact:
//
//	go test -bench=Fig1 -benchtime=1x .
//
// The expensive part — simulating the fleet — happens once per seed and
// is shared across benchmarks; the reported metrics are the same values
// cmd/reproduce prints (EXPERIMENTS.md records them against the paper).
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/experiments"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/simnet"
	"repro/internal/whitelist"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchRun  *experiments.Run
)

// sharedRun simulates the benchmark fleet once.
func sharedRun(b *testing.B) *experiments.Run {
	b.Helper()
	benchOnce.Do(func() {
		benchRun = experiments.NewRun(experiments.Quick(42))
	})
	return benchRun
}

// BenchmarkFig1Lifecycle regenerates Figure 1 (lifecycle per 1,000
// MTA-IN emails) and the §2 drop-reason table. Paper: 757 dropped, 31
// white, 4 black, 208 gray, 48 challenges per 1,000.
func BenchmarkFig1Lifecycle(b *testing.B) {
	r := sharedRun(b)
	var lc experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		lc = experiments.Lifecycle(r)
	}
	b.ReportMetric(lc.Per1000.Dropped, "dropped/1000")
	b.ReportMetric(lc.Per1000.White, "white/1000")
	b.ReportMetric(lc.Per1000.Gray, "gray/1000")
	b.ReportMetric(lc.Per1000.Challenges, "challenges/1000")
}

// BenchmarkFig2MTAIn regenerates Figure 2 (MTA-IN treatment). Paper:
// >75% dropped; unknown recipient 62.36% of incoming.
func BenchmarkFig2MTAIn(b *testing.B) {
	r := sharedRun(b)
	var lc experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		lc = experiments.Lifecycle(r)
	}
	b.ReportMetric(lc.Per1000.Dropped/10, "%dropped")
	b.ReportMetric(lc.DropReasons[core.UnknownRecipient]*100, "%unknown-rcpt")
	b.ReportMetric(lc.DropReasons[core.Unresolvable]*100, "%unresolvable")
}

// BenchmarkFig3EngineCategories regenerates Figure 3 (gray-spool
// categorisation, closed vs open relay). Paper: 54% filter-dropped, 28%
// challenged; open relays +9% challenges.
func BenchmarkFig3EngineCategories(b *testing.B) {
	r := sharedRun(b)
	var lc experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		lc = experiments.Lifecycle(r)
	}
	b.ReportMetric(lc.GrayBreakdown.FilterDropped*100, "%gray-filtered")
	b.ReportMetric(lc.GrayBreakdown.Challenged*100, "%gray-challenged")
	b.ReportMetric(lc.OpenRelayGray.Challenged*100, "%gray-challenged-openrelay")
}

// BenchmarkTable1GeneralStats regenerates Table 1 (general statistics).
func BenchmarkTable1GeneralStats(b *testing.B) {
	r := sharedRun(b)
	var g experiments.GeneralStats
	for i := 0; i < b.N; i++ {
		g = experiments.General(r)
	}
	b.ReportMetric(float64(g.TotalIncoming), "incoming")
	b.ReportMetric(float64(g.ChallengesSent), "challenges")
	b.ReportMetric(float64(g.SolvedCaptchas), "solved")
	b.ReportMetric(float64(g.DroppedByFilters), "filter-drops")
}

// BenchmarkFig4aChallengeDelivery regenerates Figure 4(a) (challenge
// delivery status). Paper: 49% delivered; 71.7% of undelivered are
// no-user bounces; 94% of delivered never opened.
func BenchmarkFig4aChallengeDelivery(b *testing.B) {
	r := sharedRun(b)
	var ds experiments.DeliveryStatusResult
	for i := 0; i < b.N; i++ {
		ds = experiments.DeliveryStatus(r)
	}
	b.ReportMetric(ds.DeliveredFrac*100, "%delivered")
	b.ReportMetric(ds.BouncedNoUser*100, "%bounced-no-user")
	b.ReportMetric(ds.NeverOpened*100, "%never-opened")
	b.ReportMetric(ds.SolvedFrac*100, "%solved")
}

// BenchmarkFig4bCaptchaTries regenerates Figure 4(b) (attempts to solve
// the CAPTCHA). Paper: never more than five.
func BenchmarkFig4bCaptchaTries(b *testing.B) {
	r := sharedRun(b)
	var ct experiments.CaptchaTriesResult
	for i := 0; i < b.N; i++ {
		ct = experiments.CaptchaTries(r)
	}
	if len(ct.Tries) > 0 {
		b.ReportMetric(ct.Tries[0]*100, "%first-try")
	}
	b.ReportMetric(float64(ct.MaxTries), "max-tries")
}

// BenchmarkFig5Correlations regenerates Figure 5 (per-company
// correlation matrix). Paper: reflection uncorrelated with size.
func BenchmarkFig5Correlations(b *testing.B) {
	r := sharedRun(b)
	var co experiments.CorrelationResult
	for i := 0; i < b.N; i++ {
		co = experiments.Correlations(r)
	}
	if v, ok := co.Matrix.Get("users", "emails"); ok {
		b.ReportMetric(v, "corr-users-emails")
	}
	if v, ok := co.Matrix.Get("reflection", "users"); ok {
		b.ReportMetric(v, "corr-reflection-users")
	}
	if v, ok := co.Matrix.Get("reflection", "white"); ok {
		b.ReportMetric(v, "corr-reflection-white")
	}
}

// BenchmarkFig6SpamClustering regenerates Figure 6 (campaign clusters)
// and the §4.1 spurious-delivery rate (paper: ~1 per 10,000 challenges).
func BenchmarkFig6SpamClustering(b *testing.B) {
	r := sharedRun(b)
	var cl experiments.ClusteringResult
	for i := 0; i < b.N; i++ {
		cl = experiments.Clustering(r)
	}
	b.ReportMetric(float64(cl.Stats.Clusters), "clusters")
	b.ReportMetric(float64(cl.Stats.WithSolved), "clusters-with-solve")
	b.ReportMetric(cl.Stats.LowSimBounced*100, "%lowsim-bounced")
	b.ReportMetric(cl.SpuriousPerChallenge*10000, "spurious-per-10k")
}

// BenchmarkFig7WhitelistDelayCDF regenerates Figure 7 (delivery-delay
// CDFs). Paper: 30% <5min, 50% <30min for captcha-whitelisted.
func BenchmarkFig7WhitelistDelayCDF(b *testing.B) {
	r := sharedRun(b)
	var dc experiments.DelayCDFResult
	for i := 0; i < b.N; i++ {
		dc = experiments.DelayCDF(r)
	}
	b.ReportMetric(dc.CaptchaUnder5Min*100, "%captcha<5m")
	b.ReportMetric(dc.CaptchaUnder30Min*100, "%captcha<30m")
	b.ReportMetric(dc.DigestUnder3Days*100, "%digest<3d")
}

// BenchmarkFig8SolveTimeDist regenerates Figure 8 (solve-time
// distribution). Paper: challenges unsolved after 4h stay unsolved.
func BenchmarkFig8SolveTimeDist(b *testing.B) {
	r := sharedRun(b)
	var st experiments.SolveTimeResult
	for i := 0; i < b.N; i++ {
		st = experiments.SolveTimeDist(r)
	}
	b.ReportMetric(st.Under4HFrac*100, "%solved<4h")
	b.ReportMetric(float64(st.Solves), "solves")
}

// BenchmarkFig9WhitelistChurn regenerates Figure 9 (whitelist change
// rate). Paper: 51.1% of changed whitelists gained 1-10 entries/60d;
// mean churn 0.3 entries/user/day.
func BenchmarkFig9WhitelistChurn(b *testing.B) {
	r := sharedRun(b)
	var ch experiments.ChurnResult
	for i := 0; i < b.N; i++ {
		ch = experiments.WhitelistChurn(r)
	}
	fr := ch.Hist.Fractions()
	b.ReportMetric(fr[0]*100, "%bucket-1-10")
	b.ReportMetric(ch.MeanNewPerUserDay, "new-entries/user/day")
}

// BenchmarkFig10DailyPending regenerates Figure 10 (daily digest-size
// series for three archetype users).
func BenchmarkFig10DailyPending(b *testing.B) {
	r := sharedRun(b)
	var ps []experiments.PendingSeries
	for i := 0; i < b.N; i++ {
		ps = experiments.DailyPending(r)
	}
	if len(ps) == 3 {
		b.ReportMetric(ps[0].Mean, "heavy-user-mean")
		b.ReportMetric(ps[1].Mean, "median-user-mean")
		b.ReportMetric(ps[2].Mean, "light-user-mean")
	}
}

// BenchmarkFig11Blacklisting regenerates Figure 11 (server blacklisting
// vs challenge volume). Paper: 75% never listed; no correlation.
func BenchmarkFig11Blacklisting(b *testing.B) {
	r := sharedRun(b)
	var bl experiments.BlacklistResult
	for i := 0; i < b.N; i++ {
		bl = experiments.Blacklisting(r)
	}
	b.ReportMetric(float64(bl.NeverListed)/float64(len(bl.Rows))*100, "%never-listed")
	b.ReportMetric(bl.CorrSizeListing, "corr-size-listing")
	b.ReportMetric(float64(bl.TrapHits), "trap-hits")
}

// BenchmarkFig12SPFValidation regenerates Figure 12 (offline SPF
// what-if). Paper: removes ~2.5% of bad challenges, costs 0.25% of
// solved ones.
func BenchmarkFig12SPFValidation(b *testing.B) {
	r := sharedRun(b)
	var sp experiments.SPFResult
	for i := 0; i < b.N; i++ {
		sp = experiments.SPFWhatIf(r)
	}
	b.ReportMetric(sp.BadRemoved*100, "%bad-removed")
	b.ReportMetric(sp.SolvedLost*100, "%solved-lost")
}

// BenchmarkScalarRatios regenerates the §3 scalars: reflection ratio R
// (paper 19.3% / 4.8%), reflected traffic RT (2.5%), backscatter β
// (8.7% / 2.1%), one challenge per ~21 emails.
func BenchmarkScalarRatios(b *testing.B) {
	r := sharedRun(b)
	var rt experiments.Ratios
	for i := 0; i < b.N; i++ {
		rt = experiments.ComputeRatios(r)
	}
	b.ReportMetric(rt.ReflectionCR*100, "%R-at-CR")
	b.ReportMetric(rt.ReflectionMTA*100, "%R-at-MTA")
	b.ReportMetric(rt.ReflectedRT*100, "%RT")
	b.ReportMetric(rt.EmailsPerChal, "emails-per-challenge")
	b.ReportMetric(rt.BackscatterCR*100, "%beta-at-CR")
}

// BenchmarkDiscussionSummary regenerates the §6 summary scalars: inbox
// composition (paper: 94% pre-whitelisted), >1-day delay share (0.6%),
// and the useless-challenge fraction (~95%).
func BenchmarkDiscussionSummary(b *testing.B) {
	r := sharedRun(b)
	var d experiments.DiscussionResult
	for i := 0; i < b.N; i++ {
		d = experiments.Discussion(r)
	}
	b.ReportMetric(d.InboxWhitelisted*100, "%inbox-whitelisted")
	b.ReportMetric(d.DelayedOverDay*100, "%delayed>1d")
	b.ReportMetric(d.ChallengesUseless*100, "%challenges-useless")
}

// BenchmarkAblationSplitMTAOut measures the §5.1 design choice: split
// challenge/user-mail IPs shield user mail from listing.
func BenchmarkAblationSplitMTAOut(b *testing.B) {
	r := sharedRun(b)
	var ab experiments.SplitMTAOutAblation
	for i := 0; i < b.N; i++ {
		ab = experiments.SplitAblation(r)
	}
	b.ReportMetric(ab.SharedListedFrac*100, "%shared-mailip-listed")
	b.ReportMetric(ab.SplitListedFrac*100, "%split-mailip-listed")
}

// BenchmarkAblationFilters measures each auxiliary filter's marginal
// contribution by comparing fleets with one filter knocked out. The
// paper's Table 1 ordering (RBL > rDNS > AV drops) should hold.
func BenchmarkAblationFilters(b *testing.B) {
	r := sharedRun(b)
	var lc experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		lc = experiments.Lifecycle(r)
	}
	b.ReportMetric(lc.FilterShares["rbl"]*100, "%share-rbl")
	b.ReportMetric(lc.FilterShares["reverse-dns"]*100, "%share-rdns")
	b.ReportMetric(lc.FilterShares["antivirus"]*100, "%share-av")
}

// BenchmarkAblationSPFOnline runs the §5.2 configuration question as an
// online ablation: two identically-seeded fleets, one with the SPF
// filter in the engine chain. Paper (offline estimate): SPF removes
// ~2.5% of bad challenges at a 0.25% cost to solved ones.
func BenchmarkAblationSPFOnline(b *testing.B) {
	var res experiments.SPFOnlineResult
	for i := 0; i < b.N; i++ {
		res = experiments.SPFOnline(7, 6, 4)
	}
	b.ReportMetric(res.ChallengeReduction*100, "%challenge-reduction")
	b.ReportMetric(res.SolvedLost*100, "%solved-lost")
	b.ReportMetric(float64(res.SPFDrops), "spf-drops")
}

// BenchmarkAblationGreylist runs the greylisting ablation: an SMTP
// greylist in front of the engines cuts challenge volume (and therefore
// backscatter and trap exposure) because botnet cannons do not retry
// after a 451, while wanted mail is only delayed.
func BenchmarkAblationGreylist(b *testing.B) {
	var res experiments.GreylistResult
	for i := 0; i < b.N; i++ {
		res = experiments.GreylistAblation(7, 6, 4)
	}
	b.ReportMetric(res.ChallengeReduction*100, "%challenge-reduction")
	b.ReportMetric(float64(res.TrapHitsBaseline), "trap-hits-base")
	b.ReportMetric(float64(res.TrapHitsWithGrey), "trap-hits-grey")
}

// BenchmarkAblationRateCap measures the §6 attack mitigation: an hourly
// challenge cap bounds spamtrap exposure (and therefore blacklisting
// risk) at the cost of suppressing some legitimate challenges.
func BenchmarkAblationRateCap(b *testing.B) {
	var res experiments.RateCapResult
	for i := 0; i < b.N; i++ {
		res = experiments.RateCapAblation(7, 6, 4, 1)
	}
	b.ReportMetric(float64(res.ChallengesBaseline), "challenges-base")
	b.ReportMetric(float64(res.ChallengesCapped), "challenges-capped")
	b.ReportMetric(float64(res.TrapHitsBaseline), "trap-hits-base")
	b.ReportMetric(float64(res.TrapHitsCapped), "trap-hits-capped")
}

// BenchmarkSeedSensitivity runs three independently-seeded worlds and
// reports the cross-seed spread of the reflection ratio — the robustness
// analysis showing the reproduction's conclusions are mechanism-driven,
// not seed luck.
func BenchmarkSeedSensitivity(b *testing.B) {
	var s experiments.SensitivityResult
	for i := 0; i < b.N; i++ {
		s = experiments.Sensitivity(100, 3)
	}
	b.ReportMetric(s.Reflection.Mean()*100, "%R-mean")
	b.ReportMetric(s.Reflection.Std()*100, "%R-std")
	b.ReportMetric(s.NoUser.Mean()*100, "%nouser-mean")
}

// BenchmarkAblationReputation runs the sender-reputation ablation: two
// identically-seeded fleets, the second with per-company reputation
// stores feeding the adaptive filter stage. Reported: fast-path hit
// rate over the gray spool, probe invocations saved, and the challenge
// volume shift from dropping suspect senders before the probes.
func BenchmarkAblationReputation(b *testing.B) {
	var res experiments.ReputationResult
	for i := 0; i < b.N; i++ {
		res = experiments.ReputationAblation(7, 6, 4)
	}
	b.ReportMetric(res.FastPathRate*100, "%fast-path-of-gray")
	b.ReportMetric(float64(res.ProbesSaved), "probes-saved")
	b.ReportMetric(float64(res.ChallengesBaseline), "challenges-base")
	b.ReportMetric(float64(res.ChallengesWithRep), "challenges-rep")
	b.ReportMetric(float64(res.SuspectDrops), "suspect-drops")
}

// BenchmarkReputationLookup measures the lock-striped store under
// parallel readers: every goroutine scores senders spread across all
// shards, the contention profile of a busy MTA consulting reputation on
// every gray message.
func BenchmarkReputationLookup(b *testing.B) {
	clk := clock.NewSim(time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC))
	rep := reputation.NewStore(reputation.DefaultConfig(), clk)
	const nSenders = 4096
	senders := make([]mail.Address, nSenders)
	ips := make([]string, nSenders)
	for i := range senders {
		senders[i] = mail.MustParseAddress(fmt.Sprintf("s%04d@dom%02d.example", i, i%64))
		ips[i] = fmt.Sprintf("100.64.%d.%d", i/250, i%250+1)
		rep.Record(senders[i], ips[i], reputation.Delivered)
		rep.Record(senders[i], ips[i], reputation.Solved)
	}
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger goroutines across the key space so they collide on
		// shards the way independent SMTP sessions would.
		i := int(atomic.AddInt64(&next, 977))
		for pb.Next() {
			if _, err := rep.Lookup(senders[i%nSenders], ips[i%nSenders]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkEngineWithReputation measures the engine's gray-message path
// with the reputation fast path hot: concurrent deliveries from a
// trusted sender to rotating recipients, each skipping the probe chain.
func BenchmarkEngineWithReputation(b *testing.B) {
	clk := clock.NewSim(time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC))
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("letters.example", "198.51.100.5")
	rep := reputation.NewStore(reputation.DefaultConfig(), clk)
	eng := core.New(core.Config{
		Name:             "bench",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, filters.NewChain(
		filters.NewReputation(rep),
		filters.NewAntivirus(),
		filters.NewReverseDNS(dns),
	), whitelist.NewStore(clk), func(core.OutboundChallenge) {})
	eng.SetReputation(rep)
	const nUsers = 256
	users := make([]mail.Address, nUsers)
	for i := range users {
		users[i] = mail.MustParseAddress(fmt.Sprintf("u%03d@corp.example", i))
		eng.AddUser(users[i])
	}
	news := mail.MustParseAddress("news@letters.example")
	for i := 0; i < 4; i++ {
		rep.Record(news, "198.51.100.5", reputation.Solved)
	}
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(atomic.AddInt64(&next, 7841))
		for pb.Next() {
			msg := &mail.Message{
				ID:           mail.NewID("b"),
				EnvelopeFrom: news,
				Rcpt:         users[i%nUsers],
				Subject:      "weekly digest",
				Size:         4000,
				ClientIP:     "198.51.100.5",
				Received:     clk.Now(),
			}
			if v := eng.Receive(msg); v != core.Accepted {
				b.Fatalf("verdict %v", v)
			}
			i++
		}
	})
	b.StopTimer()
	m := eng.Metrics()
	if m.ReputationFastPath == 0 {
		b.Fatal("fast path never taken; benchmark is not measuring it")
	}
	b.ReportMetric(float64(m.ReputationFastPath)/float64(m.MTAIncoming)*100, "%fast-path")
}

// BenchmarkFleetSimulation measures raw simulation throughput: one full
// simulated day across a small fleet per iteration.
func BenchmarkFleetSimulation(b *testing.B) {
	r := sharedRun(b) // ensure world assembly is excluded from timing
	_ = r
	b.ReportAllocs()
	b.ResetTimer()
	run := experiments.NewRun(experiments.RunConfig{
		Seed: 7, Companies: 4, Days: 1, UserScale: 0.1, VolumeScale: 0.05,
	})
	for i := 0; i < b.N; i++ {
		run.Fleet.Run(1)
	}
	var incoming int64
	for _, c := range run.Fleet.Companies {
		incoming += c.Engine.Metrics().MTAIncoming
	}
	b.ReportMetric(float64(incoming)/float64(b.N+1), "msgs/day")
}

// BenchmarkChallengeStatusAggregation measures the analysis pipeline
// itself (records scan) rather than the simulation.
func BenchmarkChallengeStatusAggregation(b *testing.B) {
	r := sharedRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Fleet.Net.DeliveryStats()
	}
}

// Sanity: the shared bench run must reproduce the paper's qualitative
// findings; if calibration drifts, fail loudly rather than report
// nonsense metrics.
func TestBenchRunSanity(t *testing.T) {
	benchOnce.Do(func() {
		benchRun = experiments.NewRun(experiments.Quick(42))
	})
	r := benchRun
	rt := experiments.ComputeRatios(r)
	if rt.ReflectionCR < 0.08 || rt.ReflectionCR > 0.35 {
		t.Errorf("R at CR = %v, outside the paper's neighbourhood", rt.ReflectionCR)
	}
	ds := experiments.DeliveryStatus(r)
	if ds.Total == 0 || ds.Fractions[simnet.StatusPending] > 0.1 {
		t.Errorf("challenge records degenerate: %+v", ds)
	}
	ct := experiments.CaptchaTries(r)
	if ct.MaxTries > 5 {
		t.Errorf("max CAPTCHA tries = %d; the paper never saw more than five", ct.MaxTries)
	}
}

// quickFleetCfg builds the workload config matching the experiments
// Quick preset, with an explicit worker-pool size.
func quickFleetCfg(seed int64, workers int) workload.Config {
	q := experiments.Quick(seed)
	cfg := workload.DefaultConfig(seed, q.Companies)
	cfg.Workers = workers
	for i := range cfg.Profiles {
		p := &cfg.Profiles[i]
		p.Users = max(5, int(float64(p.Users)*q.UserScale))
		p.DailyVolume = max(100, int(float64(p.DailyVolume)*q.VolumeScale))
	}
	return cfg
}

// BenchmarkFleetParallel measures the epoch-barrier worker pool against
// the serial baseline on the same Quick-sized fleet. The timed region is
// Fleet.Run only (world assembly excluded); aggregate results are
// worker-count-invariant (TestWorkerCountInvariance in
// internal/experiments), so the sub-benchmarks differ in wall-clock
// only. cmd/bench records the same comparison to BENCH_fleet.json.
func BenchmarkFleetParallel(b *testing.B) {
	days := experiments.Quick(42).Days
	for _, workers := range []int{1, max(4, runtime.GOMAXPROCS(0))} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var msgs int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mail.ResetIDCounter()
				f := workload.NewFleet(quickFleetCfg(42, workers))
				b.StartTimer()
				f.Run(days)
				b.StopTimer()
				for _, c := range f.Companies {
					msgs += c.Engine.Metrics().MTAIncoming
				}
			}
			b.ReportMetric(float64(msgs)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}
