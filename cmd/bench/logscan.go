package main

// The -logscan mode: benchmark the parallel zero-allocation log
// analysis engine against the serial maillog.ParseAll baseline over a
// synthetic decision log, and record the sweep to BENCH_logscan.json.
// This is the measurement-pipeline twin of the fleet sweep — the paper
// crawled ~90M log events with Python + Postgres; the gate here holds
// the Go scanner to >=3x the serial parser at 4 workers (on hosts with
// >=4 CPUs) and <=2 allocations per event.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/logscan"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/workload"
)

// logscanResult is one measured scan of the synthetic log.
type logscanResult struct {
	// Workers is 0 for the serial maillog.ParseAll baseline row.
	Workers        int     `json:"workers"`
	WallClockSec   float64 `json:"wall_clock_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Speedup is this row's events/sec over the serial baseline's.
	Speedup float64 `json:"speedup"`
}

// logscanReport is the BENCH_logscan.json document.
type logscanReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUStarved bool   `json:"cpu_starved"`
	Seed       int64  `json:"seed"`
	// Events/Bytes/BadLines describe the synthetic log the sweep scanned.
	Events   int64 `json:"events"`
	Bytes    int64 `json:"bytes"`
	BadLines int64 `json:"bad_lines"`
	// Serial is the maillog.ParseAll baseline; Runs the parallel sweep.
	Serial logscanResult   `json:"serial"`
	Runs   []logscanResult `json:"runs"`
	// SpeedupW4 is the workers=4 row's speedup over serial — the gate's
	// input.
	SpeedupW4 float64 `json:"speedup_w4"`
}

// genScanLog simulates a fleet with the decision-log sink attached and
// returns at least targetEvents of rendered log. A short probe run
// calibrates how many simulated days the target needs, so the log size
// tracks the target across workload changes.
func genScanLog(seed int64, targetEvents int64) []byte {
	q := experiments.Quick(seed)
	run := func(days int) *bytes.Buffer {
		var buf bytes.Buffer
		buf.Grow(int(targetEvents) * 90)
		w := maillog.NewWriter(&buf)
		cfg := workload.DefaultConfig(seed, q.Companies)
		for i := range cfg.Profiles {
			p := &cfg.Profiles[i]
			p.Users = max(5, int(float64(p.Users)*q.UserScale))
			p.DailyVolume = max(100, int(float64(p.DailyVolume)*q.VolumeScale))
		}
		cfg.LogSink = w.Write
		mail.ResetIDCounter()
		f := workload.NewFleet(cfg)
		f.Run(days)
		if err := w.Flush(); err != nil {
			panic(err)
		}
		return &buf
	}
	probe := run(1)
	perDay := int64(bytes.Count(probe.Bytes(), []byte{'\n'}))
	if perDay == 0 {
		panic("probe run produced no log events")
	}
	days := int((targetEvents + perDay - 1) / perDay)
	if days <= 1 {
		return probe.Bytes()
	}
	return run(days).Bytes()
}

// measureScan times one scan of the log, returning the aggregate for
// the equality check. workers=0 runs the serial ParseAll baseline.
func measureScan(log []byte, workers int) (logscanResult, *maillog.Aggregate) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var agg *maillog.Aggregate
	var err error
	if workers == 0 {
		agg, err = maillog.ParseAll(bytes.NewReader(log))
	} else {
		agg, err = logscan.ScanReaderAt(bytes.NewReader(log), int64(len(log)), logscan.Options{Workers: workers})
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scan (workers=%d): %v\n", workers, err)
		os.Exit(1)
	}
	events := agg.Lines - agg.BadLines
	r := logscanResult{Workers: workers, WallClockSec: wall.Seconds()}
	if wall > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
	}
	if events > 0 {
		r.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
	}
	return r, agg
}

// runLogscan drives the -logscan mode: generate the log, run the
// serial baseline, sweep worker counts, verify every parallel aggregate
// equals the serial one, and write/check the report.
func runLogscan(seed int64, events int64, counts []int, out, check string) {
	numCPU := runtime.NumCPU()
	runtime.GOMAXPROCS(max(4, numCPU))
	maxWorkers := 0
	for _, w := range counts {
		maxWorkers = max(maxWorkers, w)
	}

	fmt.Fprintf(os.Stderr, "generating ~%d-event synthetic log (seed %d)...\n", events, seed)
	log := genScanLog(seed, events)

	rep := logscanReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     numCPU,
		CPUStarved: numCPU < maxWorkers,
		Seed:       seed,
		Bytes:      int64(len(log)),
	}
	if rep.CPUStarved {
		fmt.Fprintf(os.Stderr, "warning: sweep peaks at workers=%d but the host has %d CPU(s) — speedup figures measure time-sharing, not parallel scaling\n",
			maxWorkers, numCPU)
	}

	serial, want := measureScan(log, 0)
	rep.Serial = serial
	rep.Serial.Speedup = 1
	rep.Events = want.Lines - want.BadLines
	rep.BadLines = want.BadLines
	fmt.Fprintf(os.Stderr, "serial ParseAll: %d events, %.2fs wall, %.0f events/sec, %.2f allocs/event\n",
		rep.Events, serial.WallClockSec, serial.EventsPerSec, serial.AllocsPerEvent)

	for _, w := range counts {
		r, agg := measureScan(log, w)
		if !reflect.DeepEqual(agg, want) {
			fmt.Fprintf(os.Stderr, "FATAL: workers=%d aggregate differs from serial ParseAll — scanner is non-deterministic\n", w)
			os.Exit(1)
		}
		if serial.EventsPerSec > 0 {
			r.Speedup = r.EventsPerSec / serial.EventsPerSec
		}
		fmt.Fprintf(os.Stderr, "workers=%d: %.2fs wall, %.0f events/sec, %.2f allocs/event, %.2fx vs serial\n",
			w, r.WallClockSec, r.EventsPerSec, r.AllocsPerEvent, r.Speedup)
		rep.Runs = append(rep.Runs, r)
		if w == 4 {
			rep.SpeedupW4 = r.Speedup
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (speedup %.2fx at workers=4 over serial ParseAll)\n", out, rep.SpeedupW4)

	if check != "" {
		if err := checkLogscan(check, rep); err != nil {
			fmt.Fprintln(os.Stderr, "logscan check FAILED:", err)
			os.Exit(1)
		}
	}
}

// checkLogscan is the CI gate for the scanner: allocations per event
// must stay under the absolute 2.0 budget and within 10% of the
// committed baseline's best, and the workers=4 speedup over serial
// ParseAll must reach 3x — the last only on hosts with >= 4 CPUs,
// where the ratio measures parallelism rather than time-sharing.
func checkLogscan(baselinePath string, rep logscanReport) error {
	best := func(rs []logscanResult) float64 {
		b := 0.0
		for _, r := range rs {
			if r.AllocsPerEvent > 0 && (b == 0 || r.AllocsPerEvent < b) {
				b = r.AllocsPerEvent
			}
		}
		return b
	}
	fresh := best(rep.Runs)
	if fresh == 0 {
		return fmt.Errorf("no allocs/event figure in fresh sweep")
	}
	if fresh > 2.0 {
		return fmt.Errorf("allocs/event %.2f over the 2.0 budget", fresh)
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base logscanReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	// Allow 10% relative plus a 0.25 absolute cushion: near zero
	// allocs/event the figure is dominated by fixed per-scan overhead
	// amortized over the log size, while a real regression (say a map
	// minted per event) costs >= 1.0.
	if baseAllocs := best(base.Runs); baseAllocs > 0 && fresh > max(baseAllocs*1.10, baseAllocs+0.25) {
		return fmt.Errorf("allocs/event regressed: %.2f fresh vs %.2f baseline (>10%% + 0.25)", fresh, baseAllocs)
	}
	fmt.Fprintf(os.Stderr, "logscan check: %.2f allocs/event within budget\n", fresh)

	if rep.SpeedupW4 > 0 {
		if rep.NumCPU < 4 {
			fmt.Fprintf(os.Stderr, "logscan check: speedup gate SKIPPED (cpu-starved host: num_cpu=%d < 4, measured %.2fx)\n",
				rep.NumCPU, rep.SpeedupW4)
		} else if rep.SpeedupW4 < 3.0 {
			return fmt.Errorf("speedup(workers=4) %.2fx < 3.0 over serial ParseAll", rep.SpeedupW4)
		} else {
			fmt.Fprintf(os.Stderr, "logscan check: speedup(workers=4) %.2fx ok\n", rep.SpeedupW4)
		}
	}
	return nil
}
