// Command bench measures fleet-simulation throughput and records the
// worker-count sweep to BENCH_fleet.json. For each fleet shape (company
// count) it runs the same fleet once per worker configuration (the
// aggregate results are worker-count-invariant, so only wall-clock
// differs) and reports wall-clock, messages/second, allocations/message,
// mutex-contention time per message, the resolver cache hit rates and
// the sparse-barrier/steal-scheduler counters.
//
// Usage:
//
//	go run ./cmd/bench [-seed 42] [-days 7] [-workers N] [-sweep 1,2,4,8]
//	    [-shapes 12,48,96] [-out BENCH_fleet.json] [-check BENCH_fleet.json]
//	    [-gate] [-cpuprofile f] [-memprofile f] [-mutexprofile f] [-blockprofile f]
//
// The -check flag compares the fresh allocations/message figure against
// a committed baseline report and exits non-zero on a >10% regression —
// the CI smoke gate against allocation creep on the hot path. The -gate
// flag enforces the scaling acceptance floors: RBL cache hit rate >=
// 0.85 on every shape, and speedup(workers=4) >= 2.0 on the 48-company
// shape — the latter only on hosts with >= 4 CPUs (on a starved
// container the ratio measures time-sharing, not parallelism, and the
// check is reported as skipped).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/mail"
	"repro/internal/workload"
)

// result is one measured fleet run.
type result struct {
	Workers      int     `json:"workers"`
	Companies    int     `json:"companies"`
	Days         int     `json:"days"`
	Messages     int64   `json:"messages"`
	WallClockSec float64 `json:"wall_clock_sec"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	// MutexWaitNsPerMsg is the per-message share of cumulative time
	// goroutines spent blocked on mutexes during the run, from the
	// /sync/mutex/wait/total:seconds runtime metric — the direct measure
	// of how contention-free the hot path is.
	MutexWaitNsPerMsg float64 `json:"mutex_wait_ns_per_msg"`
	DNSCacheRate      float64 `json:"dns_cache_hit_rate"`
	DNSLookups        int64   `json:"dns_cache_lookups"`
	RBLCacheRate      float64 `json:"rbl_cache_hit_rate"`
	RBLLookups        int64   `json:"rbl_cache_lookups"`
	// Sparse-synchronization counters (workload.SyncStats): how many
	// hourly barriers actually fired vs were skipped, and how many lane
	// work items the pool stole across workers.
	BarriersFired   int64 `json:"barriers_fired"`
	BarriersSkipped int64 `json:"barriers_skipped"`
	Steals          int64 `json:"steals"`
}

// report is the BENCH_fleet.json document.
type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the effective value the sweep ran under (bench
	// raises it to at least 4 so multi-worker runs can schedule).
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the host's usable logical CPU count, captured before the
	// GOMAXPROCS raise so the two fields can disagree honestly.
	NumCPU int `json:"num_cpu"`
	// CPUStarved flags a container whose CPU count is below the sweep's
	// worker counts: multi-worker rows then measure time-sharing overhead,
	// not parallel speedup, and scaling gates are skipped.
	CPUStarved bool     `json:"cpu_starved"`
	Seed       int64    `json:"seed"`
	Runs       []result `json:"runs"`
	// Speedup is best-workers msgs/sec over the workers=1 baseline on the
	// primary (first) shape.
	Speedup float64 `json:"speedup"`
	// Shapes summarises each fleet size in the sweep.
	Shapes []shapeSummary `json:"shapes"`
}

// shapeSummary is the per-fleet-size digest of the sweep.
type shapeSummary struct {
	Companies int `json:"companies"`
	// Speedup is the best multi-worker rate over the shape's workers=1
	// baseline; SpeedupW4 is the workers=4 row specifically (the CI
	// scaling gate's input).
	Speedup      float64 `json:"speedup"`
	SpeedupW4    float64 `json:"speedup_w4"`
	RBLCacheRate float64 `json:"rbl_cache_hit_rate"`
}

// mutexWaitSeconds reads the cumulative mutex-wait metric.
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindFloat64 {
		return sample[0].Value.Float64()
	}
	return 0
}

func measure(seed int64, days, companies, workers int, userScale, volumeScale float64) result {
	cfg := workload.DefaultConfig(seed, companies)
	cfg.Workers = workers
	for i := range cfg.Profiles {
		p := &cfg.Profiles[i]
		p.Users = max(5, int(float64(p.Users)*userScale))
		p.DailyVolume = max(100, int(float64(p.DailyVolume)*volumeScale))
	}
	mail.ResetIDCounter()
	f := workload.NewFleet(cfg)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	waitBefore := mutexWaitSeconds()
	start := time.Now()
	f.Run(days)
	wall := time.Since(start)
	waitAfter := mutexWaitSeconds()
	runtime.ReadMemStats(&after)

	var msgs int64
	for _, c := range f.Companies {
		msgs += c.Engine.Metrics().MTAIncoming
	}
	r := result{
		Workers:      workers,
		Companies:    companies,
		Days:         days,
		Messages:     msgs,
		WallClockSec: wall.Seconds(),
	}
	if wall > 0 {
		r.MsgsPerSec = float64(msgs) / wall.Seconds()
	}
	if msgs > 0 {
		r.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64(msgs)
		r.MutexWaitNsPerMsg = (waitAfter - waitBefore) * 1e9 / float64(msgs)
	}
	if f.DNSCache != nil {
		st := f.DNSCache.Stats()
		r.DNSCacheRate = st.HitRate()
		r.DNSLookups = st.Lookups()
	}
	if f.RBLCache != nil {
		st := f.RBLCache.Stats()
		r.RBLCacheRate = st.HitRate()
		r.RBLLookups = st.Lookups()
	}
	sync := f.SyncStats()
	r.BarriersFired = sync.BarriersFired
	r.BarriersSkipped = sync.BarriersSkipped
	r.Steals = sync.Steals
	return r
}

// parseList parses "1,2,4,8" into a list of positive ints (worker
// counts or fleet shapes).
func parseList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// checkRegression compares fresh allocs/msg against a committed baseline
// report, returning an error when the best (lowest) fresh figure
// regresses more than 10% over the baseline's best.
func checkRegression(baselinePath string, runs []result) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	best := func(rs []result) float64 {
		b := 0.0
		for _, r := range rs {
			if r.AllocsPerMsg > 0 && (b == 0 || r.AllocsPerMsg < b) {
				b = r.AllocsPerMsg
			}
		}
		return b
	}
	baseAllocs, freshAllocs := best(base.Runs), best(runs)
	if baseAllocs == 0 || freshAllocs == 0 {
		return fmt.Errorf("missing allocs/msg figures (baseline %.2f, fresh %.2f)", baseAllocs, freshAllocs)
	}
	if freshAllocs > baseAllocs*1.10 {
		return fmt.Errorf("allocs/msg regressed: %.2f fresh vs %.2f baseline (>10%%)", freshAllocs, baseAllocs)
	}
	fmt.Fprintf(os.Stderr, "regression check ok: %.2f allocs/msg vs %.2f baseline\n", freshAllocs, baseAllocs)
	return nil
}

// gate enforces the scaling acceptance floors on a fresh report: RBL
// cache hit rate >= 0.85 on every shape always, speedup(workers=4) >=
// 2.0 on the 48-company shape only when the host has >= 4 CPUs.
func gate(rep report) error {
	for _, sh := range rep.Shapes {
		if sh.RBLCacheRate < 0.85 {
			return fmt.Errorf("rbl cache hit rate %.3f < 0.85 on %d-company shape", sh.RBLCacheRate, sh.Companies)
		}
	}
	for _, sh := range rep.Shapes {
		if sh.Companies != 48 || sh.SpeedupW4 == 0 {
			continue
		}
		if rep.NumCPU < 4 {
			fmt.Fprintf(os.Stderr, "gate: speedup check SKIPPED (cpu-starved host: num_cpu=%d < 4, measured %.2fx)\n",
				rep.NumCPU, sh.SpeedupW4)
			continue
		}
		if sh.SpeedupW4 < 2.0 {
			return fmt.Errorf("speedup(workers=4) %.2fx < 2.0 on 48-company shape", sh.SpeedupW4)
		}
		fmt.Fprintf(os.Stderr, "gate: speedup(workers=4) %.2fx on 48-company shape ok\n", sh.SpeedupW4)
	}
	return nil
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	days := flag.Int("days", 0, "simulated days (0 = Quick preset)")
	companies := flag.Int("companies", 0, "fleet size (0 = Quick preset)")
	workers := flag.Int("workers", 0, "single parallel worker count (overrides -sweep tail)")
	sweep := flag.String("sweep", "1,2,4,8", "comma-separated worker counts to run")
	shapes := flag.String("shapes", "12,48,96", "comma-separated fleet sizes to sweep (-companies overrides with a single shape)")
	out := flag.String("out", "", "output file (default BENCH_fleet.json, or BENCH_logscan.json with -logscan)")
	check := flag.String("check", "", "baseline report to compare allocation figures against (exit 1 on >10% regression)")
	logscanMode := flag.Bool("logscan", false, "benchmark the parallel log scanner instead of the fleet")
	logscanEvents := flag.Int64("logscan-events", 1_000_000, "synthetic log size for -logscan, in events")
	doGate := flag.Bool("gate", false, "enforce scaling floors (rbl hit rate >= 0.85; speedup(w=4) >= 2.0 on 48 companies when num_cpu >= 4)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile of the sweep to file")
	memprofile := flag.String("memprofile", "", "write allocation profile to file after the sweep")
	mutexprofile := flag.String("mutexprofile", "", "write mutex-contention profile to file after the sweep")
	blockprofile := flag.String("blockprofile", "", "write blocking profile to file after the sweep")
	flag.Parse()

	if *logscanMode {
		counts, err := parseList(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -sweep:", err)
			os.Exit(2)
		}
		if *out == "" {
			*out = "BENCH_logscan.json"
		}
		runLogscan(*seed, *logscanEvents, counts, *out, *check)
		return
	}
	if *out == "" {
		*out = "BENCH_fleet.json"
	}

	q := experiments.Quick(*seed)
	if *days <= 0 {
		*days = q.Days
	}
	shapeList := []int{q.Companies}
	if *companies > 0 {
		shapeList = []int{*companies}
	} else if *shapes != "" {
		var err error
		if shapeList, err = parseList(*shapes); err != nil {
			fmt.Fprintln(os.Stderr, "bad -shapes:", err)
			os.Exit(2)
		}
	}

	// Capture the host CPU count before touching GOMAXPROCS so the
	// report's num_cpu states the actual hardware budget.
	numCPU := runtime.NumCPU()

	// Give the parallel runs schedulable Ps even on small containers:
	// the sweep's point is lock-contention behaviour at 2-8 workers, and
	// GOMAXPROCS=1 would serialise them into a misleading baseline. The
	// effective value is recorded in the report; on a CPU-starved host
	// the multi-worker rows measure scheduling overhead plus per-message
	// cost, not true parallel speedup — cpu_starved says so.
	runtime.GOMAXPROCS(max(4, numCPU))
	eff := runtime.GOMAXPROCS(0)

	counts, err := parseList(*sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -sweep:", err)
		os.Exit(2)
	}
	if *workers > 0 {
		counts = []int{1, *workers}
	}
	maxWorkers := 0
	for _, w := range counts {
		maxWorkers = max(maxWorkers, w)
	}

	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1000)
	}
	if *cpuprofile != "" {
		fp, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer fp.Close()
		if err := pprof.StartCPUProfile(fp); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: eff,
		NumCPU:     numCPU,
		CPUStarved: numCPU < maxWorkers,
		Seed:       *seed,
	}
	if rep.CPUStarved {
		fmt.Fprintf(os.Stderr, "warning: sweep peaks at workers=%d but the host has %d CPU(s) — lanes will time-share, speedup figures are not parallel scaling\n",
			maxWorkers, numCPU)
	}
	for _, nc := range shapeList {
		var base, best, w4 float64
		var rblRate float64
		for _, w := range counts {
			if w > numCPU {
				fmt.Fprintf(os.Stderr, "warning: workers=%d > num_cpu=%d — starved run\n", w, numCPU)
			}
			fmt.Fprintf(os.Stderr, "running fleet: %d companies x %d days, workers=%d...\n",
				nc, *days, w)
			r := measure(*seed, *days, nc, w, q.UserScale, q.VolumeScale)
			fmt.Fprintf(os.Stderr, "  %.2fs wall, %.0f msgs/sec, %.1f allocs/msg, %.0f mutex-ns/msg, dns hit %.3f, rbl hit %.3f, barriers %d/%d, steals %d\n",
				r.WallClockSec, r.MsgsPerSec, r.AllocsPerMsg, r.MutexWaitNsPerMsg, r.DNSCacheRate, r.RBLCacheRate,
				r.BarriersFired, r.BarriersFired+r.BarriersSkipped, r.Steals)
			rep.Runs = append(rep.Runs, r)
			switch {
			case w == 1:
				base = r.MsgsPerSec
				rblRate = r.RBLCacheRate
			default:
				best = max(best, r.MsgsPerSec)
			}
			if w == 4 {
				w4 = r.MsgsPerSec
			}
		}
		sh := shapeSummary{Companies: nc, RBLCacheRate: rblRate}
		if base > 0 {
			sh.Speedup = best / base
			sh.SpeedupW4 = w4 / base
		}
		rep.Shapes = append(rep.Shapes, sh)
		fmt.Fprintf(os.Stderr, "shape %d: speedup %.2fx (w=4: %.2fx), rbl hit rate %.3f\n",
			nc, sh.Speedup, sh.SpeedupW4, sh.RBLCacheRate)
	}
	if len(rep.Shapes) > 0 {
		rep.Speedup = rep.Shapes[0].Speedup
	}

	if *memprofile != "" {
		fp, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(fp, 0); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		fp.Close()
	}
	if *mutexprofile != "" {
		fp, err := os.Create(*mutexprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutexprofile:", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("mutex").WriteTo(fp, 0); err != nil {
			fmt.Fprintln(os.Stderr, "mutexprofile:", err)
		}
		fp.Close()
	}
	if *blockprofile != "" {
		fp, err := os.Create(*blockprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blockprofile:", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("block").WriteTo(fp, 0); err != nil {
			fmt.Fprintln(os.Stderr, "blockprofile:", err)
		}
		fp.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (speedup %.2fx over workers=1)\n", *out, rep.Speedup)

	if *check != "" {
		if err := checkRegression(*check, rep.Runs); err != nil {
			fmt.Fprintln(os.Stderr, "regression check FAILED:", err)
			os.Exit(1)
		}
	}
	if *doGate {
		if err := gate(rep); err != nil {
			fmt.Fprintln(os.Stderr, "scaling gate FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "scaling gate ok")
	}
}
