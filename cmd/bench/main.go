// Command bench measures fleet-simulation throughput and records the
// worker-count sweep to BENCH_fleet.json. It runs the same Quick-sized
// fleet once per worker configuration (the aggregate results are
// worker-count-invariant, so only wall-clock differs) and reports
// wall-clock, messages/second, allocations/message, mutex-contention
// time per message and the resolver cache hit rates.
//
// Usage:
//
//	go run ./cmd/bench [-seed 42] [-days 7] [-workers N] [-sweep 1,2,4,8]
//	    [-out BENCH_fleet.json] [-check BENCH_fleet.json]
//	    [-cpuprofile f] [-memprofile f] [-mutexprofile f] [-blockprofile f]
//
// The -check flag compares the fresh allocations/message figure against
// a committed baseline report and exits non-zero on a >10% regression —
// the CI smoke gate against allocation creep on the hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/mail"
	"repro/internal/workload"
)

// result is one measured fleet run.
type result struct {
	Workers      int     `json:"workers"`
	Companies    int     `json:"companies"`
	Days         int     `json:"days"`
	Messages     int64   `json:"messages"`
	WallClockSec float64 `json:"wall_clock_sec"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	// MutexWaitNsPerMsg is the per-message share of cumulative time
	// goroutines spent blocked on mutexes during the run, from the
	// /sync/mutex/wait/total:seconds runtime metric — the direct measure
	// of how contention-free the hot path is.
	MutexWaitNsPerMsg float64 `json:"mutex_wait_ns_per_msg"`
	DNSCacheRate      float64 `json:"dns_cache_hit_rate"`
	DNSLookups        int64   `json:"dns_cache_lookups"`
	RBLCacheRate      float64 `json:"rbl_cache_hit_rate"`
	RBLLookups        int64   `json:"rbl_cache_lookups"`
}

// report is the BENCH_fleet.json document.
type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the effective value the sweep ran under (bench
	// raises it to at least 4 so multi-worker runs can schedule).
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Seed       int64    `json:"seed"`
	Runs       []result `json:"runs"`
	// Speedup is best-workers msgs/sec over the workers=1 baseline.
	Speedup float64 `json:"speedup"`
}

// mutexWaitSeconds reads the cumulative mutex-wait metric.
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindFloat64 {
		return sample[0].Value.Float64()
	}
	return 0
}

func measure(seed int64, days, companies, workers int, userScale, volumeScale float64) result {
	cfg := workload.DefaultConfig(seed, companies)
	cfg.Workers = workers
	for i := range cfg.Profiles {
		p := &cfg.Profiles[i]
		p.Users = max(5, int(float64(p.Users)*userScale))
		p.DailyVolume = max(100, int(float64(p.DailyVolume)*volumeScale))
	}
	mail.ResetIDCounter()
	f := workload.NewFleet(cfg)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	waitBefore := mutexWaitSeconds()
	start := time.Now()
	f.Run(days)
	wall := time.Since(start)
	waitAfter := mutexWaitSeconds()
	runtime.ReadMemStats(&after)

	var msgs int64
	for _, c := range f.Companies {
		msgs += c.Engine.Metrics().MTAIncoming
	}
	r := result{
		Workers:      workers,
		Companies:    companies,
		Days:         days,
		Messages:     msgs,
		WallClockSec: wall.Seconds(),
	}
	if wall > 0 {
		r.MsgsPerSec = float64(msgs) / wall.Seconds()
	}
	if msgs > 0 {
		r.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64(msgs)
		r.MutexWaitNsPerMsg = (waitAfter - waitBefore) * 1e9 / float64(msgs)
	}
	if f.DNSCache != nil {
		st := f.DNSCache.Stats()
		r.DNSCacheRate = st.HitRate()
		r.DNSLookups = st.Lookups()
	}
	if f.RBLCache != nil {
		st := f.RBLCache.Stats()
		r.RBLCacheRate = st.HitRate()
		r.RBLLookups = st.Lookups()
	}
	return r
}

// parseSweep parses "1,2,4,8" into a worker list.
func parseSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return out, nil
}

// checkRegression compares fresh allocs/msg against a committed baseline
// report, returning an error when the best (lowest) fresh figure
// regresses more than 10% over the baseline's best.
func checkRegression(baselinePath string, runs []result) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	best := func(rs []result) float64 {
		b := 0.0
		for _, r := range rs {
			if r.AllocsPerMsg > 0 && (b == 0 || r.AllocsPerMsg < b) {
				b = r.AllocsPerMsg
			}
		}
		return b
	}
	baseAllocs, freshAllocs := best(base.Runs), best(runs)
	if baseAllocs == 0 || freshAllocs == 0 {
		return fmt.Errorf("missing allocs/msg figures (baseline %.2f, fresh %.2f)", baseAllocs, freshAllocs)
	}
	if freshAllocs > baseAllocs*1.10 {
		return fmt.Errorf("allocs/msg regressed: %.2f fresh vs %.2f baseline (>10%%)", freshAllocs, baseAllocs)
	}
	fmt.Fprintf(os.Stderr, "regression check ok: %.2f allocs/msg vs %.2f baseline\n", freshAllocs, baseAllocs)
	return nil
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	days := flag.Int("days", 0, "simulated days (0 = Quick preset)")
	companies := flag.Int("companies", 0, "fleet size (0 = Quick preset)")
	workers := flag.Int("workers", 0, "single parallel worker count (overrides -sweep tail)")
	sweep := flag.String("sweep", "1,2,4,8", "comma-separated worker counts to run")
	out := flag.String("out", "BENCH_fleet.json", "output file")
	check := flag.String("check", "", "baseline BENCH_fleet.json to compare allocs/msg against (exit 1 on >10% regression)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile of the sweep to file")
	memprofile := flag.String("memprofile", "", "write allocation profile to file after the sweep")
	mutexprofile := flag.String("mutexprofile", "", "write mutex-contention profile to file after the sweep")
	blockprofile := flag.String("blockprofile", "", "write blocking profile to file after the sweep")
	flag.Parse()

	q := experiments.Quick(*seed)
	if *days <= 0 {
		*days = q.Days
	}
	if *companies <= 0 {
		*companies = q.Companies
	}

	// Give the parallel runs schedulable Ps even on small containers:
	// the sweep's point is lock-contention behaviour at 2-8 workers, and
	// GOMAXPROCS=1 would serialise them into a misleading baseline. The
	// effective value is recorded in the report; on a single-core host
	// the multi-worker rows measure scheduling overhead plus per-message
	// cost, not true parallel speedup — the warning below says so.
	eff := runtime.GOMAXPROCS(max(4, runtime.NumCPU()))
	eff = runtime.GOMAXPROCS(0)

	counts, err := parseSweep(*sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -sweep:", err)
		os.Exit(2)
	}
	if *workers > 0 {
		counts = []int{1, *workers}
	}

	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1000)
	}
	if *cpuprofile != "" {
		fp, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer fp.Close()
		if err := pprof.StartCPUProfile(fp); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: eff,
		NumCPU:     runtime.NumCPU(),
		Seed:       *seed,
	}
	for _, w := range counts {
		if w > eff {
			fmt.Fprintf(os.Stderr, "warning: workers=%d > GOMAXPROCS=%d — lanes will time-share Ps\n", w, eff)
		}
		fmt.Fprintf(os.Stderr, "running fleet: %d companies x %d days, workers=%d...\n",
			*companies, *days, w)
		r := measure(*seed, *days, *companies, w, q.UserScale, q.VolumeScale)
		fmt.Fprintf(os.Stderr, "  %.2fs wall, %.0f msgs/sec, %.1f allocs/msg, %.0f mutex-ns/msg, dns hit rate %.3f\n",
			r.WallClockSec, r.MsgsPerSec, r.AllocsPerMsg, r.MutexWaitNsPerMsg, r.DNSCacheRate)
		rep.Runs = append(rep.Runs, r)
	}
	if base := rep.Runs[0].MsgsPerSec; base > 0 && rep.Runs[0].Workers == 1 {
		bestRate := 0.0
		for _, r := range rep.Runs[1:] {
			if r.MsgsPerSec > bestRate {
				bestRate = r.MsgsPerSec
			}
		}
		rep.Speedup = bestRate / base
	}

	if *memprofile != "" {
		fp, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(fp, 0); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		fp.Close()
	}
	if *mutexprofile != "" {
		fp, err := os.Create(*mutexprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutexprofile:", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("mutex").WriteTo(fp, 0); err != nil {
			fmt.Fprintln(os.Stderr, "mutexprofile:", err)
		}
		fp.Close()
	}
	if *blockprofile != "" {
		fp, err := os.Create(*blockprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blockprofile:", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("block").WriteTo(fp, 0); err != nil {
			fmt.Fprintln(os.Stderr, "blockprofile:", err)
		}
		fp.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (speedup %.2fx over workers=1)\n", *out, rep.Speedup)

	if *check != "" {
		if err := checkRegression(*check, rep.Runs); err != nil {
			fmt.Fprintln(os.Stderr, "regression check FAILED:", err)
			os.Exit(1)
		}
	}
}
