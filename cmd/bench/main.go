// Command bench measures fleet-simulation throughput and records the
// serial-vs-parallel comparison to BENCH_fleet.json. It runs the same
// Quick-sized fleet once per worker configuration (the aggregate results
// are worker-count-invariant, so only wall-clock differs) and reports
// wall-clock, messages/second, allocations/message and the resolver
// cache hit rates.
//
// Usage:
//
//	go run ./cmd/bench [-seed 42] [-days 7] [-workers N] [-out BENCH_fleet.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/mail"
	"repro/internal/workload"
)

// result is one measured fleet run.
type result struct {
	Workers      int     `json:"workers"`
	Companies    int     `json:"companies"`
	Days         int     `json:"days"`
	Messages     int64   `json:"messages"`
	WallClockSec float64 `json:"wall_clock_sec"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	DNSCacheRate float64 `json:"dns_cache_hit_rate"`
	DNSLookups   int64   `json:"dns_cache_lookups"`
	RBLCacheRate float64 `json:"rbl_cache_hit_rate"`
	RBLLookups   int64   `json:"rbl_cache_lookups"`
}

// report is the BENCH_fleet.json document.
type report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Seed       int64    `json:"seed"`
	Runs       []result `json:"runs"`
	// Speedup is parallel msgs/sec over the workers=1 baseline.
	Speedup float64 `json:"speedup"`
}

func measure(seed int64, days, companies, workers int, userScale, volumeScale float64) result {
	cfg := workload.DefaultConfig(seed, companies)
	cfg.Workers = workers
	for i := range cfg.Profiles {
		p := &cfg.Profiles[i]
		p.Users = max(5, int(float64(p.Users)*userScale))
		p.DailyVolume = max(100, int(float64(p.DailyVolume)*volumeScale))
	}
	mail.ResetIDCounter()
	f := workload.NewFleet(cfg)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f.Run(days)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	var msgs int64
	for _, c := range f.Companies {
		msgs += c.Engine.Metrics().MTAIncoming
	}
	r := result{
		Workers:      workers,
		Companies:    companies,
		Days:         days,
		Messages:     msgs,
		WallClockSec: wall.Seconds(),
	}
	if wall > 0 {
		r.MsgsPerSec = float64(msgs) / wall.Seconds()
	}
	if msgs > 0 {
		r.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64(msgs)
	}
	if f.DNSCache != nil {
		st := f.DNSCache.Stats()
		r.DNSCacheRate = st.HitRate()
		r.DNSLookups = st.Lookups()
	}
	if f.RBLCache != nil {
		st := f.RBLCache.Stats()
		r.RBLCacheRate = st.HitRate()
		r.RBLLookups = st.Lookups()
	}
	return r
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	days := flag.Int("days", 0, "simulated days (0 = Quick preset)")
	companies := flag.Int("companies", 0, "fleet size (0 = Quick preset)")
	workers := flag.Int("workers", 0, "parallel worker count (0 = max(4, GOMAXPROCS))")
	out := flag.String("out", "BENCH_fleet.json", "output file")
	flag.Parse()

	q := experiments.Quick(*seed)
	if *days <= 0 {
		*days = q.Days
	}
	if *companies <= 0 {
		*companies = q.Companies
	}
	par := *workers
	if par <= 0 {
		par = max(4, runtime.GOMAXPROCS(0))
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
	}
	for _, w := range []int{1, par} {
		fmt.Fprintf(os.Stderr, "running fleet: %d companies x %d days, workers=%d...\n",
			*companies, *days, w)
		r := measure(*seed, *days, *companies, w, q.UserScale, q.VolumeScale)
		fmt.Fprintf(os.Stderr, "  %.2fs wall, %.0f msgs/sec, %.1f allocs/msg, dns hit rate %.3f\n",
			r.WallClockSec, r.MsgsPerSec, r.AllocsPerMsg, r.DNSCacheRate)
		rep.Runs = append(rep.Runs, r)
	}
	if base := rep.Runs[0].MsgsPerSec; base > 0 {
		rep.Speedup = rep.Runs[len(rep.Runs)-1].MsgsPerSec / base
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (speedup %.2fx over workers=1)\n", *out, rep.Speedup)
}
