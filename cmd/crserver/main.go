// Command crserver runs one live CR installation: an SMTP MTA-IN on a TCP
// port plus the CAPTCHA web server, exactly the two public surfaces of
// the product the paper studied. Poke it with any SMTP client:
//
//	crserver -smtp :2525 -http :8080 -domain corp.example -users bob,carol
//
//	$ nc localhost 2525
//	220 mta.corp.example ESMTP ready
//	EHLO test
//	MAIL FROM:<alice@example.com>
//	RCPT TO:<bob@corp.example>
//	DATA
//	Subject: hello
//
//	hi bob
//	.
//
// The server logs each decision; challenges print their URL, which you
// can open in a browser to solve the CAPTCHA and release the message.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/adminui"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnscache"
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/filters"
	"repro/internal/gateway"
	"repro/internal/mail"
	"repro/internal/mailbox"
	"repro/internal/outbound"
	"repro/internal/overload"
	"repro/internal/rbl"
	"repro/internal/reputation"
	"repro/internal/resilience"
	"repro/internal/smtp"
	"repro/internal/spool"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/whitelist"
)

func main() {
	var (
		smtpAddr  = flag.String("smtp", ":2525", "SMTP listen address")
		httpAddr  = flag.String("http", ":8080", "challenge web server listen address")
		domain    = flag.String("domain", "corp.example", "local mail domain")
		users     = flag.String("users", "bob,alice,admin", "comma-separated protected local parts")
		openRelay = flag.Bool("open-relay", false, "accept mail for relay domains")
		relayFor  = flag.String("relay-for", "", "comma-separated relayed domains (with -open-relay)")
		permitAll = flag.Bool("resolve-all", true, "treat every sender domain as resolvable (no real DNS in the sandbox)")
		statePath = flag.String("state", "", "whitelist snapshot file (loaded at boot, saved periodically and on SIGINT)")
		smarthost = flag.String("smarthost", "", "next-hop SMTP server for outgoing challenges (host:port); empty = log only")
		faultPlan = flag.String("fault-plan", "", "JSON fault plan file; injects faults into DNS, the blocklist, the scanner, the smarthost path and state saves")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault injector's RNG (with -fault-plan)")
		maxQueued = flag.Int("max-outbound", 1000, "bound on in-flight outbound challenges; overflow defers (0 = unbounded)")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight SMTP sessions before force-closing")
		walDir    = flag.String("wal-dir", "", "write-ahead-log directory; every whitelist/reputation mutation is journalled and replayed over the snapshot at boot (empty = snapshots only)")
		walFsync  = flag.Duration("wal-fsync-interval", 2*time.Millisecond, "group-commit window: how long the flusher waits to batch concurrent appends into one fsync (0 = fsync eagerly)")
		walSeg    = flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation threshold in bytes")
	)
	flag.Parse()

	clk := clock.Real{}
	dns := dnssim.NewServer()
	provider := rbl.NewProvider("local-dnsbl", rbl.DefaultPolicy(), clk)

	var inj faults.Injector
	if *faultPlan != "" {
		plan, err := faults.LoadFile(*faultPlan)
		if err != nil {
			log.Fatalf("fault plan: %v", err)
		}
		set := faults.New(plan, *faultSeed, clk)
		inj = set
		dns.SetInjector(set)
		provider.SetInjector(set)
		log.Printf("fault injection active (seed %d):\n%s", *faultSeed, plan.Describe())
	}

	// Resolver and blocklist caches (off under a fault plan: injected
	// faults must reach every consumer un-cached). The live server uses
	// the same TTL + negative caching + single-flight path the fleet
	// simulation exercises; /metrics reports the hit rates.
	var resolver dnssim.Resolver = dns
	var dnsCache *dnscache.Cache
	var rblCache *dnscache.RBLCache
	var rblBackend filters.RBLBackend = provider
	if inj == nil {
		dnsCache = dnscache.New(dns, dnscache.Options{Clock: clk, Gen: dns.Gen})
		resolver = dnsCache
		rblCache = dnscache.NewRBL(provider, clk, 0)
		rblBackend = rblCache
	}

	av := filters.NewAntivirus()
	if inj != nil {
		av.SetInjector(inj)
	}
	harden := func(pr filters.Prober, mode filters.DegradeMode) filters.Filter {
		return filters.Harden(pr, mode, filters.HardenOpts{
			Breaker: resilience.NewBreaker(pr.Name(), resilience.DefaultBreakerConfig(), clk),
			Seed:    *faultSeed,
		})
	}
	repCfg := reputation.DefaultConfig()
	repCfg.Injector = inj
	rep := reputation.NewStore(repCfg, clk)
	chain := filters.NewChain(
		harden(filters.NewReputation(rep), filters.FailOpen),
		harden(av, filters.FailClosed),
		harden(filters.NewRBL(rblBackend), filters.FailOpen),
	)
	wl := whitelist.NewStore(clk)
	sp := spool.NewState()
	st := store.Stores{Whitelist: wl, Reputation: rep, Spool: sp}
	saver := &store.Saver{Path: *statePath, Name: "crserver", Injector: inj}
	var walLog *wal.Log
	var journal *wal.Journal
	if *walDir != "" {
		// Crash recovery: newest snapshot first, then the WAL suffix past
		// its cut. A torn tail (the normal aftermath of a crash) is
		// truncated, never fatal.
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			log.Fatalf("wal dir: %v", err)
		}
		rec, err := store.Recover(*statePath, wal.Options{
			Dir:           *walDir,
			FsyncInterval: *walFsync,
			SegmentBytes:  *walSeg,
			Injector:      inj,
		}, st)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		walLog = rec.Log
		if rec.Snapshot != nil {
			log.Printf("restored snapshot %q (wal cut %d, %d reputation entries) from %s",
				rec.Snapshot.Name, rec.Snapshot.WalLSN, len(rec.Snapshot.Reputation),
				rec.Snapshot.SavedAt.Format(time.RFC3339))
		}
		log.Printf("wal: replayed %d record(s), last LSN %d", rec.Replayed, walLog.LastLSN())
		if rec.Truncated {
			log.Printf("wal: truncated torn tail (%d byte(s) discarded) — expected after a crash", rec.TornBytes)
		}
		journal = wal.NewJournal(walLog)
		journal.Attach(wl, rep, nil)
	} else if *statePath != "" {
		snap, err := store.LoadFile(*statePath, st)
		if err != nil {
			log.Fatalf("state load: %v", err)
		}
		if snap != nil {
			log.Printf("restored snapshot %q (%d reputation entries) from %s",
				snap.Name, len(snap.Reputation), snap.SavedAt.Format(time.RFC3339))
		}
	}

	cfg := core.Config{
		Name:             "crserver",
		Domains:          []string{*domain},
		OpenRelay:        *openRelay,
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.Address{Local: "challenge", Domain: *domain},
		ChallengeBaseURL: challengeBase(*httpAddr),
	}
	if *relayFor != "" {
		cfg.RelayDomains = strings.Split(*relayFor, ",")
	}

	var queue *outbound.Queue
	sendChallenge := func(ch core.OutboundChallenge) {
		log.Printf("CHALLENGE to %s for message %s — solve at %s", ch.To, ch.MsgID, ch.URL)
	}
	if *smarthost != "" {
		ocfg := outbound.Config{
			Dial:       func() (*smtp.Client, error) { return smtp.Dial(*smarthost, 10*time.Second) },
			HeloDomain: *domain,
			Injector:   inj,
			MaxQueued:  *maxQueued,
			Spool:      sp,
		}
		if journal != nil {
			ocfg.Journal = journal.Emit
		}
		queue = outbound.NewQueue(ocfg)
		// Re-enqueue challenges that were pending in the recovered spool:
		// a crash between Enqueue and the terminal transition loses
		// nothing, the journalled state transitions rebuild the queue.
		if n := queue.Restore(); n > 0 {
			log.Printf("outbound: restored %d pending challenge(s) from the recovered spool", n)
		}
		base := sendChallenge
		sendChallenge = func(ch core.OutboundChallenge) {
			base(ch)
			queue.Enqueue(ch)
		}
	}
	eng := core.New(cfg, clk, resolver, chain, wl, sendChallenge)
	eng.SetReputation(rep)
	// Admission control: the gateway consults ctl before accepting DATA
	// (shed mail gets 451/421, never a silent drop), the engine feeds
	// per-message service latency into the AIMD limiter, and probe-filter
	// work is shed while the admission queue is pressured.
	ctl := overload.New(overload.Config{Name: "crserver", Clock: clk})
	eng.SetServiceObserver(ctl.Observe)
	eng.SetPressure(ctl.Pressured)
	inboxes := mailbox.NewStore()
	eng.SetInboxSink(inboxes.Sink())
	for _, u := range strings.Split(*users, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		addr := mail.Address{Local: u, Domain: *domain}
		eng.AddUser(addr)
		log.Printf("protected user: %s", addr)
	}
	if *permitAll {
		// Without real DNS every sender would bounce as unresolvable;
		// pre-register common test domains and let operators add more.
		for _, d := range []string{"example.com", "example.org", "gmail.example", "test.example"} {
			dns.RegisterMailDomain(d, "192.0.2.1")
		}
	}

	// Challenge web server + quarantine digest UI + metrics.
	go func() {
		log.Printf("web server on %s (challenge pages, /digest/<user>, /mbox/<user>, /reputation, /overload, /metrics)", *httpAddr)
		mux := http.NewServeMux()
		mux.Handle("/challenge/", eng.Captcha().Handler())
		ui := adminui.New(eng)
		ui.SetResolverCaches(dnsCache, rblCache)
		ui.SetOverload(ctl)
		ui.SetSaver(saver)
		if walLog != nil {
			ui.SetWAL(walLog)
		}
		if queue != nil {
			ui.SetOutbound(queue)
		}
		admin := ui.Handler()
		mux.Handle("/digest/", admin)
		mux.Handle("/metrics", admin)
		mux.Handle("/reputation", admin)
		mux.Handle("/overload", admin)
		mux.Handle("/wal", admin)
		mux.Handle("/outbound", admin)
		mux.HandleFunc("/mbox/", func(w http.ResponseWriter, r *http.Request) {
			userRaw := strings.TrimPrefix(r.URL.Path, "/mbox/")
			user, err := mail.ParseAddress(userRaw)
			if err != nil {
				http.Error(w, "bad user address", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/mbox")
			if err := inboxes.WriteMbox(w, user); err != nil {
				log.Printf("mbox export: %v", err)
			}
		})
		log.Fatal(http.ListenAndServe(*httpAddr, mux))
	}()

	// Daily quarantine sweep + periodic state snapshots.
	go func() {
		for range time.Tick(time.Hour) {
			if n := eng.ExpireQuarantine(); n > 0 {
				log.Printf("expired %d quarantined message(s)", n)
			}
			saveState(saver, st, walLog)
		}
	}()

	// Outbound challenge queue runner.
	if queue != nil {
		go func() {
			for range time.Tick(30 * time.Second) {
				if n, err := queue.Flush(); err != nil {
					log.Printf("outbound flush: %v", err)
				} else if n > 0 {
					log.Printf("outbound: %d challenge(s) reached terminal state; queue now %v", n, queue.Stats())
				}
			}
		}()
	}

	srv := smtp.NewServer(smtp.Config{Hostname: "mta." + *domain},
		gateway.New(eng, gateway.WithOverload(ctl)))
	l, err := net.Listen("tcp", *smtpAddr)
	if err != nil {
		log.Fatalf("smtp listen: %v", err)
	}

	// Graceful drain on SIGINT/SIGTERM: stop admitting (new mail is
	// tempfailed 421), let in-flight SMTP sessions finish, flush the
	// outbound challenge queue, write the final snapshot, exit.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("%v received; draining", sig)
		drain(ctl, srv, queue, saver, st, walLog, *drainWait)
		log.Printf("drain complete; exiting")
		os.Exit(0)
	}()

	log.Printf("SMTP MTA-IN on %s (domain %s, open-relay=%v)", *smtpAddr, *domain, *openRelay)
	err = srv.Serve(l)
	if ctl.Draining() {
		select {} // Serve returned because drain closed the listener; let the drain goroutine exit the process
	}
	log.Fatal(err)
}

// drain is the graceful-shutdown sequence, in order: shed new
// admissions (the gateway answers 421 "shutting down"), wait up to
// timeout for in-flight SMTP sessions, push every queued outbound
// challenge ignoring retry timers until the queue is empty or makes no
// progress, then snapshot durable state (compacting the WAL behind the
// cut) and close the log. Factored out of the signal handler so the
// e2e test drives it directly.
func drain(ctl *overload.Controller, srv *smtp.Server, queue *outbound.Queue, saver *store.Saver, st store.Stores, walLog *wal.Log, timeout time.Duration) {
	ctl.StartDrain()
	if srv.Shutdown(timeout) {
		log.Printf("smtp: all in-flight sessions finished")
	} else {
		log.Printf("smtp: force-closed lingering sessions after %v", timeout)
	}
	if queue != nil {
		for {
			n, err := queue.FlushAll()
			if err != nil {
				log.Printf("outbound drain: %v", err)
				break
			}
			remaining := queue.Stats()[outbound.StatusQueued] + queue.Deferred()
			if remaining == 0 {
				log.Printf("outbound queue flushed")
				break
			}
			if n == 0 {
				log.Printf("outbound drain stalled with %d challenge(s) undeliverable", remaining)
				break
			}
		}
	}
	saveState(saver, st, walLog)
	if walLog != nil {
		if err := walLog.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
}

// challengeBase turns the HTTP listen address into the public base URL
// embedded in challenge emails (":8080" means localhost).
func challengeBase(httpAddr string) string {
	if strings.HasPrefix(httpAddr, ":") {
		return "http://localhost" + httpAddr
	}
	return "http://" + httpAddr
}

// saveState snapshots the whitelists and reputation counters, logging
// rather than failing — the mail path must survive a full state disk
// (or an injected write error), and the atomic save keeps the previous
// snapshot intact.
//
// With a WAL attached this is also the compaction cycle: the cut is
// sampled BEFORE exporting (mutations journalled during the export
// replay idempotently on top), the active segment is sealed so the cut
// lives in a compactable segment, and after a successful save every
// sealed segment wholly at or below the cut is deleted.
func saveState(s *store.Saver, st store.Stores, walLog *wal.Log) {
	if s.Path == "" {
		return
	}
	var cut uint64
	if walLog != nil {
		cut = walLog.LastLSN()
		if err := walLog.Sync(); err != nil {
			log.Printf("wal sync before snapshot failed: %v (skipping snapshot)", err)
			return
		}
		if err := walLog.Rotate(); err != nil {
			log.Printf("wal rotate failed: %v", err)
		}
	}
	if err := s.Save(st, cut, time.Now()); err != nil {
		log.Printf("state save failed: %v", err)
		return
	}
	if walLog != nil {
		if n, err := walLog.CompactThrough(cut); err != nil {
			log.Printf("wal compaction failed: %v", err)
		} else if n > 0 {
			log.Printf("wal: compacted %d sealed segment(s) behind LSN %d", n, cut)
		}
	}
}
