package main

import (
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/gateway"
	"repro/internal/mail"
	"repro/internal/outbound"
	"repro/internal/overload"
	"repro/internal/smtp"
	"repro/internal/store"
	"repro/internal/whitelist"
)

// smarthostFake records what the outbound queue delivers to it.
type smarthostFake struct {
	mu       sync.Mutex
	accepted []*mail.Message
}

func (s *smarthostFake) ValidateSender(mail.Address) *smtp.Reply    { return nil }
func (s *smarthostFake) ValidateRcpt(_, _ mail.Address) *smtp.Reply { return nil }
func (s *smarthostFake) Deliver(m *mail.Message) *smtp.Reply {
	s.mu.Lock()
	s.accepted = append(s.accepted, m)
	s.mu.Unlock()
	return nil
}

func (s *smarthostFake) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.accepted)
}

// TestDrainGraceful is the shutdown e2e: an in-flight SMTP session is
// allowed to finish (its mid-drain transaction is tempfailed 421, never
// dropped), new connections are refused, the outbound challenge queue
// flushes to the smarthost ignoring retry timers, and the final state
// snapshot lands on disk.
func TestDrainGraceful(t *testing.T) {
	clk := clock.Real{}

	// Fake smarthost the outbound queue drains into.
	sh := &smarthostFake{}
	shSrv := smtp.NewServer(smtp.Config{Hostname: "smarthost.example", ReadTimeout: 5 * time.Second}, sh)
	shL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go shSrv.Serve(shL) //nolint:errcheck
	defer shSrv.Close()

	queue := outbound.NewQueue(outbound.Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(shL.Addr().String(), 2*time.Second) },
		HeloDomain: "corp.example",
		MaxQueued:  10,
	})

	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.1")
	wl := whitelist.NewStore(clk)
	eng := core.New(core.Config{
		Name:             "drain-test",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, nil, wl, queue.Sender())
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))

	ctl := overload.New(overload.Config{Name: "drain-test", Clock: clk})
	eng.SetServiceObserver(ctl.Observe)
	eng.SetPressure(ctl.Pressured)

	srv := smtp.NewServer(smtp.Config{Hostname: "mta.corp.example", ReadTimeout: 5 * time.Second},
		gateway.New(eng, gateway.WithOverload(ctl)))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	addr := l.Addr().String()

	c, err := smtp.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("client.example.com"); err != nil {
		t.Fatal(err)
	}

	// A pre-drain delivery: gray mail from an unknown sender, which
	// makes the engine emit a challenge into the (unflushed) queue.
	from := mail.MustParseAddress("alice@example.com")
	to := mail.MustParseAddress("bob@corp.example")
	if err := c.SendMail(from, []mail.Address{to}, smtp.BuildMessage(from, to, "hello there", "hi bob")); err != nil {
		t.Fatalf("pre-drain transaction: %v", err)
	}
	if got := queue.Stats()[outbound.StatusQueued]; got != 1 {
		t.Fatalf("challenge not queued before drain: stats %v", queue.Stats())
	}

	statePath := t.TempDir() + "/state.json"
	saver := &store.Saver{Path: statePath, Name: "drain-test"}

	done := make(chan struct{})
	go func() {
		drain(ctl, srv, queue, saver, store.Stores{Whitelist: wl}, nil, 5*time.Second)
		close(done)
	}()

	// The listener closes promptly: fresh connections are refused (or
	// greeted 421 if they raced the close) while the session drains.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c2, err := smtp.Dial(addr, 200*time.Millisecond)
		if err != nil {
			break
		}
		c2.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after drain started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight session keeps its connection: its next transaction
	// is tempfailed (421, draining) rather than dropped or hung.
	err = c.SendMail(from, []mail.Address{to}, smtp.BuildMessage(from, to, "late mail", "too late"))
	if err == nil {
		t.Fatal("mid-drain transaction accepted; want 421 tempfail")
	}
	if !strings.Contains(err.Error(), "421") {
		t.Fatalf("mid-drain transaction error %q, want a 421 tempfail", err)
	}
	if err := c.Quit(); err != nil {
		t.Fatalf("quit during drain: %v", err)
	}

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}

	// The queued challenge was flushed to the smarthost during drain.
	if got := sh.count(); got != 1 {
		t.Fatalf("smarthost received %d message(s) during drain, want 1", got)
	}
	if left := queue.Stats()[outbound.StatusQueued] + queue.Deferred(); left != 0 {
		t.Fatalf("%d challenge(s) left behind after drain", left)
	}
	// The final snapshot is on disk.
	if fi, err := os.Stat(statePath); err != nil || fi.Size() == 0 {
		t.Fatalf("final snapshot missing or empty: %v", err)
	}
	// The shed is accounted as a draining tempfail, not a drop.
	if ctl.Metrics().Shed[overload.ReasonDraining] == 0 {
		t.Error("mid-drain shed not recorded with reason draining")
	}
}
