// Command logstats is the log-crawler half of the paper's methodology:
// it parses a CR decision log (as emitted by the engines' event sink)
// and prints the aggregated statistics — the role the authors' Python
// scripts + Postgres played over the MTAs' daily logs.
//
//	logstats < cr.log            # aggregate an existing log
//	logstats -demo               # simulate a small fleet, log it, parse it
//	logstats -per-company < cr.log
//	logstats -wal wal-0000000000000001.seg   # pretty-print a WAL segment
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/maillog"
	"repro/internal/report"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		demo       = flag.Bool("demo", false, "simulate a small fleet and analyze its own log")
		perCompany = flag.Bool("per-company", false, "print one row per company")
		seed       = flag.Int64("seed", 1, "demo fleet seed")
		walSeg     = flag.String("wal", "", "pretty-print a write-ahead-log segment file and exit")
	)
	flag.Parse()

	if *walSeg != "" {
		// Offline WAL inspection: record-by-record dump of one segment,
		// reporting a torn tail instead of erroring — the same tolerance
		// the boot-time replay has.
		if err := wal.Dump(os.Stdout, *walSeg); err != nil {
			log.Fatalf("wal dump: %v", err)
		}
		return
	}

	var input io.Reader = os.Stdin
	if *demo {
		var sb strings.Builder
		w := maillog.NewWriter(&sb)
		cfg := workload.DefaultConfig(*seed, 4)
		for i := range cfg.Profiles {
			cfg.Profiles[i].Users = 15
			cfg.Profiles[i].DailyVolume = 400
		}
		cfg.LogSink = w.Write
		fleet := workload.NewFleet(cfg)
		fleet.Run(2)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "demo fleet logged %d events\n\n", w.Count())
		input = strings.NewReader(sb.String())
	}

	agg, err := maillog.ParseAll(input)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	if agg.Lines == 0 {
		fmt.Fprintln(os.Stderr, "no log lines on stdin (use -demo for a synthetic run)")
		os.Exit(1)
	}

	tot := agg.Total()
	t := &report.Table{Title: "Log-derived statistics", Headers: []string{"Metric", "Value"}}
	t.AddRow("Log lines", agg.Lines)
	t.AddRow("Unparsable lines", agg.BadLines)
	t.AddRow("Incoming messages", tot.Incoming)
	reasons := make([]string, 0, len(tot.MTADrops))
	for r := range tot.MTADrops {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		t.AddRow("MTA drop: "+r, tot.MTADrops[r])
	}
	for _, s := range []string{"white", "black", "gray"} {
		t.AddRow("Spool: "+s, tot.Spools[s])
	}
	filters := make([]string, 0, len(tot.FilterDrops))
	for f := range tot.FilterDrops {
		filters = append(filters, f)
	}
	sort.Strings(filters)
	for _, f := range filters {
		t.AddRow("Filter drop: "+f, tot.FilterDrops[f])
	}
	t.AddRow("Challenges sent", tot.Challenges)
	for _, v := range []string{"whitelist", "challenge", "digest"} {
		t.AddRow("Delivered via "+v, tot.Deliveries[v])
	}
	t.AddRow("Challenge-page visits", tot.WebVisits)
	t.AddRow("CAPTCHA solves", tot.WebSolves)
	t.AddRow("Reflection ratio (CR)", fmt.Sprintf("%.1f%%", tot.ReflectionRatio()*100))
	t.AddRow("Solve rate", fmt.Sprintf("%.1f%%", tot.SolveRate()*100))
	fmt.Println(t.Render())

	if *perCompany {
		ct := &report.Table{
			Title:   "Per company",
			Headers: []string{"Company", "Incoming", "Gray", "Challenges", "Reflection", "Solves"},
		}
		for _, name := range agg.Companies() {
			c := agg.ByCompany[name]
			ct.AddRow(name, c.Incoming, c.Spools["gray"], c.Challenges,
				fmt.Sprintf("%.1f%%", c.ReflectionRatio()*100), c.WebSolves)
		}
		fmt.Println(ct.Render())
	}
}
