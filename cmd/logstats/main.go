// Command logstats is the log-crawler half of the paper's methodology:
// it parses a CR decision log (as emitted by the engines' event sink)
// and prints the aggregated statistics — the role the authors' Python
// scripts + Postgres played over the MTAs' daily logs. The scan itself
// runs on the parallel zero-allocation logscan engine, so a file the
// size of the paper's 90M-event corpus splits across every core.
//
//	logstats -f cr.log           # parallel scan of a log file
//	logstats < cr.log            # aggregate a stream (pipe, zcat, ...)
//	logstats -demo               # simulate a small fleet, log it, parse it
//	logstats -per-company -f cr.log
//	logstats -progress -f cr.log # events/sec heartbeat on stderr
//	logstats -wal wal-0000000000000001.seg   # pretty-print a WAL segment
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/logscan"
	"repro/internal/maillog"
	"repro/internal/report"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		demo       = flag.Bool("demo", false, "simulate a small fleet and analyze its own log")
		perCompany = flag.Bool("per-company", false, "print one row per company")
		seed       = flag.Int64("seed", 1, "demo fleet seed")
		walSeg     = flag.String("wal", "", "pretty-print a write-ahead-log segment file and exit")
		file       = flag.String("f", "", "scan this log file instead of stdin (enables range-split parallelism)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel scan workers")
		progress   = flag.Bool("progress", false, "print scan progress to stderr every 5s")
	)
	flag.Parse()

	if *walSeg != "" {
		// Offline WAL inspection: record-by-record dump of one segment,
		// reporting a torn tail instead of erroring — the same tolerance
		// the boot-time replay has.
		if err := wal.Dump(os.Stdout, *walSeg); err != nil {
			log.Fatalf("wal dump: %v", err)
		}
		return
	}

	var input io.Reader = os.Stdin
	if *demo {
		var sb strings.Builder
		w := maillog.NewWriter(&sb)
		cfg := workload.DefaultConfig(*seed, 4)
		for i := range cfg.Profiles {
			cfg.Profiles[i].Users = 15
			cfg.Profiles[i].DailyVolume = 400
		}
		cfg.LogSink = w.Write
		fleet := workload.NewFleet(cfg)
		fleet.Run(2)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "demo fleet logged %d events\n\n", w.Count())
		input = strings.NewReader(sb.String())
	}

	opts := logscan.Options{Workers: *workers}
	var stopProgress func()
	if *progress {
		var c logscan.Counters
		opts.Counter = &c
		stopProgress = startProgress(&c)
	}

	var agg *maillog.Aggregate
	var err error
	if *file != "" {
		agg, err = logscan.ScanFile(*file, opts)
	} else {
		agg, err = logscan.Scan(input, opts)
	}
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		if agg != nil && agg.Lines > 0 {
			// Print what was scanned before the failure, then exit
			// non-zero so pipelines notice the truncated crawl.
			fmt.Println(report.LogSummary(agg).Render())
			fmt.Fprintln(os.Stderr, "warning: statistics above cover only the log prefix before the error")
		}
		log.Fatalf("scan: %v", err)
	}
	if agg.Lines == 0 {
		fmt.Fprintln(os.Stderr, "no log lines on stdin (use -demo for a synthetic run)")
		os.Exit(1)
	}

	fmt.Println(report.LogSummary(agg).Render())
	if *perCompany {
		fmt.Println(report.LogPerCompany(agg).Render())
	}
}

// startProgress prints an events/sec heartbeat from the live scan
// counters every 5s until the returned stop function is called.
func startProgress(c *logscan.Counters) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		start := time.Now()
		var lastEvents int64
		lastAt := start
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				events := c.Events.Load()
				rate := float64(events-lastEvents) / now.Sub(lastAt).Seconds()
				fmt.Fprintf(os.Stderr, "progress: %d events (%d bad lines), %.0f events/sec, %s elapsed\n",
					events, c.BadLines.Load(), rate, now.Sub(start).Round(time.Second))
				lastEvents, lastAt = events, now
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
