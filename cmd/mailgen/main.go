// Command mailgen inspects the synthetic workload: it builds the fleet
// world, generates traffic for one company, and prints one line per
// message with its ground-truth class and routing fields — useful for
// eyeballing what the generator feeds the CR engines and for piping into
// other tools.
//
//	mailgen -n 50             # 50 messages from company-00's mix
//	mailgen -classes          # only the class histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "generator seed")
		company   = flag.Int("company", 0, "company index to sample")
		n         = flag.Int("n", 25, "messages to generate (via a scaled day run)")
		classes   = flag.Bool("classes", false, "print only the class histogram")
		traceFile = flag.String("trace", "", "also freeze the workload to a replayable trace file (internal/trace JSONL)")
	)
	flag.Parse()

	cfg := workload.DefaultConfig(*seed, *company+1)
	for i := range cfg.Profiles {
		cfg.Profiles[i].Users = 20
		cfg.Profiles[i].DailyVolume = *n
	}
	cfg.LegitDomains, cfg.LegitPerDomain = 4, 40
	cfg.InnocentDomains, cfg.InnocentPerDomain = 6, 20
	cfg.SpamCampaigns, cfg.NewsletterCampaigns = 8, 3
	cfg.BotnetSize = 50

	var tw *trace.Writer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tw, err = trace.NewWriter(f, trace.Header{
			Name: "mailgen", Seed: *seed, Created: time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.TraceSink = tw.Write
	}

	fleet := workload.NewFleet(cfg)
	fleet.Run(1)
	if tw != nil {
		if err := tw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d records written to %s\n", tw.Count(), *traceFile)
	}

	counts := fleet.ClassCounts()
	if *classes {
		printHistogram(counts)
		return
	}

	comp := fleet.Companies[*company]
	m := comp.Engine.Metrics()
	fmt.Printf("company %s: incoming=%d dropped=%d white=%d black=%d gray=%d challenges=%d\n",
		comp.Name, m.MTAIncoming, m.TotalMTADropped(), m.SpoolWhite, m.SpoolBlack,
		m.SpoolGray, m.ChallengesSent)
	fmt.Println()
	printHistogram(counts)
	fmt.Println()
	fmt.Println("gray-bound accepted messages (message-id, envelope sender, subject):")
	gl := fleet.GrayLog()
	ids := make([]string, 0, len(gl))
	for id := range gl {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	shown := 0
	for _, id := range ids {
		e := gl[id]
		fmt.Printf("  %-22s %-36s %q\n", e.MsgID, e.From, truncate(e.Subject, 48))
		shown++
		if shown >= 20 {
			fmt.Printf("  ... and %d more\n", len(ids)-shown)
			break
		}
	}
	if shown == 0 {
		fmt.Fprintln(os.Stderr, "  (none — raise -n)")
	}
}

func printHistogram(counts map[workload.Class]int64) {
	var total int64
	for _, v := range counts {
		total += v
	}
	type kv struct {
		c workload.Class
		n int64
	}
	var rows []kv
	for c, v := range counts {
		rows = append(rows, kv{c, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("class mix over %d generated messages:\n", total)
	for _, r := range rows {
		fmt.Printf("  %-18s %6d  (%5.2f%%)\n", r.c, r.n, 100*float64(r.n)/float64(total))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
