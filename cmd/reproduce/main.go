// Command reproduce runs the full measurement reproduction: it builds the
// synthetic 47-company fleet, simulates the monitoring period, and prints
// every table and figure from the paper's evaluation (see DESIGN.md §3
// for the experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	reproduce                  # standard run: 47 companies, 30 days
//	reproduce -preset quick    # small fast run (benchmarks' preset)
//	reproduce -days 60 -seed 7 # custom
//	reproduce -only fig4a      # a single artifact
//	reproduce -preset quick -only chaos -fault-plan plan.json
//	                           # base-vs-faulted delta under a fault plan
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

func main() {
	var (
		preset      = flag.String("preset", "standard", "run size: quick | standard")
		seed        = flag.Int64("seed", 42, "simulation seed (equal seeds reproduce exactly)")
		companies   = flag.Int("companies", 0, "override company count")
		days        = flag.Int("days", 0, "override simulated days")
		only        = flag.String("only", "", "render one artifact: fig1|table1|fig4a|fig4b|ratios|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ablations|chaos|reputation|surge|crashrestart")
		crashes     = flag.Int("crashes", 6, "crash points for -only crashrestart")
		sensitivity = flag.Int("sensitivity", 0, "instead of one run, simulate N seeds and print the cross-seed stability table")
		faultPlan   = flag.String("fault-plan", "", "JSON fault plan file applied to the run (default plan for -only chaos)")
	)
	flag.Parse()

	var plan *faults.Plan
	if *faultPlan != "" {
		var err error
		plan, err = faults.LoadFile(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault plan: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "fault plan active:\n%s", plan.Describe())
	}

	if *sensitivity > 0 {
		fmt.Fprintf(os.Stderr, "running %d independently-seeded quick fleets...\n", *sensitivity)
		fmt.Println(experiments.Sensitivity(*seed, *sensitivity).Render())
		return
	}

	var cfg experiments.RunConfig
	switch *preset {
	case "quick":
		cfg = experiments.Quick(*seed)
	case "standard":
		cfg = experiments.Standard(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *companies > 0 {
		cfg.Companies = *companies
	}
	if *days > 0 {
		cfg.Days = *days
	}
	cfg.FaultPlan = plan

	// The chaos artifact runs the fleet twice (clean and faulted) and
	// diffs, so it is special-cased ahead of the single-run renderers.
	if strings.ToLower(*only) == "chaos" {
		fmt.Fprintf(os.Stderr, "chaos run: %d companies, %d simulated days, seed %d (x2)...\n",
			cfg.Companies, cfg.Days, cfg.Seed)
		fmt.Println(experiments.Chaos(cfg, plan).Render())
		return
	}
	// The surge artifact sweeps burst intensities with admission control
	// on, one fleet run per intensity.
	if strings.ToLower(*only) == "surge" {
		fmt.Fprintf(os.Stderr, "surge sweep: %d companies, %d simulated days, seed %d (x%d intensities)...\n",
			cfg.Companies, cfg.Days, cfg.Seed, len(experiments.SurgeIntensities))
		fmt.Println(experiments.Surge(cfg).Render())
		return
	}
	// The crash-restart artifact exercises the WAL durability contract
	// on a single installation rather than the fleet: seeded traffic,
	// seeded crashes with torn tails, byte-identical recovery.
	if strings.ToLower(*only) == "crashrestart" {
		fmt.Fprintf(os.Stderr, "crash-restart durability: %d seeded crash point(s), seed %d...\n",
			*crashes, cfg.Seed)
		rep, err := experiments.CrashRestart(cfg.Seed, *crashes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crash-restart: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Render())
		if !rep.Pass() {
			os.Exit(1)
		}
		return
	}
	// Likewise the reputation ablation: two identically-seeded fleets,
	// with and without the sender-reputation stage.
	if strings.ToLower(*only) == "reputation" {
		fmt.Fprintf(os.Stderr, "reputation ablation: %d companies, %d simulated days, seed %d (x2)...\n",
			cfg.Companies, cfg.Days, cfg.Seed)
		fmt.Println(experiments.ReputationAblation(cfg.Seed, cfg.Companies, cfg.Days).Render())
		return
	}

	fmt.Fprintf(os.Stderr, "building fleet: %d companies, %d simulated days, seed %d...\n",
		cfg.Companies, cfg.Days, cfg.Seed)
	start := time.Now()
	run := experiments.NewRun(cfg)
	fmt.Fprintf(os.Stderr, "simulation complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	renderers := map[string]func(*experiments.Run) string{
		"fig1":      experiments.RenderLifecycle,
		"table1":    experiments.RenderGeneral,
		"fig4a":     experiments.RenderDeliveryStatus,
		"fig4b":     experiments.RenderCaptchaTries,
		"ratios":    experiments.RenderRatios,
		"fig5":      experiments.RenderCorrelations,
		"fig6":      experiments.RenderClustering,
		"fig7":      experiments.RenderDelayCDF,
		"fig8":      experiments.RenderSolveTime,
		"fig9":      experiments.RenderChurn,
		"fig10":     experiments.RenderDailyPending,
		"fig11":     experiments.RenderBlacklisting,
		"fig12":     experiments.RenderSPF,
		"ablations": experiments.RenderAblations,
	}
	if *only != "" {
		f, ok := renderers[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
			os.Exit(2)
		}
		fmt.Println(f(run))
		return
	}
	fmt.Println(experiments.RenderAll(run))
}
