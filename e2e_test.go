// End-to-end system test: the full production composition over real
// sockets. One CR installation (SMTP MTA-IN + challenge web server +
// digest UI + outbound queue + mailbox + decision log + persistence) and
// one external mail server (the "Internet"), driven the way a real
// sender and a real user would drive them:
//
//	sender --TCP/SMTP--> MTA-IN --> engine --> quarantine
//	                         engine --> outbound queue --TCP/SMTP--> sender's MX
//	sender --HTTP--> challenge page --> solve
//	engine --> mailbox (mbox export over HTTP-less API)
//	user  --HTTP--> digest UI for the second message
//	operator --> state snapshot --> fresh engine remembers the whitelist
//	analyst --> decision log --> same stats as the engine counters
package repro_test

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/gateway"
	"repro/internal/logscan"
	"repro/internal/mail"
	"repro/internal/mailbox"
	"repro/internal/maillog"
	"repro/internal/outbound"
	"repro/internal/reputation"
	"repro/internal/smtp"
	"repro/internal/store"
	"repro/internal/whitelist"
)

// remoteMX is the sender side's mail server: it accepts challenges
// addressed to alice and records them.
type remoteMX struct {
	mu       sync.Mutex
	accepted []*mail.Message
}

func (r *remoteMX) ValidateSender(mail.Address) *smtp.Reply { return nil }
func (r *remoteMX) ValidateRcpt(_, rcpt mail.Address) *smtp.Reply {
	if rcpt.Key() != "alice@example.com" {
		return &smtp.Reply{Code: 550, Text: "no such user"}
	}
	return nil
}
func (r *remoteMX) Deliver(m *mail.Message) *smtp.Reply {
	r.mu.Lock()
	r.accepted = append(r.accepted, m)
	r.mu.Unlock()
	return nil
}
func (r *remoteMX) inbox() []*mail.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*mail.Message, len(r.accepted))
	copy(out, r.accepted)
	return out
}

func TestEndToEndFullDeployment(t *testing.T) {
	clk := clock.Real{}
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "127.0.0.1")
	dns.AddPTR("127.0.0.1", "localhost.example.com")

	// --- The sender's MX (where challenges get delivered). ---
	alice := mail.MustParseAddress("alice@example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	mx := &remoteMX{}
	mxSrv := smtp.NewServer(smtp.Config{Hostname: "mx.example.com", ReadTimeout: 5 * time.Second}, mx)
	mxLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go mxSrv.Serve(mxLn) //nolint:errcheck
	defer mxSrv.Close()

	// --- The CR installation. ---
	var logBuf strings.Builder
	logW := maillog.NewWriter(&logBuf)

	wl := whitelist.NewStore(clk)
	queue := outbound.NewQueue(outbound.Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(mxLn.Addr().String(), 2*time.Second) },
		HeloDomain: "corp.example",
	})
	eng := core.New(core.Config{
		Name:          "e2e",
		Domains:       []string{"corp.example"},
		ChallengeFrom: mail.MustParseAddress("challenge@corp.example"),
		// Base URL is set below once the web server has a port.
	}, clk, dns, filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns)), wl, queue.Sender())
	rep := reputation.NewStore(reputation.DefaultConfig(), clk)
	eng.SetReputation(rep)
	eng.SetEventSink(logW.Write)
	eng.AddUser(bob)
	inboxes := mailbox.NewStore()
	eng.SetInboxSink(inboxes.Sink())

	webSrv := httptest.NewServer(eng.Captcha().Handler())
	defer webSrv.Close()

	mtaSrv := smtp.NewServer(smtp.Config{Hostname: "mta.corp.example", ReadTimeout: 5 * time.Second}, gateway.New(eng))
	mtaLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go mtaSrv.Serve(mtaLn) //nolint:errcheck
	defer mtaSrv.Close()

	// --- 1. Alice sends bob a message over real SMTP. ---
	client, err := smtp.Dial(mtaLn.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Hello("mx.example.com"); err != nil {
		t.Fatal(err)
	}
	body := smtp.BuildMessage(alice, bob, "quarterly report draft for your review", "see attached")
	if err := client.SendMail(alice, []mail.Address{bob}, body); err != nil {
		t.Fatal(err)
	}
	if eng.QuarantineLen() != 1 {
		t.Fatal("message not quarantined")
	}

	// --- 2. The outbound queue delivers the challenge to alice's MX. ---
	if n, err := queue.Flush(); err != nil || n != 1 {
		t.Fatalf("queue flush = %d, %v", n, err)
	}
	challenges := mx.inbox()
	if len(challenges) != 1 {
		t.Fatalf("challenge emails at MX = %d", len(challenges))
	}
	chMail := challenges[0]
	if chMail.Rcpt != alice || chMail.EnvelopeFrom.String() != "challenge@corp.example" {
		t.Fatalf("challenge envelope: %v -> %v", chMail.EnvelopeFrom, chMail.Rcpt)
	}

	// --- 3. Alice opens the URL from the challenge email and solves. ---
	tokRe := regexp.MustCompile(`X-CR-Token: (tok-[0-9a-f-]+)`)
	mTok := tokRe.FindStringSubmatch(chMail.Body)
	if mTok == nil {
		t.Fatalf("no token in challenge email:\n%s", chMail.Body)
	}
	chURL := webSrv.URL + "/challenge/" + mTok[1]
	resp, err := http.Get(chURL)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	q := regexp.MustCompile(`What is (\d+) plus (\d+)\?`).FindStringSubmatch(string(page))
	if q == nil {
		t.Fatalf("no puzzle:\n%s", page)
	}
	a, _ := strconv.Atoi(q[1])
	b2, _ := strconv.Atoi(q[2])
	resp, err = http.PostForm(chURL, url.Values{"answer": {strconv.Itoa(a + b2)}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}

	// --- 4. The message is in bob's mailbox; alice is whitelisted. ---
	if inboxes.Len(bob) != 1 {
		t.Fatalf("bob's inbox = %d", inboxes.Len(bob))
	}
	var mbox strings.Builder
	if err := inboxes.WriteMbox(&mbox, bob); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mbox.String(), "quarterly report draft") {
		t.Fatalf("mbox missing message:\n%s", mbox.String())
	}
	if !wl.IsWhite(bob, alice) {
		t.Fatal("alice not whitelisted")
	}

	// --- 5. Alice's next message is delivered instantly. ---
	if err := client.SendMail(alice, []mail.Address{bob},
		smtp.BuildMessage(alice, bob, "followup", "thanks!")); err != nil {
		t.Fatal(err)
	}
	if inboxes.Len(bob) != 2 {
		t.Fatalf("inbox after followup = %d", inboxes.Len(bob))
	}

	// --- 6. Persistence: a fresh engine restored from a snapshot still
	// trusts alice — whitelist and reputation history both survive. ---
	var snap strings.Builder
	if err := store.Save(&snap, "e2e", store.Stores{Whitelist: wl, Reputation: rep}, 0, time.Now()); err != nil {
		t.Fatal(err)
	}
	wl2 := whitelist.NewStore(clk)
	rep2 := reputation.NewStore(reputation.DefaultConfig(), clk)
	if _, err := store.Load(strings.NewReader(snap.String()), store.Stores{Whitelist: wl2, Reputation: rep2}); err != nil {
		t.Fatal(err)
	}
	if !wl2.IsWhite(bob, alice) {
		t.Fatal("whitelist lost across snapshot restore")
	}
	if rep.Stats().Entries == 0 {
		t.Fatal("reputation store recorded nothing for alice")
	}
	// Counters restore bit-for-bit (Export reads raw stored state, so
	// the comparison is exact even on the real clock).
	ea, eb := rep.Export(), rep2.Export()
	if len(ea) == 0 || len(ea) != len(eb) {
		t.Fatalf("reputation entries: %d vs %d after restore", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Key != eb[i].Key || ea[i].Counts != eb[i].Counts || !ea[i].Last.Equal(eb[i].Last) {
			t.Fatalf("reputation entry drift across restore: %+v vs %+v", ea[i], eb[i])
		}
	}

	// --- 7. The decision log reconstructs the same statistics, via the
	// parallel scanner the measurement pipeline uses. ---
	if err := logW.Flush(); err != nil {
		t.Fatal(err)
	}
	agg, err := logscan.Scan(strings.NewReader(logBuf.String()), logscan.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	em := eng.Metrics()
	la := agg.Total()
	if la.Incoming != em.MTAIncoming || la.Challenges != em.ChallengesSent {
		t.Fatalf("log stats diverge: %+v vs %+v", la, em)
	}
	if la.WebSolves != 1 || la.Deliveries["challenge"] != 1 || la.Deliveries["whitelist"] != 1 {
		t.Fatalf("log events wrong: %+v", la)
	}
}
