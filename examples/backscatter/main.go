// Backscatter: how challenge traffic gets a server blacklisted (§5.1).
//
// A company's CR filter answers spam with challenges; some of the spoofed
// sender addresses are spamtraps feeding eight DNS blocklists. The
// example shows the full §5.1 mechanism: trap hits accumulate, providers
// list the challenge IP, destination servers that consult those lists
// start bouncing BOTH challenges and — on a shared MTA-OUT — ordinary
// user mail. A second company with a split MTA-OUT (own IP for
// challenges) keeps its user mail flowing: the design choice a third of
// the study's installations made.
//
//	go run ./examples/backscatter
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/simnet"
	"repro/internal/whitelist"
)

func main() {
	clk := clock.NewSim(time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC))
	sched := clock.NewScheduler(clk)
	dns := dnssim.NewServer()
	providers := rbl.StandardProviders(clk)
	traps := rbl.NewTrapRegistry(providers...)
	net := simnet.New(clk, sched, dns, providers, traps, simnet.Config{Seed: 5})
	checker := rbl.NewChecker(providers...)

	mkCompany := func(name, challengeIP, mailIP string) *simnet.Company {
		eng := core.New(core.Config{
			Name:             name,
			Domains:          []string{name + ".example"},
			ChallengeFrom:    mail.Address{Local: "challenge", Domain: name + ".example"},
			ChallengeBaseURL: "http://cr." + name + ".example",
		}, clk, dns, filters.NewChain(), whitelist.NewStore(clk), nil)
		dns.RegisterMailDomain(name+".example", challengeIP)
		for i := 0; i < 10; i++ {
			eng.AddUser(mail.Address{Local: fmt.Sprintf("u%d", i), Domain: name + ".example"})
		}
		c := &simnet.Company{Name: name, Engine: eng, ChallengeIP: challengeIP, MailIP: mailIP}
		net.AttachCompany(c)
		return c
	}
	shared := mkCompany("shared", "198.51.100.1", "198.51.100.1") // one IP for everything
	split := mkCompany("split", "198.51.100.2", "198.51.100.3")   // challenges isolated

	// A partner domain that screens inbound mail against SpamHaus.
	partner := simnet.NewRemoteServer("partner.example", "192.0.2.50")
	partner.Screen = providers[2] // spamhaus
	partner.AddMailbox("client", simnet.PersonaLegit)
	net.AddRemote(partner)

	// A lure domain carrying spamtraps (it looks like any other domain).
	lure := simnet.NewRemoteServer("lure.example", "203.0.113.9")
	net.AddRemote(lure)
	for i := 0; i < 20; i++ {
		traps.AddTrap(mail.Address{Local: fmt.Sprintf("trap%02d", i), Domain: "lure.example"})
	}

	clientAddr := mail.MustParseAddress("client@partner.example")
	sendUserMail := func(c *simnet.Company) simnet.UserMailOutcome {
		return net.SendUserMail(c, clientAddr)
	}

	fmt.Println("before any backscatter:")
	fmt.Printf("  shared-IP user mail to partner: %v\n", outcome(sendUserMail(shared)))
	fmt.Printf("  split-IP  user mail to partner: %v\n\n", outcome(sendUserMail(split)))

	// Spam arrives at BOTH companies spoofing trap addresses; each engine
	// dutifully challenges the "sender" — straight into the traps.
	rng := rand.New(rand.NewSource(1))
	fmt.Println("spam wave spoofing spamtrap senders hits both companies...")
	for day := 0; day < 4; day++ {
		for i := 0; i < 5; i++ {
			for _, c := range []*simnet.Company{shared, split} {
				msg := &mail.Message{
					ID:           mail.NewID("spam"),
					EnvelopeFrom: mail.Address{Local: fmt.Sprintf("trap%02d", rng.Intn(20)), Domain: "lure.example"},
					Rcpt:         mail.Address{Local: fmt.Sprintf("u%d", rng.Intn(10)), Domain: c.Name + ".example"},
					Subject:      "cheap watches best quality free shipping order now friend deal today",
					Size:         3000,
					ClientIP:     "100.64.0.9",
					Received:     clk.Now(),
				}
				c.Engine.Receive(msg)
			}
		}
		sched.RunFor(24 * time.Hour)
		checker.Poll([]string{shared.ChallengeIP, split.ChallengeIP, shared.MailIP, split.MailIP})
		fmt.Printf("  day %d: trap hits=%d; spamhaus lists shared-IP=%v split-challenge-IP=%v split-mail-IP=%v\n",
			day+1, traps.Hits(),
			providers[2].IsListed(shared.ChallengeIP),
			providers[2].IsListed(split.ChallengeIP),
			providers[2].IsListed(split.MailIP))
	}

	fmt.Println("\nafter the wave:")
	fmt.Printf("  shared-IP user mail to partner: %v   <- collateral damage\n", outcome(sendUserMail(shared)))
	fmt.Printf("  split-IP  user mail to partner: %v   <- shielded by the second MTA-OUT\n\n", outcome(sendUserMail(split)))

	st := net.DeliveryStats()
	fmt.Printf("challenge fates: delivered=%d (of which traps=%d) bounced-blacklisted=%d\n",
		st.ByStatus[simnet.StatusDelivered], st.TrapHits, st.ByStatus[simnet.StatusBouncedBlacklisted])

	// Recovery: listings expire once the spam wave stops.
	fmt.Println("\nwave stops; waiting out the listing TTLs...")
	for day := 4; day < 12; day++ {
		sched.RunFor(24 * time.Hour)
		checker.Poll([]string{shared.ChallengeIP})
	}
	fmt.Printf("shared IP listed now: %v; listed fraction over %d polls: %.0f%%\n",
		providers[2].IsListed(shared.ChallengeIP), checker.Polls(),
		100*checker.ListedFraction(shared.ChallengeIP))
	fmt.Printf("user mail flows again: %v\n", outcome(sendUserMail(shared)))
}

func outcome(o simnet.UserMailOutcome) string {
	switch o {
	case simnet.UserMailDelivered:
		return "DELIVERED"
	case simnet.UserMailBouncedBlacklisted:
		return "BOUNCED (sender IP blacklisted)"
	case simnet.UserMailBouncedNoUser:
		return "bounced (no such user)"
	default:
		return "failed"
	}
}
