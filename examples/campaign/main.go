// Campaign: a botnet spam campaign against a CR-protected company.
//
// A 600-message campaign with one fixed subject and spoofed senders is
// fired at a protected company through the simulated Internet. The
// example then reproduces the paper's §4.1 analysis end to end: the
// filter chain eats part of the campaign, challenges bounce off the
// spoofed senders, one misdirected challenge is solved by an innocent
// bystander (the spurious-delivery channel), and the subject clustering
// identifies the campaign and classifies it as low sender similarity.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/simnet"
	"repro/internal/whitelist"
)

func main() {
	seedStart := time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSim(seedStart)
	sched := clock.NewScheduler(clk)
	dns := dnssim.NewServer()
	providers := rbl.StandardProviders(clk)
	traps := rbl.NewTrapRegistry(providers...)
	net := simnet.New(clk, sched, dns, providers, traps, simnet.Config{Seed: 7})

	// The victim company.
	spamhaus := providers[2]
	eng := core.New(core.Config{
		Name:             "victim-corp",
		Domains:          []string{"victim.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@victim.example"),
		ChallengeBaseURL: "http://cr.victim.example",
	}, clk, dns, filters.NewChain(
		filters.NewAntivirus(),
		filters.NewReverseDNS(dns),
		filters.NewRBL(spamhaus),
	), whitelist.NewStore(clk), nil)
	dns.RegisterMailDomain("victim.example", "198.51.100.10")
	comp := &simnet.Company{Name: "victim-corp", Engine: eng,
		ChallengeIP: "198.51.100.10", MailIP: "198.51.100.10"}
	net.AttachCompany(comp)

	var users []mail.Address
	for i := 0; i < 25; i++ {
		u := mail.Address{Local: fmt.Sprintf("user%02d", i), Domain: "victim.example"}
		users = append(users, u)
		eng.AddUser(u)
	}

	// The bystander world the campaign spoofs: 200 innocent mailboxes
	// across 5 domains, plus non-existent addresses at the same domains.
	rng := rand.New(rand.NewSource(99))
	var innocents []mail.Address
	randomLocal := func() string {
		b := make([]byte, 5+rng.Intn(6))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	// A slightly attentive bystander population so the demo reliably
	// shows the (rare) spurious-solve channel on 600 messages.
	curious := simnet.DefaultBehavior(simnet.PersonaInnocent)
	curious.VisitProb, curious.SolveProbGivenVisit = 0.06, 0.4
	for d := 0; d < 12; d++ {
		domain := fmt.Sprintf("bystander%d.example", d)
		rs := simnet.NewRemoteServer(domain, fmt.Sprintf("203.0.113.%d", 10+d))
		for m := 0; m < 20; m++ {
			local := randomLocal()
			rs.AddMailboxBehavior(local, simnet.PersonaInnocent, curious)
			innocents = append(innocents, mail.Address{Local: local, Domain: domain})
		}
		net.AddRemote(rs)
	}

	// The botnet: 60 compromised hosts; 30% lack reverse DNS, 45% of the
	// rest are already on the blocklist the engine consults.
	type bot struct{ ip string }
	var botnet []bot
	for b := 0; b < 60; b++ {
		ip := fmt.Sprintf("100.64.0.%d", b+1)
		if rng.Float64() >= 0.3 {
			dns.AddPTR(ip, fmt.Sprintf("dsl-%d.isp.example", b))
			if rng.Float64() < 0.45 {
				spamhaus.AddStatic(ip)
			}
		}
		botnet = append(botnet, bot{ip})
	}

	// Fire the campaign: 600 messages over 3 days, fixed subject,
	// spoofed senders (60% non-existent, 40% innocent bystanders).
	subject := "limited offer cheap meds best price guaranteed delivery today only friend"
	fmt.Printf("firing 600-message campaign %q\n\n", subject)
	for i := 0; i < 600; i++ {
		var from mail.Address
		if rng.Float64() < 0.6 {
			from = mail.Address{
				Local:  randomLocal() + fmt.Sprint(rng.Intn(100)),
				Domain: fmt.Sprintf("bystander%d.example", rng.Intn(12)),
			}
		} else {
			from = innocents[rng.Intn(len(innocents))]
		}
		msg := &mail.Message{
			ID:           mail.NewID("camp"),
			EnvelopeFrom: from,
			Rcpt:         users[rng.Intn(len(users))],
			Subject:      subject,
			Size:         4200,
			ClientIP:     botnet[rng.Intn(len(botnet))].ip,
			Received:     clk.Now(),
		}
		eng.Receive(msg)
		if i%10 == 9 {
			sched.RunFor(15 * time.Minute) // spread the burst over ~3 days
		}
	}
	sched.RunFor(7 * 24 * time.Hour) // let challenges resolve

	// --- What the filter did. ---
	m := eng.Metrics()
	fmt.Println("engine view:")
	fmt.Printf("  gray=%d  filter-dropped=%d (av=%d rdns=%d rbl=%d)\n",
		m.SpoolGray, m.TotalFilterDropped(),
		m.FilterDropped["antivirus"], m.FilterDropped["reverse-dns"], m.FilterDropped["rbl"])
	fmt.Printf("  challenges sent=%d, suppressed (dedup)=%d\n", m.ChallengesSent, m.ChallengeSuppressed)

	st := net.DeliveryStats()
	fmt.Println("\nchallenge outcomes (the backscatter):")
	for _, s := range []simnet.ChallengeStatus{
		simnet.StatusDelivered, simnet.StatusBouncedNoUser, simnet.StatusExpired,
	} {
		fmt.Printf("  %-18s %d\n", s, st.ByStatus[s])
	}
	fmt.Printf("  solved by innocent bystanders: %d\n", st.Solved)
	if n := m.Delivered[core.ViaChallenge]; n > 0 {
		fmt.Printf("  => %d spam message(s) DELIVERED (spurious, §4.1: ~1 per 10k challenges)\n", n)
	}

	// --- The §4.1 clustering finds the campaign. ---
	var items []cluster.Item
	for _, rec := range net.Records() {
		items = append(items, cluster.Item{
			Subject: rec.Challenge.Subject,
			Sender:  rec.Challenge.To,
			Bounced: rec.Status.Bounced(),
			Solved:  rec.Solved,
		})
	}
	cfg := cluster.DefaultConfig()
	clusters := cluster.Build(items, cfg)
	fmt.Println("\nclustering of challenged messages:")
	for _, c := range clusters {
		kind := "LOW sender similarity (botnet)"
		if c.HighSimilarity {
			kind = "HIGH sender similarity (newsletter-like)"
		}
		fmt.Printf("  cluster %q\n    size=%d  %s\n    bounced=%.0f%%  solved=%d\n",
			c.Subject[:40]+"...", c.Size(), kind, 100*c.BouncedFraction(), c.Solved())
	}
}
