// Chaos: the standard workload under infrastructure failure.
//
// The paper's CR product leaned on four external dependencies — DNS,
// a blocklist, a scanner backend and a smarthost. This example runs a
// small fleet twice with the same seed, the second time under a fault
// plan (100% blocklist outage, flaky DNS, a scanner that sometimes
// dies), and prints the classification shift. The hardened filter
// chain fails open for the advisory lookups and closed for the scan,
// so mail keeps flowing; the deltas show the price.
//
//	go run ./examples/chaos
//
// The same plan is in examples/chaos/plan.json for use with
//
//	go run ./cmd/reproduce -preset quick -only chaos -fault-plan examples/chaos/plan.json
//
// Valid rule targets are checked at plan load (a typo no longer
// silently injects nothing): dns, av, smarthost, smarthost-dial,
// store, reputation, surge, rbl:<name>, plus trailing-'*' prefix
// wildcards such as "rbl:*" or "smarthost*".
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// planJSON is the fault plan, inline so the example is self-contained
// (examples/chaos/plan.json holds the identical plan as a file).
const planJSON = `{
  "name": "example-chaos",
  "rules": [
    {"target": "rbl:*", "kind": "outage"},
    {"target": "dns", "kind": "timeout", "probability": 0.05},
    {"target": "av", "kind": "error", "probability": 0.01},
    {"target": "smarthost", "kind": "tempfail", "probability": 0.30}
  ]
}`

func main() {
	plan, err := faults.Parse(strings.NewReader(planJSON))
	if err != nil {
		log.Fatalf("parse plan: %v", err)
	}

	// Two identically-seeded quick runs: clean, then faulted. Every
	// difference in the table below is caused by the injected faults —
	// rerunning this program reproduces it byte for byte.
	report := experiments.Chaos(experiments.Quick(7), plan)
	fmt.Print(report.Render())

	fmt.Println()
	fmt.Println("Reading the table: with every blocklist dark the rbl filter")
	fmt.Println("degrades fail-open (filter-degraded/rbl ≈ gray volume), its")
	fmt.Println("drops go to zero, and the surviving spam is challenged instead")
	fmt.Println("— the fail-open price is extra challenges, never lost mail.")
}
