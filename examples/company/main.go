// Company: a full single-company deployment over real TCP and HTTP.
//
// This example runs the product's two public surfaces — the SMTP MTA-IN
// and the CAPTCHA web server — on real sockets, then plays both sides:
// an SMTP client delivers mail (whitelisted, stranger, unknown user,
// relay probe) and an HTTP client opens and solves the challenge, exactly
// the path a legitimate sender walks in the paper's §2.
//
//	go run ./examples/company
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/gateway"
	"repro/internal/mail"
	"repro/internal/smtp"
	"repro/internal/whitelist"
)

func main() {
	clk := clock.Real{}
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "127.0.0.1")
	dns.AddPTR("127.0.0.1", "localhost.example.com")

	// Challenge web server on a random port.
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	baseURL := "http://" + httpLn.Addr().String()

	var challenges []core.OutboundChallenge
	eng := core.New(core.Config{
		Name:             "acme",
		Domains:          []string{"acme.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@acme.example"),
		ChallengeBaseURL: baseURL,
	}, clk, dns, filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns)),
		whitelist.NewStore(clk),
		func(ch core.OutboundChallenge) {
			challenges = append(challenges, ch)
			fmt.Printf("  [mta-out] challenge for %s -> %s\n", ch.To, ch.URL)
		})
	bob := mail.MustParseAddress("bob@acme.example")
	eng.AddUser(bob)
	eng.AddManualWhitelist(bob, mail.MustParseAddress("partner@example.com"))

	go http.Serve(httpLn, eng.Captcha().Handler()) //nolint:errcheck

	// SMTP MTA-IN on a random port.
	smtpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := smtp.NewServer(smtp.Config{Hostname: "mta.acme.example"}, gateway.New(eng))
	go srv.Serve(smtpLn) //nolint:errcheck
	defer srv.Close()
	fmt.Printf("MTA-IN listening on %s, challenges served at %s\n\n", smtpLn.Addr(), baseURL)

	// --- The outside world speaks SMTP to us. ---
	client, err := smtp.Dial(smtpLn.Addr().String(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.Hello("sender.example.com"); err != nil {
		log.Fatal(err)
	}

	partner := mail.MustParseAddress("partner@example.com")
	alice := mail.MustParseAddress("alice@example.com")

	fmt.Println("1. whitelisted partner writes bob: delivered instantly")
	must(client.SendMail(partner, []mail.Address{bob},
		smtp.BuildMessage(partner, bob, "quarterly numbers attached as discussed", "see attachment")))

	fmt.Println("2. stranger alice writes bob: quarantined + challenged")
	must(client.SendMail(alice, []mail.Address{bob},
		smtp.BuildMessage(alice, bob, "introduction from the conference last week", "hello!")))

	fmt.Println("3. mail for an unknown user: 550 at RCPT (the studied MTAs dropped 62% this way)")
	if err := client.Mail(alice); err != nil {
		log.Fatal(err)
	}
	if err := client.Rcpt(mail.MustParseAddress("ghost@acme.example")); err != nil {
		fmt.Printf("  [smtp] %v\n", err)
	}
	must(client.Reset())

	fmt.Println("4. relay probe for a foreign domain: 554 (not an open relay)")
	if err := client.Mail(alice); err != nil {
		log.Fatal(err)
	}
	if err := client.Rcpt(mail.MustParseAddress("victim@elsewhere.example")); err != nil {
		fmt.Printf("  [smtp] %v\n", err)
	}
	must(client.Reset())
	must(client.Quit())

	// --- Alice opens the challenge URL and solves the CAPTCHA. ---
	fmt.Println("\n5. alice opens the challenge page and solves it over HTTP")
	chURL := challenges[0].URL
	resp, err := http.Get(chURL)
	if err != nil {
		log.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	q := regexp.MustCompile(`What is (\d+) plus (\d+)\?`).FindStringSubmatch(string(page))
	if q == nil {
		log.Fatalf("no puzzle on the page:\n%s", page)
	}
	a, _ := strconv.Atoi(q[1])
	b, _ := strconv.Atoi(q[2])
	fmt.Printf("  [web] puzzle: %s + %s — posting %d\n", q[1], q[2], a+b)
	resp, err = http.PostForm(chURL, url.Values{"answer": {strconv.Itoa(a + b)}})
	if err != nil {
		log.Fatal(err)
	}
	confirmation, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("  [web] %s", confirmation)

	// --- Outcome. ---
	fmt.Println("\nfinal state:")
	m := eng.Metrics()
	fmt.Printf("  spools: white=%d gray=%d; challenges=%d; quarantine now %d\n",
		m.SpoolWhite, m.SpoolGray, m.ChallengesSent, eng.QuarantineLen())
	for _, d := range eng.Deliveries() {
		fmt.Printf("  inbox: %q from %s via %s\n", strings.TrimSpace(d.MsgID), d.Sender, d.Via)
	}
	fmt.Printf("  alice whitelisted for bob: %v\n", eng.Whitelists().IsWhite(bob, alice))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
