// Quickstart: the challenge-response engine in ~60 lines.
//
// Build an engine for one company, feed it three messages — one from a
// whitelisted contact, one from a stranger, one from a blacklisted
// sender — then solve the stranger's challenge and watch the message get
// delivered and the sender whitelisted.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/whitelist"
)

func main() {
	// Substrate: a virtual clock and a private DNS (the engine verifies
	// that sender domains resolve, like the studied product's MTA-IN).
	clk := clock.NewSim(time.Date(2010, 7, 1, 9, 0, 0, 0, time.UTC))
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")

	// The engine: one protected domain, one protected user, an antivirus
	// + reverse-DNS filter chain, and a callback that "sends" challenges.
	wl := whitelist.NewStore(clk)
	chain := filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns))
	var outbox []core.OutboundChallenge
	eng := core.New(core.Config{
		Name:             "quickstart",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, chain, wl, func(ch core.OutboundChallenge) {
		outbox = append(outbox, ch)
		fmt.Printf("  -> challenge emailed to %s: %s\n", ch.To, ch.URL)
	})
	bob := mail.MustParseAddress("bob@corp.example")
	eng.AddUser(bob)
	eng.AddManualWhitelist(bob, mail.MustParseAddress("friend@example.com"))
	eng.Whitelists().AddBlack(bob, mail.MustParseAddress("spammer@example.com"))

	send := func(from, subject string) {
		msg := &mail.Message{
			ID:           mail.NewID("demo"),
			EnvelopeFrom: mail.MustParseAddress(from),
			Rcpt:         bob,
			Subject:      subject,
			Size:         2048,
			ClientIP:     "192.0.2.10",
			Received:     clk.Now(),
		}
		verdict := eng.Receive(msg)
		fmt.Printf("%-24s -> MTA says %q\n", from, verdict)
	}

	fmt.Println("== three senders write to bob ==")
	send("friend@example.com", "lunch?")             // whitelisted: instant
	send("stranger@example.com", "hello, may I ask") // gray: challenged
	send("spammer@example.com", "BUY NOW")           // blacklisted: dropped

	m := eng.Metrics()
	fmt.Printf("\nspools: white=%d black=%d gray=%d, challenges=%d, quarantined=%d\n",
		m.SpoolWhite, m.SpoolBlack, m.SpoolGray, m.ChallengesSent, eng.QuarantineLen())

	// The stranger solves the CAPTCHA twelve minutes later.
	clk.Advance(12 * time.Minute)
	svc := eng.Captcha()
	tok := outbox[0].Token
	question, _ := svc.Visit(tok)
	answer, _ := svc.Answer(tok) // the simulated human "reads" the puzzle
	fmt.Printf("\nstranger opens the challenge: %q\n", question)
	if err := svc.Solve(tok, answer); err != nil {
		panic(err)
	}

	for _, d := range eng.Deliveries() {
		fmt.Printf("delivered to %s from %-24s via %-9s after %v\n",
			d.User, d.Sender, d.Via, d.Delay())
	}
	fmt.Printf("\nstranger now whitelisted: %v\n",
		eng.Whitelists().IsWhite(bob, mail.MustParseAddress("stranger@example.com")))
}
