// Replay: frozen workloads for apples-to-apples filter comparisons.
//
// A measurement study cannot rerun the Internet, but it CAN freeze a
// captured workload and replay it against alternative configurations.
// This example records one day of synthetic traffic to an in-memory
// trace, then replays the byte-identical stream against three engines:
//
//  1. the product's stock chain (antivirus + reverse-DNS + RBL),
//  2. the same chain plus the §5.2 SPF filter,
//  3. no auxiliary filters at all (what the paper calls the useless
//     extreme where the CR system "acts as a spam multiplier").
//
// Because the traffic is identical, every difference in challenge volume
// is attributable to the configuration — the discipline behind the
// paper's Figure 12 what-if.
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/spf"
	"repro/internal/trace"
	"repro/internal/whitelist"
	"repro/internal/workload"
)

func main() {
	// --- 1. Record: one simulated day of a small fleet. ---
	var buf strings.Builder
	tw, err := trace.NewWriter(&buf, trace.Header{Name: "replay-demo", Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.DefaultConfig(5, 2)
	for i := range cfg.Profiles {
		cfg.Profiles[i].Users = 25
		cfg.Profiles[i].DailyVolume = 2500
	}
	cfg.TraceSink = tw.Write
	fleet := workload.NewFleet(cfg)
	fleet.Run(1)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d messages to an in-memory trace (%d KiB)\n\n",
		tw.Count(), len(buf.String())/1024)

	// --- 2. Replay against three filter configurations. ---
	// The replay world shares the recorded world's DNS and blocklist
	// state (same seed => same zones, bots, listings).
	type config struct {
		name  string
		build func(dns *dnssim.Server, provider *rbl.Provider) *filters.Chain
	}
	configs := []config{
		{"stock (AV+rDNS+RBL)", func(dns *dnssim.Server, p *rbl.Provider) *filters.Chain {
			return filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns), filters.NewRBL(p))
		}},
		{"stock + SPF (§5.2)", func(dns *dnssim.Server, p *rbl.Provider) *filters.Chain {
			return filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns),
				filters.NewRBL(p), filters.NewSPF(spf.New(dns)))
		}},
		{"no filters at all", func(*dnssim.Server, *rbl.Provider) *filters.Chain {
			return filters.NewChain()
		}},
	}

	fmt.Printf("%-22s %10s %10s %12s\n", "configuration", "gray", "challenges", "R@dispatch")
	for _, c := range configs {
		challenges, gray, reaching := replay(buf.String(), c.build)
		fmt.Printf("%-22s %10d %10d %11.1f%%\n",
			c.name, gray, challenges, 100*float64(challenges)/float64(reaching))
	}
	fmt.Println("\nidentical traffic; every delta is the filter configuration —")
	fmt.Println("no filters turns the CR system into the paper's 'spam multiplier'.")
}

// replay rebuilds the recorded world (same seed) and feeds the trace to
// engines using the given filter chain.
func replay(traceData string, buildChain func(*dnssim.Server, *rbl.Provider) *filters.Chain) (challenges, gray, reaching int64) {
	mail.ResetIDCounter()
	cfg := workload.DefaultConfig(5, 2)
	for i := range cfg.Profiles {
		cfg.Profiles[i].Users = 25
		cfg.Profiles[i].DailyVolume = 2500
	}
	world := workload.NewFleet(cfg) // only for its DNS/blocklists/whitelist seeds

	// Fresh engines wired to the replayed world's substrate.
	clk := clock.NewSim(workload.FleetStart)
	engines := make(map[string]*core.Engine)
	for i, p := range cfg.Profiles {
		spamhaus := world.Providers[2]
		wl := whitelist.NewStore(clk)
		eng := core.New(core.Config{
			Name:             p.Name,
			Domains:          []string{p.Domain},
			ChallengeFrom:    mail.Address{Local: "challenge", Domain: p.Domain},
			ChallengeBaseURL: "http://cr." + p.Domain,
			Seed:             int64(i),
		}, clk, world.DNS, buildChain(world.DNS, spamhaus), wl, func(core.OutboundChallenge) {})
		for _, u := range world.Users(p.Name) {
			eng.AddUser(u)
		}
		engines[p.Name] = eng
	}

	r, err := trace.NewReader(strings.NewReader(traceData))
	if err != nil {
		log.Fatal(err)
	}
	rp := trace.NewReplayer(r)
	rp.Deliver = func(company string, m *mail.Message, _ string) {
		eng := engines[company]
		if eng == nil {
			return
		}
		if m.Received.After(clk.Now()) {
			clk.Set(m.Received)
		}
		eng.Receive(m)
	}
	if _, err := rp.Replay(); err != nil {
		log.Fatal(err)
	}

	for _, eng := range engines {
		m := eng.Metrics()
		challenges += m.ChallengesSent
		gray += m.SpoolGray
		reaching += m.SpoolWhite + m.SpoolBlack + m.SpoolGray
	}
	return challenges, gray, reaching
}
