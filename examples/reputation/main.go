// Reputation: the sender-reputation engine feeding the adaptive filter
// stage.
//
// Every classification outcome (delivery, solved challenge, filter
// drop, challenge bounce, RBL hit) feeds a time-decayed per-sender
// score. Trusted senders skip the probe-filter chain entirely on the
// engine fast path; suspect senders are dropped by a hardened fail-open
// reputation filter before any probe spends a lookup on them. This
// example runs a small fleet twice with the same seed — with and
// without the subsystem — and prints the shift, plus the score
// trajectories for the two sender populations that matter: stable
// newsletter operations vs botnet campaigns churning through spoofed
// senders and residential IPs.
//
//	go run ./examples/reputation
//
// The same ablation is available as
//
//	go run ./cmd/reproduce -preset quick -only reputation
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	// Two identically-seeded runs; every delta below is caused by the
	// reputation stage, and rerunning reproduces it byte for byte.
	res := experiments.ReputationAblation(7, 6, 8)
	fmt.Print(res.Render())

	fmt.Println()
	fmt.Println("Reading the table: churning botnet senders accumulate negative")
	fmt.Println("evidence (RBL hits, filter drops, bounced challenges) and fall")
	fmt.Println("into the suspect band, so their next messages are dropped before")
	fmt.Println("the probe filters run — challenge volume collapses while white")
	fmt.Println("deliveries hold. Stable newsletter senders accumulate deliveries")
	fmt.Println("and solved challenges instead; the trusted ones skip the probe")
	fmt.Println("chain on the fast path. The store is advisory and fails open:")
	fmt.Println("an outage means extra probe work, never lost mail.")
}
