// Package adminui serves the user-facing quarantine pages of the CR
// product: the web rendition of the daily digest (§2), where a protected
// user reviews gray-spool messages and authorizes or deletes them — the
// manual rescue channel responsible for ~2% of the study's whitelisting
// (55,850 messages) and the delivery path with the 4-hour-to-3-day
// latency tail of Figure 7.
//
// Routes:
//
//	GET  /digest/{user}                     — pending messages for user
//	POST /digest/{user}/authorize?msg={id}  — whitelist sender + deliver
//	POST /digest/{user}/delete?msg={id}     — drop the message
//	GET  /metrics                           — engine counters, text/plain
//	GET  /reputation                        — sender-reputation standings
//	GET  /overload                          — admission-controller state
//	GET  /wal                               — write-ahead-log segments and watermarks
//	GET  /outbound                          — challenge spool and per-domain delivery health
package adminui

import (
	"fmt"
	"html/template"
	"net/http"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dnscache"
	"repro/internal/logscan"
	"repro/internal/mail"
	"repro/internal/outbound"
	"repro/internal/overload"
	"repro/internal/reputation"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/wal"
)

// Server renders the digest UI for one engine.
type Server struct {
	engine   *core.Engine
	dnsCache *dnscache.Cache
	rblCache *dnscache.RBLCache
	ctl      *overload.Controller
	wal      *wal.Log
	saver    *store.Saver
	outQ     *outbound.Queue
	syncFn   func() SyncStats
}

// SyncStats carries the fleet driver's sparse-barrier and
// steal-scheduler counters for /metrics. It mirrors
// workload.SyncStats field-for-field so a fleet host can adapt with a
// one-line closure, without adminui depending on the workload package.
type SyncStats struct {
	BarriersFired   int64
	BarriersSkipped int64
	Steals          int64
	TrapHitsApplied int64
}

// New returns the admin UI over engine.
func New(engine *core.Engine) *Server {
	return &Server{engine: engine}
}

// SetResolverCaches registers the process's resolver caches so /metrics
// reports their hit rates (either may be nil).
func (s *Server) SetResolverCaches(dns *dnscache.Cache, rbl *dnscache.RBLCache) {
	s.dnsCache = dns
	s.rblCache = rbl
}

// SetSyncSource registers a callback supplying the fleet's sparse-
// barrier counters so /metrics exports barrier_fired_total,
// barrier_skipped_total and steal_count_total (nil detaches).
func (s *Server) SetSyncSource(fn func() SyncStats) { s.syncFn = fn }

// SetOverload registers the deployment's admission controller so
// /metrics exports its counters and /overload renders its state.
func (s *Server) SetOverload(ctl *overload.Controller) { s.ctl = ctl }

// SetWAL registers the installation's write-ahead log so /metrics
// exports the durability counters and /wal renders the segment table.
func (s *Server) SetWAL(l *wal.Log) { s.wal = l }

// SetSaver registers the snapshot saver so /metrics exports the
// store_save_* counters.
func (s *Server) SetSaver(sv *store.Saver) { s.saver = sv }

// SetOutbound registers the installation's outbound challenge queue so
// /metrics exports the spool counters and /outbound renders per-domain
// delivery health.
func (s *Server) SetOutbound(q *outbound.Queue) { s.outQ = q }

var digestTmpl = template.Must(template.New("digest").Parse(`<!DOCTYPE html>
<html><head><title>Quarantine digest — {{.User}}</title></head><body>
<h1>Quarantined messages for {{.User}}</h1>
{{if not .Items}}<p>Nothing pending. The challenge-response filter has no held mail for you.</p>{{end}}
<table border="1" cellpadding="4">
{{range .Items}}
<tr>
  <td>{{.Queued}}</td>
  <td>{{.Sender}}</td>
  <td>{{.Subject}}</td>
  <td>
    <form method="POST" action="/digest/{{$.UserPath}}/authorize?msg={{.MsgID}}" style="display:inline">
      <button>Authorize</button>
    </form>
    <form method="POST" action="/digest/{{$.UserPath}}/delete?msg={{.MsgID}}" style="display:inline">
      <button>Delete</button>
    </form>
  </td>
</tr>
{{end}}
</table>
<p>{{len .Items}} message(s) held. Authorizing whitelists the sender permanently.</p>
</body></html>
`))

type digestItemView struct {
	MsgID   string
	Sender  string
	Subject string
	Queued  string
}

// Handler returns the http.Handler for the admin routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/digest/", s.handleDigest)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/reputation", s.handleReputation)
	mux.HandleFunc("/overload", s.handleOverload)
	mux.HandleFunc("/wal", s.handleWAL)
	mux.HandleFunc("/outbound", s.handleOutbound)
	return mux
}

// parseDigestPath splits /digest/{user}[/{action}].
func parseDigestPath(path string) (user, action string, ok bool) {
	rest := strings.TrimPrefix(path, "/digest/")
	if rest == path || rest == "" {
		return "", "", false
	}
	parts := strings.SplitN(rest, "/", 2)
	user = parts[0]
	if len(parts) == 2 {
		action = parts[1]
	}
	return user, action, true
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	userRaw, action, ok := parseDigestPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	user, err := mail.ParseAddress(userRaw)
	if err != nil {
		http.Error(w, "bad user address", http.StatusBadRequest)
		return
	}
	if !s.engine.HasUser(user) {
		http.Error(w, "no such user", http.StatusNotFound)
		return
	}

	switch {
	case action == "" && r.Method == http.MethodGet:
		s.renderDigest(w, user, userRaw)
	case action == "authorize" && r.Method == http.MethodPost:
		s.act(w, r, user, s.engine.AuthorizeFromDigest, "authorized; sender whitelisted")
	case action == "delete" && r.Method == http.MethodPost:
		s.act(w, r, user, s.engine.DeleteFromDigest, "deleted")
	case action == "" || action == "authorize" || action == "delete":
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) renderDigest(w http.ResponseWriter, user mail.Address, userRaw string) {
	pending := s.engine.PendingForUser(user)
	items := make([]digestItemView, 0, len(pending))
	for _, p := range pending {
		items = append(items, digestItemView{
			MsgID:   p.MsgID,
			Sender:  p.Sender.String(),
			Subject: p.Subject,
			Queued:  p.Queued.Format("2006-01-02 15:04"),
		})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Queued < items[j].Queued })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = digestTmpl.Execute(w, map[string]interface{}{
		"User":     user.String(),
		"UserPath": template.URLQueryEscaper(userRaw),
		"Items":    items,
	})
}

func (s *Server) act(w http.ResponseWriter, r *http.Request, user mail.Address, fn func(mail.Address, string) error, verb string) {
	msgID := r.URL.Query().Get("msg")
	if msgID == "" {
		http.Error(w, "missing msg parameter", http.StatusBadRequest)
		return
	}
	if err := fn(user, msgID); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "message %s %s\n", msgID, verb)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	m := s.engine.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "incoming %d\n", m.MTAIncoming)
	fmt.Fprintf(w, "mta_dropped %d\n", m.TotalMTADropped())
	fmt.Fprintf(w, "spool_white %d\n", m.SpoolWhite)
	fmt.Fprintf(w, "spool_black %d\n", m.SpoolBlack)
	fmt.Fprintf(w, "spool_gray %d\n", m.SpoolGray)
	fmt.Fprintf(w, "filter_dropped %d\n", m.TotalFilterDropped())
	fmt.Fprintf(w, "filter_degraded %d\n", m.TotalFilterDegraded())
	fmt.Fprintf(w, "mta_degraded_accept %d\n", m.MTADegradedAccept)
	fmt.Fprintf(w, "mta_degraded_drop %d\n", m.MTADegradedDrop)
	fmt.Fprintf(w, "challenges_sent %d\n", m.ChallengesSent)
	fmt.Fprintf(w, "challenges_suppressed %d\n", m.ChallengeSuppressed)
	fmt.Fprintf(w, "quarantine_len %d\n", s.engine.QuarantineLen())
	fmt.Fprintf(w, "quarantine_expired %d\n", m.QuarantineExpired)
	fmt.Fprintf(w, "reputation_fast_path %d\n", m.ReputationFastPath)
	fmt.Fprintf(w, "reputation_suspect_drop %d\n", m.ReputationSuspect)
	if rep := s.engine.Reputation(); rep != nil {
		st := rep.Stats()
		fmt.Fprintf(w, "reputation_entries %d\n", st.Entries)
		fmt.Fprintf(w, "reputation_records %d\n", st.Records)
		fmt.Fprintf(w, "reputation_lookups %d\n", st.Lookups)
		fmt.Fprintf(w, "reputation_dropped_writes %d\n", st.DroppedWrites)
		fmt.Fprintf(w, "reputation_failed_lookups %d\n", st.FailedLookups)
	}
	for via, n := range m.Delivered {
		fmt.Fprintf(w, "delivered_%s %d\n", via, n)
	}
	fmt.Fprintf(w, "challenge_loop_suppressed_total %d\n", m.ChallengeLoopSuppressed)
	fmt.Fprintf(w, "dsn_orphaned_total %d\n", m.DSNOrphaned)
	for _, cls := range sortedStringKeys(m.ChallengeBounced) {
		fmt.Fprintf(w, "outbound_bounce_total{class=%q} %d\n", cls, m.ChallengeBounced[cls])
	}
	if s.outQ != nil {
		fmt.Fprintf(w, "outbound_spool_depth %d\n", s.outQ.SpoolDepth())
		fmt.Fprintf(w, "outbound_deferred %d\n", s.outQ.Deferred())
		fmt.Fprintf(w, "outbound_journal_dropped %d\n", s.outQ.JournalDropped())
		var open, halfOpen int
		for _, d := range s.outQ.DomainStats() {
			switch d.Breaker.State {
			case resilience.Open:
				open++
			case resilience.HalfOpen:
				halfOpen++
			}
		}
		fmt.Fprintf(w, "outbound_breakers_open %d\n", open)
		fmt.Fprintf(w, "outbound_breakers_half_open %d\n", halfOpen)
	}
	if s.dnsCache != nil {
		st := s.dnsCache.Stats()
		fmt.Fprintf(w, "dns_cache_lookups %d\n", st.Lookups())
		fmt.Fprintf(w, "dns_cache_hits %d\n", st.Hits)
		fmt.Fprintf(w, "dns_cache_negative_hits %d\n", st.NegHits)
		fmt.Fprintf(w, "dns_cache_coalesced %d\n", st.Coalesced)
		fmt.Fprintf(w, "dns_cache_hit_rate %.4f\n", st.HitRate())
		fmt.Fprintf(w, "dns_cache_entries %d\n", s.dnsCache.Len())
	}
	if s.rblCache != nil {
		st := s.rblCache.Stats()
		fmt.Fprintf(w, "rbl_cache_lookups %d\n", st.Lookups())
		fmt.Fprintf(w, "rbl_cache_hits %d\n", st.Hits)
		fmt.Fprintf(w, "rbl_cache_negative_hits %d\n", st.NegHits)
		fmt.Fprintf(w, "rbl_cache_hit_rate %.4f\n", st.HitRate())
	}
	if s.syncFn != nil {
		ss := s.syncFn()
		fmt.Fprintf(w, "barrier_fired_total %d\n", ss.BarriersFired)
		fmt.Fprintf(w, "barrier_skipped_total %d\n", ss.BarriersSkipped)
		fmt.Fprintf(w, "steal_count_total %d\n", ss.Steals)
		fmt.Fprintf(w, "trap_hits_applied_total %d\n", ss.TrapHitsApplied)
	}
	if s.ctl != nil {
		om := s.ctl.Metrics()
		fmt.Fprintf(w, "overload_shed_total %d\n", om.ShedTotal())
		fmt.Fprintf(w, "admission_queue_depth %d\n", om.QueueDepth)
		fmt.Fprintf(w, "admission_limit %.2f\n", om.Limit)
		fmt.Fprintf(w, "admission_inflight %d\n", om.InFlight)
		fmt.Fprintf(w, "admission_admitted_total %d\n", om.Admitted())
		draining := 0
		if om.Draining {
			draining = 1
		}
		fmt.Fprintf(w, "admission_draining %d\n", draining)
	}
	if s.wal != nil {
		wm := s.wal.Metrics()
		fmt.Fprintf(w, "wal_appends_total %d\n", wm.Appends)
		fmt.Fprintf(w, "wal_fsyncs_total %d\n", wm.Fsyncs)
		fmt.Fprintf(w, "wal_bytes_total %d\n", wm.Bytes)
		fmt.Fprintf(w, "wal_replayed_records %d\n", wm.Replayed)
		fmt.Fprintf(w, "wal_compactions_total %d\n", wm.Compactions)
		fmt.Fprintf(w, "wal_dropped_appends %d\n", wm.DroppedAppends)
		fmt.Fprintf(w, "wal_fsync_errors %d\n", wm.FsyncErrors)
		fmt.Fprintf(w, "wal_last_lsn %d\n", wm.LastLSN)
		fmt.Fprintf(w, "wal_durable_lsn %d\n", wm.DurableLSN)
		fmt.Fprintf(w, "wal_segments %d\n", wm.Segments)
		fmt.Fprintf(w, "wal_pending_bytes %d\n", wm.PendingBytes)
	}
	if s.saver != nil {
		st := s.saver.Stats()
		fmt.Fprintf(w, "store_save_attempts %d\n", st.Attempts)
		fmt.Fprintf(w, "store_save_failed %d\n", st.Failed)
		fmt.Fprintf(w, "store_save_last_duration_seconds %.6f\n", st.LastDuration.Seconds())
		if !st.LastSuccess.IsZero() {
			fmt.Fprintf(w, "store_save_last_success_unix %d\n", st.LastSuccess.Unix())
		}
	}
	// Log-analysis counters: lifetime totals across every logscan run in
	// this process (replay tooling, experiments), so an operator can see
	// how much log the measurement pipeline has chewed through.
	ls := logscan.TotalStats()
	fmt.Fprintf(w, "logscan_events_total %d\n", ls.Events)
	fmt.Fprintf(w, "logscan_bad_lines_total %d\n", ls.BadLines)
	// Process-level contention counters: the cumulative time goroutines
	// have spent blocked on mutexes is the live-deployment check that the
	// engine's hot path stays contention-free (near-zero growth under
	// load is the healthy reading).
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindFloat64 {
		fmt.Fprintf(w, "mutex_wait_seconds %.6f\n", sample[0].Value.Float64())
	}
	fmt.Fprintf(w, "gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "goroutines %d\n", runtime.NumGoroutine())
}

var overloadTmpl = template.Must(template.New("overload").Parse(`<!DOCTYPE html>
<html><head><title>Overload control — {{.Company}}</title></head><body>
<h1>Admission control</h1>
<p>State: {{if .Draining}}<b>draining</b> (shutdown in progress; new mail gets 421){{else}}accepting{{end}}</p>
<table border="1" cellpadding="4">
<tr><th>limit (AIMD)</th><td>{{printf "%.2f" .M.Limit}}</td></tr>
<tr><th>in flight</th><td>{{.M.InFlight}}</td></tr>
<tr><th>queue depth</th><td>{{.M.QueueDepth}} (max {{.M.MaxQueueDepth}})</td></tr>
<tr><th>admitted</th><td>{{.Admitted}} ({{.M.AdmittedNow}} immediate, {{.M.AdmittedQueued}} queued)</td></tr>
<tr><th>shed total</th><td>{{.ShedTotal}}</td></tr>
<tr><th>latency observations</th><td>{{.M.Observations}} ({{.M.Decreases}} backoffs)</td></tr>
<tr><th>admission delay p50 / p99</th><td>{{.P50}} / {{.P99}}</td></tr>
</table>
<h2>Shed by reason</h2>
{{if .Sheds}}<table border="1" cellpadding="4">
<tr><th>reason</th><th>count</th></tr>
{{range .Sheds}}<tr><td>{{.Reason}}</td><td>{{.Count}}</td></tr>{{end}}
</table>{{else}}<p>none — no mail has been shed</p>{{end}}
<p>Shed mail is tempfailed (SMTP 451, or 421 while draining), never
dropped: compliant senders retry and deliver once the surge passes.</p>
</body></html>
`))

// handleOverload renders the admission controller's live state.
func (s *Server) handleOverload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.ctl == nil {
		http.Error(w, "no admission controller configured", http.StatusNotFound)
		return
	}
	m := s.ctl.Metrics()
	type shedRow struct {
		Reason string
		Count  int64
	}
	sheds := make([]shedRow, 0, len(m.Shed))
	for reason, n := range m.Shed {
		sheds = append(sheds, shedRow{string(reason), n})
	}
	sort.Slice(sheds, func(i, j int) bool { return sheds[i].Reason < sheds[j].Reason })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = overloadTmpl.Execute(w, map[string]interface{}{
		"Company":   s.engine.Name(),
		"M":         m,
		"Draining":  m.Draining,
		"Admitted":  m.Admitted(),
		"ShedTotal": m.ShedTotal(),
		"Sheds":     sheds,
		"P50":       m.DelayQuantile(0.50).String(),
		"P99":       m.DelayQuantile(0.99).String(),
	})
}

var walTmpl = template.Must(template.New("wal").Parse(`<!DOCTYPE html>
<html><head><title>Write-ahead log — {{.Company}}</title></head><body>
<h1>Write-ahead log</h1>
<table border="1" cellpadding="4">
<tr><th>last LSN (appended)</th><td>{{.M.LastLSN}}</td></tr>
<tr><th>durable LSN (fsynced)</th><td>{{.M.DurableLSN}}</td></tr>
<tr><th>appends</th><td>{{.M.Appends}} ({{.M.DroppedAppends}} dropped by fault injection)</td></tr>
<tr><th>fsyncs</th><td>{{.M.Fsyncs}} ({{.M.FsyncErrors}} errors)</td></tr>
<tr><th>bytes written</th><td>{{.M.Bytes}}</td></tr>
<tr><th>pending bytes</th><td>{{.M.PendingBytes}}</td></tr>
<tr><th>replayed at boot</th><td>{{.M.Replayed}} record(s)</td></tr>
<tr><th>compactions</th><td>{{.M.Compactions}}</td></tr>
</table>
<h2>Segments ({{len .Segments}})</h2>
<table border="1" cellpadding="4">
<tr><th>file</th><th>first LSN</th><th>bytes</th><th></th></tr>
{{range .Segments}}<tr><td>{{.Name}}</td><td>{{.FirstLSN}}</td><td>{{.Bytes}}</td><td>{{if .Active}}active{{else}}sealed{{end}}</td></tr>
{{end}}</table>
<p>Group commit batches concurrent appends into one fsync; a record is
acknowledged durable only once its LSN is at or below the durable
watermark. Sealed segments wholly covered by the latest snapshot are
deleted at compaction.</p>
</body></html>
`))

// handleWAL renders the write-ahead log's watermarks and segment table.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.wal == nil {
		http.Error(w, "no write-ahead log configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = walTmpl.Execute(w, map[string]interface{}{
		"Company":  s.engine.Name(),
		"M":        s.wal.Metrics(),
		"Segments": s.wal.Segments(),
	})
}

var outboundTmpl = template.Must(template.New("outbound").Parse(`<!DOCTYPE html>
<html><head><title>Outbound challenges — {{.Company}}</title></head><body>
<h1>Outbound challenge delivery</h1>
<table border="1" cellpadding="4">
<tr><th>spool depth (pending)</th><td>{{.SpoolDepth}}</td></tr>
<tr><th>deferred (over queue bound)</th><td>{{.Deferred}}</td></tr>
<tr><th>journal appends dropped</th><td>{{.JournalDropped}}</td></tr>
<tr><th>loops suppressed</th><td>{{.LoopSuppressed}}</td></tr>
<tr><th>orphaned DSNs</th><td>{{.DSNOrphaned}}</td></tr>
</table>
<h2>Bounce classification (DSN feedback)</h2>
{{if .Bounces}}<table border="1" cellpadding="4">
<tr><th>class</th><th>count</th></tr>
{{range .Bounces}}<tr><td>{{.Class}}</td><td>{{.Count}}</td></tr>{{end}}
</table>{{else}}<p>none — no challenge bounces observed</p>{{end}}
<h2>Destination domains ({{len .Domains}})</h2>
{{if .Domains}}<table border="1" cellpadding="4">
<tr><th>domain</th><th>queued</th><th>breaker</th><th>trips</th><th>fail streak</th><th>sent</th><th>bounced</th><th>expired</th><th>next retry</th><th>last error</th></tr>
{{range .Domains}}<tr><td>{{.Domain}}</td><td>{{.Queued}}</td><td>{{.Breaker.State}}</td><td>{{.Breaker.Trips}}</td><td>{{.FailStreak}}</td><td>{{.Sent}}</td><td>{{.Bounced}}</td><td>{{.Expired}}</td><td>{{.RetryText}}</td><td>{{.LastError}}</td></tr>
{{end}}</table>{{else}}<p>none — no challenges have been enqueued</p>{{end}}
<p>Each destination domain has an independent circuit breaker and retry
ladder, so one dark domain cannot stall challenge delivery to healthy
ones. Bounce classes come from parsing RFC 3464 delivery status
notifications back into the originating gray message.</p>
</body></html>
`))

// handleOutbound renders the durable challenge spool and the per-domain
// delivery ledgers.
func (s *Server) handleOutbound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.outQ == nil {
		http.Error(w, "no outbound queue configured", http.StatusNotFound)
		return
	}
	m := s.engine.Metrics()
	type bounceRow struct {
		Class string
		Count int64
	}
	bounces := make([]bounceRow, 0, len(m.ChallengeBounced))
	for _, cls := range sortedStringKeys(m.ChallengeBounced) {
		bounces = append(bounces, bounceRow{cls, m.ChallengeBounced[cls]})
	}
	type domainRow struct {
		outbound.DomainStats
		RetryText string
	}
	stats := s.outQ.DomainStats()
	domains := make([]domainRow, 0, len(stats))
	for _, d := range stats {
		row := domainRow{DomainStats: d}
		if !d.RetryAt.IsZero() {
			row.RetryText = d.RetryAt.Format("2006-01-02 15:04:05")
		}
		domains = append(domains, row)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = outboundTmpl.Execute(w, map[string]interface{}{
		"Company":        s.engine.Name(),
		"SpoolDepth":     s.outQ.SpoolDepth(),
		"Deferred":       s.outQ.Deferred(),
		"JournalDropped": s.outQ.JournalDropped(),
		"LoopSuppressed": m.ChallengeLoopSuppressed,
		"DSNOrphaned":    m.DSNOrphaned,
		"Bounces":        bounces,
		"Domains":        domains,
	})
}

// sortedStringKeys returns m's keys in sorted order for stable output.
func sortedStringKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var reputationTmpl = template.Must(template.New("reputation").Parse(`<!DOCTYPE html>
<html><head><title>Sender reputation — {{.Company}}</title></head><body>
<h1>Sender reputation</h1>
{{range .Bands}}
<h2>{{.Title}} ({{len .Entries}})</h2>
{{if .Entries}}<table border="1" cellpadding="4">
<tr><th>sender</th><th>score</th><th>evidence mass</th></tr>
{{range .Entries}}<tr><td>{{.Key}}</td><td>{{printf "%.3f" .Score}}</td><td>{{printf "%.1f" .Mass}}</td></tr>
{{end}}</table>{{else}}<p>none</p>{{end}}
{{end}}
<h2>Store</h2>
<p>{{.Stats.Entries}} entries, {{.Stats.Records}} records, {{.Stats.Lookups}} lookups,
{{.Stats.DroppedWrites}} dropped writes, {{.Stats.FailedLookups}} failed lookups.</p>
<p>Shard occupancy: {{range .Stats.ShardOccupancy}}{{.}} {{end}}</p>
</body></html>
`))

// handleReputation renders the top-K senders per band plus the store's
// shard occupancy, the operator view of the reputation subsystem.
func (s *Server) handleReputation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rep := s.engine.Reputation()
	if rep == nil {
		http.Error(w, "no reputation store configured", http.StatusNotFound)
		return
	}
	const topK = 20
	type bandView struct {
		Title   string
		Entries []reputation.EntrySummary
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = reputationTmpl.Execute(w, map[string]interface{}{
		"Company": s.engine.Name(),
		"Bands": []bandView{
			{"Trusted", rep.TopSenders(reputation.Trusted, topK)},
			{"Suspect", rep.TopSenders(reputation.Suspect, topK)},
			{"Neutral", rep.TopSenders(reputation.Neutral, topK)},
		},
		"Stats": rep.Stats(),
	})
}
