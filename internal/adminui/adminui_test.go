package adminui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/overload"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

var t0 = time.Date(2010, 7, 1, 9, 0, 0, 0, time.UTC)

// fixture builds an engine with one quarantined message for bob.
func fixture(t *testing.T) (*core.Engine, *clock.Sim, *mail.Message, *httptest.Server) {
	t.Helper()
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	dns.AddPTR("192.0.2.10", "mail.example.com")
	eng := core.New(core.Config{
		Name:             "ui",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, filters.NewChain(filters.NewReverseDNS(dns)), whitelist.NewStore(clk),
		func(core.OutboundChallenge) {})
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))

	msg := &mail.Message{
		ID:           mail.NewID("ui"),
		EnvelopeFrom: mail.MustParseAddress("newsletter@news.example"),
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		Subject:      "weekly digest of interesting things",
		Size:         4000,
		ClientIP:     "192.0.2.10",
		Received:     clk.Now(),
	}
	dns.RegisterMailDomain("news.example", "192.0.2.30")
	if v := eng.Receive(msg); v != core.Accepted {
		t.Fatalf("fixture message verdict %v", v)
	}
	srv := httptest.NewServer(New(eng).Handler())
	t.Cleanup(srv.Close)
	return eng, clk, msg, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func post(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestDigestPageListsPending(t *testing.T) {
	_, _, msg, srv := fixture(t)
	code, body := get(t, srv.URL+"/digest/bob@corp.example")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"bob@corp.example", msg.ID, "newsletter@news.example", "weekly digest", "Authorize", "Delete"} {
		if !strings.Contains(body, want) {
			t.Fatalf("digest page missing %q:\n%s", want, body)
		}
	}
}

func TestDigestPageEmptyState(t *testing.T) {
	eng, _, msg, srv := fixture(t)
	if err := eng.DeleteFromDigest(mail.MustParseAddress("bob@corp.example"), msg.ID); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, srv.URL+"/digest/bob@corp.example")
	if code != http.StatusOK || !strings.Contains(body, "Nothing pending") {
		t.Fatalf("empty digest: %d\n%s", code, body)
	}
}

func TestAuthorizeDeliversAndWhitelists(t *testing.T) {
	eng, clk, msg, srv := fixture(t)
	clk.Advance(26 * time.Hour)
	code, body := post(t, srv.URL+"/digest/bob@corp.example/authorize?msg="+msg.ID)
	if code != http.StatusOK || !strings.Contains(body, "whitelisted") {
		t.Fatalf("authorize: %d %q", code, body)
	}
	bob := mail.MustParseAddress("bob@corp.example")
	if !eng.Whitelists().IsWhite(bob, msg.EnvelopeFrom) {
		t.Fatal("sender not whitelisted")
	}
	ds := eng.Deliveries()
	if len(ds) != 1 || ds[0].Via != core.ViaDigest || ds[0].Delay() != 26*time.Hour {
		t.Fatalf("deliveries = %+v", ds)
	}
	// Second authorize: 404 (already gone).
	code, _ = post(t, srv.URL+"/digest/bob@corp.example/authorize?msg="+msg.ID)
	if code != http.StatusNotFound {
		t.Fatalf("double authorize status = %d", code)
	}
}

func TestDeleteDropsQuarantine(t *testing.T) {
	eng, _, msg, srv := fixture(t)
	code, _ := post(t, srv.URL+"/digest/bob@corp.example/delete?msg="+msg.ID)
	if code != http.StatusOK {
		t.Fatalf("delete status = %d", code)
	}
	if eng.QuarantineLen() != 0 {
		t.Fatal("quarantine not emptied")
	}
	if eng.Metrics().DigestDeleted != 1 {
		t.Fatal("delete not counted")
	}
}

func TestErrorPaths(t *testing.T) {
	_, _, msg, srv := fixture(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/digest/", http.StatusNotFound},
		{"GET", "/digest/not-an-address", http.StatusBadRequest},
		{"GET", "/digest/ghost@corp.example", http.StatusNotFound},
		{"POST", "/digest/bob@corp.example/authorize", http.StatusBadRequest}, // no msg
		{"POST", "/digest/bob@corp.example/authorize?msg=m-none", http.StatusNotFound},
		{"POST", "/digest/bob@corp.example", http.StatusMethodNotAllowed},                        // POST digest page
		{"GET", "/digest/bob@corp.example/authorize?msg=" + msg.ID, http.StatusMethodNotAllowed}, // GET action
		{"GET", "/digest/bob@corp.example/frobnicate", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestReputationPageAndMetrics(t *testing.T) {
	eng, clk, _, srv := fixture(t)

	// Without a store: 404 (but metrics still serve the engine counters).
	if code, _ := get(t, srv.URL+"/reputation"); code != http.StatusNotFound {
		t.Fatalf("no-store /reputation = %d, want 404", code)
	}

	rep := reputation.NewStore(reputation.DefaultConfig(), clk)
	eng.SetReputation(rep)
	good := mail.MustParseAddress("friend@example.com")
	for i := 0; i < 5; i++ {
		rep.Record(good, "192.0.2.10", reputation.Delivered)
		rep.Record(mail.MustParseAddress("spam@junk.example"), "100.64.0.1", reputation.RBLHit)
	}

	code, body := get(t, srv.URL+"/reputation")
	if code != http.StatusOK {
		t.Fatalf("/reputation status = %d", code)
	}
	for _, want := range []string{"Trusted", "Suspect", "friend@example.com", "spam@junk.example", "Shard occupancy"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/reputation missing %q:\n%s", want, body)
		}
	}
	if code, _ := post(t, srv.URL+"/reputation"); code != http.StatusMethodNotAllowed {
		t.Fatal("POST /reputation allowed")
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	for _, want := range []string{"reputation_fast_path 0", "reputation_suspect_drop 0", "reputation_entries", "reputation_records 10"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, _, srv := fixture(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"incoming 1", "spool_gray 1", "challenges_sent 1", "quarantine_len 1",
		"logscan_events_total ", "logscan_bad_lines_total "} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// POST not allowed.
	if code, _ := post(t, srv.URL+"/metrics"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST metrics = %d", code)
	}
}

// TestSyncMetrics exercises the sparse-barrier counter export.
func TestSyncMetrics(t *testing.T) {
	eng, _, _, _ := fixture(t)
	ui := New(eng)
	srv := httptest.NewServer(ui.Handler())
	t.Cleanup(srv.Close)
	if _, body := get(t, srv.URL+"/metrics"); strings.Contains(body, "barrier_fired_total") {
		t.Fatal("sync counters exported without a source")
	}
	ui.SetSyncSource(func() SyncStats {
		return SyncStats{BarriersFired: 42, BarriersSkipped: 126, Steals: 7, TrapHitsApplied: 3}
	})
	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"barrier_fired_total 42", "barrier_skipped_total 126",
		"steal_count_total 7", "trap_hits_applied_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestOverloadPageAndMetrics exercises the /overload page and the
// admission counters exported on /metrics.
func TestOverloadPageAndMetrics(t *testing.T) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("corp.example", "192.0.2.10")
	eng := core.New(core.Config{
		Name:    "ui-overload",
		Domains: []string{"corp.example"},
	}, clk, dns, nil, whitelist.NewStore(clk), nil)

	ctl := overload.New(overload.Config{
		MinLimit: 1, InitialLimit: 1, MaxLimit: 1,
		QueueCapacity: -1, Clock: clk, Name: "ui-overload",
	})
	ui := New(eng)
	ui.SetOverload(ctl)
	srv := httptest.NewServer(ui.Handler())
	t.Cleanup(srv.Close)

	// One admission held, one shed at the limit.
	out := ctl.Submit("m1", nil, nil)
	if out.Granted == nil {
		t.Fatal("first submission not granted")
	}
	if !ctl.Submit("m2", nil, nil).Shed() {
		t.Fatal("second submission not shed")
	}

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"overload_shed_total 1",
		"admission_queue_depth 0",
		"admission_limit 1.00",
		"admission_inflight 1",
		"admission_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv.URL+"/overload")
	if code != http.StatusOK {
		t.Fatalf("/overload = %d", code)
	}
	for _, want := range []string{"accepting", "limit", "tempfailed"} {
		if !strings.Contains(body, want) {
			t.Errorf("/overload missing %q", want)
		}
	}

	ctl.StartDrain()
	_, body = get(t, srv.URL+"/overload")
	if !strings.Contains(body, "draining") {
		t.Error("/overload does not show draining state")
	}
}

// TestOverloadPageUnconfigured is the no-controller 404.
func TestOverloadPageUnconfigured(t *testing.T) {
	_, _, _, srv := fixture(t)
	if code, _ := get(t, srv.URL+"/overload"); code != http.StatusNotFound {
		t.Errorf("/overload without controller = %d, want 404", code)
	}
}
