// Package captcha implements the challenge web service of the CR product.
//
// When the dispatcher decides to challenge a message, it creates a
// Challenge here and embeds its URL in the challenge email. The sender
// proves legitimacy by opening the URL (a *visit*, tracked because the
// paper reports that 94% of delivered challenge URLs were never opened)
// and solving a CAPTCHA (tracked per attempt — Figure 4(b) reports the
// attempts histogram and notes that no solve ever took more than five
// tries, evidence that nobody was attacking the CAPTCHAs automatically).
//
// The CAPTCHA itself is a simple obfuscated-arithmetic puzzle: what
// matters for the measurement reproduction is the bookkeeping (visits,
// attempts, solve timestamps, expiry), not the pixel-level hardness.
package captcha

import (
	"errors"
	"fmt"
	"html/template"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

// Service errors.
var (
	// ErrUnknownToken is returned for a token that does not exist.
	ErrUnknownToken = errors.New("captcha: unknown challenge token")
	// ErrExpired is returned when the challenge's quarantine window ended.
	ErrExpired = errors.New("captcha: challenge expired")
	// ErrAlreadySolved is returned on a second solve of the same token.
	ErrAlreadySolved = errors.New("captcha: challenge already solved")
	// ErrWrongAnswer is returned for an incorrect CAPTCHA answer.
	ErrWrongAnswer = errors.New("captcha: wrong answer")
	// ErrLocked is returned once a challenge used up its attempt budget.
	// The paper never observed more than five attempts on a solve —
	// evidence nobody brute-forced the CAPTCHAs — and a lockout is the
	// corresponding defence if someone tried.
	ErrLocked = errors.New("captcha: too many failed attempts")
)

// Challenge is the server-side state of one outstanding challenge.
type Challenge struct {
	// Token is the unguessable identifier embedded in the challenge URL.
	Token string
	// MsgID is the quarantined message this challenge guards.
	MsgID string
	// Recipient is the protected user the message was addressed to.
	Recipient mail.Address
	// Sender is the (possibly spoofed) envelope sender the challenge
	// email was sent to.
	Sender mail.Address
	// Created is when the dispatcher issued the challenge.
	Created time.Time
	// Expires is when the quarantined message is dropped (30 days in the
	// product under study).
	Expires time.Time

	// Question is the human-readable puzzle; answer is kept private.
	Question string
	answer   string

	// Visits counts GETs of the challenge URL.
	Visits int
	// Attempts counts answer submissions (right or wrong).
	Attempts int
	// SolvedAt is the solve time (zero if unsolved).
	SolvedAt time.Time
}

// Solved reports whether the challenge has been solved.
func (c *Challenge) Solved() bool { return !c.SolvedAt.IsZero() }

// Visited reports whether the challenge URL was ever opened.
func (c *Challenge) Visited() bool { return c.Visits > 0 }

// SolveFunc is invoked (synchronously, without the service lock held)
// when a challenge is solved so the dispatcher can whitelist the sender
// and release the quarantined message.
type SolveFunc func(ch *Challenge)

// Service stores challenges and verifies solutions. Safe for concurrent use.
type Service struct {
	clk         clock.Clock
	ttl         time.Duration
	onSolved    SolveFunc
	onVisit     SolveFunc
	maxAttempts int
	rng         *rand.Rand

	mu     sync.Mutex
	byTok  map[string]*Challenge
	byMsg  map[string]*Challenge
	issued int64
	solved int64
}

// Config parameterises a Service.
type Config struct {
	// Clock supplies timestamps; required.
	Clock clock.Clock
	// TTL is the challenge lifetime; the product used 30 days.
	TTL time.Duration
	// OnSolved is called for each successful solve; may be nil.
	OnSolved SolveFunc
	// OnVisit is called on each challenge-page visit; may be nil. The
	// measurement pipeline uses it to reproduce the web server's access
	// log, which is where the paper's visit/solve statistics came from.
	OnVisit SolveFunc
	// Seed drives puzzle generation; runs with equal seeds issue
	// identical puzzles (for reproducibility).
	Seed int64
	// MaxAttempts locks a challenge after this many answer submissions
	// (0 = unlimited). Locked challenges stay quarantined and can still
	// be rescued from the digest.
	MaxAttempts int
}

// DefaultTTL is the product's 30-day quarantine window.
const DefaultTTL = 30 * 24 * time.Hour

// NewService returns an empty challenge service.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		panic("captcha: Config.Clock is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	return &Service{
		clk:         cfg.Clock,
		ttl:         cfg.TTL,
		onSolved:    cfg.OnSolved,
		onVisit:     cfg.OnVisit,
		maxAttempts: cfg.MaxAttempts,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		byTok:       make(map[string]*Challenge),
		byMsg:       make(map[string]*Challenge),
	}
}

// Issue creates a challenge guarding msgID, addressed to sender on behalf
// of recipient, and returns it. One challenge exists per message; issuing
// twice for the same msgID returns the existing challenge.
func (s *Service) Issue(msgID string, recipient, sender mail.Address) *Challenge {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.byMsg[msgID]; ok {
		return ch
	}
	now := s.clk.Now()
	a, b := s.rng.Intn(90)+10, s.rng.Intn(9)+1
	tok := fmt.Sprintf("tok-%08x-%04x", s.rng.Uint32(), len(s.byTok))
	ch := &Challenge{
		Token:     tok,
		MsgID:     msgID,
		Recipient: recipient,
		Sender:    sender,
		Created:   now,
		Expires:   now.Add(s.ttl),
		Question:  fmt.Sprintf("What is %d plus %d? (digits only)", a, b),
		answer:    strconv.Itoa(a + b),
	}
	s.byTok[tok] = ch
	s.byMsg[msgID] = ch
	s.issued++
	return ch
}

// URL returns the challenge URL to embed in the challenge email, given
// the web server's base (e.g. "http://cr.corp.example:8080").
func (s *Service) URL(base, token string) string {
	return strings.TrimSuffix(base, "/") + "/challenge/" + token
}

// get returns the challenge for token, or an error.
func (s *Service) get(token string) (*Challenge, error) {
	ch, ok := s.byTok[token]
	if !ok {
		return nil, ErrUnknownToken
	}
	if s.clk.Now().After(ch.Expires) {
		return nil, fmt.Errorf("%w: token %s", ErrExpired, token)
	}
	return ch, nil
}

// Visit records that the challenge URL was opened and returns the puzzle
// question. This is the server-side equivalent of a GET.
func (s *Service) Visit(token string) (string, error) {
	s.mu.Lock()
	ch, err := s.get(token)
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	ch.Visits++
	question := ch.Question
	cb := s.onVisit
	s.mu.Unlock()
	if cb != nil {
		cb(ch)
	}
	return question, nil
}

// Answer returns the expected answer for token. Test and simulation
// helper: the simulated "human" sender uses it to model solving.
func (s *Service) Answer(token string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, err := s.get(token)
	if err != nil {
		return "", err
	}
	return ch.answer, nil
}

// Solve submits an answer. On success it marks the challenge solved and
// invokes the OnSolved callback. Every call counts as an attempt.
func (s *Service) Solve(token, answer string) error {
	s.mu.Lock()
	ch, err := s.get(token)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if ch.Solved() {
		s.mu.Unlock()
		return ErrAlreadySolved
	}
	if s.maxAttempts > 0 && ch.Attempts >= s.maxAttempts {
		s.mu.Unlock()
		return fmt.Errorf("%w (limit %d)", ErrLocked, s.maxAttempts)
	}
	ch.Attempts++
	if strings.TrimSpace(answer) != ch.answer {
		s.mu.Unlock()
		return ErrWrongAnswer
	}
	ch.SolvedAt = s.clk.Now()
	s.solved++
	cb := s.onSolved
	s.mu.Unlock()
	if cb != nil {
		cb(ch)
	}
	return nil
}

// ByMessage returns the challenge guarding msgID, or nil.
func (s *Service) ByMessage(msgID string) *Challenge {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byMsg[msgID]
}

// Drop removes the challenge guarding msgID (quarantine expiry or digest
// delete). It is a no-op for unknown IDs.
func (s *Service) Drop(msgID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.byMsg[msgID]; ok {
		delete(s.byTok, ch.Token)
		delete(s.byMsg, msgID)
	}
}

// Stats summarises the service state for the measurement pipeline.
type Stats struct {
	Issued       int64
	Solved       int64
	Outstanding  int
	NeverVisited int // issued, unsolved, never opened
	VisitedOnly  int // opened but not solved
}

// Stats returns a snapshot.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Issued: s.issued, Solved: s.solved, Outstanding: len(s.byTok)}
	for _, ch := range s.byTok {
		if ch.Solved() {
			continue
		}
		if ch.Visited() {
			st.VisitedOnly++
		} else {
			st.NeverVisited++
		}
	}
	return st
}

// Each calls fn for every outstanding challenge (snapshot; fn runs
// without the lock).
func (s *Service) Each(fn func(*Challenge)) {
	s.mu.Lock()
	snapshot := make([]*Challenge, 0, len(s.byTok))
	for _, ch := range s.byTok {
		snapshot = append(snapshot, ch)
	}
	s.mu.Unlock()
	for _, ch := range snapshot {
		fn(ch)
	}
}

var pageTmpl = template.Must(template.New("challenge").Parse(`<!DOCTYPE html>
<html><head><title>Confirm your message</title></head><body>
<h1>Please confirm you are human</h1>
<p>Your message to {{.Recipient}} is waiting for delivery.</p>
<p><strong>{{.Question}}</strong></p>
<form method="POST"><input name="answer"><button>Submit</button></form>
</body></html>
`))

// Handler returns an http.Handler serving the challenge pages:
//
//	GET  /challenge/{token}  — show the puzzle (records a visit)
//	POST /challenge/{token}  — submit the answer (form field "answer")
//
// It is the web server whose access logs the paper mined for the solve
// and visit statistics.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/challenge/", func(w http.ResponseWriter, r *http.Request) {
		token := strings.TrimPrefix(r.URL.Path, "/challenge/")
		if token == "" || strings.Contains(token, "/") {
			http.NotFound(w, r)
			return
		}
		switch r.Method {
		case http.MethodGet:
			question, err := s.Visit(token)
			if err != nil {
				httpError(w, err)
				return
			}
			s.mu.Lock()
			ch := s.byTok[token]
			s.mu.Unlock()
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_ = pageTmpl.Execute(w, map[string]string{
				"Recipient": ch.Recipient.String(),
				"Question":  question,
			})
		case http.MethodPost:
			if err := r.ParseForm(); err != nil {
				http.Error(w, "bad form", http.StatusBadRequest)
				return
			}
			err := s.Solve(token, r.PostFormValue("answer"))
			switch {
			case err == nil:
				fmt.Fprintln(w, "Thank you. Your message has been delivered.")
			case errors.Is(err, ErrWrongAnswer):
				http.Error(w, "wrong answer, try again", http.StatusForbidden)
			case errors.Is(err, ErrLocked):
				http.Error(w, "too many failed attempts", http.StatusTooManyRequests)
			case errors.Is(err, ErrAlreadySolved):
				fmt.Fprintln(w, "Already confirmed.")
			default:
				httpError(w, err)
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownToken):
		http.Error(w, "no such challenge", http.StatusNotFound)
	case errors.Is(err, ErrExpired):
		http.Error(w, "challenge expired", http.StatusGone)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
