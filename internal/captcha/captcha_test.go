package captcha

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

var (
	t0    = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	rcpt  = mail.MustParseAddress("bob@corp.example")
	sendr = mail.MustParseAddress("alice@example.com")
)

func newSvc(clk clock.Clock, onSolved SolveFunc) *Service {
	return NewService(Config{Clock: clk, TTL: DefaultTTL, OnSolved: onSolved, Seed: 42})
}

func TestIssueAndSolve(t *testing.T) {
	clk := clock.NewSim(t0)
	var solvedCh *Challenge
	s := newSvc(clk, func(ch *Challenge) { solvedCh = ch })

	ch := s.Issue("m-1", rcpt, sendr)
	if ch.Token == "" || ch.Solved() || ch.Visited() {
		t.Fatalf("fresh challenge state wrong: %+v", ch)
	}
	if !ch.Expires.Equal(t0.Add(DefaultTTL)) {
		t.Fatalf("Expires = %v", ch.Expires)
	}

	q, err := s.Visit(ch.Token)
	if err != nil || !strings.Contains(q, "plus") {
		t.Fatalf("Visit: %q, %v", q, err)
	}
	ans, err := s.Answer(ch.Token)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(17 * time.Minute)
	if err := s.Solve(ch.Token, ans); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if solvedCh == nil || solvedCh.MsgID != "m-1" {
		t.Fatal("OnSolved callback not invoked")
	}
	if !ch.SolvedAt.Equal(t0.Add(17 * time.Minute)) {
		t.Fatalf("SolvedAt = %v", ch.SolvedAt)
	}
	if ch.Attempts != 1 || ch.Visits != 1 {
		t.Fatalf("attempts=%d visits=%d", ch.Attempts, ch.Visits)
	}
}

func TestIssueIdempotentPerMessage(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	ch1 := s.Issue("m-1", rcpt, sendr)
	ch2 := s.Issue("m-1", rcpt, sendr)
	if ch1 != ch2 {
		t.Fatal("second Issue for same message returned a new challenge")
	}
	if s.Stats().Issued != 1 {
		t.Fatalf("Issued = %d, want 1", s.Stats().Issued)
	}
}

func TestWrongAnswerCountsAttempt(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	ch := s.Issue("m-1", rcpt, sendr)
	if err := s.Solve(ch.Token, "999999"); !errors.Is(err, ErrWrongAnswer) {
		t.Fatalf("err = %v, want ErrWrongAnswer", err)
	}
	ans, _ := s.Answer(ch.Token)
	if err := s.Solve(ch.Token, ans); err != nil {
		t.Fatal(err)
	}
	if ch.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", ch.Attempts)
	}
}

func TestSolveTwice(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	ch := s.Issue("m-1", rcpt, sendr)
	ans, _ := s.Answer(ch.Token)
	if err := s.Solve(ch.Token, ans); err != nil {
		t.Fatal(err)
	}
	if err := s.Solve(ch.Token, ans); !errors.Is(err, ErrAlreadySolved) {
		t.Fatalf("second solve err = %v", err)
	}
	if s.Stats().Solved != 1 {
		t.Fatalf("Solved = %d", s.Stats().Solved)
	}
}

func TestAnswerWhitespaceTolerant(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	ch := s.Issue("m-1", rcpt, sendr)
	ans, _ := s.Answer(ch.Token)
	if err := s.Solve(ch.Token, "  "+ans+" \n"); err != nil {
		t.Fatalf("whitespace-padded answer rejected: %v", err)
	}
}

func TestAttemptLockout(t *testing.T) {
	clk := clock.NewSim(t0)
	s := NewService(Config{Clock: clk, MaxAttempts: 5, Seed: 9})
	ch := s.Issue("m-1", rcpt, sendr)
	for i := 0; i < 5; i++ {
		if err := s.Solve(ch.Token, "wrong"); !errors.Is(err, ErrWrongAnswer) {
			t.Fatalf("attempt %d err = %v", i+1, err)
		}
	}
	// Sixth attempt — even with the right answer — is locked out.
	ans, _ := s.Answer(ch.Token)
	if err := s.Solve(ch.Token, ans); !errors.Is(err, ErrLocked) {
		t.Fatalf("locked solve err = %v", err)
	}
	if ch.Solved() {
		t.Fatal("locked challenge marked solved")
	}
	if ch.Attempts != 5 {
		t.Fatalf("attempts = %d, want capped at 5", ch.Attempts)
	}
}

func TestNoLockoutByDefault(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	ch := s.Issue("m-1", rcpt, sendr)
	for i := 0; i < 20; i++ {
		if err := s.Solve(ch.Token, "wrong"); !errors.Is(err, ErrWrongAnswer) {
			t.Fatalf("attempt %d err = %v", i+1, err)
		}
	}
	ans, _ := s.Answer(ch.Token)
	if err := s.Solve(ch.Token, ans); err != nil {
		t.Fatalf("unlimited-attempt solve failed: %v", err)
	}
}

func TestExpiry(t *testing.T) {
	clk := clock.NewSim(t0)
	s := NewService(Config{Clock: clk, TTL: 30 * 24 * time.Hour, Seed: 1})
	ch := s.Issue("m-1", rcpt, sendr)
	clk.Advance(31 * 24 * time.Hour)
	if _, err := s.Visit(ch.Token); !errors.Is(err, ErrExpired) {
		t.Fatalf("Visit after expiry err = %v", err)
	}
	if err := s.Solve(ch.Token, "1"); !errors.Is(err, ErrExpired) {
		t.Fatalf("Solve after expiry err = %v", err)
	}
}

func TestUnknownToken(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	if _, err := s.Visit("tok-nope"); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v", err)
	}
}

func TestDrop(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	ch := s.Issue("m-1", rcpt, sendr)
	if s.ByMessage("m-1") == nil {
		t.Fatal("ByMessage lost the challenge")
	}
	s.Drop("m-1")
	if s.ByMessage("m-1") != nil {
		t.Fatal("challenge survives Drop")
	}
	if _, err := s.Visit(ch.Token); !errors.Is(err, ErrUnknownToken) {
		t.Fatal("token survives Drop")
	}
	s.Drop("m-unknown") // must not panic
}

func TestStatsBuckets(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	chA := s.Issue("m-a", rcpt, sendr) // never visited
	chB := s.Issue("m-b", rcpt, sendr) // visited only
	chC := s.Issue("m-c", rcpt, sendr) // solved
	_ = chA
	if _, err := s.Visit(chB.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Visit(chC.Token); err != nil {
		t.Fatal(err)
	}
	ans, _ := s.Answer(chC.Token)
	if err := s.Solve(chC.Token, ans); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Issued != 3 || st.Solved != 1 || st.NeverVisited != 1 || st.VisitedOnly != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestEach(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	for i := 0; i < 5; i++ {
		s.Issue(fmt.Sprintf("m-%d", i), rcpt, sendr)
	}
	n := 0
	s.Each(func(*Challenge) { n++ })
	if n != 5 {
		t.Fatalf("Each visited %d, want 5", n)
	}
}

func TestURL(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	if got := s.URL("http://cr.example:8080/", "tok-1"); got != "http://cr.example:8080/challenge/tok-1" {
		t.Fatalf("URL = %q", got)
	}
}

func TestDeterministicPuzzles(t *testing.T) {
	s1 := NewService(Config{Clock: clock.NewSim(t0), Seed: 7})
	s2 := NewService(Config{Clock: clock.NewSim(t0), Seed: 7})
	c1 := s1.Issue("m-1", rcpt, sendr)
	c2 := s2.Issue("m-1", rcpt, sendr)
	if c1.Question != c2.Question || c1.Token != c2.Token {
		t.Fatal("equal seeds produced different challenges")
	}
}

func TestHTTPHandlerFlow(t *testing.T) {
	clk := clock.NewSim(t0)
	solved := false
	s := newSvc(clk, func(*Challenge) { solved = true })
	ch := s.Issue("m-1", rcpt, sendr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// GET shows the puzzle and records a visit.
	resp, err := http.Get(srv.URL + "/challenge/" + ch.Token)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "plus") {
		t.Fatalf("GET status=%d body=%q", resp.StatusCode, body)
	}
	if ch.Visits != 1 {
		t.Fatalf("Visits = %d after GET", ch.Visits)
	}

	// POST wrong answer: 403.
	resp, err = http.PostForm(srv.URL+"/challenge/"+ch.Token, url.Values{"answer": {"0"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong answer status = %d", resp.StatusCode)
	}

	// POST right answer: 200 + callback.
	ans, _ := s.Answer(ch.Token)
	resp, err = http.PostForm(srv.URL+"/challenge/"+ch.Token, url.Values{"answer": {ans}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !solved {
		t.Fatalf("solve status = %d solved=%v", resp.StatusCode, solved)
	}
}

func TestHTTPHandlerErrors(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newSvc(clk, nil)
	ch := s.Issue("m-1", rcpt, sendr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/challenge/tok-missing"); code != http.StatusNotFound {
		t.Fatalf("unknown token status = %d", code)
	}
	if code := get("/challenge/"); code != http.StatusNotFound {
		t.Fatalf("empty token status = %d", code)
	}
	if code := get("/challenge/a/b"); code != http.StatusNotFound {
		t.Fatalf("slash token status = %d", code)
	}

	// Method not allowed.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/challenge/"+ch.Token, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}

	// Expired challenge: 410 Gone.
	clk.Advance(31 * 24 * time.Hour)
	if code := get("/challenge/" + ch.Token); code != http.StatusGone {
		t.Fatalf("expired status = %d", code)
	}
}

func TestHTTPHandlerLockout(t *testing.T) {
	clk := clock.NewSim(t0)
	s := NewService(Config{Clock: clk, MaxAttempts: 2, Seed: 3})
	ch := s.Issue("m-1", rcpt, sendr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	postAnswer := func(ans string) int {
		resp, err := http.PostForm(srv.URL+"/challenge/"+ch.Token, url.Values{"answer": {ans}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := postAnswer("wrong"); code != http.StatusForbidden {
		t.Fatalf("attempt 1 = %d", code)
	}
	if code := postAnswer("wrong"); code != http.StatusForbidden {
		t.Fatalf("attempt 2 = %d", code)
	}
	// Locked: even the correct answer is 429 now.
	ans, _ := s.Answer(ch.Token)
	if code := postAnswer(ans); code != http.StatusTooManyRequests {
		t.Fatalf("locked attempt = %d, want 429", code)
	}
}

func TestConcurrentSolves(t *testing.T) {
	s := newSvc(clock.NewSim(t0), nil)
	var tokens []string
	for i := 0; i < 32; i++ {
		ch := s.Issue(fmt.Sprintf("m-%d", i), rcpt, sendr)
		tokens = append(tokens, ch.Token)
	}
	var wg sync.WaitGroup
	for _, tok := range tokens {
		wg.Add(1)
		go func(tok string) {
			defer wg.Done()
			ans, err := s.Answer(tok)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Solve(tok, ans); err != nil {
				t.Error(err)
			}
		}(tok)
	}
	wg.Wait()
	if got := s.Stats().Solved; got != 32 {
		t.Fatalf("Solved = %d, want 32", got)
	}
}

func BenchmarkIssueSolve(b *testing.B) {
	s := newSvc(clock.NewSim(t0), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch := s.Issue(fmt.Sprintf("m-%d", i), rcpt, sendr)
		ans, _ := s.Answer(ch.Token)
		if err := s.Solve(ch.Token, ans); err != nil {
			b.Fatal(err)
		}
	}
}
