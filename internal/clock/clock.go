// Package clock provides time abstractions for the CR-filter simulator.
//
// Every component in this repository that needs "now" takes a Clock rather
// than calling time.Now directly. Production deployments (cmd/crserver,
// examples/company) inject Real; the measurement experiments inject Sim so
// that six months of simulated mail traffic run in seconds and every run is
// deterministic.
package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sim is a manually-advanced virtual clock. It is safe for concurrent use.
//
// The zero value is not useful; construct with NewSim.
type Sim struct {
	mu  sync.Mutex
	now time.Time
}

// NewSim returns a simulated clock initialised to start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the clock forward by d. It panics if d is negative:
// simulated time never flows backwards.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: Advance by negative duration %v", d))
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Set jumps the clock to t. It panics if t is before the current time.
func (s *Sim) Set(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		panic(fmt.Sprintf("clock: Set to %v before current %v", t, s.now))
	}
	s.now = t
}

// AdvanceTo is a monotone Set: it jumps the clock to t if t is later
// than the current time and is a no-op otherwise. Epoch barriers use it
// to bring a shared clock up to the barrier time without having to know
// whether some drained event already moved it there.
func (s *Sim) AdvanceTo(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.After(s.now) {
		s.now = t
	}
}

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler executes callbacks at chosen virtual times on a Sim clock.
//
// A Scheduler is the event loop of the simulation: the workload generators
// and the delivery agent schedule future work (message arrivals, SMTP
// retries, quarantine expiry sweeps) and RunUntil drains the queue in time
// order, advancing the clock to each event as it fires.
//
// Scheduler is safe for concurrent scheduling, but RunUntil must be called
// from a single goroutine at a time.
type Scheduler struct {
	clock *Sim

	mu  sync.Mutex
	pq  eventQueue
	seq uint64
}

// NewScheduler returns a Scheduler driving the given simulated clock.
func NewScheduler(c *Sim) *Scheduler {
	return &Scheduler{clock: c}
}

// Clock returns the simulated clock this scheduler drives.
func (s *Scheduler) Clock() *Sim { return s.clock }

// At schedules fn to run when the virtual clock reaches t. Events scheduled
// for a time already in the past run at the next RunUntil step, in order.
func (s *Scheduler) At(t time.Time, fn func()) {
	s.mu.Lock()
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
	s.mu.Unlock()
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.clock.Now().Add(d), fn)
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now, until the scheduler is drained past until. A zero until
// means "forever" (bounded only by RunUntil's horizon).
func (s *Scheduler) Every(period time.Duration, until time.Time, fn func()) {
	if period <= 0 {
		panic("clock: Every with non-positive period")
	}
	var tick func()
	tick = func() {
		if !until.IsZero() && s.clock.Now().After(until) {
			return
		}
		fn()
		s.After(period, tick)
	}
	s.After(period, tick)
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pq)
}

// NextAt returns the timestamp of the earliest queued event without
// running it. The second result is false when the queue is empty. Sparse
// epoch barriers use it to decide whether a barrier must fire to drain
// the shared scheduler, or the whole epoch can be skipped.
func (s *Scheduler) NextAt() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pq) == 0 {
		return time.Time{}, false
	}
	return s.pq[0].at, true
}

// pop removes and returns the earliest event at or before horizon,
// or nil if none qualifies.
func (s *Scheduler) pop(horizon time.Time) *event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pq) == 0 || s.pq[0].at.After(horizon) {
		return nil
	}
	return heap.Pop(&s.pq).(*event)
}

// RunUntil executes queued events in time order, advancing the clock to
// each event's timestamp, until no event remains at or before horizon.
// Finally the clock is advanced to horizon. It returns the number of
// events executed.
func (s *Scheduler) RunUntil(horizon time.Time) int {
	n := 0
	for {
		e := s.pop(horizon)
		if e == nil {
			break
		}
		if e.at.After(s.clock.Now()) {
			s.clock.Set(e.at)
		}
		e.fn()
		n++
	}
	if horizon.After(s.clock.Now()) {
		s.clock.Set(horizon)
	}
	return n
}

// RunFor is RunUntil(now + d).
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.clock.Now().Add(d))
}
