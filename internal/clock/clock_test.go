package clock

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

func TestSimNowAdvance(t *testing.T) {
	c := NewSim(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
	c.Advance(90 * time.Minute)
	want := t0.Add(90 * time.Minute)
	if !c.Now().Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", c.Now(), want)
	}
}

func TestSimSetBackwardsPanics(t *testing.T) {
	c := NewSim(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	c.Set(t0.Add(-time.Second))
}

func TestSimAdvanceNegativePanics(t *testing.T) {
	c := NewSim(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	c.Advance(-1)
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	var got []int
	s.At(t0.Add(3*time.Second), func() { got = append(got, 3) })
	s.At(t0.Add(1*time.Second), func() { got = append(got, 1) })
	s.At(t0.Add(2*time.Second), func() { got = append(got, 2) })
	n := s.RunUntil(t0.Add(10 * time.Second))
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", got)
		}
	}
	if !c.Now().Equal(t0.Add(10 * time.Second)) {
		t.Fatalf("clock = %v, want horizon", c.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	var got []int
	at := t0.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	s.RunUntil(at)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestSchedulerHorizonExcludesLater(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	ran := false
	s.At(t0.Add(time.Hour), func() { ran = true })
	s.RunUntil(t0.Add(time.Minute))
	if ran {
		t.Fatal("event past horizon ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(t0.Add(2 * time.Hour))
	if !ran {
		t.Fatal("event within extended horizon did not run")
	}
}

func TestSchedulerEventSchedulesEvent(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	var times []time.Time
	s.After(time.Second, func() {
		times = append(times, c.Now())
		s.After(time.Second, func() { times = append(times, c.Now()) })
	})
	s.RunUntil(t0.Add(5 * time.Second))
	if len(times) != 2 {
		t.Fatalf("got %d firings, want 2 (chained)", len(times))
	}
	if !times[1].Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("chained event at %v, want %v", times[1], t0.Add(2*time.Second))
	}
}

func TestSchedulerEvery(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	count := 0
	s.Every(time.Hour, t0.Add(24*time.Hour), func() { count++ })
	s.RunUntil(t0.Add(48 * time.Hour))
	// Fires at +1h..+24h inclusive; the +25h tick sees now>until and stops.
	if count != 24 {
		t.Fatalf("Every fired %d times, want 24", count)
	}
}

func TestSchedulerEveryZeroPeriodPanics(t *testing.T) {
	s := NewScheduler(NewSim(t0))
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, time.Time{}, func() {})
}

func TestSchedulerPastEventRunsImmediately(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	c.Advance(time.Hour)
	ran := false
	s.At(t0.Add(time.Minute), func() { ran = true }) // already in the past
	s.RunUntil(c.Now())
	if !ran {
		t.Fatal("past-dated event did not run")
	}
	// Clock must not go backwards to the event time.
	if c.Now().Before(t0.Add(time.Hour)) {
		t.Fatalf("clock went backwards: %v", c.Now())
	}
}

func TestSchedulerConcurrentScheduling(t *testing.T) {
	c := NewSim(t0)
	s := NewScheduler(c)
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.After(time.Duration(i)*time.Millisecond, func() {})
		}(i)
	}
	wg.Wait()
	if got := s.RunFor(time.Second); got != n {
		t.Fatalf("executed %d, want %d", got, n)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	c := NewSim(t0)
	s := NewScheduler(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Millisecond, func() {})
	}
	s.RunFor(time.Hour)
}
