// Package cluster reimplements the paper's §4.1 spam-campaign analysis:
// messages in the gray spool (those for which a challenge was generated)
// are grouped by identical subject, considering only subjects of at least
// ten words, and only clusters of at least fifty messages are kept —
// deliberately conservative thresholds that trade recall for a negligible
// false-merge rate, exactly as the authors argue.
//
// Each cluster is then split by sender similarity: campaigns whose
// messages come from a few, near-identical sender addresses (newsletters
// and marketing, e.g. dept-x.p@scn-1.com vs dept-x.q@scn-2.com) versus
// campaigns whose senders are scattered across many domains with random
// local parts (botnet spam).
package cluster

import (
	"sort"

	"repro/internal/mail"
)

// Item is one challenged gray-spool message as the clustering sees it.
type Item struct {
	Subject string
	Sender  mail.Address
	// Bounced: the challenge for this message bounced (no such user).
	Bounced bool
	// Solved: the challenge for this message was solved.
	Solved bool
}

// Config holds the clustering thresholds. The zero value is replaced by
// the paper's choices.
type Config struct {
	// MinWords is the minimum subject length in words (paper: 10).
	MinWords int
	// MinSize is the minimum cluster size in messages (paper: 50).
	MinSize int
	// SimilarityThreshold splits high- from low-sender-similarity
	// clusters.
	SimilarityThreshold float64
	// MaxPairs caps the number of sender pairs sampled per cluster when
	// estimating similarity (full pairwise comparison is quadratic).
	MaxPairs int
}

// DefaultConfig returns the paper's thresholds.
func DefaultConfig() Config {
	return Config{MinWords: 10, MinSize: 50, SimilarityThreshold: 0.55, MaxPairs: 500}
}

func (c *Config) fill() {
	if c.MinWords <= 0 {
		c.MinWords = 10
	}
	if c.MinSize <= 0 {
		c.MinSize = 50
	}
	if c.SimilarityThreshold <= 0 {
		c.SimilarityThreshold = 0.55
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 500
	}
}

// Cluster is a group of messages sharing a subject.
type Cluster struct {
	Subject string
	Items   []Item
	// SenderSimilarity is the mean pairwise similarity of sender local
	// parts (sampled), in [0, 1].
	SenderSimilarity float64
	// DomainDiversity is distinct sender domains / messages, in (0, 1].
	DomainDiversity float64
	// DistinctSenders is the number of unique sender addresses.
	DistinctSenders int
	// HighSimilarity classifies the cluster (newsletter-like vs botnet).
	HighSimilarity bool
}

// Size returns the number of messages in the cluster.
func (c *Cluster) Size() int { return len(c.Items) }

// Bounced returns how many of the cluster's challenges bounced.
func (c *Cluster) Bounced() int {
	n := 0
	for _, it := range c.Items {
		if it.Bounced {
			n++
		}
	}
	return n
}

// Solved returns how many of the cluster's challenges were solved.
func (c *Cluster) Solved() int {
	n := 0
	for _, it := range c.Items {
		if it.Solved {
			n++
		}
	}
	return n
}

// BouncedFraction returns Bounced()/Size().
func (c *Cluster) BouncedFraction() float64 {
	if len(c.Items) == 0 {
		return 0
	}
	return float64(c.Bounced()) / float64(len(c.Items))
}

// SolvedFraction returns Solved()/Size().
func (c *Cluster) SolvedFraction() float64 {
	if len(c.Items) == 0 {
		return 0
	}
	return float64(c.Solved()) / float64(len(c.Items))
}

// Build groups items into clusters per cfg and computes the sender
// similarity split. Clusters are returned sorted by size (descending),
// ties by subject.
func Build(items []Item, cfg Config) []*Cluster {
	cfg.fill()
	bySubject := make(map[string][]Item)
	for _, it := range items {
		if wordCount(it.Subject) < cfg.MinWords {
			continue
		}
		bySubject[it.Subject] = append(bySubject[it.Subject], it)
	}
	var out []*Cluster
	for subj, group := range bySubject {
		if len(group) < cfg.MinSize {
			continue
		}
		c := &Cluster{Subject: subj, Items: group}
		c.SenderSimilarity = senderSimilarity(group, cfg.MaxPairs)
		c.DomainDiversity = domainDiversity(group)
		c.DistinctSenders = distinctSenders(group)
		// The paper's first group: "clusters where emails are sent by a
		// very limited number of senders, or in which the sender
		// addresses are very similar to each other".
		c.HighSimilarity = c.DistinctSenders <= 8 ||
			c.SenderSimilarity >= cfg.SimilarityThreshold
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) > len(out[j].Items)
		}
		return out[i].Subject < out[j].Subject
	})
	return out
}

func wordCount(s string) int {
	n, in := 0, false
	for i := 0; i < len(s); i++ {
		sp := s[i] == ' ' || s[i] == '\t'
		if !sp && !in {
			n++
		}
		in = !sp
	}
	return n
}

// senderSimilarity estimates the mean pairwise local-part similarity by
// comparing consecutive pairs plus a deterministic stride sample, capped
// at maxPairs comparisons.
func senderSimilarity(items []Item, maxPairs int) float64 {
	if len(items) < 2 {
		return 1
	}
	total, n := 0.0, 0
	stride := 1
	if len(items) > maxPairs {
		stride = len(items) / maxPairs
	}
	for i := 0; i+stride < len(items) && n < maxPairs; i += stride {
		total += mail.LocalSimilarity(items[i].Sender, items[i+stride].Sender)
		n++
	}
	if n == 0 {
		return 1
	}
	return total / float64(n)
}

func distinctSenders(items []Item) int {
	seen := make(map[string]struct{})
	for _, it := range items {
		seen[it.Sender.Key()] = struct{}{}
	}
	return len(seen)
}

func domainDiversity(items []Item) float64 {
	if len(items) == 0 {
		return 0
	}
	domains := make(map[string]struct{})
	for _, it := range items {
		domains[it.Sender.Domain] = struct{}{}
	}
	return float64(len(domains)) / float64(len(items))
}

// Stats is the Figure 6 aggregate over all clusters.
type Stats struct {
	Clusters        int
	WithSolved      int // clusters containing >= 1 solved challenge
	HighSim         int
	LowSim          int
	HighSimSolved   float64 // mean solved fraction among high-sim clusters
	HighSimBounced  float64
	LowSimSolved    float64
	LowSimBounced   float64
	LargestCluster  int
	SmallestCluster int
}

// Summarize computes the Figure 6 statistics.
func Summarize(clusters []*Cluster) Stats {
	st := Stats{}
	var hiSolved, hiBounced, loSolved, loBounced float64
	for _, c := range clusters {
		st.Clusters++
		if c.Solved() > 0 {
			st.WithSolved++
		}
		if c.Size() > st.LargestCluster {
			st.LargestCluster = c.Size()
		}
		if st.SmallestCluster == 0 || c.Size() < st.SmallestCluster {
			st.SmallestCluster = c.Size()
		}
		if c.HighSimilarity {
			st.HighSim++
			hiSolved += c.SolvedFraction()
			hiBounced += c.BouncedFraction()
		} else {
			st.LowSim++
			loSolved += c.SolvedFraction()
			loBounced += c.BouncedFraction()
		}
	}
	if st.HighSim > 0 {
		st.HighSimSolved = hiSolved / float64(st.HighSim)
		st.HighSimBounced = hiBounced / float64(st.HighSim)
	}
	if st.LowSim > 0 {
		st.LowSimSolved = loSolved / float64(st.LowSim)
		st.LowSimBounced = loBounced / float64(st.LowSim)
	}
	return st
}
