package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mail"
)

const longSubject = "buy cheap meds online now best price guaranteed today only friend"
const otherSubject = "exclusive summer sale save money on luxury replica watches free shipping"

// botnetItems builds n items with random senders across many domains.
func botnetItems(n int, subject string, rng *rand.Rand) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Subject: subject,
			Sender: mail.Address{
				Local:  fmt.Sprintf("u%d%c%c", rng.Intn(1000000), 'a'+byte(rng.Intn(26)), 'a'+byte(rng.Intn(26))),
				Domain: fmt.Sprintf("dom%d.example", rng.Intn(200)),
			},
			Bounced: rng.Float64() < 0.31,
		}
	}
	return items
}

// newsletterItems builds n items from a few similar senders.
func newsletterItems(n int, subject string, rng *rand.Rand) []Item {
	senders := []mail.Address{
		mail.MustParseAddress("dept-x.p@scn-1.com"),
		mail.MustParseAddress("dept-x.q@scn-1.com"),
		mail.MustParseAddress("dept-x.p@scn-2.com"),
	}
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Subject: subject,
			Sender:  senders[rng.Intn(len(senders))],
			Solved:  rng.Float64() < 0.9,
		}
	}
	return items
}

func TestBuildGroupsBySubject(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := append(botnetItems(100, longSubject, rng), botnetItems(80, otherSubject, rng)...)
	clusters := Build(items, DefaultConfig())
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// Sorted by size descending.
	if clusters[0].Size() != 100 || clusters[1].Size() != 80 {
		t.Fatalf("sizes = %d, %d", clusters[0].Size(), clusters[1].Size())
	}
}

func TestShortSubjectsIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := botnetItems(100, "short subject", rng)
	if got := Build(items, DefaultConfig()); len(got) != 0 {
		t.Fatalf("short-subject cluster formed: %d", len(got))
	}
}

func TestSmallClustersDiscarded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := botnetItems(49, longSubject, rng)
	if got := Build(items, DefaultConfig()); len(got) != 0 {
		t.Fatalf("sub-threshold cluster kept: %d", len(got))
	}
	items = botnetItems(50, longSubject, rng)
	if got := Build(items, DefaultConfig()); len(got) != 1 {
		t.Fatalf("at-threshold cluster dropped")
	}
}

func TestSenderSimilaritySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	clusters := Build(append(
		newsletterItems(100, longSubject, rng),
		botnetItems(100, otherSubject, rng)...), DefaultConfig())
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	var hi, lo *Cluster
	for _, c := range clusters {
		if c.HighSimilarity {
			hi = c
		} else {
			lo = c
		}
	}
	if hi == nil || lo == nil {
		t.Fatalf("similarity split failed: %+v", clusters)
	}
	if hi.Subject != longSubject {
		t.Fatalf("newsletter cluster classified low-sim (sim=%v, div=%v)", hi.SenderSimilarity, hi.DomainDiversity)
	}
	if hi.SenderSimilarity <= lo.SenderSimilarity {
		t.Fatalf("similarity ordering wrong: %v <= %v", hi.SenderSimilarity, lo.SenderSimilarity)
	}
	if lo.DomainDiversity <= hi.DomainDiversity {
		t.Fatalf("diversity ordering wrong")
	}
}

func TestClusterCountsAndFractions(t *testing.T) {
	items := []Item{}
	for i := 0; i < 60; i++ {
		items = append(items, Item{
			Subject: longSubject,
			Sender:  mail.Address{Local: fmt.Sprintf("x%d", i), Domain: "d.example"},
			Bounced: i < 20,
			Solved:  i == 59,
		})
	}
	clusters := Build(items, DefaultConfig())
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	c := clusters[0]
	if c.Bounced() != 20 || c.Solved() != 1 {
		t.Fatalf("bounced=%d solved=%d", c.Bounced(), c.Solved())
	}
	if c.BouncedFraction() != 20.0/60 || c.SolvedFraction() != 1.0/60 {
		t.Fatalf("fractions wrong: %v, %v", c.BouncedFraction(), c.SolvedFraction())
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := append(newsletterItems(120, longSubject, rng), botnetItems(200, otherSubject, rng)...)
	// A third cluster with zero solves.
	third := "important notice about your account payment statement update required immediately today"
	items = append(items, botnetItems(75, third, rng)...)

	st := Summarize(Build(items, DefaultConfig()))
	if st.Clusters != 3 {
		t.Fatalf("clusters = %d", st.Clusters)
	}
	if st.HighSim != 1 || st.LowSim != 2 {
		t.Fatalf("split = %d/%d", st.HighSim, st.LowSim)
	}
	if st.WithSolved < 1 {
		t.Fatal("no cluster with solved challenges found")
	}
	if st.HighSimSolved < 0.5 {
		t.Fatalf("high-sim solved fraction = %v, want high", st.HighSimSolved)
	}
	if st.LowSimSolved > 0.05 {
		t.Fatalf("low-sim solved fraction = %v, want ~0", st.LowSimSolved)
	}
	if st.LowSimBounced < 0.2 || st.LowSimBounced > 0.45 {
		t.Fatalf("low-sim bounced = %v, want ~0.31", st.LowSimBounced)
	}
	if st.LargestCluster != 200 || st.SmallestCluster != 75 {
		t.Fatalf("sizes = %d/%d", st.LargestCluster, st.SmallestCluster)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Clusters != 0 || st.HighSimSolved != 0 {
		t.Fatal("empty Summarize not zero")
	}
}

func TestWordCount(t *testing.T) {
	cases := map[string]int{
		"":                    0,
		"one":                 1,
		"two words":           2,
		"  leading spaces":    2,
		"a b c d e f g h i j": 10,
	}
	for s, want := range cases {
		if got := wordCount(s); got != want {
			t.Errorf("wordCount(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var cfg Config
	cfg.fill()
	if cfg.MinWords != 10 || cfg.MinSize != 50 || cfg.MaxPairs != 500 {
		t.Fatalf("fill() = %+v", cfg)
	}
}

func TestSimilaritySamplingCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// 10k items must not take quadratic time; just verify it runs and
	// returns a sane value.
	items := botnetItems(10000, longSubject, rng)
	cfg := DefaultConfig()
	clusters := Build(items, cfg)
	if len(clusters) != 1 {
		t.Fatal("cluster missing")
	}
	s := clusters[0].SenderSimilarity
	if s < 0 || s > 1 {
		t.Fatalf("similarity = %v", s)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var items []Item
	for k := 0; k < 20; k++ {
		subj := fmt.Sprintf("campaign %d %s", k, longSubject)
		items = append(items, botnetItems(500, subj, rng)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(items, DefaultConfig())
	}
}
