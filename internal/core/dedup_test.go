package core

import (
	"testing"
	"time"

	"repro/internal/mail"
)

// TestChallengeDedupPerSenderPair verifies that a sender is challenged at
// most once per mailbox while a challenge is outstanding, and that
// solving the one challenge releases every queued message from that
// sender.
func TestChallengeDedupPerSenderPair(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")

	var msgs []*mail.Message
	for i := 0; i < 4; i++ {
		m := e.goodMsg("alice@example.com", "bob@corp.example")
		msgs = append(msgs, m)
		e.eng.Receive(m)
		e.clk.Advance(time.Minute)
	}
	met := e.eng.Metrics()
	if met.ChallengesSent != 1 {
		t.Fatalf("ChallengesSent = %d, want 1 (deduplicated)", met.ChallengesSent)
	}
	if met.ChallengeSuppressed != 3 {
		t.Fatalf("ChallengeSuppressed = %d, want 3", met.ChallengeSuppressed)
	}
	if e.eng.QuarantineLen() != 4 {
		t.Fatalf("quarantine = %d, want 4", e.eng.QuarantineLen())
	}
	if len(e.sent) != 1 {
		t.Fatalf("outbound challenges = %d, want 1", len(e.sent))
	}

	// Solving the single challenge releases all four messages.
	svc := e.eng.Captcha()
	ans, err := svc.Answer(e.sent[0].Token)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Solve(e.sent[0].Token, ans); err != nil {
		t.Fatal(err)
	}
	if got := e.eng.Metrics().Delivered[ViaChallenge]; got != 4 {
		t.Fatalf("delivered via challenge = %d, want 4", got)
	}
	if e.eng.QuarantineLen() != 0 {
		t.Fatal("quarantine not drained")
	}
}

// TestChallengeDedupIsPerRecipient: the same sender writing to two
// protected users gets two challenges (whitelists are per-user).
func TestChallengeDedupIsPerRecipient(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	e.eng.AddUser(mail.MustParseAddress("carol@corp.example"))

	e.eng.Receive(e.goodMsg("alice@example.com", "bob@corp.example"))
	e.eng.Receive(e.goodMsg("alice@example.com", "carol@corp.example"))
	if got := e.eng.Metrics().ChallengesSent; got != 2 {
		t.Fatalf("ChallengesSent = %d, want 2 (per-recipient)", got)
	}
}

// TestDedupClearedByDigestDelete: deleting the challenged message from
// the digest clears the pending state, so the sender is challenged again
// next time.
func TestDedupClearedByDigestDelete(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	bob := mail.MustParseAddress("bob@corp.example")

	m1 := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m1)
	if err := e.eng.DeleteFromDigest(bob, m1.ID); err != nil {
		t.Fatal(err)
	}
	m2 := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m2)
	if got := e.eng.Metrics().ChallengesSent; got != 2 {
		t.Fatalf("ChallengesSent = %d, want 2 after digest delete", got)
	}
}

// TestDedupClearedByExpiry: after the quarantine TTL passes and the sweep
// runs, a new message from the same sender is challenged again.
func TestDedupClearedByExpiry(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")

	e.eng.Receive(e.goodMsg("alice@example.com", "bob@corp.example"))
	e.clk.Advance(31 * 24 * time.Hour)
	if n := e.eng.ExpireQuarantine(); n != 1 {
		t.Fatalf("expired = %d", n)
	}
	e.eng.Receive(e.goodMsg("alice@example.com", "bob@corp.example"))
	if got := e.eng.Metrics().ChallengesSent; got != 2 {
		t.Fatalf("ChallengesSent = %d, want 2 after expiry", got)
	}
}

// TestDigestAuthorizeReleasesOnlyThatMessage: authorizing one of several
// queued messages from a sender delivers that one; the rest stay
// quarantined (but the sender is now whitelisted, so solving is moot).
func TestDigestAuthorizeWithQueuedSiblings(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	bob := mail.MustParseAddress("bob@corp.example")

	m1 := e.goodMsg("alice@example.com", "bob@corp.example")
	m2 := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m1)
	e.eng.Receive(m2)
	if err := e.eng.AuthorizeFromDigest(bob, m2.ID); err != nil {
		t.Fatal(err)
	}
	if got := e.eng.Metrics().Delivered[ViaDigest]; got != 1 {
		t.Fatalf("digest deliveries = %d, want 1", got)
	}
	if e.eng.QuarantineLen() != 1 {
		t.Fatalf("quarantine = %d, want 1 (m1 still held)", e.eng.QuarantineLen())
	}
	// Solving the original challenge still releases m1.
	svc := e.eng.Captcha()
	ans, _ := svc.Answer(e.sent[0].Token)
	if err := svc.Solve(e.sent[0].Token, ans); err != nil {
		t.Fatal(err)
	}
	if e.eng.QuarantineLen() != 0 {
		t.Fatal("m1 not released by solve")
	}
}
