package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/rbl"
	"repro/internal/whitelist"
)

// dnsBlackout installs a 100% resolver outage on e.dns.
func dnsBlackout(e *env) {
	e.dns.SetInjector(faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "dns", Kind: faults.KindTimeout},
	}}, 1, e.clk))
}

func TestDNSDegradeFailOpenAccepts(t *testing.T) {
	e := newEnv(t, false)
	var events []maillog.Event
	e.eng.SetEventSink(func(ev maillog.Event) { events = append(events, ev) })
	dnsBlackout(e)

	m := e.goodMsg("alice@example.com", "bob@corp.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict under resolver blackout = %v, want Accepted (fail-open)", r)
	}
	mt := e.eng.Metrics()
	if mt.MTADegradedAccept != 1 || mt.MTADegradedDrop != 0 {
		t.Fatalf("degraded counters = accept %d / drop %d", mt.MTADegradedAccept, mt.MTADegradedDrop)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == maillog.KindDegraded && ev.Field("component") == "dns-resolve" {
			found = true
			if ev.Field("mode") != "fail-open" || ev.Field("action") != "accept" {
				t.Fatalf("degraded event fields = %v", ev.FieldMap())
			}
		}
	}
	if !found {
		t.Fatal("no degraded maillog event emitted")
	}
}

func TestDNSDegradeFailClosedDrops(t *testing.T) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	wl := whitelist.NewStore(clk)
	eng := New(Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
		DNSDegrade:       filters.FailClosed,
	}, clk, dns, nil, wl, nil)
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	dns.SetInjector(faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "dns", Kind: faults.KindTimeout},
	}}, 1, clk))

	m := &mail.Message{
		ID:           mail.NewID("m"),
		EnvelopeFrom: mail.MustParseAddress("alice@example.com"),
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		Subject:      "subject",
		Size:         1000,
		ClientIP:     "192.0.2.10",
		Received:     clk.Now(),
	}
	if r := eng.Receive(m); r != Unresolvable {
		t.Fatalf("verdict = %v, want Unresolvable (fail-closed)", r)
	}
	mt := eng.Metrics()
	if mt.MTADegradedDrop != 1 {
		t.Fatalf("MTADegradedDrop = %d", mt.MTADegradedDrop)
	}
	if mt.MTADropped[Unresolvable] != 1 {
		t.Fatalf("MTADropped = %v", mt.MTADropped)
	}
}

func TestDNSRetriesAbsorbTransientFault(t *testing.T) {
	e := newEnv(t, false)
	// FailDomain with a timeout error makes ResolvableErr report a
	// temporary failure; clearing it between engine retries is not
	// possible (retries are immediate), so instead use a probabilistic
	// injected fault low enough that 3 attempts almost surely pass.
	e.dns.SetInjector(faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "dns", Kind: faults.KindTimeout, Probability: 0.5},
	}}, 3, e.clk))
	accepted, degraded := 0, 0
	for i := 0; i < 50; i++ {
		m := e.goodMsg("alice@example.com", "bob@corp.example")
		if r := e.eng.Receive(m); r == Accepted {
			accepted++
		}
	}
	degraded = int(e.eng.Metrics().MTADegradedAccept)
	if accepted != 50 {
		t.Fatalf("accepted %d/50 under 50%% flaky DNS (fail-open should accept all)", accepted)
	}
	// With 3 attempts at p=0.5 the expected degradation rate is 12.5%;
	// most messages resolve within the retry budget.
	if degraded >= 25 {
		t.Fatalf("retries absorbed nothing: %d/50 degraded", degraded)
	}
}

// TestMetricsSnapshotConcurrentWithDegradedWrites guards the Metrics()
// deep copy: the snapshot's FilterDegraded map must not alias the live
// map, or an HTTP goroutine iterating it races with Receive()
// incrementing it (caught under -race).
func TestMetricsSnapshotConcurrentWithDegradedWrites(t *testing.T) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	prov := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), clk)
	prov.SetInjector(faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "rbl:*", Kind: faults.KindOutage},
	}}, 1, clk))
	chain := filters.NewChain(
		filters.Harden(filters.NewRBL(prov), filters.FailOpen, filters.HardenOpts{}),
	)
	eng := New(Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, chain, whitelist.NewStore(clk), func(OutboundChallenge) {})
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	dns.RegisterMailDomain("example.com", "192.0.2.10")

	const n = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			m := &mail.Message{
				ID:           mail.NewID("m"),
				EnvelopeFrom: mail.MustParseAddress("alice@example.com"),
				Rcpt:         mail.MustParseAddress("bob@corp.example"),
				Subject:      "subject",
				Size:         1000,
				ClientIP:     "192.0.2.10",
				Received:     clk.Now(),
			}
			eng.Receive(m)
		}
	}()
	for {
		select {
		case <-done:
			if got := eng.Metrics().FilterDegraded["rbl"]; got != n {
				t.Fatalf("FilterDegraded[rbl] = %d, want %d", got, n)
			}
			return
		default:
			_ = eng.Metrics().TotalFilterDegraded()
		}
	}
}
