package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

// dsnFor builds the null-sender bounce a remote MTA would return for a
// challenge whose original gray message had ID origID.
func (e *env) dsnFor(origID, finalRcpt, status, diag string) *mail.Message {
	body := mail.FormatDSNBody(finalRcpt, status, diag, origID)
	return &mail.Message{
		ID:           mail.NewID("dsn"),
		EnvelopeFrom: mail.Address{}, // null reverse-path
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		Subject:      "Undelivered Mail Returned to Sender",
		Size:         1200 + len(body),
		Body:         body,
		ClientIP:     "192.0.2.10",
		Received:     e.clk.Now(),
	}
}

func TestDSNFeedbackCorrelatesBounce(t *testing.T) {
	e := newEnv(t, false)
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v, want Accepted", r)
	}
	if len(e.sent) != 1 {
		t.Fatalf("challenges sent = %d", len(e.sent))
	}

	r := e.eng.Receive(e.dsnFor(m.ID, "alice@example.com", "5.1.1", "550 no such user"))
	if r != Accepted {
		t.Fatalf("DSN verdict = %v, want Accepted (quarantined, never challenged)", r)
	}
	if len(e.sent) != 1 {
		t.Fatal("engine challenged a null-sender bounce")
	}
	mt := e.eng.Metrics()
	if mt.ChallengeBounced["no-user"] != 1 || mt.DSNOrphaned != 0 {
		t.Fatalf("bounced = %v, orphaned = %d", mt.ChallengeBounced, mt.DSNOrphaned)
	}
	obs := e.eng.ObservedBounces()
	if obs[m.ID] != "no-user" {
		t.Fatalf("observed bounces = %v", obs)
	}
}

func TestDSNOrphanedWhenUncorrelated(t *testing.T) {
	e := newEnv(t, false)
	// A DSN for a message this engine never challenged (backscatter of
	// someone else's spam) is counted but never becomes evidence.
	if r := e.eng.Receive(e.dsnFor("msg-never-seen", "x@y.example", "5.1.1", "550 no")); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	mt := e.eng.Metrics()
	if mt.DSNOrphaned != 1 || len(mt.ChallengeBounced) != 0 {
		t.Fatalf("orphaned = %d, bounced = %v", mt.DSNOrphaned, mt.ChallengeBounced)
	}
	if len(e.eng.ObservedBounces()) != 0 {
		t.Fatal("uncorrelated DSN recorded as an observed bounce")
	}
}

func TestDSNPenaltyOnlyForDeadRecipients(t *testing.T) {
	// no-user and no-domain bounces are negative evidence about the
	// (likely spoofed) sender; a 5.7.1 blocklisting is the challenge
	// server's own standing and must not damage the sender's score.
	e := newEnv(t, false)
	rep := reputation.NewStore(reputation.DefaultConfig(), e.clk)
	e.eng.SetReputation(rep)

	spoofed := e.goodMsg("spoofed@example.com", "bob@corp.example")
	listed := e.goodMsg("listed@example.com", "bob@corp.example")
	for _, m := range []*mail.Message{spoofed, listed} {
		if r := e.eng.Receive(m); r != Accepted {
			t.Fatalf("verdict = %v", r)
		}
	}
	e.eng.Receive(e.dsnFor(spoofed.ID, "spoofed@example.com", "5.1.1", "550 no such user"))
	e.eng.Receive(e.dsnFor(listed.ID, "listed@example.com", "5.7.1", "554 refused: sender blocklisted"))

	sSpoofed := rep.Score(mail.MustParseAddress("spoofed@example.com"), "").Score
	sListed := rep.Score(mail.MustParseAddress("listed@example.com"), "").Score
	if !(sSpoofed < sListed) {
		t.Fatalf("no-user score %.3f not below blocklisted score %.3f", sSpoofed, sListed)
	}
	mt := e.eng.Metrics()
	if mt.ChallengeBounced["no-user"] != 1 || mt.ChallengeBounced["blocklisted"] != 1 {
		t.Fatalf("bounced = %v", mt.ChallengeBounced)
	}
}

// crPeer is a second, independently-configured CR installation for the
// two-deployment loop test.
type crPeer struct {
	clk  *clock.Sim
	eng  *Engine
	sent []OutboundChallenge
}

func newPeer(t *testing.T, name, domain, user string) *crPeer {
	t.Helper()
	p := &crPeer{clk: clock.NewSim(t0)}
	dns := dnssim.NewServer()
	prov := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), p.clk)
	chain := filters.NewChain(
		filters.NewAntivirus(),
		filters.NewReverseDNS(dns),
		filters.NewRBL(prov),
	)
	cfg := Config{
		Name:             name,
		Domains:          []string{domain},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.Address{Local: "challenge", Domain: domain},
		ChallengeBaseURL: "http://cr." + domain,
		ChallengeSize:    1800,
		Seed:             11,
	}
	p.eng = New(cfg, p.clk, dns, chain, whitelist.NewStore(p.clk), nil)
	p.eng.AddUser(mail.Address{Local: user, Domain: domain})
	// Each site resolves the other's mail domain (and its own).
	dns.RegisterMailDomain("corp.example", "192.0.2.20")
	dns.RegisterMailDomain("other.example", "192.0.2.21")
	dns.RegisterMailDomain("botnet.example", "192.0.2.30")
	return p
}

// TestTwoCRDeploymentsDoNotLoop wires two CR engines' challenge senders
// into each other's inbound path, the configuration that loops forever
// without RFC 3834 suppression: A challenges a (spoofed) sender at B, B
// would challenge A's challenge sender back, A would challenge that...
// The Auto-Submitted header on every challenge keeps loop traffic at
// exactly zero beyond the first crossing.
func TestTwoCRDeploymentsDoNotLoop(t *testing.T) {
	a := newPeer(t, "site-a", "corp.example", "bob")
	b := newPeer(t, "site-b", "other.example", "carol")

	// deliver renders an outbound challenge as the mail message the
	// peer's MTA receives — Auto-Submitted and all, like outbound's
	// RenderChallenge does on the wire.
	deliver := func(from *crPeer, to *crPeer, srcIP string) func(OutboundChallenge) {
		return func(ch OutboundChallenge) {
			from.sent = append(from.sent, ch)
			to.eng.Receive(&mail.Message{
				ID:            mail.NewID("ch"),
				EnvelopeFrom:  ch.From,
				Rcpt:          ch.To,
				Subject:       "Please confirm your message (" + ch.MsgID + ")",
				Size:          ch.Size,
				AutoSubmitted: "auto-replied",
				ClientIP:      srcIP,
				Received:      to.clk.Now(),
			})
		}
	}
	a.eng.SetChallengeSender(deliver(a, b, "192.0.2.20"))
	b.eng.SetChallengeSender(deliver(b, a, "192.0.2.21"))

	// Spam arrives at A spoofing a protected user of B. A challenges;
	// the challenge lands in B's gray path, where it must be quarantined
	// without a counter-challenge.
	spam := &mail.Message{
		ID:           mail.NewID("spam"),
		EnvelopeFrom: mail.MustParseAddress("carol@other.example"),
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		Subject:      "cheap pills and other fine products",
		Size:         4000,
		ClientIP:     "192.0.2.30",
		Received:     a.clk.Now(),
	}
	if r := a.eng.Receive(spam); r != Accepted {
		t.Fatalf("spam verdict at A = %v", r)
	}
	if len(a.sent) != 1 {
		t.Fatalf("A sent %d challenge(s), want 1", len(a.sent))
	}
	if len(b.sent) != 0 {
		t.Fatalf("loop: B answered A's challenge with %d challenge(s)", len(b.sent))
	}
	bm := b.eng.Metrics()
	if bm.ChallengeLoopSuppressed != 1 {
		t.Fatalf("B loop-suppressed = %d, want 1", bm.ChallengeLoopSuppressed)
	}
	if bm.ChallengesSent != 0 {
		t.Fatalf("B challenges sent = %d, want 0", bm.ChallengesSent)
	}
	// The suppressed challenge is still held for carol's digest — the
	// message is not lost, only the counter-challenge is.
	if n := b.eng.QuarantineLen(); n != 1 {
		t.Fatalf("B quarantine = %d, want 1", n)
	}

	// Control: a human sender (no Auto-Submitted) at B still gets
	// challenged — suppression is specific to auto-generated mail.
	human := &mail.Message{
		ID:           mail.NewID("h"),
		EnvelopeFrom: mail.MustParseAddress("bob@corp.example"),
		Rcpt:         mail.MustParseAddress("carol@other.example"),
		Subject:      "a genuine note from a person",
		Size:         2000,
		ClientIP:     "192.0.2.20",
		Received:     b.clk.Now(),
	}
	if r := b.eng.Receive(human); r != Accepted {
		t.Fatalf("human verdict at B = %v", r)
	}
	if len(b.sent) != 1 {
		t.Fatalf("B sent %d challenge(s) for a human sender, want 1", len(b.sent))
	}
	// ...and that challenge, arriving at A, is suppressed there too:
	// symmetry means neither deployment ever loops.
	am := a.eng.Metrics()
	if am.ChallengeLoopSuppressed != 1 {
		t.Fatalf("A loop-suppressed = %d, want 1", am.ChallengeLoopSuppressed)
	}
	if am.ChallengesSent != 1 {
		t.Fatalf("A challenges sent = %d, want 1 (the original only)", am.ChallengesSent)
	}
}
