// Package core implements the challenge-response anti-spam engine the
// paper studies: the MTA-IN acceptance checks, the internal email
// dispatcher with its white/black/gray spools, the quarantine with 30-day
// expiry, challenge emission, and the four whitelisting mechanisms.
//
// The lifecycle mirrors the product's Figure 1. Incoming mail first passes
// the MTA-IN checks (well-formed addresses, resolvable sender domain,
// relay policy, known recipient) which in the study dropped >75% of
// traffic. Survivors reach the dispatcher: senders on the recipient's
// blacklist are dropped, whitelisted senders are delivered instantly, and
// everything else lands in the gray spool where the auxiliary filter
// chain (antivirus, reverse-DNS, RBL) drops the obvious junk; the rest is
// quarantined and a challenge email is sent back to the (possibly
// spoofed) sender.
package core

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/captcha"
	"repro/internal/clock"
	"repro/internal/digest"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

// MTAReason is the outcome of the MTA-IN acceptance checks. The non-zero
// reasons correspond to the paper's drop-reason table (§2): malformed
// 0.06%, unresolvable 4.19%, no-relay 2.27%, sender-rejected 0.03%,
// unknown-recipient 62.36%.
type MTAReason int

// MTA-IN outcomes.
const (
	// Accepted: the message passed all MTA-IN checks.
	Accepted MTAReason = iota
	// Malformed: sender or recipient address fails RFC 822 validation.
	Malformed
	// Unresolvable: the sender's domain does not resolve.
	Unresolvable
	// NoRelay: the recipient domain is not served by this installation.
	NoRelay
	// SenderRejected: the sender is administratively rejected.
	SenderRejected
	// UnknownRecipient: no such user (non-open-relay installations only).
	UnknownRecipient
)

// String returns the report label for the reason.
func (r MTAReason) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case Malformed:
		return "malformed"
	case Unresolvable:
		return "unresolvable-domain"
	case NoRelay:
		return "no-relay"
	case SenderRejected:
		return "sender-rejected"
	case UnknownRecipient:
		return "unknown-recipient"
	default:
		return fmt.Sprintf("MTAReason(%d)", int(r))
	}
}

// Category is the dispatcher's spool decision.
type Category int

// Dispatcher spools.
const (
	// White: sender on the recipient's whitelist; delivered instantly.
	White Category = iota
	// Black: sender on the recipient's blacklist; dropped immediately.
	Black
	// Gray: unknown sender; filtered and possibly challenged.
	Gray
)

// String returns the spool name.
func (c Category) String() string {
	switch c {
	case White:
		return "white"
	case Black:
		return "black"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// GrayOutcome refines what happened to a gray message.
type GrayOutcome int

// Gray-spool outcomes.
const (
	// GrayDropped: an auxiliary filter dropped the message.
	GrayDropped GrayOutcome = iota
	// GrayChallenged: a challenge was sent and the message quarantined.
	GrayChallenged
	// GrayQuarantinedOnly: quarantined without a challenge (null envelope
	// sender — challenging a bounce would mail-loop); rescueable only
	// from the digest.
	GrayQuarantinedOnly
)

// DeliveryVia records how a message reached the user's inbox, for the
// delay analysis of Figures 7 and 8.
type DeliveryVia int

// Delivery paths.
const (
	// ViaWhitelist: sender already whitelisted; instant delivery.
	ViaWhitelist DeliveryVia = iota
	// ViaChallenge: the sender solved the CAPTCHA.
	ViaChallenge
	// ViaDigest: the user authorized the message from the daily digest.
	ViaDigest
)

// String returns the path label.
func (v DeliveryVia) String() string {
	switch v {
	case ViaWhitelist:
		return "whitelist"
	case ViaChallenge:
		return "challenge"
	case ViaDigest:
		return "digest"
	default:
		return fmt.Sprintf("DeliveryVia(%d)", int(v))
	}
}

// Delivery is one message delivered to a user's inbox.
type Delivery struct {
	MsgID       string
	User        mail.Address
	Sender      mail.Address
	Via         DeliveryVia
	QueuedAt    time.Time // when the MTA accepted the message
	DeliveredAt time.Time
}

// Delay returns how long the message waited before delivery.
func (d Delivery) Delay() time.Duration { return d.DeliveredAt.Sub(d.QueuedAt) }

// OutboundChallenge is the challenge email the engine asks its transport
// to deliver. The transport (internal/simnet in experiments, internal/smtp
// in a live deployment) owns delivery, retries and bounce handling.
type OutboundChallenge struct {
	MsgID string
	Token string
	From  mail.Address // the installation's challenge sender address
	To    mail.Address // the original (possibly spoofed) envelope sender
	// Subject is the quarantined message's subject, carried so the
	// measurement pipeline can run the §4.1 campaign clustering over
	// challenged messages.
	Subject string
	URL     string
	Size    int // bytes on the wire, for the RT traffic ratio
	Issued  time.Time
}

// ChallengeSender delivers outbound challenges.
type ChallengeSender func(ch OutboundChallenge)

// Config parameterises an Engine.
type Config struct {
	// Name identifies the installation in reports (e.g. "company-07").
	Name string
	// Domains are the local domains this installation serves.
	Domains []string
	// OpenRelay, when true, additionally accepts mail for RelayDomains
	// addressed to any mailbox (13 of the study's 47 servers were open
	// relays, §2).
	OpenRelay bool
	// RelayDomains are the extra domains relayed in open-relay mode.
	RelayDomains []string
	// QuarantineTTL is how long gray messages wait before being dropped;
	// the product used 30 days.
	QuarantineTTL time.Duration
	// ChallengeFrom is the sender address of challenge emails.
	ChallengeFrom mail.Address
	// ChallengeBaseURL is the public base of the CAPTCHA web server.
	ChallengeBaseURL string
	// ChallengeSize is the on-the-wire size of one challenge email in
	// bytes (the paper's RT sensor measured sizes from headers).
	ChallengeSize int
	// Seed makes CAPTCHA generation deterministic per installation.
	Seed int64
	// MaxChallengesPerHour caps outbound challenge volume (0 = no cap).
	// §6 warns that an attacker can force a CR server to spray challenges
	// into spamtraps until its IP is blacklisted; a rate cap bounds that
	// exposure. Over-cap gray messages are quarantined without a
	// challenge and remain rescuable from the digest.
	MaxChallengesPerHour int
	// DNSDegrade is the MTA-IN's policy when the sender-domain
	// resolvability check cannot be answered because the resolver itself
	// is failing (as opposed to an authoritative NXDOMAIN). The default,
	// FailOpen, accepts the message — a resolver outage must not bounce
	// the whole mail stream; the unresolvable-domain drop (§2) only
	// applies to authoritative negatives.
	DNSDegrade filters.DegradeMode
	// DNSRetries bounds the in-line resolvability retries before the
	// degradation policy applies (default 2).
	DNSRetries int
}

// quarantined is one message waiting in the gray spool.
type quarantined struct {
	msg        *mail.Message
	queuedAt   time.Time
	challenged bool
	pk         pairKey // pending-challenge pair when challenged or suppressed
	hasPK      bool
}

// Metrics is a snapshot of the engine's counters. All counters are
// cumulative since engine construction.
type Metrics struct {
	// MTA-IN.
	MTAIncoming int64 // messages presented to the MTA-IN
	MTAInBytes  int64
	MTADropped  map[MTAReason]int64

	// Dispatcher.
	SpoolWhite    int64
	SpoolBlack    int64
	SpoolGray     int64
	DispatchBytes int64 // bytes of all messages reaching the CR filter (for RT)

	// Gray outcomes.
	FilterDropped  map[string]int64 // by filter name
	ChallengesSent int64
	ChallengeBytes int64
	QuarantineOnly int64 // null-sender gray messages (never challenged)
	// ChallengeSuppressed counts gray messages quarantined without a new
	// challenge because the same (recipient, sender) pair already has one
	// outstanding — the product never pesters a sender twice for the same
	// mailbox.
	ChallengeSuppressed int64
	// ChallengeRateLimited counts gray messages quarantined without a
	// challenge because the hourly outbound cap was reached.
	ChallengeRateLimited int64
	// ChallengeLoopSuppressed counts gray messages that carried an
	// Auto-Submitted header (RFC 3834) and were quarantined without a
	// counter-challenge — the guard that keeps two CR deployments from
	// challenging each other's challenges forever.
	ChallengeLoopSuppressed int64
	// ChallengeBounced counts inbound DSNs correlated back to an
	// outstanding challenge, by bounce class (no-user, no-domain,
	// blocklisted, expired, other). DSNOrphaned counts parsed DSNs
	// that matched no outstanding challenge (late bounces, backscatter
	// aimed at the challenge sender).
	ChallengeBounced map[string]int64
	DSNOrphaned      int64
	// FilterDegraded counts, per filter name, gray-spool evaluations in
	// which the filter's dependency was unavailable and its degradation
	// policy decided the outcome.
	FilterDegraded map[string]int64
	// MTADegradedAccept counts messages that cleared every MTA-IN check
	// although the sender domain's resolvability could not be determined
	// (resolver failure) under a fail-open DNSDegrade policy;
	// MTADegradedDrop counts the fail-closed mirror (reported as
	// Unresolvable drops as well). A message whose resolvability was
	// waived but that a later MTA check rejected counts in neither (its
	// maillog degraded event carries action "waived").
	MTADegradedAccept int64
	MTADegradedDrop   int64

	// Reputation. ReputationFastPath counts gray messages whose
	// trusted-band sender skipped the auxiliary probe chain entirely
	// (the fast path — each hit saves every probe the chain would have
	// run); ReputationSuspect counts gray messages the reputation chain
	// stage dropped on a suspect-band verdict.
	ReputationFastPath int64
	ReputationSuspect  int64

	// Deliveries and quarantine.
	Delivered         map[DeliveryVia]int64
	QuarantineExpired int64
	DigestDeleted     int64
}

// counterStripes is the shard count of the lock-striped string-keyed
// counter maps. Filter/component name cardinality is tiny (a handful of
// filters), so a small power of two keeps the memory footprint low while
// still splitting contention across lanes.
const counterStripes = 8

// stripedCounts is a lock-striped map[string]*atomic.Int64 for keyed
// aggregates on the hot path (filter drops, degraded decisions). The
// common case — bumping a counter that already exists — takes a shard
// read-lock plus one atomic add and never allocates.
type stripedCounts struct {
	shards [counterStripes]struct {
		mu sync.RWMutex
		m  map[string]*atomic.Int64
	}
}

func newStripedCounts() *stripedCounts {
	sc := &stripedCounts{}
	for i := range sc.shards {
		sc.shards[i].m = make(map[string]*atomic.Int64)
	}
	return sc
}

// strHash is FNV-1a over s without converting to []byte.
func strHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Add increments the named counter by delta.
func (sc *stripedCounts) Add(key string, delta int64) {
	sh := &sc.shards[strHash(key)%counterStripes]
	sh.mu.RLock()
	c := sh.m[key]
	sh.mu.RUnlock()
	if c == nil {
		sh.mu.Lock()
		if c = sh.m[key]; c == nil {
			c = new(atomic.Int64)
			sh.m[key] = c
		}
		sh.mu.Unlock()
	}
	c.Add(delta)
}

// Snapshot copies the counters into a fresh map.
func (sc *stripedCounts) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.RLock()
		for k, c := range sh.m {
			out[k] = c.Load()
		}
		sh.mu.RUnlock()
	}
	return out
}

// counters is the engine's sharded bookkeeping: one atomic per scalar
// metric, fixed atomic arrays for the enum-keyed aggregates, and
// lock-striped maps for the string-keyed ones. Incrementing any of them
// from the per-message path takes no engine-wide lock; Metrics()
// assembles a snapshot by loading each one.
type counters struct {
	mtaIncoming atomic.Int64
	mtaInBytes  atomic.Int64
	mtaDropped  [UnknownRecipient + 1]atomic.Int64 // by MTAReason

	spoolWhite    atomic.Int64
	spoolBlack    atomic.Int64
	spoolGray     atomic.Int64
	dispatchBytes atomic.Int64

	filterDropped           *stripedCounts // by filter name
	challengesSent          atomic.Int64
	challengeBytes          atomic.Int64
	quarantineOnly          atomic.Int64
	challengeSuppressed     atomic.Int64
	challengeRateLimited    atomic.Int64
	challengeLoopSuppressed atomic.Int64
	challengeBounced        *stripedCounts // by DSN class
	dsnOrphaned             atomic.Int64
	filterDegraded          *stripedCounts // by component name
	mtaDegradedAccept       atomic.Int64
	mtaDegradedDrop         atomic.Int64

	reputationFastPath atomic.Int64
	reputationSuspect  atomic.Int64

	delivered         [ViaDigest + 1]atomic.Int64 // by DeliveryVia
	quarantineExpired atomic.Int64
	digestDeleted     atomic.Int64
}

// Engine is one company's CR installation. It is safe for concurrent use.
//
// Concurrency design: counters live in per-counter atomics and striped
// maps (see counters); the optional callbacks (event sink, inbox sink,
// challenge sender, reputation store) are atomic pointers loaded without
// locking; the read-mostly account tables (users, rejected) sit behind an
// RWMutex; and e.mu — the only remaining exclusive lock — guards just the
// quarantine state machine (quarantine + byRcpt index + pendingChallenge),
// the challenge rate window and the delivery log.
type Engine struct {
	cfg      Config
	clk      clock.Clock
	resolver dnssim.Resolver
	chain    *filters.Chain
	wl       *whitelist.Store
	captcha  *captcha.Service

	sendCh   atomic.Pointer[ChallengeSender]
	sink     atomic.Pointer[func(maillog.Event)]           // optional decision log
	inbox    atomic.Pointer[func(Delivery, *mail.Message)] // optional delivery store
	rep      atomic.Pointer[reputation.Store]              // optional sender-reputation store
	svcObs   atomic.Pointer[func(time.Duration)]           // optional service-latency observer
	pressure atomic.Pointer[func() bool]                   // optional overload-pressure probe

	acctMu   sync.RWMutex
	users    map[mail.Address]bool // protected accounts, by canonical address
	rejected map[mail.Address]bool // administratively rejected senders

	mu         sync.Mutex
	quarantine map[string]*quarantined
	// byRcpt indexes quarantine by canonical recipient so digest
	// assembly touches only the user's own items instead of scanning
	// the whole spool.
	byRcpt map[mail.Address]map[string]*quarantined
	// pendingChallenge tracks outstanding challenges per (recipient,
	// sender) pair so a sender is challenged at most once per mailbox
	// at a time; later messages queue behind the first.
	pendingChallenge map[pairKey][]string // pair -> quarantined msg IDs
	// observedBounces records, per originating gray message ID, the DSN
	// class of a bounce correlated back to its challenge. It is the
	// engine's own (log-derived, non-omniscient) view of challenge
	// fates; the clustering experiments cross-validate it against
	// simulator truth.
	observedBounces map[string]string
	// rate limiting window state.
	rateWindowStart time.Time
	rateWindowCount int
	deliveries      []Delivery

	c counters
}

// pairKey identifies a (recipient, sender) challenge relationship. Both
// addresses are stored canonicalised, so the struct is directly usable
// as a comparable map key with no string concatenation.
type pairKey struct {
	rcpt   mail.Address
	sender mail.Address
}

func makePairKey(rcpt, sender mail.Address) pairKey {
	return pairKey{rcpt: rcpt.Canonical(), sender: sender.Canonical()}
}

// New constructs an Engine.
//
// The filter chain is owned by the caller so experiments can compose
// different chains (§5.2 evaluates adding SPF). sendCh may be nil at
// construction and installed later with SetChallengeSender — the simnet
// and the engine reference each other.
func New(cfg Config, clk clock.Clock, resolver dnssim.Resolver, chain *filters.Chain, wl *whitelist.Store, sendCh ChallengeSender) *Engine {
	if cfg.QuarantineTTL <= 0 {
		cfg.QuarantineTTL = captcha.DefaultTTL
	}
	if cfg.ChallengeSize <= 0 {
		cfg.ChallengeSize = 1800 // typical challenge email incl. headers
	}
	if cfg.DNSRetries <= 0 {
		cfg.DNSRetries = 2
	}
	e := &Engine{
		cfg:              cfg,
		clk:              clk,
		resolver:         resolver,
		chain:            chain,
		wl:               wl,
		users:            make(map[mail.Address]bool),
		rejected:         make(map[mail.Address]bool),
		quarantine:       make(map[string]*quarantined),
		byRcpt:           make(map[mail.Address]map[string]*quarantined),
		pendingChallenge: make(map[pairKey][]string),
		observedBounces:  make(map[string]string),
	}
	if sendCh != nil {
		e.sendCh.Store(&sendCh)
	}
	e.c.filterDropped = newStripedCounts()
	e.c.filterDegraded = newStripedCounts()
	e.c.challengeBounced = newStripedCounts()
	e.captcha = captcha.NewService(captcha.Config{
		Clock:    clk,
		TTL:      cfg.QuarantineTTL,
		OnSolved: e.onChallengeSolved,
		OnVisit: func(ch *captcha.Challenge) {
			e.emit(maillog.KindWebVisit, ch.MsgID, "token", ch.Token)
		},
		Seed: cfg.Seed,
	})
	// The challenge sender's mailbox exists (DSNs for undeliverable
	// challenges are addressed to it), but it is an administrative
	// account rather than a protected human user.
	if !cfg.ChallengeFrom.IsNull() && cfg.ChallengeFrom != (mail.Address{}) {
		e.users[cfg.ChallengeFrom.Canonical()] = true
	}
	return e
}

// SetChallengeSender installs the outbound challenge transport.
func (e *Engine) SetChallengeSender(s ChallengeSender) {
	if s == nil {
		e.sendCh.Store(nil)
		return
	}
	e.sendCh.Store(&s)
}

// SetInboxSink installs a delivery store: every message that reaches a
// user's inbox is handed over with its Delivery record, so a deployment
// can persist mail (internal/mailbox) instead of only counting it.
func (e *Engine) SetInboxSink(sink func(Delivery, *mail.Message)) {
	if sink == nil {
		e.inbox.Store(nil)
		return
	}
	e.inbox.Store(&sink)
}

// SetEventSink installs a decision-log sink: every MTA verdict, spool
// decision, filter drop, challenge, delivery and web event is reported
// as a maillog.Event — the log stream the paper's measurement pipeline
// was built on. The sink runs synchronously; keep it fast.
func (e *Engine) SetEventSink(sink func(maillog.Event)) {
	if sink == nil {
		e.sink.Store(nil)
		return
	}
	e.sink.Store(&sink)
}

// SetReputation installs the sender-reputation store. Once installed,
// the engine records every classification outcome into it and consults
// it before running the gray-spool filter chain: trusted-band senders
// skip the probe filters entirely. The store is advisory — a lookup
// failure degrades fail-open to the full chain, never blocking mail.
func (e *Engine) SetReputation(s *reputation.Store) {
	e.rep.Store(s)
}

// Reputation returns the installed reputation store (nil if none).
func (e *Engine) Reputation() *reputation.Store {
	return e.rep.Load()
}

// SetServiceObserver installs a per-message service-latency observer:
// every Receive reports its wall (or virtual) duration, which an
// admission controller (internal/overload) feeds to its AIMD limiter.
// The observation uses the engine's injected clock, so simulated
// latency windows are observed exactly.
func (e *Engine) SetServiceObserver(fn func(time.Duration)) {
	if fn == nil {
		e.svcObs.Store(nil)
		return
	}
	e.svcObs.Store(&fn)
}

// SetPressure installs an overload-pressure probe. When it reports
// true, handleGray sheds the probe filter chain — the expensive,
// advisory part of the pipeline — through the same degradation path a
// dependency outage uses (fail-open, counted in FilterDegraded under
// "overload", logged as a degraded event), and proceeds straight to
// challenge/quarantine. Mail handling itself is never shed here; that
// is the admission controller's job.
func (e *Engine) SetPressure(fn func() bool) {
	if fn == nil {
		e.pressure.Store(nil)
		return
	}
	e.pressure.Store(&fn)
}

// recordRep adds one outcome observation for (sender, ip), if a
// reputation store is installed.
func (e *Engine) recordRep(sender mail.Address, ip string, o reputation.Outcome) {
	if rep := e.rep.Load(); rep != nil {
		rep.Record(sender, ip, o)
	}
}

// RecordChallengeBounce notes that a challenge emailed to sender came
// back undeliverable (no such user / no such domain) — the spoofed-
// sender signature, which the transport layer observes and the
// reputation store turns into negative evidence.
func (e *Engine) RecordChallengeBounce(sender mail.Address) {
	e.recordRep(sender, "", reputation.Bounced)
}

// emit reports an event to the sink, if one is installed. kvs are
// alternating key/value pairs; they ride in the event's inline pair
// storage, so emitting allocates nothing beyond what the sink keeps.
func (e *Engine) emit(kind maillog.Kind, msgID string, kvs ...string) {
	sink := e.sink.Load()
	if sink == nil {
		return
	}
	(*sink)(maillog.MakeEvent(e.clk.Now(), e.cfg.Name, kind, msgID, kvs...))
}

// logging reports whether an event sink is installed, so hot-path call
// sites can skip rendering field values (itoa, address keys) that emit
// would discard anyway.
func (e *Engine) logging() bool { return e.sink.Load() != nil }

// Name returns the installation name.
func (e *Engine) Name() string { return e.cfg.Name }

// Config returns a copy of the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Captcha returns the engine's challenge service (its HTTP handler is
// mounted by cmd/crserver; the simulation solves challenges through it).
func (e *Engine) Captcha() *captcha.Service { return e.captcha }

// Whitelists returns the engine's whitelist store.
func (e *Engine) Whitelists() *whitelist.Store { return e.wl }

// AddUser registers a protected account.
func (e *Engine) AddUser(user mail.Address) {
	e.acctMu.Lock()
	e.users[user.Canonical()] = true
	e.acctMu.Unlock()
}

// Users returns the number of protected accounts.
func (e *Engine) Users() int {
	e.acctMu.RLock()
	defer e.acctMu.RUnlock()
	return len(e.users)
}

// HasUser reports whether user is a protected account.
func (e *Engine) HasUser(user mail.Address) bool {
	e.acctMu.RLock()
	defer e.acctMu.RUnlock()
	return e.users[user.Canonical()]
}

// RejectSender administratively rejects a sender address at the MTA-IN
// (the paper's rare "Sender rejected" reason, 0.03%).
func (e *Engine) RejectSender(sender mail.Address) {
	e.acctMu.Lock()
	e.rejected[sender.Canonical()] = true
	e.acctMu.Unlock()
}

func (e *Engine) localDomain(d string) bool {
	for _, ld := range e.cfg.Domains {
		if ld == d {
			return true
		}
	}
	return false
}

func (e *Engine) relayDomain(d string) bool {
	for _, rd := range e.cfg.RelayDomains {
		if rd == d {
			return true
		}
	}
	return false
}

// CheckMTAIn runs the MTA-IN acceptance checks on msg without dispatching
// it, returning the verdict. Exposed separately so the SMTP front end can
// reject at RCPT time with the right status code.
func (e *Engine) CheckMTAIn(msg *mail.Message) MTAReason {
	r, _ := e.checkMTAIn(msg)
	return r
}

// checkMTAIn is CheckMTAIn plus the degradation channel: degraded is true
// when the resolvability verdict came from the DNSDegrade policy because
// the resolver itself was failing.
func (e *Engine) checkMTAIn(msg *mail.Message) (reason MTAReason, degraded bool) {
	// 1. Well-formed addresses (RFC 822). Messages are handed to us with
	// parsed addresses; a zero recipient or an unparsable raw form counts
	// as malformed. The null envelope sender is legal (bounces).
	if msg.Rcpt == (mail.Address{}) {
		return Malformed, false
	}
	// 2. Resolvable sender domain.
	if !msg.EnvelopeFrom.IsNull() {
		ok, deg := e.resolverOK(msg.EnvelopeFrom.Domain)
		degraded = deg
		if !ok {
			return Unresolvable, degraded
		}
	}
	// 3. Relay policy.
	if !e.localDomain(msg.Rcpt.Domain) {
		if !(e.cfg.OpenRelay && e.relayDomain(msg.Rcpt.Domain)) {
			return NoRelay, degraded
		}
	}
	// 4. Administratively rejected sender.
	e.acctMu.RLock()
	rej := e.rejected[msg.EnvelopeFrom.Canonical()]
	known := e.users[msg.Rcpt.Canonical()]
	e.acctMu.RUnlock()
	if rej {
		return SenderRejected, degraded
	}
	// 5. Recipient must exist for local domains. Open relays accept mail
	// for relayed domains without a user database — that is why the
	// paper's open-relay servers passed most messages to the next layer.
	if e.localDomain(msg.Rcpt.Domain) && !known {
		return UnknownRecipient, degraded
	}
	return Accepted, degraded
}

// resolverOK answers "is the sender domain resolvable", retrying bounded
// times across temporary resolver failures; if the resolver stays down
// the DNSDegrade policy decides (degraded=true): fail-open treats the
// domain as resolvable, fail-closed as unresolvable.
func (e *Engine) resolverOK(domain string) (ok, degraded bool) {
	attempts := e.cfg.DNSRetries + 1
	for i := 0; i < attempts; i++ {
		ok, err := e.lookupResolvable(domain)
		if err == nil {
			return ok, false
		}
	}
	return e.cfg.DNSDegrade == filters.FailOpen, true
}

// lookupResolvable makes one resolvability probe. The error channel
// carries temporary resolver failures only; authoritative negatives
// return (false, nil).
func (e *Engine) lookupResolvable(domain string) (bool, error) {
	// Both dnssim.Server and the dnscache layer expose the combined
	// "any record at all" probe; assert on the capability, not the type,
	// so a cache can front the resolver transparently.
	if s, ok := e.resolver.(interface {
		ResolvableErr(domain string) (bool, error)
	}); ok {
		return s.ResolvableErr(domain)
	}
	if _, err := e.resolver.LookupMX(domain); err == nil {
		return true, nil
	} else if dnssim.IsTemporary(err) {
		return false, err
	}
	if _, err := e.resolver.LookupA(domain); err == nil {
		return true, nil
	} else if dnssim.IsTemporary(err) {
		return false, err
	}
	return false, nil
}

// Receive is the full per-message pipeline: MTA-IN checks, then dispatch.
// It returns the MTA verdict; when Accepted, the dispatch decision has
// been made and any side effects (delivery, challenge, quarantine) have
// happened.
func (e *Engine) Receive(msg *mail.Message) MTAReason {
	if obs := e.svcObs.Load(); obs != nil {
		start := e.clk.Now()
		defer func() { (*obs)(e.clk.Now().Sub(start)) }()
	}
	e.c.mtaIncoming.Add(1)
	e.c.mtaInBytes.Add(int64(msg.Size))

	r, degraded := e.checkMTAIn(msg)
	if degraded {
		var action string
		switch r {
		case Unresolvable:
			action = "drop"
			e.c.mtaDegradedDrop.Add(1)
		case Accepted:
			action = "accept"
			e.c.mtaDegradedAccept.Add(1)
		default:
			// Resolvability was waived fail-open, but a later MTA-IN check
			// (relay policy, rejected sender, unknown recipient) rejected
			// the message anyway — not a degraded accept.
			action = "waived"
		}
		e.emit(maillog.KindDegraded, msg.ID,
			"component", "dns-resolve", "mode", e.cfg.DNSDegrade.String(), "action", action)
	}
	if r != Accepted {
		e.c.mtaDropped[r].Add(1)
		if e.logging() {
			e.emit(maillog.KindMTADrop, msg.ID, "reason", r.String(), "size", itoa(msg.Size))
		}
		return r
	}
	if e.logging() {
		e.emit(maillog.KindMTAAccept, msg.ID, "size", itoa(msg.Size))
	}
	e.dispatch(msg)
	return Accepted
}

func itoa(n int) string { return strconv.Itoa(n) }

// dispatch routes an accepted message to white, black or gray.
func (e *Engine) dispatch(msg *mail.Message) {
	e.c.dispatchBytes.Add(int64(msg.Size))
	user, sender := msg.Rcpt, msg.EnvelopeFrom
	switch {
	case !sender.IsNull() && e.wl.IsBlack(user, sender):
		e.c.spoolBlack.Add(1)
		e.emit(maillog.KindDispatch, msg.ID, "spool", Black.String())
		e.recordRep(sender, msg.ClientIP, reputation.Spam)
	case !sender.IsNull() && e.wl.IsWhite(user, sender):
		e.c.spoolWhite.Add(1)
		e.emit(maillog.KindDispatch, msg.ID, "spool", White.String())
		e.deliver(msg, ViaWhitelist)
	default:
		e.c.spoolGray.Add(1)
		e.emit(maillog.KindDispatch, msg.ID, "spool", Gray.String())
		e.handleGray(msg)
	}
}

// handleGray runs the auxiliary filters and challenges survivors. When
// a reputation store is installed the engine consults it first: a
// trusted-band sender skips the probe chain entirely (fast path) and
// proceeds straight to the challenge/quarantine stage. The skip is
// never silent — a maillog "reputation" event records the band, score
// and contributing keys, and Metrics.ReputationFastPath counts it.
func (e *Engine) handleGray(msg *mail.Message) GrayOutcome {
	if p := e.pressure.Load(); p != nil && (*p)() && e.chain != nil {
		// Overload pressure: shed the probe chain fail-open. The message
		// still goes through challenge/quarantine — the CR core — so no
		// mail is lost, only auxiliary filtering deferred.
		e.c.filterDegraded.Add("overload", 1)
		e.emit(maillog.KindDegraded, msg.ID,
			"component", "overload", "mode", filters.FailOpen.String(), "action", "pass")
		return e.challengeOrQuarantine(msg)
	}
	rep := e.rep.Load()
	if rep != nil && e.chain != nil && !msg.EnvelopeFrom.IsNull() {
		v, err := rep.Lookup(msg.EnvelopeFrom, msg.ClientIP)
		switch {
		case err != nil:
			// Store unavailable: reputation is advisory, so fail open to
			// the full filter chain — never block or drop on its account.
			e.c.filterDegraded.Add("reputation", 1)
			e.emit(maillog.KindDegraded, msg.ID,
				"component", "reputation", "mode", filters.FailOpen.String(), "action", "pass")
		case v.Band == reputation.Trusted:
			e.c.reputationFastPath.Add(1)
			e.emitReputation(msg.ID, "fast-path", v)
			return e.challengeOrQuarantine(msg)
		}
	}
	if e.chain != nil {
		o := e.chain.Run(msg)
		for _, d := range o.Degraded {
			e.c.filterDegraded.Add(d.Filter, 1)
			action := "pass"
			if d.Mode == filters.FailClosed {
				action = "drop"
			}
			e.emit(maillog.KindDegraded, msg.ID,
				"component", d.Filter, "mode", d.Mode.String(), "action", action)
		}
		if o.Result.Verdict == filters.Drop {
			e.c.filterDropped.Add(o.DroppedBy, 1)
			if o.DroppedBy == "reputation" {
				e.c.reputationSuspect.Add(1)
			}
			e.emit(maillog.KindFilterDrop, msg.ID, "filter", o.DroppedBy)
			switch o.DroppedBy {
			case "reputation":
				// The store's own verdict dropped the message. Recording
				// that as fresh spam evidence would let the verdict feed
				// itself; emit the explain event and leave the counters
				// alone.
				if rep != nil {
					e.emitReputation(msg.ID, "suspect", rep.Score(msg.EnvelopeFrom, msg.ClientIP))
				}
			case "rbl":
				e.recordRep(msg.EnvelopeFrom, msg.ClientIP, reputation.RBLHit)
			default:
				e.recordRep(msg.EnvelopeFrom, msg.ClientIP, reputation.Spam)
			}
			return GrayDropped
		}
	}
	return e.challengeOrQuarantine(msg)
}

// emitReputation logs one reputation decision with its evidence.
func (e *Engine) emitReputation(msgID, action string, v reputation.Verdict) {
	if !e.logging() {
		return
	}
	keys := make([]string, len(v.Keys))
	for i, k := range v.Keys {
		keys[i] = k.Key
	}
	e.emit(maillog.KindReputation, msgID,
		"action", action,
		"band", v.Band.String(),
		"score", strconv.FormatFloat(v.Score, 'f', 3, 64),
		"keys", strings.Join(keys, ","))
}

// addQuarLocked inserts q into the quarantine and its recipient index.
// Callers must hold e.mu.
func (e *Engine) addQuarLocked(q *quarantined) {
	id := q.msg.ID
	e.quarantine[id] = q
	rk := q.msg.Rcpt.Canonical()
	byID := e.byRcpt[rk]
	if byID == nil {
		byID = make(map[string]*quarantined)
		e.byRcpt[rk] = byID
	}
	byID[id] = q
}

// delQuarLocked removes q from the quarantine and its recipient index.
// Callers must hold e.mu.
func (e *Engine) delQuarLocked(q *quarantined) {
	id := q.msg.ID
	delete(e.quarantine, id)
	rk := q.msg.Rcpt.Canonical()
	if byID := e.byRcpt[rk]; byID != nil {
		delete(byID, id)
		if len(byID) == 0 {
			delete(e.byRcpt, rk)
		}
	}
}

// challengeOrQuarantine is the post-filter half of the gray path:
// quarantine the message and challenge its sender (subject to the
// null-sender, pending-pair and rate-cap rules).
func (e *Engine) challengeOrQuarantine(msg *mail.Message) GrayOutcome {
	now := e.clk.Now()
	q := &quarantined{msg: msg, queuedAt: now}

	if msg.EnvelopeFrom.IsNull() {
		// A bounce: quarantine for the digest but never challenge. If it
		// parses as a DSN for one of our own challenges, close the
		// feedback loop first — the fate of the challenge is negative
		// evidence about the (very possibly spoofed) original sender.
		e.processDSN(msg)
		e.mu.Lock()
		e.addQuarLocked(q)
		e.mu.Unlock()
		e.c.quarantineOnly.Add(1)
		return GrayQuarantinedOnly
	}

	if msg.AutoSubmitted != "" {
		// RFC 3834: the message is itself auto-generated — another CR
		// system's challenge, a vacation autoresponder. Challenging it
		// would start a challenge-challenge loop between two CR
		// deployments (our challenges carry the same header, so the
		// peer suppresses symmetrically). Quarantine only.
		e.mu.Lock()
		e.addQuarLocked(q)
		e.mu.Unlock()
		e.c.challengeLoopSuppressed.Add(1)
		if e.logging() {
			e.emit(maillog.KindLoopSuppressed, msg.ID,
				"from", msg.EnvelopeFrom.Key(), "auto", msg.AutoSubmitted)
		}
		return GrayQuarantinedOnly
	}

	pk := makePairKey(msg.Rcpt, msg.EnvelopeFrom)
	q.pk, q.hasPK = pk, true
	e.mu.Lock()
	if ids := e.pendingChallenge[pk]; len(ids) > 0 {
		// A challenge for this sender/mailbox pair is already out; hold
		// the message behind it instead of sending another challenge.
		e.pendingChallenge[pk] = append(ids, msg.ID)
		e.addQuarLocked(q)
		e.mu.Unlock()
		e.c.challengeSuppressed.Add(1)
		return GrayQuarantinedOnly
	}
	if e.cfg.MaxChallengesPerHour > 0 {
		now := e.clk.Now()
		if now.Sub(e.rateWindowStart) >= time.Hour {
			e.rateWindowStart = now
			e.rateWindowCount = 0
		}
		if e.rateWindowCount >= e.cfg.MaxChallengesPerHour {
			// Over the cap: hold the message without challenging. The
			// pending entry stays so a later message from the same pair
			// does not slip a challenge through either.
			e.pendingChallenge[pk] = []string{msg.ID}
			e.addQuarLocked(q)
			e.mu.Unlock()
			e.c.challengeRateLimited.Add(1)
			return GrayQuarantinedOnly
		}
		e.rateWindowCount++
	}
	e.pendingChallenge[pk] = []string{msg.ID}
	e.mu.Unlock()

	ch := e.captcha.Issue(msg.ID, msg.Rcpt, msg.EnvelopeFrom)
	q.challenged = true
	e.mu.Lock()
	e.addQuarLocked(q)
	e.mu.Unlock()
	e.c.challengesSent.Add(1)
	e.c.challengeBytes.Add(int64(e.cfg.ChallengeSize))

	if e.logging() {
		e.emit(maillog.KindChallenge, msg.ID, "to", msg.EnvelopeFrom.Key())
	}
	e.recordRep(msg.EnvelopeFrom, msg.ClientIP, reputation.Challenged)
	if send := e.sendCh.Load(); send != nil {
		(*send)(OutboundChallenge{
			MsgID:   msg.ID,
			Token:   ch.Token,
			From:    e.cfg.ChallengeFrom,
			To:      msg.EnvelopeFrom,
			Subject: msg.Subject,
			URL:     e.captcha.URL(e.cfg.ChallengeBaseURL, ch.Token),
			Size:    e.cfg.ChallengeSize,
			Issued:  e.clk.Now(),
		})
	}
	return GrayChallenged
}

// processDSN closes the challenge feedback loop for one inbound
// null-sender message. If the message parses as a delivery status
// notification whose original message ID matches an outstanding
// challenged quarantine item, the originating gray message is marked
// bounced (visible through ObservedBounces and the ChallengeBounced
// counters) and — for the spoofed-sender bounce classes, no-user and
// no-domain — the sender takes a reputation penalty. A blocklisted
// bounce (5.7.1) is the *challenge sender's* standing with the remote
// MX, not evidence about the original sender, so it is counted but
// never penalised. DSNs matching no outstanding challenge count as
// orphaned. Reports whether the message was a parsable DSN.
func (e *Engine) processDSN(msg *mail.Message) bool {
	d, ok := mail.ParseDSN(msg)
	if !ok {
		return false
	}
	class := string(d.Class)

	var sender mail.Address
	correlated := false
	if d.OriginalMessageID != "" {
		e.mu.Lock()
		if q, ok := e.quarantine[d.OriginalMessageID]; ok && q.challenged {
			correlated = true
			sender = q.msg.EnvelopeFrom
			e.observedBounces[d.OriginalMessageID] = class
		}
		e.mu.Unlock()
	}

	if correlated {
		e.c.challengeBounced.Add(class, 1)
		if d.Class == mail.DSNNoUser || d.Class == mail.DSNNoDomain {
			e.recordRep(sender, "", reputation.Bounced)
		}
	} else {
		e.c.dsnOrphaned.Add(1)
	}

	if e.logging() {
		domain := sender.Domain
		if domain == "" {
			if i := strings.LastIndexByte(d.FinalRecipient, '@'); i >= 0 {
				domain = d.FinalRecipient[i+1:]
			}
		}
		id := d.OriginalMessageID
		if id == "" {
			id = msg.ID
		}
		e.emit(maillog.KindBounce, id,
			"class", class, "status", d.Status, "domain", domain)
	}
	return true
}

// ObservedBounces returns the engine's log-derived view of challenge
// fates: originating gray message ID to DSN bounce class, for every
// challenge whose bounce came back and was correlated. The clustering
// experiments cross-validate this map against simulator truth.
func (e *Engine) ObservedBounces() map[string]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]string, len(e.observedBounces))
	for k, v := range e.observedBounces {
		out[k] = v
	}
	return out
}

// deliver records a delivery to the user's inbox.
func (e *Engine) deliver(msg *mail.Message, via DeliveryVia) {
	now := e.clk.Now()
	queued := msg.Received
	if queued.IsZero() {
		queued = now
	}
	d := Delivery{
		MsgID:       msg.ID,
		User:        msg.Rcpt,
		Sender:      msg.EnvelopeFrom,
		Via:         via,
		QueuedAt:    queued,
		DeliveredAt: now,
	}
	e.mu.Lock()
	e.deliveries = append(e.deliveries, d)
	e.mu.Unlock()
	e.c.delivered[via].Add(1)
	e.emit(maillog.KindDeliver, msg.ID, "via", via.String())
	e.recordRep(msg.EnvelopeFrom, msg.ClientIP, reputation.Delivered)
	if inbox := e.inbox.Load(); inbox != nil {
		(*inbox)(d, msg)
	}
}

// onChallengeSolved is the captcha service's solve callback: whitelist the
// sender for the recipient and release the quarantined message.
func (e *Engine) onChallengeSolved(ch *captcha.Challenge) {
	e.emit(maillog.KindWebSolve, ch.MsgID, "token", ch.Token, "attempts", itoa(ch.Attempts))
	e.wl.AddWhite(ch.Recipient, ch.Sender, whitelist.SourceChallenge)
	e.recordRep(ch.Sender, "", reputation.Solved)

	pk := makePairKey(ch.Recipient, ch.Sender)
	e.mu.Lock()
	ids := e.pendingChallenge[pk]
	delete(e.pendingChallenge, pk)
	var release []*quarantined
	for _, id := range ids {
		if q, ok := e.quarantine[id]; ok {
			release = append(release, q)
			e.delQuarLocked(q)
		}
	}
	// The solved message itself may predate the pending machinery (or
	// have been queued under another key); make sure it is released.
	if q, ok := e.quarantine[ch.MsgID]; ok {
		release = append(release, q)
		e.delQuarLocked(q)
	}
	e.mu.Unlock()
	for _, q := range release {
		e.deliver(q.msg, ViaChallenge)
		e.captcha.Drop(q.msg.ID)
	}
}

// removePendingLocked drops id from the pair's pending-challenge queue.
// Callers must hold e.mu.
func (e *Engine) removePendingLocked(q *quarantined) {
	if !q.hasPK {
		return
	}
	ids := e.pendingChallenge[q.pk]
	for i, id := range ids {
		if id == q.msg.ID {
			ids = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		delete(e.pendingChallenge, q.pk)
	} else {
		e.pendingChallenge[q.pk] = ids
	}
}

// AuthorizeFromDigest implements the digest "authorize" action: the user
// whitelists the sender and the quarantined message is delivered.
func (e *Engine) AuthorizeFromDigest(user mail.Address, msgID string) error {
	e.mu.Lock()
	q, ok := e.quarantine[msgID]
	if ok && !q.msg.Rcpt.KeyEquals(user) {
		ok = false
	}
	if ok {
		e.delQuarLocked(q)
		e.removePendingLocked(q)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no quarantined message %s for %s", msgID, user)
	}
	if !q.msg.EnvelopeFrom.IsNull() {
		e.wl.AddWhite(user, q.msg.EnvelopeFrom, whitelist.SourceDigest)
	}
	e.deliver(q.msg, ViaDigest)
	e.captcha.Drop(msgID)
	return nil
}

// DeleteFromDigest implements the digest "delete" action.
func (e *Engine) DeleteFromDigest(user mail.Address, msgID string) error {
	e.mu.Lock()
	q, ok := e.quarantine[msgID]
	if ok && !q.msg.Rcpt.KeyEquals(user) {
		ok = false
	}
	if ok {
		e.delQuarLocked(q)
		e.removePendingLocked(q)
		e.c.digestDeleted.Add(1)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no quarantined message %s for %s", msgID, user)
	}
	e.captcha.Drop(msgID)
	return nil
}

// UserSentMail records an outbound message from a protected user, which
// implicitly whitelists the destination (§2, fourth mechanism).
func (e *Engine) UserSentMail(user, to mail.Address) {
	e.wl.AddWhite(user, to, whitelist.SourceOutbound)
}

// AddManualWhitelist implements the manual import mechanism.
func (e *Engine) AddManualWhitelist(user, sender mail.Address) {
	e.wl.AddWhite(user, sender, whitelist.SourceManual)
}

// ExpireQuarantine drops messages older than the quarantine TTL and
// returns how many were dropped. Run it from a daily sweep.
func (e *Engine) ExpireQuarantine() int {
	now := e.clk.Now()
	var expired []string
	e.mu.Lock()
	for id, q := range e.quarantine {
		if now.Sub(q.queuedAt) > e.cfg.QuarantineTTL {
			expired = append(expired, id)
			e.delQuarLocked(q)
			e.removePendingLocked(q)
		}
	}
	e.mu.Unlock()
	e.c.quarantineExpired.Add(int64(len(expired)))
	for _, id := range expired {
		e.captcha.Drop(id)
	}
	return len(expired)
}

// PendingForUser returns the digest items for user's quarantined mail,
// oldest first (ties broken by message ID so output is deterministic).
func (e *Engine) PendingForUser(user mail.Address) []digest.Item {
	rk := user.Canonical()
	e.mu.Lock()
	var out []digest.Item
	if byID := e.byRcpt[rk]; len(byID) > 0 {
		out = make([]digest.Item, 0, len(byID))
		for id, q := range byID {
			out = append(out, digest.Item{
				MsgID:   id,
				Sender:  q.msg.EnvelopeFrom,
				Subject: q.msg.Subject,
				Queued:  q.queuedAt,
			})
		}
	}
	e.mu.Unlock()
	slices.SortFunc(out, func(a, b digest.Item) int {
		if !a.Queued.Equal(b.Queued) {
			return a.Queued.Compare(b.Queued)
		}
		return strings.Compare(a.MsgID, b.MsgID)
	})
	return out
}

// QuarantineLen returns the number of quarantined messages.
func (e *Engine) QuarantineLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.quarantine)
}

// Deliveries returns a copy of the delivery log.
func (e *Engine) Deliveries() []Delivery {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Delivery, len(e.deliveries))
	copy(out, e.deliveries)
	return out
}

// Metrics returns a deep-copied snapshot of the engine counters, merged
// with the filter chain's per-filter drop counts. The maps are built
// fresh from the underlying atomics on every call, so the snapshot is
// the caller's alone — mutating it cannot race with the engine, the
// same guarantee the old single-mutex deep copy gave.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		MTAIncoming: e.c.mtaIncoming.Load(),
		MTAInBytes:  e.c.mtaInBytes.Load(),
		MTADropped:  make(map[MTAReason]int64),

		SpoolWhite:    e.c.spoolWhite.Load(),
		SpoolBlack:    e.c.spoolBlack.Load(),
		SpoolGray:     e.c.spoolGray.Load(),
		DispatchBytes: e.c.dispatchBytes.Load(),

		FilterDropped:           e.c.filterDropped.Snapshot(),
		ChallengesSent:          e.c.challengesSent.Load(),
		ChallengeBytes:          e.c.challengeBytes.Load(),
		QuarantineOnly:          e.c.quarantineOnly.Load(),
		ChallengeSuppressed:     e.c.challengeSuppressed.Load(),
		ChallengeRateLimited:    e.c.challengeRateLimited.Load(),
		ChallengeLoopSuppressed: e.c.challengeLoopSuppressed.Load(),
		ChallengeBounced:        e.c.challengeBounced.Snapshot(),
		DSNOrphaned:             e.c.dsnOrphaned.Load(),
		FilterDegraded:          e.c.filterDegraded.Snapshot(),
		MTADegradedAccept:       e.c.mtaDegradedAccept.Load(),
		MTADegradedDrop:         e.c.mtaDegradedDrop.Load(),

		ReputationFastPath: e.c.reputationFastPath.Load(),
		ReputationSuspect:  e.c.reputationSuspect.Load(),

		Delivered:         make(map[DeliveryVia]int64),
		QuarantineExpired: e.c.quarantineExpired.Load(),
		DigestDeleted:     e.c.digestDeleted.Load(),
	}
	for r := range e.c.mtaDropped {
		if n := e.c.mtaDropped[r].Load(); n != 0 {
			m.MTADropped[MTAReason(r)] = n
		}
	}
	for v := range e.c.delivered {
		if n := e.c.delivered[v].Load(); n != 0 {
			m.Delivered[DeliveryVia(v)] = n
		}
	}
	return m
}

// ReflectionRatio returns R at the CR filter: challenges sent over
// messages reaching the dispatcher (§3.1; the study measured 19.3%).
func (m Metrics) ReflectionRatio() float64 {
	reaching := m.SpoolWhite + m.SpoolBlack + m.SpoolGray
	if reaching == 0 {
		return 0
	}
	return float64(m.ChallengesSent) / float64(reaching)
}

// ReflectionRatioMTA returns R at the MTA-IN: challenges over all
// incoming messages (the study measured 4.8%).
func (m Metrics) ReflectionRatioMTA() float64 {
	if m.MTAIncoming == 0 {
		return 0
	}
	return float64(m.ChallengesSent) / float64(m.MTAIncoming)
}

// ReflectedTrafficRatio returns RT at the CR filter: challenge bytes out
// over message bytes in (§3.3; the study measured 2.5%).
func (m Metrics) ReflectedTrafficRatio() float64 {
	if m.DispatchBytes == 0 {
		return 0
	}
	return float64(m.ChallengeBytes) / float64(m.DispatchBytes)
}

// TotalMTADropped sums the MTA-IN drops.
func (m Metrics) TotalMTADropped() int64 {
	var n int64
	for _, v := range m.MTADropped {
		n += v
	}
	return n
}

// TotalFilterDropped sums the gray-spool filter drops.
func (m Metrics) TotalFilterDropped() int64 {
	var n int64
	for _, v := range m.FilterDropped {
		n += v
	}
	return n
}

// TotalFilterDegraded sums degraded (fail-open/fail-closed) filter decisions.
func (m Metrics) TotalFilterDegraded() int64 {
	var n int64
	for _, v := range m.FilterDegraded {
		n += v
	}
	return n
}
