package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mail"
	"repro/internal/maillog"
)

// TestOpenRelayRelayedRecipientsDispatched: messages accepted for a
// relayed domain flow through the full dispatcher (they can be
// challenged), which is how the paper's open relays generated their +9%
// extra challenges.
func TestOpenRelayRelayedRecipientsDispatched(t *testing.T) {
	e := newEnv(t, true)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	m := e.goodMsg("alice@example.com", "whoever@relayed.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	met := e.eng.Metrics()
	if met.SpoolGray != 1 || met.ChallengesSent != 1 {
		t.Fatalf("relayed message not dispatched: %+v", met)
	}
}

func TestMTAInBytesAccounting(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	m1 := e.goodMsg("alice@example.com", "bob@corp.example")
	m1.Size = 1000
	m2 := e.goodMsg("alice@example.com", "ghost@corp.example") // dropped
	m2.Size = 500
	e.eng.Receive(m1)
	e.eng.Receive(m2)
	met := e.eng.Metrics()
	if met.MTAInBytes != 1500 {
		t.Fatalf("MTAInBytes = %d, want 1500 (drops count too)", met.MTAInBytes)
	}
	if met.DispatchBytes != 1000 {
		t.Fatalf("DispatchBytes = %d, want 1000 (accepted only)", met.DispatchBytes)
	}
}

// TestChallengeMailboxIsKnownRecipient: DSNs addressed to the challenge
// sender must not bounce as unknown users.
func TestChallengeMailboxIsKnownRecipient(t *testing.T) {
	e := newEnv(t, false)
	dsn := e.goodMsg("alice@example.com", "challenge@corp.example")
	dsn.EnvelopeFrom = mail.Null
	if r := e.eng.Receive(dsn); r != Accepted {
		t.Fatalf("DSN to challenge mailbox = %v, want Accepted", r)
	}
}

// TestSpoolIdentity: incoming always equals drops + spools, under any
// interleaving of classes.
func TestSpoolIdentity(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	e.eng.AddManualWhitelist(bob, mail.MustParseAddress("friend@example.com"))
	e.eng.Whitelists().AddBlack(bob, mail.MustParseAddress("enemy@example.com"))

	for i := 0; i < 30; i++ {
		var from, to string
		switch i % 5 {
		case 0:
			from, to = "friend@example.com", "bob@corp.example"
		case 1:
			from, to = "enemy@example.com", "bob@corp.example"
		case 2:
			from, to = fmt.Sprintf("s%d@example.com", i), "bob@corp.example"
		case 3:
			from, to = "x@example.com", "ghost@corp.example"
		default:
			from, to = "y@example.com", "foreign@elsewhere.example"
		}
		e.eng.Receive(e.goodMsg(from, to))
	}
	m := e.eng.Metrics()
	if m.MTAIncoming != m.TotalMTADropped()+m.SpoolWhite+m.SpoolBlack+m.SpoolGray {
		t.Fatalf("identity violated: %d != %d+%d+%d+%d",
			m.MTAIncoming, m.TotalMTADropped(), m.SpoolWhite, m.SpoolBlack, m.SpoolGray)
	}
	// Gray identity: filtered + challenged + suppressed + null = gray.
	grayAccounted := m.TotalFilterDropped() + m.ChallengesSent + m.ChallengeSuppressed + m.QuarantineOnly
	if grayAccounted != m.SpoolGray {
		t.Fatalf("gray identity violated: %d != %d", grayAccounted, m.SpoolGray)
	}
}

// TestEventSinkSequence checks the emitted event order for one message's
// full journey: accept -> dispatch -> challenge -> web solve -> deliver.
func TestEventSinkSequence(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	var kinds []maillog.Kind
	e.eng.SetEventSink(func(ev maillog.Event) { kinds = append(kinds, ev.Kind) })

	m := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m)
	svc := e.eng.Captcha()
	tok := e.sent[0].Token
	if _, err := svc.Visit(tok); err != nil {
		t.Fatal(err)
	}
	ans, _ := svc.Answer(tok)
	if err := svc.Solve(tok, ans); err != nil {
		t.Fatal(err)
	}

	want := []maillog.Kind{
		maillog.KindMTAAccept, maillog.KindDispatch, maillog.KindChallenge,
		maillog.KindWebVisit, maillog.KindWebSolve, maillog.KindDeliver,
	}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

// TestQuarantineExpirySweepUnderLoad: the daily sweep must be linear and
// drop exactly the over-age population.
func TestQuarantineExpirySweepUnderLoad(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	// 50 messages on day 0, 50 on day 20.
	for i := 0; i < 50; i++ {
		e.eng.Receive(e.goodMsg(fmt.Sprintf("a%d@example.com", i), "bob@corp.example"))
	}
	e.clk.Advance(20 * 24 * time.Hour)
	for i := 0; i < 50; i++ {
		e.eng.Receive(e.goodMsg(fmt.Sprintf("b%d@example.com", i), "bob@corp.example"))
	}
	e.clk.Advance(11 * 24 * time.Hour) // first batch now 31 days old
	if n := e.eng.ExpireQuarantine(); n != 50 {
		t.Fatalf("expired %d, want 50", n)
	}
	if e.eng.QuarantineLen() != 50 {
		t.Fatalf("remaining = %d, want 50", e.eng.QuarantineLen())
	}
}

// TestDeliveriesSnapshotIsolated: the returned slice must not alias
// internal state.
func TestDeliveriesSnapshotIsolated(t *testing.T) {
	e := newEnv(t, false)
	bob := mail.MustParseAddress("bob@corp.example")
	e.eng.AddManualWhitelist(bob, mail.MustParseAddress("a@example.com"))
	e.eng.Receive(e.goodMsg("a@example.com", "bob@corp.example"))
	ds := e.eng.Deliveries()
	ds[0].MsgID = "mutated"
	if e.eng.Deliveries()[0].MsgID == "mutated" {
		t.Fatal("Deliveries returned aliased storage")
	}
}
