package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/whitelist"
)

var t0 = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

// env bundles a fully-wired engine for tests.
type env struct {
	clk     *clock.Sim
	dns     *dnssim.Server
	rblProv *rbl.Provider
	eng     *Engine
	sent    []OutboundChallenge
}

func newEnv(t *testing.T, openRelay bool) *env {
	t.Helper()
	e := &env{clk: clock.NewSim(t0), dns: dnssim.NewServer()}
	e.rblProv = rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), e.clk)
	chain := filters.NewChain(
		filters.NewAntivirus(),
		filters.NewReverseDNS(e.dns),
		filters.NewRBL(e.rblProv),
	)
	wl := whitelist.NewStore(e.clk)
	cfg := Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		OpenRelay:        openRelay,
		RelayDomains:     []string{"relayed.example"},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
		ChallengeSize:    1800,
		Seed:             7,
	}
	e.eng = New(cfg, e.clk, e.dns, chain, wl, nil)
	e.eng.SetChallengeSender(func(ch OutboundChallenge) { e.sent = append(e.sent, ch) })
	e.eng.AddUser(mail.MustParseAddress("bob@corp.example"))

	// A well-behaved sender environment.
	e.dns.RegisterMailDomain("example.com", "192.0.2.10")
	return e
}

// goodMsg returns a message that passes every MTA-IN and filter check.
func (e *env) goodMsg(from, to string) *mail.Message {
	return &mail.Message{
		ID:           mail.NewID("m"),
		EnvelopeFrom: mail.MustParseAddress(from),
		Rcpt:         mail.MustParseAddress(to),
		Subject:      "a perfectly reasonable subject line here",
		Size:         4000,
		ClientIP:     "192.0.2.10",
		Received:     e.clk.Now(),
	}
}

func TestMTAInMalformed(t *testing.T) {
	e := newEnv(t, false)
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	m.Rcpt = mail.Address{} // unparsable recipient
	if r := e.eng.Receive(m); r != Malformed {
		t.Fatalf("verdict = %v, want Malformed", r)
	}
	if e.eng.Metrics().MTADropped[Malformed] != 1 {
		t.Fatal("malformed drop not counted")
	}
}

func TestMTAInUnresolvableDomain(t *testing.T) {
	e := newEnv(t, false)
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	m.EnvelopeFrom = mail.MustParseAddress("x@unresolvable.example")
	if r := e.eng.Receive(m); r != Unresolvable {
		t.Fatalf("verdict = %v, want Unresolvable", r)
	}
}

func TestMTAInNoRelay(t *testing.T) {
	e := newEnv(t, false)
	m := e.goodMsg("alice@example.com", "someone@elsewhere.example")
	if r := e.eng.Receive(m); r != NoRelay {
		t.Fatalf("verdict = %v, want NoRelay", r)
	}
}

func TestMTAInOpenRelayAcceptsRelayDomain(t *testing.T) {
	e := newEnv(t, true)
	// Any mailbox in a relayed domain is accepted without a user check.
	m := e.goodMsg("alice@example.com", "whoever@relayed.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v, want Accepted (open relay)", r)
	}
	// But a foreign domain is still refused.
	m2 := e.goodMsg("alice@example.com", "x@elsewhere.example")
	if r := e.eng.Receive(m2); r != NoRelay {
		t.Fatalf("verdict = %v, want NoRelay", r)
	}
}

func TestMTAInSenderRejected(t *testing.T) {
	e := newEnv(t, false)
	bad := mail.MustParseAddress("banned@example.com")
	e.eng.RejectSender(bad)
	m := e.goodMsg("banned@example.com", "bob@corp.example")
	if r := e.eng.Receive(m); r != SenderRejected {
		t.Fatalf("verdict = %v, want SenderRejected", r)
	}
}

func TestMTAInUnknownRecipient(t *testing.T) {
	e := newEnv(t, false)
	m := e.goodMsg("alice@example.com", "ghost@corp.example")
	if r := e.eng.Receive(m); r != UnknownRecipient {
		t.Fatalf("verdict = %v, want UnknownRecipient", r)
	}
}

func TestNullSenderPassesResolvabilityCheck(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	m.EnvelopeFrom = mail.Null
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("bounce verdict = %v, want Accepted", r)
	}
}

func TestDispatchWhite(t *testing.T) {
	e := newEnv(t, false)
	bob := mail.MustParseAddress("bob@corp.example")
	alice := mail.MustParseAddress("alice@example.com")
	e.eng.AddManualWhitelist(bob, alice)

	m := e.goodMsg("alice@example.com", "bob@corp.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	met := e.eng.Metrics()
	if met.SpoolWhite != 1 || met.Delivered[ViaWhitelist] != 1 {
		t.Fatalf("metrics = %+v", met)
	}
	ds := e.eng.Deliveries()
	if len(ds) != 1 || ds[0].Via != ViaWhitelist || ds[0].Delay() != 0 {
		t.Fatalf("deliveries = %+v", ds)
	}
	if len(e.sent) != 0 {
		t.Fatal("whitelisted mail triggered a challenge")
	}
}

func TestDispatchBlack(t *testing.T) {
	e := newEnv(t, false)
	bob := mail.MustParseAddress("bob@corp.example")
	spammer := mail.MustParseAddress("junk@example.com")
	e.eng.Whitelists().AddBlack(bob, spammer)

	m := e.goodMsg("junk@example.com", "bob@corp.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	met := e.eng.Metrics()
	if met.SpoolBlack != 1 || len(e.eng.Deliveries()) != 0 || e.eng.QuarantineLen() != 0 {
		t.Fatalf("blacklisted mail mishandled: %+v", met)
	}
}

func TestDispatchGrayChallenged(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	met := e.eng.Metrics()
	if met.SpoolGray != 1 || met.ChallengesSent != 1 {
		t.Fatalf("metrics = %+v", met)
	}
	if len(e.sent) != 1 {
		t.Fatalf("challenges emitted = %d, want 1", len(e.sent))
	}
	ch := e.sent[0]
	if ch.To != m.EnvelopeFrom || ch.From.String() != "challenge@corp.example" {
		t.Fatalf("challenge routing wrong: %+v", ch)
	}
	if !strings.HasPrefix(ch.URL, "http://cr.corp.example/challenge/") {
		t.Fatalf("challenge URL = %q", ch.URL)
	}
	if e.eng.QuarantineLen() != 1 {
		t.Fatal("message not quarantined")
	}
}

func TestGrayDroppedByFilters(t *testing.T) {
	e := newEnv(t, false)
	// No PTR for this client: reverse-DNS filter drops.
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	m.ClientIP = "203.0.113.66"
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	met := e.eng.Metrics()
	if met.FilterDropped["reverse-dns"] != 1 || met.ChallengesSent != 0 {
		t.Fatalf("metrics = %+v", met)
	}
	if e.eng.QuarantineLen() != 0 {
		t.Fatal("filter-dropped message quarantined")
	}
}

func TestChallengeSolvedDeliversAndWhitelists(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	alice := mail.MustParseAddress("alice@example.com")

	m := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m)
	e.clk.Advance(12 * time.Minute)

	svc := e.eng.Captcha()
	tok := e.sent[0].Token
	ans, err := svc.Answer(tok)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Solve(tok, ans); err != nil {
		t.Fatal(err)
	}

	if !e.eng.Whitelists().IsWhite(bob, alice) {
		t.Fatal("solving the challenge did not whitelist the sender")
	}
	ds := e.eng.Deliveries()
	if len(ds) != 1 || ds[0].Via != ViaChallenge {
		t.Fatalf("deliveries = %+v", ds)
	}
	if ds[0].Delay() != 12*time.Minute {
		t.Fatalf("delivery delay = %v, want 12m", ds[0].Delay())
	}
	if e.eng.QuarantineLen() != 0 {
		t.Fatal("quarantine not emptied after solve")
	}

	// Next message from alice goes straight to the inbox.
	m2 := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m2)
	met := e.eng.Metrics()
	if met.SpoolWhite != 1 || met.ChallengesSent != 1 {
		t.Fatalf("second message not whitelisted: %+v", met)
	}
}

func TestAuthorizeFromDigest(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	alice := mail.MustParseAddress("alice@example.com")

	m := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m)
	e.clk.Advance(26 * time.Hour)

	pending := e.eng.PendingForUser(bob)
	if len(pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(pending))
	}
	if err := e.eng.AuthorizeFromDigest(bob, pending[0].MsgID); err != nil {
		t.Fatal(err)
	}
	if !e.eng.Whitelists().IsWhite(bob, alice) {
		t.Fatal("digest authorize did not whitelist")
	}
	ds := e.eng.Deliveries()
	if len(ds) != 1 || ds[0].Via != ViaDigest || ds[0].Delay() != 26*time.Hour {
		t.Fatalf("deliveries = %+v", ds)
	}
	// Authorizing again fails: already delivered.
	if err := e.eng.AuthorizeFromDigest(bob, pending[0].MsgID); err == nil {
		t.Fatal("second authorize succeeded")
	}
}

func TestAuthorizeFromDigestWrongUser(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	e.eng.AddUser(mail.MustParseAddress("carol@corp.example"))
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m)
	carol := mail.MustParseAddress("carol@corp.example")
	if err := e.eng.AuthorizeFromDigest(carol, m.ID); err == nil {
		t.Fatal("carol authorized bob's message")
	}
}

func TestDeleteFromDigest(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m)
	if err := e.eng.DeleteFromDigest(bob, m.ID); err != nil {
		t.Fatal(err)
	}
	if e.eng.QuarantineLen() != 0 || e.eng.Metrics().DigestDeleted != 1 {
		t.Fatal("delete did not clear quarantine")
	}
	// The challenge token is dead too.
	if _, err := e.eng.Captcha().Visit(e.sent[0].Token); err == nil {
		t.Fatal("token survives digest delete")
	}
	if err := e.eng.DeleteFromDigest(bob, "m-unknown"); err == nil {
		t.Fatal("deleting unknown message succeeded")
	}
}

func TestQuarantineExpiry(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	e.eng.Receive(m)
	e.clk.Advance(29 * 24 * time.Hour)
	if n := e.eng.ExpireQuarantine(); n != 0 {
		t.Fatalf("expired %d before TTL", n)
	}
	e.clk.Advance(2 * 24 * time.Hour)
	if n := e.eng.ExpireQuarantine(); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if e.eng.Metrics().QuarantineExpired != 1 || e.eng.QuarantineLen() != 0 {
		t.Fatal("expiry not recorded")
	}
}

func TestNullSenderQuarantinedWithoutChallenge(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	m := e.goodMsg("alice@example.com", "bob@corp.example")
	m.EnvelopeFrom = mail.Null
	if r := e.eng.Receive(m); r != Accepted {
		t.Fatalf("verdict = %v", r)
	}
	met := e.eng.Metrics()
	if met.ChallengesSent != 0 || met.QuarantineOnly != 1 {
		t.Fatalf("bounce handling wrong: %+v", met)
	}
	if e.eng.QuarantineLen() != 1 {
		t.Fatal("bounce not quarantined for digest")
	}
	if len(e.sent) != 0 {
		t.Fatal("challenged a bounce (mail loop!)")
	}
}

func TestUserSentMailWhitelists(t *testing.T) {
	e := newEnv(t, false)
	bob := mail.MustParseAddress("bob@corp.example")
	dave := mail.MustParseAddress("dave@example.com")
	e.eng.UserSentMail(bob, dave)
	m := e.goodMsg("dave@example.com", "bob@corp.example")
	e.eng.Receive(m)
	if e.eng.Metrics().SpoolWhite != 1 {
		t.Fatal("reply from implicit-whitelisted sender not white")
	}
}

func TestMetricsRatios(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	// 1 white + 1 gray-challenged = 2 reaching dispatcher, 1 challenge.
	bob := mail.MustParseAddress("bob@corp.example")
	e.eng.AddManualWhitelist(bob, mail.MustParseAddress("friend@example.com"))
	e.eng.Receive(e.goodMsg("friend@example.com", "bob@corp.example"))
	e.eng.Receive(e.goodMsg("stranger@example.com", "bob@corp.example"))
	// 1 MTA drop.
	e.eng.Receive(e.goodMsg("alice@example.com", "nobody@corp.example"))

	m := e.eng.Metrics()
	if got := m.ReflectionRatio(); got != 0.5 {
		t.Fatalf("R = %v, want 0.5", got)
	}
	if got := m.ReflectionRatioMTA(); got != 1.0/3 {
		t.Fatalf("R@MTA = %v, want 1/3", got)
	}
	wantRT := 1800.0 / 8000.0
	if got := m.ReflectedTrafficRatio(); got != wantRT {
		t.Fatalf("RT = %v, want %v", got, wantRT)
	}
	if m.TotalMTADropped() != 1 {
		t.Fatalf("TotalMTADropped = %d", m.TotalMTADropped())
	}
}

func TestMetricsSnapshotIsolated(t *testing.T) {
	e := newEnv(t, false)
	m := e.eng.Metrics()
	m.MTADropped[Malformed] = 999
	if e.eng.Metrics().MTADropped[Malformed] != 0 {
		t.Fatal("Metrics returned aliased map")
	}
}

func TestZeroRatiosOnEmptyEngine(t *testing.T) {
	e := newEnv(t, false)
	m := e.eng.Metrics()
	if m.ReflectionRatio() != 0 || m.ReflectionRatioMTA() != 0 || m.ReflectedTrafficRatio() != 0 {
		t.Fatal("empty-engine ratios not zero")
	}
}

func TestStringers(t *testing.T) {
	if Accepted.String() != "accepted" || UnknownRecipient.String() != "unknown-recipient" {
		t.Fatal("MTAReason.String wrong")
	}
	if White.String() != "white" || Black.String() != "black" || Gray.String() != "gray" {
		t.Fatal("Category.String wrong")
	}
	if ViaChallenge.String() != "challenge" {
		t.Fatal("DeliveryVia.String wrong")
	}
	if !strings.Contains(MTAReason(42).String(), "42") {
		t.Fatal("unknown MTAReason.String")
	}
}

func TestReceiveManyDistinctSenders(t *testing.T) {
	e := newEnv(t, false)
	e.dns.AddPTR("192.0.2.10", "mail.example.com")
	for i := 0; i < 50; i++ {
		m := e.goodMsg(fmt.Sprintf("s%d@example.com", i), "bob@corp.example")
		if r := e.eng.Receive(m); r != Accepted {
			t.Fatalf("verdict = %v", r)
		}
	}
	met := e.eng.Metrics()
	if met.ChallengesSent != 50 || e.eng.QuarantineLen() != 50 {
		t.Fatalf("metrics = %+v", met)
	}
}

func BenchmarkReceiveGray(b *testing.B) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	prov := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), clk)
	chain := filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns), filters.NewRBL(prov))
	wl := whitelist.NewStore(clk)
	eng := New(Config{
		Name: "bench", Domains: []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("cr@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, chain, wl, func(OutboundChallenge) {})
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &mail.Message{
			ID:           fmt.Sprintf("b-%d", i),
			EnvelopeFrom: mail.Address{Local: fmt.Sprintf("s%d", i), Domain: "example.com"},
			Rcpt:         mail.MustParseAddress("bob@corp.example"),
			Subject:      "bench message subject",
			Size:         4000,
			ClientIP:     "192.0.2.10",
		}
		eng.Receive(m)
	}
}

func BenchmarkReceiveWhite(b *testing.B) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	wl := whitelist.NewStore(clk)
	eng := New(Config{
		Name: "bench", Domains: []string{"corp.example"},
		ChallengeFrom: mail.MustParseAddress("cr@corp.example"),
	}, clk, dns, filters.NewChain(), wl, func(OutboundChallenge) {})
	bob := mail.MustParseAddress("bob@corp.example")
	alice := mail.MustParseAddress("alice@example.com")
	eng.AddUser(bob)
	eng.AddManualWhitelist(bob, alice)
	m := &mail.Message{
		ID: "w", EnvelopeFrom: alice, Rcpt: bob,
		Subject: "hello", Size: 3000, ClientIP: "192.0.2.10",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Receive(m)
	}
}
