package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/whitelist"
)

// rateEnv builds an engine with an hourly challenge cap.
func rateEnv(t *testing.T, cap int) (*clock.Sim, *Engine, *[]OutboundChallenge) {
	t.Helper()
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	dns.AddPTR("192.0.2.10", "mail.example.com")
	var sent []OutboundChallenge
	eng := New(Config{
		Name:                 "rl",
		Domains:              []string{"corp.example"},
		ChallengeFrom:        mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL:     "http://cr.corp.example",
		MaxChallengesPerHour: cap,
	}, clk, dns, filters.NewChain(), whitelist.NewStore(clk),
		func(ch OutboundChallenge) { sent = append(sent, ch) })
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	return clk, eng, &sent
}

func spamAt(clk *clock.Sim, i int) *mail.Message {
	return &mail.Message{
		ID:           mail.NewID("rl"),
		EnvelopeFrom: mail.Address{Local: fmt.Sprintf("s%d", i), Domain: "example.com"},
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		Subject:      "rate limit test message",
		Size:         2000,
		ClientIP:     "192.0.2.10",
		Received:     clk.Now(),
	}
}

func TestChallengeRateCapEnforced(t *testing.T) {
	clk, eng, sent := rateEnv(t, 5)
	for i := 0; i < 12; i++ {
		eng.Receive(spamAt(clk, i))
	}
	m := eng.Metrics()
	if m.ChallengesSent != 5 {
		t.Fatalf("ChallengesSent = %d, want 5 (capped)", m.ChallengesSent)
	}
	if m.ChallengeRateLimited != 7 {
		t.Fatalf("ChallengeRateLimited = %d, want 7", m.ChallengeRateLimited)
	}
	if len(*sent) != 5 {
		t.Fatalf("emitted = %d", len(*sent))
	}
	// All 12 messages are quarantined (rescuable from the digest).
	if eng.QuarantineLen() != 12 {
		t.Fatalf("quarantine = %d, want 12", eng.QuarantineLen())
	}
}

func TestChallengeRateWindowResets(t *testing.T) {
	clk, eng, _ := rateEnv(t, 3)
	for i := 0; i < 5; i++ {
		eng.Receive(spamAt(clk, i))
	}
	if got := eng.Metrics().ChallengesSent; got != 3 {
		t.Fatalf("first window challenges = %d", got)
	}
	clk.Advance(61 * time.Minute)
	for i := 10; i < 15; i++ {
		eng.Receive(spamAt(clk, i))
	}
	m := eng.Metrics()
	if m.ChallengesSent != 6 {
		t.Fatalf("after window reset = %d, want 6", m.ChallengesSent)
	}
	if m.ChallengeRateLimited != 4 {
		t.Fatalf("rate limited = %d, want 4", m.ChallengeRateLimited)
	}
}

func TestNoCapByDefault(t *testing.T) {
	clk, eng, _ := rateEnv(t, 0)
	for i := 0; i < 50; i++ {
		eng.Receive(spamAt(clk, i))
	}
	if got := eng.Metrics().ChallengesSent; got != 50 {
		t.Fatalf("uncapped challenges = %d, want 50", got)
	}
}

// TestRateLimitedMessagesStillRescuable: over-cap mail reaches the
// digest and can be authorized.
func TestRateLimitedMessagesStillRescuable(t *testing.T) {
	clk, eng, _ := rateEnv(t, 1)
	eng.Receive(spamAt(clk, 1))
	held := spamAt(clk, 2)
	eng.Receive(held) // over the cap
	if eng.Metrics().ChallengeRateLimited != 1 {
		t.Fatal("cap not applied")
	}
	bob := mail.MustParseAddress("bob@corp.example")
	if err := eng.AuthorizeFromDigest(bob, held.ID); err != nil {
		t.Fatalf("digest rescue failed: %v", err)
	}
	if eng.Metrics().Delivered[ViaDigest] != 1 {
		t.Fatal("rescued message not delivered")
	}
}

// TestRateLimitBoundsTrapExposure is the §6 attack scenario: an attacker
// floods spoofed mail to force challenges at spamtraps; the cap bounds
// the outbound challenge count no matter the flood size.
func TestRateLimitBoundsTrapExposure(t *testing.T) {
	clk, eng, sent := rateEnv(t, 10)
	for i := 0; i < 500; i++ {
		eng.Receive(spamAt(clk, i))
	}
	if len(*sent) != 10 {
		t.Fatalf("attack forced %d challenges, cap was 10", len(*sent))
	}
	_ = clk
}
