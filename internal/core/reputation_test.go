package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/rbl"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

// toggleInjector fails the reputation store on demand.
type toggleInjector struct{ on atomic.Bool }

func (ti *toggleInjector) Decide(target string, _ time.Duration) faults.Decision {
	if target == "reputation" && ti.on.Load() {
		return faults.Decision{Err: errors.New("reputation store down")}
	}
	return faults.Decision{}
}

// countingFilter counts how often the chain actually invokes the
// wrapped probe filter, so the fast-path skip is directly observable.
type countingFilter struct {
	inner filters.Filter
	n     *int64
}

func (c countingFilter) Name() string { return c.inner.Name() }

func (c countingFilter) Check(msg *mail.Message) filters.Result {
	atomic.AddInt64(c.n, 1)
	return c.inner.Check(msg)
}

// repEnv is the reputation end-to-end fixture: an engine with the
// reputation store wired in and the reverse-DNS probe instrumented.
type repEnv struct {
	clk    *clock.Sim
	dns    *dnssim.Server
	eng    *Engine
	rep    *reputation.Store
	inj    *toggleInjector
	sent   []OutboundChallenge
	events []maillog.Event
	probes int64
}

func newRepEnv(t *testing.T, users int) *repEnv {
	t.Helper()
	e := &repEnv{clk: clock.NewSim(t0), dns: dnssim.NewServer(), inj: &toggleInjector{}}
	repCfg := reputation.DefaultConfig()
	repCfg.Injector = e.inj
	e.rep = reputation.NewStore(repCfg, e.clk)
	rblProv := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), e.clk)
	chain := filters.NewChain(
		filters.Harden(filters.NewReputation(e.rep), filters.FailOpen, filters.HardenOpts{}),
		filters.NewAntivirus(),
		countingFilter{inner: filters.NewReverseDNS(e.dns), n: &e.probes},
		filters.NewRBL(rblProv),
	)
	cfg := Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
		Seed:             11,
	}
	e.eng = New(cfg, e.clk, e.dns, chain, whitelist.NewStore(e.clk), nil)
	e.eng.SetReputation(e.rep)
	e.eng.SetChallengeSender(func(ch OutboundChallenge) { e.sent = append(e.sent, ch) })
	e.eng.SetEventSink(func(ev maillog.Event) { e.events = append(e.events, ev) })
	for i := 0; i < users; i++ {
		e.eng.AddUser(mail.MustParseAddress(fmt.Sprintf("u%02d@corp.example", i)))
	}
	return e
}

func (e *repEnv) receive(from, to, ip string) MTAReason {
	return e.eng.Receive(&mail.Message{
		ID:           mail.NewID("m"),
		EnvelopeFrom: mail.MustParseAddress(from),
		Rcpt:         mail.MustParseAddress(to),
		Subject:      "subject",
		Size:         3000,
		ClientIP:     ip,
		Received:     e.clk.Now(),
	})
}

// solveOutstanding answers every not-yet-solved challenge in e.sent.
func (e *repEnv) solveOutstanding(t *testing.T, from int) int {
	t.Helper()
	svc := e.eng.Captcha()
	for _, ch := range e.sent[from:] {
		ans, err := svc.Answer(ch.Token)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Solve(ch.Token, ans); err != nil {
			t.Fatal(err)
		}
	}
	return len(e.sent)
}

// TestReputationEndToEnd is the acceptance scenario: ≥1k messages from
// a churning botnet campaign plus a stable newsletter sender. The
// newsletter sender must reach the trusted band and have its later
// messages skip the probe filters; the botnet senders must never reach
// trusted; and the engine's fast-path counter must equal the number of
// fast-path events in the decision log.
func TestReputationEndToEnd(t *testing.T) {
	const nUsers = 40
	e := newRepEnv(t, nUsers)
	e.dns.RegisterMailDomain("victims.example", "203.0.113.9") // spoofed domain resolves
	e.dns.RegisterMailDomain("letters.example", "198.51.100.5")

	total := 0
	user := func(i int) string { return fmt.Sprintf("u%02d@corp.example", i%nUsers) }

	// Botnet campaign: 200 spoofed senders, 3 messages each, every
	// message from a fresh residential IP with no PTR record.
	const nBots, perBot = 200, 3
	for i := 0; i < nBots; i++ {
		for j := 0; j < perBot; j++ {
			from := fmt.Sprintf("spoof%03d@victims.example", i)
			ip := fmt.Sprintf("100.66.%d.%d", (i*perBot+j)/250, (i*perBot+j)%250+1)
			if r := e.receive(from, user(i+j), ip); r != Accepted {
				t.Fatalf("bot message %d/%d: MTA verdict %v", i, j, r)
			}
			total++
			e.clk.Advance(30 * time.Second)
		}
	}

	// Newsletter sender: establish history by solving its challenges.
	const news, newsIP = "news@letters.example", "198.51.100.5"
	solved := 0
	for i := 0; i < 2; i++ {
		if r := e.receive(news, user(i), newsIP); r != Accepted {
			t.Fatalf("newsletter establish %d: MTA verdict %v", i, r)
		}
		total++
		e.clk.Advance(10 * time.Minute)
		solved = e.solveOutstanding(t, solved)
	}
	if v := e.rep.Score(mail.MustParseAddress(news), newsIP); v.Band != reputation.Trusted {
		t.Fatalf("newsletter sender after solves: %+v, want trusted", v)
	}

	// Steady-state newsletter traffic to fresh recipients: every message
	// is gray (no per-recipient whitelist entry yet) and must take the
	// reputation fast path — zero additional probe-filter invocations.
	const bulk = 450
	m0 := e.eng.Metrics()
	probesBefore := atomic.LoadInt64(&e.probes)
	for i := 0; i < bulk; i++ {
		// Rotate over the recipients the sender is NOT whitelisted for
		// (u00/u01 authorized it by solving), so every message is gray.
		if r := e.receive(news, user(2+i%(nUsers-2)), newsIP); r != Accepted {
			t.Fatalf("newsletter bulk %d: MTA verdict %v", i, r)
		}
		total++
		e.clk.Advance(time.Minute)
	}
	m1 := e.eng.Metrics()

	if total < 1000 {
		t.Fatalf("scenario drove only %d messages, want ≥1000", total)
	}
	if got := m1.ReputationFastPath - m0.ReputationFastPath; got != bulk {
		t.Fatalf("fast-path hits during bulk = %d, want %d", got, bulk)
	}
	if got := atomic.LoadInt64(&e.probes); got != probesBefore {
		t.Fatalf("probe filter ran %d more times during bulk; fast path did not skip it",
			got-probesBefore)
	}

	// (b) Churning botnet senders never reach the trusted band, and the
	// suspect tightening actually dropped messages.
	for i := 0; i < nBots; i++ {
		from := mail.MustParseAddress(fmt.Sprintf("spoof%03d@victims.example", i))
		if v := e.rep.Score(from, ""); v.Band == reputation.Trusted {
			t.Fatalf("botnet sender %s reached trusted: %+v", from, v)
		}
	}
	if m1.ReputationSuspect == 0 {
		t.Fatal("no suspect-band drops recorded for the botnet campaign")
	}
	if m1.ReputationSuspect != m1.FilterDropped["reputation"] {
		t.Fatalf("ReputationSuspect %d != FilterDropped[reputation] %d",
			m1.ReputationSuspect, m1.FilterDropped["reputation"])
	}

	// (c) The fast-path metric equals the skip events in the decision
	// log — no silent bypasses — both counted raw and via the aggregate
	// the measurement pipeline computes.
	agg := maillog.NewAggregate()
	var fastPathEvents int64
	for _, ev := range e.events {
		agg.Add(ev)
		if ev.Kind == maillog.KindReputation && ev.Field("action") == "fast-path" {
			fastPathEvents++
			if ev.Field("band") != "trusted" || ev.Field("keys") == "" {
				t.Fatalf("fast-path event missing evidence fields: %v", ev.FieldMap())
			}
		}
	}
	if m1.ReputationFastPath == 0 || fastPathEvents != m1.ReputationFastPath {
		t.Fatalf("fast-path metric %d != %d logged skip events",
			m1.ReputationFastPath, fastPathEvents)
	}
	if got := agg.Total().Reputation["fast-path"]; got != m1.ReputationFastPath {
		t.Fatalf("aggregate fast-path %d != metric %d", got, m1.ReputationFastPath)
	}
	if agg.Total().Reputation["suspect"] != m1.ReputationSuspect {
		t.Fatalf("aggregate suspect %d != metric %d",
			agg.Total().Reputation["suspect"], m1.ReputationSuspect)
	}
}

// TestReputationStoreOutageFailsOpen: with the store erroring, gray
// messages still traverse the full chain and are challenged — the
// reputation layer is advisory and must never block mail.
func TestReputationStoreOutageFailsOpen(t *testing.T) {
	e := newRepEnv(t, 4)
	e.dns.RegisterMailDomain("letters.example", "198.51.100.5")

	// Build trust first, then break the store.
	const news, newsIP = "news@letters.example", "198.51.100.5"
	solved := 0
	for i := 0; i < 2; i++ {
		e.receive(news, fmt.Sprintf("u%02d@corp.example", i), newsIP)
		e.clk.Advance(time.Minute)
		solved = e.solveOutstanding(t, solved)
	}
	e.inj.on.Store(true)

	probesBefore := atomic.LoadInt64(&e.probes)
	if r := e.receive(news, "u02@corp.example", newsIP); r != Accepted {
		t.Fatalf("MTA verdict %v under store outage", r)
	}
	m := e.eng.Metrics()
	if atomic.LoadInt64(&e.probes) != probesBefore+1 {
		t.Fatal("store outage should fall back to the full probe chain")
	}
	if m.FilterDegraded["reputation"] == 0 {
		t.Fatal("store outage not counted as a degraded reputation decision")
	}
	if len(e.sent) != solved+1 {
		t.Fatalf("message under store outage was not challenged: %d challenges", len(e.sent))
	}
}
