// Package digest builds the daily quarantine summaries the CR product
// mails to each protected user.
//
// The digest is the manual escape hatch of a challenge-response system:
// when a legitimate sender cannot or will not solve the challenge (most
// automatically generated mail — newsletters, receipts, notifications),
// the user can still rescue the message by authorizing it from the daily
// digest. The paper measures that ~2% of gray-spool senders were
// whitelisted this way (55,850 messages), with a delivery delay of 4 hours
// to 3 days, and studies per-user daily digest sizes (Figure 10).
package digest

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/mail"
)

// Item is one quarantined message line in a digest.
type Item struct {
	MsgID   string
	Sender  mail.Address
	Subject string
	Queued  time.Time
}

// Digest is the daily summary for one user.
type Digest struct {
	User  mail.Address
	Date  time.Time // midnight of the digest day
	Items []Item
}

// Render formats the digest as the plain-text email body the product
// sends, one line per quarantined message.
func (d *Digest) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Daily quarantine digest for %s — %s\r\n", d.User, d.Date.Format("2006-01-02"))
	fmt.Fprintf(&b, "%d message(s) awaiting your decision:\r\n\r\n", len(d.Items))
	for i, it := range d.Items {
		fmt.Fprintf(&b, "%3d. [%s] %q from %s (queued %s)\r\n",
			i+1, it.MsgID, it.Subject, it.Sender, it.Queued.Format("Jan 02 15:04"))
	}
	b.WriteString("\r\nReply with AUTHORIZE <n> or DELETE <n>.\r\n")
	return b.String()
}

// Book records every digest generated, indexed by user and day, so the
// Figure 10 analysis (daily pending-message counts per user) reads
// directly from it. Safe for concurrent use; the history is lock-striped
// by user key so every company lane recording its end-of-day digests in
// the same epoch lands on a different stripe instead of one mutex.
type Book struct {
	stripes [bookStripes]bookStripe
}

const bookStripes = 16

type bookStripe struct {
	mu      sync.Mutex
	history map[string][]*Digest // by user key, in generation order
}

// NewBook returns an empty digest book.
func NewBook() *Book {
	b := &Book{}
	for i := range b.stripes {
		b.stripes[i].history = make(map[string][]*Digest)
	}
	return b
}

// stripeFor maps a user key to its stripe (FNV-1a).
func (b *Book) stripeFor(key string) *bookStripe {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &b.stripes[h%bookStripes]
}

// Record builds the digest for user on day from the given pending items
// and stores it. Items are sorted by queue time (oldest first) to match
// the product's presentation. Empty digests are recorded too: a zero on
// the Figure 10 time series is data, not absence of data.
func (b *Book) Record(user mail.Address, day time.Time, items []Item) *Digest {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Queued.Equal(sorted[j].Queued) {
			return sorted[i].Queued.Before(sorted[j].Queued)
		}
		return sorted[i].MsgID < sorted[j].MsgID
	})
	d := &Digest{User: user, Date: day.Truncate(24 * time.Hour), Items: sorted}
	key := user.Key()
	st := b.stripeFor(key)
	st.mu.Lock()
	st.history[key] = append(st.history[key], d)
	st.mu.Unlock()
	return d
}

// Series returns the daily pending counts for user, in order.
func (b *Book) Series(user mail.Address) []int {
	st := b.stripeFor(user.Key())
	st.mu.Lock()
	defer st.mu.Unlock()
	hs := st.history[user.Key()]
	out := make([]int, len(hs))
	for i, d := range hs {
		out[i] = len(d.Items)
	}
	return out
}

// Latest returns the most recent digest for user, or nil.
func (b *Book) Latest(user mail.Address) *Digest {
	st := b.stripeFor(user.Key())
	st.mu.Lock()
	defer st.mu.Unlock()
	hs := st.history[user.Key()]
	if len(hs) == 0 {
		return nil
	}
	return hs[len(hs)-1]
}

// Users returns the user keys with at least one digest, sorted.
func (b *Book) Users() []string {
	var out []string
	for i := range b.stripes {
		st := &b.stripes[i]
		st.mu.Lock()
		for k := range st.history {
			out = append(out, k)
		}
		st.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// MeanSize returns the mean number of items across all digests of user,
// or 0 if none.
func (b *Book) MeanSize(user mail.Address) float64 {
	s := b.Series(user)
	if len(s) == 0 {
		return 0
	}
	total := 0
	for _, n := range s {
		total += n
	}
	return float64(total) / float64(len(s))
}
