package digest

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mail"
)

var (
	t0  = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	bob = mail.MustParseAddress("bob@corp.example")
)

func items(n int, base time.Time) []Item {
	out := make([]Item, n)
	for i := range out {
		out[i] = Item{
			MsgID:   mail.NewID("d"),
			Sender:  mail.MustParseAddress("s@x.example"),
			Subject: "pending message",
			Queued:  base.Add(time.Duration(n-i) * time.Minute), // reverse order on purpose
		}
	}
	return out
}

func TestRecordSortsByQueueTime(t *testing.T) {
	b := NewBook()
	d := b.Record(bob, t0, items(3, t0))
	for i := 1; i < len(d.Items); i++ {
		if d.Items[i].Queued.Before(d.Items[i-1].Queued) {
			t.Fatal("digest items not sorted oldest-first")
		}
	}
}

func TestRecordDoesNotMutateInput(t *testing.T) {
	b := NewBook()
	in := items(3, t0)
	first := in[0].MsgID
	b.Record(bob, t0, in)
	if in[0].MsgID != first {
		t.Fatal("Record mutated caller's slice")
	}
}

func TestSeries(t *testing.T) {
	b := NewBook()
	b.Record(bob, t0, items(2, t0))
	b.Record(bob, t0.Add(24*time.Hour), nil) // empty day recorded as 0
	b.Record(bob, t0.Add(48*time.Hour), items(5, t0))
	got := b.Series(bob)
	want := []int{2, 0, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Series = %v, want %v", got, want)
	}
}

func TestLatest(t *testing.T) {
	b := NewBook()
	if b.Latest(bob) != nil {
		t.Fatal("Latest on empty book != nil")
	}
	b.Record(bob, t0, items(1, t0))
	b.Record(bob, t0.Add(24*time.Hour), items(4, t0))
	if got := b.Latest(bob); len(got.Items) != 4 {
		t.Fatalf("Latest items = %d, want 4", len(got.Items))
	}
}

func TestMeanSize(t *testing.T) {
	b := NewBook()
	if b.MeanSize(bob) != 0 {
		t.Fatal("MeanSize on empty book != 0")
	}
	b.Record(bob, t0, items(2, t0))
	b.Record(bob, t0.Add(24*time.Hour), items(4, t0))
	if got := b.MeanSize(bob); got != 3 {
		t.Fatalf("MeanSize = %v, want 3", got)
	}
}

func TestUsers(t *testing.T) {
	b := NewBook()
	b.Record(mail.MustParseAddress("zoe@corp.example"), t0, nil)
	b.Record(mail.MustParseAddress("amy@corp.example"), t0, nil)
	u := b.Users()
	if len(u) != 2 || u[0] != "amy@corp.example" {
		t.Fatalf("Users = %v", u)
	}
}

func TestRenderContainsItemsAndInstructions(t *testing.T) {
	b := NewBook()
	d := b.Record(bob, t0, []Item{{
		MsgID:   "m-77",
		Sender:  mail.MustParseAddress("news@letters.example"),
		Subject: "weekly update",
		Queued:  t0,
	}})
	out := d.Render()
	for _, want := range []string{"bob@corp.example", "m-77", "weekly update", "news@letters.example", "AUTHORIZE", "1 message(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	b := NewBook()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Record(bob, t0.Add(time.Duration(i)*24*time.Hour), items(i%4, t0))
		}(i)
	}
	wg.Wait()
	if got := len(b.Series(bob)); got != 30 {
		t.Fatalf("Series length = %d, want 30", got)
	}
}
