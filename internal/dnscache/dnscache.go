// Package dnscache puts a TTL cache with negative caching and
// single-flight collapse in front of the simulated resolver, and an
// equivalent memoized lookup in front of an RBL provider.
//
// Real MTAs lean on resolver caches: sender-infrastructure lookups are
// dominated by repeated queries for the same handful of domains and IPs
// (the same observation drives the aggregated-history spam detectors in
// the literature). The fleet driver exhibits exactly that skew — every
// message from a legitimate domain re-resolves "mail.<domain>", every
// probe chain re-queries the same blocklist for the same botnet IPs —
// so a small cache removes most simulated-resolver traffic from the
// per-message hot path.
//
// Coherence rules (see DESIGN.md §8):
//
//   - Entries expire on the *virtual* clock, never the wall clock.
//   - Both backends expose a generation counter that increments on every
//     mutation (dnssim.Server.Gen: record changes, RemoveDomain,
//     FailDomain, injector swaps; rbl.Provider.Gen: listing/delisting
//     events). Each lookup compares generations and flushes the whole
//     cache on change, so a cached answer can never mask a mutation.
//   - Temporary failures (timeouts, injected outages) are never cached:
//     the caller must see every one, or fault injection would be
//     silently absorbed. Authoritative negatives (NXDOMAIN / no such
//     record) are cached with a shorter TTL, as real resolvers do
//     (RFC 2308).
package dnscache

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/rbl"
)

// Default lifetimes. Both are shorter than the fleet's one-hour epoch,
// so every entry naturally expires across an epoch barrier and cached
// state never leaks ordering effects between epochs.
const (
	DefaultTTL    = 30 * time.Minute
	DefaultNegTTL = 10 * time.Minute
)

// Stats counts cache outcomes. All counters are totals since creation.
type Stats struct {
	Hits      int64 // served from a live entry without touching the backend
	NegHits   int64 // subset of Hits answered from a cached negative
	Misses    int64 // went to the backend
	Coalesced int64 // waited on another goroutine's in-flight fetch
}

// Lookups returns the total number of cache consultations.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses + s.Coalesced }

// HitRate returns the fraction of lookups that avoided a backend query
// (plain hits plus coalesced waiters). Zero when nothing was looked up.
func (s Stats) HitRate() float64 {
	t := s.Lookups()
	if t == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(t)
}

// Options configures a Cache.
type Options struct {
	// Clock supplies the (virtual) time entries age against. Required.
	Clock clock.Clock
	// TTL is the positive-answer lifetime; DefaultTTL if zero.
	TTL time.Duration
	// NegTTL is the authoritative-negative lifetime; DefaultNegTTL if zero.
	NegTTL time.Duration
	// Gen, when non-nil, is polled on every lookup; a change flushes the
	// entire cache. Wire it to dnssim.Server.Gen so RemoveDomain,
	// FailDomain and fault-plan transitions invalidate immediately.
	Gen func() uint64
}

// entry holds one cached answer. Fields are written only by the fetching
// goroutine while it holds mu, and are immutable once the atomic ready
// flag is set (the store publishes them); expiry replaces the entry
// rather than mutating it, so a reader that observes ready may read
// every field without holding any lock (but must not mutate the answer
// slices).
type entry struct {
	mu    sync.Mutex
	ready atomic.Bool
	neg   bool      // cached negative (uses NegTTL)
	exp   time.Time // expiry on the virtual clock
	err   error     // cached authoritative error (NXDOMAIN / no record)

	list []string // A / TXT answers
	mxs  []dnssim.MX
	host string // PTR answer
	ok   bool   // Resolvable answer
}

// ckey identifies one cached question: a record kind plus the queried
// name. A comparable struct key avoids the "a:"+host style concatenation
// the old flat map needed on every lookup.
type ckey struct {
	kind uint8 // one of the q* constants
	name string
}

// Query kinds.
const (
	qA uint8 = iota
	qMX
	qPTR
	qTXT
	qResolvable
)

// cacheStripes is the lock-stripe count. Lookups hash the key to a
// stripe, so concurrent lanes resolving different names proceed without
// contending on one cache-wide mutex.
const cacheStripes = 8

// cacheShard is one lock stripe with its own generation word: stripes
// notice a backend mutation independently, each flushing its own map on
// first touch after the change. The map is read under mu.RLock on the
// hit fast path and written under mu.Lock; gen is atomic so the fast
// path can compare it without any lock.
type cacheShard struct {
	mu      sync.RWMutex
	gen     atomic.Uint64
	entries map[ckey]*entry
}

// Cache is a read-through TTL cache over a dnssim.Resolver. It
// implements dnssim.Resolver itself (plus ResolvableErr), so it can be
// dropped in anywhere a resolver is accepted — core.Engine, the
// reverse-DNS filter, spf.Checker, the workload generator.
type Cache struct {
	backend dnssim.Resolver
	opts    Options

	shards [cacheStripes]cacheShard

	hits      atomic.Int64
	negHits   atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
}

// New returns a cache over backend. Options.Clock is required.
func New(backend dnssim.Resolver, opts Options) *Cache {
	if opts.Clock == nil {
		panic("dnscache: Options.Clock is required")
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	if opts.NegTTL <= 0 {
		opts.NegTTL = DefaultNegTTL
	}
	c := &Cache{backend: backend, opts: opts}
	var gen uint64
	if opts.Gen != nil {
		gen = opts.Gen()
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[ckey]*entry)
		c.shards[i].gen.Store(gen)
	}
	return c
}

// shardFor maps a key to its stripe (FNV-1a over kind + name).
func (c *Cache) shardFor(key ckey) *cacheShard {
	h := uint32(2166136261)
	h = (h ^ uint32(key.kind)) * 16777619
	for i := 0; i < len(key.name); i++ {
		h = (h ^ uint32(key.name[i])) * 16777619
	}
	return &c.shards[h%cacheStripes]
}

// checkGenLocked flushes the shard if the backend generation moved.
// Caller holds sh.mu.
func (c *Cache) checkGenLocked(sh *cacheShard) {
	if c.opts.Gen == nil {
		return
	}
	if g := c.opts.Gen(); g != sh.gen.Load() {
		sh.gen.Store(g)
		clear(sh.entries)
	}
}

// do returns the live entry for key, fetching it at most once per
// expiry/flush regardless of how many goroutines ask concurrently
// (per-entry-mutex single-flight: the fetcher publishes the entry with
// its lock held, so same-key lookups queue behind the one backend call).
func (c *Cache) do(key ckey, fetch func(*entry) error) (*entry, error) {
	sh := c.shardFor(key)
	// Hit fast path: a ready, unexpired entry in a generation-current
	// shard — the overwhelmingly common case — is served under the read
	// lock alone, so concurrent lanes resolving the same hot names never
	// serialize. The second Gen read after the map lookup closes the
	// race with a concurrent mutation: if the generation is still
	// unchanged, the entry provably predates no mutation.
	if c.opts.Gen == nil || c.opts.Gen() == sh.gen.Load() {
		sh.mu.RLock()
		e := sh.entries[key]
		sh.mu.RUnlock()
		if e != nil && e.ready.Load() &&
			c.opts.Clock.Now().Before(e.exp) &&
			(c.opts.Gen == nil || c.opts.Gen() == sh.gen.Load()) {
			c.hits.Add(1)
			if e.neg {
				c.negHits.Add(1)
			}
			return e, e.err
		}
	}
	for {
		sh.mu.Lock()
		c.checkGenLocked(sh)
		e := sh.entries[key]
		if e == nil {
			e = &entry{}
			e.mu.Lock() // we are the fetcher; publish locked
			sh.entries[key] = e
			c.misses.Add(1)
			sh.mu.Unlock()

			err := fetch(e)
			if err != nil && dnssim.IsTemporary(err) {
				// Never cache a transient failure: unpublish so the
				// next lookup retries the backend, and surface it.
				e.mu.Unlock()
				sh.mu.Lock()
				if sh.entries[key] == e {
					delete(sh.entries, key)
				}
				sh.mu.Unlock()
				return nil, err
			}
			e.err = err
			e.neg = e.neg || err != nil
			ttl := c.opts.TTL
			if e.neg {
				ttl = c.opts.NegTTL
			}
			e.exp = c.opts.Clock.Now().Add(ttl)
			e.ready.Store(true)
			e.mu.Unlock()
			return e, err
		}
		coalesced := !e.readyNow()
		if coalesced {
			c.coalesced.Add(1)
		}
		sh.mu.Unlock()

		e.mu.Lock() // blocks while a fetch for this key is in flight
		if !e.ready.Load() {
			// The fetcher hit a temporary error and unpublished the
			// entry while we waited; retry from the top.
			e.mu.Unlock()
			continue
		}
		expired := !c.opts.Clock.Now().Before(e.exp)
		neg, err := e.neg, e.err
		e.mu.Unlock()

		if expired {
			sh.mu.Lock()
			if sh.entries[key] == e {
				delete(sh.entries, key)
			}
			// Undo the optimistic hit/coalesced accounting? We counted
			// nothing yet for the non-coalesced path, and a coalesced
			// wait that lands on an expired entry still collapsed into
			// the earlier fetch, so the counter stands.
			sh.mu.Unlock()
			continue
		}
		if !coalesced {
			c.hits.Add(1)
			if neg {
				c.negHits.Add(1)
			}
		}
		return e, err
	}
}

// readyNow reports whether the entry's fetch has completed, without
// blocking on an in-flight fetch.
func (e *entry) readyNow() bool {
	if !e.mu.TryLock() {
		return false
	}
	r := e.ready.Load()
	e.mu.Unlock()
	return r
}

// LookupA implements dnssim.Resolver. Callers must not mutate the
// returned slice.
func (c *Cache) LookupA(host string) ([]string, error) {
	e, err := c.do(ckey{qA, host}, func(e *entry) error {
		v, err := c.backend.LookupA(host)
		e.list = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return e.list, nil
}

// LookupMX implements dnssim.Resolver. Callers must not mutate the
// returned slice.
func (c *Cache) LookupMX(domain string) ([]dnssim.MX, error) {
	e, err := c.do(ckey{qMX, domain}, func(e *entry) error {
		v, err := c.backend.LookupMX(domain)
		e.mxs = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return e.mxs, nil
}

// LookupPTR implements dnssim.Resolver.
func (c *Cache) LookupPTR(ip string) (string, error) {
	e, err := c.do(ckey{qPTR, ip}, func(e *entry) error {
		v, err := c.backend.LookupPTR(ip)
		e.host = v
		return err
	})
	if err != nil {
		return "", err
	}
	return e.host, nil
}

// LookupTXT implements dnssim.Resolver. Callers must not mutate the
// returned slice.
func (c *Cache) LookupTXT(domain string) ([]string, error) {
	e, err := c.do(ckey{qTXT, domain}, func(e *entry) error {
		v, err := c.backend.LookupTXT(domain)
		e.list = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return e.list, nil
}

// resolvableProber matches dnssim.Server's combined "any record at all"
// probe with its temporary-failure channel.
type resolvableProber interface {
	ResolvableErr(domain string) (bool, error)
}

// ResolvableErr caches the MTA-IN sender-domain probe. An unresolvable
// domain is the NXDOMAIN case and is cached with the negative TTL;
// temporary resolver failures pass through uncached.
func (c *Cache) ResolvableErr(domain string) (bool, error) {
	e, err := c.do(ckey{qResolvable, domain}, func(e *entry) error {
		ok, err := c.probeResolvable(domain)
		e.ok = ok
		e.neg = err == nil && !ok
		return err
	})
	if err != nil {
		return false, err
	}
	return e.ok, nil
}

// Resolvable is ResolvableErr with the error folded into "no".
func (c *Cache) Resolvable(domain string) bool {
	ok, _ := c.ResolvableErr(domain)
	return ok
}

func (c *Cache) probeResolvable(domain string) (bool, error) {
	if p, ok := c.backend.(resolvableProber); ok {
		return p.ResolvableErr(domain)
	}
	// Generic fallback: any MX or A record makes the domain resolvable;
	// a temporary failure on either probe is surfaced, not cached.
	if _, err := c.backend.LookupMX(domain); err == nil {
		return true, nil
	} else if dnssim.IsTemporary(err) {
		return false, err
	}
	if _, err := c.backend.LookupA(domain); err == nil {
		return true, nil
	} else if dnssim.IsTemporary(err) {
		return false, err
	}
	return false, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		NegHits:   c.negHits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
	}
}

// Len returns the number of live entries (expired ones included until
// their next touch).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Flush drops every entry. Counters are preserved.
func (c *Cache) Flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		clear(sh.entries)
		sh.mu.Unlock()
	}
}

// rblStripes is the RBL memo's lock-stripe count: concurrent lanes
// querying different botnet IPs proceed without a cache-wide mutex.
const rblStripes = 8

// rblShard is one lock stripe of the RBL memo with its own generation
// word (legacy mode flushes per stripe on first touch after a provider
// mutation, exactly like the DNS cache's shards).
// rblShard is one lock stripe of the RBL memo. The map is read under
// mu.RLock on the hit fast path and written under mu.Lock; gen is
// atomic so the legacy-mode fast path can compare it without any lock.
type rblShard struct {
	mu      sync.RWMutex
	gen     atomic.Uint64
	entries map[string]rblEntry
}

// RBLCache memoizes rbl.Provider.Query answers. It satisfies the
// filters.RBLBackend surface, so filters.NewRBL accepts it in place of
// the raw provider.
//
// Two coherence modes:
//
//   - Legacy (NewRBL): entries carry a TTL on the virtual clock and every
//     lookup compares the provider's generation counter, flushing the
//     touched stripe on change. Right for standalone deployments
//     (cmd/crserver) where listing mutations arrive at arbitrary times.
//
//   - Explicit (NewRBLExplicit): entries never expire and generation
//     changes do not flush. The owner calls Invalidate with exactly the
//     IPs whose answers may have changed — the fleet does this at fired
//     epoch barriers with the sweep's delisted IPs plus the flushed trap
//     hits. Negative entries (the ~95% of queries for never-listed IPs)
//     therefore survive indefinitely, which is what lifts the hit rate
//     from ~5% (generation flush + sub-epoch TTL killed every entry) to
//     >0.9. The store-after-miss generation guard is kept as a
//     belt-and-braces check against concurrent mutation.
type RBLCache struct {
	p        *rbl.Provider
	clk      clock.Clock
	ttl      time.Duration
	explicit bool

	shards [rblStripes]rblShard

	hits    atomic.Int64
	negHits atomic.Int64
	misses  atomic.Int64
}

type rblEntry struct {
	listed bool
	exp    time.Time // zero in explicit mode: valid until Invalidate
}

// NewRBL returns a legacy-mode memoizing cache over p (TTL + generation
// flush). ttl <= 0 selects DefaultTTL.
func NewRBL(p *rbl.Provider, clk clock.Clock, ttl time.Duration) *RBLCache {
	if clk == nil {
		panic("dnscache: NewRBL requires a clock")
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	c := &RBLCache{p: p, clk: clk, ttl: ttl}
	gen := p.Gen()
	for i := range c.shards {
		c.shards[i].entries = make(map[string]rblEntry)
		c.shards[i].gen.Store(gen)
	}
	return c
}

// NewRBLExplicit returns an explicit-invalidation cache over p: entries
// live until the owner calls Invalidate (or Flush). The owner must
// invalidate every IP whose listing state may have changed — in the
// fleet, at every fired epoch barrier.
func NewRBLExplicit(p *rbl.Provider, clk clock.Clock) *RBLCache {
	c := NewRBL(p, clk, 0)
	c.explicit = true
	return c
}

// Name returns the underlying provider's name.
func (c *RBLCache) Name() string { return c.p.Name() }

// shardFor maps an IP to its stripe (FNV-1a).
func (c *RBLCache) shardFor(ip string) *rblShard {
	h := uint32(2166136261)
	for i := 0; i < len(ip); i++ {
		h = (h ^ uint32(ip[i])) * 16777619
	}
	return &c.shards[h%rblStripes]
}

// Query returns the memoized listing state for ip. Errors (injected
// outages/timeouts) are never cached.
func (c *RBLCache) Query(ip string) (bool, error) {
	sh := c.shardFor(ip)
	// Hit fast path: entries are immutable values replaced wholesale by
	// Invalidate/flush, so a generation-current hit needs only the read
	// lock and concurrent lanes querying the memo never serialize.
	if c.explicit || c.p.Gen() == sh.gen.Load() {
		sh.mu.RLock()
		e, ok := sh.entries[ip]
		sh.mu.RUnlock()
		if ok && (c.explicit || (c.clk.Now().Before(e.exp) && c.p.Gen() == sh.gen.Load())) {
			c.hits.Add(1)
			if !e.listed {
				c.negHits.Add(1)
			}
			return e.listed, nil
		}
	}
	if !c.explicit {
		sh.mu.Lock()
		if g := c.p.Gen(); g != sh.gen.Load() {
			sh.gen.Store(g)
			clear(sh.entries)
		}
		sh.mu.Unlock()
	}
	c.misses.Add(1)
	gen := c.p.Gen()

	listed, err := c.p.Query(ip)
	if err != nil {
		return false, err
	}

	// Store only if the provider did not mutate while we queried;
	// otherwise our answer may already be stale.
	if c.p.Gen() == gen {
		e := rblEntry{listed: listed}
		if !c.explicit {
			e.exp = c.clk.Now().Add(c.ttl)
		}
		sh.mu.Lock()
		sh.entries[ip] = e
		sh.mu.Unlock()
	}
	return listed, nil
}

// Invalidate drops the memo entries for the given IPs. Explicit-mode
// owners call it with every IP whose listing state may have changed
// since the last call; unknown IPs are no-ops, duplicates are fine.
func (c *RBLCache) Invalidate(ips ...string) {
	for _, ip := range ips {
		sh := c.shardFor(ip)
		sh.mu.Lock()
		delete(sh.entries, ip)
		sh.mu.Unlock()
	}
}

// Flush drops every memo entry. Counters are preserved.
func (c *RBLCache) Flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		clear(sh.entries)
		sh.mu.Unlock()
	}
}

// Len returns the number of live memo entries.
func (c *RBLCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the memo counters.
func (c *RBLCache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		NegHits: c.negHits.Load(),
		Misses:  c.misses.Load(),
	}
}
