package dnscache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/rbl"
)

var t0 = time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)

// countingResolver wraps a Server and counts backend calls per method so
// tests can assert exactly how many lookups reached the backend.
type countingResolver struct {
	*dnssim.Server
	a, mx, ptr, txt, res atomic.Int64
}

func (c *countingResolver) LookupA(h string) ([]string, error) {
	c.a.Add(1)
	return c.Server.LookupA(h)
}
func (c *countingResolver) LookupMX(d string) ([]dnssim.MX, error) {
	c.mx.Add(1)
	return c.Server.LookupMX(d)
}
func (c *countingResolver) LookupPTR(ip string) (string, error) {
	c.ptr.Add(1)
	return c.Server.LookupPTR(ip)
}
func (c *countingResolver) LookupTXT(d string) ([]string, error) {
	c.txt.Add(1)
	return c.Server.LookupTXT(d)
}
func (c *countingResolver) ResolvableErr(d string) (bool, error) {
	c.res.Add(1)
	return c.Server.ResolvableErr(d)
}

func newFixture() (*countingResolver, *clock.Sim, *Cache) {
	srv := dnssim.NewServer()
	srv.AddA("mail.example.com", "10.0.0.1")
	back := &countingResolver{Server: srv}
	clk := clock.NewSim(t0)
	// Gen reads through to the wrapped server so mutations invalidate.
	c := New(back, Options{Clock: clk, TTL: 30 * time.Minute, NegTTL: 10 * time.Minute, Gen: srv.Gen})
	return back, clk, c
}

func TestTTLExpiry(t *testing.T) {
	back, clk, c := newFixture()

	for i := 0; i < 5; i++ {
		ips, err := c.LookupA("mail.example.com")
		if err != nil || len(ips) != 1 || ips[0] != "10.0.0.1" {
			t.Fatalf("lookup %d: got %v, %v", i, ips, err)
		}
	}
	if got := back.a.Load(); got != 1 {
		t.Fatalf("backend A queries before expiry = %d, want 1", got)
	}

	clk.Advance(29 * time.Minute)
	if _, err := c.LookupA("mail.example.com"); err != nil {
		t.Fatal(err)
	}
	if got := back.a.Load(); got != 1 {
		t.Fatalf("entry expired early: %d backend queries", got)
	}

	clk.Advance(time.Minute) // exactly at TTL: entry is dead
	if _, err := c.LookupA("mail.example.com"); err != nil {
		t.Fatal(err)
	}
	if got := back.a.Load(); got != 2 {
		t.Fatalf("backend A queries after expiry = %d, want 2", got)
	}

	st := c.Stats()
	if st.Misses != 2 || st.Hits != 5 {
		t.Fatalf("stats = %+v, want 2 misses / 5 hits", st)
	}
	if hr := st.HitRate(); hr < 0.7 || hr > 0.72 {
		t.Fatalf("hit rate = %v, want 5/7", hr)
	}
}

func TestNegativeCacheHits(t *testing.T) {
	back, clk, c := newFixture()

	_, err1 := c.LookupA("nosuch.example.net")
	if !errors.Is(err1, dnssim.ErrNXDomain) {
		t.Fatalf("first lookup error = %v, want NXDOMAIN", err1)
	}
	_, err2 := c.LookupA("nosuch.example.net")
	if !errors.Is(err2, dnssim.ErrNXDomain) {
		t.Fatalf("second lookup error = %v, want NXDOMAIN", err2)
	}
	if got := back.a.Load(); got != 1 {
		t.Fatalf("NXDOMAIN not negative-cached: %d backend queries", got)
	}
	if st := c.Stats(); st.NegHits != 1 {
		t.Fatalf("NegHits = %d, want 1", st.NegHits)
	}

	// Unresolvable-domain probes are negatives too, with the shorter TTL.
	if ok, err := c.ResolvableErr("nosuch.example.net"); ok || err != nil {
		t.Fatalf("ResolvableErr = %v, %v", ok, err)
	}
	if ok, _ := c.ResolvableErr("nosuch.example.net"); ok {
		t.Fatal("cached resolvable answer changed")
	}
	if got := back.res.Load(); got != 1 {
		t.Fatalf("resolvable probes = %d, want 1", got)
	}

	// Negative entries use NegTTL, not the (longer) positive TTL.
	clk.Advance(10 * time.Minute)
	if _, err := c.LookupA("nosuch.example.net"); !errors.Is(err, dnssim.ErrNXDomain) {
		t.Fatalf("post-expiry error = %v", err)
	}
	if got := back.a.Load(); got != 2 {
		t.Fatalf("negative entry outlived NegTTL: %d backend queries", got)
	}
}

// blockingResolver parks every LookupA until release is closed, so a
// test can pile goroutines onto one in-flight fetch.
type blockingResolver struct {
	release chan struct{}
	started chan struct{} // receives one token per backend call
	calls   atomic.Int64
}

func (b *blockingResolver) LookupA(string) ([]string, error) {
	b.calls.Add(1)
	b.started <- struct{}{}
	<-b.release
	return []string{"10.9.9.9"}, nil
}
func (b *blockingResolver) LookupMX(string) ([]dnssim.MX, error) { return nil, dnssim.ErrNoRecord }
func (b *blockingResolver) LookupPTR(string) (string, error)     { return "", dnssim.ErrNXDomain }
func (b *blockingResolver) LookupTXT(string) ([]string, error)   { return nil, dnssim.ErrNoRecord }

func TestSingleflightCollapse(t *testing.T) {
	back := &blockingResolver{release: make(chan struct{}), started: make(chan struct{}, 16)}
	c := New(back, Options{Clock: clock.NewSim(t0)})

	const n = 8
	var wg sync.WaitGroup
	results := make([][]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ips, err := c.LookupA("hot.example.com")
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = ips
		}(i)
	}

	<-back.started // one fetch reached the backend
	close(back.release)
	wg.Wait()

	if got := back.calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1 (stampede not collapsed)", got)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != "10.9.9.9" {
			t.Fatalf("goroutine %d got %v", i, r)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Lookups() != n {
		t.Fatalf("lookups = %d, want %d", st.Lookups(), n)
	}
}

func TestInvalidationOnInjectedFault(t *testing.T) {
	back, _, c := newFixture()
	srv := back.Server

	// Warm the cache with healthy answers.
	if ok, err := c.ResolvableErr("mail.example.com"); !ok || err != nil {
		t.Fatalf("warm probe = %v, %v", ok, err)
	}
	if _, err := c.LookupA("mail.example.com"); err != nil {
		t.Fatal(err)
	}

	// Inject a fault: the cache must surface it immediately, not serve
	// the stale positive.
	srv.FailDomain("mail.example.com", dnssim.ErrTimeout)
	for i := 0; i < 2; i++ {
		ok, err := c.ResolvableErr("mail.example.com")
		if ok || err == nil || !dnssim.IsTemporary(err) {
			t.Fatalf("probe %d under fault = %v, %v; want temporary error", i, ok, err)
		}
	}
	// Both probes must have reached the backend: temporary failures are
	// never cached.
	if got := back.res.Load(); got != 3 {
		t.Fatalf("resolvable probes = %d, want 3 (1 warm + 2 faulted)", got)
	}

	// Clearing the fault (another mutation) restores service at once.
	srv.FailDomain("mail.example.com", nil)
	if ok, err := c.ResolvableErr("mail.example.com"); !ok || err != nil {
		t.Fatalf("post-clear probe = %v, %v", ok, err)
	}

	// RemoveDomain must flip a cached positive to NXDOMAIN immediately.
	srv.RemoveDomain("mail.example.com")
	if ok, _ := c.ResolvableErr("mail.example.com"); ok {
		t.Fatal("cache masked RemoveDomain")
	}
	if _, err := c.LookupA("mail.example.com"); !errors.Is(err, dnssim.ErrNXDomain) {
		t.Fatalf("LookupA after RemoveDomain = %v, want NXDOMAIN", err)
	}
}

func TestRBLCacheMemoizationAndInvalidation(t *testing.T) {
	clk := clock.NewSim(t0)
	p := rbl.NewProvider("testlist", rbl.Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 2 * time.Hour}, clk)
	c := NewRBL(p, clk, 30*time.Minute)

	for i := 0; i < 4; i++ {
		if listed, err := c.Query("10.1.1.1"); listed || err != nil {
			t.Fatalf("query %d = %v, %v", i, listed, err)
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("stats = %+v, want 1 miss / 3 hits", st)
	}

	// A new listing is a provider mutation: the memo must not mask it.
	p.ReportTrapHit("10.1.1.1")
	if listed, _ := c.Query("10.1.1.1"); !listed {
		t.Fatal("memo masked a fresh listing")
	}

	// Static adds invalidate too.
	if listed, _ := c.Query("10.2.2.2"); listed {
		t.Fatal("unexpected listing")
	}
	p.AddStatic("10.2.2.2")
	if listed, _ := c.Query("10.2.2.2"); !listed {
		t.Fatal("memo masked AddStatic")
	}

	// Listing expiry on the virtual clock surfaces through the memo: the
	// advance pushes the entry past its TTL, and the re-query sees the
	// provider's pure-read answer for the now-expired listing.
	clk.Advance(3 * time.Hour)
	if listed, _ := c.Query("10.1.1.1"); listed {
		t.Fatal("memo served an expired listing")
	}
}

// TestRBLCacheExplicitMode covers the fleet-facing cache mode: no TTL,
// no generation-based flush — the owner invalidates exactly the IPs
// whose answers may have changed (sweep delists + trap-hit sources) at
// barrier time. Negative entries for never-listed IPs persist for the
// whole run.
func TestRBLCacheExplicitMode(t *testing.T) {
	clk := clock.NewSim(t0)
	p := rbl.NewProvider("fleetlist",
		rbl.Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 2 * time.Hour}, clk)
	c := NewRBLExplicit(p, clk)

	// Negative entries never expire on their own: days of virtual time
	// and provider gen churn elsewhere leave the memo intact.
	if listed, _ := c.Query("10.9.9.9"); listed {
		t.Fatal("unexpected listing")
	}
	p.AddStatic("10.8.8.8") // gen bump for an unrelated IP
	clk.Advance(48 * time.Hour)
	for i := 0; i < 5; i++ {
		if listed, _ := c.Query("10.9.9.9"); listed {
			t.Fatal("unexpected listing")
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 5 {
		t.Fatalf("stats = %+v, want 1 miss / 5 hits", st)
	}

	// Without invalidation the memo is allowed to go stale — that is the
	// contract: the owner must call Invalidate for changed IPs.
	p.ReportTrapHit("10.9.9.9")
	if listed, _ := c.Query("10.9.9.9"); listed {
		t.Fatal("explicit-mode memo refreshed without Invalidate")
	}
	c.Invalidate("10.9.9.9")
	if listed, _ := c.Query("10.9.9.9"); !listed {
		t.Fatal("Invalidate did not surface the new listing")
	}

	// Sweep + Invalidate surfaces the delist; untouched entries survive.
	clk.Advance(3 * time.Hour)
	c.Invalidate(p.Sweep(clk.Now())...)
	if listed, _ := c.Query("10.9.9.9"); listed {
		t.Fatal("swept listing still served from memo")
	}
	if c.Len() == 0 {
		t.Fatal("unrelated entries dropped by Invalidate")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after Flush = %d", c.Len())
	}
}

// TestRBLCacheHitRateUnderTrapExtensions reproduces the fleet's real
// query mix: an already-listed botnet IP keeps hitting spamtraps (each
// hit extends its listing) while the filter chain re-queries a small set
// of IPs. An extension cannot change any answer, so it must not flush
// the memo — this is the regression test for the bug that collapsed the
// fleet's RBL hit rate to ~5%.
func TestRBLCacheHitRateUnderTrapExtensions(t *testing.T) {
	clk := clock.NewSim(t0)
	p := rbl.NewProvider("trapfed",
		rbl.Policy{HitThreshold: 1, Window: 24 * time.Hour, ListingTTL: 72 * time.Hour}, clk)
	c := NewRBL(p, clk, 30*time.Minute)

	p.ReportTrapHit("203.0.113.9") // crosses the threshold: listed (gen bump)

	ips := []string{"203.0.113.9", "198.51.100.1", "198.51.100.2", "198.51.100.3"}
	for round := 0; round < 200; round++ {
		for _, ip := range ips {
			listed, err := c.Query(ip)
			if err != nil {
				t.Fatal(err)
			}
			if want := ip == "203.0.113.9"; listed != want {
				t.Fatalf("round %d: Query(%s) = %v, want %v", round, ip, listed, want)
			}
		}
		// The listed IP hits another trap every round, extending its
		// listing each time.
		p.ReportTrapHit("203.0.113.9")
		clk.Advance(time.Minute)
	}

	st := c.Stats()
	if hr := st.HitRate(); hr < 0.9 {
		t.Fatalf("RBL cache hit rate = %.3f (hits=%d misses=%d), want >= 0.9 — listing extensions must not flush the memo",
			hr, st.Hits, st.Misses)
	}
}
