// Package dnssim implements an in-memory DNS for the simulation substrate.
//
// The paper's CR product depends on DNS in four places: the MTA-IN drops
// mail whose sender domain cannot be resolved (4.19% of traffic in the
// study), the reverse-DNS filter requires a PTR record for the client IP,
// the RBL filter queries DNS blocklists, and the offline SPF experiment of
// §5.2 evaluates TXT records. dnssim provides all of these against a zone
// store populated by the workload generator, with per-domain failure
// injection so tests can exercise temporary-error paths.
package dnssim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// Lookup errors.
var (
	// ErrNXDomain is the authoritative "no such domain" answer.
	ErrNXDomain = errors.New("dnssim: NXDOMAIN")
	// ErrNoRecord means the domain exists but has no record of the
	// requested type (DNS NODATA).
	ErrNoRecord = errors.New("dnssim: no such record")
	// ErrTimeout is an injected temporary failure (SERVFAIL/timeout).
	ErrTimeout = errors.New("dnssim: query timed out")
)

// IsTemporary reports whether err represents a temporary DNS failure, after
// which a caller may retry, as opposed to an authoritative negative answer.
// Injected timeouts/outages from the fault substrate count as temporary.
func IsTemporary(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, faults.ErrTimeout) ||
		errors.Is(err, faults.ErrOutage)
}

// DefaultQueryTimeout is the per-lookup deadline injected latency is
// compared against: an answer slower than this is a timeout.
const DefaultQueryTimeout = 5 * time.Second

// MX is a mail-exchanger record.
type MX struct {
	Host string
	Pref int
}

// Resolver is the query interface the CR system components use. Server
// implements it; tests may substitute stubs.
type Resolver interface {
	// LookupA returns the IPv4 addresses of host.
	LookupA(host string) ([]string, error)
	// LookupMX returns the mail exchangers of domain, sorted by preference.
	LookupMX(domain string) ([]MX, error)
	// LookupPTR returns the reverse-DNS name of the dotted-quad ip.
	LookupPTR(ip string) (string, error)
	// LookupTXT returns the TXT strings of domain.
	LookupTXT(domain string) ([]string, error)
}

// zone holds all records for one domain name.
type zone struct {
	a   []string
	mx  []MX
	txt []string
}

// Server is the in-memory DNS database. It is safe for concurrent use.
type Server struct {
	mu      sync.RWMutex
	zones   map[string]*zone  // by lower-case domain
	ptr     map[string]string // by dotted-quad IP
	fail    map[string]error  // injected failure per domain
	inj     faults.Injector   // optional whole-resolver fault source
	timeout time.Duration     // per-lookup deadline for injected latency
	// Query counters are atomics so lookups — reads of the zone data —
	// can run under the read lock and concurrent lanes never serialize
	// on the simulated nameserver.
	queries  atomic.Int64
	nxdomain atomic.Int64
	timeouts atomic.Int64
	outages  atomic.Int64
	// gen counts zone-data mutations so caching layers (internal/dnscache)
	// can invalidate without subscribing to every mutation site.
	gen atomic.Uint64
}

// Stats counts queries served, for the measurement pipeline.
type Stats struct {
	Queries  int64
	NXDomain int64
	Timeouts int64
	// Outages counts injected hard outages (faults.KindOutage), kept
	// separate from Timeouts so a chaos report can tell "the nameserver
	// is down" from "the nameserver is slow".
	Outages int64
}

// NewServer returns an empty DNS server.
func NewServer() *Server {
	return &Server{
		zones:   make(map[string]*zone),
		ptr:     make(map[string]string),
		fail:    make(map[string]error),
		timeout: DefaultQueryTimeout,
	}
}

// SetInjector installs a fault injector consulted (target "dns") on every
// lookup. Injected timeouts (and latency at or above the query timeout)
// surface as ErrTimeout-class errors; injected outages keep their own
// identity (faults.ErrOutage, counted in Stats.Outages). Both are
// temporary per IsTemporary. Pass nil to clear.
func (s *Server) SetInjector(inj faults.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
	s.gen.Add(1)
}

// Gen returns the zone-data generation, which increments on every
// mutation (record registration, RemoveDomain, FailDomain, injector
// changes). A resolver cache compares generations on each lookup and
// flushes on change, so an injected fault or a deleted domain is never
// masked by a stale cached answer.
func (s *Server) Gen() uint64 { return s.gen.Load() }

// SetQueryTimeout overrides the per-lookup deadline (default 5s).
func (s *Server) SetQueryTimeout(d time.Duration) {
	s.mu.Lock()
	if d > 0 {
		s.timeout = d
	}
	s.mu.Unlock()
}

// inject consults the fault injector for one lookup. Caller holds s.mu.
func (s *Server) inject() error {
	if s.inj == nil {
		return nil
	}
	d := s.inj.Decide("dns", s.timeout)
	if d.Err == nil {
		return nil
	}
	if d.Kind == faults.KindOutage {
		s.outages.Add(1)
		return fmt.Errorf("dnssim: nameserver unreachable: %w", d.Err)
	}
	s.timeouts.Add(1)
	return fmt.Errorf("%w: %v", ErrTimeout, d.Err)
}

func key(domain string) string { return strings.ToLower(strings.TrimSuffix(domain, ".")) }

func (s *Server) zoneFor(domain string, create bool) *zone {
	k := key(domain)
	z := s.zones[k]
	if z == nil && create {
		z = &zone{}
		s.zones[k] = z
	}
	return z
}

// AddA registers A records for host.
func (s *Server) AddA(host string, ips ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	z := s.zoneFor(host, true)
	z.a = append(z.a, ips...)
	s.gen.Add(1)
}

// AddMX registers a mail exchanger for domain.
func (s *Server) AddMX(domain, host string, pref int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	z := s.zoneFor(domain, true)
	z.mx = append(z.mx, MX{Host: host, Pref: pref})
	sort.SliceStable(z.mx, func(i, j int) bool { return z.mx[i].Pref < z.mx[j].Pref })
	s.gen.Add(1)
}

// AddPTR registers a reverse mapping for ip.
func (s *Server) AddPTR(ip, host string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ptr[ip] = key(host)
	s.gen.Add(1)
}

// AddTXT appends a TXT record for domain (e.g. an SPF policy).
func (s *Server) AddTXT(domain, txt string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	z := s.zoneFor(domain, true)
	z.txt = append(z.txt, txt)
	s.gen.Add(1)
}

// RemoveDomain deletes every record of domain, turning future queries into
// NXDOMAIN. Used to model domains that disappear mid-simulation.
func (s *Server) RemoveDomain(domain string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, key(domain))
	s.gen.Add(1)
}

// FailDomain injects err for all queries about domain (pass nil to clear).
// Use ErrTimeout to model an unreachable nameserver.
func (s *Server) FailDomain(domain string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.gen.Add(1)
	if err == nil {
		delete(s.fail, key(domain))
		return
	}
	s.fail[key(domain)] = err
}

// Resolvable reports whether domain has any record at all — the check the
// MTA-IN applies to sender domains ("Unable to resolve the domain", 4.19%
// of drops in the study). A domain with only an MX record is resolvable.
func (s *Server) Resolvable(domain string) bool {
	ok, _ := s.ResolvableErr(domain)
	return ok
}

// ResolvableErr is Resolvable with the temporary-failure channel exposed:
// an injected resolver fault (or a FailDomain timeout) returns a non-nil
// error so the caller can apply its degradation policy instead of
// silently treating "DNS is down" as "domain does not exist".
func (s *Server) ResolvableErr(domain string) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.inject(); err != nil {
		return false, err
	}
	if err, bad := s.fail[key(domain)]; bad {
		if IsTemporary(err) {
			return false, fmt.Errorf("%w (domain %s)", ErrTimeout, domain)
		}
		return false, nil
	}
	_, ok := s.zones[key(domain)]
	return ok, nil
}

func (s *Server) pre(domain string) (*zone, error) {
	s.queries.Add(1)
	if err := s.inject(); err != nil {
		return nil, err
	}
	if err, ok := s.fail[key(domain)]; ok {
		if errors.Is(err, ErrTimeout) {
			s.timeouts.Add(1)
		}
		return nil, fmt.Errorf("%w (domain %s)", err, domain)
	}
	z := s.zones[key(domain)]
	if z == nil {
		s.nxdomain.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, domain)
	}
	return z, nil
}

// LookupA implements Resolver.
func (s *Server) LookupA(host string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, err := s.pre(host)
	if err != nil {
		return nil, err
	}
	if len(z.a) == 0 {
		return nil, fmt.Errorf("%w: A %s", ErrNoRecord, host)
	}
	out := make([]string, len(z.a))
	copy(out, z.a)
	return out, nil
}

// LookupMX implements Resolver.
func (s *Server) LookupMX(domain string) ([]MX, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, err := s.pre(domain)
	if err != nil {
		return nil, err
	}
	if len(z.mx) == 0 {
		return nil, fmt.Errorf("%w: MX %s", ErrNoRecord, domain)
	}
	out := make([]MX, len(z.mx))
	copy(out, z.mx)
	return out, nil
}

// LookupPTR implements Resolver.
func (s *Server) LookupPTR(ip string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.queries.Add(1)
	if err := s.inject(); err != nil {
		return "", err
	}
	h, ok := s.ptr[ip]
	if !ok {
		s.nxdomain.Add(1)
		return "", fmt.Errorf("%w: PTR %s", ErrNXDomain, ip)
	}
	return h, nil
}

// LookupTXT implements Resolver.
func (s *Server) LookupTXT(domain string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, err := s.pre(domain)
	if err != nil {
		return nil, err
	}
	if len(z.txt) == 0 {
		return nil, fmt.Errorf("%w: TXT %s", ErrNoRecord, domain)
	}
	out := make([]string, len(z.txt))
	copy(out, z.txt)
	return out, nil
}

// Stats returns a snapshot of the query counters.
func (s *Server) Stats() Stats {
	return Stats{
		Queries:  s.queries.Load(),
		NXDomain: s.nxdomain.Load(),
		Timeouts: s.timeouts.Load(),
		Outages:  s.outages.Load(),
	}
}

// Domains returns all registered domain names, sorted. Intended for
// debugging and deterministic iteration in experiments.
func (s *Server) Domains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.zones))
	for d := range s.zones {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// RegisterMailDomain is a convenience that wires up the records a
// well-configured mail domain has: an A record for the bare domain, an MX
// pointing at mail.<domain>, an A record for that host, and a PTR mapping
// its IP back. Returns the MX host IP.
func (s *Server) RegisterMailDomain(domain, ip string) string {
	mxHost := "mail." + key(domain)
	s.AddA(domain, ip)
	s.AddMX(domain, mxHost, 10)
	s.AddA(mxHost, ip)
	s.AddPTR(ip, mxHost)
	return ip
}
