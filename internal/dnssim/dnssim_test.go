package dnssim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestLookupA(t *testing.T) {
	s := NewServer()
	s.AddA("example.com", "192.0.2.1", "192.0.2.2")
	ips, err := s.LookupA("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 2 || ips[0] != "192.0.2.1" {
		t.Fatalf("LookupA = %v", ips)
	}
	// Case-insensitive, trailing-dot tolerant.
	if _, err := s.LookupA("EXAMPLE.COM."); err != nil {
		t.Fatalf("case/dot lookup failed: %v", err)
	}
}

func TestLookupANXDomain(t *testing.T) {
	s := NewServer()
	_, err := s.LookupA("missing.example")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want NXDOMAIN", err)
	}
	if st := s.Stats(); st.NXDomain != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLookupNoData(t *testing.T) {
	s := NewServer()
	s.AddTXT("example.com", "v=spf1 -all")
	_, err := s.LookupA("example.com")
	if !errors.Is(err, ErrNoRecord) {
		t.Fatalf("err = %v, want ErrNoRecord (domain exists, no A)", err)
	}
}

func TestLookupMXSortedByPref(t *testing.T) {
	s := NewServer()
	s.AddMX("example.com", "backup.example.com", 20)
	s.AddMX("example.com", "primary.example.com", 10)
	mx, err := s.LookupMX("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 2 || mx[0].Host != "primary.example.com" {
		t.Fatalf("MX order = %v", mx)
	}
}

func TestLookupPTR(t *testing.T) {
	s := NewServer()
	s.AddPTR("192.0.2.7", "mail.example.com")
	h, err := s.LookupPTR("192.0.2.7")
	if err != nil || h != "mail.example.com" {
		t.Fatalf("PTR = %q, %v", h, err)
	}
	if _, err := s.LookupPTR("192.0.2.8"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("missing PTR err = %v", err)
	}
}

func TestLookupTXT(t *testing.T) {
	s := NewServer()
	s.AddTXT("example.com", "v=spf1 ip4:192.0.2.0/24 -all")
	txt, err := s.LookupTXT("example.com")
	if err != nil || len(txt) != 1 {
		t.Fatalf("TXT = %v, %v", txt, err)
	}
}

func TestFailDomainInjection(t *testing.T) {
	s := NewServer()
	s.AddA("flaky.example.com", "192.0.2.9")
	s.FailDomain("flaky.example.com", ErrTimeout)
	_, err := s.LookupA("flaky.example.com")
	if !IsTemporary(err) {
		t.Fatalf("injected failure not temporary: %v", err)
	}
	if s.Resolvable("flaky.example.com") {
		t.Fatal("failed domain reported resolvable")
	}
	s.FailDomain("flaky.example.com", nil)
	if _, err := s.LookupA("flaky.example.com"); err != nil {
		t.Fatalf("after clearing failure: %v", err)
	}
}

func TestResolvable(t *testing.T) {
	s := NewServer()
	s.AddMX("mx-only.example.com", "mail.example.com", 10)
	if !s.Resolvable("mx-only.example.com") {
		t.Fatal("domain with only MX must be resolvable")
	}
	if s.Resolvable("ghost.example.com") {
		t.Fatal("unregistered domain reported resolvable")
	}
}

func TestRemoveDomain(t *testing.T) {
	s := NewServer()
	s.AddA("gone.example.com", "192.0.2.3")
	s.RemoveDomain("gone.example.com")
	if _, err := s.LookupA("gone.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("after removal err = %v, want NXDOMAIN", err)
	}
}

func TestRegisterMailDomain(t *testing.T) {
	s := NewServer()
	s.RegisterMailDomain("corp.example", "198.51.100.1")
	if !s.Resolvable("corp.example") {
		t.Fatal("registered domain not resolvable")
	}
	mx, err := s.LookupMX("corp.example")
	if err != nil || mx[0].Host != "mail.corp.example" {
		t.Fatalf("MX = %v, %v", mx, err)
	}
	ptr, err := s.LookupPTR("198.51.100.1")
	if err != nil || ptr != "mail.corp.example" {
		t.Fatalf("PTR = %q, %v", ptr, err)
	}
	ips, err := s.LookupA("mail.corp.example")
	if err != nil || ips[0] != "198.51.100.1" {
		t.Fatalf("A = %v, %v", ips, err)
	}
}

func TestDomainsSorted(t *testing.T) {
	s := NewServer()
	s.AddA("zz.example.com", "192.0.2.1")
	s.AddA("aa.example.com", "192.0.2.2")
	d := s.Domains()
	if len(d) != 2 || d[0] != "aa.example.com" || d[1] != "zz.example.com" {
		t.Fatalf("Domains = %v", d)
	}
}

func TestLookupResultIsCopy(t *testing.T) {
	s := NewServer()
	s.AddA("example.com", "192.0.2.1")
	ips, _ := s.LookupA("example.com")
	ips[0] = "mutated"
	ips2, _ := s.LookupA("example.com")
	if ips2[0] != "192.0.2.1" {
		t.Fatal("LookupA returned aliased internal slice")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			s.AddA(fmt.Sprintf("d%d.example.com", i), "192.0.2.1")
		}(i)
		go func(i int) {
			defer wg.Done()
			s.LookupA(fmt.Sprintf("d%d.example.com", i)) //nolint:errcheck
		}(i)
	}
	wg.Wait()
}

func BenchmarkLookupA(b *testing.B) {
	s := NewServer()
	for i := 0; i < 1000; i++ {
		s.AddA(fmt.Sprintf("d%d.example.com", i), "192.0.2.1")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LookupA("d500.example.com"); err != nil {
			b.Fatal(err)
		}
	}
}
