// Chaos experiment: the standard workload run twice with the same seed
// — once clean, once under a fault plan — and diffed. The paper's
// deployment depended on DNS, a blocklist, a scanner backend and a
// smarthost (§4, §5.1); this driver measures how the hardened filter
// path shifts classification when those dependencies fail.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/simnet"
)

// ChaosSummary captures the classification-relevant counters of one run.
type ChaosSummary struct {
	Incoming   int64
	SpoolWhite int64
	SpoolBlack int64
	SpoolGray  int64

	FilterDropped  map[string]int64
	FilterDegraded map[string]int64

	MTADegradedAccept int64
	MTADegradedDrop   int64

	ChallengesSent int64
	// ChallengeOutcomes counts challenge delivery statuses by label
	// (delivered, expired, bounce variants).
	ChallengeOutcomes map[string]int64

	Delivered map[string]int64 // inbox deliveries by via

	// FaultCounts is the injector's per-target injection tally (empty on
	// the clean run).
	FaultCounts map[string]int64
	// StaleAnswers counts RBL queries served from injected stale data.
	StaleAnswers int64
}

// ChaosReport is the outcome of the chaos experiment.
type ChaosReport struct {
	Plan    *faults.Plan
	Base    ChaosSummary
	Faulted ChaosSummary
}

// summarizeRun reduces a completed run to a ChaosSummary.
func summarizeRun(r *Run) ChaosSummary {
	agg := r.Aggregate().All
	s := ChaosSummary{
		Incoming:          agg.MTAIncoming,
		SpoolWhite:        agg.SpoolWhite,
		SpoolBlack:        agg.SpoolBlack,
		SpoolGray:         agg.SpoolGray,
		FilterDropped:     agg.FilterDropped,
		FilterDegraded:    agg.FilterDegraded,
		MTADegradedAccept: agg.MTADegradedAccept,
		MTADegradedDrop:   agg.MTADegradedDrop,
		ChallengesSent:    agg.ChallengesSent,
		ChallengeOutcomes: make(map[string]int64),
		Delivered:         make(map[string]int64),
		FaultCounts:       make(map[string]int64),
	}
	for via, n := range agg.Delivered {
		s.Delivered[via.String()] += n
	}
	ds := r.Fleet.Net.DeliveryStats()
	for st, n := range ds.ByStatus {
		if st == simnet.StatusPending {
			continue
		}
		s.ChallengeOutcomes[st.String()] += int64(n)
	}
	if r.Fleet.Injector != nil {
		s.FaultCounts = r.Fleet.Injector.Counts()
	}
	for _, p := range r.Fleet.Providers {
		s.StaleAnswers += p.StaleAnswers()
	}
	return s
}

// Chaos runs cfg twice — clean and under plan — and reports the shift.
// Both runs share cfg.Seed, so every difference is attributable to the
// injected faults.
func Chaos(cfg RunConfig, plan *faults.Plan) *ChaosReport {
	if plan == nil {
		plan = faults.DefaultChaosPlan()
	}
	base := cfg
	base.FaultPlan = nil
	faulted := cfg
	faulted.FaultPlan = plan
	return &ChaosReport{
		Plan:    plan,
		Base:    summarizeRun(NewRun(base)),
		Faulted: summarizeRun(NewRun(faulted)),
	}
}

// Render formats the report as a deterministic fixed-width table of
// base vs faulted counters with deltas.
func (r *ChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos run under fault plan %q\n", r.Plan.Name)
	for _, line := range strings.Split(strings.TrimRight(r.Plan.Describe(), "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s %12s %12s %12s\n", "counter", "base", "faulted", "delta")
	row := func(name string, base, faulted int64) {
		fmt.Fprintf(&b, "%-34s %12d %12d %+12d\n", name, base, faulted, faulted-base)
	}
	row("mta-incoming", r.Base.Incoming, r.Faulted.Incoming)
	row("spool-white", r.Base.SpoolWhite, r.Faulted.SpoolWhite)
	row("spool-black", r.Base.SpoolBlack, r.Faulted.SpoolBlack)
	row("spool-gray", r.Base.SpoolGray, r.Faulted.SpoolGray)
	for _, k := range unionKeys(r.Base.FilterDropped, r.Faulted.FilterDropped) {
		row("filter-drop/"+k, r.Base.FilterDropped[k], r.Faulted.FilterDropped[k])
	}
	for _, k := range unionKeys(r.Base.FilterDegraded, r.Faulted.FilterDegraded) {
		row("filter-degraded/"+k, r.Base.FilterDegraded[k], r.Faulted.FilterDegraded[k])
	}
	row("mta-degraded-accept", r.Base.MTADegradedAccept, r.Faulted.MTADegradedAccept)
	row("mta-degraded-drop", r.Base.MTADegradedDrop, r.Faulted.MTADegradedDrop)
	row("challenges-sent", r.Base.ChallengesSent, r.Faulted.ChallengesSent)
	for _, k := range unionKeys(r.Base.ChallengeOutcomes, r.Faulted.ChallengeOutcomes) {
		row("challenge/"+k, r.Base.ChallengeOutcomes[k], r.Faulted.ChallengeOutcomes[k])
	}
	for _, k := range unionKeys(r.Base.Delivered, r.Faulted.Delivered) {
		row("delivered/"+k, r.Base.Delivered[k], r.Faulted.Delivered[k])
	}
	row("rbl-stale-answers", r.Base.StaleAnswers, r.Faulted.StaleAnswers)
	if len(r.Faulted.FaultCounts) > 0 {
		b.WriteString("\ninjected faults (target/kind):\n")
		keys := make([]string, 0, len(r.Faulted.FaultCounts))
		for k := range r.Faulted.FaultCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %12d\n", k, r.Faulted.FaultCounts[k])
		}
	}
	return b.String()
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys(a, b map[string]int64) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
