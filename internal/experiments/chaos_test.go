package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

// tiny keeps the double-run chaos test fast.
func tiny(seed int64) RunConfig {
	return RunConfig{Seed: seed, Companies: 4, Days: 2, UserScale: 0.1, VolumeScale: 0.05}
}

func TestChaosRBLBlackoutFailsOpen(t *testing.T) {
	plan := &faults.Plan{Name: "rbl-blackout", Rules: []faults.Rule{
		{Target: "rbl:*", Kind: faults.KindOutage}, // 100% provider outage
	}}
	rep := Chaos(tiny(11), plan)

	// The clean run exercises the rbl filter normally...
	if rep.Base.FilterDropped["rbl"] == 0 {
		t.Fatal("base run dropped nothing via rbl; workload too small to test")
	}
	if rep.Base.FilterDegraded["rbl"] != 0 {
		t.Fatalf("base run degraded %d times with no fault plan", rep.Base.FilterDegraded["rbl"])
	}
	// ...while the blackout run classifies everything via the fail-open
	// path: zero rbl drops, every rbl evaluation degraded, and the spam
	// the list would have caught is challenged instead of lost.
	if got := rep.Faulted.FilterDropped["rbl"]; got != 0 {
		t.Fatalf("faulted run still dropped %d via rbl during a 100%% outage", got)
	}
	if rep.Faulted.FilterDegraded["rbl"] == 0 {
		t.Fatal("faulted run recorded no rbl degradation")
	}
	if rep.Faulted.ChallengesSent <= rep.Base.ChallengesSent {
		t.Fatalf("challenges did not rise under the blackout: base %d, faulted %d",
			rep.Base.ChallengesSent, rep.Faulted.ChallengesSent)
	}
	// The workload itself is unchanged: same seed, same incoming volume.
	if rep.Base.Incoming != rep.Faulted.Incoming {
		t.Fatalf("incoming differs: base %d, faulted %d", rep.Base.Incoming, rep.Faulted.Incoming)
	}
	if rep.Faulted.FaultCounts["rbl:spamhaus/outage"] == 0 {
		t.Fatalf("injector counts missing the outage: %v", rep.Faulted.FaultCounts)
	}
}

func TestChaosRenderDeterministic(t *testing.T) {
	plan := faults.DefaultChaosPlan()
	a := Chaos(tiny(13), plan).Render()
	b := Chaos(tiny(13), plan).Render()
	if a != b {
		t.Fatal("identically-seeded chaos reports differ")
	}
	for _, want := range []string{"default-chaos", "spool-gray", "filter-degraded/rbl", "injected faults"} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
}
