// Crash-restart experiment: the durability claim of the WAL subsystem,
// tested end to end. A single installation's stores run under a
// write-ahead log; seeded traffic mutates them; at seeded points the
// installation "crashes" — the on-disk state is cloned with the
// un-synced tail torn by the fault injector, exactly what a power cut
// leaves — and a cold recovery (snapshot + WAL suffix replay) must
// reproduce the pre-crash whitelist and reputation state byte for
// byte, with zero acknowledged (fsynced) mutations lost.
//
// The paper's product kept its whitelists as the asset of record
// (§4.3); this experiment is the proof that our recovery protocol
// preserves that asset across the crash-failure model.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/spool"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/whitelist"
)

// CrashPoint is the outcome of one seeded crash+recovery cycle.
type CrashPoint struct {
	// Mutations applied (and tapped) since the run began.
	Mutations int
	// AppendedLSN / DurableLSN are the log watermarks at the instant of
	// the crash: records past DurableLSN were never acknowledged.
	AppendedLSN uint64
	DurableLSN  uint64
	// RecoveredLSN is the last LSN the cold boot replayed to. The
	// contract is DurableLSN <= RecoveredLSN <= AppendedLSN.
	RecoveredLSN uint64
	// Replayed counts WAL records applied over the snapshot at boot.
	Replayed int
	// Truncated reports whether recovery cut a torn tail.
	Truncated bool
	TornBytes int64
	// LostAcked is how many fsync-acknowledged records recovery lost
	// (must be zero).
	LostAcked uint64
	// StateIdentical reports whether the recovered whitelist and
	// reputation exports are byte-identical to a shadow fold of the
	// committed record sequence up to RecoveredLSN.
	StateIdentical bool
	// SpoolIdentical reports whether the recovered outbound challenge
	// spool (pending items and terminal fates) is byte-identical to the
	// same shadow fold — the zero-acked-challenge-loss claim.
	SpoolIdentical bool
	// Detail carries the first divergence when a state check fails.
	Detail string
}

// CrashRestartReport is the outcome of the crash-restart experiment.
type CrashRestartReport struct {
	Seed        int64
	Points      []CrashPoint
	Mutations   int
	Compactions int64
	Segments    int
}

// Pass reports whether every crash point recovered perfectly.
func (r *CrashRestartReport) Pass() bool {
	for _, p := range r.Points {
		if p.LostAcked != 0 || !p.StateIdentical || !p.SpoolIdentical ||
			p.RecoveredLSN < p.DurableLSN || p.RecoveredLSN > p.AppendedLSN {
			return false
		}
	}
	return true
}

// SpoolPass reports whether every crash point recovered the outbound
// challenge spool byte-identically.
func (r *CrashRestartReport) SpoolPass() bool {
	for _, p := range r.Points {
		if !p.SpoolIdentical {
			return false
		}
	}
	return true
}

// crashInstall is one generation of the installation under test: live
// stores with the journal attached, plus the paths recovery needs.
type crashInstall struct {
	wl  *whitelist.Store
	rep *reputation.Store
	gl  *greylist.Store
	sp  *spool.State
	rec *spool.Recorder
	log *wal.Log
	dir string // holds state.json + wal/
}

func (ci *crashInstall) snapPath() string { return filepath.Join(ci.dir, "state.json") }
func (ci *crashInstall) walDir() string   { return filepath.Join(ci.dir, "wal") }

func crashWALOpts(dir string) wal.Options {
	// Tiny segments so rotation and compaction happen constantly even in
	// a short run.
	return wal.Options{Dir: dir, Manual: true, SegmentBytes: 8 << 10}
}

// CrashRestart runs the experiment: `crashes` crash+recovery cycles
// over one continuously-evolving installation, with seeded mutation
// traffic, periodic group commits, and snapshot+compaction cycles in
// between. Every cycle the recovered state is checked byte-for-byte
// against a shadow copy folded from the tapped record sequence.
func CrashRestart(seed int64, crashes int) (*CrashRestartReport, error) {
	if crashes <= 0 {
		crashes = 6
	}
	root, err := os.MkdirTemp("", "crashrestart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	rng := rand.New(rand.NewSource(seed))
	clk := clock.NewSim(time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC))
	report := &CrashRestartReport{Seed: seed}

	// committed[i] is the record that got LSN i+1; the tap keeps it in
	// step with the live log, and a crash truncates it to what survived.
	var committed []wal.Record

	newInstall := func(gen int) (*crashInstall, error) {
		dir := filepath.Join(root, fmt.Sprintf("gen-%03d", gen))
		if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
			return nil, err
		}
		return &crashInstall{
			wl:  whitelist.NewStore(clk),
			rep: reputation.NewStore(reputation.Config{}, clk),
			gl:  greylist.New(greylist.Config{}, clk),
			sp:  spool.NewState(),
			dir: dir,
		}, nil
	}

	attach := func(ci *crashInstall) {
		j := wal.NewJournal(ci.log)
		j.SetTap(func(r wal.Record) { committed = append(committed, r) })
		j.Attach(ci.wl, ci.rep, ci.gl)
		// Spool transitions journal through the same path the outbound
		// queue uses in production: Recorder -> Journal.Emit.
		ci.rec = &spool.Recorder{State: ci.sp, Emit: j.Emit}
	}

	live, err := newInstall(0)
	if err != nil {
		return nil, err
	}
	live.log, _, err = wal.Open(crashWALOpts(live.walDir()), 0, nil)
	if err != nil {
		return nil, err
	}
	attach(live)

	users := make([]mail.Address, 6)
	for i := range users {
		users[i] = mail.MustParseAddress(fmt.Sprintf("user%d@corp.example", i))
	}
	sender := func(i int) mail.Address {
		return mail.MustParseAddress(fmt.Sprintf("sender%d@remote%d.example", i, i%7))
	}

	// Spool traffic: every challenge walks enqueue -> attempts ->
	// terminal through the journalled Recorder, exactly the transitions
	// the outbound queue makes. pendingIDs mirrors the live spool's
	// pending set (rebuilt from recovered state after each crash).
	var spoolSeq int
	challengeFrom := mail.MustParseAddress("challenge@corp.example")
	spoolEnqueue := func() {
		spoolSeq++
		id := fmt.Sprintf("chal-%06d", spoolSeq)
		live.rec.Enqueue(clk.Now(), spool.Challenge{
			MsgID:   id,
			Token:   fmt.Sprintf("tok-%06d", spoolSeq),
			From:    challengeFrom,
			To:      sender(rng.Intn(200)),
			Subject: "please confirm",
			URL:     fmt.Sprintf("https://corp.example/c/%06d", spoolSeq),
			Size:    1800,
			Issued:  clk.Now(),
		})
	}
	randPending := func() (spool.Item, bool) {
		p := live.sp.Pending()
		if len(p) == 0 {
			return spool.Item{}, false
		}
		return p[rng.Intn(len(p))], true
	}

	mutate := func() {
		u := users[rng.Intn(len(users))]
		s := sender(rng.Intn(200))
		switch rng.Intn(14) {
		case 0, 1, 2:
			live.wl.AddWhite(u, s, whitelist.Source(rng.Intn(5)))
		case 3:
			live.wl.AddBlack(u, s)
		case 4:
			live.wl.RemoveWhite(u, s)
		case 5:
			live.gl.Check(fmt.Sprintf("203.0.113.%d", rng.Intn(64)), s, u)
		case 10, 11:
			spoolEnqueue()
		case 12:
			if it, ok := randPending(); ok {
				live.rec.Attempt(clk.Now(), it.Challenge.MsgID, "tempfail", "451 try again later",
					it.Attempts+1, clk.Now().Add(15*time.Minute))
			} else {
				spoolEnqueue()
			}
		case 13:
			if it, ok := randPending(); ok {
				st := []spool.Status{spool.StatusSent, spool.StatusBounced, spool.StatusExpired}[rng.Intn(3)]
				live.rec.Terminal(clk.Now(), it.Challenge.MsgID, st, "", "", it.Attempts+1)
			} else {
				spoolEnqueue()
			}
		default:
			live.rep.Record(s, fmt.Sprintf("198.51.100.%d", rng.Intn(64)), reputation.Outcome(rng.Intn(6)))
		}
		report.Mutations++
		clk.Advance(time.Duration(1+rng.Intn(600)) * time.Second)
	}

	// snapshotCycle is the server's saveState protocol: cut sampled
	// before the export, active segment sealed, snapshot saved, sealed
	// segments behind the cut deleted.
	snapshotCycle := func() error {
		cut := live.log.LastLSN()
		if err := live.log.Sync(); err != nil {
			return err
		}
		if err := live.log.Rotate(); err != nil {
			return err
		}
		st := store.Stores{Whitelist: live.wl, Reputation: live.rep, Greylist: live.gl, Spool: live.sp}
		if err := store.SaveFile(live.snapPath(), "crash-restart", st, cut, clk.Now()); err != nil {
			return err
		}
		_, err := live.log.CompactThrough(cut)
		return err
	}

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // Export types marshal by construction
		}
		return b
	}

	for c := 0; c < crashes; c++ {
		// A burst of traffic with interleaved group commits and the
		// occasional snapshot+compaction cycle.
		steps := 60 + rng.Intn(120)
		for i := 0; i < steps; i++ {
			mutate()
			if rng.Intn(7) == 0 {
				if err := live.log.Sync(); err != nil {
					return nil, err
				}
			}
			if rng.Intn(40) == 0 {
				if err := snapshotCycle(); err != nil {
					return nil, err
				}
			}
		}
		// Leave a few appends un-synced so most crashes have a real torn
		// tail to truncate.
		for i := 0; i < rng.Intn(6); i++ {
			mutate()
		}

		point := CrashPoint{
			Mutations:   report.Mutations,
			AppendedLSN: live.log.LastLSN(),
			DurableLSN:  live.log.DurableLSN(),
		}
		// Each generation is a fresh Log with fresh counters; bank this
		// one's compactions before abandoning it.
		report.Compactions += live.log.Metrics().Compactions

		// Crash: clone the durable image (+ injector-torn pending tail)
		// into the next generation's directory, abandon the old log.
		next, err := newInstall(c + 1)
		if err != nil {
			return nil, err
		}
		if err := live.log.CloneForCrash(next.walDir(), func(b []byte) []byte {
			return faults.TornWrite(rng, b)
		}); err != nil {
			return nil, err
		}
		if b, err := os.ReadFile(live.snapPath()); err == nil {
			if err := os.WriteFile(next.snapPath(), b, 0o644); err != nil {
				return nil, err
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		}

		// Cold boot on the crash image.
		st := store.Stores{Whitelist: next.wl, Reputation: next.rep, Greylist: next.gl, Spool: next.sp}
		rec, err := store.Recover(next.snapPath(), crashWALOpts(next.walDir()), st)
		if err != nil {
			return nil, fmt.Errorf("crash %d: recovery refused to boot: %w", c, err)
		}
		next.log = rec.Log
		point.RecoveredLSN = rec.Log.LastLSN()
		point.Replayed = rec.Replayed
		point.Truncated = rec.Truncated
		point.TornBytes = rec.TornBytes
		if point.RecoveredLSN < point.DurableLSN {
			point.LostAcked = point.DurableLSN - point.RecoveredLSN
		}

		// Shadow copy: fold the committed record sequence 1..RecoveredLSN
		// into fresh stores. Recovery (snapshot + suffix replay) must land
		// on exactly this state — whitelist and reputation byte-identical.
		// (The greylist is excluded: its sweep deletes expired tuples
		// without journalling them, an allowed divergence because expired
		// tuples are semantically absent either way.)
		shadowWL := whitelist.NewStore(clk)
		shadowRep := reputation.NewStore(reputation.Config{}, clk)
		shadowGL := greylist.New(greylist.Config{}, clk)
		shadowSp := spool.NewState()
		m := point.RecoveredLSN
		if m > uint64(len(committed)) {
			point.Detail = fmt.Sprintf("recovered LSN %d beyond %d committed records", m, len(committed))
		} else {
			for _, r := range committed[:m] {
				if err := wal.Apply(r, shadowWL, shadowRep, shadowGL); err != nil {
					return nil, fmt.Errorf("crash %d: shadow fold: %w", c, err)
				}
				if err := spool.Apply(r, shadowSp); err != nil {
					return nil, fmt.Errorf("crash %d: shadow spool fold: %w", c, err)
				}
			}
			wlA, wlB := mustJSON(shadowWL.Export()), mustJSON(next.wl.Export())
			repA, repB := mustJSON(shadowRep.Export()), mustJSON(next.rep.Export())
			switch {
			case !bytes.Equal(wlA, wlB):
				point.Detail = "whitelist diverged from shadow"
			case !bytes.Equal(repA, repB):
				point.Detail = "reputation diverged from shadow"
			default:
				point.StateIdentical = true
			}
			spA, spB := mustJSON(shadowSp.Export()), mustJSON(next.sp.Export())
			if bytes.Equal(spA, spB) {
				point.SpoolIdentical = true
			} else if point.Detail == "" {
				point.Detail = "spool diverged from shadow"
			}
		}
		report.Points = append(report.Points, point)

		// The recovered installation becomes the live one; records past
		// the recovery horizon died with the crash.
		committed = committed[:min(int(point.RecoveredLSN), len(committed))]
		attach(next)
		live = next
	}

	if err := live.log.Sync(); err != nil {
		return nil, err
	}
	m := live.log.Metrics()
	report.Compactions += m.Compactions
	report.Segments = m.Segments
	if err := live.log.Close(); err != nil {
		return nil, err
	}
	return report, nil
}

// Render formats the report, ending in the machine-checkable verdict
// line "crash safety: PASS" (or FAIL) that CI greps for.
func (r *CrashRestartReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crash-restart durability (seed %d): %d crash point(s), %d mutations\n\n",
		r.Seed, len(r.Points), r.Mutations)
	fmt.Fprintf(&b, "%5s %9s %9s %9s %9s %6s %10s %6s %s\n",
		"crash", "appended", "durable", "recovered", "replayed", "torn", "tornBytes", "lost", "state")
	for i, p := range r.Points {
		state := "IDENTICAL"
		if !p.StateIdentical || !p.SpoolIdentical {
			state = "DIVERGED: " + p.Detail
		}
		torn := "-"
		if p.Truncated {
			torn = "yes"
		}
		fmt.Fprintf(&b, "%5d %9d %9d %9d %9d %6s %10d %6d %s\n",
			i+1, p.AppendedLSN, p.DurableLSN, p.RecoveredLSN, p.Replayed, torn, p.TornBytes, p.LostAcked, state)
	}
	fmt.Fprintf(&b, "\nfinal log: %d segment(s) live, %d compaction(s) over the run\n", r.Segments, r.Compactions)
	if r.Pass() {
		fmt.Fprintf(&b, "crash safety: PASS — every acked mutation recovered, whitelist+reputation byte-identical at all %d crash points\n",
			len(r.Points))
	} else {
		b.WriteString("crash safety: FAIL — see diverged/lost crash points above\n")
	}
	if r.SpoolPass() {
		fmt.Fprintf(&b, "spool recovery: PASS — pending challenge spool byte-identical at all %d crash points, zero acked challenges lost\n",
			len(r.Points))
	} else {
		b.WriteString("spool recovery: FAIL — see diverged crash points above\n")
	}
	return b.String()
}
