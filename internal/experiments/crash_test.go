package experiments

import (
	"strings"
	"testing"
)

func TestCrashRestartRecoversEverything(t *testing.T) {
	rep, err := CrashRestart(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 5 {
		t.Fatalf("crash points = %d, want 5", len(rep.Points))
	}
	for i, p := range rep.Points {
		if p.LostAcked != 0 {
			t.Errorf("crash %d lost %d acked record(s)", i+1, p.LostAcked)
		}
		if !p.StateIdentical {
			t.Errorf("crash %d state diverged: %s", i+1, p.Detail)
		}
		if p.RecoveredLSN < p.DurableLSN || p.RecoveredLSN > p.AppendedLSN {
			t.Errorf("crash %d recovered LSN %d outside [durable %d, appended %d]",
				i+1, p.RecoveredLSN, p.DurableLSN, p.AppendedLSN)
		}
	}
	if !rep.Pass() {
		t.Fatal("report does not pass")
	}
	out := rep.Render()
	if !strings.Contains(out, "crash safety: PASS") {
		t.Fatalf("render missing verdict line:\n%s", out)
	}
	if rep.Compactions == 0 {
		t.Error("no compactions happened over the run; segments too large for the traffic?")
	}
}

// TestCrashRestartDeterministic: same seed, same report — the torn
// tails, crash points, and recovery outcomes are all seeded.
func TestCrashRestartDeterministic(t *testing.T) {
	a, err := CrashRestart(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrashRestart(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a.Render(), b.Render())
	}
}
