package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestWorkerCountInvariance is the parallel-fleet determinism contract:
// the same seed must produce bit-for-bit identical results whether the
// fleet runs serially or on a worker pool. Companies execute on
// independent lanes with derived RNG streams and join at hourly epoch
// barriers, so the worker count can only change scheduling, never
// outcomes.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Quick runs")
	}
	cfgSerial := Quick(7)
	cfgSerial.Workers = 1
	cfgParallel := Quick(7)
	cfgParallel.Workers = 8

	serial := NewRun(cfgSerial)
	parallel := NewRun(cfgParallel)

	lcS, lcP := Lifecycle(serial), Lifecycle(parallel)
	if !reflect.DeepEqual(lcS, lcP) {
		t.Errorf("Lifecycle diverges across worker counts:\nworkers=1: %+v\nworkers=8: %+v", lcS, lcP)
	}
	gS, gP := General(serial), General(parallel)
	if !reflect.DeepEqual(gS, gP) {
		t.Errorf("General diverges across worker counts:\nworkers=1: %+v\nworkers=8: %+v", gS, gP)
	}
	ccS, ccP := serial.Fleet.ClassCounts(), parallel.Fleet.ClassCounts()
	if !reflect.DeepEqual(ccS, ccP) {
		t.Errorf("class counts diverge across worker counts:\nworkers=1: %v\nworkers=8: %v", ccS, ccP)
	}
}

// TestSurgeWorkerCountInvariance extends the determinism contract to
// the overload path: a 10× burst with per-lane admission controllers,
// per-lane surge injectors and shed-retry timers must produce
// bit-for-bit identical stats for any worker count. (Unlike FaultPlan,
// SurgePlan must not force serial execution — each lane owns a derived
// injector stream.)
func TestSurgeWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two surge runs")
	}
	mk := func(workers int) (workload.OverloadStats, map[workload.Class]int64) {
		cfg := surgeQuick(7)
		cfg.Workers = workers
		cfg.Overload = SurgeOverloadConfig()
		cfg.SurgePlan = SurgeLatencyPlan()
		cfg.SurgeBursts = []workload.SurgeBurst{{Day: 1, Hour: 10, Hours: 3, Intensity: 10}}
		run := NewRun(cfg)
		return run.Fleet.OverloadStats(), run.Fleet.ClassCounts()
	}
	sS, ccS := mk(1)
	sP, ccP := mk(8)
	if !reflect.DeepEqual(sS, sP) {
		t.Errorf("overload stats diverge across worker counts:\nworkers=1: %+v\nworkers=8: %+v", sS, sP)
	}
	if !reflect.DeepEqual(ccS, ccP) {
		t.Errorf("class counts diverge across worker counts:\nworkers=1: %v\nworkers=8: %v", ccS, ccP)
	}
	if sS.Ctl.ShedTotal() == 0 {
		t.Error("surge run shed nothing; invariance check is vacuous")
	}
}
