package experiments

import (
	"reflect"
	"testing"
)

// TestWorkerCountInvariance is the parallel-fleet determinism contract:
// the same seed must produce bit-for-bit identical results whether the
// fleet runs serially or on a worker pool. Companies execute on
// independent lanes with derived RNG streams and join at hourly epoch
// barriers, so the worker count can only change scheduling, never
// outcomes.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Quick runs")
	}
	cfgSerial := Quick(7)
	cfgSerial.Workers = 1
	cfgParallel := Quick(7)
	cfgParallel.Workers = 8

	serial := NewRun(cfgSerial)
	parallel := NewRun(cfgParallel)

	lcS, lcP := Lifecycle(serial), Lifecycle(parallel)
	if !reflect.DeepEqual(lcS, lcP) {
		t.Errorf("Lifecycle diverges across worker counts:\nworkers=1: %+v\nworkers=8: %+v", lcS, lcP)
	}
	gS, gP := General(serial), General(parallel)
	if !reflect.DeepEqual(gS, gP) {
		t.Errorf("General diverges across worker counts:\nworkers=1: %+v\nworkers=8: %+v", gS, gP)
	}
	ccS, ccP := serial.Fleet.ClassCounts(), parallel.Fleet.ClassCounts()
	if !reflect.DeepEqual(ccS, ccP) {
		t.Errorf("class counts diverge across worker counts:\nworkers=1: %v\nworkers=8: %v", ccS, ccP)
	}
}
