package experiments

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// TestWorkerCountInvariance is the parallel-fleet determinism contract:
// the same seed must produce bit-for-bit identical results whether the
// fleet runs serially or on a worker pool. Companies execute on
// independent lanes with derived RNG streams and join at hourly epoch
// barriers, so the worker count can only change scheduling, never
// outcomes.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full Quick runs")
	}
	run := func(workers int) *Run {
		cfg := Quick(7)
		cfg.Workers = workers
		return NewRun(cfg)
	}
	serial := run(1)
	lcS, gS, ccS := Lifecycle(serial), General(serial), serial.Fleet.ClassCounts()
	for _, workers := range []int{2, 4, 8, 16} {
		parallel := run(workers)
		if lcP := Lifecycle(parallel); !reflect.DeepEqual(lcS, lcP) {
			t.Errorf("Lifecycle diverges:\nworkers=1: %+v\nworkers=%d: %+v", lcS, workers, lcP)
		}
		if gP := General(parallel); !reflect.DeepEqual(gS, gP) {
			t.Errorf("General diverges:\nworkers=1: %+v\nworkers=%d: %+v", gS, workers, gP)
		}
		if ccP := parallel.Fleet.ClassCounts(); !reflect.DeepEqual(ccS, ccP) {
			t.Errorf("class counts diverge:\nworkers=1: %v\nworkers=%d: %v", ccS, workers, ccP)
		}
		// The sparse fire/skip pattern is part of the contract: a skipped
		// barrier under one worker count but not another would mean the
		// predicate saw different staged effects.
		syncS, syncP := serial.Fleet.SyncStats(), parallel.Fleet.SyncStats()
		syncS.Steals, syncP.Steals = 0, 0 // scheduling detail, not an outcome
		if !reflect.DeepEqual(syncS, syncP) {
			t.Errorf("barrier pattern diverges:\nworkers=1: %+v\nworkers=%d: %+v", syncS, workers, syncP)
		}
	}
}

// TestSurgeWorkerCountInvariance extends the determinism contract to
// the overload path: a 10× burst with per-lane admission controllers,
// per-lane surge injectors and shed-retry timers must produce
// bit-for-bit identical stats for any worker count. (Unlike FaultPlan,
// SurgePlan must not force serial execution — each lane owns a derived
// injector stream.)
func TestSurgeWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two surge runs")
	}
	mk := func(workers int) (workload.OverloadStats, map[workload.Class]int64) {
		cfg := surgeQuick(7)
		cfg.Workers = workers
		cfg.Overload = SurgeOverloadConfig()
		cfg.SurgePlan = SurgeLatencyPlan()
		cfg.SurgeBursts = []workload.SurgeBurst{{Day: 1, Hour: 10, Hours: 3, Intensity: 10}}
		run := NewRun(cfg)
		return run.Fleet.OverloadStats(), run.Fleet.ClassCounts()
	}
	sS, ccS := mk(1)
	sP, ccP := mk(8)
	if !reflect.DeepEqual(sS, sP) {
		t.Errorf("overload stats diverge across worker counts:\nworkers=1: %+v\nworkers=8: %+v", sS, sP)
	}
	if !reflect.DeepEqual(ccS, ccP) {
		t.Errorf("class counts diverge across worker counts:\nworkers=1: %v\nworkers=8: %v", ccS, ccP)
	}
	if sS.Ctl.ShedTotal() == 0 {
		t.Error("surge run shed nothing; invariance check is vacuous")
	}
}

// TestChaosSurgeWorkerCountInvariance runs the heaviest combined
// configuration — a FaultPlan (which forces serial lane execution, since
// the injector draws from one shared RNG) together with a SurgePlan,
// admission controllers and a 10× burst — and checks that a requested
// worker pool still changes nothing. It also asserts the sparse-barrier
// ledger is genuinely exercised on this path: chaos runs go through the
// same fire/skip predicate as parallel ones.
func TestChaosSurgeWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two chaos+surge runs")
	}
	mk := func(workers int) *Run {
		cfg := surgeQuick(7)
		cfg.Workers = workers
		cfg.FaultPlan = faults.DefaultChaosPlan()
		cfg.Overload = SurgeOverloadConfig()
		cfg.SurgePlan = SurgeLatencyPlan()
		cfg.SurgeBursts = []workload.SurgeBurst{{Day: 1, Hour: 10, Hours: 3, Intensity: 10}}
		return NewRun(cfg)
	}
	a, b := mk(1), mk(8)
	if sA, sB := a.Fleet.OverloadStats(), b.Fleet.OverloadStats(); !reflect.DeepEqual(sA, sB) {
		t.Errorf("overload stats diverge under faults:\nworkers=1: %+v\nworkers=8: %+v", sA, sB)
	}
	if ccA, ccB := a.Fleet.ClassCounts(), b.Fleet.ClassCounts(); !reflect.DeepEqual(ccA, ccB) {
		t.Errorf("class counts diverge under faults:\nworkers=1: %v\nworkers=8: %v", ccA, ccB)
	}
	sync := a.Fleet.SyncStats()
	if !reflect.DeepEqual(sync, b.Fleet.SyncStats()) {
		t.Errorf("barrier pattern diverges under faults: %+v vs %+v", sync, b.Fleet.SyncStats())
	}
	if sync.BarriersFired == 0 || sync.BarriersFired+sync.BarriersSkipped != sync.Epochs {
		t.Errorf("ledger not exercised on the serial chaos path: %+v", sync)
	}
}
