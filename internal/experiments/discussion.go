package experiments

import (
	"repro/internal/core"
	"repro/internal/report"
)

// DiscussionResult computes the §6 summary figures — the numbers the
// paper distils for the "should you deploy CR?" debate:
//
//   - Whitelist assumptions: 94% (31/33) of inbox mail comes from already
//     whitelisted senders; only ~6% needed a challenge phase and ~2% a
//     manual digest pick.
//   - Delivery delay: the challenge phase concerns ~4.3% of incoming
//     inbox-bound mail; half of delayed messages arrive within 30
//     minutes; only ~0.6% wait more than a day.
//   - Challenge traffic: one challenge per ~21 incoming emails; most
//     challenges are useless (only ~5% solved) but a CR system without
//     useless challenges would itself be useless.
type DiscussionResult struct {
	// Inbox composition (fractions of delivered messages).
	InboxWhitelisted float64 // paper: 94%
	InboxChallenge   float64 // paper: ~6% (with digest)
	InboxDigest      float64 // paper: ~2%
	// Delay impact.
	DelayedOverDay float64 // fraction of inbox mail delayed >1 day (paper: 0.6%)
	DelayedMedian  float64 // median delay of non-instant deliveries, minutes
	// Challenge traffic.
	EmailsPerChallenge float64 // paper: ~21
	ChallengesUseless  float64 // unsolved fraction (paper: ~95%)
}

// Discussion computes the §6 aggregate.
func Discussion(r *Run) DiscussionResult {
	var out DiscussionResult
	var total, white, chall, digest, overDay int
	delayed := make([]float64, 0, 1024)
	for _, c := range r.Fleet.Companies {
		for _, d := range c.Engine.Deliveries() {
			total++
			switch d.Via {
			case core.ViaWhitelist:
				white++
			case core.ViaChallenge:
				chall++
			case core.ViaDigest:
				digest++
			}
			if d.Via != core.ViaWhitelist {
				mins := d.Delay().Minutes()
				delayed = append(delayed, mins)
				if mins > 24*60 {
					overDay++
				}
			}
		}
	}
	if total > 0 {
		out.InboxWhitelisted = float64(white) / float64(total)
		out.InboxChallenge = float64(chall+digest) / float64(total)
		out.InboxDigest = float64(digest) / float64(total)
		out.DelayedOverDay = float64(overDay) / float64(total)
	}
	if len(delayed) > 0 {
		out.DelayedMedian = median(delayed)
	}
	rt := ComputeRatios(r)
	out.EmailsPerChallenge = rt.EmailsPerChal
	ds := DeliveryStatus(r)
	out.ChallengesUseless = 1 - ds.SolvedFrac
	return out
}

func median(xs []float64) float64 {
	// Selection by sorting a copy; n is small (delivery log).
	cp := make([]float64, len(xs))
	copy(cp, xs)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// RenderDiscussion renders the §6 summary.
func RenderDiscussion(r *Run) string {
	d := Discussion(r)
	f := &report.Figure{Title: "Section 6 — discussion summary (paper: 94% of inbox pre-whitelisted; delay >1 day for 0.6%; 1 challenge per ~21 emails; ~95% of challenges useless)"}
	f.Addf("inbox from whitelisted senders:   %s (paper 94%%)", report.Percent(d.InboxWhitelisted))
	f.Addf("inbox via challenge or digest:    %s (paper ~6%%)", report.Percent(d.InboxChallenge))
	f.Addf("inbox via digest alone:           %s (paper ~2%%)", report.Percent(d.InboxDigest))
	f.Addf("inbox delayed more than a day:    %s (paper 0.6%%)", report.Percent(d.DelayedOverDay))
	f.Addf("median delay of delayed mail:     %.0f minutes (paper: half under 30)", d.DelayedMedian)
	f.Addf("incoming emails per challenge:    %.1f (paper ~21)", d.EmailsPerChallenge)
	f.Addf("challenges never solved:          %s (paper ~95%%)", report.Percent(d.ChallengesUseless))
	return f.Render()
}
