package experiments

import (
	"testing"

	"repro/internal/faults"
)

// TestDSNFeedbackCrossValidation is the end-to-end acceptance check for
// the DSN feedback loop: with EmitDSNs on, engines learn challenge
// fates only by parsing RFC 3464 bounces, and the bounce flags feeding
// the §4.1 clustering must reproduce the simulator's omniscient truth.
func TestDSNFeedbackCrossValidation(t *testing.T) {
	cfg := Quick(42)
	cfg.EmitDSNs = true
	r := NewRun(cfg)
	cl := Clustering(r)
	if cl.TruthBounced == 0 {
		t.Fatal("run produced no bounced challenges to validate against")
	}
	if cl.ObservedBounced == 0 {
		t.Fatal("no DSN was parsed back into a bounce observation")
	}
	// Every truth-bounce travels back as a parseable DSN in the
	// simulation, so the log-derived view must match truth exactly.
	if cl.BounceAgreement < 1 {
		t.Fatalf("bounce agreement = %.4f (observed %d / truth %d), want 1.0",
			cl.BounceAgreement, cl.ObservedBounced, cl.TruthBounced)
	}

	// The engines' per-class counters carry the same evidence.
	var bounced, loops int64
	for _, c := range r.Fleet.Companies {
		m := c.Engine.Metrics()
		for _, n := range m.ChallengeBounced {
			bounced += n
		}
		loops += m.ChallengeLoopSuppressed
	}
	if bounced == 0 {
		t.Fatal("no engine counted a correlated challenge bounce")
	}
	if loops != 0 {
		t.Fatalf("loop suppression fired %d time(s) in a single-CR fleet", loops)
	}

	// The clustering shape survives the switch from transport callback
	// to DSN feedback: botnet clusters still bounce more than
	// newsletter clusters.
	if cl.Stats.LowSimBounced <= cl.Stats.HighSimBounced {
		t.Fatalf("bounced: low %v <= high %v", cl.Stats.LowSimBounced, cl.Stats.HighSimBounced)
	}
}

// TestDSNGarbledByFaultDegradesSafely: the "outbound-dsn" fault target
// mangles every bounce body at the remote MTA. The engines must shrug —
// unparsable bounces are quarantined like any null-sender message, the
// run completes, and the observed-bounce view simply goes dark instead
// of going wrong.
func TestDSNGarbledByFaultDegradesSafely(t *testing.T) {
	cfg := Quick(42)
	cfg.EmitDSNs = true
	cfg.FaultPlan = &faults.Plan{Rules: []faults.Rule{
		{Target: "outbound-dsn", Kind: faults.KindError},
	}}
	r := NewRun(cfg)
	cl := Clustering(r)
	if cl.TruthBounced == 0 {
		t.Fatal("run produced no bounced challenges")
	}
	if cl.ObservedBounced != 0 {
		t.Fatalf("parsed %d bounce(s) out of 100%% garbled DSNs", cl.ObservedBounced)
	}
	for _, c := range r.Fleet.Companies {
		if n := len(c.Engine.ObservedBounces()); n != 0 {
			t.Fatalf("engine %s observed %d bounce(s) from garbage", c.Name, n)
		}
	}
}
