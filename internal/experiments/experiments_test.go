package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/whitelist"
)

// sharedRun is built once: the experiment drivers are read-only over it.
var (
	runOnce   sync.Once
	sharedRun *Run
)

func testRun(t *testing.T) *Run {
	t.Helper()
	runOnce.Do(func() { sharedRun = NewRun(Quick(42)) })
	return sharedRun
}

func TestLifecycleShape(t *testing.T) {
	r := testRun(t)
	lc := Lifecycle(r)

	// Figure 1: ~757/1000 dropped at the MTA for closed servers.
	if lc.Per1000.Dropped < 600 || lc.Per1000.Dropped > 850 {
		t.Fatalf("dropped per 1000 = %v, want ~757", lc.Per1000.Dropped)
	}
	// White ~31, black ~4, gray ~208 per 1000.
	if lc.Per1000.White < 15 || lc.Per1000.White > 60 {
		t.Fatalf("white per 1000 = %v, want ~31", lc.Per1000.White)
	}
	if lc.Per1000.Gray < 120 || lc.Per1000.Gray > 320 {
		t.Fatalf("gray per 1000 = %v, want ~208", lc.Per1000.Gray)
	}
	if lc.Per1000.Challenges < 20 || lc.Per1000.Challenges > 90 {
		t.Fatalf("challenges per 1000 = %v, want ~48", lc.Per1000.Challenges)
	}
	// Unknown recipient dominates the drop reasons (paper: 62.36%).
	if lc.DropReasons[core.UnknownRecipient] < 0.5 {
		t.Fatalf("unknown-recipient drops = %v, want dominant", lc.DropReasons[core.UnknownRecipient])
	}
	// Unresolvable is the second-largest (paper: 4.19%).
	if lc.DropReasons[core.Unresolvable] < 0.02 || lc.DropReasons[core.Unresolvable] > 0.09 {
		t.Fatalf("unresolvable drops = %v, want ~0.042", lc.DropReasons[core.Unresolvable])
	}
	// Gray breakdown: filters drop roughly half (paper: 54%).
	if lc.GrayBreakdown.FilterDropped < 0.35 || lc.GrayBreakdown.FilterDropped > 0.75 {
		t.Fatalf("gray filter-drop = %v, want ~0.54", lc.GrayBreakdown.FilterDropped)
	}
	// Per-filter ordering matches the paper: RBL > rDNS > AV.
	if !(lc.FilterShares["rbl"] > lc.FilterShares["reverse-dns"] &&
		lc.FilterShares["reverse-dns"] > lc.FilterShares["antivirus"]) {
		t.Fatalf("filter shares ordering wrong: %v", lc.FilterShares)
	}
	// Open relays challenge a larger share of gray (paper: +9%).
	if lc.OpenRelayGray.Challenged <= lc.GrayBreakdown.Challenged {
		t.Logf("note: open-relay challenge share %.3f vs closed %.3f (paper: open higher)",
			lc.OpenRelayGray.Challenged, lc.GrayBreakdown.Challenged)
	}
}

func TestRatiosShape(t *testing.T) {
	r := testRun(t)
	rt := ComputeRatios(r)
	// Paper: R = 19.3% at the CR filter, 4.8% at the MTA.
	if rt.ReflectionCR < 0.08 || rt.ReflectionCR > 0.35 {
		t.Fatalf("R@CR = %v, want ~0.19", rt.ReflectionCR)
	}
	if rt.ReflectionMTA < 0.02 || rt.ReflectionMTA > 0.10 {
		t.Fatalf("R@MTA = %v, want ~0.048", rt.ReflectionMTA)
	}
	// Paper: RT = 2.5% (challenges are small; incoming mail is bigger).
	if rt.ReflectedRT < 0.005 || rt.ReflectedRT > 0.12 {
		t.Fatalf("RT = %v, want ~0.025", rt.ReflectedRT)
	}
	// Paper: one challenge per ~21 incoming emails.
	if rt.EmailsPerChal < 10 || rt.EmailsPerChal > 50 {
		t.Fatalf("emails/challenge = %v, want ~21", rt.EmailsPerChal)
	}
	// β < R always; paper worst case 8.7% at CR.
	if rt.BackscatterCR >= rt.ReflectionCR || rt.BackscatterCR <= 0 {
		t.Fatalf("β = %v vs R = %v", rt.BackscatterCR, rt.ReflectionCR)
	}
}

func TestDeliveryStatusShape(t *testing.T) {
	r := testRun(t)
	ds := DeliveryStatus(r)
	if ds.Total == 0 {
		t.Fatal("no challenges recorded")
	}
	// Paper: 49% delivered.
	if ds.DeliveredFrac < 0.3 || ds.DeliveredFrac > 0.7 {
		t.Fatalf("delivered = %v, want ~0.49", ds.DeliveredFrac)
	}
	// Paper: 71.7% of undelivered are no-user bounces.
	if ds.BouncedNoUser < 0.5 || ds.BouncedNoUser > 0.95 {
		t.Fatalf("bounced-no-user share = %v, want ~0.717", ds.BouncedNoUser)
	}
	// Paper: ~94% of delivered challenge URLs never opened.
	if ds.NeverOpened < 0.75 {
		t.Fatalf("never-opened = %v, want ~0.94", ds.NeverOpened)
	}
	// Paper: ~4% of challenges solved (2-12% across companies).
	if ds.SolvedFrac < 0.01 || ds.SolvedFrac > 0.15 {
		t.Fatalf("solved = %v, want ~0.04", ds.SolvedFrac)
	}
	// Pending must be negligible after the run drains.
	if f := ds.Fractions[simnet.StatusPending]; f > 0.1 {
		t.Fatalf("pending = %v", f)
	}
}

func TestCaptchaTriesShape(t *testing.T) {
	r := testRun(t)
	ct := CaptchaTries(r)
	if ct.Solved == 0 {
		t.Fatal("no solves")
	}
	// Paper: never more than five attempts.
	if ct.MaxTries > 5 {
		t.Fatalf("max tries = %d, want <= 5", ct.MaxTries)
	}
	// First-try solves dominate.
	if len(ct.Tries) == 0 || ct.Tries[0] < 0.5 {
		t.Fatalf("first-try fraction = %v, want > 0.5", ct.Tries)
	}
}

func TestSPFWhatIfShape(t *testing.T) {
	r := testRun(t)
	sp := SPFWhatIf(r)
	// SPF must remove some bad challenges at a small cost to solved ones
	// (paper: 2.5% of bad vs 0.25% of solved).
	if sp.BadRemoved <= 0 {
		t.Fatalf("SPF removed no bad challenges: %+v", sp)
	}
	if sp.SolvedLost >= sp.BadRemoved {
		t.Fatalf("SPF cost (%v) >= benefit (%v)", sp.SolvedLost, sp.BadRemoved)
	}
	if sp.SolvedLost > 0.05 {
		t.Fatalf("SPF solved-lost = %v, want near 0", sp.SolvedLost)
	}
}

func TestBlacklistingShape(t *testing.T) {
	r := testRun(t)
	bl := Blacklisting(r)
	if len(bl.Rows) != r.Cfg.Companies {
		t.Fatalf("rows = %d", len(bl.Rows))
	}
	// Paper: most servers never listed (75%), and no correlation between
	// size and listing.
	if bl.NeverListed == 0 {
		t.Fatal("every server got listed; paper found 75% never listed")
	}
	// The Quick preset has only 12 companies, so the Pearson estimate is
	// noisy; the 47-company standard run lands near +0.4 (vs the paper's
	// "no relationship"). Guard against a strong systematic coupling.
	if bl.CorrSizeListing > 0.85 {
		t.Fatalf("corr(challenges, listed) = %v; paper found no relationship", bl.CorrSizeListing)
	}
	if bl.TrapHits == 0 {
		t.Fatal("no trap hits; the blacklisting channel never fired")
	}
}

func TestClusteringShape(t *testing.T) {
	r := testRun(t)
	cl := Clustering(r)
	if cl.Stats.Clusters == 0 {
		t.Fatal("no clusters found")
	}
	if cl.Stats.LowSim == 0 || cl.Stats.HighSim == 0 {
		t.Fatalf("similarity split degenerate: %+v", cl.Stats)
	}
	// High-similarity (newsletter) clusters solve far more than botnet
	// clusters; botnet clusters bounce far more.
	if cl.Stats.HighSimSolved <= cl.Stats.LowSimSolved {
		t.Fatalf("solved: high %v <= low %v", cl.Stats.HighSimSolved, cl.Stats.LowSimSolved)
	}
	if cl.Stats.LowSimBounced <= cl.Stats.HighSimBounced {
		t.Fatalf("bounced: low %v <= high %v", cl.Stats.LowSimBounced, cl.Stats.HighSimBounced)
	}
	// Spurious deliveries are rare (paper: ~1e-4 per challenge).
	if cl.SpuriousPerChallenge > 0.01 {
		t.Fatalf("spurious rate = %v, want ~1e-4", cl.SpuriousPerChallenge)
	}
}

func TestDelayCDFShape(t *testing.T) {
	r := testRun(t)
	dc := DelayCDF(r)
	if dc.Captcha.N() == 0 || dc.Digest.N() == 0 {
		t.Fatalf("CDF samples: captcha=%d digest=%d", dc.Captcha.N(), dc.Digest.N())
	}
	// Paper: 30% under 5 min, 50% under 30 min for solved challenges.
	if dc.CaptchaUnder5Min < 0.1 || dc.CaptchaUnder5Min > 0.6 {
		t.Fatalf("captcha <5min = %v, want ~0.30", dc.CaptchaUnder5Min)
	}
	if dc.CaptchaUnder30Min < dc.CaptchaUnder5Min {
		t.Fatal("CDF not monotone")
	}
	if dc.CaptchaUnder30Min < 0.3 || dc.CaptchaUnder30Min > 0.8 {
		t.Fatalf("captcha <30min = %v, want ~0.50", dc.CaptchaUnder30Min)
	}
	// Digest deliveries are slow: between 4h and 3 days in the paper.
	if dc.DigestUnder3Days < 0.5 {
		t.Fatalf("digest <3d = %v", dc.DigestUnder3Days)
	}
}

func TestSolveTimeShape(t *testing.T) {
	r := testRun(t)
	st := SolveTimeDist(r)
	if st.Solves == 0 {
		t.Fatal("no solves")
	}
	// Paper (Figure 8): solves concentrate below 4 hours.
	if st.Under4HFrac < 0.5 {
		t.Fatalf("solves under 4h = %v, want majority", st.Under4HFrac)
	}
}

func TestWhitelistChurnShape(t *testing.T) {
	r := testRun(t)
	ch := WhitelistChurn(r)
	if ch.ModifiedUsers == 0 {
		t.Fatal("no whitelist changed")
	}
	// Figure 9: the 1-10 bucket dominates (51.1% in the paper).
	fr := ch.Hist.Fractions()
	maxIdx := 0
	for i, f := range fr {
		if f > fr[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx > 2 {
		t.Fatalf("modal churn bucket = %d, want low-churn dominance: %v", maxIdx, fr)
	}
	// Mean churn near the paper's 0.3 new entries/user/day.
	if ch.MeanNewPerUserDay > 3 {
		t.Fatalf("mean churn = %v entries/user/day, want ~0.3", ch.MeanNewPerUserDay)
	}
}

func TestWhitelistSources(t *testing.T) {
	r := testRun(t)
	src := WhitelistSources(r)
	if src[whitelist.SourceSeed] == 0 || src[whitelist.SourceChallenge] == 0 {
		t.Fatalf("sources missing: %v", src)
	}
	if src[whitelist.SourceOutbound] == 0 {
		t.Fatal("no outbound-driven whitelist additions")
	}
}

func TestDailyPendingShape(t *testing.T) {
	r := testRun(t)
	ps := DailyPending(r)
	if len(ps) != 3 {
		t.Fatalf("archetypes = %d, want 3", len(ps))
	}
	if len(ps[0].Series) != r.Cfg.Days {
		t.Fatalf("series length = %d, want %d", len(ps[0].Series), r.Cfg.Days)
	}
	// Ordered largest to smallest mean.
	if ps[0].Mean < ps[2].Mean {
		t.Fatalf("archetype ordering wrong: %v vs %v", ps[0].Mean, ps[2].Mean)
	}
}

func TestCorrelationsShape(t *testing.T) {
	r := testRun(t)
	co := Correlations(r)
	if len(co.Companies) != r.Cfg.Companies {
		t.Fatalf("companies = %d", len(co.Companies))
	}
	// users vs emails: clearly positive (volume tracks size).
	if v, _ := co.Matrix.Get("users", "emails"); v < 0.3 {
		t.Fatalf("corr(users, emails) = %v, want positive", v)
	}
	// reflection vs users: the paper's headline is NO correlation.
	if v, _ := co.Matrix.Get("reflection", "users"); v > 0.5 || v < -0.5 {
		t.Fatalf("corr(reflection, users) = %v; paper found none", v)
	}
	// reflection vs white: small inverse correlation in the paper.
	if v, _ := co.Matrix.Get("reflection", "white"); v > 0.1 {
		t.Fatalf("corr(reflection, white) = %v, want negative-ish", v)
	}
}

func TestGeneralStats(t *testing.T) {
	r := testRun(t)
	g := General(r)
	if g.Companies != r.Cfg.Companies || g.UsersProtected == 0 {
		t.Fatalf("general stats degenerate: %+v", g)
	}
	if g.TotalIncoming == 0 || g.ChallengesSent == 0 || g.SolvedCaptchas == 0 {
		t.Fatalf("counters zero: %+v", g)
	}
	if g.DroppedByFilters != g.DroppedRBL+g.DroppedReverseDNS+g.DroppedAntivirus {
		t.Fatal("filter drops don't sum")
	}
	if g.WhitelistedDigest == 0 {
		t.Fatal("no digest whitelisting happened")
	}
	// The spool identity: incoming = dropped + white + black + gray.
	if g.TotalIncoming != g.DroppedAtMTA+g.WhiteSpool+g.BlackSpool+g.GraySpool {
		t.Fatalf("spool identity violated: %d != %d+%d+%d+%d",
			g.TotalIncoming, g.DroppedAtMTA, g.WhiteSpool, g.BlackSpool, g.GraySpool)
	}
}

func TestSplitAblation(t *testing.T) {
	r := testRun(t)
	ab := SplitAblation(r)
	if ab.SharedCompanies+ab.SplitCompanies != r.Cfg.Companies {
		t.Fatalf("ablation partition wrong: %+v", ab)
	}
	if ab.SplitCompanies == 0 {
		t.Fatal("no split-MTA-OUT companies in fleet")
	}
	// Split user-mail IPs should never be listed (they send no
	// challenges), while shared IPs may be.
	if ab.SplitListedFrac > ab.SharedListedFrac {
		t.Fatalf("split exposure %v > shared %v", ab.SplitListedFrac, ab.SharedListedFrac)
	}
}

func TestSPFOnlineAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two fleet simulations")
	}
	res := SPFOnline(7, 6, 4)
	if res.ChallengesBaseline == 0 || res.ChallengesWithSPF == 0 {
		t.Fatalf("degenerate ablation: %+v", res)
	}
	// The SPF filter must reduce challenge volume (it pre-drops spoofed
	// gray mail) without destroying the solved population.
	if res.ChallengesWithSPF >= res.ChallengesBaseline {
		t.Fatalf("SPF did not reduce challenges: %d -> %d",
			res.ChallengesBaseline, res.ChallengesWithSPF)
	}
	if res.SPFDrops == 0 {
		t.Fatal("SPF filter never fired")
	}
	if res.SolvedLost > 0.5 {
		t.Fatalf("SPF destroyed %v of solved challenges", res.SolvedLost)
	}
}

func TestGreylistAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two fleet simulations")
	}
	res := GreylistAblation(7, 6, 4)
	// Greylisting cuts challenge volume hard: fire-and-forget spam never
	// retries, so most spoofed gray mail never reaches the CR engine.
	if res.ChallengeReduction < 0.3 {
		t.Fatalf("greylist challenge reduction = %v, want substantial", res.ChallengeReduction)
	}
	// Wanted (whitelisted) mail still arrives — just delayed. Allow a
	// tolerance for end-of-run retries still in flight.
	if float64(res.WhiteWithGrey) < 0.85*float64(res.WhiteBaseline) {
		t.Fatalf("white deliveries dropped: %d -> %d", res.WhiteBaseline, res.WhiteWithGrey)
	}
	// Backscatter exposure shrinks with challenge volume.
	if res.TrapHitsWithGrey > res.TrapHitsBaseline {
		t.Fatalf("trap hits rose under greylisting: %d -> %d",
			res.TrapHitsBaseline, res.TrapHitsWithGrey)
	}
}

func TestRateCapAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two fleet simulations")
	}
	res := RateCapAblation(7, 6, 4, 1)
	if res.ChallengesCapped >= res.ChallengesBaseline {
		t.Fatalf("cap did not reduce challenges: %d -> %d",
			res.ChallengesBaseline, res.ChallengesCapped)
	}
	if res.RateLimited == 0 {
		t.Fatal("cap never fired")
	}
	if res.TrapHitsCapped > res.TrapHitsBaseline {
		t.Fatalf("trap hits rose under the cap: %d -> %d",
			res.TrapHitsBaseline, res.TrapHitsCapped)
	}
	// The cap's hard bound: at most cap * hours * companies challenges.
	maxPossible := int64(1 * 24 * 4 * 6)
	if res.ChallengesCapped > maxPossible {
		t.Fatalf("capped challenges %d exceed bound %d", res.ChallengesCapped, maxPossible)
	}
}

func TestDiscussionShape(t *testing.T) {
	r := testRun(t)
	d := Discussion(r)
	// The whitelist assumption: the overwhelming majority of inbox mail
	// comes from known senders (paper: 94%).
	if d.InboxWhitelisted < 0.75 {
		t.Fatalf("inbox whitelisted = %v, want dominant", d.InboxWhitelisted)
	}
	if d.InboxChallenge > 0.25 {
		t.Fatalf("challenge-phase inbox share = %v, want small", d.InboxChallenge)
	}
	if d.InboxDigest > d.InboxChallenge {
		t.Fatal("digest share exceeds challenge+digest share")
	}
	// Delay >1 day affects a sliver of the inbox (paper: 0.6%).
	if d.DelayedOverDay > 0.1 {
		t.Fatalf("delayed >1d = %v, want tiny", d.DelayedOverDay)
	}
	// Most challenges are never solved (paper ~95%).
	if d.ChallengesUseless < 0.8 {
		t.Fatalf("useless challenges = %v, want ~0.95", d.ChallengesUseless)
	}
}

func TestSPFCategoryString(t *testing.T) {
	for c, want := range map[SPFCategory]string{
		SPFSolved: "solved", SPFDeliveredUnsolved: "delivered-unsolved",
		SPFBounced: "bounced", SPFExpired: "expired",
	} {
		if c.String() != want {
			t.Errorf("SPFCategory(%d) = %q, want %q", int(c), c.String(), want)
		}
	}
}
