package experiments

import (
	"sort"

	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/simnet"
	"repro/internal/spf"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- E1/E2/E3: Figure 1 lifecycle, Figure 2 MTA-IN, Figure 3 engine ---

// LifecycleResult is the Figure 1 "weighted lifecycle": the fate of 1,000
// messages arriving at a (non-open-relay) MTA-IN, plus the §2 drop-reason
// breakdown and the Figure 3 gray-spool categorisation for both relay
// configurations.
type LifecycleResult struct {
	// Per-1,000 figures for closed (non-open-relay) installations,
	// matching the paper's Figure 1 normalisation.
	Per1000 struct {
		Dropped    float64
		White      float64
		Black      float64
		Gray       float64
		Challenges float64
	}
	// DropReasons are fractions of all incoming (closed installations).
	DropReasons map[core.MTAReason]float64
	// GrayBreakdown are fractions of the gray spool (closed).
	GrayBreakdown struct {
		FilterDropped float64
		Challenged    float64
		Suppressed    float64 // held behind an outstanding challenge
		NullSender    float64
	}
	// OpenRelayGray is the same breakdown for open-relay installations;
	// the paper reports ~9% more challenges there.
	OpenRelayGray struct {
		FilterDropped float64
		Challenged    float64
	}
	// FilterShares are each auxiliary filter's share of gray drops.
	FilterShares map[string]float64
}

// Lifecycle computes E1–E3.
func Lifecycle(r *Run) LifecycleResult {
	agg := r.Aggregate()
	var out LifecycleResult
	c := agg.Closed
	if c.MTAIncoming > 0 {
		scale := 1000 / float64(c.MTAIncoming)
		out.Per1000.Dropped = float64(c.TotalMTADropped()) * scale
		out.Per1000.White = float64(c.SpoolWhite) * scale
		out.Per1000.Black = float64(c.SpoolBlack) * scale
		out.Per1000.Gray = float64(c.SpoolGray) * scale
		out.Per1000.Challenges = float64(c.ChallengesSent) * scale
		out.DropReasons = make(map[core.MTAReason]float64)
		for k, v := range c.MTADropped {
			out.DropReasons[k] = float64(v) / float64(c.MTAIncoming)
		}
	}
	if c.SpoolGray > 0 {
		g := float64(c.SpoolGray)
		out.GrayBreakdown.FilterDropped = float64(c.TotalFilterDropped()) / g
		out.GrayBreakdown.Challenged = float64(c.ChallengesSent) / g
		out.GrayBreakdown.Suppressed = float64(c.ChallengeSuppressed) / g
		out.GrayBreakdown.NullSender = float64(c.QuarantineOnly) / g
		out.FilterShares = make(map[string]float64)
		total := float64(c.TotalFilterDropped())
		if total > 0 {
			for k, v := range c.FilterDropped {
				out.FilterShares[k] = float64(v) / total
			}
		}
	}
	if o := agg.OpenRelay; o.SpoolGray > 0 {
		g := float64(o.SpoolGray)
		out.OpenRelayGray.FilterDropped = float64(o.TotalFilterDropped()) / g
		out.OpenRelayGray.Challenged = float64(o.ChallengesSent) / g
	}
	return out
}

// --- E15: the §3 scalar ratios ---

// Ratios are the headline scalars of §3: reflection ratio at the CR
// filter and at the MTA-IN, reflected traffic ratio, the backscatter
// bound β, and the "one challenge per N emails" figure from §6.
type Ratios struct {
	ReflectionCR   float64 // paper: 0.193
	ReflectionMTA  float64 // paper: 0.048
	ReflectedRT    float64 // paper: 0.025
	EmailsPerChal  float64 // paper: ~21
	BackscatterCR  float64 // worst case, paper: 0.087
	BackscatterMTA float64 // paper: 0.021
}

// ComputeRatios computes E15. Backscatter β multiplies the reflection
// ratio by the fraction of challenges that were delivered but never
// solved (the paper's worst-case upper bound for misdirected challenges
// reaching real users).
func ComputeRatios(r *Run) Ratios {
	agg := r.Aggregate().All
	st := r.Fleet.Net.DeliveryStats()
	var rt Ratios
	rt.ReflectionCR = agg.ReflectionRatio()
	rt.ReflectionMTA = agg.ReflectionRatioMTA()
	rt.ReflectedRT = agg.ReflectedTrafficRatio()
	if agg.ChallengesSent > 0 {
		rt.EmailsPerChal = float64(agg.MTAIncoming) / float64(agg.ChallengesSent)
	}
	if st.Total > 0 {
		deliveredUnsolved := float64(st.ByStatus[simnet.StatusDelivered]-st.Solved) / float64(st.Total)
		rt.BackscatterCR = rt.ReflectionCR * deliveredUnsolved
		rt.BackscatterMTA = rt.ReflectionMTA * deliveredUnsolved
	}
	return rt
}

// --- E5: Figure 4(a) challenge delivery status ---

// DeliveryStatusResult is the Figure 4(a) distribution plus the §3.2
// bounce decomposition and URL-visit statistics.
type DeliveryStatusResult struct {
	Total          int
	Fractions      map[simnet.ChallengeStatus]float64
	DeliveredFrac  float64 // paper: 0.49
	BouncedNoUser  float64 // fraction of undelivered that bounced no-user (paper: 0.717)
	SolvedFrac     float64 // of all challenges (paper: ~0.04)
	NeverOpened    float64 // of delivered challenges (paper: ~0.94)
	VisitedNotSolv float64 // of delivered challenges (paper: ~0.0025 of delivered)
}

// DeliveryStatus computes E5.
func DeliveryStatus(r *Run) DeliveryStatusResult {
	st := r.Fleet.Net.DeliveryStats()
	out := DeliveryStatusResult{Total: st.Total, Fractions: make(map[simnet.ChallengeStatus]float64)}
	if st.Total == 0 {
		return out
	}
	tot := float64(st.Total)
	for k, v := range st.ByStatus {
		out.Fractions[k] = float64(v) / tot
	}
	delivered := st.ByStatus[simnet.StatusDelivered]
	out.DeliveredFrac = float64(delivered) / tot
	undelivered := st.Total - delivered
	if undelivered > 0 {
		bounced := st.ByStatus[simnet.StatusBouncedNoUser] + st.ByStatus[simnet.StatusBouncedNoDomain]
		out.BouncedNoUser = float64(bounced) / float64(undelivered)
	}
	out.SolvedFrac = float64(st.Solved) / tot
	if delivered > 0 {
		out.NeverOpened = float64(st.NeverVisited) / float64(delivered)
		out.VisitedNotSolv = float64(st.VisitedOnly) / float64(delivered)
	}
	return out
}

// --- E6: Figure 4(b) CAPTCHA attempts ---

// CaptchaTriesResult is the attempts histogram over solved challenges.
type CaptchaTriesResult struct {
	// Tries[i] is the fraction of solves that took i+1 attempts.
	Tries  []float64
	Solved int
	// MaxTries is the largest observed attempt count (paper: never >5).
	MaxTries int
}

// CaptchaTries computes E6.
func CaptchaTries(r *Run) CaptchaTriesResult {
	hist := r.Fleet.Net.AttemptsHistogram()
	out := CaptchaTriesResult{}
	for tries, n := range hist {
		out.Solved += n
		if tries > out.MaxTries {
			out.MaxTries = tries
		}
	}
	if out.MaxTries == 0 {
		return out
	}
	out.Tries = make([]float64, out.MaxTries)
	for tries, n := range hist {
		out.Tries[tries-1] = float64(n) / float64(out.Solved)
	}
	return out
}

// --- E14: Figure 12 SPF what-if ---

// SPFCategory mirrors the paper's Figure 12 grouping of challenges.
type SPFCategory int

// Figure 12 categories.
const (
	// SPFSolved: the challenge was solved (losing these is the cost).
	SPFSolved SPFCategory = iota
	// SPFDeliveredUnsolved: delivered but ignored (backscatter risk).
	SPFDeliveredUnsolved
	// SPFBounced: the challenge bounced.
	SPFBounced
	// SPFExpired: the challenge expired undelivered.
	SPFExpired
)

// String returns the category label.
func (c SPFCategory) String() string {
	switch c {
	case SPFSolved:
		return "solved"
	case SPFDeliveredUnsolved:
		return "delivered-unsolved"
	case SPFBounced:
		return "bounced"
	case SPFExpired:
		return "expired"
	default:
		return "unknown"
	}
}

// SPFResult is the offline what-if: for each challenge category, the
// fraction of the original gray messages that an SPF filter would have
// dropped (preventing the challenge).
type SPFResult struct {
	// FailFrac[cat] = would-be-dropped fraction within the category.
	FailFrac map[SPFCategory]float64
	Totals   map[SPFCategory]int
	// BadRemoved is the fraction of all non-solved challenges removed.
	BadRemoved float64
	// SolvedLost is the fraction of solved challenges removed (cost).
	SolvedLost float64
}

// SPFWhatIf computes E14: it re-evaluates SPF for the message behind
// every challenge, exactly like the paper's offline tool over the gray
// spool.
func SPFWhatIf(r *Run) SPFResult {
	checker := spf.New(r.Fleet.DNS)
	gl := r.Fleet.GrayLog()
	fails := make(map[SPFCategory]int)
	totals := make(map[SPFCategory]int)
	for _, rec := range r.Fleet.Net.Records() {
		entry, ok := gl[rec.Challenge.MsgID]
		if !ok {
			continue
		}
		var cat SPFCategory
		switch {
		case rec.Solved:
			cat = SPFSolved
		case rec.Status == simnet.StatusDelivered:
			cat = SPFDeliveredUnsolved
		case rec.Status.Bounced():
			cat = SPFBounced
		default:
			cat = SPFExpired
		}
		totals[cat]++
		if entry.From.IsNull() {
			continue
		}
		if checker.Check(entry.ClientIP, entry.From.Domain) == spf.Fail {
			fails[cat]++
		}
	}
	out := SPFResult{FailFrac: make(map[SPFCategory]float64), Totals: totals}
	var badFail, badTotal int
	for cat, tot := range totals {
		if tot > 0 {
			out.FailFrac[cat] = float64(fails[cat]) / float64(tot)
		}
		if cat != SPFSolved {
			badFail += fails[cat]
			badTotal += tot
		}
	}
	if badTotal > 0 {
		out.BadRemoved = float64(badFail) / float64(badTotal)
	}
	if totals[SPFSolved] > 0 {
		out.SolvedLost = float64(fails[SPFSolved]) / float64(totals[SPFSolved])
	}
	return out
}

// --- E13: Figure 11 server blacklisting ---

// BlacklistRow is one company's §5.1 exposure.
type BlacklistRow struct {
	Company        string
	ChallengesSent int64
	ListedFraction float64 // fraction of checker polls listed
	ListedDays     float64
	SplitMTAOut    bool
}

// BlacklistResult is the Figure 11 dataset plus summary statistics.
type BlacklistResult struct {
	Rows        []BlacklistRow
	NeverListed int
	// CorrSizeListing is the Pearson correlation between challenges sent
	// and listed fraction — the paper's headline: no relationship.
	CorrSizeListing float64
	// SpearmanSizeListing is the rank correlation, robust to the
	// heavy-tailed challenge-volume distribution.
	SpearmanSizeListing float64
	TrapHits            int64
}

// Blacklisting computes E13.
func Blacklisting(r *Run) BlacklistResult {
	var out BlacklistResult
	var xs, ys []float64
	for _, c := range r.Fleet.Companies {
		m := c.Engine.Metrics()
		frac := r.Fleet.Checker.ListedFraction(c.ChallengeIP)
		row := BlacklistRow{
			Company:        c.Name,
			ChallengesSent: m.ChallengesSent,
			ListedFraction: frac,
			ListedDays:     r.Fleet.Checker.ListedDays(c.ChallengeIP, r.Fleet.Cfg.CheckerPeriod),
			SplitMTAOut:    c.SplitMTAOut(),
		}
		out.Rows = append(out.Rows, row)
		if frac == 0 {
			out.NeverListed++
		}
		xs = append(xs, float64(m.ChallengesSent))
		ys = append(ys, frac)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		return out.Rows[i].ChallengesSent > out.Rows[j].ChallengesSent
	})
	if len(xs) >= 2 {
		out.CorrSizeListing = stats.Pearson(xs, ys)
		out.SpearmanSizeListing = stats.Spearman(xs, ys)
	}
	out.TrapHits = r.Fleet.Traps.Hits()
	return out
}

// RateCapResult compares two fleets differing only in the hourly
// challenge cap — the mitigation for §6's deliberate-backscatter attack.
type RateCapResult struct {
	ChallengesBaseline int64
	ChallengesCapped   int64
	TrapHitsBaseline   int64
	TrapHitsCapped     int64
	RateLimited        int64
	// SolvedBaseline/Capped: the cap delays/suppresses some legitimate
	// challenges too — that is its cost.
	SolvedBaseline int
	SolvedCapped   int
}

// RateCapAblation runs two identically-seeded fleets, the second with a
// per-engine hourly challenge cap.
func RateCapAblation(seed int64, companies, days, capPerHour int) RateCapResult {
	build := func(cap int) (int64, int64, int64, int) {
		mail.ResetIDCounter()
		cfg := workload.DefaultConfig(seed, companies)
		cfg.ChallengeCapPerHour = cap
		for i := range cfg.Profiles {
			cfg.Profiles[i].Users = max(5, cfg.Profiles[i].Users/8)
			cfg.Profiles[i].DailyVolume = max(200, cfg.Profiles[i].DailyVolume/6)
		}
		fleet := workload.NewFleet(cfg)
		fleet.Run(days)
		var challenges, limited int64
		for _, c := range fleet.Companies {
			m := c.Engine.Metrics()
			challenges += m.ChallengesSent
			limited += m.ChallengeRateLimited
		}
		return challenges, limited, fleet.Traps.Hits(), fleet.Net.DeliveryStats().Solved
	}
	chBase, _, trapsBase, solvedBase := build(0)
	chCap, limited, trapsCap, solvedCap := build(capPerHour)
	return RateCapResult{
		ChallengesBaseline: chBase,
		ChallengesCapped:   chCap,
		TrapHitsBaseline:   trapsBase,
		TrapHitsCapped:     trapsCap,
		RateLimited:        limited,
		SolvedBaseline:     solvedBase,
		SolvedCapped:       solvedCap,
	}
}

// GreylistResult compares two fleets differing only in SMTP greylisting
// in front of the engines — the second §5.2-style "additional technique"
// ablation.
type GreylistResult struct {
	ChallengesBaseline int64
	ChallengesWithGrey int64
	ChallengeReduction float64
	// WhiteBaseline/WithGrey: whitelisted (wanted) deliveries must not
	// drop — greylisting may only delay them.
	WhiteBaseline int64
	WhiteWithGrey int64
	// TrapHitsBaseline/WithGrey: fewer challenges => fewer trap hits =>
	// less blacklisting exposure.
	TrapHitsBaseline int64
	TrapHitsWithGrey int64
}

// GreylistAblation runs two identically-seeded small fleets, one with
// greylisting enabled.
func GreylistAblation(seed int64, companies, days int) GreylistResult {
	build := func(useGrey bool) (int64, int64, int64) {
		mail.ResetIDCounter()
		cfg := workload.DefaultConfig(seed, companies)
		cfg.UseGreylisting = useGrey
		for i := range cfg.Profiles {
			cfg.Profiles[i].Users = max(5, cfg.Profiles[i].Users/8)
			cfg.Profiles[i].DailyVolume = max(100, cfg.Profiles[i].DailyVolume/12)
		}
		fleet := workload.NewFleet(cfg)
		fleet.Run(days)
		var challenges, white int64
		for _, c := range fleet.Companies {
			m := c.Engine.Metrics()
			challenges += m.ChallengesSent
			white += m.SpoolWhite
		}
		return challenges, white, fleet.Traps.Hits()
	}
	chBase, whiteBase, trapsBase := build(false)
	chGrey, whiteGrey, trapsGrey := build(true)
	out := GreylistResult{
		ChallengesBaseline: chBase,
		ChallengesWithGrey: chGrey,
		WhiteBaseline:      whiteBase,
		WhiteWithGrey:      whiteGrey,
		TrapHitsBaseline:   trapsBase,
		TrapHitsWithGrey:   trapsGrey,
	}
	if chBase > 0 {
		out.ChallengeReduction = 1 - float64(chGrey)/float64(chBase)
	}
	return out
}

// SPFOnlineResult compares two fleets that differ only in whether the
// SPF filter sits in the engine chain (§5.2's configuration question,
// answered online instead of offline).
type SPFOnlineResult struct {
	ChallengesBaseline int64
	ChallengesWithSPF  int64
	// ChallengeReduction = 1 - with/without.
	ChallengeReduction float64
	SolvedBaseline     int
	SolvedWithSPF      int
	// SolvedLost = 1 - with/without (the false-positive cost).
	SolvedLost float64
	SPFDrops   int64
}

// SPFOnline runs the §5.2 ablation: two identically-seeded small fleets,
// one with the SPF filter in the chain. Expensive relative to the other
// drivers (it simulates twice); intended for the dedicated benchmark.
func SPFOnline(seed int64, companies, days int) SPFOnlineResult {
	build := func(useSPF bool) (*workload.Fleet, int64, int, int64) {
		mail.ResetIDCounter()
		cfg := workload.DefaultConfig(seed, companies)
		cfg.UseSPFFilter = useSPF
		for i := range cfg.Profiles {
			cfg.Profiles[i].Users = max(5, cfg.Profiles[i].Users/8)
			cfg.Profiles[i].DailyVolume = max(100, cfg.Profiles[i].DailyVolume/12)
		}
		fleet := workload.NewFleet(cfg)
		fleet.Run(days)
		var challenges, spfDrops int64
		for _, c := range fleet.Companies {
			m := c.Engine.Metrics()
			challenges += m.ChallengesSent
			spfDrops += m.FilterDropped["spf"]
		}
		return fleet, challenges, fleet.Net.DeliveryStats().Solved, spfDrops
	}
	_, chBase, solvedBase, _ := build(false)
	_, chSPF, solvedSPF, drops := build(true)
	out := SPFOnlineResult{
		ChallengesBaseline: chBase,
		ChallengesWithSPF:  chSPF,
		SolvedBaseline:     solvedBase,
		SolvedWithSPF:      solvedSPF,
		SPFDrops:           drops,
	}
	if chBase > 0 {
		out.ChallengeReduction = 1 - float64(chSPF)/float64(chBase)
	}
	if solvedBase > 0 {
		out.SolvedLost = 1 - float64(solvedSPF)/float64(solvedBase)
	}
	return out
}
