package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/whitelist"
)

// RenderAll runs every experiment driver against the run and renders the
// full set of paper artifacts as text, in paper order.
func RenderAll(r *Run) string {
	var b strings.Builder
	sections := []func(*Run) string{
		RenderLifecycle,
		RenderGeneral,
		RenderDeliveryStatus,
		RenderCaptchaTries,
		RenderRatios,
		RenderCorrelations,
		RenderClustering,
		RenderDelayCDF,
		RenderSolveTime,
		RenderChurn,
		RenderDailyPending,
		RenderBlacklisting,
		RenderSPF,
		RenderDiscussion,
		RenderAblations,
	}
	for _, f := range sections {
		b.WriteString(f(r))
		b.WriteString("\n")
	}
	return b.String()
}

// RenderLifecycle renders E1–E3 (Figure 1/2/3 + the §2 drop table).
func RenderLifecycle(r *Run) string {
	lc := Lifecycle(r)
	var b strings.Builder

	f := &report.Figure{Title: "Figure 1 — lifecycle per 1,000 MTA-IN emails (closed relays; paper: 757 dropped / 31 white / 4 black / 208 gray / 48 challenges)"}
	f.Addf("dropped at MTA : %7.1f", lc.Per1000.Dropped)
	f.Addf("white spool    : %7.1f", lc.Per1000.White)
	f.Addf("black spool    : %7.1f", lc.Per1000.Black)
	f.Addf("gray spool     : %7.1f", lc.Per1000.Gray)
	f.Addf("challenges sent: %7.1f", lc.Per1000.Challenges)
	b.WriteString(f.Render())
	b.WriteString("\n")

	t := &report.Table{
		Title:   "Section 2 drop-reason table (fraction of incoming; paper: 0.06% / 4.19% / 2.27% / 0.03% / 62.36%)",
		Headers: []string{"Reason", "Measured", "Paper"},
	}
	paper := map[core.MTAReason]string{
		core.Malformed:        "0.06%",
		core.Unresolvable:     "4.19%",
		core.NoRelay:          "2.27%",
		core.SenderRejected:   "0.03%",
		core.UnknownRecipient: "62.36%",
	}
	for _, reason := range []core.MTAReason{core.Malformed, core.Unresolvable, core.NoRelay, core.SenderRejected, core.UnknownRecipient} {
		t.AddRow(reason.String(), report.Percent(lc.DropReasons[reason]), paper[reason])
	}
	b.WriteString(t.Render())
	b.WriteString("\n")

	g := &report.Figure{Title: "Figure 3 — gray spool at the engine (paper: 54% dropped by filters, 28% challenged; open relays +9% challenges)"}
	g.AddBar("filter-dropped (closed)", lc.GrayBreakdown.FilterDropped)
	g.AddBar("challenged (closed)", lc.GrayBreakdown.Challenged)
	g.AddBar("held behind challenge", lc.GrayBreakdown.Suppressed)
	g.AddBar("null-sender quarantine", lc.GrayBreakdown.NullSender)
	g.AddBar("filter-dropped (open relay)", lc.OpenRelayGray.FilterDropped)
	g.AddBar("challenged (open relay)", lc.OpenRelayGray.Challenged)
	names := make([]string, 0, len(lc.FilterShares))
	for n := range lc.FilterShares {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g.Addf("  drop share %-14s %s", n, report.Bar(lc.FilterShares[n], 40))
	}
	b.WriteString(g.Render())
	return b.String()
}

// RenderGeneral renders E4 (Table 1).
func RenderGeneral(r *Run) string {
	g := General(r)
	t := &report.Table{
		Title:   "Table 1 — general statistics (simulated fleet)",
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("Number of Companies", g.Companies)
	t.AddRow("Open Relays", g.OpenRelays)
	t.AddRow("Users protected by CR", g.UsersProtected)
	t.AddRow("Total incoming emails", g.TotalIncoming)
	t.AddRow("Messages in the Gray spool", g.GraySpool)
	t.AddRow("Messages in the Black spool", g.BlackSpool)
	t.AddRow("Messages in the White spool", g.WhiteSpool)
	t.AddRow("Total Messages Dropped at MTA", g.DroppedAtMTA)
	t.AddRow("Challenges Sent", g.ChallengesSent)
	t.AddRow("Emails Whitelisted from digest", g.WhitelistedDigest)
	t.AddRow("Solved CAPTCHAs", g.SolvedCaptchas)
	t.AddRow("Dropped: reverse DNS filter", g.DroppedReverseDNS)
	t.AddRow("Dropped: RBL filter", g.DroppedRBL)
	t.AddRow("Dropped: Antivirus filter", g.DroppedAntivirus)
	t.AddRow("Total Dropped by filters", g.DroppedByFilters)
	t.AddRow("Held behind pending challenge", g.SpoolSuppressed)
	t.AddRow("Quarantine expired (30d)", g.QuarantineExpired)
	t.AddRow("Emails (per day)", fmt.Sprintf("%.0f", g.EmailsPerDay))
	t.AddRow("White spool (per day)", fmt.Sprintf("%.0f", g.WhitePerDay))
	t.AddRow("Challenges sent (per day)", fmt.Sprintf("%.0f", g.ChallengesPerDay))
	t.AddRow("Total company-days", g.TotalDays)
	return t.Render()
}

// RenderDeliveryStatus renders E5 (Figure 4a).
func RenderDeliveryStatus(r *Run) string {
	ds := DeliveryStatus(r)
	f := &report.Figure{Title: "Figure 4(a) — challenge delivery status (paper: 49% delivered; 71.7% of the rest bounced no-user; 94% of delivered never opened; ~4% solved)"}
	for _, s := range []simnet.ChallengeStatus{
		simnet.StatusDelivered, simnet.StatusBouncedNoUser, simnet.StatusBouncedNoDomain,
		simnet.StatusBouncedBlacklisted, simnet.StatusExpired, simnet.StatusPending,
	} {
		f.AddBar(s.String(), ds.Fractions[s])
	}
	f.Addf("")
	f.Addf("total challenges            %d", ds.Total)
	f.Addf("undelivered that are no-user bounces: %s (paper 71.7%%)", report.Percent(ds.BouncedNoUser))
	f.Addf("solved (of all challenges):           %s (paper ~4%%)", report.Percent(ds.SolvedFrac))
	f.Addf("never opened (of delivered):          %s (paper 94%%)", report.Percent(ds.NeverOpened))
	f.Addf("visited but not solved (of delivered): %s (paper 0.25%%)", report.Percent(ds.VisitedNotSolv))
	return f.Render()
}

// RenderCaptchaTries renders E6 (Figure 4b).
func RenderCaptchaTries(r *Run) string {
	ct := CaptchaTries(r)
	f := &report.Figure{Title: "Figure 4(b) — tries required to solve the CAPTCHA (paper: never more than five)"}
	for i, frac := range ct.Tries {
		f.AddBar(fmt.Sprintf("%d attempt(s)", i+1), frac)
	}
	f.Addf("solved: %d, max attempts observed: %d", ct.Solved, ct.MaxTries)
	return f.Render()
}

// RenderRatios renders E15 (§3 scalars).
func RenderRatios(r *Run) string {
	rt := ComputeRatios(r)
	t := &report.Table{
		Title:   "Section 3 scalar ratios",
		Headers: []string{"Ratio", "Measured", "Paper"},
	}
	t.AddRow("Reflection R at CR filter", report.Percent(rt.ReflectionCR), "19.3%")
	t.AddRow("Reflection R at MTA-IN", report.Percent(rt.ReflectionMTA), "4.8%")
	t.AddRow("Reflected traffic RT at CR", report.Percent(rt.ReflectedRT), "2.5%")
	t.AddRow("Incoming emails per challenge", fmt.Sprintf("%.1f", rt.EmailsPerChal), "~21")
	t.AddRow("Backscatter β at CR (worst case)", report.Percent(rt.BackscatterCR), "8.7%")
	t.AddRow("Backscatter β at MTA-IN", report.Percent(rt.BackscatterMTA), "2.1%")
	return t.Render()
}

// RenderCorrelations renders E7 (Figure 5).
func RenderCorrelations(r *Run) string {
	co := Correlations(r)
	var b strings.Builder
	t := &report.Table{
		Title:   "Figure 5 — correlations between per-company variables (paper: reflection uncorrelated with users/emails; small inverse with white%)",
		Headers: append([]string{""}, co.Matrix.Names...),
	}
	for i, name := range co.Matrix.Names {
		row := make([]interface{}, 0, len(co.Matrix.Names)+1)
		row = append(row, name)
		for j := range co.Matrix.Names {
			row = append(row, fmt.Sprintf("%+.2f", co.Matrix.R[i][j]))
		}
		t.AddRow(row...)
	}
	b.WriteString(t.Render())

	h := &report.Figure{Title: "Figure 5 (diagonal) — per-company variable ranges"}
	summarize := func(label string, vals []float64) {
		if len(vals) == 0 {
			return
		}
		mn, mx, sum := vals[0], vals[0], 0.0
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		h.Addf("%-12s min=%-10.3g mean=%-10.3g max=%-10.3g", label, mn, sum/float64(len(vals)), mx)
	}
	summarize("users", co.Users)
	summarize("emails/day", co.Emails)
	summarize("white%", co.WhitePct)
	summarize("reflection", co.Reflection)
	summarize("captcha%", co.CaptchaPct)
	b.WriteString("\n")
	b.WriteString(h.Render())
	return b.String()
}

// RenderClustering renders E8/E16 (Figure 6 + §4.1).
func RenderClustering(r *Run) string {
	cl := Clustering(r)
	f := &report.Figure{Title: "Figure 6 — spam campaign clustering (paper: 1,775 clusters, 28 with a solved challenge; low-similarity clusters ~31% bounced with 1-2 solves; high-similarity up to 97% solved)"}
	f.Addf("clusters found:               %d (sizes %d..%d)", cl.Stats.Clusters, cl.Stats.SmallestCluster, cl.Stats.LargestCluster)
	f.Addf("clusters with >=1 solve:      %d", cl.Stats.WithSolved)
	f.Addf("high sender similarity:       %d clusters, mean solved %s, mean bounced %s",
		cl.Stats.HighSim, report.Percent(cl.Stats.HighSimSolved), report.Percent(cl.Stats.HighSimBounced))
	f.Addf("low sender similarity:        %d clusters, mean solved %s, mean bounced %s",
		cl.Stats.LowSim, report.Percent(cl.Stats.LowSimSolved), report.Percent(cl.Stats.LowSimBounced))
	f.Addf("")
	f.Addf("spurious spam deliveries:     %d (%.2f per 10,000 challenges; paper ~1)",
		cl.SpuriousDeliveries, cl.SpuriousPerChallenge*10000)
	return f.Render()
}

// RenderDelayCDF renders E9 (Figure 7).
func RenderDelayCDF(r *Run) string {
	dc := DelayCDF(r)
	f := &report.Figure{Title: "Figure 7 — CDF of gray->white delivery delay (paper: 30% <5min, 50% <30min via captcha; digest 4h-3d)"}
	f.Addf("captcha-whitelisted (n=%d):", dc.Captcha.N())
	for _, cp := range []struct {
		label string
		mins  float64
	}{{"<5 min", 5}, {"<30 min", 30}, {"<1 h", 60}, {"<4 h", 240}, {"<1 day", 1440}, {"<3 days", 4320}} {
		f.Addf("  %-8s %s", cp.label, report.Bar(dc.Captcha.FractionBelow(cp.mins), 40))
	}
	f.Addf("digest-whitelisted (n=%d):", dc.Digest.N())
	for _, cp := range []struct {
		label string
		mins  float64
	}{{"<4 h", 240}, {"<1 day", 1440}, {"<2 days", 2880}, {"<3 days", 4320}} {
		f.Addf("  %-8s %s", cp.label, report.Bar(dc.Digest.FractionBelow(cp.mins), 40))
	}

	// The actual CDF curve, log-scaled in minutes like the paper's x-axis.
	curve := &report.Plot{
		Title: "captcha-whitelisting delay CDF (x: minutes, log scale; y: fraction)",
		Width: 64, Height: 10, XLog: true,
	}
	curve.AddSeries(dc.Captcha.Points(64))
	return f.Render() + "\n" + curve.Render()
}

// RenderSolveTime renders E10 (Figure 8).
func RenderSolveTime(r *Run) string {
	st := SolveTimeDist(r)
	f := &report.Figure{Title: "Figure 8 — time distribution of challenge solves (paper: unsolved after 4h likely stays unsolved)"}
	labels := []string{"<5 min", "5-30 min", "30-60 min", "1-4 h", "4-24 h", "1-3 days", ">=3 days"}
	for i, frac := range st.Hist.Fractions() {
		f.AddBar(labels[i], frac)
	}
	f.Addf("solves: %d; within 4 hours: %s", st.Solves, report.Percent(st.Under4HFrac))
	return f.Render()
}

// RenderChurn renders E11 (Figure 9).
func RenderChurn(r *Run) string {
	ch := WhitelistChurn(r)
	f := &report.Figure{Title: "Figure 9 — new whitelist entries per user per 60 days (paper: 51.1% / 29.5% / 12.6% / 4.8% / 1.6% / 0.4% / 0.1%)"}
	labels := []string{"1-10", "10-30", "30-60", "60-120", "120-240", "240-600", ">600"}
	for i, frac := range ch.Hist.Fractions() {
		f.AddBar(labels[i], frac)
	}
	f.Addf("")
	f.Addf("whitelists modified at least once: %d (window %d days)", ch.ModifiedUsers, ch.WindowDays)
	f.Addf("mean new entries per user per day: %.3f (paper 0.3)", ch.MeanNewPerUserDay)
	f.Addf("modified whitelists with >=1 entry/day: %s (paper 6.8%%)", report.Percent(ch.AtLeastOnePerDay))

	srcs := WhitelistSources(r)
	t := &report.Table{Title: "Whitelist additions by mechanism", Headers: []string{"Mechanism", "Entries"}}
	for _, s := range []whitelist.Source{whitelist.SourceChallenge, whitelist.SourceDigest, whitelist.SourceManual, whitelist.SourceOutbound, whitelist.SourceSeed} {
		t.AddRow(s.String(), srcs[s])
	}
	return f.Render() + "\n" + t.Render()
}

// RenderDailyPending renders E12 (Figure 10).
func RenderDailyPending(r *Run) string {
	ps := DailyPending(r)
	f := &report.Figure{Title: "Figure 10 — daily pending (digest size) for 3 archetype users"}
	for _, p := range ps {
		var spark strings.Builder
		for _, v := range p.Series {
			spark.WriteByte(sparkChar(v, p.Max))
		}
		f.Addf("%-28s mean=%5.1f max=%3d  %s", p.User, p.Mean, p.Max, spark.String())
	}
	return f.Render()
}

// sparkChar maps a value to a 5-level ASCII sparkline character.
func sparkChar(v, max int) byte {
	if max == 0 || v == 0 {
		return '_'
	}
	levels := []byte{'.', ':', '-', '=', '#'}
	i := (v*len(levels) - 1) / max
	if i >= len(levels) {
		i = len(levels) - 1
	}
	return levels[i]
}

// RenderBlacklisting renders E13 (Figure 11).
func RenderBlacklisting(r *Run) string {
	bl := Blacklisting(r)
	var b strings.Builder
	t := &report.Table{
		Title:   "Figure 11 — server blacklisting vs challenge volume (paper: no relationship; 75% never listed)",
		Headers: []string{"Company", "Challenges", "ListedFrac", "ListedDays", "SplitOut"},
	}
	for _, row := range bl.Rows {
		t.AddRow(row.Company, row.ChallengesSent,
			fmt.Sprintf("%.3f", row.ListedFraction),
			fmt.Sprintf("%.1f", row.ListedDays), row.SplitMTAOut)
	}
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nnever listed: %d/%d companies; corr(challenges, listing): pearson %+.3f, spearman %+.3f; trap hits = %d\n",
		bl.NeverListed, len(bl.Rows), bl.CorrSizeListing, bl.SpearmanSizeListing, bl.TrapHits)
	return b.String()
}

// RenderSPF renders E14 (Figure 12).
func RenderSPF(r *Run) string {
	sp := SPFWhatIf(r)
	f := &report.Figure{Title: "Figure 12 — offline SPF what-if over the gray spool (paper: removes ~2.5% of bad challenges at the cost of 0.25% of solved)"}
	for _, cat := range []SPFCategory{SPFSolved, SPFDeliveredUnsolved, SPFBounced, SPFExpired} {
		f.Addf("%-20s n=%-7d SPF-fail %s", cat.String(), sp.Totals[cat], report.Percent(sp.FailFrac[cat]))
	}
	f.Addf("")
	f.Addf("bad challenges removed: %s (paper 2.5%%)", report.Percent(sp.BadRemoved))
	f.Addf("solved challenges lost: %s (paper 0.25%%)", report.Percent(sp.SolvedLost))
	return f.Render()
}

// RenderAblations renders the DESIGN.md §5 ablations.
func RenderAblations(r *Run) string {
	ab := SplitAblation(r)
	f := &report.Figure{Title: "Ablation — split MTA-OUT (challenge IP separate from user-mail IP, §5.1)"}
	f.Addf("shared-IP companies: %d, user-mail IP ever listed: %s", ab.SharedCompanies, report.Percent(ab.SharedListedFrac))
	f.Addf("split-IP companies:  %d, user-mail IP ever listed: %s", ab.SplitCompanies, report.Percent(ab.SplitListedFrac))
	um := r.Fleet.Net.UserMailStats()
	f.Addf("outbound user mail: delivered=%d bounced-blacklisted=%d no-user=%d failed=%d",
		um[simnet.UserMailDelivered], um[simnet.UserMailBouncedBlacklisted],
		um[simnet.UserMailBouncedNoUser], um[simnet.UserMailFailed])
	return f.Render()
}
