package experiments

import (
	"strings"
	"testing"
)

func TestRenderAllContainsEveryArtifact(t *testing.T) {
	r := testRun(t)
	out := RenderAll(r)
	for _, want := range []string{
		"Figure 1",
		"drop-reason table",
		"Figure 3",
		"Table 1",
		"Figure 4(a)",
		"Figure 4(b)",
		"Section 3 scalar ratios",
		"Figure 5",
		"Figure 6",
		"Figure 7",
		"Figure 8",
		"Figure 9",
		"Figure 10",
		"Figure 11",
		"Figure 12",
		"Section 6",
		"Ablation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Fatalf("RenderAll output suspiciously short: %d bytes", len(out))
	}
}

func TestRenderLifecycleMentionsPaperBaselines(t *testing.T) {
	r := testRun(t)
	out := RenderLifecycle(r)
	for _, want := range []string{"757", "62.36%", "unknown-recipient", "challenged (open relay)"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderLifecycle missing %q:\n%s", want, out)
		}
	}
}

func TestRenderBlacklistingHasAllCompanies(t *testing.T) {
	r := testRun(t)
	out := RenderBlacklisting(r)
	if !strings.Contains(out, "company-00") || !strings.Contains(out, "never listed:") {
		t.Fatalf("blacklisting render incomplete:\n%s", out)
	}
}

func TestSparkChar(t *testing.T) {
	if sparkChar(0, 10) != '_' || sparkChar(5, 0) != '_' {
		t.Fatal("zero handling wrong")
	}
	if sparkChar(10, 10) != '#' {
		t.Fatalf("max value = %c, want #", sparkChar(10, 10))
	}
	if sparkChar(1, 100) != '.' {
		t.Fatalf("small value = %c, want .", sparkChar(1, 100))
	}
}
