// Reputation ablation: two identically-seeded fleets, the second with
// the sender-reputation engine wired in (workload.Config.UseReputation).
// The driver reports what the subsystem buys — trusted senders skipping
// the probe filters via the engine fast path, suspect senders dropped
// before any probe runs — and what the score trajectories look like for
// the two sender populations the paper contrasts: stable newsletter
// operations versus botnet campaigns churning through spoofed senders
// and residential IPs.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/workload"
)

// BandCount tallies how many (company, sender) pairs with recorded
// history sit in each reputation band.
type BandCount struct {
	Observed int // pairs with any evidence mass
	Trusted  int
	Neutral  int
	Suspect  int
}

func (b BandCount) add(v reputation.Verdict) BandCount {
	if v.Mass <= 0 {
		return b
	}
	b.Observed++
	switch v.Band {
	case reputation.Trusted:
		b.Trusted++
	case reputation.Suspect:
		b.Suspect++
	default:
		b.Neutral++
	}
	return b
}

// ReputationResult compares a baseline fleet against the same fleet with
// the reputation subsystem enabled.
type ReputationResult struct {
	// Baseline vs reputation-enabled counters.
	ChallengesBaseline int64
	ChallengesWithRep  int64
	WhiteBaseline      int64
	WhiteWithRep       int64
	GrayWithRep        int64

	// FastPathHits is how many gray messages from trusted senders skipped
	// the probe-filter chain entirely; FastPathRate is the fraction of the
	// gray spool that took the fast path.
	FastPathHits int64
	FastPathRate float64
	// ProbesPerGray is the length of the probe chain behind the reputation
	// check; ProbesSaved = FastPathHits × ProbesPerGray (a trusted message
	// that is not fast-pathed runs every probe, since only drops
	// short-circuit the chain).
	ProbesPerGray int64
	ProbesSaved   int64
	// SuspectDrops counts gray messages dropped by the reputation filter
	// before any probe filter spent a lookup on them.
	SuspectDrops int64
	// DegradedLookups counts fail-open store outages (zero without a fault
	// plan targeting "reputation").
	DegradedLookups int64

	// Score trajectories: band membership after the run for the stable
	// newsletter senders vs the botnet campaigns' spoofed senders, summed
	// over every (company, sender) pair with history.
	Newsletter BandCount
	Botnet     BandCount

	// StoreEntries / StoreRecords are summed across the fleet's stores.
	StoreEntries int64
	StoreRecords int64
}

// ReputationAblation runs two identically-seeded small fleets, the
// second with per-company sender-reputation stores feeding the adaptive
// filter stage.
func ReputationAblation(seed int64, companies, days int) ReputationResult {
	type runSums struct {
		challenges, white, gray, fastPath, suspectDrops, degraded int64
	}
	build := func(useRep bool) (*workload.Fleet, runSums) {
		mail.ResetIDCounter()
		cfg := workload.DefaultConfig(seed, companies)
		cfg.UseReputation = useRep
		for i := range cfg.Profiles {
			cfg.Profiles[i].Users = max(5, cfg.Profiles[i].Users/8)
			cfg.Profiles[i].DailyVolume = max(100, cfg.Profiles[i].DailyVolume/12)
		}
		fleet := workload.NewFleet(cfg)
		fleet.Run(days)
		var s runSums
		for _, c := range fleet.Companies {
			m := c.Engine.Metrics()
			s.challenges += m.ChallengesSent
			s.white += m.SpoolWhite
			s.gray += m.SpoolGray
			s.fastPath += m.ReputationFastPath
			s.suspectDrops += m.FilterDropped["reputation"]
			s.degraded += m.FilterDegraded["reputation"]
		}
		return fleet, s
	}

	_, base := build(false)
	fleet, rep := build(true)

	out := ReputationResult{
		ChallengesBaseline: base.challenges,
		ChallengesWithRep:  rep.challenges,
		WhiteBaseline:      base.white,
		WhiteWithRep:       rep.white,
		GrayWithRep:        rep.gray,
		FastPathHits:       rep.fastPath,
		ProbesPerGray:      3, // av + reverse-dns + rbl behind the reputation check
		SuspectDrops:       rep.suspectDrops,
		DegradedLookups:    rep.degraded,
	}
	if fleet.Cfg.UseSPFFilter {
		out.ProbesPerGray++
	}
	out.ProbesSaved = out.FastPathHits * out.ProbesPerGray
	if out.GrayWithRep > 0 {
		out.FastPathRate = float64(out.FastPathHits) / float64(out.GrayWithRep)
	}

	// Trajectories: the same sender address scored at every company that
	// saw it. Newsletter senders are stable (same address, same IP, some
	// solving challenges); botnet campaigns spoof a pool of addresses from
	// churning residential IPs.
	newsSenders := make(map[string]mail.Address)
	for _, c := range fleet.NewsletterCampaigns() {
		for _, s := range c.Senders {
			newsSenders[s.Key()] = s
		}
	}
	botSenders := make(map[string]mail.Address)
	for _, c := range fleet.SpamCampaigns() {
		for _, s := range c.SpoofPool {
			botSenders[s.Key()] = s
		}
	}
	for _, c := range fleet.Companies {
		st := fleet.Reputation(c.Name)
		if st == nil {
			continue
		}
		stats := st.Stats()
		out.StoreEntries += int64(stats.Entries)
		out.StoreRecords += stats.Records
		for _, s := range newsSenders {
			out.Newsletter = out.Newsletter.add(st.Score(s, ""))
		}
		for _, s := range botSenders {
			out.Botnet = out.Botnet.add(st.Score(s, ""))
		}
	}
	return out
}

// Render formats the ablation as a deterministic report.
func (r ReputationResult) Render() string {
	var b strings.Builder
	b.WriteString("Reputation ablation — identical seed, with vs without the sender-reputation stage\n\n")
	fmt.Fprintf(&b, "%-36s %12s %12s\n", "counter", "baseline", "with-rep")
	fmt.Fprintf(&b, "%-36s %12d %12d\n", "challenges sent", r.ChallengesBaseline, r.ChallengesWithRep)
	fmt.Fprintf(&b, "%-36s %12d %12d\n", "white-spool deliveries", r.WhiteBaseline, r.WhiteWithRep)
	b.WriteString("\n")
	fmt.Fprintf(&b, "gray spool (with-rep run):        %d\n", r.GrayWithRep)
	fmt.Fprintf(&b, "fast-path hits (probe chain skipped): %d (%.2f%% of gray)\n",
		r.FastPathHits, r.FastPathRate*100)
	fmt.Fprintf(&b, "probe invocations saved:          %d (%d probes behind the reputation check)\n",
		r.ProbesSaved, r.ProbesPerGray)
	fmt.Fprintf(&b, "suspect-band drops before probes: %d\n", r.SuspectDrops)
	fmt.Fprintf(&b, "degraded (fail-open) lookups:     %d\n", r.DegradedLookups)
	fmt.Fprintf(&b, "store entries / records:          %d / %d\n", r.StoreEntries, r.StoreRecords)
	b.WriteString("\nscore trajectories (company×sender pairs with history):\n")
	row := func(name string, c BandCount) {
		fmt.Fprintf(&b, "  %-22s observed=%-6d trusted=%-6d neutral=%-6d suspect=%-6d\n",
			name, c.Observed, c.Trusted, c.Neutral, c.Suspect)
	}
	row("newsletter senders", r.Newsletter)
	row("botnet spoofed senders", r.Botnet)
	return b.String()
}
