package experiments

import (
	"strings"
	"testing"
)

func TestReputationAblation(t *testing.T) {
	res := ReputationAblation(7, 5, 6)

	if res.StoreEntries == 0 || res.StoreRecords == 0 {
		t.Fatalf("reputation stores recorded nothing: %+v", res)
	}
	if res.GrayWithRep == 0 {
		t.Fatal("no gray traffic; workload too small to exercise the subsystem")
	}
	// The stable newsletter senders accumulate history at every company
	// they mail; the campaigns' churning spoofed senders do too (mostly
	// negative evidence).
	if res.Newsletter.Observed == 0 {
		t.Fatal("no newsletter sender accumulated reputation history")
	}
	if res.Botnet.Observed == 0 {
		t.Fatal("no botnet spoofed sender accumulated reputation history")
	}
	// The two populations must show visibly different trajectories: the
	// botnet pool never out-trusts the newsletter pool (rate-wise).
	newsRate := float64(res.Newsletter.Trusted) / float64(res.Newsletter.Observed)
	botRate := float64(res.Botnet.Trusted) / float64(res.Botnet.Observed)
	if botRate > newsRate {
		t.Fatalf("spoofed senders trusted more often than newsletters: %.3f vs %.3f", botRate, newsRate)
	}
	if res.ProbesSaved != res.FastPathHits*res.ProbesPerGray {
		t.Fatalf("probe-savings arithmetic off: %+v", res)
	}
	// No fault plan: the advisory path never degrades.
	if res.DegradedLookups != 0 {
		t.Fatalf("degraded lookups without a fault plan: %d", res.DegradedLookups)
	}

	out := res.Render()
	for _, want := range []string{"fast-path hits", "probe invocations saved", "newsletter senders", "botnet spoofed senders"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Determinism: the ablation is a pure function of the seed.
	if again := ReputationAblation(7, 5, 6); again.Render() != out {
		t.Fatal("identically-seeded reputation ablations differ")
	}
}
