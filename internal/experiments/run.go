// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver consumes a shared fleet Run (one
// simulated multi-month deployment across many companies) and reduces it
// to the same rows/series the paper reports; cmd/reproduce renders them
// and bench_test.go regenerates each artifact as a testing.B benchmark.
//
// The experiment IDs (E1..E16) and their mapping to paper artifacts are
// indexed in DESIGN.md §3, and paper-vs-measured values are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mail"
	"repro/internal/overload"
	"repro/internal/workload"
)

// RunConfig sizes a fleet run.
type RunConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Companies is the number of installations (the study had 47).
	Companies int
	// Days is the simulated monitoring period (the study had ~180).
	Days int
	// UserScale and VolumeScale shrink the per-company user counts and
	// daily volumes so runs finish quickly; all reported quantities are
	// ratios/shapes, which are scale-invariant.
	UserScale   float64
	VolumeScale float64
	// FaultPlan, when non-nil, runs the whole workload under the
	// internal/faults injection layer (the chaos experiment).
	FaultPlan *faults.Plan
	// Workers is the fleet worker-pool size (see workload.Config.Workers):
	// 0 means GOMAXPROCS, 1 runs serially; results are identical for
	// every value.
	Workers int
	// Overload, when non-nil, puts an admission controller in front of
	// every engine (the surge experiment).
	Overload *overload.Config
	// SurgeBursts schedules traffic-burst windows of extra botnet spam.
	SurgeBursts []workload.SurgeBurst
	// SurgePlan drives injected per-message service latency through the
	// per-lane "surge" fault target. Unlike FaultPlan it does not force
	// serial execution.
	SurgePlan *faults.Plan
	// EmitDSNs closes the challenge feedback loop through real RFC 3464
	// DSN messages (workload.Config.EmitDSNs): engines learn challenge
	// fates by parsing bounces rather than from the transport callback.
	EmitDSNs bool
}

// Quick is the preset used by unit tests and benchmarks: small but large
// enough for every ratio to stabilise.
func Quick(seed int64) RunConfig {
	return RunConfig{Seed: seed, Companies: 12, Days: 7, UserScale: 0.15, VolumeScale: 0.08}
}

// Standard is the preset used by cmd/reproduce: the full 47-company
// fleet over a simulated month at reduced volume.
func Standard(seed int64) RunConfig {
	return RunConfig{Seed: seed, Companies: 47, Days: 30, UserScale: 0.2, VolumeScale: 0.08}
}

// Run is one completed fleet simulation, shared by all experiment
// drivers.
type Run struct {
	Cfg   RunConfig
	Fleet *workload.Fleet
}

// NewRun builds the world and simulates cfg.Days of traffic.
func NewRun(cfg RunConfig) *Run {
	if cfg.Companies <= 0 {
		cfg.Companies = 47
	}
	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	if cfg.UserScale <= 0 {
		cfg.UserScale = 1
	}
	if cfg.VolumeScale <= 0 {
		cfg.VolumeScale = 1
	}
	mail.ResetIDCounter()
	wcfg := workload.DefaultConfig(cfg.Seed, cfg.Companies)
	wcfg.FaultPlan = cfg.FaultPlan
	wcfg.Workers = cfg.Workers
	wcfg.Overload = cfg.Overload
	wcfg.SurgeBursts = cfg.SurgeBursts
	wcfg.SurgePlan = cfg.SurgePlan
	wcfg.EmitDSNs = cfg.EmitDSNs
	for i := range wcfg.Profiles {
		p := &wcfg.Profiles[i]
		p.Users = max(5, int(float64(p.Users)*cfg.UserScale))
		p.DailyVolume = max(100, int(float64(p.DailyVolume)*cfg.VolumeScale))
	}
	fleet := workload.NewFleet(wcfg)
	fleet.Run(cfg.Days)
	return &Run{Cfg: cfg, Fleet: fleet}
}

// AggregateMetrics sums engine metrics across the fleet, split by relay
// configuration as the paper does (Figures 2 and 3 report open-relay and
// closed servers separately).
type AggregateMetrics struct {
	All       core.Metrics
	Closed    core.Metrics // non-open-relay installations only
	OpenRelay core.Metrics
}

func newMetrics() core.Metrics {
	return core.Metrics{
		MTADropped:       make(map[core.MTAReason]int64),
		FilterDropped:    make(map[string]int64),
		FilterDegraded:   make(map[string]int64),
		Delivered:        make(map[core.DeliveryVia]int64),
		ChallengeBounced: make(map[string]int64),
	}
}

func addInto(dst *core.Metrics, m core.Metrics) {
	dst.MTAIncoming += m.MTAIncoming
	dst.MTAInBytes += m.MTAInBytes
	dst.SpoolWhite += m.SpoolWhite
	dst.SpoolBlack += m.SpoolBlack
	dst.SpoolGray += m.SpoolGray
	dst.DispatchBytes += m.DispatchBytes
	dst.ChallengesSent += m.ChallengesSent
	dst.ChallengeBytes += m.ChallengeBytes
	dst.QuarantineOnly += m.QuarantineOnly
	dst.ChallengeSuppressed += m.ChallengeSuppressed
	dst.QuarantineExpired += m.QuarantineExpired
	dst.DigestDeleted += m.DigestDeleted
	dst.MTADegradedAccept += m.MTADegradedAccept
	dst.MTADegradedDrop += m.MTADegradedDrop
	for k, v := range m.MTADropped {
		dst.MTADropped[k] += v
	}
	for k, v := range m.FilterDropped {
		dst.FilterDropped[k] += v
	}
	for k, v := range m.FilterDegraded {
		dst.FilterDegraded[k] += v
	}
	for k, v := range m.Delivered {
		dst.Delivered[k] += v
	}
	dst.ChallengeLoopSuppressed += m.ChallengeLoopSuppressed
	dst.DSNOrphaned += m.DSNOrphaned
	for k, v := range m.ChallengeBounced {
		dst.ChallengeBounced[k] += v
	}
}

// Aggregate computes the fleet-wide metric sums.
func (r *Run) Aggregate() AggregateMetrics {
	agg := AggregateMetrics{All: newMetrics(), Closed: newMetrics(), OpenRelay: newMetrics()}
	for _, c := range r.Fleet.Companies {
		m := c.Engine.Metrics()
		addInto(&agg.All, m)
		if r.Fleet.Profile(c.Name).OpenRelay {
			addInto(&agg.OpenRelay, m)
		} else {
			addInto(&agg.Closed, m)
		}
	}
	return agg
}

// rng returns a deterministic rand for presentation-level sampling
// (e.g. picking the three Figure 10 archetype users).
func (r *Run) rng() *rand.Rand {
	return rand.New(rand.NewSource(r.Cfg.Seed + 99))
}
