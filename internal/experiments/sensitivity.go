package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// SensitivityResult reports how the headline ratios vary across
// independently-seeded synthetic worlds. A reproduction built on a
// simulated Internet must show its conclusions are properties of the
// modelled mechanisms, not of one lucky seed; this is the analysis that
// demonstrates it.
type SensitivityResult struct {
	Seeds      []int64
	Reflection stats.Summary
	RT         stats.Summary
	Delivered  stats.Summary // Fig 4a delivered fraction
	NoUser     stats.Summary // Fig 4a bounced-no-user share of undelivered
	Solved     stats.Summary // Fig 4a solved fraction
	Backscatt  stats.Summary
	NeverList  stats.Summary // Fig 11 never-listed fraction
}

// Sensitivity runs n Quick-sized fleets with distinct seeds and
// summarises the headline ratios.
func Sensitivity(baseSeed int64, n int) SensitivityResult {
	var out SensitivityResult
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)*1000003
		out.Seeds = append(out.Seeds, seed)
		r := NewRun(Quick(seed))

		rt := ComputeRatios(r)
		out.Reflection.Add(rt.ReflectionCR)
		out.RT.Add(rt.ReflectedRT)
		out.Backscatt.Add(rt.BackscatterCR)

		ds := DeliveryStatus(r)
		out.Delivered.Add(ds.DeliveredFrac)
		out.NoUser.Add(ds.BouncedNoUser)
		out.Solved.Add(ds.SolvedFrac)

		bl := Blacklisting(r)
		if len(bl.Rows) > 0 {
			out.NeverList.Add(float64(bl.NeverListed) / float64(len(bl.Rows)))
		}
	}
	return out
}

// Render formats the sensitivity table with the paper's values alongside.
func (s SensitivityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed sensitivity over %d worlds (seeds %v)\n", len(s.Seeds), s.Seeds)
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %10s %10s\n", "metric", "mean", "std", "min", "max", "paper")
	row := func(name string, sum stats.Summary, paper string) {
		fmt.Fprintf(&b, "%-28s %10.4f %10.4f %10.4f %10.4f %10s\n",
			name, sum.Mean(), sum.Std(), sum.Min(), sum.Max(), paper)
	}
	row("reflection R @ CR", s.Reflection, "0.193")
	row("reflected traffic RT", s.RT, "0.025")
	row("backscatter beta @ CR", s.Backscatt, "0.087")
	row("challenges delivered", s.Delivered, "0.49")
	row("undelivered no-user share", s.NoUser, "0.717")
	row("challenges solved", s.Solved, "~0.04")
	row("servers never listed", s.NeverList, "0.75")
	return b.String()
}
