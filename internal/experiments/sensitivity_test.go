package experiments

import (
	"strings"
	"testing"
)

// TestSensitivityAcrossSeeds verifies the headline findings are stable
// properties of the modelled mechanisms, not artefacts of one seed.
func TestSensitivityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multiple fleet simulations")
	}
	s := Sensitivity(100, 3)
	if len(s.Seeds) != 3 {
		t.Fatalf("seeds = %v", s.Seeds)
	}
	// Every world lands in the paper's neighbourhood.
	if s.Reflection.Min() < 0.08 || s.Reflection.Max() > 0.35 {
		t.Fatalf("reflection range [%v, %v] leaves the paper's neighbourhood",
			s.Reflection.Min(), s.Reflection.Max())
	}
	if s.NoUser.Min() < 0.5 {
		t.Fatalf("no-user bounce share dipped to %v", s.NoUser.Min())
	}
	if s.Solved.Max() > 0.15 {
		t.Fatalf("solve rate spiked to %v", s.Solved.Max())
	}
	// And the cross-seed variability is modest: the conclusions do not
	// flip between worlds.
	if s.Reflection.Std() > 0.08 {
		t.Fatalf("reflection std = %v; seed-dominated", s.Reflection.Std())
	}
	out := s.Render()
	for _, want := range []string{"reflection R @ CR", "0.193", "paper", "servers never listed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}
