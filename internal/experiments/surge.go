// Surge experiment: the overload-control acceptance run. The same fleet
// is simulated at increasing campaign-burst intensities with an
// admission controller in front of every engine and injected
// per-message service latency above the AIMD target, so the controllers
// genuinely congest. The report measures what the fail-safe shed policy
// promises: shed rate grows with intensity, queue depth stays bounded,
// admission delay stays within the queue deadline, and not one piece of
// ham is lost — shed mail is tempfailed and delivered on retry.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/overload"
	"repro/internal/workload"
)

// SurgeIntensities are the burst multipliers the experiment sweeps,
// ending at the acceptance-criterion 10× burst.
var SurgeIntensities = []float64{1, 2, 5, 10}

// SurgeOverloadConfig is the controller configuration the surge runs
// use: a small limiter window so bursts congest at experiment scale,
// and a queue sized to make both queueing and queue-full shedding
// observable.
func SurgeOverloadConfig() *overload.Config {
	return &overload.Config{
		MinLimit:      2,
		MaxLimit:      64,
		InitialLimit:  8,
		TargetLatency: 250 * time.Millisecond,
		QueueCapacity: 32,
		QueueDeadline: 30 * time.Second,
	}
}

// SurgeLatencyPlan injects the per-message service latency: every
// admitted message holds its slot for 400ms of virtual time, above the
// 250ms AIMD target, so sustained bursts force multiplicative backoff.
func SurgeLatencyPlan() *faults.Plan {
	return &faults.Plan{
		Name: "surge-latency",
		Rules: []faults.Rule{
			{Target: "surge", Kind: faults.KindLatency, Latency: faults.Duration(400 * time.Millisecond)},
		},
	}
}

// SurgePoint is one intensity's measured outcome.
type SurgePoint struct {
	Intensity float64
	// Admitted and ShedEvents are fleet-wide admission outcomes;
	// ShedRate is ShedEvents / (Admitted + ShedEvents).
	Admitted   int64
	ShedEvents int64
	ShedRate   float64
	// ShedBy breaks shed events down by reason.
	ShedBy map[string]int64
	// MaxQueueDepth is the deepest any company's admission queue got
	// (bounded by the configured capacity).
	MaxQueueDepth int64
	// P99Delay is the 99th-percentile admission delay (histogram upper
	// bound; granted-immediately counts as zero).
	P99Delay time.Duration
	// Ham accounting: Shed ham must all be Recovered (re-admitted on
	// retry) or Outstanding (still on a retry timer at run end) —
	// Dropped must be zero.
	HamShed, HamRecovered, HamOutstanding, HamDropped int64
	// SpamDropped is burst spam that never retried its 451 — the load
	// the fail-safe policy sheds permanently without losing ham.
	SpamDropped int64
	Retries     int64
}

// SurgeReport is the outcome of the surge sweep.
type SurgeReport struct {
	Points []SurgePoint
}

// Surge sweeps SurgeIntensities over cfg: every run shares cfg.Seed,
// the same controller parameters (SurgeOverloadConfig) and the same
// injected service latency (SurgeLatencyPlan); only the burst intensity
// varies. The burst hits every company on day 1, hours 10–13.
func Surge(cfg RunConfig) *SurgeReport {
	rep := &SurgeReport{}
	for _, intensity := range SurgeIntensities {
		rep.Points = append(rep.Points, surgePoint(cfg, intensity))
	}
	return rep
}

// surgePoint runs one intensity and reduces it to a SurgePoint.
func surgePoint(cfg RunConfig, intensity float64) SurgePoint {
	c := cfg
	c.Overload = SurgeOverloadConfig()
	c.SurgePlan = SurgeLatencyPlan()
	c.SurgeBursts = []workload.SurgeBurst{
		{Day: 1, Hour: 10, Hours: 3, Intensity: intensity},
	}
	run := NewRun(c)
	st := run.Fleet.OverloadStats()

	p := SurgePoint{
		Intensity:      intensity,
		Admitted:       st.Ctl.Admitted(),
		ShedEvents:     st.Ctl.ShedTotal(),
		MaxQueueDepth:  int64(st.Ctl.MaxQueueDepth),
		P99Delay:       st.Ctl.DelayQuantile(0.99),
		ShedBy:         make(map[string]int64),
		HamShed:        st.HamShed,
		HamRecovered:   st.HamRecovered,
		HamOutstanding: st.HamOutstanding,
		HamDropped:     st.HamDropped,
		SpamDropped:    st.SpamDropped,
		Retries:        st.Retries,
	}
	for r, n := range st.Ctl.Shed {
		p.ShedBy[string(r)] = n
	}
	if total := p.Admitted + p.ShedEvents; total > 0 {
		p.ShedRate = float64(p.ShedEvents) / float64(total)
	}
	return p
}

// Render formats the sweep as a fixed-width table plus the ham-safety
// verdict line the acceptance criterion reads.
func (r *SurgeReport) Render() string {
	var b strings.Builder
	b.WriteString("Overload surge sweep (admission control under campaign bursts)\n")
	fmt.Fprintf(&b, "%-9s %10s %10s %9s %8s %10s %8s %9s %11s %9s\n",
		"burst", "admitted", "shed", "shedrate", "maxq", "p99-delay",
		"ham-shed", "ham-rcvd", "ham-outst", "ham-lost")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9s %10d %10d %8.1f%% %8d %10s %8d %9d %11d %9d\n",
			fmt.Sprintf("%gx", p.Intensity), p.Admitted, p.ShedEvents,
			100*p.ShedRate, p.MaxQueueDepth, p.P99Delay,
			p.HamShed, p.HamRecovered, p.HamOutstanding, p.HamDropped)
	}
	b.WriteString("\nshed events by reason:\n")
	for _, p := range r.Points {
		keys := make([]string, 0, len(p.ShedBy))
		for k := range p.ShedBy {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  %-8s", fmt.Sprintf("%gx", p.Intensity))
		if len(keys) == 0 {
			b.WriteString(" (none)")
		}
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, p.ShedBy[k])
		}
		fmt.Fprintf(&b, " spam-dropped=%d retries=%d\n", p.SpamDropped, p.Retries)
	}
	if r.HamSafe() {
		b.WriteString("\nham safety: PASS — every shed ham message was tempfailed and retried; zero silently dropped\n")
	} else {
		b.WriteString("\nham safety: FAIL — shed ham was lost\n")
	}
	return b.String()
}

// HamSafe reports the fail-safe invariant: no intensity lost ham.
func (r *SurgeReport) HamSafe() bool {
	for _, p := range r.Points {
		if p.HamDropped != 0 {
			return false
		}
	}
	return true
}
