package experiments

import (
	"strings"
	"testing"
	"time"
)

// surgeQuick is the small config the surge tests sweep: three days is
// enough for the day-1 burst plus a full retry tail.
func surgeQuick(seed int64) RunConfig {
	cfg := Quick(seed)
	cfg.Days = 3
	return cfg
}

// TestSurgeShedsSafely is the overload acceptance run: under campaign
// bursts up to 10× the controllers must shed (monotonically more with
// intensity), keep the queue bounded and the admission delay inside the
// deadline — and lose zero ham: every shed ham message is tempfailed
// and re-admitted on retry.
func TestSurgeShedsSafely(t *testing.T) {
	rep := Surge(surgeQuick(7))
	if len(rep.Points) != len(SurgeIntensities) {
		t.Fatalf("got %d points, want %d", len(rep.Points), len(SurgeIntensities))
	}
	capacity := SurgeOverloadConfig().QueueCapacity
	deadline := SurgeOverloadConfig().QueueDeadline
	var prevShed int64 = -1
	for _, p := range rep.Points {
		if p.HamDropped != 0 {
			t.Errorf("%gx: %d ham messages silently dropped; shed mail must be tempfailed, never lost", p.Intensity, p.HamDropped)
		}
		if p.HamRecovered+p.HamOutstanding != p.HamShed {
			t.Errorf("%gx: ham ledger does not balance: shed=%d recovered=%d outstanding=%d",
				p.Intensity, p.HamShed, p.HamRecovered, p.HamOutstanding)
		}
		if p.MaxQueueDepth > int64(capacity) {
			t.Errorf("%gx: max queue depth %d exceeds capacity %d", p.Intensity, p.MaxQueueDepth, capacity)
		}
		if p.P99Delay > deadline {
			t.Errorf("%gx: p99 admission delay %v exceeds queue deadline %v", p.Intensity, p.P99Delay, deadline)
		}
		if p.ShedEvents < prevShed {
			t.Errorf("%gx: shed events %d fell below previous intensity's %d", p.Intensity, p.ShedEvents, prevShed)
		}
		prevShed = p.ShedEvents
	}
	last := rep.Points[len(rep.Points)-1]
	if last.ShedEvents == 0 {
		t.Error("10x burst shed nothing; the experiment is not exercising overload")
	}
	if last.HamShed == 0 {
		t.Error("10x burst shed no ham; the recovery path is not exercised")
	}
	if last.HamShed > 0 && last.HamRecovered == 0 {
		t.Errorf("10x burst: %d ham shed but none recovered within the run", last.HamShed)
	}
	if last.SpamDropped == 0 {
		t.Error("10x burst dropped no spam; the fail-safe asymmetry is not visible")
	}
	if !rep.HamSafe() {
		t.Error("HamSafe() = false")
	}
}

// TestSurgeRenderStable pins the report rendering to a deterministic
// shape (header plus one row per intensity plus the safety verdict).
func TestSurgeRenderStable(t *testing.T) {
	rep := &SurgeReport{Points: []SurgePoint{{
		Intensity: 10, Admitted: 100, ShedEvents: 25, ShedRate: 0.2,
		MaxQueueDepth: 32, P99Delay: 10 * time.Second,
		ShedBy:  map[string]int64{"queue-full": 25},
		HamShed: 3, HamRecovered: 3,
		SpamDropped: 20, Retries: 8,
	}}}
	out := rep.Render()
	for _, want := range []string{"10x", "queue-full=25", "ham safety: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	rep.Points[0].HamDropped = 1
	if !strings.Contains(rep.Render(), "ham safety: FAIL") {
		t.Error("render does not flag lost ham")
	}
}
