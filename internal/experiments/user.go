package experiments

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/whitelist"
	"repro/internal/workload"
)

// --- E8/E16: Figure 6 spam clustering + §4.1 spurious deliveries ---

// ClusteringResult is the Figure 6 aggregate plus the spurious-delivery
// rate (spam that slipped past the CR filter because an innocent user
// solved a misdirected challenge; paper: ~1 per 10,000 challenges).
type ClusteringResult struct {
	Stats cluster.Stats
	// SpuriousDeliveries counts spam messages delivered via a solved
	// challenge.
	SpuriousDeliveries int
	// SpuriousPerChallenge = SpuriousDeliveries / challenges sent.
	SpuriousPerChallenge float64
	// DSN cross-validation, meaningful when the run emitted DSNs
	// (RunConfig.EmitDSNs): TruthBounced counts challenges the
	// simulator bounced (omniscient truth); ObservedBounced counts
	// challenges the engines independently learned about by parsing and
	// correlating an inbound DSN; BounceAgreement is the fraction of
	// truth bounces the DSN loop reproduced. The paper's methodology is
	// log-derived, so the engines' own view must track truth.
	TruthBounced    int
	ObservedBounced int
	BounceAgreement float64
}

// Clustering computes E8 and E16 from the challenge records. With DSNs
// enabled, the per-item bounce flag comes from the engines' own DSN
// feedback (what a real deployment can observe) and is cross-validated
// against simulator truth; without DSNs it comes from simulator truth
// directly.
func Clustering(r *Run) ClusteringResult {
	// Merge every engine's DSN-observed bounce map: originating gray
	// message ID -> bounce class.
	observed := make(map[string]string)
	if r.Cfg.EmitDSNs {
		for _, c := range r.Fleet.Companies {
			for id, class := range c.Engine.ObservedBounces() {
				observed[id] = class
			}
		}
	}
	observedBounced := func(id string) bool {
		switch observed[id] {
		case "no-user", "no-domain", "blocklisted":
			return true
		}
		return false
	}

	var out ClusteringResult
	var items []cluster.Item
	for _, rec := range r.Fleet.Net.Records() {
		truth := rec.Status.Bounced()
		bounced := truth
		if r.Cfg.EmitDSNs {
			bounced = observedBounced(rec.Challenge.MsgID)
		}
		if truth {
			out.TruthBounced++
			if observedBounced(rec.Challenge.MsgID) {
				out.ObservedBounced++
			}
		}
		items = append(items, cluster.Item{
			Subject: rec.Challenge.Subject,
			Sender:  rec.Challenge.To,
			Bounced: bounced,
			Solved:  rec.Solved,
		})
	}
	if out.TruthBounced > 0 {
		out.BounceAgreement = float64(out.ObservedBounced) / float64(out.TruthBounced)
	}
	cfg := cluster.DefaultConfig()
	// Scaled-down runs produce proportionally smaller campaigns; keep
	// the paper's >=10-word rule but scale the >=50-message threshold
	// with volume so the same campaigns qualify. The items clustered here
	// are challenge records, and engines deduplicate challenges per
	// sender, so cluster sizes grow sub-linearly in volume — scale the
	// threshold less than proportionally.
	if r.Cfg.VolumeScale < 1 {
		cfg.MinSize = max(10, int(50*r.Cfg.VolumeScale*3))
	}
	clusters := cluster.Build(items, cfg)
	out.Stats = cluster.Summarize(clusters)

	var challenges int64
	for _, c := range r.Fleet.Companies {
		challenges += c.Engine.Metrics().ChallengesSent
		for _, d := range c.Engine.Deliveries() {
			if d.Via != core.ViaChallenge {
				continue
			}
			if cls, ok := r.Fleet.Truth(d.MsgID); ok && cls == workload.ClassSpam {
				out.SpuriousDeliveries++
			}
		}
	}
	if challenges > 0 {
		out.SpuriousPerChallenge = float64(out.SpuriousDeliveries) / float64(challenges)
	}
	return out
}

// --- E9: Figure 7 whitelisting-delay CDFs ---

// DelayCDFResult carries the two Figure 7 curves: delivery delay for
// challenge-solved messages and for digest-authorized messages.
type DelayCDFResult struct {
	Captcha *stats.CDF
	Digest  *stats.CDF
	// Checkpoint fractions at the paper's named thresholds.
	CaptchaUnder5Min  float64 // paper: ~0.30
	CaptchaUnder30Min float64 // paper: ~0.50
	CaptchaUnder4H    float64
	DigestUnder1Day   float64
	DigestUnder3Days  float64
}

// DelayCDF computes E9 from the engines' delivery logs.
func DelayCDF(r *Run) DelayCDFResult {
	out := DelayCDFResult{Captcha: stats.NewCDF(), Digest: stats.NewCDF()}
	for _, c := range r.Fleet.Companies {
		for _, d := range c.Engine.Deliveries() {
			mins := d.Delay().Minutes()
			switch d.Via {
			case core.ViaChallenge:
				out.Captcha.Add(mins)
			case core.ViaDigest:
				out.Digest.Add(mins)
			}
		}
	}
	out.CaptchaUnder5Min = out.Captcha.FractionBelow(5)
	out.CaptchaUnder30Min = out.Captcha.FractionBelow(30)
	out.CaptchaUnder4H = out.Captcha.FractionBelow(240)
	out.DigestUnder1Day = out.Digest.FractionBelow(24 * 60)
	out.DigestUnder3Days = out.Digest.FractionBelow(3 * 24 * 60)
	return out
}

// --- E10: Figure 8 solve-time distribution ---

// SolveTimeResult histograms challenge solve latency (issue -> solve).
type SolveTimeResult struct {
	Hist *stats.Histogram // buckets in minutes
	// Under4HFrac is the fraction of solves within four hours; the paper
	// observes that challenges unsolved after 4h likely stay unsolved.
	Under4HFrac float64
	Solves      int
}

// SolveTimeDist computes E10 from the challenge records.
func SolveTimeDist(r *Run) SolveTimeResult {
	h := stats.NewHistogram(5, 30, 60, 240, 24*60, 3*24*60)
	var under4h, total int
	for _, rec := range r.Fleet.Net.Records() {
		if !rec.Solved {
			continue
		}
		mins := rec.SolvedAt.Sub(rec.Challenge.Issued).Minutes()
		h.Add(mins)
		total++
		if mins <= 240 {
			under4h++
		}
	}
	out := SolveTimeResult{Hist: h, Solves: total}
	if total > 0 {
		out.Under4HFrac = float64(under4h) / float64(total)
	}
	return out
}

// --- E11: Figure 9 whitelist change rate ---

// ChurnResult is the Figure 9 histogram: distribution of per-user new
// whitelist entries over a 60-day window (seed entries excluded), plus
// the §4.3/§6 headline rates.
type ChurnResult struct {
	Hist *stats.Histogram // paper buckets: 1-10, 10-30, ..., >600
	// ModifiedUsers is how many whitelists changed at least once.
	ModifiedUsers int
	// MeanNewPerUserDay is the fleet-wide mean churn (paper: 0.3/day).
	MeanNewPerUserDay float64
	// AtLeastOnePerDay is the fraction of modified whitelists averaging
	// >=1 new entry/day (paper: 6.8%).
	AtLeastOnePerDay float64
	WindowDays       int
}

// WhitelistChurn computes E11 over the run's final min(60, Days) days.
func WhitelistChurn(r *Run) ChurnResult {
	days := r.Cfg.Days
	if days > 60 {
		days = 60
	}
	to := r.Fleet.Clk.Now()
	from := to.Add(-time.Duration(days) * 24 * time.Hour)

	h := stats.NewHistogram(10, 30, 60, 120, 240, 600)
	var modified, users, overOnePerDay int
	var totalNew int64
	for _, c := range r.Fleet.Companies {
		wl := c.Engine.Whitelists()
		for _, u := range r.Fleet.Users(c.Name) {
			users++
			n := wl.AdditionsBetween(u, from, to)
			totalNew += int64(n)
			if n == 0 {
				continue
			}
			modified++
			// The paper histograms new entries per 60 days; rescale
			// shorter runs to the 60-day equivalent.
			scaled := float64(n) * 60 / float64(days)
			h.Add(scaled)
			if float64(n)/float64(days) >= 1 {
				overOnePerDay++
			}
		}
	}
	out := ChurnResult{Hist: h, ModifiedUsers: modified, WindowDays: days}
	if users > 0 {
		out.MeanNewPerUserDay = float64(totalNew) / float64(users) / float64(days)
	}
	if modified > 0 {
		out.AtLeastOnePerDay = float64(overOnePerDay) / float64(modified)
	}
	return out
}

// WhitelistSources tallies fleet-wide whitelist additions by mechanism
// (challenge / digest / manual / outbound / seed) — the §2 "whitelisting
// process" decomposition used in Table 1.
func WhitelistSources(r *Run) map[whitelist.Source]int {
	out := make(map[whitelist.Source]int)
	for _, c := range r.Fleet.Companies {
		for src, n := range c.Engine.Whitelists().CountBySource() {
			out[src] += n
		}
	}
	return out
}

// --- E12: Figure 10 daily pending (digest size) series ---

// PendingSeries is one user's daily digest-size time series.
type PendingSeries struct {
	User   string
	Series []int
	Mean   float64
	Max    int
}

// DailyPending computes E12: it picks three archetype users as the paper
// does — one with consistently large digests, one mid-range, one small
// with spikes — and returns their series.
func DailyPending(r *Run) []PendingSeries {
	type cand struct {
		user mail.Address
		s    []int
	}
	var cands []cand
	for _, c := range r.Fleet.Companies {
		for _, u := range r.Fleet.Users(c.Name) {
			s := r.Fleet.Digests.Series(u)
			if len(s) > 0 {
				cands = append(cands, cand{u, s})
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	mean := func(s []int) float64 {
		t := 0
		for _, v := range s {
			t += v
		}
		return float64(t) / float64(len(s))
	}
	sort.Slice(cands, func(i, j int) bool { return mean(cands[i].s) > mean(cands[j].s) })
	picks := []cand{cands[0]}
	if len(cands) > 2 {
		picks = append(picks, cands[len(cands)/2])
	}
	if len(cands) > 1 {
		picks = append(picks, cands[len(cands)-1])
	}
	var out []PendingSeries
	for _, p := range picks {
		ps := PendingSeries{User: p.user.String(), Series: p.s, Mean: mean(p.s)}
		for _, v := range p.s {
			if v > ps.Max {
				ps.Max = v
			}
		}
		out = append(out, ps)
	}
	return out
}

// --- E7: Figure 5 per-company correlations ---

// CorrelationResult is the Figure 5 dataset: per-company values of the
// five variables plus their Pearson correlation matrix.
type CorrelationResult struct {
	Companies  []string
	Users      []float64
	Emails     []float64 // daily mean
	WhitePct   []float64
	Reflection []float64
	CaptchaPct []float64
	Matrix     *stats.CorrelationMatrix
}

// Correlations computes E7.
func Correlations(r *Run) CorrelationResult {
	var out CorrelationResult
	solvedByCompany := make(map[string]int)
	sentByCompany := make(map[string]int)
	for _, rec := range r.Fleet.Net.Records() {
		sentByCompany[rec.Company]++
		if rec.Solved {
			solvedByCompany[rec.Company]++
		}
	}
	for _, c := range r.Fleet.Companies {
		m := c.Engine.Metrics()
		if m.MTAIncoming == 0 {
			continue
		}
		out.Companies = append(out.Companies, c.Name)
		out.Users = append(out.Users, float64(c.Engine.Users()))
		out.Emails = append(out.Emails, float64(m.MTAIncoming)/float64(r.Cfg.Days))
		reaching := m.SpoolWhite + m.SpoolBlack + m.SpoolGray
		whitePct, refl := 0.0, 0.0
		if reaching > 0 {
			whitePct = float64(m.SpoolWhite) / float64(reaching)
			refl = float64(m.ChallengesSent) / float64(reaching)
		}
		out.WhitePct = append(out.WhitePct, whitePct)
		out.Reflection = append(out.Reflection, refl)
		capPct := 0.0
		if sentByCompany[c.Name] > 0 {
			capPct = float64(solvedByCompany[c.Name]) / float64(sentByCompany[c.Name])
		}
		out.CaptchaPct = append(out.CaptchaPct, capPct)
	}
	out.Matrix = stats.NewCorrelationMatrix(
		[]string{"users", "emails", "white", "reflection", "captcha"},
		[][]float64{out.Users, out.Emails, out.WhitePct, out.Reflection, out.CaptchaPct},
	)
	return out
}

// --- E4: Table 1 general statistics ---

// GeneralStats mirrors the paper's Table 1.
type GeneralStats struct {
	Companies         int
	OpenRelays        int
	UsersProtected    int
	TotalIncoming     int64
	GraySpool         int64
	BlackSpool        int64
	WhiteSpool        int64
	DroppedAtMTA      int64
	ChallengesSent    int64
	WhitelistedDigest int
	SolvedCaptchas    int
	DroppedReverseDNS int64
	DroppedRBL        int64
	DroppedAntivirus  int64
	DroppedByFilters  int64
	EmailsPerDay      float64
	WhitePerDay       float64
	ChallengesPerDay  float64
	TotalDays         int
	SpoolSuppressed   int64
	QuarantineExpired int64
}

// General computes E4.
func General(r *Run) GeneralStats {
	agg := r.Aggregate().All
	st := r.Fleet.Net.DeliveryStats()
	srcs := WhitelistSources(r)
	openRelays := 0
	users := 0
	for _, c := range r.Fleet.Companies {
		if r.Fleet.Profile(c.Name).OpenRelay {
			openRelays++
		}
		users += c.Engine.Users()
	}
	days := r.Cfg.Days
	return GeneralStats{
		Companies:         len(r.Fleet.Companies),
		OpenRelays:        openRelays,
		UsersProtected:    users,
		TotalIncoming:     agg.MTAIncoming,
		GraySpool:         agg.SpoolGray,
		BlackSpool:        agg.SpoolBlack,
		WhiteSpool:        agg.SpoolWhite,
		DroppedAtMTA:      agg.TotalMTADropped(),
		ChallengesSent:    agg.ChallengesSent,
		WhitelistedDigest: srcs[whitelist.SourceDigest],
		SolvedCaptchas:    st.Solved,
		DroppedReverseDNS: agg.FilterDropped["reverse-dns"],
		DroppedRBL:        agg.FilterDropped["rbl"],
		DroppedAntivirus:  agg.FilterDropped["antivirus"],
		DroppedByFilters:  agg.TotalFilterDropped(),
		EmailsPerDay:      float64(agg.MTAIncoming) / float64(days),
		WhitePerDay:       float64(agg.SpoolWhite) / float64(days),
		ChallengesPerDay:  float64(agg.ChallengesSent) / float64(days),
		TotalDays:         days * len(r.Fleet.Companies),
		SpoolSuppressed:   agg.ChallengeSuppressed,
		QuarantineExpired: agg.QuarantineExpired,
	}
}

// --- ablations ---

// SplitMTAOutAblation compares user-mail blacklisting exposure between
// split and shared MTA-OUT configurations (§5.1 design choice).
type SplitMTAOutAblation struct {
	SharedCompanies int
	SplitCompanies  int
	// UserMailBounceShared/Split: fraction of companies whose MailIP was
	// ever listed.
	SharedListedFrac float64
	SplitListedFrac  float64
}

// SplitAblation computes the §5.1 ablation.
func SplitAblation(r *Run) SplitMTAOutAblation {
	var out SplitMTAOutAblation
	var sharedListed, splitListed int
	for _, c := range r.Fleet.Companies {
		listed := r.Fleet.Checker.ListedFraction(c.MailIP) > 0
		if c.SplitMTAOut() {
			out.SplitCompanies++
			if listed {
				splitListed++
			}
		} else {
			out.SharedCompanies++
			if listed {
				sharedListed++
			}
		}
	}
	if out.SharedCompanies > 0 {
		out.SharedListedFrac = float64(sharedListed) / float64(out.SharedCompanies)
	}
	if out.SplitCompanies > 0 {
		out.SplitListedFrac = float64(splitListed) / float64(out.SplitCompanies)
	}
	return out
}
