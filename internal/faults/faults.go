// Package faults is the fault-injection substrate for the simulated
// Internet and for live deployments under test.
//
// The paper's central lesson is that a CR filter's behaviour is dominated
// by how it degrades when its dependencies misbehave: challenge servers
// get blacklisted (§5.1), and the auxiliary reverse-DNS and RBL checks are
// network lookups that time out, serve stale data, or disappear entirely.
// This package lets an experiment (or an operator) declare those
// misbehaviours as a composable *fault plan* — probability- or
// schedule-driven rules targeting named dependencies — and have every
// injection point in the pipeline consult one seeded Injector, so chaos
// runs stay byte-for-byte reproducible.
//
// Injection points and their target names:
//
//	dns             dnssim.Server lookups (timeout / SERVFAIL / latency)
//	rbl:<name>      one blocklist provider's query interface (outage / stale)
//	rbl:*           every provider
//	av              the antivirus scanner backend (clamd-style daemon down)
//	smarthost       per-item challenge delivery (4xx storms, send errors)
//	smarthost-dial  the smarthost session/dial itself; "smarthost*" covers both
//	store           durable-state snapshot writes
//	reputation      sender-reputation store lookups
//	surge           per-message engine service latency (overload/surge runs)
//	wal-append      write-ahead-log record appends (internal/wal)
//	wal-fsync       write-ahead-log group-commit fsyncs (durability stalls)
//	wal-spool       outbound-spool journal appends (per-transition drops)
//	outbound-dsn    DSN generation at the remote MTA (malformed bounces)
//	domain:<name>   one destination domain's delivery path (dark MX)
//
// Unknown targets are rejected at plan load: Validate checks every
// rule's target against this list (plus "rbl:<name>" and prefix
// wildcards), so a typo in a JSON plan fails fast instead of silently
// injecting nothing.
//
// The hardened consumers (internal/filters.Hardened, core.Engine,
// outbound.Queue) turn injected faults into explicit fail-open or
// fail-closed degradation rather than silent misclassification.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// Kind enumerates the injectable fault flavours.
type Kind string

// Fault kinds.
const (
	// KindTimeout: the dependency never answers (DNS SERVFAIL/timeout,
	// hung socket). Consumers see a temporary error.
	KindTimeout Kind = "timeout"
	// KindOutage: the dependency is down — immediate hard error
	// (connection refused, provider unreachable).
	KindOutage Kind = "outage"
	// KindTempfail: an SMTP-style 4xx transient rejection from the
	// smarthost; the queue must retry.
	KindTempfail Kind = "tempfail"
	// KindStale: the dependency answers, but with stale/empty data (an
	// RBL zone that stopped updating). No error is surfaced — this is the
	// silent-wrong-answer failure mode.
	KindStale Kind = "stale"
	// KindLatency: the dependency answers after Latency. Injection points
	// compare it against their per-lookup deadline and convert
	// over-deadline answers into timeouts.
	KindLatency Kind = "latency"
	// KindError: a generic hard error (disk write failure, EIO).
	KindError Kind = "error"
)

// Injected fault errors, one per kind that surfaces as an error.
var (
	// ErrTimeout is returned for KindTimeout (and over-deadline latency).
	ErrTimeout = errors.New("faults: injected timeout")
	// ErrOutage is returned for KindOutage.
	ErrOutage = errors.New("faults: injected outage")
	// ErrTempfail is returned for KindTempfail.
	ErrTempfail = errors.New("faults: injected tempfail")
	// ErrInjected is returned for KindError.
	ErrInjected = errors.New("faults: injected error")
)

// IsInjected reports whether err originates from an injector.
func IsInjected(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrOutage) ||
		errors.Is(err, ErrTempfail) || errors.Is(err, ErrInjected)
}

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("250ms", "4h"), so fault plans stay human-editable JSON.
type Duration time.Duration

// MarshalJSON renders the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or raw nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("faults: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// Rule is one fault source in a plan. A rule fires when its target
// matches, its schedule window (if any) contains the current time, and a
// seeded coin flip passes Probability.
type Rule struct {
	// Target selects the injection point ("dns", "rbl:spamhaus",
	// "smarthost", ...). A trailing '*' is a prefix wildcard: "rbl:*"
	// matches every provider.
	Target string `json:"target"`
	// Kind selects the fault flavour.
	Kind Kind `json:"kind"`
	// Probability in [0,1] of firing per consultation; values <= 0 mean
	// "always" so schedule-only rules need no explicit probability.
	Probability float64 `json:"probability,omitempty"`
	// Latency is the injected answer delay for KindLatency.
	Latency Duration `json:"latency,omitempty"`
	// FromHour/UntilHour bound the rule to a window of simulation hours
	// relative to the injector's start. UntilHour 0 means "forever".
	FromHour  float64 `json:"from_hour,omitempty"`
	UntilHour float64 `json:"until_hour,omitempty"`
}

// matches reports whether the rule's target covers target.
func (r *Rule) matches(target string) bool {
	if strings.HasSuffix(r.Target, "*") {
		return strings.HasPrefix(target, strings.TrimSuffix(r.Target, "*"))
	}
	return r.Target == target
}

// active reports whether the rule's schedule window contains elapsed.
func (r *Rule) active(elapsed time.Duration) bool {
	h := elapsed.Hours()
	if h < r.FromHour {
		return false
	}
	return r.UntilHour <= 0 || h < r.UntilHour
}

// Plan is a named, composable set of fault rules.
type Plan struct {
	// Name identifies the plan in logs and reports.
	Name string `json:"name"`
	// Rules are evaluated in order; the first firing rule wins, so put
	// specific targets before wildcards.
	Rules []Rule `json:"rules"`
}

// validTargets are the exact injection-point names consulted anywhere
// in the pipeline. "rbl:" is special-cased (providers are dynamic), and
// a trailing '*' wildcard is checked against these prefixes.
var validTargets = []string{
	"dns", "av", "smarthost", "smarthost-dial", "store", "reputation", "surge",
	"wal-append", "wal-fsync", "wal-spool", "outbound-dsn",
}

// validTarget reports whether a rule's target can ever match a real
// injection point.
func validTarget(target string) bool {
	if strings.HasPrefix(target, "rbl:") && len(target) > len("rbl:") {
		return true // provider names (and "rbl:*") are deployment-defined
	}
	if strings.HasPrefix(target, "domain:") && len(target) > len("domain:") {
		return true // destination domains are deployment-defined
	}
	if prefix, ok := strings.CutSuffix(target, "*"); ok {
		if prefix == "" {
			return true // "*" matches everything by construction
		}
		for _, t := range validTargets {
			if strings.HasPrefix(t, prefix) || strings.HasPrefix("rbl:", prefix) || strings.HasPrefix("domain:", prefix) {
				return true
			}
		}
		return false
	}
	for _, t := range validTargets {
		if target == t {
			return true
		}
	}
	return false
}

// Validate rejects malformed plans before they poison a long run.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	known := map[Kind]bool{
		KindTimeout: true, KindOutage: true, KindTempfail: true,
		KindStale: true, KindLatency: true, KindError: true,
	}
	for i, r := range p.Rules {
		if r.Target == "" {
			return fmt.Errorf("faults: rule %d has no target", i)
		}
		if !validTarget(r.Target) {
			return fmt.Errorf("faults: rule %d targets unknown injection point %q (valid: %s, rbl:<name>, and '*' prefix wildcards)",
				i, r.Target, strings.Join(validTargets, ", "))
		}
		if !known[r.Kind] {
			return fmt.Errorf("faults: rule %d has unknown kind %q", i, r.Kind)
		}
		if r.Probability < 0 || r.Probability > 1 {
			return fmt.Errorf("faults: rule %d probability %v out of [0,1]", i, r.Probability)
		}
		if r.Kind == KindLatency && r.Latency <= 0 {
			return fmt.Errorf("faults: rule %d is latency-kind without a latency", i)
		}
		if r.UntilHour > 0 && r.UntilHour <= r.FromHour {
			return fmt.Errorf("faults: rule %d window [%v,%v) is empty", i, r.FromHour, r.UntilHour)
		}
	}
	return nil
}

// Describe renders a one-line-per-rule summary for startup logs.
func (p *Plan) Describe() string {
	if p == nil || len(p.Rules) == 0 {
		return "no active fault plan"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan %q (%d rules):", p.Name, len(p.Rules))
	for _, r := range p.Rules {
		prob := r.Probability
		if prob <= 0 {
			prob = 1
		}
		fmt.Fprintf(&b, "\n  %s %s p=%.2f", r.Target, r.Kind, prob)
		if r.Kind == KindLatency {
			fmt.Fprintf(&b, " latency=%v", time.Duration(r.Latency))
		}
		if r.FromHour > 0 || r.UntilHour > 0 {
			until := "∞"
			if r.UntilHour > 0 {
				until = fmt.Sprintf("%gh", r.UntilHour)
			}
			fmt.Fprintf(&b, " window=[%gh,%s)", r.FromHour, until)
		}
	}
	return b.String()
}

// Parse decodes a JSON fault plan from r and validates it.
func Parse(r io.Reader) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads and validates a JSON fault plan from path.
func LoadFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: open plan: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	return p, nil
}

// Decision is the outcome of one injector consultation. A zero Decision
// means "no fault". Latency is the injected answer delay (KindLatency
// under the caller's deadline); callers above their deadline receive
// Err == ErrTimeout instead.
type Decision struct {
	Err     error
	Kind    Kind
	Latency time.Duration
}

// Injector is consulted by every injection point. A nil Injector injects
// nothing; implementations must be safe for concurrent use.
type Injector interface {
	// Decide returns the fault (if any) for one consultation of target.
	// deadline is the caller's per-lookup deadline, used to convert
	// injected latency into timeouts; pass 0 for "no deadline" (latency
	// faults then never fire as errors).
	Decide(target string, deadline time.Duration) Decision
}

// Set is the standard Injector: a plan plus a seeded RNG and a clock for
// schedule windows. Equal (plan, seed, consultation order) give equal
// decisions, which is what keeps chaos runs reproducible.
type Set struct {
	plan  *Plan
	clk   clock.Clock
	start time.Time

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int64 // "target/kind" -> fired
	asked  int64
}

// New builds an injector for plan. The schedule-window origin is the
// clock's current time at construction. A nil plan yields an injector
// that never fires (convenient for unconditional wiring).
func New(plan *Plan, seed int64, clk clock.Clock) *Set {
	return &Set{
		plan:   plan,
		clk:    clk,
		start:  clk.Now(),
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]int64),
	}
}

// Decide implements Injector.
func (s *Set) Decide(target string, deadline time.Duration) Decision {
	if s == nil || s.plan == nil || len(s.plan.Rules) == 0 {
		return Decision{}
	}
	elapsed := s.clk.Now().Sub(s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.asked++
	for i := range s.plan.Rules {
		r := &s.plan.Rules[i]
		if !r.matches(target) || !r.active(elapsed) {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && s.rng.Float64() >= r.Probability {
			// One draw per matching rule keeps the RNG stream aligned
			// across runs regardless of which rules fire.
			continue
		}
		d := s.decision(r, deadline)
		if d.Err != nil || d.Kind != "" {
			s.counts[target+"/"+string(r.Kind)]++
		}
		return d
	}
	return Decision{}
}

// decision converts a fired rule into the caller-visible Decision.
func (s *Set) decision(r *Rule, deadline time.Duration) Decision {
	switch r.Kind {
	case KindTimeout:
		return Decision{Err: ErrTimeout, Kind: r.Kind}
	case KindOutage:
		return Decision{Err: ErrOutage, Kind: r.Kind}
	case KindTempfail:
		return Decision{Err: ErrTempfail, Kind: r.Kind}
	case KindError:
		return Decision{Err: ErrInjected, Kind: r.Kind}
	case KindStale:
		return Decision{Kind: KindStale}
	case KindLatency:
		lat := time.Duration(r.Latency)
		if deadline > 0 && lat >= deadline {
			return Decision{Err: ErrTimeout, Kind: KindTimeout, Latency: lat}
		}
		return Decision{Kind: KindLatency, Latency: lat}
	default:
		return Decision{}
	}
}

// Counts returns how often each "target/kind" fault fired, for the chaos
// report. Keys are sorted on render; the map itself is a copy.
func (s *Set) Counts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Consulted returns the total number of Decide calls.
func (s *Set) Consulted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asked
}

// RenderCounts formats the fired-fault counters, sorted by key.
func (s *Set) RenderCounts() string {
	counts := s.Counts()
	if len(counts) == 0 {
		return "no faults fired"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-28s %d", k, counts[k])
	}
	return b.String()
}

// TornWrite models what a crash leaves of an un-synced write: an
// arbitrary prefix of b survives (possibly none, possibly all), and the
// last surviving byte is sometimes corrupted — the sector that was
// mid-flight when power went. The WAL's replay must treat any such tail
// as "truncate here and boot" (checked by experiments.CrashRestart and
// the wal torn-tail fuzz test). The input is never modified.
func TornWrite(rng *rand.Rand, b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	n := rng.Intn(len(b) + 1)
	out := append([]byte(nil), b[:n]...)
	if n > 0 && rng.Intn(4) == 0 {
		out[n-1] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// DefaultChaosPlan is the canned plan used by the chaos example and the
// reproduce -only=chaos artifact when no -fault-plan file is given: a
// total RBL blackout (the §5.1 "our provider stopped answering" scenario)
// plus background DNS flakiness, smarthost 4xx storms and a slow scanner.
func DefaultChaosPlan() *Plan {
	return &Plan{
		Name: "default-chaos",
		Rules: []Rule{
			{Target: "rbl:*", Kind: KindOutage}, // 100% provider outage
			{Target: "dns", Kind: KindTimeout, Probability: 0.05},
			{Target: "smarthost", Kind: KindTempfail, Probability: 0.30},
			{Target: "av", Kind: KindError, Probability: 0.01},
		},
	}
}
