package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

var epoch = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

func TestParseAndValidate(t *testing.T) {
	plan, err := Parse(strings.NewReader(`{
		"name": "p",
		"rules": [
			{"target": "dns", "kind": "timeout", "probability": 0.5},
			{"target": "rbl:*", "kind": "outage"},
			{"target": "dns", "kind": "latency", "latency": "250ms"},
			{"target": "store", "kind": "error", "from_hour": 24, "until_hour": 48}
		]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(plan.Rules) != 4 || plan.Name != "p" {
		t.Fatalf("unexpected plan: %+v", plan)
	}
	if got := time.Duration(plan.Rules[2].Latency); got != 250*time.Millisecond {
		t.Errorf("latency = %v, want 250ms", got)
	}

	bad := []string{
		`{"rules": [{"target": "", "kind": "timeout"}]}`,
		`{"rules": [{"target": "dns", "kind": "meteor"}]}`,
		`{"rules": [{"target": "dns", "kind": "timeout", "probability": 1.5}]}`,
		`{"rules": [{"target": "dns", "kind": "latency"}]}`,
		`{"rules": [{"target": "dns", "kind": "timeout", "from_hour": 5, "until_hour": 5}]}`,
		`{"rules": [{"target": "dns", "kind": "timeout", "surprise": true}]}`,
	}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("Parse(%s) accepted a malformed plan", s)
		}
	}
}

func TestWildcardFirstMatchWins(t *testing.T) {
	// A specific rule listed before the wildcard takes precedence.
	plan := &Plan{Rules: []Rule{
		{Target: "rbl:spamhaus", Kind: KindStale},
		{Target: "rbl:*", Kind: KindOutage},
	}}
	inj := New(plan, 1, clock.NewSim(epoch))

	if d := inj.Decide("rbl:spamhaus", 0); d.Kind != KindStale || d.Err != nil {
		t.Errorf("specific rule: got %+v, want stale", d)
	}
	if d := inj.Decide("rbl:cbl", 0); !errors.Is(d.Err, ErrOutage) {
		t.Errorf("wildcard rule: got %+v, want outage", d)
	}
	if d := inj.Decide("dns", 0); d.Err != nil || d.Kind != "" {
		t.Errorf("unmatched target: got %+v, want zero decision", d)
	}
}

func TestScheduleWindow(t *testing.T) {
	clk := clock.NewSim(epoch)
	plan := &Plan{Rules: []Rule{
		{Target: "dns", Kind: KindOutage, FromHour: 2, UntilHour: 4},
	}}
	inj := New(plan, 1, clk)

	if d := inj.Decide("dns", 0); d.Err != nil {
		t.Errorf("before window: got %v", d.Err)
	}
	clk.Advance(3 * time.Hour)
	if d := inj.Decide("dns", 0); !errors.Is(d.Err, ErrOutage) {
		t.Errorf("inside window: got %v, want outage", d.Err)
	}
	clk.Advance(2 * time.Hour)
	if d := inj.Decide("dns", 0); d.Err != nil {
		t.Errorf("after window: got %v", d.Err)
	}
}

func TestLatencyAgainstDeadline(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Target: "dns", Kind: KindLatency, Latency: Duration(2 * time.Second)},
	}}
	inj := New(plan, 1, clock.NewSim(epoch))

	// Over-deadline latency becomes a timeout error.
	if d := inj.Decide("dns", time.Second); !errors.Is(d.Err, ErrTimeout) {
		t.Errorf("2s latency vs 1s deadline: got %+v, want timeout", d)
	}
	// Sub-deadline latency is a harmless delay.
	if d := inj.Decide("dns", 5*time.Second); d.Err != nil || d.Latency != 2*time.Second {
		t.Errorf("2s latency vs 5s deadline: got %+v", d)
	}
	// No deadline: latency faults never error.
	if d := inj.Decide("dns", 0); d.Err != nil {
		t.Errorf("no deadline: got %v", d.Err)
	}
}

func TestSeededDeterminism(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Target: "dns", Kind: KindTimeout, Probability: 0.3},
		{Target: "rbl:*", Kind: KindOutage, Probability: 0.5},
	}}
	run := func() []bool {
		inj := New(plan, 99, clock.NewSim(epoch))
		var fired []bool
		for i := 0; i < 200; i++ {
			fired = append(fired, inj.Decide("dns", 0).Err != nil)
			fired = append(fired, inj.Decide("rbl:spamhaus", 0).Err != nil)
		}
		return fired
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically-seeded runs", i)
		}
	}
	// And probability actually thins the stream.
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Errorf("probabilistic rules fired %d/%d times", n, len(a))
	}
}

func TestCountsAndNilPlan(t *testing.T) {
	inj := New(nil, 1, clock.NewSim(epoch))
	if d := inj.Decide("dns", 0); d.Err != nil || d.Kind != "" {
		t.Fatalf("nil plan injected %+v", d)
	}

	inj = New(&Plan{Rules: []Rule{{Target: "av", Kind: KindError}}}, 1, clock.NewSim(epoch))
	for i := 0; i < 3; i++ {
		inj.Decide("av", 0)
	}
	inj.Decide("dns", 0)
	if got := inj.Counts()["av/error"]; got != 3 {
		t.Errorf("Counts[av/error] = %d, want 3", got)
	}
	if got := inj.Consulted(); got != 4 {
		t.Errorf("Consulted = %d, want 4", got)
	}
}

func TestDescribe(t *testing.T) {
	if got := (*Plan)(nil).Describe(); got != "no active fault plan" {
		t.Errorf("nil Describe = %q", got)
	}
	desc := DefaultChaosPlan().Describe()
	for _, want := range []string{"default-chaos", "rbl:* outage p=1.00", "dns timeout p=0.05"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestValidateRejectsUnknownTargets(t *testing.T) {
	bad := []string{"dsn", "smartohst", "rbl", "av2", "surge-x", "q*", "domain:", "wal-spool2", "outbound", "spool"}
	for _, target := range bad {
		p := &Plan{Rules: []Rule{{Target: target, Kind: KindTimeout}}}
		err := p.Validate()
		if err == nil {
			t.Errorf("Validate accepted unknown target %q", target)
			continue
		}
		if !strings.Contains(err.Error(), "dns") || !strings.Contains(err.Error(), "rbl:<name>") {
			t.Errorf("error for %q should list valid targets, got: %v", target, err)
		}
	}
	good := []string{
		"dns", "av", "smarthost", "smarthost-dial", "store", "reputation",
		"surge", "rbl:spamhaus", "rbl:*", "smarthost*", "s*", "*",
		"wal-spool", "outbound-dsn", "wal-*", "domain:dark.example", "domain:*",
	}
	for _, target := range good {
		p := &Plan{Rules: []Rule{{Target: target, Kind: KindTimeout}}}
		if err := p.Validate(); err != nil {
			t.Errorf("Validate rejected valid target %q: %v", target, err)
		}
	}
}
