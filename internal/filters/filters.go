// Package filters implements the auxiliary anti-spam filters the CR
// product runs on gray messages before deciding to send a challenge.
//
// The product under study chained three filters — an antivirus scan, a
// reverse-DNS check, and a SpamHaus IP blacklist lookup — which together
// dropped 77.5% of gray-spool messages (Table 1: rDNS 3.53M, RBL 4.97M,
// AV 0.27M drops). §5.2 evaluates adding a fourth, SPF, which this package
// also provides. Filters compose into a Chain that short-circuits on the
// first Drop and keeps per-filter counters for the measurement pipeline.
package filters

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/rbl"
	"repro/internal/reputation"
	"repro/internal/resilience"
	"repro/internal/spf"

	"repro/internal/mail"
)

// Verdict is a filter's decision about one message.
type Verdict int

// Verdicts.
const (
	// Pass lets the message continue down the chain.
	Pass Verdict = iota
	// Drop rejects the message; the dispatcher discards it silently
	// (the product never bounces filter-dropped mail).
	Drop
)

// String returns "pass" or "drop".
func (v Verdict) String() string {
	if v == Drop {
		return "drop"
	}
	return "pass"
}

// Result is a verdict plus the filter's reason, recorded in the logs the
// measurement pipeline aggregates.
type Result struct {
	Verdict Verdict
	Reason  string
}

// Filter inspects one message. Implementations must be safe for
// concurrent use.
type Filter interface {
	// Name identifies the filter in counters and reports.
	Name() string
	// Check returns the filter's verdict for msg.
	Check(msg *mail.Message) Result
}

// Prober is a Filter whose verdict depends on external infrastructure
// (DNS, a blocklist, a scanner daemon) and can therefore fail for
// reasons that have nothing to do with the message. Probe separates the
// two channels Check conflates: a Result when the dependency answered,
// or an error when it did not. The Hardened wrapper turns those errors
// into explicit fail-open / fail-closed degradation.
type Prober interface {
	Filter
	// Probe returns the filter's verdict, or an infrastructure error
	// (in which case the Result is meaningless).
	Probe(msg *mail.Message) (Result, error)
}

// DegradeMode is a filter's policy when its dependency is unavailable.
type DegradeMode int

// Degradation policies.
const (
	// FailOpen: pass the message through. Correct for advisory checks
	// (reverse-DNS, RBL, SPF): a DNS outage must not silently drop real
	// mail — the worst case is a few extra challenges (§4, §5.1).
	FailOpen DegradeMode = iota
	// FailClosed: hold (drop from the chain's perspective) the message.
	// Correct for structural checks like the antivirus scan: delivering
	// unscanned attachments is worse than quarantining them.
	FailClosed
)

// String returns the policy label.
func (m DegradeMode) String() string {
	if m == FailClosed {
		return "fail-closed"
	}
	return "fail-open"
}

// Antivirus is a signature-matching scanner. The simulation embeds one of
// the configured signatures in the body of virus-carrying messages, which
// exercises the same code path a ClamAV-style engine would: a scan over
// the body with a signature set. Real deployments talk to a scanner
// daemon (clamd) over a socket, so the scan can fail independently of
// the message — the optional injector models that backend (target "av").
type Antivirus struct {
	signatures []string

	mu  sync.Mutex
	inj faults.Injector
}

// EICAR is the standard antivirus test signature; included by default.
const EICAR = `X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!$H+H*`

// NewAntivirus returns a scanner matching the given signatures plus EICAR.
func NewAntivirus(signatures ...string) *Antivirus {
	return &Antivirus{signatures: append([]string{EICAR}, signatures...)}
}

// Name implements Filter.
func (a *Antivirus) Name() string { return "antivirus" }

// SetInjector installs a fault source for the scanner backend.
func (a *Antivirus) SetInjector(inj faults.Injector) {
	a.mu.Lock()
	a.inj = inj
	a.mu.Unlock()
}

// Check implements Filter: Drop if any signature occurs in the body.
func (a *Antivirus) Check(msg *mail.Message) Result {
	r, _ := a.Probe(msg)
	return r
}

// Probe implements Prober: an injected scanner-backend fault is an
// infrastructure error; otherwise scan the body.
func (a *Antivirus) Probe(msg *mail.Message) (Result, error) {
	a.mu.Lock()
	inj := a.inj
	a.mu.Unlock()
	if inj != nil {
		if d := inj.Decide("av", 0); d.Err != nil {
			return Result{}, fmt.Errorf("antivirus: scanner backend: %w", d.Err)
		}
	}
	for _, sig := range a.signatures {
		if strings.Contains(msg.Body, sig) {
			return Result{Drop, "virus signature " + truncate(sig, 24)}, nil
		}
	}
	return Result{Verdict: Pass}, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ReverseDNS drops messages whose client IP has no PTR record. Hosts on
// residential/botnet address space typically have none (or a generic
// one), making this a cheap but effective pre-filter — it dropped 3.5M
// messages in the study.
type ReverseDNS struct {
	resolver dnssim.Resolver
}

// NewReverseDNS returns the reverse-DNS filter.
func NewReverseDNS(r dnssim.Resolver) *ReverseDNS {
	return &ReverseDNS{resolver: r}
}

// Name implements Filter.
func (f *ReverseDNS) Name() string { return "reverse-dns" }

// Check implements Filter. Any lookup failure drops — the historical
// (unhardened) behaviour, where a resolver outage silently turns into
// "no PTR". Hardened chains use Probe instead.
func (f *ReverseDNS) Check(msg *mail.Message) Result {
	if msg.ClientIP == "" {
		return Result{Drop, "no client IP"}
	}
	if _, err := f.resolver.LookupPTR(msg.ClientIP); err != nil {
		return Result{Drop, "no PTR for " + msg.ClientIP}
	}
	return Result{Verdict: Pass}
}

// Probe implements Prober: an authoritative NXDOMAIN drops, while a
// temporary resolver failure is an infrastructure error left to the
// degradation policy.
func (f *ReverseDNS) Probe(msg *mail.Message) (Result, error) {
	if msg.ClientIP == "" {
		return Result{Drop, "no client IP"}, nil
	}
	if _, err := f.resolver.LookupPTR(msg.ClientIP); err != nil {
		if dnssim.IsTemporary(err) {
			return Result{}, err
		}
		return Result{Drop, "no PTR for " + msg.ClientIP}, nil
	}
	return Result{Verdict: Pass}, nil
}

// RBLBackend is the lookup surface the RBL filter needs. *rbl.Provider
// implements it directly; dnscache.RBLCache memoizes it with a TTL on
// the virtual clock.
type RBLBackend interface {
	Name() string
	Query(ip string) (bool, error)
}

// Interface check: the raw provider must keep satisfying the backend
// surface so existing call sites compile unchanged.
var _ RBLBackend = (*rbl.Provider)(nil)

// RBL drops messages whose client IP is listed on the configured
// blocklist (SpamHaus in the product under study).
type RBL struct {
	provider RBLBackend
}

// NewRBL returns the IP-blacklist filter backed by provider.
func NewRBL(provider RBLBackend) *RBL {
	return &RBL{provider: provider}
}

// Name implements Filter.
func (f *RBL) Name() string { return "rbl" }

// Check implements Filter.
func (f *RBL) Check(msg *mail.Message) Result {
	r, _ := f.Probe(msg)
	return r
}

// Probe implements Prober, using the provider's fallible Query path so a
// provider outage surfaces as an error instead of a silent "not listed".
func (f *RBL) Probe(msg *mail.Message) (Result, error) {
	if msg.ClientIP == "" {
		return Result{Verdict: Pass}, nil
	}
	listed, err := f.provider.Query(msg.ClientIP)
	if err != nil {
		return Result{}, err
	}
	if listed {
		return Result{Drop, "listed on " + f.provider.Name()}, nil
	}
	return Result{Verdict: Pass}, nil
}

// SPF drops messages whose envelope sender domain publishes an SPF policy
// that the client IP fails. This is the §5.2 extension: not part of the
// product's default chain, evaluated offline in the paper (Figure 12).
// Only a hard Fail drops; SoftFail/Neutral/None/errors pass, matching the
// conservative deployment the paper reasons about.
type SPF struct {
	checker *spf.Checker
}

// NewSPF returns the SPF filter using checker.
func NewSPF(checker *spf.Checker) *SPF {
	return &SPF{checker: checker}
}

// Name implements Filter.
func (f *SPF) Name() string { return "spf" }

// Check implements Filter.
func (f *SPF) Check(msg *mail.Message) Result {
	r, _ := f.Probe(msg)
	return r
}

// Probe implements Prober: TempError (a DNS lookup failed transiently)
// is an infrastructure error; every other non-Fail result passes, as in
// the paper's conservative deployment.
func (f *SPF) Probe(msg *mail.Message) (Result, error) {
	if msg.EnvelopeFrom.IsNull() {
		return Result{Verdict: Pass}, nil // bounces have no sender domain to check
	}
	switch f.checker.Check(msg.ClientIP, msg.EnvelopeFrom.Domain) {
	case spf.Fail:
		return Result{Drop, "SPF fail for " + msg.EnvelopeFrom.Domain}, nil
	case spf.TempError:
		return Result{}, fmt.Errorf("spf: %w for %s", dnssim.ErrTimeout, msg.EnvelopeFrom.Domain)
	default:
		return Result{Verdict: Pass}, nil
	}
}

// Reputation drops messages from suspect-band senders before the
// expensive probe filters run, consulting the shared sender-reputation
// store. It is the "tightening" half of the reputation subsystem (the
// trusted fast path lives in core.Engine, which skips the whole chain).
// The store is advisory infrastructure: a failed lookup is an
// infrastructure error, so under Harden with FailOpen the message
// passes through to the rest of the chain — a reputation outage never
// blocks mail.
type Reputation struct {
	store *reputation.Store
}

// NewReputation returns the reputation chain stage over store.
func NewReputation(store *reputation.Store) *Reputation {
	return &Reputation{store: store}
}

// Name implements Filter.
func (f *Reputation) Name() string { return "reputation" }

// Store returns the backing reputation store.
func (f *Reputation) Store() *reputation.Store { return f.store }

// Check implements Filter; lookup failures pass (fail-open).
func (f *Reputation) Check(msg *mail.Message) Result {
	r, _ := f.Probe(msg)
	return r
}

// Probe implements Prober: a store outage is an infrastructure error,
// a suspect-band verdict drops, anything else passes.
func (f *Reputation) Probe(msg *mail.Message) (Result, error) {
	v, err := f.store.Lookup(msg.EnvelopeFrom, msg.ClientIP)
	if err != nil {
		return Result{}, err
	}
	if v.Band == reputation.Suspect {
		return Result{Drop, fmt.Sprintf("suspect-sender(score=%.2f,mass=%.1f)", v.Score, v.Mass)}, nil
	}
	return Result{Verdict: Pass}, nil
}

// Hardened wraps a Prober with the full degradation path: a circuit
// breaker guarding the dependency, bounded retries with jittered backoff
// for transient errors, and an explicit DegradeMode for when both give
// up. It is safe for concurrent use.
type Hardened struct {
	inner   Prober
	mode    DegradeMode
	breaker *resilience.Breaker
	retrier *resilience.Retrier

	mu       sync.Mutex
	degraded int64
}

// HardenOpts parameterises Harden. Zero values get sensible defaults.
type HardenOpts struct {
	// Breaker guards the dependency; nil builds one from
	// resilience.DefaultBreakerConfig (requires Clock).
	Breaker *resilience.Breaker
	// Retrier bounds in-line retries; nil builds a 3-attempt retrier
	// with the default backoff and no sleeping (safe in simulation).
	Retrier *resilience.Retrier
	// Seed seeds the default retrier's jitter source.
	Seed int64
}

// Harden wraps inner with the given degradation policy.
func Harden(inner Prober, mode DegradeMode, opts HardenOpts) *Hardened {
	br := opts.Breaker
	rt := opts.Retrier
	if rt == nil {
		rt = resilience.NewRetrier(3, resilience.DefaultBackoff(), opts.Seed)
	}
	return &Hardened{inner: inner, mode: mode, breaker: br, retrier: rt}
}

// Name implements Filter (the wrapper is transparent in reports).
func (h *Hardened) Name() string { return h.inner.Name() }

// Mode returns the configured degradation policy.
func (h *Hardened) Mode() DegradeMode { return h.mode }

// Degraded returns how many checks fell back to the degradation policy.
func (h *Hardened) Degraded() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// Breaker returns the guarding breaker (nil if none).
func (h *Hardened) Breaker() *resilience.Breaker { return h.breaker }

// Check implements Filter, resolving degradation per the policy.
func (h *Hardened) Check(msg *mail.Message) Result {
	r, _ := h.Run(msg)
	return r
}

// Probe implements Prober by delegating to the wrapped filter's single
// (unguarded) probe; the guarded path is Run.
func (h *Hardened) Probe(msg *mail.Message) (Result, error) { return h.inner.Probe(msg) }

// Run evaluates the filter behind the breaker and retrier. degraded is
// true when the dependency stayed unavailable and the returned Result is
// the policy's fallback (Pass for FailOpen, Drop for FailClosed).
func (h *Hardened) Run(msg *mail.Message) (r Result, degraded bool) {
	if h.breaker != nil && !h.breaker.Allow() {
		return h.fallback(), true
	}
	err := h.retrier.Do(func() error {
		var perr error
		r, perr = h.inner.Probe(msg)
		return perr
	})
	if h.breaker != nil {
		h.breaker.Record(err)
	}
	if err != nil {
		return h.fallback(), true
	}
	return r, false
}

// fallback returns the degraded-mode result and counts it.
func (h *Hardened) fallback() Result {
	h.mu.Lock()
	h.degraded++
	h.mu.Unlock()
	if h.mode == FailClosed {
		return Result{Drop, h.inner.Name() + " unavailable (fail-closed)"}
	}
	return Result{Pass, h.inner.Name() + " unavailable (fail-open)"}
}

// Degradation records one filter falling back to its policy while
// evaluating a message.
type Degradation struct {
	Filter string
	Mode   DegradeMode
}

// Outcome is the full result of running a message through a Chain.
type Outcome struct {
	Result Result
	// DroppedBy names the dropping filter ("" if the message passed).
	DroppedBy string
	// Degraded lists every filter that fell back to its degradation
	// policy for this message, in evaluation order.
	Degraded []Degradation
}

// Chain runs filters in order, stopping at the first Drop, and keeps
// per-filter pass/drop/degradation counters. It is safe for concurrent
// use.
type Chain struct {
	filters []Filter

	mu       sync.Mutex
	passed   int64
	drops    map[string]int64
	degraded map[string]int64
}

// NewChain builds a chain over the given filters, evaluated in order.
func NewChain(fs ...Filter) *Chain {
	return &Chain{filters: fs, drops: make(map[string]int64), degraded: make(map[string]int64)}
}

// Names returns the filter names in evaluation order.
func (c *Chain) Names() []string {
	out := make([]string, len(c.filters))
	for i, f := range c.filters {
		out[i] = f.Name()
	}
	return out
}

// Check runs msg through the chain. The returned name is the filter that
// dropped it ("" when the message passed every filter).
func (c *Chain) Check(msg *mail.Message) (Result, string) {
	o := c.Run(msg)
	return o.Result, o.DroppedBy
}

// Run evaluates msg against every filter in order, short-circuiting on
// the first Drop, and reports any degradation that occurred. Hardened
// filters go through their guarded path; bare filters use Check.
func (c *Chain) Run(msg *mail.Message) Outcome {
	var out Outcome
	for _, f := range c.filters {
		var r Result
		if h, ok := f.(*Hardened); ok {
			var deg bool
			r, deg = h.Run(msg)
			if deg {
				out.Degraded = append(out.Degraded, Degradation{Filter: h.Name(), Mode: h.Mode()})
				c.mu.Lock()
				c.degraded[h.Name()]++
				c.mu.Unlock()
			}
		} else {
			r = f.Check(msg)
		}
		if r.Verdict == Drop {
			c.mu.Lock()
			c.drops[f.Name()]++
			c.mu.Unlock()
			out.Result = r
			out.DroppedBy = f.Name()
			return out
		}
	}
	c.mu.Lock()
	c.passed++
	c.mu.Unlock()
	out.Result = Result{Verdict: Pass}
	return out
}

// Stats returns (messages passed, drops per filter name).
func (c *Chain) Stats() (passed int64, drops map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.drops))
	for k, v := range c.drops {
		out[k] = v
	}
	return c.passed, out
}

// DegradedStats returns, per filter name, how many evaluations fell back
// to the filter's degradation policy.
func (c *Chain) DegradedStats() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.degraded))
	for k, v := range c.degraded {
		out[k] = v
	}
	return out
}

// TotalDropped returns the total number of messages dropped by any filter.
func (c *Chain) TotalDropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.drops {
		n += v
	}
	return n
}
