// Package filters implements the auxiliary anti-spam filters the CR
// product runs on gray messages before deciding to send a challenge.
//
// The product under study chained three filters — an antivirus scan, a
// reverse-DNS check, and a SpamHaus IP blacklist lookup — which together
// dropped 77.5% of gray-spool messages (Table 1: rDNS 3.53M, RBL 4.97M,
// AV 0.27M drops). §5.2 evaluates adding a fourth, SPF, which this package
// also provides. Filters compose into a Chain that short-circuits on the
// first Drop and keeps per-filter counters for the measurement pipeline.
package filters

import (
	"strings"
	"sync"

	"repro/internal/dnssim"
	"repro/internal/rbl"
	"repro/internal/spf"

	"repro/internal/mail"
)

// Verdict is a filter's decision about one message.
type Verdict int

// Verdicts.
const (
	// Pass lets the message continue down the chain.
	Pass Verdict = iota
	// Drop rejects the message; the dispatcher discards it silently
	// (the product never bounces filter-dropped mail).
	Drop
)

// String returns "pass" or "drop".
func (v Verdict) String() string {
	if v == Drop {
		return "drop"
	}
	return "pass"
}

// Result is a verdict plus the filter's reason, recorded in the logs the
// measurement pipeline aggregates.
type Result struct {
	Verdict Verdict
	Reason  string
}

// Filter inspects one message. Implementations must be safe for
// concurrent use.
type Filter interface {
	// Name identifies the filter in counters and reports.
	Name() string
	// Check returns the filter's verdict for msg.
	Check(msg *mail.Message) Result
}

// Antivirus is a signature-matching scanner. The simulation embeds one of
// the configured signatures in the body of virus-carrying messages, which
// exercises the same code path a ClamAV-style engine would: a scan over
// the body with a signature set.
type Antivirus struct {
	signatures []string
}

// EICAR is the standard antivirus test signature; included by default.
const EICAR = `X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR-STANDARD-ANTIVIRUS-TEST-FILE!$H+H*`

// NewAntivirus returns a scanner matching the given signatures plus EICAR.
func NewAntivirus(signatures ...string) *Antivirus {
	return &Antivirus{signatures: append([]string{EICAR}, signatures...)}
}

// Name implements Filter.
func (a *Antivirus) Name() string { return "antivirus" }

// Check implements Filter: Drop if any signature occurs in the body.
func (a *Antivirus) Check(msg *mail.Message) Result {
	for _, sig := range a.signatures {
		if strings.Contains(msg.Body, sig) {
			return Result{Drop, "virus signature " + truncate(sig, 24)}
		}
	}
	return Result{Verdict: Pass}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ReverseDNS drops messages whose client IP has no PTR record. Hosts on
// residential/botnet address space typically have none (or a generic
// one), making this a cheap but effective pre-filter — it dropped 3.5M
// messages in the study.
type ReverseDNS struct {
	resolver dnssim.Resolver
}

// NewReverseDNS returns the reverse-DNS filter.
func NewReverseDNS(r dnssim.Resolver) *ReverseDNS {
	return &ReverseDNS{resolver: r}
}

// Name implements Filter.
func (f *ReverseDNS) Name() string { return "reverse-dns" }

// Check implements Filter.
func (f *ReverseDNS) Check(msg *mail.Message) Result {
	if msg.ClientIP == "" {
		return Result{Drop, "no client IP"}
	}
	if _, err := f.resolver.LookupPTR(msg.ClientIP); err != nil {
		return Result{Drop, "no PTR for " + msg.ClientIP}
	}
	return Result{Verdict: Pass}
}

// RBL drops messages whose client IP is listed on the configured
// blocklist (SpamHaus in the product under study).
type RBL struct {
	provider *rbl.Provider
}

// NewRBL returns the IP-blacklist filter backed by provider.
func NewRBL(provider *rbl.Provider) *RBL {
	return &RBL{provider: provider}
}

// Name implements Filter.
func (f *RBL) Name() string { return "rbl" }

// Check implements Filter.
func (f *RBL) Check(msg *mail.Message) Result {
	if msg.ClientIP != "" && f.provider.IsListed(msg.ClientIP) {
		return Result{Drop, "listed on " + f.provider.Name()}
	}
	return Result{Verdict: Pass}
}

// SPF drops messages whose envelope sender domain publishes an SPF policy
// that the client IP fails. This is the §5.2 extension: not part of the
// product's default chain, evaluated offline in the paper (Figure 12).
// Only a hard Fail drops; SoftFail/Neutral/None/errors pass, matching the
// conservative deployment the paper reasons about.
type SPF struct {
	checker *spf.Checker
}

// NewSPF returns the SPF filter using checker.
func NewSPF(checker *spf.Checker) *SPF {
	return &SPF{checker: checker}
}

// Name implements Filter.
func (f *SPF) Name() string { return "spf" }

// Check implements Filter.
func (f *SPF) Check(msg *mail.Message) Result {
	if msg.EnvelopeFrom.IsNull() {
		return Result{Verdict: Pass} // bounces have no sender domain to check
	}
	if f.checker.Check(msg.ClientIP, msg.EnvelopeFrom.Domain) == spf.Fail {
		return Result{Drop, "SPF fail for " + msg.EnvelopeFrom.Domain}
	}
	return Result{Verdict: Pass}
}

// Chain runs filters in order, stopping at the first Drop, and keeps
// per-filter pass/drop counters. It is safe for concurrent use.
type Chain struct {
	filters []Filter

	mu     sync.Mutex
	passed int64
	drops  map[string]int64
}

// NewChain builds a chain over the given filters, evaluated in order.
func NewChain(fs ...Filter) *Chain {
	return &Chain{filters: fs, drops: make(map[string]int64)}
}

// Names returns the filter names in evaluation order.
func (c *Chain) Names() []string {
	out := make([]string, len(c.filters))
	for i, f := range c.filters {
		out[i] = f.Name()
	}
	return out
}

// Check runs msg through the chain. The returned name is the filter that
// dropped it ("" when the message passed every filter).
func (c *Chain) Check(msg *mail.Message) (Result, string) {
	for _, f := range c.filters {
		if r := f.Check(msg); r.Verdict == Drop {
			c.mu.Lock()
			c.drops[f.Name()]++
			c.mu.Unlock()
			return r, f.Name()
		}
	}
	c.mu.Lock()
	c.passed++
	c.mu.Unlock()
	return Result{Verdict: Pass}, ""
}

// Stats returns (messages passed, drops per filter name).
func (c *Chain) Stats() (passed int64, drops map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.drops))
	for k, v := range c.drops {
		out[k] = v
	}
	return c.passed, out
}

// TotalDropped returns the total number of messages dropped by any filter.
func (c *Chain) TotalDropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.drops {
		n += v
	}
	return n
}
