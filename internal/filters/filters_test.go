package filters

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/spf"
)

var t0 = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

func msgFrom(ip, fromAddr string) *mail.Message {
	m := &mail.Message{
		ID:       mail.NewID("t"),
		Rcpt:     mail.MustParseAddress("user@corp.example"),
		ClientIP: ip,
		Subject:  "test message",
	}
	if fromAddr != "" {
		m.EnvelopeFrom = mail.MustParseAddress(fromAddr)
	}
	return m
}

func TestAntivirus(t *testing.T) {
	av := NewAntivirus("BADSIG-123")
	clean := msgFrom("192.0.2.1", "a@b.example")
	clean.Body = "hello, just a normal message"
	if r := av.Check(clean); r.Verdict != Pass {
		t.Fatalf("clean message dropped: %+v", r)
	}
	infected := msgFrom("192.0.2.1", "a@b.example")
	infected.Body = "please open the attachment BADSIG-123 now"
	if r := av.Check(infected); r.Verdict != Drop {
		t.Fatal("infected message passed")
	}
	eicar := msgFrom("192.0.2.1", "a@b.example")
	eicar.Body = "prefix " + EICAR + " suffix"
	if r := av.Check(eicar); r.Verdict != Drop {
		t.Fatal("EICAR message passed")
	}
}

func TestReverseDNS(t *testing.T) {
	dns := dnssim.NewServer()
	dns.AddPTR("192.0.2.10", "mail.good.example")
	f := NewReverseDNS(dns)
	if r := f.Check(msgFrom("192.0.2.10", "a@b.example")); r.Verdict != Pass {
		t.Fatalf("host with PTR dropped: %+v", r)
	}
	if r := f.Check(msgFrom("198.51.100.66", "a@b.example")); r.Verdict != Drop {
		t.Fatal("host without PTR passed")
	}
	if r := f.Check(msgFrom("", "a@b.example")); r.Verdict != Drop {
		t.Fatal("message without client IP passed")
	}
}

func TestRBLFilter(t *testing.T) {
	clk := clock.NewSim(t0)
	p := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), clk)
	p.AddStatic("203.0.113.13")
	f := NewRBL(p)
	if r := f.Check(msgFrom("203.0.113.13", "a@b.example")); r.Verdict != Drop {
		t.Fatal("listed IP passed")
	}
	if r := f.Check(msgFrom("203.0.113.14", "a@b.example")); r.Verdict != Pass {
		t.Fatal("unlisted IP dropped")
	}
}

func TestSPFFilter(t *testing.T) {
	dns := dnssim.NewServer()
	dns.AddTXT("strict.example", "v=spf1 ip4:192.0.2.0/24 -all")
	dns.AddTXT("soft.example", "v=spf1 ~all")
	f := NewSPF(spf.New(dns))

	// Hard fail drops.
	if r := f.Check(msgFrom("198.51.100.1", "x@strict.example")); r.Verdict != Drop {
		t.Fatal("SPF Fail passed")
	}
	// Pass passes.
	if r := f.Check(msgFrom("192.0.2.5", "x@strict.example")); r.Verdict != Pass {
		t.Fatal("SPF Pass dropped")
	}
	// SoftFail passes (conservative deployment).
	if r := f.Check(msgFrom("198.51.100.1", "x@soft.example")); r.Verdict != Pass {
		t.Fatal("SoftFail dropped")
	}
	// No policy passes.
	if r := f.Check(msgFrom("198.51.100.1", "x@nopolicy.example")); r.Verdict != Pass {
		t.Fatal("None dropped")
	}
	// Null sender (bounce) passes without a lookup.
	bounce := msgFrom("198.51.100.1", "")
	if r := f.Check(bounce); r.Verdict != Pass {
		t.Fatal("null sender dropped")
	}
}

func buildChain(t *testing.T) (*Chain, *dnssim.Server, *rbl.Provider) {
	t.Helper()
	dns := dnssim.NewServer()
	clk := clock.NewSim(t0)
	p := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), clk)
	chain := NewChain(NewAntivirus(), NewReverseDNS(dns), NewRBL(p))
	return chain, dns, p
}

func TestChainOrderShortCircuit(t *testing.T) {
	chain, dns, p := buildChain(t)
	dns.AddPTR("192.0.2.1", "mail.ok.example")
	p.AddStatic("192.0.2.1")

	// Virus + listed IP: antivirus is first, so it must take the drop.
	m := msgFrom("192.0.2.1", "a@b.example")
	m.Body = EICAR
	_, name := chain.Check(m)
	if name != "antivirus" {
		t.Fatalf("dropped by %q, want antivirus (chain order)", name)
	}
	// Clean body, listed IP, PTR present: rbl takes it.
	m2 := msgFrom("192.0.2.1", "a@b.example")
	_, name2 := chain.Check(m2)
	if name2 != "rbl" {
		t.Fatalf("dropped by %q, want rbl", name2)
	}
}

func TestChainPassAndStats(t *testing.T) {
	chain, dns, _ := buildChain(t)
	dns.AddPTR("192.0.2.2", "mail.fine.example")

	for i := 0; i < 3; i++ {
		r, name := chain.Check(msgFrom("192.0.2.2", "a@b.example"))
		if r.Verdict != Pass || name != "" {
			t.Fatalf("clean message dropped by %q", name)
		}
	}
	// One rDNS drop.
	chain.Check(msgFrom("198.51.100.9", "a@b.example"))

	passed, drops := chain.Stats()
	if passed != 3 {
		t.Fatalf("passed = %d, want 3", passed)
	}
	if drops["reverse-dns"] != 1 {
		t.Fatalf("drops = %v", drops)
	}
	if chain.TotalDropped() != 1 {
		t.Fatalf("TotalDropped = %d", chain.TotalDropped())
	}
}

func TestChainNames(t *testing.T) {
	chain, _, _ := buildChain(t)
	names := chain.Names()
	want := []string{"antivirus", "reverse-dns", "rbl"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestEmptyChainPassesEverything(t *testing.T) {
	chain := NewChain()
	r, name := chain.Check(msgFrom("1.2.3.4", "a@b.example"))
	if r.Verdict != Pass || name != "" {
		t.Fatal("empty chain dropped a message")
	}
}

func TestChainStatsIsolated(t *testing.T) {
	chain, _, _ := buildChain(t)
	_, drops := chain.Stats()
	drops["injected"] = 99
	_, drops2 := chain.Stats()
	if _, ok := drops2["injected"]; ok {
		t.Fatal("Stats returned aliased internal map")
	}
}

func TestChainConcurrent(t *testing.T) {
	chain, dns, _ := buildChain(t)
	dns.AddPTR("192.0.2.3", "mail.x.example")
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chain.Check(msgFrom("192.0.2.3", "a@b.example"))
		}()
	}
	wg.Wait()
	passed, _ := chain.Stats()
	if passed != 64 {
		t.Fatalf("passed = %d, want 64", passed)
	}
}

func TestVerdictString(t *testing.T) {
	if Pass.String() != "pass" || Drop.String() != "drop" {
		t.Fatal("Verdict.String mismatch")
	}
}

func BenchmarkChainCleanMessage(b *testing.B) {
	dns := dnssim.NewServer()
	dns.AddPTR("192.0.2.2", "mail.fine.example")
	clk := clock.NewSim(t0)
	p := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), clk)
	chain := NewChain(NewAntivirus(), NewReverseDNS(dns), NewRBL(p))
	m := msgFrom("192.0.2.2", "a@b.example")
	m.Body = "an ordinary message body with a reasonable amount of text in it"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.Check(m)
	}
}
