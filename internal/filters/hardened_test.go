package filters

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/resilience"
)

// flakyProber fails its next `failures` probes with err, then passes.
type flakyProber struct {
	name     string
	failures int
	err      error
	probes   int
}

func (f *flakyProber) Name() string { return f.name }
func (f *flakyProber) Check(msg *mail.Message) Result {
	r, _ := f.Probe(msg)
	return r
}
func (f *flakyProber) Probe(msg *mail.Message) (Result, error) {
	f.probes++
	if f.failures > 0 {
		f.failures--
		return Result{}, f.err
	}
	return Result{Verdict: Pass}, nil
}

func TestHardenedRetriesAbsorbTransientFaults(t *testing.T) {
	fp := &flakyProber{name: "dep", failures: 2, err: errors.New("flap")}
	h := Harden(fp, FailOpen, HardenOpts{Seed: 1})
	r, degraded := h.Run(msgFrom("192.0.2.1", "a@b.example"))
	if degraded || r.Verdict != Pass {
		t.Fatalf("2 transient failures not absorbed by 3 attempts: %+v degraded=%v", r, degraded)
	}
	if fp.probes != 3 {
		t.Fatalf("probes = %d, want 3", fp.probes)
	}
	if h.Degraded() != 0 {
		t.Fatalf("Degraded = %d", h.Degraded())
	}
}

func TestHardenedFailOpenVsFailClosed(t *testing.T) {
	persistent := errors.New("down")
	open := Harden(&flakyProber{name: "advisory", failures: 1 << 30, err: persistent}, FailOpen, HardenOpts{Seed: 1})
	r, degraded := open.Run(msgFrom("192.0.2.1", "a@b.example"))
	if !degraded || r.Verdict != Pass {
		t.Fatalf("fail-open: %+v degraded=%v", r, degraded)
	}

	closed := Harden(&flakyProber{name: "scanner", failures: 1 << 30, err: persistent}, FailClosed, HardenOpts{Seed: 1})
	r, degraded = closed.Run(msgFrom("192.0.2.1", "a@b.example"))
	if !degraded || r.Verdict != Drop {
		t.Fatalf("fail-closed: %+v degraded=%v", r, degraded)
	}
	if closed.Degraded() != 1 {
		t.Fatalf("Degraded = %d", closed.Degraded())
	}
}

func TestHardenedBreakerShortCircuits(t *testing.T) {
	clk := clock.NewSim(t0)
	fp := &flakyProber{name: "dep", failures: 1 << 30, err: errors.New("down")}
	h := Harden(fp, FailOpen, HardenOpts{
		Breaker: resilience.NewBreaker("dep", resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Minute}, clk),
		Seed:    1,
	})
	m := msgFrom("192.0.2.1", "a@b.example")
	h.Run(m)
	h.Run(m) // trips after 2 consecutive (post-retry) failures
	probesBefore := fp.probes
	h.Run(m) // breaker open: no probe at all
	if fp.probes != probesBefore {
		t.Fatalf("probe reached a tripped dependency (%d -> %d)", probesBefore, fp.probes)
	}
	if h.Breaker().State() != resilience.Open {
		t.Fatalf("breaker state = %v", h.Breaker().State())
	}
	// Recovery: dependency heals, window elapses, probe closes the breaker.
	fp.failures = 0
	clk.Advance(time.Minute)
	if r, degraded := h.Run(m); degraded || r.Verdict != Pass {
		t.Fatalf("post-recovery run: %+v degraded=%v", r, degraded)
	}
	if h.Breaker().State() != resilience.Closed {
		t.Fatalf("breaker did not close after successful probe: %v", h.Breaker().State())
	}
}

func TestChainRunRecordsDegradations(t *testing.T) {
	// An RBL filter whose provider is under a 100% injected outage: the
	// hardened chain fails open and reports the degradation, instead of
	// silently passing (or dropping) the mail.
	clk := clock.NewSim(t0)
	provider := rbl.NewProvider("spamhaus", rbl.DefaultPolicy(), clk)
	provider.AddStatic("198.51.100.66")
	provider.SetInjector(faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "rbl:*", Kind: faults.KindOutage},
	}}, 1, clk))

	chain := NewChain(
		NewAntivirus(),
		Harden(NewRBL(provider), FailOpen, HardenOpts{Seed: 1}),
	)
	o := chain.Run(msgFrom("198.51.100.66", "a@b.example"))
	if o.Result.Verdict != Pass || o.DroppedBy != "" {
		t.Fatalf("outcome = %+v, want fail-open pass", o)
	}
	if len(o.Degraded) != 1 || o.Degraded[0].Filter != "rbl" || o.Degraded[0].Mode != FailOpen {
		t.Fatalf("degradations = %+v", o.Degraded)
	}
	if got := chain.DegradedStats()["rbl"]; got != 1 {
		t.Fatalf("DegradedStats = %v", chain.DegradedStats())
	}
	// A listed IP that the outage hid: without the outage it drops.
	provider.SetInjector(nil)
	o = chain.Run(msgFrom("198.51.100.66", "a@b.example"))
	if o.DroppedBy != "rbl" || len(o.Degraded) != 0 {
		t.Fatalf("post-outage outcome = %+v", o)
	}
}

func TestReverseDNSProbeSeparatesChannels(t *testing.T) {
	dns := dnssim.NewServer()
	dns.SetInjector(faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "dns", Kind: faults.KindTimeout},
	}}, 1, clock.NewSim(t0)))
	f := NewReverseDNS(dns)
	// Probe surfaces the resolver fault as an error...
	if _, err := f.Probe(msgFrom("192.0.2.10", "a@b.example")); err == nil {
		t.Fatal("Probe hid the resolver outage")
	}
	// ...while legacy Check turns it into a drop (the unhardened path).
	if r := f.Check(msgFrom("192.0.2.10", "a@b.example")); r.Verdict != Drop {
		t.Fatal("legacy Check changed behaviour")
	}
	dns.SetInjector(nil)
	// An authoritative no-PTR is a verdict, not an error.
	r, err := f.Probe(msgFrom("192.0.2.10", "a@b.example"))
	if err != nil || r.Verdict != Drop {
		t.Fatalf("authoritative NXDOMAIN: r=%+v err=%v", r, err)
	}
}
