// Package gateway adapts the CR engine to the SMTP server: it is the glue
// a live deployment (cmd/crserver, examples/company) uses to run the
// paper's product for real — TCP SMTP in, dispatcher decisions out, with
// MTA-IN rejections surfaced as proper SMTP status codes at RCPT time
// exactly like the studied MTAs did (550 no-such-user for 62.36% of their
// traffic).
package gateway

import (
	"repro/internal/core"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/overload"
	"repro/internal/smtp"
)

// Backend adapts a core.Engine to smtp.Backend.
type Backend struct {
	engine *core.Engine
	grey   *greylist.Store
	ctl    *overload.Controller
}

// Option customises a Backend.
type Option func(*Backend)

// WithGreylist enables SMTP greylisting in front of the engine: unseen
// (network, sender, recipient) tuples get a 451 at RCPT time and must
// retry after the configured delay — the companion technique §5.2 hints
// at, cutting challenge volume before the CR engine even sees the spam.
func WithGreylist(g *greylist.Store) Option {
	return func(b *Backend) { b.grey = g }
}

// WithOverload puts an admission controller in front of Deliver: a
// message the controller sheds is tempfailed — 451 under load, 421
// while draining for shutdown — and never reaches the engine, so a
// compliant sender retries it later. The shed policy is strictly
// fail-safe: overload converts deliveries into retries, never losses.
func WithOverload(ctl *overload.Controller) Option {
	return func(b *Backend) { b.ctl = ctl }
}

// New returns the SMTP backend for engine.
func New(engine *core.Engine, opts ...Option) *Backend {
	b := &Backend{engine: engine}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Engine returns the wrapped engine.
func (b *Backend) Engine() *core.Engine { return b.engine }

// ValidateSender implements smtp.Backend: the resolvability and
// administrative-rejection checks run at MAIL FROM so spam is refused as
// early as possible.
func (b *Backend) ValidateSender(from mail.Address) *smtp.Reply {
	probe := &mail.Message{EnvelopeFrom: from, Rcpt: b.anyLocal()}
	switch b.engine.CheckMTAIn(probe) {
	case core.Unresolvable:
		return &smtp.Reply{Code: 450, Text: "cannot resolve sender domain"}
	case core.SenderRejected:
		return &smtp.Reply{Code: 550, Text: "sender rejected"}
	default:
		return nil
	}
}

// anyLocal fabricates a syntactically-valid local recipient so the
// sender-only checks can run through CheckMTAIn.
func (b *Backend) anyLocal() mail.Address {
	domains := b.engine.Config().Domains
	if len(domains) == 0 {
		return mail.Address{Local: "postmaster", Domain: "localhost.localdomain"}
	}
	return mail.Address{Local: "postmaster", Domain: domains[0]}
}

// ValidateRcpt implements smtp.Backend: relay policy and recipient
// existence, rejected with the SMTP codes real MTAs use, then (when
// enabled) greylisting. The greylist runs last so rejections for
// non-existent users stay permanent — greylisting must never mask a 550.
func (b *Backend) ValidateRcpt(from, rcpt mail.Address) *smtp.Reply {
	probe := &mail.Message{EnvelopeFrom: from, Rcpt: rcpt}
	switch b.engine.CheckMTAIn(probe) {
	case core.NoRelay:
		return &smtp.Reply{Code: 554, Text: "relay access denied"}
	case core.UnknownRecipient:
		return &smtp.Reply{Code: 550, Text: "no such user"}
	case core.Malformed:
		return &smtp.Reply{Code: 553, Text: "mailbox name not allowed"}
	}
	if b.grey != nil {
		// The SMTP server resolves the client IP; it is not available
		// here, so the greylist keys on sender+recipient with a
		// placeholder network when unset. Deliver() re-checks with the
		// real client IP for accounting.
		if b.grey.Check("0.0.0.0", from, rcpt) == greylist.TempReject {
			return &smtp.Reply{Code: 451, Text: "greylisted, please retry later"}
		}
	}
	return nil
}

// Deliver implements smtp.Backend: accepted messages run the full
// dispatcher pipeline (white/black/gray, filters, challenge). With an
// admission controller installed, delivery first acquires a slot (or
// waits, bounded by the controller's queue deadline); a shed message is
// tempfailed so the sending MTA retries it.
func (b *Backend) Deliver(msg *mail.Message) *smtp.Reply {
	if b.ctl != nil {
		grant, reason, ok := b.ctl.Wait(msg.ID)
		if !ok {
			if reason == overload.ReasonDraining {
				return &smtp.Reply{Code: 421, Text: "service shutting down, please retry later"}
			}
			return &smtp.Reply{Code: 451, Text: "server busy (" + string(reason) + "), please retry later"}
		}
		defer grant.Release()
	}
	switch b.engine.Receive(msg) {
	case core.Accepted:
		return nil
	case core.Unresolvable:
		return &smtp.Reply{Code: 450, Text: "cannot resolve sender domain"}
	case core.SenderRejected:
		return &smtp.Reply{Code: 550, Text: "sender rejected"}
	case core.NoRelay:
		return &smtp.Reply{Code: 554, Text: "relay access denied"}
	case core.UnknownRecipient:
		return &smtp.Reply{Code: 550, Text: "no such user"}
	default:
		return &smtp.Reply{Code: 554, Text: "transaction failed"}
	}
}
