package gateway

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/smtp"
	"repro/internal/whitelist"
)

// liveDeployment wires a full CR stack behind a TCP SMTP server.
func liveDeployment(t *testing.T) (addr string, eng *core.Engine, dns *dnssim.Server, challenges *[]core.OutboundChallenge) {
	t.Helper()
	clk := clock.Real{}
	dns = dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "127.0.0.1") // test clients dial from loopback
	dns.AddPTR("127.0.0.1", "localhost.example.com")

	wl := whitelist.NewStore(clk)
	chain := filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns))
	var sent []core.OutboundChallenge
	eng = core.New(core.Config{
		Name:             "live",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, chain, wl, func(ch core.OutboundChallenge) { sent = append(sent, ch) })
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))

	srv := smtp.NewServer(smtp.Config{Hostname: "mta.corp.example", ReadTimeout: 5 * time.Second}, New(eng))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(srv.Close)
	return l.Addr().String(), eng, dns, &sent
}

func dial(t *testing.T, addr string) *smtp.Client {
	t.Helper()
	c, err := smtp.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Hello("client.example.com"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEndToEndGrayChallenge(t *testing.T) {
	addr, eng, _, sent := liveDeployment(t)
	c := dial(t, addr)
	alice := mail.MustParseAddress("alice@example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	body := smtp.BuildMessage(alice, bob, "hello from a new correspondent today", "hi")
	if err := c.SendMail(alice, []mail.Address{bob}, body); err != nil {
		t.Fatal(err)
	}
	if len(*sent) != 1 {
		t.Fatalf("challenges = %d, want 1", len(*sent))
	}
	if eng.QuarantineLen() != 1 {
		t.Fatal("message not quarantined")
	}
	// Solve it through the captcha service: delivery completes.
	svc := eng.Captcha()
	tok := (*sent)[0].Token
	ans, err := svc.Answer(tok)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Solve(tok, ans); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().Delivered[core.ViaChallenge]; got != 1 {
		t.Fatalf("delivered = %d", got)
	}
}

func TestEndToEndWhitelisted(t *testing.T) {
	addr, eng, _, sent := liveDeployment(t)
	alice := mail.MustParseAddress("alice@example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	eng.AddManualWhitelist(bob, alice)

	c := dial(t, addr)
	if err := c.SendMail(alice, []mail.Address{bob}, smtp.BuildMessage(alice, bob, "ping", "x")); err != nil {
		t.Fatal(err)
	}
	if len(*sent) != 0 {
		t.Fatal("whitelisted sender was challenged")
	}
	if got := eng.Metrics().Delivered[core.ViaWhitelist]; got != 1 {
		t.Fatalf("instant deliveries = %d", got)
	}
}

func TestRcptRejectionCodes(t *testing.T) {
	addr, _, _, _ := liveDeployment(t)
	c := dial(t, addr)
	alice := mail.MustParseAddress("alice@example.com")
	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
	// Unknown local user: 550.
	err := c.Rcpt(mail.MustParseAddress("ghost@corp.example"))
	if r, ok := err.(*smtp.Reply); !ok || r.Code != 550 || !strings.Contains(r.Text, "no such user") {
		t.Fatalf("unknown rcpt err = %v", err)
	}
	// Foreign domain: 554 relay denied.
	err = c.Rcpt(mail.MustParseAddress("x@elsewhere.example"))
	if r, ok := err.(*smtp.Reply); !ok || r.Code != 554 {
		t.Fatalf("relay err = %v", err)
	}
}

func TestSenderRejectionCodes(t *testing.T) {
	addr, eng, _, _ := liveDeployment(t)
	banned := mail.MustParseAddress("banned@example.com")
	eng.RejectSender(banned)

	c := dial(t, addr)
	err := c.Mail(banned)
	if r, ok := err.(*smtp.Reply); !ok || r.Code != 550 {
		t.Fatalf("banned sender err = %v", err)
	}
	// Unresolvable sender domain: 450 (temporary, like real MTAs).
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	err = c.Mail(mail.MustParseAddress("x@unresolvable.example"))
	if r, ok := err.(*smtp.Reply); !ok || r.Code != 450 || !r.Temporary() {
		t.Fatalf("unresolvable sender err = %v", err)
	}
}

func TestGreylistedRcptGets451ThenPasses(t *testing.T) {
	clk := clock.Real{}
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "127.0.0.1")
	wl := whitelist.NewStore(clk)
	eng := core.New(core.Config{
		Name:          "grey",
		Domains:       []string{"corp.example"},
		ChallengeFrom: mail.MustParseAddress("challenge@corp.example"),
	}, clk, dns, filters.NewChain(), wl, func(core.OutboundChallenge) {})
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))

	gl := greylist.New(greylist.Config{Delay: time.Millisecond, Window: time.Hour, PassTTL: time.Hour}, clk)
	srv := smtp.NewServer(smtp.Config{Hostname: "mta", ReadTimeout: 5 * time.Second}, New(eng, WithGreylist(gl)))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	c := dial(t, l.Addr().String())
	alice := mail.MustParseAddress("alice@example.com")
	bob := mail.MustParseAddress("bob@corp.example")
	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
	err = c.Rcpt(bob)
	r, ok := err.(*smtp.Reply)
	if !ok || r.Code != 451 || !r.Temporary() {
		t.Fatalf("first contact reply = %v, want 451", err)
	}
	// Unknown users still get a permanent 550, not a greylist 451.
	err = c.Rcpt(mail.MustParseAddress("ghost@corp.example"))
	if r, ok := err.(*smtp.Reply); !ok || r.Code != 550 {
		t.Fatalf("unknown rcpt = %v, want 550", err)
	}
	// Retry after the (1ms) delay passes.
	time.Sleep(5 * time.Millisecond)
	if err := c.Rcpt(bob); err != nil {
		t.Fatalf("retry rejected: %v", err)
	}
	if err := c.Data("Subject: hello after greylist\r\n\r\nhi"); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().MTAIncoming != 1 {
		t.Fatal("message did not reach the engine after greylist pass")
	}
}

func TestFilterDropIsSilent(t *testing.T) {
	// A message dropped by the filter chain is accepted at SMTP level
	// (the product never bounces filter-dropped mail — that would be
	// backscatter) but goes nowhere.
	addr, eng, dns, sent := liveDeployment(t)
	dns.RegisterMailDomain("shady.example", "203.0.113.7")
	// No PTR for 127.0.0.1? It has one (registered in setup). Use a
	// virus body instead: antivirus drops it.
	c := dial(t, addr)
	evil := mail.MustParseAddress("evil@shady.example")
	bob := mail.MustParseAddress("bob@corp.example")
	body := smtp.BuildMessage(evil, bob, "totally legitimate invoice attached here for you", filters.EICAR)
	if err := c.SendMail(evil, []mail.Address{bob}, body); err != nil {
		t.Fatalf("filter-dropped message must still get 250: %v", err)
	}
	if len(*sent) != 0 || eng.QuarantineLen() != 0 {
		t.Fatal("virus message was challenged or quarantined")
	}
	if eng.Metrics().FilterDropped["antivirus"] != 1 {
		t.Fatal("antivirus drop not counted")
	}
}
