package gateway

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/overload"
	"repro/internal/whitelist"
)

// overloadBackend wires an engine behind an admission controller with a
// single slot and no queue, so the second concurrent delivery sheds.
func overloadBackend(t *testing.T, opts ...Option) (*Backend, *overload.Controller) {
	t.Helper()
	clk := clock.Real{}
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "127.0.0.1")
	wl := whitelist.NewStore(clk)
	eng := core.New(core.Config{
		Name:          "overloaded",
		Domains:       []string{"corp.example"},
		ChallengeFrom: mail.MustParseAddress("challenge@corp.example"),
	}, clk, dns, nil, wl, func(core.OutboundChallenge) {})
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	ctl := overload.New(overload.Config{
		MinLimit: 1, InitialLimit: 1, MaxLimit: 1,
		QueueCapacity: -1, // shed immediately at the limit
		Name:          "overloaded",
	})
	return New(eng, append(opts, WithOverload(ctl))...), ctl
}

func TestDeliverShedsTempfail(t *testing.T) {
	b, ctl := overloadBackend(t)
	hold := ctl.Submit("occupier", nil, nil)
	if hold.Granted == nil {
		t.Fatal("could not occupy the only slot")
	}
	msg := grayMessage()
	reply := b.Deliver(msg)
	if reply == nil || reply.Code != 451 {
		t.Fatalf("Deliver under load = %+v, want 451", reply)
	}
	if !strings.Contains(reply.Text, "busy") {
		t.Fatalf("reply text %q should say busy", reply.Text)
	}
	// The engine never saw the shed message: shed is pre-admission.
	if got := b.Engine().Metrics().MTAIncoming; got != 0 {
		t.Fatalf("engine saw %d messages, want 0", got)
	}
	// Capacity freed: the retry is admitted and accepted.
	hold.Granted.Release()
	if reply := b.Deliver(msg); reply != nil {
		t.Fatalf("Deliver after release = %+v, want accept", reply)
	}
	m := ctl.Metrics()
	if m.ShedTotal() != 1 || m.Shed[overload.ReasonLimit] != 1 {
		t.Fatalf("controller sheds = %+v", m.Shed)
	}
}

func TestDeliverDraining421(t *testing.T) {
	b, ctl := overloadBackend(t)
	ctl.StartDrain()
	reply := b.Deliver(grayMessage())
	if reply == nil || reply.Code != 421 {
		t.Fatalf("Deliver while draining = %+v, want 421", reply)
	}
}

func TestGreylistRunsBeforeAdmission(t *testing.T) {
	// A greylist 451 at RCPT must not consume an admission slot: the
	// controller only guards Deliver, so greylisted first contacts are
	// turned away before overload control is ever consulted.
	g := greylist.New(greylist.Config{Delay: 10 * time.Minute}, clock.Real{})
	b, ctl := overloadBackend(t, WithGreylist(g))
	from := mail.MustParseAddress("alice@example.com")
	rcpt := mail.MustParseAddress("bob@corp.example")
	reply := b.ValidateRcpt(from, rcpt)
	if reply == nil || reply.Code != 451 {
		t.Fatalf("first contact = %+v, want greylist 451", reply)
	}
	m := ctl.Metrics()
	if m.Admitted() != 0 || m.ShedTotal() != 0 {
		t.Fatalf("controller consulted during greylisting: %+v", m)
	}
	// Saturate the controller: a message that passes RCPT still
	// tempfails at DATA — overload and greylist 451s compose without
	// masking each other.
	hold := ctl.Submit("occupier", nil, nil)
	defer hold.Granted.Release()
	if reply := b.Deliver(grayMessage()); reply == nil || reply.Code != 451 {
		t.Fatalf("Deliver = %+v, want overload 451", reply)
	}
	if ctl.Metrics().ShedTotal() != 1 {
		t.Fatal("overload shed not recorded")
	}
}

func grayMessage() *mail.Message {
	return &mail.Message{
		ID:           "gray-1",
		EnvelopeFrom: mail.MustParseAddress("alice@example.com"),
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		ClientIP:     "127.0.0.1",
		Subject:      "hello",
		Size:         100,
	}
}
