// Package greylist implements SMTP greylisting, the natural companion to
// a challenge-response filter and an instance of the §5.2 question the
// paper raises: which additional anti-spam techniques should surround
// the CR engine to cut useless challenges without adding false
// positives?
//
// Greylisting temp-rejects (451) the first delivery attempt for an
// unseen (client network, sender, recipient) tuple. Real MTAs queue and
// retry, so legitimate mail arrives minutes later; botnet spam cannons
// typically fire-and-forget, so the retry never comes and the CR engine
// never sees the message — which means no challenge, no backscatter, no
// spamtrap hit. Like CR itself, greylisting trades delivery delay for
// protection; unlike content filters it cannot false-positive on wanted
// mail from a standards-compliant server.
package greylist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

// Verdict is the greylist decision for one delivery attempt.
type Verdict int

// Verdicts.
const (
	// Accept: the tuple has passed greylisting (or greylisting is
	// bypassed for it); let the message through.
	Accept Verdict = iota
	// TempReject: reply 451 and wait for the retry.
	TempReject
)

// String returns the verdict label.
func (v Verdict) String() string {
	if v == TempReject {
		return "temp-reject"
	}
	return "accept"
}

// Config parameterises a Store.
type Config struct {
	// Delay is the minimum age of a tuple before a retry is accepted
	// (typical deployments use 5–30 minutes).
	Delay time.Duration
	// Window is how long a greylisted tuple waits for its retry; with no
	// retry within the window the tuple is forgotten.
	Window time.Duration
	// PassTTL is how long a passed tuple stays whitelisted (subsequent
	// deliveries are accepted immediately).
	PassTTL time.Duration
}

// DefaultConfig mirrors common production settings.
func DefaultConfig() Config {
	return Config{
		Delay:   15 * time.Minute,
		Window:  24 * time.Hour,
		PassTTL: 36 * 24 * time.Hour,
	}
}

// Stats counts greylisting outcomes.
type Stats struct {
	FirstSeen   int64 // tuples temp-rejected on first contact
	EarlyRetry  int64 // retries before Delay elapsed (still rejected)
	Passed      int64 // retries that promoted the tuple
	KnownAccept int64 // deliveries on already-passed tuples
}

// tuple state.
type entry struct {
	firstSeen time.Time
	passedAt  time.Time // zero until promoted
}

// ExportedTuple is the serialisable (and journalled) form of one tuple's
// state: the absolute state after a transition, so re-applying any
// in-order suffix of the journal is idempotent (last writer wins).
type ExportedTuple struct {
	Key       string    `json:"key"`
	FirstSeen time.Time `json:"first_seen"`
	PassedAt  time.Time `json:"passed_at"`
}

// Store is the greylist database. Safe for concurrent use.
type Store struct {
	cfg Config
	clk clock.Clock

	mu      sync.Mutex
	tuples  map[string]*entry
	stats   Stats
	sweepAt time.Time
	journal func(ExportedTuple)
}

// New returns an empty greylist.
func New(cfg Config, clk clock.Clock) *Store {
	if cfg.Delay <= 0 {
		cfg.Delay = 15 * time.Minute
	}
	if cfg.Window <= 0 {
		cfg.Window = 24 * time.Hour
	}
	if cfg.PassTTL <= 0 {
		cfg.PassTTL = 36 * 24 * time.Hour
	}
	return &Store{cfg: cfg, clk: clk, tuples: make(map[string]*entry)}
}

// key builds the greylisting tuple: the client's /24 network (retries
// from large MTA farms come from neighbouring addresses), the envelope
// sender and the recipient.
func key(clientIP string, from, to mail.Address) string {
	net := clientIP
	if i := strings.LastIndexByte(clientIP, '.'); i > 0 {
		net = clientIP[:i]
	}
	return net + "|" + from.Key() + "|" + to.Key()
}

// Check records a delivery attempt and returns the verdict. Null-sender
// mail (bounces) is never greylisted — deferring DSNs loses them, since
// many queue runners do not retry bounces.
func (s *Store) Check(clientIP string, from, to mail.Address) Verdict {
	if from.IsNull() {
		return Accept
	}
	now := s.clk.Now()
	k := key(clientIP, from, to)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeSweep(now)

	e, ok := s.tuples[k]
	if !ok {
		s.tuples[k] = &entry{firstSeen: now}
		s.stats.FirstSeen++
		s.emit(k, now, time.Time{})
		return TempReject
	}
	if !e.passedAt.IsZero() {
		if now.Sub(e.passedAt) <= s.cfg.PassTTL {
			s.stats.KnownAccept++
			e.passedAt = now // sliding TTL
			s.emit(k, e.firstSeen, now)
			return Accept
		}
		// Pass expired: start over.
		e.firstSeen = now
		e.passedAt = time.Time{}
		s.stats.FirstSeen++
		s.emit(k, now, time.Time{})
		return TempReject
	}
	age := now.Sub(e.firstSeen)
	switch {
	case age < s.cfg.Delay:
		// No state change; early retries are not journalled.
		s.stats.EarlyRetry++
		return TempReject
	case age > s.cfg.Window:
		// The retry came absurdly late; treat as first contact.
		e.firstSeen = now
		s.stats.FirstSeen++
		s.emit(k, now, time.Time{})
		return TempReject
	default:
		e.passedAt = now
		s.stats.Passed++
		s.emit(k, e.firstSeen, now)
		return Accept
	}
}

// emit journals a tuple's post-transition state. Caller holds s.mu.
func (s *Store) emit(k string, firstSeen, passedAt time.Time) {
	if s.journal != nil {
		s.journal(ExportedTuple{Key: k, FirstSeen: firstSeen, PassedAt: passedAt})
	}
}

// SetJournal installs the change-journal hook, invoked with the store
// lock held after every tuple state transition (sweep deletions are not
// journalled: expired tuples are semantically absent either way, and the
// sweep re-runs after recovery). The hook must not call back into the
// store.
func (s *Store) SetJournal(fn func(ExportedTuple)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = fn
}

// Apply sets a tuple to the journalled absolute state (WAL replay).
func (s *Store) Apply(t ExportedTuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tuples[t.Key] = &entry{firstSeen: t.FirstSeen, passedAt: t.PassedAt}
}

// Export returns every tracked tuple sorted by key, for snapshots.
func (s *Store) Export() []ExportedTuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ExportedTuple, 0, len(s.tuples))
	for k, e := range s.tuples {
		out = append(out, ExportedTuple{Key: k, FirstSeen: e.firstSeen, PassedAt: e.passedAt})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Import replaces the state of the listed tuples (snapshot load).
func (s *Store) Import(tuples []ExportedTuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range tuples {
		s.tuples[t.Key] = &entry{firstSeen: t.FirstSeen, passedAt: t.PassedAt}
	}
}

// maybeSweep drops stale tuples at most once per hour of clock time.
// Caller holds s.mu.
func (s *Store) maybeSweep(now time.Time) {
	if !s.sweepAt.IsZero() && now.Sub(s.sweepAt) < time.Hour {
		return
	}
	s.sweepAt = now
	for k, e := range s.tuples {
		stale := false
		if e.passedAt.IsZero() {
			stale = now.Sub(e.firstSeen) > s.cfg.Window
		} else {
			stale = now.Sub(e.passedAt) > s.cfg.PassTTL
		}
		if stale {
			delete(s.tuples, k)
		}
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of tracked tuples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

// String summarises the store for logs.
func (s *Store) String() string {
	st := s.Stats()
	return fmt.Sprintf("greylist{tuples=%d first=%d early=%d passed=%d known=%d}",
		s.Len(), st.FirstSeen, st.EarlyRetry, st.Passed, st.KnownAccept)
}
