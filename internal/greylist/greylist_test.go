package greylist

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

var (
	t0    = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	alice = mail.MustParseAddress("alice@example.com")
	bob   = mail.MustParseAddress("bob@corp.example")
)

func newStore(clk clock.Clock) *Store {
	return New(Config{Delay: 15 * time.Minute, Window: 24 * time.Hour, PassTTL: 36 * 24 * time.Hour}, clk)
}

func TestFirstContactTempRejected(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	if v := g.Check("192.0.2.1", alice, bob); v != TempReject {
		t.Fatalf("first contact = %v, want temp-reject", v)
	}
	if g.Stats().FirstSeen != 1 {
		t.Fatalf("stats = %+v", g.Stats())
	}
}

func TestRetryAfterDelayPasses(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	g.Check("192.0.2.1", alice, bob)
	clk.Advance(20 * time.Minute)
	if v := g.Check("192.0.2.1", alice, bob); v != Accept {
		t.Fatalf("retry = %v, want accept", v)
	}
	// Subsequent deliveries are instant.
	clk.Advance(5 * 24 * time.Hour)
	if v := g.Check("192.0.2.1", alice, bob); v != Accept {
		t.Fatalf("known tuple = %v, want accept", v)
	}
	st := g.Stats()
	if st.Passed != 1 || st.KnownAccept != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEarlyRetryStillRejected(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	g.Check("192.0.2.1", alice, bob)
	clk.Advance(5 * time.Minute) // botnet hammering immediately
	if v := g.Check("192.0.2.1", alice, bob); v != TempReject {
		t.Fatalf("early retry = %v, want temp-reject", v)
	}
	// The clock keeps running from the ORIGINAL first-seen: a later
	// retry still passes.
	clk.Advance(11 * time.Minute)
	if v := g.Check("192.0.2.1", alice, bob); v != Accept {
		t.Fatal("legitimate retry after early attempt rejected")
	}
}

func TestRetryFromNeighbouringIPPasses(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	g.Check("192.0.2.1", alice, bob)
	clk.Advance(20 * time.Minute)
	// Large MTA farms retry from a different host in the same /24.
	if v := g.Check("192.0.2.99", alice, bob); v != Accept {
		t.Fatal("same-/24 retry rejected")
	}
	// A different /24 is a different tuple.
	if v := g.Check("198.51.100.1", alice, bob); v != TempReject {
		t.Fatal("foreign-network delivery accepted")
	}
}

func TestWindowExpiryRestarts(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	g.Check("192.0.2.1", alice, bob)
	clk.Advance(25 * time.Hour) // retry way past the window
	if v := g.Check("192.0.2.1", alice, bob); v != TempReject {
		t.Fatal("stale retry accepted")
	}
	clk.Advance(16 * time.Minute)
	if v := g.Check("192.0.2.1", alice, bob); v != Accept {
		t.Fatal("fresh cycle retry rejected")
	}
}

func TestPassTTLExpiry(t *testing.T) {
	clk := clock.NewSim(t0)
	g := New(Config{Delay: time.Minute, Window: time.Hour, PassTTL: 48 * time.Hour}, clk)
	g.Check("192.0.2.1", alice, bob)
	clk.Advance(2 * time.Minute)
	if g.Check("192.0.2.1", alice, bob) != Accept {
		t.Fatal("promotion failed")
	}
	clk.Advance(49 * time.Hour) // pass expired
	if v := g.Check("192.0.2.1", alice, bob); v != TempReject {
		t.Fatal("expired pass still accepted")
	}
}

func TestNullSenderNeverGreylisted(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	if v := g.Check("192.0.2.1", mail.Null, bob); v != Accept {
		t.Fatal("DSN greylisted — bounces would be lost")
	}
}

func TestDistinctTuplesIndependent(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	carol := mail.MustParseAddress("carol@corp.example")
	g.Check("192.0.2.1", alice, bob)
	if v := g.Check("192.0.2.1", alice, carol); v != TempReject {
		t.Fatal("different recipient shares tuple")
	}
	if g.Len() != 2 {
		t.Fatalf("tuples = %d", g.Len())
	}
}

func TestSweepDropsStaleTuples(t *testing.T) {
	clk := clock.NewSim(t0)
	g := New(Config{Delay: time.Minute, Window: time.Hour, PassTTL: 24 * time.Hour}, clk)
	for i := 0; i < 50; i++ {
		from := mail.Address{Local: fmt.Sprintf("s%d", i), Domain: "spam.example"}
		g.Check("100.64.0.9", from, bob) // never retried
	}
	clk.Advance(3 * time.Hour)
	g.Check("192.0.2.1", alice, bob) // triggers the hourly sweep
	if got := g.Len(); got != 1 {
		t.Fatalf("tuples after sweep = %d, want 1", got)
	}
}

func TestStringSummary(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	g.Check("192.0.2.1", alice, bob)
	if s := g.String(); !strings.Contains(s, "first=1") {
		t.Fatalf("String = %q", s)
	}
	if Accept.String() != "accept" || TempReject.String() != "temp-reject" {
		t.Fatal("verdict strings wrong")
	}
}

func TestConcurrentChecks(t *testing.T) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := mail.Address{Local: fmt.Sprintf("s%d", i%8), Domain: "x.example"}
			g.Check("192.0.2.1", from, bob)
		}(i)
	}
	wg.Wait()
	if g.Len() != 8 {
		t.Fatalf("tuples = %d, want 8", g.Len())
	}
}

func BenchmarkCheck(b *testing.B) {
	clk := clock.NewSim(t0)
	g := newStore(clk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		from := mail.Address{Local: fmt.Sprintf("s%d", i%1000), Domain: "x.example"}
		g.Check("192.0.2.1", from, bob)
	}
}
