package logscan_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/logscan"
	"repro/internal/maillog"
)

// TestDecodeAllocs pins the decode path's allocation budget: in
// aggregation mode (SkipMsgID, warmed interner) a line costs zero
// allocations; keeping the per-event message ID costs exactly the one
// string it must mint. The bench gate's ≤2 allocs/event headroom on top
// of this covers interner misses on high-cardinality values.
func TestDecodeAllocs(t *testing.T) {
	lines := [][]byte{
		[]byte("2010-07-01T10:00:00Z corp mta-accept msg=m-1 from=a@b.example size=4096"),
		[]byte("2010-07-01T10:00:01Z corp dispatch msg=m-1 spool=gray"),
		[]byte("2010-07-01T10:00:02Z corp reputation msg=m-1 action=fast-path band=trusted score=0.812 keys=a;d;i"),
		[]byte("2010-07-01T10:00:03Z corp bounce msg=m-1 class=no-user status=5.1.1 domain=b.example"),
		[]byte("2010-07-01T10:00:04Z corp loop-suppressed msg=m-2 from=challenge@peer.example auto=auto-replied"),
	}
	var e maillog.Event

	agg := logscan.NewDecoder()
	agg.SkipMsgID = true
	warm := func(d *logscan.Decoder) {
		for _, l := range lines {
			if err := d.ParseLineBytes(l, &e); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(agg)
	if n := testing.AllocsPerRun(200, func() { warm(agg) }); n > 0 {
		t.Errorf("aggregation-mode decode allocates %.1f per 5 lines, want 0", n)
	}

	full := logscan.NewDecoder()
	warm(full)
	if n := testing.AllocsPerRun(200, func() { warm(full) }); n > 5 {
		t.Errorf("full decode allocates %.1f per 5 lines, want 5 (one msg-id string each)", n)
	}
}

// BenchmarkParseLineBytes measures the single-line decode cost —
// the per-event unit the paper's 90M-email crawl multiplies.
func BenchmarkParseLineBytes(b *testing.B) {
	line := []byte("2010-07-01T10:00:00Z scn-03 mta-drop msg=scn-03-004242 reason=unknown-recipient size=4200")
	d := logscan.NewDecoder()
	d.SkipMsgID = true
	var e maillog.Event
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.ParseLineBytes(line, &e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseLineSerial is the strings.Fields baseline the decoder
// replaces, for the same line.
func BenchmarkParseLineSerial(b *testing.B) {
	line := "2010-07-01T10:00:00Z scn-03 mta-drop msg=scn-03-004242 reason=unknown-recipient size=4200"
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := maillog.ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogScan runs the full parallel scan over an in-memory
// synthetic log at several worker counts, reporting events/sec and
// allocs/event — the in-tree twin of `bench -logscan`.
func BenchmarkLogScan(b *testing.B) {
	const n = 100000
	log := genLog(b, n, 42)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(log)))
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				agg, err := logscan.ScanReaderAt(bytes.NewReader(log), int64(len(log)), logscan.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				events = agg.Lines - agg.BadLines
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(events)/perOp, "events/sec")
		})
	}
}

// BenchmarkParseAllSerial is the end-to-end serial baseline ParseAll
// over the same log.
func BenchmarkParseAllSerial(b *testing.B) {
	log := genLog(b, 100000, 42)
	b.SetBytes(int64(len(log)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := maillog.ParseAll(bytes.NewReader(log)); err != nil {
			b.Fatal(err)
		}
	}
}
