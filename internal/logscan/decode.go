// Package logscan is the measurement pipeline at paper scale: a
// parallel, zero-allocation streaming analyzer for the decision logs
// maillog emits. The paper's numbers come from crawling six months of
// daily logs — roughly 90M emails across 47 companies — so the crawler
// has to run at I/O speed, not at strings.Fields-plus-map-per-line
// speed. This package is the decode/aggregate mirror image of the
// zero-alloc encoder maillog.AppendFormat: a byte-slicing line decoder
// with string interning, a chunked scanner that splits a file across
// workers on newline boundaries, and a deterministic shard merge that
// yields the same maillog.Aggregate for any worker count.
package logscan

import (
	"bytes"
	"errors"
	"time"

	"repro/internal/maillog"
)

// Decode errors. They are preallocated so the bad-line path of a scan
// allocates nothing; callers wanting context wrap them with position.
var (
	// ErrShortLine: fewer than the three mandatory tokens
	// (timestamp, company, kind).
	ErrShortLine = errors.New("logscan: short line")
	// ErrBadTimestamp: first token is not a valid
	// "2006-01-02T15:04:05Z" instant.
	ErrBadTimestamp = errors.New("logscan: bad timestamp")
	// ErrBadField: a field token without '='.
	ErrBadField = errors.New("logscan: bad field")
)

// Interner limits: values longer than maxInternLen or past the entry
// cap are returned as fresh strings instead of being retained, so a
// hostile log cannot balloon the table.
const (
	maxInternLen     = 64
	maxInternEntries = 1 << 16
)

// Decoder decodes log lines from byte slices without allocating. It
// interns company names, kinds, field keys and small field values in a
// bounded table, so the strings an Event carries are shared across the
// millions of lines that repeat them and the amortized decode cost is
// ~0 allocations per event. A Decoder is NOT safe for concurrent use —
// the parallel scanner gives each worker its own.
type Decoder struct {
	// SkipMsgID leaves Event.MsgID empty instead of materializing a
	// string for it. Message IDs are unique per event — the one field
	// interning cannot help — and the Aggregate never reads them, so
	// aggregation-only scans set this to stay allocation-free.
	SkipMsgID bool

	strs map[string]string
}

// NewDecoder returns a Decoder with an empty intern table.
func NewDecoder() *Decoder {
	return &Decoder{strs: make(map[string]string, 256)}
}

// intern returns a string equal to b, shared across calls for small
// repeated tokens. The map index with a string(b) key compiles to a
// no-allocation lookup; only a miss pays for the string copy.
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(b) <= maxInternLen && len(d.strs) < maxInternEntries {
		d.strs[s] = s
	}
	return s
}

// asciiSpace mirrors the ASCII half of strings.Fields' separator set,
// which is all a log line can contain (values may not contain spaces).
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' || c == '\n'
}

// nextToken returns the first token of buf and the remainder after it.
// An empty token means buf held only whitespace.
func nextToken(buf []byte) (tok, rest []byte) {
	i := 0
	for i < len(buf) && asciiSpace(buf[i]) {
		i++
	}
	j := i
	for j < len(buf) && !asciiSpace(buf[j]) {
		j++
	}
	return buf[i:j], buf[j:]
}

// ParseLineBytes parses one log line into e, overwriting it completely.
// It is the zero-copy counterpart of maillog.ParseLine: the input is
// tokenized by slicing buf in place, the Event's inline pairs are
// filled first (the same machinery AppendFormat encodes from), and
// every string except the per-event message ID comes from the intern
// table. buf is not retained; it may be a reused read buffer.
func (d *Decoder) ParseLineBytes(buf []byte, e *maillog.Event) error {
	*e = maillog.Event{}
	ts, rest := nextToken(buf)
	co, rest := nextToken(rest)
	kind, rest := nextToken(rest)
	if len(kind) == 0 {
		return ErrShortLine
	}
	t, ok := parseTimestamp(ts)
	if !ok {
		return ErrBadTimestamp
	}
	e.Time = t
	e.Company = d.intern(co)
	e.Kind = maillog.Kind(d.intern(kind))
	for {
		var tok []byte
		tok, rest = nextToken(rest)
		if len(tok) == 0 {
			return nil
		}
		eq := bytes.IndexByte(tok, '=')
		if eq < 0 {
			return ErrBadField
		}
		k, v := tok[:eq], tok[eq+1:]
		if string(k) == "msg" {
			if !d.SkipMsgID {
				e.MsgID = string(v)
			}
			continue
		}
		e.AddField(d.intern(k), d.intern(v))
	}
}

// parseTimestamp decodes the fixed "2006-01-02T15:04:05Z" layout
// without time.Parse's allocations. It accepts exactly what time.Parse
// accepts for that layout: correct separators, in-range components, and
// calendar-valid dates (Feb 30 is rejected, not normalized).
func parseTimestamp(b []byte) (time.Time, bool) {
	if len(b) != 20 ||
		b[4] != '-' || b[7] != '-' || b[10] != 'T' ||
		b[13] != ':' || b[16] != ':' || b[19] != 'Z' {
		return time.Time{}, false
	}
	dig := func(i int) (int, bool) {
		c := b[i] - '0'
		return int(c), c <= 9
	}
	num := func(i, width int) (int, bool) {
		n := 0
		for k := i; k < i+width; k++ {
			d, ok := dig(k)
			if !ok {
				return 0, false
			}
			n = n*10 + d
		}
		return n, true
	}
	year, ok1 := num(0, 4)
	month, ok2 := num(5, 2)
	day, ok3 := num(8, 2)
	hour, ok4 := num(11, 2)
	minute, ok5 := num(14, 2)
	sec, ok6 := num(17, 2)
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return time.Time{}, false
	}
	if month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || minute > 59 || sec > 59 {
		return time.Time{}, false
	}
	t := time.Date(year, time.Month(month), day, hour, minute, sec, 0, time.UTC)
	// time.Date normalizes out-of-range days (Feb 30 -> Mar 2);
	// time.Parse rejects them. Reject likewise so both decoders agree
	// on what a bad line is.
	if t.Day() != day || t.Month() != time.Month(month) || t.Year() != year {
		return time.Time{}, false
	}
	return t, true
}
