package logscan_test

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/logscan"
	"repro/internal/maillog"
)

// TestEncodeDecodeRoundTrip mirrors PR 4's encoder fuzz from the decode
// side: 2000 seeded-random events are rendered with AppendFormat,
// decoded with ParseLineBytes, and re-rendered — the second rendering
// must be byte-identical to the first, proving the zero-copy decoder
// loses nothing the zero-alloc encoder writes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tok := func() string {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789.-;@"
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	kinds := []maillog.Kind{
		maillog.KindMTAAccept, maillog.KindMTADrop, maillog.KindDispatch,
		maillog.KindFilterDrop, maillog.KindChallenge, maillog.KindDeliver,
		maillog.KindWebVisit, maillog.KindWebSolve, maillog.KindDegraded,
		maillog.KindReputation, maillog.KindOverload,
	}
	d := logscan.NewDecoder()
	var e maillog.Event
	buf := make([]byte, 0, 256)
	for i := 0; i < 2000; i++ {
		at := time.Date(2010, 7, 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, time.UTC)
		msgID := ""
		if rng.Intn(4) > 0 {
			msgID = "m-" + strconv.Itoa(rng.Intn(1e6))
		}
		// 0..7 distinct fields: inline-only, boundary, and overflow map.
		nf := rng.Intn(8)
		kvs := make([]string, 0, nf*2)
		seen := map[string]bool{"msg": true}
		for len(kvs)/2 < nf {
			k := tok()
			if seen[k] {
				continue
			}
			seen[k] = true
			kvs = append(kvs, k, tok())
		}
		orig := maillog.MakeEvent(at, "co-"+strconv.Itoa(rng.Intn(40)), kinds[rng.Intn(len(kinds))], msgID, kvs...)

		buf = orig.AppendFormat(buf[:0])
		first := string(buf)
		if err := d.ParseLineBytes(buf, &e); err != nil {
			t.Fatalf("case %d: ParseLineBytes(%q): %v", i, first, err)
		}
		if second := string(e.AppendFormat(nil)); second != first {
			t.Fatalf("case %d: round trip drifted:\n first %q\nsecond %q", i, first, second)
		}
	}
}

// FuzzParseLineBytes holds the zero-copy decoder to the serial
// maillog.ParseLine as its executable specification: for any ASCII
// input the two must agree on whether the line parses, and on every
// decoded component when it does. (Non-ASCII bytes are exempt from the
// classification check: strings.Fields treats unicode whitespace as a
// separator, the byte decoder deliberately does not — log lines are
// ASCII by construction.)
func FuzzParseLineBytes(f *testing.F) {
	f.Add([]byte("2010-07-01T10:00:00Z company-03 mta-drop msg=abc reason=unknown-recipient size=900"))
	f.Add([]byte("2010-07-01T10:00:00Z corp reputation msg=m action=fast-path band=trusted score=0.8 keys=a"))
	f.Add([]byte("  2010-12-31T23:59:59Z \t x y a=1  "))
	f.Add([]byte("2010-02-30T10:00:00Z c deliver"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, line []byte) {
		ascii := true
		for _, c := range line {
			if c >= 0x80 {
				ascii = false
				break
			}
		}
		if !ascii {
			return
		}
		d := logscan.NewDecoder()
		var got maillog.Event
		gerr := d.ParseLineBytes(line, &got)
		want, werr := maillog.ParseLine(string(line))
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("classification split on %q: bytes=%v serial=%v", line, gerr, werr)
		}
		if gerr != nil {
			return
		}
		if !got.Time.Equal(want.Time) || got.Company != want.Company || got.Kind != want.Kind || got.MsgID != want.MsgID {
			t.Fatalf("header drift on %q: %+v vs %+v", line, got, want)
		}
		if !reflect.DeepEqual(got.FieldMap(), want.FieldMap()) {
			t.Fatalf("field drift on %q: %v vs %v", line, got.FieldMap(), want.FieldMap())
		}
		// And both render back to the same bytes.
		if g, w := string(got.AppendFormat(nil)), string(want.AppendFormat(nil)); g != w {
			t.Fatalf("render drift on %q: %q vs %q", line, g, w)
		}
	})
}
