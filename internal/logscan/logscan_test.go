package logscan_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/logscan"
	"repro/internal/maillog"
)

var t0 = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

// genLog writes n synthetic decision-log events across a handful of
// companies, covering every kind the engine emits, with a seeded rng so
// the bytes are deterministic.
func genLog(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	w := maillog.NewWriter(&buf)
	for i := 0; i < n; i++ {
		co := fmt.Sprintf("company-%02d", rng.Intn(7))
		id := fmt.Sprintf("%s-%06d", co, i)
		at := t0.Add(time.Duration(i) * time.Second)
		switch rng.Intn(8) {
		case 0:
			w.Write(maillog.MakeEvent(at, co, maillog.KindMTAAccept, id, "from", "a@b.example", "size", fmt.Sprint(500+rng.Intn(4000))))
		case 1:
			w.Write(maillog.MakeEvent(at, co, maillog.KindMTADrop, id, "reason", "unknown-recipient", "size", fmt.Sprint(500+rng.Intn(4000))))
		case 2:
			w.Write(maillog.MakeEvent(at, co, maillog.KindDispatch, id, "spool", []string{"white", "black", "gray"}[rng.Intn(3)]))
		case 3:
			w.Write(maillog.MakeEvent(at, co, maillog.KindFilterDrop, id, "filter", []string{"rbl", "antivirus", "reverse-dns"}[rng.Intn(3)]))
		case 4:
			w.Write(maillog.MakeEvent(at, co, maillog.KindChallenge, id, "to", "sender@remote.example"))
		case 5:
			w.Write(maillog.MakeEvent(at, co, maillog.KindDeliver, id, "via", []string{"whitelist", "challenge", "digest"}[rng.Intn(3)]))
		case 6:
			w.Write(maillog.MakeEvent(at, co, maillog.KindReputation, id, "action", "fast-path", "band", "trusted", "score", fmt.Sprintf("0.%03d", rng.Intn(1000)), "keys", "a;d;i"))
		case 7:
			w.Write(maillog.MakeEvent(at, co, maillog.KindWebSolve, id))
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParseLineBytesMatchesParseLine: the zero-copy decoder and the
// serial maillog.ParseLine must agree on classification and content for
// good and bad lines alike.
func TestParseLineBytesMatchesParseLine(t *testing.T) {
	cases := []string{
		"2010-07-01T10:00:00Z corp mta-drop msg=m-1 reason=unknown-recipient size=4096",
		"2010-07-01T10:00:00Z corp web-solve",
		"2010-07-01T10:00:00Z corp deliver msg=m-9 a=1 b=2 c=3 d=4 e=5 f=6",
		"  2010-07-01T10:00:00Z   corp\tdeliver   via=digest  ",
		"2010-12-31T23:59:59Z x y",
		"",
		"too short",
		"not-a-time company kind",
		"2010-07-01T10:00:00Z c deliver brokenfield",
		"2010-02-30T10:00:00Z c deliver", // calendar-invalid date
		"2010-07-01T10:00:60Z c deliver", // out-of-range seconds
		"2010-07-01 10:00:00Z c deliver", // wrong separator
		"2010-07-01T10:00:00+01 c deliver",
	}
	d := logscan.NewDecoder()
	for _, line := range cases {
		want, werr := maillog.ParseLine(line)
		var e maillog.Event
		gerr := d.ParseLineBytes([]byte(line), &e)
		if (werr == nil) != (gerr == nil) {
			t.Errorf("%q: ParseLine err=%v, ParseLineBytes err=%v", line, werr, gerr)
			continue
		}
		if werr != nil {
			continue
		}
		if !e.Time.Equal(want.Time) || e.Company != want.Company || e.Kind != want.Kind || e.MsgID != want.MsgID {
			t.Errorf("%q: header %v vs %v", line, e, want)
		}
		if !reflect.DeepEqual(e.FieldMap(), want.FieldMap()) {
			t.Errorf("%q: fields %v vs %v", line, e.FieldMap(), want.FieldMap())
		}
	}
}

// TestDecoderSkipMsgID: aggregation-mode decoding drops only the
// message ID.
func TestDecoderSkipMsgID(t *testing.T) {
	d := logscan.NewDecoder()
	d.SkipMsgID = true
	var e maillog.Event
	if err := d.ParseLineBytes([]byte("2010-07-01T10:00:00Z corp dispatch msg=m-1 spool=gray"), &e); err != nil {
		t.Fatal(err)
	}
	if e.MsgID != "" {
		t.Fatalf("MsgID = %q, want empty under SkipMsgID", e.MsgID)
	}
	if e.Field("spool") != "gray" {
		t.Fatalf("fields lost: %v", e.FieldMap())
	}
}

// forceStream hides every random-access interface of a reader so Scan
// takes the stdin/pipe producer path.
type forceStream struct{ r io.Reader }

func (f forceStream) Read(p []byte) (int, error) { return f.r.Read(p) }

// TestWorkerCountInvariance is the determinism proof: for 1/2/4/8
// workers, over both the range-split and the streaming path, the merged
// aggregate is identical to each other and to the serial
// maillog.ParseAll baseline — bit for bit, bad lines included.
func TestWorkerCountInvariance(t *testing.T) {
	log := genLog(t, 20000, 17)
	// Salt the input with the hostile cases a crawler meets: blank
	// lines, unparsable lines, an oversized line.
	cut := bytes.IndexByte(log[len(log)/2:], '\n') + len(log)/2 + 1
	var sb bytes.Buffer
	sb.Write(log[:cut])
	sb.WriteString("\ngarbage line that fails to parse\n")
	sb.WriteString(strings.Repeat("x", logscan.MaxLineLen+10))
	sb.WriteByte('\n')
	sb.Write(log[cut:])
	input := sb.Bytes()

	serial, err := maillog.ParseAll(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if serial.BadLines != 2 {
		t.Fatalf("fixture bad lines = %d, want 2", serial.BadLines)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		opts := logscan.Options{Workers: workers}
		ranged, err := logscan.Scan(bytes.NewReader(input), opts)
		if err != nil {
			t.Fatalf("workers=%d ranged: %v", workers, err)
		}
		if !reflect.DeepEqual(ranged, serial) {
			t.Fatalf("workers=%d: range-split aggregate differs from serial ParseAll", workers)
		}
		streamed, err := logscan.Scan(forceStream{bytes.NewReader(input)}, opts)
		if err != nil {
			t.Fatalf("workers=%d streamed: %v", workers, err)
		}
		if !reflect.DeepEqual(streamed, serial) {
			t.Fatalf("workers=%d: streaming aggregate differs from serial ParseAll", workers)
		}
	}
}

// TestRangeCutOnLineBoundary: with fixed-width lines, worker-range cuts
// land exactly on line starts — the off-by-one case where a line could
// be skipped by both neighbours. Every line must be counted exactly
// once for every worker count.
func TestRangeCutOnLineBoundary(t *testing.T) {
	line := "2010-07-01T10:00:00Z corp web-solve msg=m-001\n"
	const n = 4096
	input := []byte(strings.Repeat(line, n))
	for _, workers := range []int{1, 2, 3, 4, 5, 7, 8} {
		agg, err := logscan.ScanReaderAt(bytes.NewReader(input), int64(len(input)), logscan.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if agg.Lines != n || agg.BadLines != 0 {
			t.Fatalf("workers=%d: lines=%d bad=%d, want %d/0", workers, agg.Lines, agg.BadLines, n)
		}
		if got := agg.Total().WebSolves; got != n {
			t.Fatalf("workers=%d: solves=%d, want %d", workers, got, n)
		}
	}
}

// TestScanFile: the -f path end to end, including a file small enough
// to collapse to one worker.
func TestScanFile(t *testing.T) {
	log := genLog(t, 5000, 3)
	path := filepath.Join(t.TempDir(), "cr.log")
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := maillog.ParseAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	got, err := logscan.ScanFile(path, logscan.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ScanFile aggregate differs from serial ParseAll")
	}
	if _, err := logscan.ScanFile(filepath.Join(t.TempDir(), "missing.log"), logscan.Options{}); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestScanCounters: the progress counters converge on the true totals
// once the scan finishes.
func TestScanCounters(t *testing.T) {
	log := genLog(t, 12000, 9)
	before := logscan.TotalStats()
	var c logscan.Counters
	agg, err := logscan.Scan(bytes.NewReader(log), logscan.Options{Workers: 4, Counter: &c})
	if err != nil {
		t.Fatal(err)
	}
	events := agg.Lines - agg.BadLines
	if got := c.Events.Load(); got != events {
		t.Errorf("counter events = %d, want %d", got, events)
	}
	if got := c.Lines.Load(); got != agg.Lines {
		t.Errorf("counter lines = %d, want %d", got, agg.Lines)
	}
	if got := c.Bytes.Load(); got != int64(len(log)) {
		t.Errorf("counter bytes = %d, want %d", got, len(log))
	}
	after := logscan.TotalStats()
	if after.Events-before.Events != events {
		t.Errorf("package totals moved by %d events, want %d", after.Events-before.Events, events)
	}
}

// errReader fails after the wrapped reader drains.
type errReader struct {
	r   io.Reader
	err error
}

func (e errReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

// TestStreamReadError: a mid-stream read failure surfaces as a wrapped
// error alongside the partial aggregate.
func TestStreamReadError(t *testing.T) {
	log := genLog(t, 1000, 5)
	boom := errors.New("pipe burst")
	agg, err := logscan.Scan(forceStream{errReader{r: bytes.NewReader(log), err: boom}}, logscan.Options{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if agg == nil || agg.Lines == 0 {
		t.Fatal("partial aggregate missing")
	}
}
