package logscan

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/maillog"
)

// MaxLineLen mirrors maillog.MaxLineLen: lines longer than this are
// counted as bad and skipped, in every scan mode, so the parallel
// scanner and the serial ParseAll classify identical inputs
// identically.
const MaxLineLen = maillog.MaxLineLen

// flushEvery is how many events a worker folds locally before flushing
// into the shared progress counters. Coarse enough to keep the atomics
// off the per-line path, fine enough for a 5-second progress ticker.
const flushEvery = 8192

// minRangeBytes is the smallest byte range worth giving a worker; tiny
// files collapse to fewer workers rather than paying spawn overhead.
const minRangeBytes = 64 * 1024

// Counters exposes a running scan's progress. Workers flush their
// local tallies every few thousand events, so readers see slightly
// stale but monotonic values — enough for an events/sec ticker on a
// multi-minute crawl.
type Counters struct {
	Events   atomic.Int64
	Lines    atomic.Int64
	BadLines atomic.Int64
	Bytes    atomic.Int64
}

// Package-wide totals across all scans in the process, exported to the
// adminui /metrics page as logscan_events_total / logscan_bad_lines_total.
var (
	totalEvents   atomic.Int64
	totalBadLines atomic.Int64
)

// Stats is a snapshot of the process-wide scan totals.
type Stats struct {
	Events   int64
	BadLines int64
}

// TotalStats returns the process-wide totals over every scan so far.
func TotalStats() Stats {
	return Stats{Events: totalEvents.Load(), BadLines: totalBadLines.Load()}
}

// Options configures a scan. The zero value is ready to use.
type Options struct {
	// Workers is the parallelism; <=0 means GOMAXPROCS.
	Workers int
	// Counter, when non-nil, receives periodic progress updates.
	Counter *Counters
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// tally is a worker's local fold state: a shard aggregate plus event
// counts batched between flushes into the shared counters.
type tally struct {
	agg    *maillog.Aggregate
	opts   *Options
	events int64 // events since last flush
	bytes  int64 // bytes since last flush
}

func newTally(opts *Options) *tally {
	return &tally{agg: maillog.NewAggregate(), opts: opts}
}

// line processes one raw line (whitespace-trimmed here; may be empty).
func (t *tally) line(d *Decoder, e *maillog.Event, raw []byte) {
	t.bytes += int64(len(raw))
	b := bytes.TrimSpace(raw)
	if len(b) == 0 {
		return
	}
	t.agg.Lines++
	if err := d.ParseLineBytes(b, e); err != nil {
		t.agg.BadLines++
		return
	}
	t.agg.Add(*e)
	t.events++
	if t.events >= flushEvery {
		t.flush()
	}
}

// oversized records a line past MaxLineLen: one bad line, n bytes.
func (t *tally) oversized(n int64) {
	t.agg.Lines++
	t.agg.BadLines++
	t.bytes += n
}

// flush publishes the local batch to the shared counters.
func (t *tally) flush() {
	if t.events > 0 {
		totalEvents.Add(t.events)
	}
	if c := t.opts.Counter; c != nil {
		c.Events.Add(t.events)
		c.Bytes.Add(t.bytes)
	}
	t.events, t.bytes = 0, 0
}

// finish flushes the batch plus the per-shard line totals.
func (t *tally) finish() {
	t.flush()
	totalBadLines.Add(t.agg.BadLines)
	if c := t.opts.Counter; c != nil {
		c.Lines.Add(t.agg.Lines)
		c.BadLines.Add(t.agg.BadLines)
	}
}

// Scan aggregates a decision-log stream in parallel. Inputs backed by a
// random-access source — a regular file, bytes.Reader, strings.Reader —
// are range-split across workers with no producer in the way; anything
// else (a pipe, stdin) falls back to a bounded single-reader producer
// feeding worker-owned block buffers. The result is bit-for-bit
// identical to maillog.ParseAll on the same bytes, for any worker
// count.
func Scan(r io.Reader, opts Options) (*maillog.Aggregate, error) {
	type sizedReaderAt interface {
		io.ReaderAt
		Size() int64
	}
	switch v := r.(type) {
	case *os.File:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return ScanReaderAt(v, fi.Size(), opts)
		}
	case sizedReaderAt:
		return ScanReaderAt(v, v.Size(), opts)
	}
	return scanStream(r, opts)
}

// ScanFile range-splits one log file across the configured workers.
func ScanFile(path string, opts Options) (*maillog.Aggregate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return ScanReaderAt(f, fi.Size(), opts)
}

// ScanReaderAt splits [0,size) into worker-count byte ranges and scans
// them concurrently. Range boundaries are arbitrary byte offsets; each
// worker owns exactly the lines that START inside its range (skipping
// the partial head line, finishing a line that runs past its end), so
// every line is decoded exactly once no matter where the cuts land.
func ScanReaderAt(r io.ReaderAt, size int64, opts Options) (*maillog.Aggregate, error) {
	nw := opts.workers()
	if maxw := int(size / minRangeBytes); nw > maxw {
		nw = max(1, maxw)
	}

	shards := make([]*tally, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		start := size * int64(i) / int64(nw)
		end := size * int64(i+1) / int64(nw)
		t := newTally(&opts)
		shards[i] = t
		wg.Add(1)
		go func(i int, start, end int64) {
			defer wg.Done()
			errs[i] = scanRange(r, start, end, size, t)
			t.finish()
		}(i, start, end)
	}
	wg.Wait()

	agg := maillog.NewAggregate()
	for _, t := range shards {
		agg.Merge(t.agg)
	}
	for _, err := range errs {
		if err != nil {
			return agg, err
		}
	}
	return agg, nil
}

// scanRange processes every line starting in [start,end) of r, reading
// past end as needed to complete the final line. size is the total
// input length (the section reader must be allowed to run to it).
func scanRange(r io.ReaderAt, start, end, size int64, t *tally) error {
	br := bufio.NewReaderSize(io.NewSectionReader(r, start, size-start), MaxLineLen)
	pos := start
	d := NewDecoder()
	d.SkipMsgID = true
	var e maillog.Event

	// A mid-file range usually starts inside some line owned by the
	// previous worker: discard through its newline. The exception is a
	// cut landing exactly on a line start (the preceding byte is a
	// newline) — that line is ours. If the straddling line is oversized
	// the previous worker still owns (and counts) it — the discard here
	// must not tally anything.
	if start > 0 {
		var prev [1]byte
		if _, err := r.ReadAt(prev[:], start-1); err != nil {
			return fmt.Errorf("logscan: read error at byte %d: %w", start-1, err)
		}
		for prev[0] != '\n' {
			skipped, err := br.ReadSlice('\n')
			pos += int64(len(skipped))
			if err == bufio.ErrBufferFull {
				continue
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("logscan: read error at byte %d: %w", pos, err)
			}
			break
		}
	}

	for pos < end {
		lineStart := pos
		chunk, err := br.ReadSlice('\n')
		pos += int64(len(chunk))
		if err == bufio.ErrBufferFull {
			// Oversized line owned by this range: count once, discard
			// through its newline (which may lie past end).
			for err == bufio.ErrBufferFull {
				var skipped []byte
				skipped, err = br.ReadSlice('\n')
				pos += int64(len(skipped))
			}
			t.oversized(pos - lineStart)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("logscan: read error at byte %d: %w", pos, err)
			}
			continue
		}
		t.line(d, &e, chunk)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("logscan: read error at byte %d: %w", pos, err)
		}
	}
	return nil
}

// scanStream is the non-seekable fallback: one producer frames lines
// into worker-owned block buffers; workers decode and fold into shard
// aggregates. The producer does only framing and memcpy, so it feeds
// several parse workers before becoming the bottleneck.
func scanStream(r io.Reader, opts Options) (*maillog.Aggregate, error) {
	nw := opts.workers()
	const blockSize = 1 << 20

	work := make(chan []byte, nw)
	free := make(chan []byte, 2*nw)
	for i := 0; i < 2*nw; i++ {
		free <- make([]byte, 0, blockSize)
	}

	shards := make([]*tally, nw)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		t := newTally(&opts)
		shards[i] = t
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := NewDecoder()
			d.SkipMsgID = true
			var e maillog.Event
			for block := range work {
				for len(block) > 0 {
					nl := bytes.IndexByte(block, '\n')
					if nl < 0 {
						t.line(d, &e, block)
						break
					}
					t.line(d, &e, block[:nl+1])
					block = block[nl+1:]
				}
				free <- block[:0:cap(block)]
			}
			t.finish()
		}()
	}

	// Producer: frame complete lines into blocks. The tally here counts
	// only oversized lines the workers never see.
	prodTally := newTally(&opts)
	br := bufio.NewReaderSize(r, MaxLineLen)
	var perr error
	block := (<-free)[:0]
	ship := func() {
		if len(block) > 0 {
			work <- block
			block = (<-free)[:0]
		}
	}
	for {
		lineLen := int64(0)
		chunk, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			for err == bufio.ErrBufferFull {
				lineLen += int64(len(chunk))
				chunk, err = br.ReadSlice('\n')
			}
			lineLen += int64(len(chunk))
			prodTally.oversized(lineLen)
			if err == io.EOF {
				break
			}
			if err != nil {
				perr = err
				break
			}
			continue
		}
		if len(block)+len(chunk) > cap(block) {
			ship()
		}
		block = append(block, chunk...)
		if err == io.EOF {
			break
		}
		if err != nil {
			perr = err
			break
		}
	}
	ship()
	close(work)
	wg.Wait()
	prodTally.finish()

	agg := maillog.NewAggregate()
	agg.Merge(prodTally.agg)
	for _, t := range shards {
		agg.Merge(t.agg)
	}
	if perr != nil {
		return agg, fmt.Errorf("logscan: read error after line %d: %w", agg.Lines, perr)
	}
	return agg, nil
}
