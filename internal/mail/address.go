// Package mail defines the message model shared by every layer of the
// challenge-response system: RFC 822/5321 address parsing and validation,
// the immutable Message structure carried from the MTA-IN through the
// dispatcher and spools, and helpers for header handling and message-ID
// generation.
package mail

import (
	"errors"
	"fmt"
	"strings"
)

// Parsing errors. The MTA-IN maps ErrMalformed* to the paper's
// "Malformed email" drop reason (0.06% of incoming traffic in the study).
var (
	// ErrEmptyAddress is returned for an empty address string. Note that an
	// empty *envelope* sender ("<>") is legal in SMTP (it marks bounces) and
	// is represented by the zero Address, not by a parse error.
	ErrEmptyAddress = errors.New("mail: empty address")
	// ErrMalformed is returned when an address does not have the
	// local-part@domain shape required by RFC 822.
	ErrMalformed = errors.New("mail: malformed address")
	// ErrBadLocalPart is returned for an invalid local part.
	ErrBadLocalPart = errors.New("mail: invalid local part")
	// ErrBadDomain is returned for an invalid domain.
	ErrBadDomain = errors.New("mail: invalid domain")
)

// Address is a parsed email address. Local retains its original case
// (RFC 5321 makes local parts case-sensitive in principle), while Domain is
// lower-cased during parsing because DNS names are case-insensitive.
type Address struct {
	Local  string
	Domain string
}

// Null is the empty reverse-path "<>" used by bounce messages (DSNs).
// Challenge-response systems MUST send challenges with a non-null sender,
// but must also never challenge a message whose envelope sender is null —
// replying to a bounce would loop.
var Null = Address{}

// IsNull reports whether a is the null reverse-path.
func (a Address) IsNull() bool { return a.Local == "" && a.Domain == "" }

// String formats the address as local@domain, or "<>" for the null path.
func (a Address) String() string {
	if a.IsNull() {
		return "<>"
	}
	return a.Local + "@" + a.Domain
}

// Key returns a canonical form used for whitelist and map lookups:
// the local part lower-cased plus the (already lower-case) domain.
// Matching local parts case-insensitively follows the behaviour of real
// CR deployments, which would otherwise fail to recognise senders whose
// clients change capitalisation.
func (a Address) Key() string {
	if a.IsNull() {
		return "<>"
	}
	return strings.ToLower(a.Local) + "@" + a.Domain
}

// AppendKey appends the canonical Key form to dst without the
// intermediate string Key allocates.
func (a Address) AppendKey(dst []byte) []byte {
	if a.IsNull() {
		return append(dst, '<', '>')
	}
	for i := 0; i < len(a.Local); i++ {
		c := a.Local[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	dst = append(dst, '@')
	return append(dst, a.Domain...)
}

// Canonical returns the address in its canonical form: the local part
// lower-cased (Domain is already lower-case from parsing). Two addresses
// are the same mailbox exactly when their Canonical values are equal, so
// the canonical Address is usable directly as a comparable map key —
// the allocation-free replacement for string Key() keys on hot paths.
// For already-lower-case locals (the overwhelmingly common case)
// strings.ToLower returns its input and Canonical allocates nothing.
func (a Address) Canonical() Address {
	return Address{Local: strings.ToLower(a.Local), Domain: a.Domain}
}

// KeyEquals reports whether a and b canonicalise to the same mailbox,
// without allocating either key.
func (a Address) KeyEquals(b Address) bool {
	return a.Domain == b.Domain && strings.EqualFold(a.Local, b.Local)
}

const (
	maxLocalLen  = 64  // RFC 5321 §4.5.3.1.1
	maxDomainLen = 255 // RFC 5321 §4.5.3.1.2
	maxLabelLen  = 63
)

// atextSpecials are the printable ASCII characters beyond letters and
// digits that RFC 5322 permits in an unquoted local-part atom.
const atextSpecials = "!#$%&'*+-/=?^_`{|}~."

func isAtext(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	default:
		return strings.IndexByte(atextSpecials, c) >= 0
	}
}

// ParseAddress parses and validates s as an RFC 822 addr-spec
// ("local@domain"). It accepts an optional surrounding angle-bracket pair
// ("<local@domain>") as used on SMTP MAIL/RCPT lines, and the bare "<>"
// null path. It does not accept display names, comments, source routes,
// or quoted local parts containing spaces (the commercial product under
// study rejected those as malformed too).
func ParseAddress(s string) (Address, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">") {
		s = s[1 : len(s)-1]
		if s == "" {
			return Null, nil
		}
	}
	if s == "" {
		return Address{}, ErrEmptyAddress
	}
	at := strings.LastIndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return Address{}, fmt.Errorf("%w: %q", ErrMalformed, s)
	}
	local, domain := s[:at], s[at+1:]
	if err := checkLocal(local); err != nil {
		return Address{}, fmt.Errorf("%w: %q", err, s)
	}
	domain = strings.ToLower(domain)
	if err := CheckDomain(domain); err != nil {
		return Address{}, fmt.Errorf("%w: %q", err, s)
	}
	return Address{Local: local, Domain: domain}, nil
}

// MustParseAddress is ParseAddress that panics on error. For tests and
// static configuration only.
func MustParseAddress(s string) Address {
	a, err := ParseAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

func checkLocal(local string) error {
	if local == "" || len(local) > maxLocalLen {
		return ErrBadLocalPart
	}
	if local[0] == '.' || local[len(local)-1] == '.' || strings.Contains(local, "..") {
		return ErrBadLocalPart
	}
	for i := 0; i < len(local); i++ {
		if !isAtext(local[i]) {
			return ErrBadLocalPart
		}
	}
	return nil
}

// CheckDomain validates a DNS domain name per RFC 1035 preferred syntax:
// dot-separated labels of letters, digits and hyphens, not starting or
// ending with a hyphen, at least two labels (the product treats bare
// hostnames as malformed since they can never resolve publicly).
func CheckDomain(domain string) error {
	if domain == "" || len(domain) > maxDomainLen {
		return ErrBadDomain
	}
	labels := strings.Split(domain, ".")
	if len(labels) < 2 {
		return ErrBadDomain
	}
	for _, l := range labels {
		if l == "" || len(l) > maxLabelLen {
			return ErrBadDomain
		}
		if l[0] == '-' || l[len(l)-1] == '-' {
			return ErrBadDomain
		}
		for i := 0; i < len(l); i++ {
			c := l[i]
			ok := c == '-' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				return ErrBadDomain
			}
		}
	}
	return nil
}

// LocalSimilarity returns a similarity score in [0,1] between the local
// parts of two addresses, used by the campaign clustering of §4.1 to split
// clusters into "high sender similarity" (newsletters, e.g. dept-x.p@scn-1
// vs dept-x.q@scn-2) and "low sender similarity" (botnet spam). The score
// is 1 - d/max(len) where d is the Levenshtein distance.
func LocalSimilarity(a, b Address) float64 {
	la, lb := strings.ToLower(a.Local), strings.ToLower(b.Local)
	if la == lb {
		return 1
	}
	maxLen := len(la)
	if len(lb) > maxLen {
		maxLen = len(lb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(levenshtein(la, lb))/float64(maxLen)
}

// levenshtein computes the edit distance between two strings with a
// two-row dynamic program.
func levenshtein(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
