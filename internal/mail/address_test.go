package mail

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAddressValid(t *testing.T) {
	cases := []struct {
		in            string
		local, domain string
	}{
		{"alice@example.com", "alice", "example.com"},
		{"<alice@example.com>", "alice", "example.com"},
		{"Bob.Smith@Example.COM", "Bob.Smith", "example.com"},
		{"user+tag@mail.example.org", "user+tag", "mail.example.org"},
		{"dept-x.p@scn-1.com", "dept-x.p", "scn-1.com"},
		{"o'brien@irish.ie", "o'brien", "irish.ie"},
		{"x@a.b", "x", "a.b"},
		{"  spaced@example.com  ", "spaced", "example.com"},
		{"num3r1c@123.example.com", "num3r1c", "123.example.com"},
		{"a!#$%&'*+-/=?^_`{|}~z@odd.example.com", "a!#$%&'*+-/=?^_`{|}~z", "odd.example.com"},
	}
	for _, c := range cases {
		got, err := ParseAddress(c.in)
		if err != nil {
			t.Errorf("ParseAddress(%q) error: %v", c.in, err)
			continue
		}
		if got.Local != c.local || got.Domain != c.domain {
			t.Errorf("ParseAddress(%q) = %v@%v, want %v@%v", c.in, got.Local, got.Domain, c.local, c.domain)
		}
	}
}

func TestParseAddressNullPath(t *testing.T) {
	got, err := ParseAddress("<>")
	if err != nil {
		t.Fatalf("ParseAddress(<>) error: %v", err)
	}
	if !got.IsNull() {
		t.Fatalf("ParseAddress(<>) = %v, want null", got)
	}
	if got.String() != "<>" {
		t.Fatalf("null String() = %q", got.String())
	}
}

func TestParseAddressInvalid(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"", ErrEmptyAddress},
		{"   ", ErrEmptyAddress},
		{"no-at-sign", ErrMalformed},
		{"@example.com", ErrMalformed},
		{"user@", ErrMalformed},
		{"user@@example.com", ErrBadLocalPart}, // last @ splits; local "user@" invalid
		{".leadingdot@example.com", ErrBadLocalPart},
		{"trailingdot.@example.com", ErrBadLocalPart},
		{"double..dot@example.com", ErrBadLocalPart},
		{"spa ce@example.com", ErrBadLocalPart},
		{"user@nodots", ErrBadDomain},
		{"user@-bad.example.com", ErrBadDomain},
		{"user@bad-.example.com", ErrBadDomain},
		{"user@under_score.com", ErrBadDomain},
		{"user@ex ample.com", ErrBadDomain},
		{"user@.example.com", ErrBadDomain},
		{"user@example.com.", ErrBadDomain},
		{strings.Repeat("a", 65) + "@example.com", ErrBadLocalPart},
		{"user@" + strings.Repeat("a", 64) + ".com", ErrBadDomain},
	}
	for _, c := range cases {
		_, err := ParseAddress(c.in)
		if err == nil {
			t.Errorf("ParseAddress(%q) succeeded, want error %v", c.in, c.wantErr)
			continue
		}
		if !errors.Is(err, c.wantErr) {
			t.Errorf("ParseAddress(%q) error = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

func TestAddressKeyCaseFolding(t *testing.T) {
	a := MustParseAddress("Alice@Example.COM")
	b := MustParseAddress("alice@example.com")
	if a.Key() != b.Key() {
		t.Fatalf("Key mismatch: %q vs %q", a.Key(), b.Key())
	}
	// String preserves local-part case.
	if a.String() != "Alice@example.com" {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestMustParseAddressPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddress did not panic on bad input")
		}
	}()
	MustParseAddress("not an address")
}

func TestCheckDomain(t *testing.T) {
	for _, ok := range []string{"example.com", "a.b.c.d.example.org", "x-y.example.com", "123.45.example.net"} {
		if err := CheckDomain(ok); err != nil {
			t.Errorf("CheckDomain(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "nodots", ".x.com", "x..com", "-a.com", "a-.com", "a_b.com", strings.Repeat("a.", 200) + "com"} {
		if err := CheckDomain(bad); err == nil {
			t.Errorf("CheckDomain(%q) = nil, want error", bad)
		}
	}
}

func TestLocalSimilarity(t *testing.T) {
	a := MustParseAddress("dept-x.p@scn-1.com")
	b := MustParseAddress("dept-x.q@scn-1.com")
	if s := LocalSimilarity(a, b); s < 0.8 {
		t.Fatalf("newsletter-style similarity = %v, want >= 0.8", s)
	}
	c := MustParseAddress("jk3m9q@random1.net")
	d := MustParseAddress("zzyyxx42@other.org")
	if s := LocalSimilarity(c, d); s > 0.5 {
		t.Fatalf("botnet-style similarity = %v, want <= 0.5", s)
	}
	if s := LocalSimilarity(a, a); s != 1 {
		t.Fatalf("self similarity = %v, want 1", s)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.d {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

// Property: any address assembled from valid atoms round-trips through
// ParseAddress with the domain lower-cased.
func TestParseAddressRoundTripProperty(t *testing.T) {
	const atom = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	gen := func(r *rand.Rand) string {
		n := 1 + r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = atom[r.Intn(len(atom))]
		}
		return string(b)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		local := gen(r)
		domain := strings.ToLower(gen(r) + "." + gen(r))
		a, err := ParseAddress(local + "@" + domain)
		return err == nil && a.Local == local && a.Domain == domain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: levenshtein is symmetric and zero iff equal.
func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		d1, d2 := levenshtein(a, b), levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		if (d1 == 0) != (a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LocalSimilarity stays within [0,1].
func TestLocalSimilarityRangeProperty(t *testing.T) {
	f := func(l1, l2 string) bool {
		a := Address{Local: l1, Domain: "x.com"}
		b := Address{Local: l2, Domain: "y.com"}
		s := LocalSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseAddress(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddress("some.user+tag@mail.example.com"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalSimilarity(b *testing.B) {
	x := MustParseAddress("dept-x.paul@scn-1.com")
	y := MustParseAddress("dept-x.quentin@scn-2.com")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LocalSimilarity(x, y)
	}
}
