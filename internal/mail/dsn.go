package mail

import (
	"strings"
)

// DSNClass buckets a bounce by what its enhanced status code says went
// wrong. The classes mirror the challenge fates the paper measures:
// dead mailboxes, dead domains, blocklisted challenge senders (§5.1)
// and retry-schedule expiry.
type DSNClass string

// DSN classes.
const (
	// DSNNoUser: the mailbox does not exist (5.1.1) — the dominant
	// bounce class for challenges to spoofed senders.
	DSNNoUser DSNClass = "no-user"
	// DSNNoDomain: the destination domain does not resolve or accept
	// mail (5.1.2, 5.4.4).
	DSNNoDomain DSNClass = "no-domain"
	// DSNBlocklisted: the remote MX refused the connection on policy,
	// typically an RBL listing of the challenge sender (5.7.1).
	DSNBlocklisted DSNClass = "blocklisted"
	// DSNExpired: the reporting MTA gave up after its retry schedule
	// (4.4.7).
	DSNExpired DSNClass = "expired"
	// DSNOther: a syntactically valid status outside the classes above.
	DSNOther DSNClass = "other"
)

// DSN is the machine-readable content of a delivery status
// notification, extracted from a null-sender bounce message.
type DSN struct {
	// Action is the RFC 3464 Action field ("failed", "delayed", ...).
	Action string
	// Status is the enhanced status code ("5.1.1"); empty if the DSN
	// carried none or an unparsable one.
	Status string
	// Class is the bounce classification derived from Status;
	// DSNOther when Status is empty or unrecognised.
	Class DSNClass
	// OriginalMessageID is the ID of the message whose delivery failed
	// — for a bounced challenge, the original gray message's ID. Empty
	// when the reporting MTA did not echo it.
	OriginalMessageID string
	// FinalRecipient is the address the failed delivery was for.
	FinalRecipient string
	// Diagnostic is the free-text Diagnostic-Code field.
	Diagnostic string
}

// dsnScanLimits bound how much of a hostile body the parser inspects.
const (
	maxDSNLines    = 200
	maxDSNLineLen  = 1024
	maxDSNScanSize = 64 << 10
)

// ParseDSN extracts DSN fields from a null-sender message. It returns
// ok=false when the message is not recognisably a DSN: the envelope
// sender is non-null, or the body carries neither a valid enhanced
// status code nor an original message ID. Unrecognisable or garbled
// field values degrade to empty fields, never to an error — a bounce
// processor must survive whatever remote MTAs produce.
func ParseDSN(m *Message) (*DSN, bool) {
	if m == nil || !m.EnvelopeFrom.IsNull() {
		return nil, false
	}
	d := parseDSNBody(m.Body)
	if d.Status == "" && d.OriginalMessageID == "" {
		return nil, false
	}
	return d, true
}

// parseDSNBody scans body for RFC 3464-style fields. Exported-for-fuzz
// via ParseDSN; tolerant of 8-bit garbage, missing fields and absurd
// line lengths.
func parseDSNBody(body string) *DSN {
	if len(body) > maxDSNScanSize {
		body = body[:maxDSNScanSize]
	}
	d := &DSN{Class: DSNOther}
	lines := 0
	for len(body) > 0 && lines < maxDSNLines {
		var line string
		if i := strings.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			line, body = body, ""
		}
		line = strings.TrimRight(line, "\r")
		lines++
		if len(line) > maxDSNLineLen {
			continue
		}
		if v, ok := cutField(line, "Status"); ok && d.Status == "" {
			if validEnhancedStatus(v) {
				d.Status = v
				d.Class = classifyStatus(v)
			}
		} else if v, ok := cutField(line, "Action"); ok && d.Action == "" {
			d.Action = strings.ToLower(v)
		} else if v, ok := cutField(line, "X-Original-Message-ID"); ok && d.OriginalMessageID == "" {
			d.OriginalMessageID = trimAngles(v)
		} else if v, ok := cutField(line, "Original-Message-ID"); ok && d.OriginalMessageID == "" {
			d.OriginalMessageID = trimAngles(v)
		} else if v, ok := cutField(line, "Final-Recipient"); ok && d.FinalRecipient == "" {
			// RFC 3464: "address-type; address".
			if i := strings.IndexByte(v, ';'); i >= 0 {
				v = v[i+1:]
			}
			d.FinalRecipient = trimAngles(strings.TrimSpace(v))
		} else if v, ok := cutField(line, "Diagnostic-Code"); ok && d.Diagnostic == "" {
			d.Diagnostic = v
		}
	}
	return d
}

// cutField matches "Name: value" case-insensitively on the field name.
func cutField(line, name string) (string, bool) {
	if len(line) <= len(name) || line[len(name)] != ':' {
		return "", false
	}
	if !strings.EqualFold(line[:len(name)], name) {
		return "", false
	}
	return strings.TrimSpace(line[len(name)+1:]), true
}

// trimAngles reduces "<x>" to "x".
func trimAngles(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '<' && s[len(s)-1] == '>' {
		return s[1 : len(s)-1]
	}
	return s
}

// validEnhancedStatus reports whether s is an RFC 3463 enhanced status
// code: class.subject.detail with class 2, 4 or 5 and numeric
// components of at most three digits.
func validEnhancedStatus(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return false
	}
	if parts[0] != "2" && parts[0] != "4" && parts[0] != "5" {
		return false
	}
	for _, p := range parts[1:] {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		for i := 0; i < len(p); i++ {
			if p[i] < '0' || p[i] > '9' {
				return false
			}
		}
	}
	return true
}

// classifyStatus maps a valid enhanced status code to its bounce class.
func classifyStatus(s string) DSNClass {
	switch s {
	case "5.1.1":
		return DSNNoUser
	case "5.1.2", "5.4.4":
		return DSNNoDomain
	case "5.7.1":
		return DSNBlocklisted
	case "4.4.7":
		return DSNExpired
	default:
		return DSNOther
	}
}

// FormatDSNBody renders the machine-readable part of a bounce body the
// way simnet's remote MTAs (and tests) produce it: a human sentence
// followed by an RFC 3464-style per-recipient field block. ParseDSN is
// its inverse.
func FormatDSNBody(finalRcpt, status, diagnostic, originalMsgID string) string {
	var b strings.Builder
	b.WriteString("This is the mail system; delivery failed.\r\n\r\n")
	b.WriteString("Final-Recipient: rfc822; " + finalRcpt + "\r\n")
	b.WriteString("Action: failed\r\n")
	if status != "" {
		b.WriteString("Status: " + status + "\r\n")
	}
	if diagnostic != "" {
		b.WriteString("Diagnostic-Code: smtp; " + diagnostic + "\r\n")
	}
	if originalMsgID != "" {
		b.WriteString("X-Original-Message-ID: <" + originalMsgID + ">\r\n")
	}
	return b.String()
}
