package mail

import (
	"strings"
	"testing"
)

func dsnMessage(body string) *Message {
	return &Message{
		ID:           NewID("b"),
		EnvelopeFrom: Address{}, // null reverse-path, as RFC 3464 requires
		Rcpt:         MustParseAddress("challenge@corp.example"),
		Subject:      "Undelivered Mail Returned to Sender",
		Body:         body,
	}
}

func TestParseDSNRoundTrip(t *testing.T) {
	body := FormatDSNBody("spoofed@victim.example", "5.1.1", "550 no such user", "msg-000042")
	d, ok := ParseDSN(dsnMessage(body))
	if !ok {
		t.Fatal("ParseDSN rejected a well-formed DSN")
	}
	if d.Status != "5.1.1" || d.Class != DSNNoUser {
		t.Fatalf("status/class = %q/%q", d.Status, d.Class)
	}
	if d.OriginalMessageID != "msg-000042" {
		t.Fatalf("original message ID = %q", d.OriginalMessageID)
	}
	if d.FinalRecipient != "spoofed@victim.example" {
		t.Fatalf("final recipient = %q", d.FinalRecipient)
	}
	if d.Action != "failed" {
		t.Fatalf("action = %q", d.Action)
	}
	if !strings.Contains(d.Diagnostic, "no such user") {
		t.Fatalf("diagnostic = %q", d.Diagnostic)
	}
}

func TestParseDSNClasses(t *testing.T) {
	cases := []struct {
		status string
		want   DSNClass
	}{
		{"5.1.1", DSNNoUser},
		{"5.1.2", DSNNoDomain},
		{"5.4.4", DSNNoDomain},
		{"5.7.1", DSNBlocklisted},
		{"4.4.7", DSNExpired},
		{"5.0.0", DSNOther},
		{"2.0.0", DSNOther},
	}
	for _, c := range cases {
		body := FormatDSNBody("x@y.example", c.status, "", "id-1")
		d, ok := ParseDSN(dsnMessage(body))
		if !ok {
			t.Fatalf("status %s: rejected", c.status)
		}
		if d.Class != c.want {
			t.Fatalf("status %s: class = %q, want %q", c.status, d.Class, c.want)
		}
	}
}

func TestParseDSNRejectsNonBounces(t *testing.T) {
	// Non-null envelope sender: not a DSN no matter what the body says.
	m := dsnMessage(FormatDSNBody("x@y.example", "5.1.1", "", "id-1"))
	m.EnvelopeFrom = MustParseAddress("human@elsewhere.example")
	if _, ok := ParseDSN(m); ok {
		t.Fatal("accepted a DSN from a non-null sender")
	}
	// Null sender but neither a status nor an original message ID.
	if _, ok := ParseDSN(dsnMessage("Sorry, something went wrong.\r\n")); ok {
		t.Fatal("accepted a bodyless bounce as a DSN")
	}
	if _, ok := ParseDSN(nil); ok {
		t.Fatal("accepted a nil message")
	}
}

func TestParseDSNMalformedStatusDegrades(t *testing.T) {
	// An invalid enhanced status code degrades to empty Status, and the
	// echoed message ID alone still makes the bounce correlatable.
	body := "Final-Recipient: rfc822; a@b.example\r\n" +
		"Status: 5.1\r\n" + // two components, invalid
		"X-Original-Message-ID: <msg-7>\r\n"
	d, ok := ParseDSN(dsnMessage(body))
	if !ok {
		t.Fatal("rejected a correlatable bounce with a bad status")
	}
	if d.Status != "" || d.Class != DSNOther {
		t.Fatalf("status/class = %q/%q, want empty/other", d.Status, d.Class)
	}
	if d.OriginalMessageID != "msg-7" {
		t.Fatalf("original message ID = %q", d.OriginalMessageID)
	}
}

func TestParseDSNMissingOriginalMessageID(t *testing.T) {
	d, ok := ParseDSN(dsnMessage(FormatDSNBody("a@b.example", "5.1.2", "", "")))
	if !ok {
		t.Fatal("rejected a DSN with a valid status and no message ID")
	}
	if d.OriginalMessageID != "" || d.Class != DSNNoDomain {
		t.Fatalf("got %+v", d)
	}
}

func TestParseDSNSurvivesGarbage(t *testing.T) {
	bodies := []string{
		"\xff\xfe<<host not found>> =?garbage?= \x00",
		strings.Repeat("A", 100<<10),
		"Status: " + strings.Repeat("5", 2000) + "\r\nX-Original-Message-ID: <m>\r\n",
		strings.Repeat("Status: nope\n", 10000),
		"Status:\x00 5.1.1\nOriginal-Message-ID: <\x7f>\n",
	}
	for i, body := range bodies {
		d, ok := ParseDSN(dsnMessage(body))
		if ok && d.Status != "" && !validEnhancedStatus(d.Status) {
			t.Fatalf("case %d: accepted invalid status %q", i, d.Status)
		}
	}
}

func TestValidEnhancedStatus(t *testing.T) {
	valid := []string{"5.1.1", "4.4.7", "2.0.0", "5.999.999"}
	invalid := []string{"", "5", "5.1", "5.1.1.1", "6.1.1", "5.a.1", "5.1111.1", "5..1", "x.y.z"}
	for _, s := range valid {
		if !validEnhancedStatus(s) {
			t.Fatalf("rejected valid status %q", s)
		}
	}
	for _, s := range invalid {
		if validEnhancedStatus(s) {
			t.Fatalf("accepted invalid status %q", s)
		}
	}
}

// FuzzParseDSN asserts the parser never panics and never emits an
// invalid enhanced status code, no matter the body: remote MTAs produce
// arbitrary bytes and the bounce processor sits on the public MX path.
func FuzzParseDSN(f *testing.F) {
	f.Add(FormatDSNBody("a@b.example", "5.1.1", "550 no such user", "msg-1"))
	f.Add(FormatDSNBody("a@b.example", "4.4.7", "", ""))
	f.Add("Status: 5.1\r\nAction: failed")
	f.Add("\xff\xfe<<host not found>> =?garbage?= \x00")
	f.Add("X-Original-Message-ID: <" + strings.Repeat("m", 5000) + ">")
	f.Add(strings.Repeat("Final-Recipient: rfc822; a@b\n", 500))
	f.Fuzz(func(t *testing.T, body string) {
		d, ok := ParseDSN(dsnMessage(body))
		if !ok {
			return
		}
		if d.Status == "" && d.OriginalMessageID == "" {
			t.Fatal("accepted a DSN with neither status nor message ID")
		}
		if d.Status != "" && !validEnhancedStatus(d.Status) {
			t.Fatalf("emitted invalid status %q", d.Status)
		}
		if d.Status == "" && d.Class != DSNOther {
			t.Fatalf("class %q without a status", d.Class)
		}
	})
}
