package mail

import (
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Message is one email as seen by the CR system. A Message carries both the
// SMTP envelope (EnvelopeFrom / Rcpt, which drive routing decisions) and
// the header fields the measurement pipeline extracts (Subject, sizes,
// timestamps). The study only ever had access to headers, never bodies; we
// carry Body for the antivirus scanner but no component outside
// internal/filters reads it.
type Message struct {
	// ID is a unique message identifier assigned at generation or on
	// receipt (see NewID).
	ID string

	// EnvelopeFrom is the SMTP MAIL FROM reverse-path. Spam very often
	// spoofs it; it is the address challenges are sent to, which is the
	// root cause of the backscatter phenomenon the paper measures.
	EnvelopeFrom Address

	// Rcpt is the SMTP RCPT TO forward-path: the local user the message is
	// addressed to. The dispatcher makes a decision per (message, rcpt).
	Rcpt Address

	// HeaderFrom is the RFC 5322 From: header, which may differ from the
	// envelope. SPF validates the envelope; users see the header.
	HeaderFrom Address

	// Subject is the Subject: header, used by the §4.1 campaign clustering.
	Subject string

	// Size is the full size of the message in bytes (headers + body), used
	// for the reflected-traffic ratio RT of §3.3.
	Size int

	// Body is the message body. Only the antivirus filter inspects it.
	Body string

	// ClientIP is the IP address of the SMTP client that delivered the
	// message, as dotted quad. The reverse-DNS and RBL filters key on it.
	ClientIP string

	// HeloDomain is the domain announced in HELO/EHLO, used by SPF.
	HeloDomain string

	// AutoSubmitted is the RFC 3834 Auto-Submitted: header value
	// ("auto-replied", "auto-generated", ...; empty when absent or
	// "no"). Challenge emails set it, so a CR system receiving another
	// CR system's challenge can suppress the counter-challenge instead
	// of starting a challenge loop.
	AutoSubmitted string

	// Received is when the MTA-IN accepted the message.
	Received time.Time
}

// Clone returns a copy of m with the given recipient, used when one SMTP
// transaction carries multiple RCPT TO addresses: the dispatcher treats
// each recipient as an independent delivery decision.
func (m *Message) Clone(rcpt Address) *Message {
	c := *m
	c.Rcpt = rcpt
	return &c
}

var idCounter atomic.Uint64

// appendID renders "<prefix>-%06d" into dst. Hand-rolled so ID minting
// costs one allocation (the returned string) instead of fmt.Sprintf's
// several — IDs are minted once per generated message, squarely on the
// workload hot path.
func appendID(dst []byte, prefix string, n uint64) []byte {
	dst = append(dst, prefix...)
	dst = append(dst, '-')
	var tmp [20]byte
	i := len(tmp)
	for n >= 10 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	i--
	tmp[i] = byte('0' + n)
	for pad := 6 - (len(tmp) - i); pad > 0; pad-- {
		dst = append(dst, '0')
	}
	return append(dst, tmp[i:]...)
}

// NewID returns a process-unique message ID with the given prefix. IDs are
// sequential rather than random so simulation runs are reproducible.
func NewID(prefix string) string {
	var buf [48]byte
	return string(appendID(buf[:0], prefix, idCounter.Add(1)))
}

// ResetIDCounter resets the global ID sequence. Tests and experiment
// drivers call it so message IDs are stable across runs.
func ResetIDCounter() { idCounter.Store(0) }

// IDSource is a deterministic per-stream ID generator in the same
// "<prefix>-%06d" format as NewID, but with its own private sequence.
// Parallel simulation lanes each own one (prefixed with a lane-unique
// name), so IDs stay globally unique and identical across worker counts
// without sharing the process-wide counter. Not safe for concurrent use;
// a lane is single-threaded by construction.
type IDSource struct {
	prefix string
	n      uint64
}

// NewIDSource returns an IDSource issuing "<prefix>-000001", ….
func NewIDSource(prefix string) *IDSource { return &IDSource{prefix: prefix} }

// Next returns the next ID in the stream.
func (s *IDSource) Next() string {
	s.n++
	var buf [48]byte
	return string(appendID(buf[:0], s.prefix, s.n))
}

// SubjectWords returns the number of whitespace-separated words in the
// subject. The §4.1 clustering only considers subjects of at least 10
// words to keep the false-merge probability negligible.
func (m *Message) SubjectWords() int {
	return len(strings.Fields(m.Subject))
}

// Headers is a minimal ordered header collection for rendered messages
// (challenges, digests, DSNs). Field names are matched case-insensitively
// as RFC 5322 requires, but the stored capitalisation is preserved.
type Headers struct {
	keys []string
	vals map[string]string
}

// NewHeaders returns an empty header set.
func NewHeaders() *Headers {
	return &Headers{vals: make(map[string]string)}
}

// Set adds or replaces a header field.
func (h *Headers) Set(key, value string) {
	ck := strings.ToLower(key)
	if _, ok := h.vals[ck]; !ok {
		h.keys = append(h.keys, key)
	}
	h.vals[ck] = value
}

// Get returns the value of the named field, or "" if absent.
func (h *Headers) Get(key string) string {
	return h.vals[strings.ToLower(key)]
}

// Has reports whether the named field is present.
func (h *Headers) Has(key string) bool {
	_, ok := h.vals[strings.ToLower(key)]
	return ok
}

// Len returns the number of fields.
func (h *Headers) Len() int { return len(h.keys) }

// Render serialises the headers in insertion order, CRLF-terminated,
// followed by the blank separator line.
func (h *Headers) Render() string {
	var b strings.Builder
	for _, k := range h.keys {
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(h.vals[strings.ToLower(k)])
		b.WriteString("\r\n")
	}
	b.WriteString("\r\n")
	return b.String()
}

// SortedKeys returns the field names sorted alphabetically (for
// deterministic test assertions).
func (h *Headers) SortedKeys() []string {
	out := make([]string, len(h.keys))
	copy(out, h.keys)
	sort.Strings(out)
	return out
}
