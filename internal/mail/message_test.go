package mail

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDUniqueSequential(t *testing.T) {
	ResetIDCounter()
	a, b := NewID("msg"), NewID("msg")
	if a == b {
		t.Fatalf("NewID returned duplicate %q", a)
	}
	if a != "msg-000001" || b != "msg-000002" {
		t.Fatalf("IDs = %q, %q; want msg-000001, msg-000002", a, b)
	}
}

func TestNewIDConcurrent(t *testing.T) {
	ResetIDCounter()
	const n = 200
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = NewID("c")
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate concurrent ID %q", id)
		}
		seen[id] = true
	}
}

func TestMessageClone(t *testing.T) {
	m := &Message{
		ID:           "m-1",
		EnvelopeFrom: MustParseAddress("a@b.com"),
		Rcpt:         MustParseAddress("u1@corp.com"),
		Subject:      "hello",
		Size:         1234,
		Received:     time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	r2 := MustParseAddress("u2@corp.com")
	c := m.Clone(r2)
	if c.Rcpt != r2 {
		t.Fatalf("Clone rcpt = %v, want %v", c.Rcpt, r2)
	}
	if c.ID != m.ID || c.Subject != m.Subject || c.Size != m.Size {
		t.Fatal("Clone did not copy fields")
	}
	c.Subject = "changed"
	if m.Subject != "hello" {
		t.Fatal("Clone aliases the original")
	}
}

func TestSubjectWords(t *testing.T) {
	cases := []struct {
		subj string
		n    int
	}{
		{"", 0},
		{"one", 1},
		{"  spaced   out   words  ", 3},
		{"Buy cheap meds online now best price guaranteed today only friend", 11},
	}
	for _, c := range cases {
		m := &Message{Subject: c.subj}
		if got := m.SubjectWords(); got != c.n {
			t.Errorf("SubjectWords(%q) = %d, want %d", c.subj, got, c.n)
		}
	}
}

func TestHeadersSetGetCaseInsensitive(t *testing.T) {
	h := NewHeaders()
	h.Set("Subject", "challenge")
	h.Set("X-CR-Token", "tok123")
	if h.Get("subject") != "challenge" {
		t.Fatalf("Get(subject) = %q", h.Get("subject"))
	}
	if !h.Has("x-cr-token") {
		t.Fatal("Has(x-cr-token) = false")
	}
	h.Set("SUBJECT", "replaced")
	if h.Get("Subject") != "replaced" {
		t.Fatalf("replace failed: %q", h.Get("Subject"))
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replace must not duplicate)", h.Len())
	}
}

func TestHeadersRenderOrder(t *testing.T) {
	h := NewHeaders()
	h.Set("From", "cr@corp.com")
	h.Set("To", "alice@example.com")
	h.Set("Subject", "please confirm")
	out := h.Render()
	iFrom := strings.Index(out, "From:")
	iTo := strings.Index(out, "To:")
	iSub := strings.Index(out, "Subject:")
	if !(iFrom < iTo && iTo < iSub) {
		t.Fatalf("render order wrong:\n%s", out)
	}
	if !strings.HasSuffix(out, "\r\n\r\n") {
		t.Fatalf("render must end with blank line, got %q", out[len(out)-8:])
	}
}

func TestHeadersSortedKeys(t *testing.T) {
	h := NewHeaders()
	h.Set("Zeta", "1")
	h.Set("Alpha", "2")
	keys := h.SortedKeys()
	if len(keys) != 2 || keys[0] != "Alpha" || keys[1] != "Zeta" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}
