// Package mailbox stores delivered mail. The CR engine decides *whether*
// a message reaches a user; this package is *where* it lands: an
// in-memory per-user inbox with mbox-format export (RFC 4155 "mboxrd"
// quoting), so a live deployment's users can actually read what the
// filter let through — and tests can assert on inbox contents rather
// than counters.
package mailbox

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mail"
)

// Stored is one delivered message with its delivery metadata.
type Stored struct {
	Msg       *mail.Message
	Via       core.DeliveryVia
	Delivered time.Time
}

// Store is the per-user inbox collection. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	byUser map[string][]Stored
	total  int64
}

// NewStore returns an empty mailbox store.
func NewStore() *Store {
	return &Store{byUser: make(map[string][]Stored)}
}

// Sink returns the engine hook that files deliveries into the store:
//
//	engine.SetInboxSink(store.Sink())
func (s *Store) Sink() func(core.Delivery, *mail.Message) {
	return func(d core.Delivery, m *mail.Message) {
		s.mu.Lock()
		key := d.User.Key()
		s.byUser[key] = append(s.byUser[key], Stored{Msg: m, Via: d.Via, Delivered: d.DeliveredAt})
		s.total++
		s.mu.Unlock()
	}
}

// Inbox returns a copy of user's messages in delivery order.
func (s *Store) Inbox(user mail.Address) []Stored {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.byUser[user.Key()]
	out := make([]Stored, len(src))
	copy(out, src)
	return out
}

// Len returns the number of messages in user's inbox.
func (s *Store) Len(user mail.Address) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byUser[user.Key()])
}

// Total returns the number of stored messages across all users.
func (s *Store) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Users returns the user keys with non-empty inboxes, sorted.
func (s *Store) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byUser))
	for k := range s.byUser {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteMbox renders user's inbox in mbox format to w: each message gets
// a "From " separator line, reconstructed headers, and an mboxrd-quoted
// body ("From " at line start becomes ">From ", and the quoting nests).
func (s *Store) WriteMbox(w io.Writer, user mail.Address) error {
	for _, st := range s.Inbox(user) {
		if err := writeOne(w, st); err != nil {
			return err
		}
	}
	return nil
}

func writeOne(w io.Writer, st Stored) error {
	m := st.Msg
	envFrom := m.EnvelopeFrom.String()
	if m.EnvelopeFrom.IsNull() {
		envFrom = "MAILER-DAEMON"
	}
	if _, err := fmt.Fprintf(w, "From %s %s\n", envFrom, st.Delivered.UTC().Format(time.ANSIC)); err != nil {
		return err
	}
	h := mail.NewHeaders()
	h.Set("From", m.EnvelopeFrom.String())
	h.Set("To", m.Rcpt.String())
	h.Set("Subject", m.Subject)
	h.Set("Date", st.Delivered.UTC().Format(time.RFC1123Z))
	h.Set("Message-ID", "<"+m.ID+"@crspam.local>")
	h.Set("X-CR-Delivered-Via", st.Via.String())
	// The headers render CRLF-terminated; mbox convention is bare LF.
	if _, err := io.WriteString(w, strings.ReplaceAll(h.Render(), "\r\n", "\n")); err != nil {
		return err
	}
	body := strings.ReplaceAll(m.Body, "\r\n", "\n")
	for _, line := range strings.Split(body, "\n") {
		if err := writeQuoted(w, line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// writeQuoted applies mboxrd quoting: any line that is "From " preceded
// by zero or more '>' gains one more '>'.
func writeQuoted(w io.Writer, line string) error {
	trimmed := strings.TrimLeft(line, ">")
	if strings.HasPrefix(trimmed, "From ") {
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, line+"\n")
	return err
}

// ParseMboxCount is a light-weight sanity parser: it counts the message
// separators in an mbox stream (for tests and the crserver export
// endpoint's self-check). mboxrd-quoted ">From " lines are not counted.
func ParseMboxCount(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "From ") {
			n++
		}
	}
	return n, nil
}
