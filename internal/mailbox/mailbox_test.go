package mailbox

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/whitelist"
)

var (
	t0  = time.Date(2010, 7, 1, 12, 0, 0, 0, time.UTC)
	bob = mail.MustParseAddress("bob@corp.example")
)

func stored(from, subject, body string, via core.DeliveryVia) Stored {
	return Stored{
		Msg: &mail.Message{
			ID:           mail.NewID("mb"),
			EnvelopeFrom: mail.MustParseAddress(from),
			Rcpt:         bob,
			Subject:      subject,
			Body:         body,
		},
		Via:       via,
		Delivered: t0,
	}
}

func TestSinkFilesDeliveries(t *testing.T) {
	s := NewStore()
	sink := s.Sink()
	d := core.Delivery{User: bob, DeliveredAt: t0, Via: core.ViaWhitelist}
	m := &mail.Message{ID: "m-1", EnvelopeFrom: mail.MustParseAddress("a@x.example"), Rcpt: bob, Subject: "hi"}
	sink(d, m)
	if s.Len(bob) != 1 || s.Total() != 1 {
		t.Fatalf("len=%d total=%d", s.Len(bob), s.Total())
	}
	in := s.Inbox(bob)
	if in[0].Msg.ID != "m-1" || in[0].Via != core.ViaWhitelist {
		t.Fatalf("inbox = %+v", in)
	}
	if got := s.Users(); len(got) != 1 || got[0] != bob.Key() {
		t.Fatalf("Users = %v", got)
	}
}

func TestInboxIsolatedPerUser(t *testing.T) {
	s := NewStore()
	carol := mail.MustParseAddress("carol@corp.example")
	s.Sink()(core.Delivery{User: bob, DeliveredAt: t0}, &mail.Message{ID: "m-1", Rcpt: bob})
	if s.Len(carol) != 0 {
		t.Fatal("delivery leaked across users")
	}
}

func TestWriteMboxFormat(t *testing.T) {
	s := NewStore()
	sink := s.Sink()
	st := stored("alice@example.com", "lunch plans", "Hi Bob,\r\nLunch at noon?\r\n", core.ViaChallenge)
	sink(core.Delivery{User: bob, DeliveredAt: t0, Via: core.ViaChallenge}, st.Msg)

	var sb strings.Builder
	if err := s.WriteMbox(&sb, bob); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"From alice@example.com ",
		"Subject: lunch plans",
		"X-CR-Delivered-Via: challenge",
		"Message-ID: <",
		"Lunch at noon?",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("mbox missing %q:\n%s", want, out)
		}
	}
	if n, err := ParseMboxCount(strings.NewReader(out)); err != nil || n != 1 {
		t.Fatalf("ParseMboxCount = %d, %v", n, err)
	}
}

func TestMboxrdQuoting(t *testing.T) {
	s := NewStore()
	body := "From the desk of Bob\n>From quoted already\nnormal line"
	st := stored("a@x.example", "quoting", body, core.ViaWhitelist)
	s.Sink()(core.Delivery{User: bob, DeliveredAt: t0}, st.Msg)

	var sb strings.Builder
	if err := s.WriteMbox(&sb, bob); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "\n>From the desk of Bob\n") {
		t.Fatalf("body From-line not quoted:\n%s", out)
	}
	if !strings.Contains(out, "\n>>From quoted already\n") {
		t.Fatalf("nested quoting wrong:\n%s", out)
	}
	// The quoted lines must not count as separators.
	if n, _ := ParseMboxCount(strings.NewReader(out)); n != 1 {
		t.Fatalf("quoted lines counted as separators: %d", n)
	}
}

func TestNullSenderBecomesMailerDaemon(t *testing.T) {
	s := NewStore()
	m := &mail.Message{ID: "m-dsn", EnvelopeFrom: mail.Null, Rcpt: bob, Subject: "bounce"}
	s.Sink()(core.Delivery{User: bob, DeliveredAt: t0}, m)
	var sb strings.Builder
	if err := s.WriteMbox(&sb, bob); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "From MAILER-DAEMON ") {
		t.Fatalf("DSN separator wrong:\n%s", sb.String())
	}
}

// TestEngineIntegration wires the store to a live engine: delivered mail
// (instant and challenge-solved) lands in the mailbox.
func TestEngineIntegration(t *testing.T) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	eng := core.New(core.Config{
		Name:             "mb",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, filters.NewChain(), whitelist.NewStore(clk), func(core.OutboundChallenge) {})
	eng.AddUser(bob)
	store := NewStore()
	eng.SetInboxSink(store.Sink())

	alice := mail.MustParseAddress("alice@example.com")
	eng.AddManualWhitelist(bob, alice)
	eng.Receive(&mail.Message{
		ID: "m-white", EnvelopeFrom: alice, Rcpt: bob,
		Subject: "instant", Body: "hello", Size: 100, Received: clk.Now(),
	})
	eng.Receive(&mail.Message{
		ID: "m-gray", EnvelopeFrom: mail.MustParseAddress("stranger@example.com"), Rcpt: bob,
		Subject: "challenged", Body: "hi", Size: 100, Received: clk.Now(),
	})
	if store.Len(bob) != 1 {
		t.Fatalf("inbox before solve = %d, want 1", store.Len(bob))
	}
	// Solve the challenge: the gray message arrives too.
	svc := eng.Captcha()
	ch := svc.ByMessage("m-gray")
	ans, _ := svc.Answer(ch.Token)
	if err := svc.Solve(ch.Token, ans); err != nil {
		t.Fatal(err)
	}
	if store.Len(bob) != 2 {
		t.Fatalf("inbox after solve = %d, want 2", store.Len(bob))
	}
	in := store.Inbox(bob)
	if in[0].Via != core.ViaWhitelist || in[1].Via != core.ViaChallenge {
		t.Fatalf("delivery paths = %v, %v", in[0].Via, in[1].Via)
	}
}
