package maillog

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// legacyFormat is the historical fmt/strings.Builder rendering the
// append-based encoder replaced, kept verbatim as the wire-format
// reference: AppendFormat must produce these bytes for every event, so
// logs written by either version parse identically.
func legacyFormat(e Event) string {
	var b strings.Builder
	b.WriteString(e.Time.UTC().Format(timeLayout))
	b.WriteByte(' ')
	b.WriteString(e.Company)
	b.WriteByte(' ')
	b.WriteString(string(e.Kind))
	if e.MsgID != "" {
		b.WriteString(" msg=")
		b.WriteString(e.MsgID)
	}
	fields := e.FieldMap()
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(fields[k])
	}
	return b.String()
}

// allKinds lists every event kind the engine emits.
var allKinds = []Kind{
	KindMTAAccept, KindMTADrop, KindDispatch, KindFilterDrop,
	KindChallenge, KindDeliver, KindWebVisit, KindWebSolve,
	KindDegraded, KindReputation,
}

// kindFields maps each kind to representative field sets (including the
// exact field combinations the engine emits for it).
var kindFields = map[Kind][][]string{
	KindMTAAccept:  {{"from", "a@b.example", "size", "1234"}, {}},
	KindMTADrop:    {{"reason", "unknown-recipient", "size", "900"}, {"reason", "malformed"}},
	KindDispatch:   {{"spool", "gray"}, {"spool", "white"}, {"spool", "black"}},
	KindFilterDrop: {{"filter", "rbl"}, {"filter", "antivirus"}},
	KindChallenge:  {{"to", "sender@remote.example"}},
	KindDeliver:    {{"via", "whitelist"}, {"via", "challenge-solved"}, {"via", "digest"}},
	KindWebVisit:   {{}},
	KindWebSolve:   {{}},
	KindDegraded:   {{"component", "rbl", "mode", "fail-open", "action", "accept"}},
	KindReputation: {{"action", "fast-path", "band", "trusted", "score", "0.812", "keys", "a;d;i"}},
}

// TestAppendFormatMatchesLegacy checks AppendFormat against the legacy
// renderer for every kind and field set, built both ways (MakeEvent
// inline pairs and a plain Fields map).
func TestAppendFormatMatchesLegacy(t *testing.T) {
	at := time.Date(2010, 7, 3, 14, 5, 9, 0, time.UTC)
	for _, kind := range allKinds {
		for _, kvs := range kindFields[kind] {
			inline := MakeEvent(at, "scn-03", kind, "scn-03-000042", kvs...)
			fields := make(map[string]string, len(kvs)/2)
			for i := 0; i+1 < len(kvs); i += 2 {
				fields[kvs[i]] = kvs[i+1]
			}
			mapped := Event{Time: at, Company: "scn-03", Kind: kind,
				MsgID: "scn-03-000042", Fields: fields}
			want := legacyFormat(mapped)
			for _, e := range []Event{inline, mapped} {
				if got := e.Format(); got != want {
					t.Errorf("%s: Format() = %q, want %q", kind, got, want)
				}
				if got := string(e.AppendFormat(nil)); got != want {
					t.Errorf("%s: AppendFormat = %q, want %q", kind, got, want)
				}
			}
		}
	}
}

// TestAppendFormatRoundTrip fuzzes events — random kinds, field counts
// past the inline capacity, non-UTC times, empty msg IDs — and checks
// (a) byte equality with the legacy renderer and (b) that ParseLine
// reconstructs the event exactly.
func TestAppendFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tok := func() string {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789.-;@"
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	zones := []*time.Location{time.UTC, time.FixedZone("plus5", 5*3600), time.FixedZone("minus7", -7*3600)}
	for i := 0; i < 2000; i++ {
		at := time.Date(2010, 7, 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, zones[rng.Intn(len(zones))])
		kind := allKinds[rng.Intn(len(allKinds))]
		msgID := ""
		if rng.Intn(4) > 0 {
			msgID = "m-" + strconv.Itoa(rng.Intn(1e6))
		}
		// 0..7 distinct fields: exercises inline-only, boundary, and
		// overflow-into-map storage.
		nf := rng.Intn(8)
		kvs := make([]string, 0, nf*2)
		seen := map[string]bool{"msg": true}
		for len(kvs)/2 < nf {
			k := tok()
			if seen[k] {
				continue
			}
			seen[k] = true
			kvs = append(kvs, k, tok())
		}
		e := MakeEvent(at, "co-"+strconv.Itoa(rng.Intn(40)), kind, msgID, kvs...)

		want := legacyFormat(e)
		got := string(e.AppendFormat(nil))
		if got != want {
			t.Fatalf("case %d: AppendFormat = %q, want legacy %q", i, got, want)
		}

		parsed, err := ParseLine(got)
		if err != nil {
			t.Fatalf("case %d: ParseLine(%q): %v", i, got, err)
		}
		if !parsed.Time.Equal(at.Truncate(time.Second)) {
			t.Errorf("case %d: time %v, want %v", i, parsed.Time, at.UTC())
		}
		if parsed.Company != e.Company || parsed.Kind != e.Kind || parsed.MsgID != e.MsgID {
			t.Errorf("case %d: header round-trip %v, want %v", i, parsed, e)
		}
		pm, em := parsed.FieldMap(), e.FieldMap()
		if len(pm) != len(em) {
			t.Fatalf("case %d: %d fields round-tripped, want %d", i, len(pm), len(em))
		}
		for k, v := range em {
			if pm[k] != v {
				t.Errorf("case %d: field %q = %q, want %q", i, k, pm[k], v)
			}
		}
	}
}

// BenchmarkAppendFormat measures the emit-side encode cost.
func BenchmarkAppendFormat(b *testing.B) {
	e := MakeEvent(time.Date(2010, 7, 3, 14, 0, 0, 0, time.UTC),
		"scn-03", KindMTADrop, "scn-03-004242",
		"reason", "unknown-recipient", "size", "4200")
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.AppendFormat(buf[:0])
	}
}
