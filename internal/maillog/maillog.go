// Package maillog implements the measurement methodology of the paper's
// §2: the authors never had live access to the CR engines — they parsed
// the MTAs' and challenge engines' daily logs plus the web server's
// access logs, loaded the extracted events into Postgres and aggregated
// from there.
//
// This package provides the same two halves: an Emitter that renders the
// engine's decision points as structured log lines (one event per line,
// syslog-flavoured key=value), and a Parser/Aggregator that reconstruct
// the paper's statistics *from the text logs alone*. The experiments
// package cross-validates the log-derived aggregates against the
// in-process counters, which is exactly the consistency check the
// original methodology depends on.
package maillog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the event types the log carries.
type Kind string

// Event kinds, mirroring the log sources of §2: MTA-IN decisions,
// dispatcher decisions, challenge engine actions, and the challenge web
// server's access log.
const (
	// KindMTAAccept: the MTA-IN accepted a message.
	KindMTAAccept Kind = "mta-accept"
	// KindMTADrop: the MTA-IN dropped a message (reason attached).
	KindMTADrop Kind = "mta-drop"
	// KindDispatch: the dispatcher routed a message (spool attached).
	KindDispatch Kind = "dispatch"
	// KindFilterDrop: an auxiliary filter dropped a gray message.
	KindFilterDrop Kind = "filter-drop"
	// KindChallenge: a challenge email was sent.
	KindChallenge Kind = "challenge"
	// KindDeliver: a message reached a user's inbox (via attached).
	KindDeliver Kind = "deliver"
	// KindWebVisit: the challenge URL was opened (web access log).
	KindWebVisit Kind = "web-visit"
	// KindWebSolve: the CAPTCHA was solved (web access log).
	KindWebSolve Kind = "web-solve"
	// KindDegraded: a dependency was unavailable and a component fell
	// back to its degradation policy (fields: component, mode, action).
	KindDegraded Kind = "degraded"
	// KindReputation: the sender-reputation store decided a gray
	// message's path (fields: action, band, score, keys) — action
	// "fast-path" when a trusted sender skipped the probe filters,
	// "suspect" when the reputation stage dropped the message. Every
	// bypass is logged; reporting tooling can always explain why a
	// message never reached the probe chain.
	KindReputation Kind = "reputation"
	// KindOverload: the admission controller shed a message (fields:
	// reason, queue). Shed mail is tempfailed (SMTP 421/451), never
	// dropped, so these events account for time-shifted — not lost —
	// deliveries.
	KindOverload Kind = "overload"
	// KindBounce: an inbound DSN reported a challenge undeliverable
	// (fields: class, status, domain — the bounce classification, the
	// enhanced status code and the destination domain the challenge
	// could not reach). The §5.1 challenge-fate statistics aggregate
	// these.
	KindBounce Kind = "bounce"
	// KindLoopSuppressed: a gray message carried an Auto-Submitted
	// header (RFC 3834) — another CR system's challenge or some other
	// autoresponder — and was quarantined without a counter-challenge
	// to break the CR-to-CR challenge loop (fields: from, auto).
	KindLoopSuppressed Kind = "loop-suppressed"
)

// maxInlinePairs is the number of key/value pairs an Event carries
// without allocating. Every engine emit site uses at most four.
const maxInlinePairs = 4

// Event is one structured log record.
//
// Field storage has two forms. Events built by struct-literal
// construction carry a Fields map. Events built with MakeEvent or
// AddField — the emit and parse hot paths — carry up to maxInlinePairs
// key/value pairs inline and allocate nothing; additional pairs overflow
// into the map. Readers should use Field/FieldMap, which consult both.
type Event struct {
	Time    time.Time
	Company string
	Kind    Kind
	MsgID   string
	// Fields carries kind-specific attributes (reason, spool, via,
	// filter, from, size...). Values must not contain spaces or '='.
	// May be nil for events built by MakeEvent; use Field or FieldMap
	// instead of indexing it directly.
	Fields map[string]string

	npairs int
	pairs  [maxInlinePairs][2]string
}

// MakeEvent builds an Event from alternating key/value pairs without
// allocating (for up to maxInlinePairs pairs — beyond that the rest
// spill into a Fields map). A trailing odd key is ignored.
func MakeEvent(t time.Time, company string, kind Kind, msgID string, kvs ...string) Event {
	e := Event{Time: t, Company: company, Kind: kind, MsgID: msgID}
	for i := 0; i+1 < len(kvs); i += 2 {
		if e.npairs < maxInlinePairs {
			e.pairs[e.npairs] = [2]string{kvs[i], kvs[i+1]}
			e.npairs++
			continue
		}
		if e.Fields == nil {
			e.Fields = make(map[string]string)
		}
		e.Fields[kvs[i]] = kvs[i+1]
	}
	return e
}

// AddField sets one field, preferring the inline pairs and spilling
// into the Fields map only past their capacity. A repeated key
// overwrites the earlier value (map semantics), so parse order never
// duplicates a field. It is the mutating counterpart of MakeEvent for
// decoders that fill a reused Event in place.
func (e *Event) AddField(k, v string) {
	for i := 0; i < e.npairs; i++ {
		if e.pairs[i][0] == k {
			e.pairs[i][1] = v
			return
		}
	}
	if e.Fields != nil {
		if _, ok := e.Fields[k]; ok {
			e.Fields[k] = v
			return
		}
	}
	if e.npairs < maxInlinePairs {
		e.pairs[e.npairs] = [2]string{k, v}
		e.npairs++
		return
	}
	if e.Fields == nil {
		e.Fields = make(map[string]string)
	}
	e.Fields[k] = v
}

// Field returns the value of the named field from either storage form,
// or "" if absent.
func (e Event) Field(k string) string {
	for i := 0; i < e.npairs; i++ {
		if e.pairs[i][0] == k {
			return e.pairs[i][1]
		}
	}
	return e.Fields[k]
}

// NumFields returns the number of fields the event carries.
func (e Event) NumFields() int { return e.npairs + len(e.Fields) }

// FieldMap materialises all fields as a fresh map (allocates; for tests
// and debugging, not the hot path).
func (e Event) FieldMap() map[string]string {
	m := make(map[string]string, e.NumFields())
	for k, v := range e.Fields {
		m[k] = v
	}
	for i := 0; i < e.npairs; i++ {
		m[e.pairs[i][0]] = e.pairs[i][1]
	}
	return m
}

// timeLayout is RFC3339 without a zone (logs are UTC by convention).
const timeLayout = "2006-01-02T15:04:05Z"

// Format renders the event as a single log line:
//
//	2010-07-01T10:00:00Z company-03 mta-drop msg=abc reason=unknown-recipient
func (e Event) Format() string {
	return string(e.AppendFormat(nil))
}

// AppendFormat appends the formatted log line (no trailing newline) to
// dst and returns the extended slice. It is the append-based encoder
// behind Format, Writer and Emitter: with a pre-sized dst it performs no
// allocations, and its output is byte-for-byte identical to the
// historical fmt/strings.Builder rendering — field keys sorted
// ascending, single spaces, "msg=" first when MsgID is set.
func (e Event) AppendFormat(dst []byte) []byte {
	dst = appendTime(dst, e.Time.UTC())
	dst = append(dst, ' ')
	dst = append(dst, e.Company...)
	dst = append(dst, ' ')
	dst = append(dst, e.Kind...)
	if e.MsgID != "" {
		dst = append(dst, " msg="...)
		dst = append(dst, e.MsgID...)
	}
	// Sort the keys. The inline pairs alone need no allocation; a
	// populated overflow map falls back to a small sorted key slice.
	if len(e.Fields) == 0 {
		// Insertion-sort the (at most maxInlinePairs) inline pairs.
		var keys [maxInlinePairs][2]string
		n := e.npairs
		copy(keys[:], e.pairs[:n])
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keys[j][0] < keys[j-1][0]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for i := 0; i < n; i++ {
			dst = append(dst, ' ')
			dst = append(dst, keys[i][0]...)
			dst = append(dst, '=')
			dst = append(dst, keys[i][1]...)
		}
		return dst
	}
	keys := make([]string, 0, e.NumFields())
	for k := range e.Fields {
		keys = append(keys, k)
	}
	for i := 0; i < e.npairs; i++ {
		keys = append(keys, e.pairs[i][0])
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = append(dst, ' ')
		dst = append(dst, k...)
		dst = append(dst, '=')
		dst = append(dst, e.Field(k)...)
	}
	return dst
}

// appendTime renders t in timeLayout ("2006-01-02T15:04:05Z") without
// the allocation time.Format makes.
func appendTime(dst []byte, t time.Time) []byte {
	year, month, day := t.Date()
	hour, minute, sec := t.Clock()
	dst = append4(dst, year)
	dst = append(dst, '-')
	dst = append2(dst, int(month))
	dst = append(dst, '-')
	dst = append2(dst, day)
	dst = append(dst, 'T')
	dst = append2(dst, hour)
	dst = append(dst, ':')
	dst = append2(dst, minute)
	dst = append(dst, ':')
	dst = append2(dst, sec)
	return append(dst, 'Z')
}

func append2(dst []byte, n int) []byte {
	return append(dst, byte('0'+n/10%10), byte('0'+n%10))
}

func append4(dst []byte, n int) []byte {
	return append(dst, byte('0'+n/1000%10), byte('0'+n/100%10), byte('0'+n/10%10), byte('0'+n%10))
}

// ParseLine parses one log line back into an Event. Fields land in the
// inline pairs first (spilling into the Fields map only past their
// capacity), mirroring MakeEvent, so a parse→AppendFormat round trip is
// as alloc-light as the emit path; use Field or FieldMap — not the
// Fields map directly — to read them.
func ParseLine(line string) (Event, error) {
	parts := strings.Fields(line)
	if len(parts) < 3 {
		return Event{}, fmt.Errorf("maillog: short line %q", line)
	}
	t, err := time.Parse(timeLayout, parts[0])
	if err != nil {
		return Event{}, fmt.Errorf("maillog: bad timestamp in %q: %v", line, err)
	}
	e := Event{
		Time:    t,
		Company: parts[1],
		Kind:    Kind(parts[2]),
	}
	for _, kv := range parts[3:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Event{}, fmt.Errorf("maillog: bad field %q in %q", kv, line)
		}
		if k == "msg" {
			e.MsgID = v
			continue
		}
		e.AddField(k, v)
	}
	return e, nil
}

// Writer serialises events to an io.Writer, one line each. It is not
// safe for concurrent use; wrap with a mutex or use one per goroutine.
type Writer struct {
	w   *bufio.Writer
	buf []byte // reused line-encoding buffer; amortises to zero allocs
	err error
	n   int64
}

// NewWriter returns a log writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// Write appends one event. Errors are sticky and reported by Flush.
func (lw *Writer) Write(e Event) {
	if lw.err != nil {
		return
	}
	lw.buf = e.AppendFormat(lw.buf[:0])
	lw.buf = append(lw.buf, '\n')
	if _, err := lw.w.Write(lw.buf); err != nil {
		lw.err = err
		return
	}
	lw.n++
}

// Count returns the number of events written.
func (lw *Writer) Count() int64 { return lw.n }

// Flush drains the buffer and returns the first error encountered.
func (lw *Writer) Flush() error {
	if lw.err != nil {
		return lw.err
	}
	return lw.w.Flush()
}

// Aggregate is the statistic set the paper's Python scripts computed
// from the parsed logs, sufficient to derive Figure 1/2/3, the
// reflection ratio and the solve rates.
type Aggregate struct {
	// Per company; "" keys the fleet-wide total.
	ByCompany map[string]*CompanyAggregate
	// Lines and parse failures, for data-quality reporting.
	Lines    int64
	BadLines int64
}

// CompanyAggregate accumulates one installation's counters.
type CompanyAggregate struct {
	Incoming    int64
	MTADrops    map[string]int64 // by reason
	Spools      map[string]int64 // white / black / gray
	FilterDrops map[string]int64 // by filter name
	Challenges  int64
	Deliveries  map[string]int64 // by via
	WebVisits   int64
	WebSolves   int64
	InBytes     int64
	Degraded    map[string]int64 // degraded-mode fallbacks, by component
	Reputation  map[string]int64 // reputation decisions, by action
	Overload    map[string]int64 // admission sheds, by reason
	// Bounces counts challenge bounces by DSN class (no-user,
	// no-domain, blocklisted, expired, other); LoopSuppressed counts
	// gray messages quarantined without a challenge because they were
	// themselves auto-submitted.
	Bounces        map[string]int64
	LoopSuppressed int64
}

func newCompanyAggregate() *CompanyAggregate {
	return &CompanyAggregate{
		MTADrops:    make(map[string]int64),
		Spools:      make(map[string]int64),
		FilterDrops: make(map[string]int64),
		Deliveries:  make(map[string]int64),
		Degraded:    make(map[string]int64),
		Reputation:  make(map[string]int64),
		Overload:    make(map[string]int64),
		Bounces:     make(map[string]int64),
	}
}

// ReflectionRatio returns challenges / messages reaching the dispatcher.
func (c *CompanyAggregate) ReflectionRatio() float64 {
	var reaching int64
	for _, v := range c.Spools {
		reaching += v
	}
	if reaching == 0 {
		return 0
	}
	return float64(c.Challenges) / float64(reaching)
}

// SolveRate returns web solves / challenges.
func (c *CompanyAggregate) SolveRate() float64 {
	if c.Challenges == 0 {
		return 0
	}
	return float64(c.WebSolves) / float64(c.Challenges)
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{ByCompany: make(map[string]*CompanyAggregate)}
}

// Add incorporates one event.
func (a *Aggregate) Add(e Event) {
	for _, key := range []string{e.Company, ""} {
		c := a.ByCompany[key]
		if c == nil {
			c = newCompanyAggregate()
			a.ByCompany[key] = c
		}
		switch e.Kind {
		case KindMTAAccept:
			c.Incoming++
			if s, err := strconv.ParseInt(e.Field("size"), 10, 64); err == nil {
				c.InBytes += s
			}
		case KindMTADrop:
			c.Incoming++
			c.MTADrops[e.Field("reason")]++
			if s, err := strconv.ParseInt(e.Field("size"), 10, 64); err == nil {
				c.InBytes += s
			}
		case KindDispatch:
			c.Spools[e.Field("spool")]++
		case KindFilterDrop:
			c.FilterDrops[e.Field("filter")]++
		case KindChallenge:
			c.Challenges++
		case KindDeliver:
			c.Deliveries[e.Field("via")]++
		case KindWebVisit:
			c.WebVisits++
		case KindWebSolve:
			c.WebSolves++
		case KindDegraded:
			c.Degraded[e.Field("component")]++
		case KindReputation:
			c.Reputation[e.Field("action")]++
		case KindOverload:
			c.Overload[e.Field("reason")]++
		case KindBounce:
			c.Bounces[e.Field("class")]++
		case KindLoopSuppressed:
			c.LoopSuppressed++
		}
	}
}

// Merge folds another aggregate into a, summing every counter. It is
// the reduction step of the parallel log scanner: each worker folds its
// byte range into a shard-local aggregate and the shards are merged
// afterwards. Addition is commutative and associative, so the merged
// result is identical for any worker count or merge order. b is left
// untouched.
func (a *Aggregate) Merge(b *Aggregate) {
	if b == nil {
		return
	}
	a.Lines += b.Lines
	a.BadLines += b.BadLines
	for name, cb := range b.ByCompany {
		ca := a.ByCompany[name]
		if ca == nil {
			ca = newCompanyAggregate()
			a.ByCompany[name] = ca
		}
		ca.Merge(cb)
	}
}

// Merge folds another company's counters into c, leaving o untouched.
func (c *CompanyAggregate) Merge(o *CompanyAggregate) {
	if o == nil {
		return
	}
	c.Incoming += o.Incoming
	c.Challenges += o.Challenges
	c.WebVisits += o.WebVisits
	c.WebSolves += o.WebSolves
	c.InBytes += o.InBytes
	c.LoopSuppressed += o.LoopSuppressed
	mergeCounts(c.MTADrops, o.MTADrops)
	mergeCounts(c.Spools, o.Spools)
	mergeCounts(c.FilterDrops, o.FilterDrops)
	mergeCounts(c.Deliveries, o.Deliveries)
	mergeCounts(c.Degraded, o.Degraded)
	mergeCounts(c.Reputation, o.Reputation)
	mergeCounts(c.Overload, o.Overload)
	mergeCounts(c.Bounces, o.Bounces)
}

func mergeCounts(dst, src map[string]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// Total returns the fleet-wide aggregate.
func (a *Aggregate) Total() *CompanyAggregate {
	if c := a.ByCompany[""]; c != nil {
		return c
	}
	return newCompanyAggregate()
}

// Companies returns the company names present, sorted.
func (a *Aggregate) Companies() []string {
	out := make([]string, 0, len(a.ByCompany))
	for k := range a.ByCompany {
		if k != "" {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// MaxLineLen is the longest log line the parsers accept, matching the
// historical 1 MiB bufio.Scanner cap. Longer lines are counted as bad
// and skipped — they no longer abort the scan.
const MaxLineLen = 1024 * 1024

// ParseAll consumes a log stream, aggregating every parsable line. Bad
// lines are counted, not fatal — exactly how a daily log crawler must
// behave. That includes over-long lines: anything past MaxLineLen is
// discarded up to the next newline and counted as one bad line, where
// the old bufio.Scanner loop aborted with ErrTooLong and silently
// returned a truncated aggregate. A real read error is returned wrapped
// with the line number reached, alongside the partial aggregate.
func ParseAll(r io.Reader) (*Aggregate, error) {
	agg := NewAggregate()
	br := bufio.NewReaderSize(r, MaxLineLen)
	for {
		chunk, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// Oversized line: count it once, discard to the newline.
			agg.Lines++
			agg.BadLines++
			for err == bufio.ErrBufferFull {
				_, err = br.ReadSlice('\n')
			}
			if err == io.EOF {
				return agg, nil
			}
			if err != nil {
				return agg, fmt.Errorf("maillog: read error after line %d: %w", agg.Lines, err)
			}
			continue
		}
		if line := strings.TrimSpace(string(chunk)); line != "" {
			agg.Lines++
			if e, perr := ParseLine(line); perr != nil {
				agg.BadLines++
			} else {
				agg.Add(e)
			}
		}
		if err == io.EOF {
			return agg, nil
		}
		if err != nil {
			return agg, fmt.Errorf("maillog: read error after line %d: %w", agg.Lines, err)
		}
	}
}
