// Package maillog implements the measurement methodology of the paper's
// §2: the authors never had live access to the CR engines — they parsed
// the MTAs' and challenge engines' daily logs plus the web server's
// access logs, loaded the extracted events into Postgres and aggregated
// from there.
//
// This package provides the same two halves: an Emitter that renders the
// engine's decision points as structured log lines (one event per line,
// syslog-flavoured key=value), and a Parser/Aggregator that reconstruct
// the paper's statistics *from the text logs alone*. The experiments
// package cross-validates the log-derived aggregates against the
// in-process counters, which is exactly the consistency check the
// original methodology depends on.
package maillog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the event types the log carries.
type Kind string

// Event kinds, mirroring the log sources of §2: MTA-IN decisions,
// dispatcher decisions, challenge engine actions, and the challenge web
// server's access log.
const (
	// KindMTAAccept: the MTA-IN accepted a message.
	KindMTAAccept Kind = "mta-accept"
	// KindMTADrop: the MTA-IN dropped a message (reason attached).
	KindMTADrop Kind = "mta-drop"
	// KindDispatch: the dispatcher routed a message (spool attached).
	KindDispatch Kind = "dispatch"
	// KindFilterDrop: an auxiliary filter dropped a gray message.
	KindFilterDrop Kind = "filter-drop"
	// KindChallenge: a challenge email was sent.
	KindChallenge Kind = "challenge"
	// KindDeliver: a message reached a user's inbox (via attached).
	KindDeliver Kind = "deliver"
	// KindWebVisit: the challenge URL was opened (web access log).
	KindWebVisit Kind = "web-visit"
	// KindWebSolve: the CAPTCHA was solved (web access log).
	KindWebSolve Kind = "web-solve"
	// KindDegraded: a dependency was unavailable and a component fell
	// back to its degradation policy (fields: component, mode, action).
	KindDegraded Kind = "degraded"
	// KindReputation: the sender-reputation store decided a gray
	// message's path (fields: action, band, score, keys) — action
	// "fast-path" when a trusted sender skipped the probe filters,
	// "suspect" when the reputation stage dropped the message. Every
	// bypass is logged; reporting tooling can always explain why a
	// message never reached the probe chain.
	KindReputation Kind = "reputation"
)

// Event is one structured log record.
type Event struct {
	Time    time.Time
	Company string
	Kind    Kind
	MsgID   string
	// Fields carries kind-specific attributes (reason, spool, via,
	// filter, from, size...). Values must not contain spaces or '='.
	Fields map[string]string
}

// timeLayout is RFC3339 without a zone (logs are UTC by convention).
const timeLayout = "2006-01-02T15:04:05Z"

// Format renders the event as a single log line:
//
//	2010-07-01T10:00:00Z company-03 mta-drop msg=abc reason=unknown-recipient
func (e Event) Format() string {
	var b strings.Builder
	b.WriteString(e.Time.UTC().Format(timeLayout))
	b.WriteByte(' ')
	b.WriteString(e.Company)
	b.WriteByte(' ')
	b.WriteString(string(e.Kind))
	if e.MsgID != "" {
		b.WriteString(" msg=")
		b.WriteString(e.MsgID)
	}
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(e.Fields[k])
	}
	return b.String()
}

// ParseLine parses one log line back into an Event.
func ParseLine(line string) (Event, error) {
	parts := strings.Fields(line)
	if len(parts) < 3 {
		return Event{}, fmt.Errorf("maillog: short line %q", line)
	}
	t, err := time.Parse(timeLayout, parts[0])
	if err != nil {
		return Event{}, fmt.Errorf("maillog: bad timestamp in %q: %v", line, err)
	}
	e := Event{
		Time:    t,
		Company: parts[1],
		Kind:    Kind(parts[2]),
		Fields:  make(map[string]string),
	}
	for _, kv := range parts[3:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Event{}, fmt.Errorf("maillog: bad field %q in %q", kv, line)
		}
		if k == "msg" {
			e.MsgID = v
			continue
		}
		e.Fields[k] = v
	}
	return e, nil
}

// Writer serialises events to an io.Writer, one line each. It is not
// safe for concurrent use; wrap with a mutex or use one per goroutine.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int64
}

// NewWriter returns a log writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one event. Errors are sticky and reported by Flush.
func (lw *Writer) Write(e Event) {
	if lw.err != nil {
		return
	}
	if _, err := lw.w.WriteString(e.Format()); err != nil {
		lw.err = err
		return
	}
	if err := lw.w.WriteByte('\n'); err != nil {
		lw.err = err
		return
	}
	lw.n++
}

// Count returns the number of events written.
func (lw *Writer) Count() int64 { return lw.n }

// Flush drains the buffer and returns the first error encountered.
func (lw *Writer) Flush() error {
	if lw.err != nil {
		return lw.err
	}
	return lw.w.Flush()
}

// Aggregate is the statistic set the paper's Python scripts computed
// from the parsed logs, sufficient to derive Figure 1/2/3, the
// reflection ratio and the solve rates.
type Aggregate struct {
	// Per company; "" keys the fleet-wide total.
	ByCompany map[string]*CompanyAggregate
	// Lines and parse failures, for data-quality reporting.
	Lines    int64
	BadLines int64
}

// CompanyAggregate accumulates one installation's counters.
type CompanyAggregate struct {
	Incoming    int64
	MTADrops    map[string]int64 // by reason
	Spools      map[string]int64 // white / black / gray
	FilterDrops map[string]int64 // by filter name
	Challenges  int64
	Deliveries  map[string]int64 // by via
	WebVisits   int64
	WebSolves   int64
	InBytes     int64
	Degraded    map[string]int64 // degraded-mode fallbacks, by component
	Reputation  map[string]int64 // reputation decisions, by action
}

func newCompanyAggregate() *CompanyAggregate {
	return &CompanyAggregate{
		MTADrops:    make(map[string]int64),
		Spools:      make(map[string]int64),
		FilterDrops: make(map[string]int64),
		Deliveries:  make(map[string]int64),
		Degraded:    make(map[string]int64),
		Reputation:  make(map[string]int64),
	}
}

// ReflectionRatio returns challenges / messages reaching the dispatcher.
func (c *CompanyAggregate) ReflectionRatio() float64 {
	var reaching int64
	for _, v := range c.Spools {
		reaching += v
	}
	if reaching == 0 {
		return 0
	}
	return float64(c.Challenges) / float64(reaching)
}

// SolveRate returns web solves / challenges.
func (c *CompanyAggregate) SolveRate() float64 {
	if c.Challenges == 0 {
		return 0
	}
	return float64(c.WebSolves) / float64(c.Challenges)
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{ByCompany: make(map[string]*CompanyAggregate)}
}

// Add incorporates one event.
func (a *Aggregate) Add(e Event) {
	for _, key := range []string{e.Company, ""} {
		c := a.ByCompany[key]
		if c == nil {
			c = newCompanyAggregate()
			a.ByCompany[key] = c
		}
		switch e.Kind {
		case KindMTAAccept:
			c.Incoming++
			if s, err := strconv.ParseInt(e.Fields["size"], 10, 64); err == nil {
				c.InBytes += s
			}
		case KindMTADrop:
			c.Incoming++
			c.MTADrops[e.Fields["reason"]]++
			if s, err := strconv.ParseInt(e.Fields["size"], 10, 64); err == nil {
				c.InBytes += s
			}
		case KindDispatch:
			c.Spools[e.Fields["spool"]]++
		case KindFilterDrop:
			c.FilterDrops[e.Fields["filter"]]++
		case KindChallenge:
			c.Challenges++
		case KindDeliver:
			c.Deliveries[e.Fields["via"]]++
		case KindWebVisit:
			c.WebVisits++
		case KindWebSolve:
			c.WebSolves++
		case KindDegraded:
			c.Degraded[e.Fields["component"]]++
		case KindReputation:
			c.Reputation[e.Fields["action"]]++
		}
	}
}

// Total returns the fleet-wide aggregate.
func (a *Aggregate) Total() *CompanyAggregate {
	if c := a.ByCompany[""]; c != nil {
		return c
	}
	return newCompanyAggregate()
}

// Companies returns the company names present, sorted.
func (a *Aggregate) Companies() []string {
	out := make([]string, 0, len(a.ByCompany))
	for k := range a.ByCompany {
		if k != "" {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ParseAll consumes a log stream, aggregating every parsable line. Bad
// lines are counted, not fatal — exactly how a daily log crawler must
// behave.
func ParseAll(r io.Reader) (*Aggregate, error) {
	agg := NewAggregate()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		agg.Lines++
		e, err := ParseLine(line)
		if err != nil {
			agg.BadLines++
			continue
		}
		agg.Add(e)
	}
	return agg, sc.Err()
}
