package maillog_test

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/whitelist"
)

var t0 = time.Date(2010, 7, 1, 10, 0, 0, 0, time.UTC)

func TestEventFormatParseRoundTrip(t *testing.T) {
	e := maillog.Event{
		Time:    t0,
		Company: "company-03",
		Kind:    maillog.KindMTADrop,
		MsgID:   "m-123",
		Fields:  map[string]string{"reason": "unknown-recipient", "size": "4096"},
	}
	line := e.Format()
	if line != "2010-07-01T10:00:00Z company-03 mta-drop msg=m-123 reason=unknown-recipient size=4096" {
		t.Fatalf("Format = %q", line)
	}
	got, err := maillog.ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(e.Time) || got.Company != e.Company || got.Kind != e.Kind || got.MsgID != e.MsgID {
		t.Fatalf("round trip lost header: %+v", got)
	}
	// ParseLine fills the inline pairs, not the Fields map; Field and
	// FieldMap are the storage-agnostic readers.
	if got.Field("reason") != "unknown-recipient" || got.Field("size") != "4096" {
		t.Fatalf("round trip lost fields: %+v", got.FieldMap())
	}
	if got.Fields != nil {
		t.Fatalf("ParseLine allocated an overflow map for %d fields", got.NumFields())
	}
}

func TestEventFormatDeterministicFieldOrder(t *testing.T) {
	e := maillog.Event{
		Time: t0, Company: "c", Kind: maillog.KindDeliver,
		Fields: map[string]string{"zeta": "1", "alpha": "2", "mid": "3"},
	}
	l1, l2 := e.Format(), e.Format()
	if l1 != l2 {
		t.Fatal("Format not deterministic")
	}
	if !strings.Contains(l1, "alpha=2 mid=3 zeta=1") {
		t.Fatalf("fields not sorted: %q", l1)
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"too short",
		"not-a-time company kind",
		"2010-07-01T10:00:00Z c deliver brokenfield",
	} {
		if _, err := maillog.ParseLine(bad); err == nil {
			t.Errorf("ParseLine(%q) succeeded", bad)
		}
	}
}

func TestWriterAndParseAll(t *testing.T) {
	var sb strings.Builder
	w := maillog.NewWriter(&sb)
	for i, kind := range []maillog.Kind{maillog.KindMTAAccept, maillog.KindDispatch, maillog.KindChallenge} {
		w.Write(maillog.Event{
			Time: t0.Add(time.Duration(i) * time.Second), Company: "corp",
			Kind: kind, MsgID: "m-1",
			Fields: map[string]string{"spool": "gray"},
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	input := sb.String() + "garbage line here that fails parsing but has words\n\n"
	agg, err := maillog.ParseAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Lines != 4 || agg.BadLines != 1 {
		t.Fatalf("lines=%d bad=%d", agg.Lines, agg.BadLines)
	}
	tot := agg.Total()
	if tot.Incoming != 1 || tot.Spools["gray"] != 1 || tot.Challenges != 1 {
		t.Fatalf("aggregate = %+v", tot)
	}
	if got := agg.Companies(); len(got) != 1 || got[0] != "corp" {
		t.Fatalf("Companies = %v", got)
	}
}

// TestLogDerivedStatsMatchEngineCounters is the methodology check: the
// statistics reconstructed from the text log must equal the engine's own
// counters — exactly the equivalence the paper's log-based measurement
// relies on.
func TestLogDerivedStatsMatchEngineCounters(t *testing.T) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	dns.AddPTR("192.0.2.10", "mail.example.com")

	var sb strings.Builder
	w := maillog.NewWriter(&sb)

	eng := core.New(core.Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns)),
		whitelist.NewStore(clk), func(core.OutboundChallenge) {})
	eng.SetEventSink(w.Write)
	bob := mail.MustParseAddress("bob@corp.example")
	eng.AddUser(bob)
	eng.AddManualWhitelist(bob, mail.MustParseAddress("friend@example.com"))

	send := func(from, to string, ip string) {
		m := &mail.Message{
			ID:           mail.NewID("lg"),
			EnvelopeFrom: mail.MustParseAddress(from),
			Rcpt:         mail.MustParseAddress(to),
			Subject:      "log pipeline test message subject words",
			Size:         3000,
			ClientIP:     ip,
			Received:     clk.Now(),
		}
		eng.Receive(m)
		clk.Advance(time.Minute)
	}

	send("friend@example.com", "bob@corp.example", "192.0.2.10")   // white
	send("stranger@example.com", "bob@corp.example", "192.0.2.10") // gray -> challenge
	send("another@example.com", "bob@corp.example", "203.0.113.9") // gray -> rDNS drop
	send("x@example.com", "ghost@corp.example", "192.0.2.10")      // unknown rcpt

	// Visit + solve the outstanding challenge through the service so the
	// web events flow into the log.
	pending := eng.PendingForUser(bob)
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
	ch := eng.Captcha().ByMessage(pending[0].MsgID)
	if ch == nil {
		t.Fatal("challenge missing")
	}
	if _, err := eng.Captcha().Visit(ch.Token); err != nil {
		t.Fatal(err)
	}
	ans, _ := eng.Captcha().Answer(ch.Token)
	if err := eng.Captcha().Solve(ch.Token, ans); err != nil {
		t.Fatal(err)
	}

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	agg, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	logStats := agg.Total()
	m := eng.Metrics()

	if logStats.Incoming != m.MTAIncoming {
		t.Errorf("incoming: log %d vs engine %d", logStats.Incoming, m.MTAIncoming)
	}
	if logStats.MTADrops["unknown-recipient"] != m.MTADropped[core.UnknownRecipient] {
		t.Errorf("unknown-rcpt drops: log %d vs engine %d",
			logStats.MTADrops["unknown-recipient"], m.MTADropped[core.UnknownRecipient])
	}
	if logStats.Spools["white"] != m.SpoolWhite || logStats.Spools["gray"] != m.SpoolGray {
		t.Errorf("spools: log %+v vs engine white=%d gray=%d", logStats.Spools, m.SpoolWhite, m.SpoolGray)
	}
	if logStats.FilterDrops["reverse-dns"] != m.FilterDropped["reverse-dns"] {
		t.Errorf("filter drops: log %+v vs engine %+v", logStats.FilterDrops, m.FilterDropped)
	}
	if logStats.Challenges != m.ChallengesSent {
		t.Errorf("challenges: log %d vs engine %d", logStats.Challenges, m.ChallengesSent)
	}
	if logStats.Deliveries["whitelist"] != m.Delivered[core.ViaWhitelist] ||
		logStats.Deliveries["challenge"] != m.Delivered[core.ViaChallenge] {
		t.Errorf("deliveries: log %+v vs engine %+v", logStats.Deliveries, m.Delivered)
	}
	if logStats.WebVisits != 1 || logStats.WebSolves != 1 {
		t.Errorf("web events: visits=%d solves=%d", logStats.WebVisits, logStats.WebSolves)
	}
	if logStats.InBytes != m.MTAInBytes {
		t.Errorf("bytes: log %d vs engine %d", logStats.InBytes, m.MTAInBytes)
	}
	// Derived ratio equality.
	if got, want := logStats.ReflectionRatio(), m.ReflectionRatio(); got != want {
		t.Errorf("reflection ratio: log %v vs engine %v", got, want)
	}
	if logStats.SolveRate() != 1 {
		t.Errorf("solve rate = %v, want 1", logStats.SolveRate())
	}
}

// TestParseLineInlinePairSpill: ParseLine keeps up to four fields in the
// inline pairs and spills the rest into the overflow map, and both
// storage forms read back identically.
func TestParseLineInlinePairSpill(t *testing.T) {
	line := "2010-07-01T10:00:00Z corp deliver msg=m-9 a=1 b=2 c=3 d=4 e=5 f=6"
	e, err := maillog.ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumFields() != 6 {
		t.Fatalf("NumFields = %d, want 6", e.NumFields())
	}
	if len(e.Fields) != 2 {
		t.Fatalf("overflow map holds %d fields, want 2 (inline capacity is 4)", len(e.Fields))
	}
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}, {"e", "5"}, {"f", "6"}} {
		if got := e.Field(kv[0]); got != kv[1] {
			t.Errorf("Field(%q) = %q, want %q", kv[0], got, kv[1])
		}
	}
	if got := e.Format(); got != line {
		t.Errorf("round trip = %q, want %q", got, line)
	}
}

// TestParseAllOversizedLine: a line past the 1 MiB cap used to abort the
// whole scan with bufio.ErrTooLong and a silently-truncated aggregate;
// now it counts as one bad line and the scan continues.
func TestParseAllOversizedLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("2010-07-01T10:00:00Z corp mta-accept msg=m-1 size=100\n")
	sb.WriteString(strings.Repeat("x", maillog.MaxLineLen+100))
	sb.WriteByte('\n')
	sb.WriteString("2010-07-01T10:00:01Z corp challenge msg=m-1\n")

	agg, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("oversized line aborted the scan: %v", err)
	}
	if agg.Lines != 3 || agg.BadLines != 1 {
		t.Fatalf("lines=%d bad=%d, want 3/1", agg.Lines, agg.BadLines)
	}
	tot := agg.Total()
	if tot.Incoming != 1 || tot.Challenges != 1 {
		t.Fatalf("events around the oversized line lost: %+v", tot)
	}
}

// errAfterReader returns a read error once the wrapped reader drains.
type errAfterReader struct {
	r   io.Reader
	err error
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

// TestParseAllErrorCarriesLineNumber: a real read error surfaces wrapped
// with the line number reached, alongside the partial aggregate.
func TestParseAllErrorCarriesLineNumber(t *testing.T) {
	input := "2010-07-01T10:00:00Z corp mta-accept msg=m-1\n" +
		"2010-07-01T10:00:01Z corp challenge msg=m-1\n"
	boom := errors.New("disk on fire")
	agg, err := maillog.ParseAll(&errAfterReader{r: strings.NewReader(input), err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
	if agg == nil || agg.Lines != 2 {
		t.Fatalf("partial aggregate missing: %+v", agg)
	}
}

// TestAggregateMerge: splitting a log anywhere and merging the shard
// aggregates reproduces the serial aggregate exactly — the invariant the
// parallel scanner's reduction step rests on.
func TestAggregateMerge(t *testing.T) {
	var sb strings.Builder
	w := maillog.NewWriter(&sb)
	for i := 0; i < 50; i++ {
		co := fmt.Sprintf("corp-%d", i%3)
		w.Write(maillog.MakeEvent(t0.Add(time.Duration(i)*time.Second), co, maillog.KindMTAAccept, fmt.Sprintf("m-%d", i), "size", "100"))
		w.Write(maillog.MakeEvent(t0.Add(time.Duration(i)*time.Second), co, maillog.KindDispatch, fmt.Sprintf("m-%d", i), "spool", "gray"))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(sb.String(), "\n")

	serial, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 37, len(lines)} {
		merged := maillog.NewAggregate()
		a, err := maillog.ParseAll(strings.NewReader(strings.Join(lines[:cut], "")))
		if err != nil {
			t.Fatal(err)
		}
		b, err := maillog.ParseAll(strings.NewReader(strings.Join(lines[cut:], "")))
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(a)
		merged.Merge(b)
		if !reflect.DeepEqual(merged, serial) {
			t.Fatalf("cut %d: merged shards differ from serial aggregate", cut)
		}
	}
}

// TestBounceAndLoopEventsTally covers the DSN-feedback event kinds: the
// aggregate reconstructs per-class challenge bounce counts and the
// loop-suppression total from the log alone.
func TestBounceAndLoopEventsTally(t *testing.T) {
	var sb strings.Builder
	w := maillog.NewWriter(&sb)
	emit := func(kind maillog.Kind, fields map[string]string) {
		w.Write(maillog.Event{Time: t0, Company: "corp", Kind: kind, MsgID: "m-1", Fields: fields})
	}
	emit(maillog.KindBounce, map[string]string{"class": "no-user", "status": "5.1.1", "domain": "victim.example"})
	emit(maillog.KindBounce, map[string]string{"class": "no-user", "status": "5.1.1", "domain": "other.example"})
	emit(maillog.KindBounce, map[string]string{"class": "blocklisted", "status": "5.7.1", "domain": "strict.example"})
	emit(maillog.KindLoopSuppressed, map[string]string{"from": "challenge@peer.example", "auto": "auto-replied"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	agg, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	tot := agg.Total()
	if tot.Bounces["no-user"] != 2 || tot.Bounces["blocklisted"] != 1 {
		t.Fatalf("bounces = %v", tot.Bounces)
	}
	if tot.LoopSuppressed != 1 {
		t.Fatalf("loop suppressed = %d", tot.LoopSuppressed)
	}
	// Merge preserves both tallies.
	agg2, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	tot.Merge(agg2.Total())
	if tot.Bounces["no-user"] != 4 || tot.LoopSuppressed != 2 {
		t.Fatalf("merged = %+v", tot)
	}
}
