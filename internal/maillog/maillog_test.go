package maillog_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/whitelist"
)

var t0 = time.Date(2010, 7, 1, 10, 0, 0, 0, time.UTC)

func TestEventFormatParseRoundTrip(t *testing.T) {
	e := maillog.Event{
		Time:    t0,
		Company: "company-03",
		Kind:    maillog.KindMTADrop,
		MsgID:   "m-123",
		Fields:  map[string]string{"reason": "unknown-recipient", "size": "4096"},
	}
	line := e.Format()
	if line != "2010-07-01T10:00:00Z company-03 mta-drop msg=m-123 reason=unknown-recipient size=4096" {
		t.Fatalf("Format = %q", line)
	}
	got, err := maillog.ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(e.Time) || got.Company != e.Company || got.Kind != e.Kind || got.MsgID != e.MsgID {
		t.Fatalf("round trip lost header: %+v", got)
	}
	if got.Fields["reason"] != "unknown-recipient" || got.Fields["size"] != "4096" {
		t.Fatalf("round trip lost fields: %+v", got.Fields)
	}
}

func TestEventFormatDeterministicFieldOrder(t *testing.T) {
	e := maillog.Event{
		Time: t0, Company: "c", Kind: maillog.KindDeliver,
		Fields: map[string]string{"zeta": "1", "alpha": "2", "mid": "3"},
	}
	l1, l2 := e.Format(), e.Format()
	if l1 != l2 {
		t.Fatal("Format not deterministic")
	}
	if !strings.Contains(l1, "alpha=2 mid=3 zeta=1") {
		t.Fatalf("fields not sorted: %q", l1)
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"too short",
		"not-a-time company kind",
		"2010-07-01T10:00:00Z c deliver brokenfield",
	} {
		if _, err := maillog.ParseLine(bad); err == nil {
			t.Errorf("ParseLine(%q) succeeded", bad)
		}
	}
}

func TestWriterAndParseAll(t *testing.T) {
	var sb strings.Builder
	w := maillog.NewWriter(&sb)
	for i, kind := range []maillog.Kind{maillog.KindMTAAccept, maillog.KindDispatch, maillog.KindChallenge} {
		w.Write(maillog.Event{
			Time: t0.Add(time.Duration(i) * time.Second), Company: "corp",
			Kind: kind, MsgID: "m-1",
			Fields: map[string]string{"spool": "gray"},
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	input := sb.String() + "garbage line here that fails parsing but has words\n\n"
	agg, err := maillog.ParseAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Lines != 4 || agg.BadLines != 1 {
		t.Fatalf("lines=%d bad=%d", agg.Lines, agg.BadLines)
	}
	tot := agg.Total()
	if tot.Incoming != 1 || tot.Spools["gray"] != 1 || tot.Challenges != 1 {
		t.Fatalf("aggregate = %+v", tot)
	}
	if got := agg.Companies(); len(got) != 1 || got[0] != "corp" {
		t.Fatalf("Companies = %v", got)
	}
}

// TestLogDerivedStatsMatchEngineCounters is the methodology check: the
// statistics reconstructed from the text log must equal the engine's own
// counters — exactly the equivalence the paper's log-based measurement
// relies on.
func TestLogDerivedStatsMatchEngineCounters(t *testing.T) {
	clk := clock.NewSim(t0)
	dns := dnssim.NewServer()
	dns.RegisterMailDomain("example.com", "192.0.2.10")
	dns.AddPTR("192.0.2.10", "mail.example.com")

	var sb strings.Builder
	w := maillog.NewWriter(&sb)

	eng := core.New(core.Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, clk, dns, filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(dns)),
		whitelist.NewStore(clk), func(core.OutboundChallenge) {})
	eng.SetEventSink(w.Write)
	bob := mail.MustParseAddress("bob@corp.example")
	eng.AddUser(bob)
	eng.AddManualWhitelist(bob, mail.MustParseAddress("friend@example.com"))

	send := func(from, to string, ip string) {
		m := &mail.Message{
			ID:           mail.NewID("lg"),
			EnvelopeFrom: mail.MustParseAddress(from),
			Rcpt:         mail.MustParseAddress(to),
			Subject:      "log pipeline test message subject words",
			Size:         3000,
			ClientIP:     ip,
			Received:     clk.Now(),
		}
		eng.Receive(m)
		clk.Advance(time.Minute)
	}

	send("friend@example.com", "bob@corp.example", "192.0.2.10")   // white
	send("stranger@example.com", "bob@corp.example", "192.0.2.10") // gray -> challenge
	send("another@example.com", "bob@corp.example", "203.0.113.9") // gray -> rDNS drop
	send("x@example.com", "ghost@corp.example", "192.0.2.10")      // unknown rcpt

	// Visit + solve the outstanding challenge through the service so the
	// web events flow into the log.
	pending := eng.PendingForUser(bob)
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
	ch := eng.Captcha().ByMessage(pending[0].MsgID)
	if ch == nil {
		t.Fatal("challenge missing")
	}
	if _, err := eng.Captcha().Visit(ch.Token); err != nil {
		t.Fatal(err)
	}
	ans, _ := eng.Captcha().Answer(ch.Token)
	if err := eng.Captcha().Solve(ch.Token, ans); err != nil {
		t.Fatal(err)
	}

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	agg, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	logStats := agg.Total()
	m := eng.Metrics()

	if logStats.Incoming != m.MTAIncoming {
		t.Errorf("incoming: log %d vs engine %d", logStats.Incoming, m.MTAIncoming)
	}
	if logStats.MTADrops["unknown-recipient"] != m.MTADropped[core.UnknownRecipient] {
		t.Errorf("unknown-rcpt drops: log %d vs engine %d",
			logStats.MTADrops["unknown-recipient"], m.MTADropped[core.UnknownRecipient])
	}
	if logStats.Spools["white"] != m.SpoolWhite || logStats.Spools["gray"] != m.SpoolGray {
		t.Errorf("spools: log %+v vs engine white=%d gray=%d", logStats.Spools, m.SpoolWhite, m.SpoolGray)
	}
	if logStats.FilterDrops["reverse-dns"] != m.FilterDropped["reverse-dns"] {
		t.Errorf("filter drops: log %+v vs engine %+v", logStats.FilterDrops, m.FilterDropped)
	}
	if logStats.Challenges != m.ChallengesSent {
		t.Errorf("challenges: log %d vs engine %d", logStats.Challenges, m.ChallengesSent)
	}
	if logStats.Deliveries["whitelist"] != m.Delivered[core.ViaWhitelist] ||
		logStats.Deliveries["challenge"] != m.Delivered[core.ViaChallenge] {
		t.Errorf("deliveries: log %+v vs engine %+v", logStats.Deliveries, m.Delivered)
	}
	if logStats.WebVisits != 1 || logStats.WebSolves != 1 {
		t.Errorf("web events: visits=%d solves=%d", logStats.WebVisits, logStats.WebSolves)
	}
	if logStats.InBytes != m.MTAInBytes {
		t.Errorf("bytes: log %d vs engine %d", logStats.InBytes, m.MTAInBytes)
	}
	// Derived ratio equality.
	if got, want := logStats.ReflectionRatio(), m.ReflectionRatio(); got != want {
		t.Errorf("reflection ratio: log %v vs engine %v", got, want)
	}
	if logStats.SolveRate() != 1 {
		t.Errorf("solve rate = %v, want 1", logStats.SolveRate())
	}
}
