package outbound

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/resilience"
	"repro/internal/smtp"
	"repro/internal/spool"
	"repro/internal/wal"
)

// darkInjector fails every delivery to the domains in dark, via the
// queue's "domain:<name>" fault target, and can heal mid-test.
type darkInjector struct {
	mu   sync.Mutex
	dark map[string]bool
}

func (d *darkInjector) set(domain string, failing bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dark == nil {
		d.dark = make(map[string]bool)
	}
	d.dark[domain] = failing
}

func (d *darkInjector) Decide(target string, _ time.Duration) faults.Decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	if name, ok := strings.CutPrefix(target, "domain:"); ok && d.dark[name] {
		return faults.Decision{Kind: faults.KindTempfail}
	}
	return faults.Decision{}
}

// flatSchedule is an n-rung retry ladder of equal waits: enough rungs
// that nothing expires during a breaker-lifecycle test.
func flatSchedule(n int, wait time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = wait
	}
	return out
}

// sentTo counts smarthost deliveries per destination domain.
func sentTo(sh *smarthost) map[string]int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[string]int)
	for _, m := range sh.accepted {
		out[m.Rcpt.Domain]++
	}
	return out
}

// TestDarkDomainDoesNotStallHealthy is the head-of-line-blocking
// acceptance check: with one destination domain dark, challenge
// throughput to healthy domains must stay within 10% of a fault-free
// baseline run (here it is identical — the dark batch is skipped after
// its first failure, never serialised in front of healthy domains).
func TestDarkDomainDoesNotStallHealthy(t *testing.T) {
	const n = 20
	run := func(injected bool) int {
		sh, addr := startSmarthost(t)
		cfg := Config{
			Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
			HeloDomain: "cr.corp.example",
		}
		if injected {
			inj := &darkInjector{}
			inj.set("dark.example", true)
			cfg.Injector = inj
		}
		q := NewQueue(cfg)
		for i := 0; i < n; i++ {
			q.Enqueue(challengeTo(fmt.Sprintf("victim%d@dark.example", i)))
			q.Enqueue(challengeTo(fmt.Sprintf("sender%d@healthy.example", i)))
		}
		if _, err := q.Flush(); err != nil {
			t.Fatal(err)
		}
		if injected {
			if got := sentTo(sh)["dark.example"]; got != 0 {
				t.Fatalf("dark domain accepted %d deliveries under a 100%% fault", got)
			}
			if got := q.Stats()[StatusQueued]; got != n {
				t.Fatalf("dark items queued = %d, want %d (retrying, not lost)", got, n)
			}
		}
		return sentTo(sh)["healthy.example"]
	}
	baseline := run(false)
	faulted := run(true)
	if baseline != n {
		t.Fatalf("baseline healthy deliveries = %d, want %d", baseline, n)
	}
	if float64(faulted) < 0.9*float64(baseline) {
		t.Fatalf("healthy throughput %d fell below 90%% of baseline %d with a dark domain", faulted, baseline)
	}
}

// TestDarkDomainBreakerLifecycle drives one domain's circuit breaker
// through closed → open → half-open (single probe) → closed on a
// virtual clock.
func TestDarkDomainBreakerLifecycle(t *testing.T) {
	sh, addr := startSmarthost(t)
	now := time.Date(2011, 4, 1, 12, 0, 0, 0, time.UTC)
	inj := &darkInjector{}
	inj.set("dark.example", true)
	dials := 0
	q := NewQueue(Config{
		Dial:          func() (*smtp.Client, error) { dials++; return smtp.Dial(addr, 2*time.Second) },
		HeloDomain:    "cr.corp.example",
		Injector:      inj,
		RetrySchedule: flatSchedule(10, time.Minute),
		Breaker:       resilience.BreakerConfig{FailureThreshold: 3, OpenTimeout: 5 * time.Minute, HalfOpenProbes: 1},
		Now:           func() time.Time { return now },
	})
	for i := 0; i < 4; i++ {
		q.Enqueue(challengeTo(fmt.Sprintf("victim%d@dark.example", i)))
	}

	// Three failing rounds trip the breaker (each round attempts one
	// item, fails on the domain fault, and abandons the batch).
	for i := 0; i < 3; i++ {
		if _, err := q.Flush(); err != nil {
			t.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	ds := q.DomainStats()
	if len(ds) != 1 || ds[0].Domain != "dark.example" {
		t.Fatalf("domains = %+v", ds)
	}
	if ds[0].Breaker.State != resilience.Open || ds[0].Breaker.Trips != 1 || ds[0].FailStreak != 3 {
		t.Fatalf("after 3 failures: %+v", ds[0].Breaker)
	}
	if ds[0].LastError == "" || ds[0].RetryAt.IsZero() {
		t.Fatalf("ledger missing error state: %+v", ds[0])
	}

	// While open the domain is skipped entirely — not even a dial.
	dials = 0
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if dials != 0 {
		t.Fatalf("dialed %d time(s) for an open-breaker domain", dials)
	}

	// Past the open window a healed domain gets exactly one probe.
	inj.set("dark.example", false)
	now = now.Add(6 * time.Minute)
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sentTo(sh)["dark.example"]; got != 1 {
		t.Fatalf("half-open flush delivered %d, want exactly 1 probe", got)
	}
	ds = q.DomainStats()
	if ds[0].Breaker.State != resilience.Closed || ds[0].FailStreak != 0 {
		t.Fatalf("after successful probe: %+v", ds[0])
	}

	// Closed again: the rest of the backlog drains in one flush.
	now = now.Add(2 * time.Minute)
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sentTo(sh)["dark.example"]; got != 4 {
		t.Fatalf("delivered %d of 4 after recovery", got)
	}
	if got := q.Stats()[StatusSent]; got != 4 {
		t.Fatalf("sent = %d", got)
	}
}

// TestHalfOpenProbeFailureReopens: a failing probe re-opens the breaker
// without burning the rest of the backlog.
func TestHalfOpenProbeFailureReopens(t *testing.T) {
	_, addr := startSmarthost(t)
	now := time.Date(2011, 4, 1, 12, 0, 0, 0, time.UTC)
	inj := &darkInjector{}
	inj.set("dark.example", true)
	q := NewQueue(Config{
		Dial:          func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain:    "cr.corp.example",
		Injector:      inj,
		RetrySchedule: flatSchedule(10, time.Minute),
		Breaker:       resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: 5 * time.Minute, HalfOpenProbes: 1},
		Now:           func() time.Time { return now },
	})
	q.Enqueue(challengeTo("victim@dark.example"))
	q.Enqueue(challengeTo("victim2@dark.example"))
	for i := 0; i < 2; i++ {
		if _, err := q.Flush(); err != nil {
			t.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	if st := q.DomainStats()[0].Breaker; st.State != resilience.Open {
		t.Fatalf("breaker = %+v, want open", st)
	}
	// Probe while still dark: breaker must trip straight back to open.
	now = now.Add(6 * time.Minute)
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	st := q.DomainStats()[0].Breaker
	if st.State != resilience.Open || st.Trips != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	if got := q.Stats()[StatusQueued]; got != 2 {
		t.Fatalf("queued = %d, want 2 (nothing lost)", got)
	}
}

// TestPerDomainInFlightBound caps how much of one domain's backlog a
// single flush attempts.
func TestPerDomainInFlightBound(t *testing.T) {
	sh, addr := startSmarthost(t)
	q := NewQueue(Config{
		Dial:                 func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain:           "cr.corp.example",
		MaxPerDomainInFlight: 2,
	})
	for i := 0; i < 5; i++ {
		q.Enqueue(challengeTo(fmt.Sprintf("u%d@big.example", i)))
	}
	q.Enqueue(challengeTo("only@small.example"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	got := sentTo(sh)
	if got["big.example"] != 2 || got["small.example"] != 1 {
		t.Fatalf("first flush delivered %v, want big:2 small:1", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := q.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Stats()[StatusSent]; got != 6 {
		t.Fatalf("sent = %d, want all 6", got)
	}
}

// journalTap is a test WAL sink: an in-memory append log with LSNs.
type journalTap struct {
	mu   sync.Mutex
	recs []wal.Record
}

func (j *journalTap) emit(r wal.Record) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.LSN = uint64(len(j.recs) + 1)
	j.recs = append(j.recs, r)
	return r.LSN
}

func (j *journalTap) records() []wal.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]wal.Record(nil), j.recs...)
}

// TestJournalReplayRebuildsQueue is the restart path: fold the journal
// into a fresh spool, Restore a new queue from it, and finish delivery
// without double-sending anything already acked by the smarthost.
func TestJournalReplayRebuildsQueue(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.permFail["gone@example.com"] = true
	sh.tempFail["busy@example.com"] = true
	tap := &journalTap{}
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		Spool:      spool.NewState(),
		Journal:    tap.emit,
	})
	chOK := challengeTo("ok@example.com")
	q.Enqueue(chOK)
	q.Enqueue(challengeTo("gone@example.com"))
	q.Enqueue(challengeTo("busy@example.com"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := q.SpoolDepth(); d != 1 {
		t.Fatalf("spool depth after flush = %d, want 1 (only the tempfailed item)", d)
	}

	// "Crash": rebuild state purely from the journal.
	sp2 := spool.NewState()
	for _, r := range tap.records() {
		if err := spool.Apply(r, sp2); err != nil {
			t.Fatal(err)
		}
	}
	if fate, ok := sp2.Fate(chOK.MsgID); !ok {
		t.Fatal("sent challenge lost by replay")
	} else if fate != spool.StatusSent {
		t.Fatalf("fate = %v", fate)
	}

	q2 := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		Spool:      sp2,
	})
	if n := q2.Restore(); n != 1 {
		t.Fatalf("Restore = %d, want 1", n)
	}
	it := q2.Items()[0]
	if it.Challenge.MsgID == "" || it.Attempts != 1 || it.LastClass != ClassTempfail {
		t.Fatalf("restored item lost its attempt state: %+v", it)
	}
	sh.tempFail = map[string]bool{}
	if _, err := q2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := sentTo(sh)
	// ok@ was delivered exactly once (before the crash); busy@ exactly
	// once (after); gone@ never.
	if got["example.com"] != 2 {
		t.Fatalf("deliveries = %v, want exactly 2 to example.com", got)
	}
}

// TestCrashAtEveryTransition truncates the journal at every prefix —
// simulating a crash between any two journalled transitions — and
// verifies the invariant the durable spool exists for: every enqueued
// challenge is accounted for (pending or terminal) after replay, no
// challenge the smarthost acked is ever re-sent, and a fresh queue can
// always drive the remainder to completion.
func TestCrashAtEveryTransition(t *testing.T) {
	// Scripted first life: 3 challenges, one clean send, one bounce,
	// one tempfail-then-send.
	sh, addr := startSmarthost(t)
	sh.permFail["gone@example.com"] = true
	sh.tempFail["busy@example.com"] = true
	tap := &journalTap{}
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		Spool:      spool.NewState(),
		Journal:    tap.emit,
	})
	q.Enqueue(challengeTo("ok@example.com"))
	q.Enqueue(challengeTo("gone@example.com"))
	q.Enqueue(challengeTo("busy@example.com"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	sh.tempFail = map[string]bool{}
	if _, err := q.FlushAll(); err != nil {
		t.Fatal(err)
	}
	recs := tap.records()
	if len(recs) < 6 {
		t.Fatalf("script journalled only %d records", len(recs))
	}

	for k := 0; k <= len(recs); k++ {
		sp := spool.NewState()
		enqueued := make(map[string]bool)
		acked := make(map[string]bool)
		for _, r := range recs[:k] {
			if err := spool.Apply(r, sp); err != nil {
				t.Fatal(err)
			}
			switch r.Op {
			case wal.OpSpoolEnqueue:
				enqueued[r.User] = true
			case wal.OpSpoolSent:
				acked[r.User] = true
			}
		}
		// Accounting: nothing enqueued before the crash vanishes.
		pending := sp.Pending()
		accounted := len(pending)
		for id := range enqueued {
			if _, ok := sp.Fate(id); ok {
				accounted++
			}
		}
		if accounted != len(enqueued) {
			t.Fatalf("prefix %d: %d enqueued, %d accounted for", k, len(enqueued), accounted)
		}
		// Second life: a fresh queue finishes the job without
		// re-sending anything the smarthost already acked.
		sh2, addr2 := startSmarthost(t)
		sh2.permFail["gone@example.com"] = true
		q2 := NewQueue(Config{
			Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr2, 2*time.Second) },
			HeloDomain: "cr.corp.example",
			Spool:      sp,
		})
		if n := q2.Restore(); n != len(pending) {
			t.Fatalf("prefix %d: Restore = %d, want %d", k, n, len(pending))
		}
		if _, err := q2.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if got := q2.SpoolDepth(); got != 0 {
			t.Fatalf("prefix %d: %d challenge(s) stuck after recovery flush", k, got)
		}
		sh2.mu.Lock()
		for _, m := range sh2.accepted {
			// The challenge subject embeds the original message ID.
			for id := range acked {
				if strings.Contains(m.Subject, "("+id+")") {
					t.Fatalf("prefix %d: re-sent already-acked challenge %s to %s", k, id, m.Rcpt)
				}
			}
		}
		sh2.mu.Unlock()
	}
}

// TestWalSpoolFaultDropsAppendsFailOpen: the "wal-spool" injector
// target starves the spool journal, and the queue keeps delivering —
// durability degrades, the mail path does not.
func TestWalSpoolFaultDropsAppendsFailOpen(t *testing.T) {
	sh, addr := startSmarthost(t)
	inj := faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "wal-spool", Kind: faults.KindError},
	}}, 1, clock.Real{})
	tap := &journalTap{}
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		Injector:   inj,
		Spool:      spool.NewState(),
		Journal:    tap.emit,
	})
	q.Enqueue(challengeTo("alice@example.com"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats()[StatusSent]; got != 1 {
		t.Fatalf("sent = %d — a journal fault must not block delivery", got)
	}
	if len(sh.accepted) != 1 {
		t.Fatalf("smarthost accepted %d", len(sh.accepted))
	}
	if len(tap.records()) != 0 {
		t.Fatalf("journal got %d record(s) under a 100%% wal-spool fault", len(tap.records()))
	}
	if got := q.JournalDropped(); got != 2 {
		t.Fatalf("dropped appends = %d, want 2 (enqueue + terminal)", got)
	}
	// The in-memory spool still folded both transitions.
	if q.Spool().Len() != 0 || len(q.Spool().DoneCounts()) != 1 {
		t.Fatalf("spool pending=%d done=%v", q.Spool().Len(), q.Spool().DoneCounts())
	}
}

// TestConcurrentEnqueueFlush exercises the queue's locking under the
// race detector: producers enqueue while a consumer flushes.
func TestConcurrentEnqueueFlush(t *testing.T) {
	_, addr := startSmarthost(t)
	tap := &journalTap{}
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		Spool:      spool.NewState(),
		Journal:    tap.emit,
	})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q.Enqueue(challengeTo(fmt.Sprintf("u%d-%d@example.com", p, i)))
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if _, err := q.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if _, err := q.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats()[StatusSent]; got != 40 {
		t.Fatalf("sent = %d, want 40", got)
	}
	if d := q.SpoolDepth(); d != 0 {
		t.Fatalf("spool depth = %d", d)
	}
}
