// Package outbound implements the MTA-OUT side of a live CR deployment:
// a delivery queue that renders challenge emails and pushes them to a
// next-hop SMTP server (smarthost), with the retry/expiry schedule of a
// conventional mail queue.
//
// In the paper's installations this is the component whose IP address
// ends up on blocklists (§5.1) — it is the server that "sends the
// challenges". cmd/crserver wires it to a real smarthost; the simulation
// uses internal/simnet instead (same queue semantics, virtual time).
package outbound

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mail"
	"repro/internal/smtp"
)

// Status is the delivery state of a queued challenge.
type Status int

// Queue item states.
const (
	// StatusQueued: waiting for the next delivery attempt.
	StatusQueued Status = iota
	// StatusSent: accepted by the smarthost.
	StatusSent
	// StatusBounced: permanently rejected (5xx).
	StatusBounced
	// StatusExpired: retries exhausted.
	StatusExpired
)

// String returns the state label.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusSent:
		return "sent"
	case StatusBounced:
		return "bounced"
	case StatusExpired:
		return "expired"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrClass classifies the failure recorded in Item.LastError, so an
// expired item shows which error class exhausted its retries.
type ErrClass string

// Error classes.
const (
	// ClassNone: no failure recorded yet.
	ClassNone ErrClass = ""
	// ClassTempfail: the smarthost answered 4xx (transient rejection).
	ClassTempfail ErrClass = "tempfail"
	// ClassPermfail: the smarthost answered 5xx (permanent rejection).
	ClassPermfail ErrClass = "permfail"
	// ClassConnection: the session itself failed (dial, I/O, injected
	// outage) before an SMTP verdict was reached.
	ClassConnection ErrClass = "connection"
)

// Item is one queued challenge with its delivery state.
type Item struct {
	Challenge core.OutboundChallenge
	Status    Status
	Attempts  int
	LastError string
	LastClass ErrClass
	NextTry   time.Time
}

// Dialer opens an SMTP session to the smarthost. Tests substitute an
// in-memory implementation.
type Dialer func() (*smtp.Client, error)

// Config parameterises a Queue.
type Config struct {
	// Dial opens the smarthost connection; required.
	Dial Dialer
	// HeloDomain is announced on each session.
	HeloDomain string
	// RetrySchedule are the waits between attempts; when exhausted the
	// item expires. Defaults to a conventional backoff.
	RetrySchedule []time.Duration
	// MaxAttempts caps delivery attempts per item regardless of the
	// schedule length; 0 means len(RetrySchedule)+1.
	MaxAttempts int
	// Injector is an optional fault source consulted on the smarthost
	// path. Target "smarthost-dial" is decided once per session before
	// the dial and any fault fails the whole session; target "smarthost"
	// is decided per item — tempfail synthesizes a 421, other faults
	// surface as connection errors. A "smarthost*" rule covers both.
	Injector faults.Injector
	// MaxQueued bounds the number of items in the active delivery queue
	// (any state — the queue also holds terminal items for reporting).
	// Overflowing challenges are deferred, not dropped: they wait in a
	// raw FIFO (un-rendered, no Item allocated) and are promoted as
	// Flush frees capacity. 0 means unbounded.
	MaxQueued int
	// Now supplies timestamps; nil = time.Now.
	Now func() time.Time
}

// DefaultRetrySchedule is a conventional MTA backoff.
var DefaultRetrySchedule = []time.Duration{
	15 * time.Minute, time.Hour, 4 * time.Hour, 12 * time.Hour, 24 * time.Hour,
}

// Queue is the outbound challenge queue. Enqueue is cheap; Flush drives
// delivery (call it from a ticker or after Enqueue for immediate mode).
type Queue struct {
	cfg Config

	mu    sync.Mutex
	items []*Item
	// deferred holds challenges that overflowed MaxQueued, FIFO. They
	// carry no Item and no rendered body yet — deferral is deliberately
	// the cheapest possible representation of "not yet".
	deferred []core.OutboundChallenge
	// active counts non-terminal (queued) items, so the bound check is
	// O(1) per Enqueue.
	active int
}

// NewQueue returns an empty queue.
func NewQueue(cfg Config) *Queue {
	if cfg.Dial == nil {
		panic("outbound: Config.Dial is required")
	}
	if cfg.HeloDomain == "" {
		cfg.HeloDomain = "cr.invalid"
	}
	if len(cfg.RetrySchedule) == 0 {
		cfg.RetrySchedule = DefaultRetrySchedule
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = len(cfg.RetrySchedule) + 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Queue{cfg: cfg}
}

// Enqueue adds a challenge for delivery on the next Flush. When the
// bounded active queue is full the challenge is deferred — generation
// waits, it is never dropped.
func (q *Queue) Enqueue(ch core.OutboundChallenge) {
	q.mu.Lock()
	if q.cfg.MaxQueued > 0 && q.active >= q.cfg.MaxQueued {
		q.deferred = append(q.deferred, ch)
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, &Item{Challenge: ch, NextTry: q.cfg.Now()})
	q.active++
	q.mu.Unlock()
}

// promoteLocked moves deferred challenges into the active queue while
// capacity allows, preserving FIFO order. Caller holds q.mu.
func (q *Queue) promoteLocked(now time.Time) {
	for len(q.deferred) > 0 && (q.cfg.MaxQueued <= 0 || q.active < q.cfg.MaxQueued) {
		ch := q.deferred[0]
		q.deferred = q.deferred[1:]
		q.items = append(q.items, &Item{Challenge: ch, NextTry: now})
		q.active++
	}
	if len(q.deferred) == 0 {
		q.deferred = nil
	}
}

// Deferred reports how many challenges are waiting for queue capacity.
func (q *Queue) Deferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.deferred)
}

// Sender returns a core.ChallengeSender that enqueues.
func (q *Queue) Sender() core.ChallengeSender {
	return func(ch core.OutboundChallenge) { q.Enqueue(ch) }
}

// RenderChallenge builds the RFC 5322 body of a challenge email: the
// text a real sender reads, with the CAPTCHA URL to open.
func RenderChallenge(ch core.OutboundChallenge) string {
	h := mail.NewHeaders()
	h.Set("From", ch.From.String())
	h.Set("To", ch.To.String())
	h.Set("Subject", "Please confirm your message ("+ch.MsgID+")")
	h.Set("Auto-Submitted", "auto-replied")
	h.Set("X-CR-Token", ch.Token)
	h.Set("MIME-Version", "1.0")
	h.Set("Content-Type", "text/plain; charset=utf-8")
	body := "Your message is being held by a challenge-response spam filter.\r\n" +
		"To deliver it, please confirm you are human by visiting:\r\n\r\n    " +
		ch.URL + "\r\n\r\n" +
		"You only need to do this once; future messages will be delivered\r\n" +
		"immediately. If you did not send a message, you can ignore this\r\n" +
		"email.\r\n"
	return h.Render() + body
}

// Flush attempts delivery of every due item over a single smarthost
// session. It returns the number of items that reached a terminal state
// (sent, bounced, expired). Transient errors reschedule per the retry
// schedule; dial failures leave the queue untouched for the next Flush.
func (q *Queue) Flush() (terminal int, err error) {
	return q.flush(false)
}

// FlushAll is Flush ignoring each item's retry timer: every queued item
// is attempted now. The graceful-drain path uses it so a shutdown does
// not strand challenges waiting on a backoff schedule.
func (q *Queue) FlushAll() (terminal int, err error) {
	return q.flush(true)
}

func (q *Queue) flush(ignoreSchedule bool) (terminal int, err error) {
	now := q.cfg.Now()
	q.mu.Lock()
	q.promoteLocked(now)
	var due []*Item
	for _, it := range q.items {
		if it.Status == StatusQueued && (ignoreSchedule || !it.NextTry.After(now)) {
			due = append(due, it)
		}
	}
	q.mu.Unlock()
	if len(due) == 0 {
		return 0, nil
	}

	if inj := q.cfg.Injector; inj != nil {
		// Session-level faults surface before the dial, under their own
		// target: consulting "smarthost" here would count (and burn an RNG
		// draw on) per-item tempfail rules whose decision is then ignored.
		if d := inj.Decide("smarthost-dial", 0); d.Err != nil {
			return 0, fmt.Errorf("outbound: dial smarthost: %w", d.Err)
		}
	}
	client, err := q.cfg.Dial()
	if err != nil {
		return 0, fmt.Errorf("outbound: dial smarthost: %w", err)
	}
	defer client.Close()
	if err := client.Hello(q.cfg.HeloDomain); err != nil {
		return 0, fmt.Errorf("outbound: HELO: %w", err)
	}

	for _, it := range due {
		var sendErr error
		if inj := q.cfg.Injector; inj != nil {
			if d := inj.Decide("smarthost", 0); d.Kind == faults.KindTempfail {
				sendErr = &smtp.Reply{Code: 421, Text: "service temporarily unavailable"}
			} else if d.Err != nil {
				sendErr = d.Err
			}
		}
		if sendErr == nil {
			sendErr = client.SendMail(it.Challenge.From, []mail.Address{it.Challenge.To}, RenderChallenge(it.Challenge))
		}
		q.mu.Lock()
		it.Attempts++
		switch e := sendErr.(type) {
		case nil:
			it.Status = StatusSent
			terminal++
			q.active--
		case *smtp.Reply:
			if e.Temporary() {
				it.LastClass = ClassTempfail
				it.LastError = string(ClassTempfail) + ": " + e.Error()
				q.rescheduleLocked(it, now)
				if it.Status == StatusExpired {
					terminal++
					q.active--
				}
			} else {
				it.LastClass = ClassPermfail
				it.LastError = string(ClassPermfail) + ": " + e.Error()
				it.Status = StatusBounced
				terminal++
				q.active--
			}
			// The session survives SMTP-level rejections; reset the
			// transaction for the next item.
			q.mu.Unlock()
			_ = client.Reset()
			q.mu.Lock()
		default:
			// Connection-level failure: stop the session, retry later.
			it.LastClass = ClassConnection
			it.LastError = string(ClassConnection) + ": " + sendErr.Error()
			q.rescheduleLocked(it, now)
			if it.Status == StatusExpired {
				terminal++
				q.active--
			}
			q.promoteLocked(now)
			q.mu.Unlock()
			return terminal, fmt.Errorf("outbound: session lost: %w", sendErr)
		}
		q.mu.Unlock()
	}
	q.mu.Lock()
	q.promoteLocked(now)
	q.mu.Unlock()
	_ = client.Quit()
	return terminal, nil
}

// rescheduleLocked applies the retry schedule. Caller holds q.mu.
func (q *Queue) rescheduleLocked(it *Item, now time.Time) {
	idx := it.Attempts - 1
	if it.Attempts >= q.cfg.MaxAttempts || idx >= len(q.cfg.RetrySchedule) {
		it.Status = StatusExpired
		return
	}
	it.NextTry = now.Add(q.cfg.RetrySchedule[idx])
}

// Stats counts items per state.
func (q *Queue) Stats() map[Status]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[Status]int)
	for _, it := range q.items {
		out[it.Status]++
	}
	return out
}

// ErrorClasses counts items per last-recorded error class, skipping
// items that never failed.
func (q *Queue) ErrorClasses() map[ErrClass]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[ErrClass]int)
	for _, it := range q.items {
		if it.LastClass != ClassNone {
			out[it.LastClass]++
		}
	}
	return out
}

// Items returns a snapshot of the queue.
func (q *Queue) Items() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Item, len(q.items))
	for i, it := range q.items {
		out[i] = *it
	}
	return out
}
