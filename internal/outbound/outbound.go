// Package outbound implements the MTA-OUT side of a live CR deployment:
// a delivery queue that renders challenge emails and pushes them to a
// next-hop SMTP server (smarthost), with the retry/expiry schedule of a
// conventional mail queue.
//
// In the paper's installations this is the component whose IP address
// ends up on blocklists (§5.1) — it is the server that "sends the
// challenges". cmd/crserver wires it to a real smarthost; the simulation
// uses internal/simnet instead (same queue semantics, virtual time).
//
// Two robustness layers ride on the basic queue:
//
//   - Durability: every state transition (enqueue / attempt / sent /
//     bounced / expired) is journalled through internal/spool into the
//     WAL before the in-memory item changes, so a crash between
//     gray-spool accept and smarthost handoff loses zero acked
//     challenges — store.Recover rebuilds the pending spool and
//     Restore re-admits it.
//   - Per-destination-domain isolation: each destination domain gets
//     its own health ledger (a consecutive-failure circuit breaker, an
//     independent retry ladder and a bounded per-flush in-flight
//     batch), so one dead or RBL-listed destination MX cannot starve
//     retries or head-of-line-block delivery to healthy domains.
package outbound

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mail"
	"repro/internal/resilience"
	"repro/internal/smtp"
	"repro/internal/spool"
	"repro/internal/wal"
)

// Status is the delivery state of a queued challenge.
type Status int

// Queue item states.
const (
	// StatusQueued: waiting for the next delivery attempt.
	StatusQueued Status = iota
	// StatusSent: accepted by the smarthost.
	StatusSent
	// StatusBounced: permanently rejected (5xx).
	StatusBounced
	// StatusExpired: retries exhausted.
	StatusExpired
)

// String returns the state label.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusSent:
		return "sent"
	case StatusBounced:
		return "bounced"
	case StatusExpired:
		return "expired"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrClass classifies the failure recorded in Item.LastError, so an
// expired item shows which error class exhausted its retries.
type ErrClass string

// Error classes.
const (
	// ClassNone: no failure recorded yet.
	ClassNone ErrClass = ""
	// ClassTempfail: the smarthost answered 4xx (transient rejection).
	ClassTempfail ErrClass = "tempfail"
	// ClassPermfail: the smarthost answered 5xx (permanent rejection).
	ClassPermfail ErrClass = "permfail"
	// ClassConnection: the session itself failed (dial, I/O, injected
	// outage) before an SMTP verdict was reached.
	ClassConnection ErrClass = "connection"
)

// Item is one queued challenge with its delivery state.
type Item struct {
	Challenge core.OutboundChallenge
	Status    Status
	Attempts  int
	LastError string
	LastClass ErrClass
	NextTry   time.Time
}

// Dialer opens an SMTP session to the smarthost. Tests substitute an
// in-memory implementation.
type Dialer func() (*smtp.Client, error)

// Config parameterises a Queue.
type Config struct {
	// Dial opens the smarthost connection; required.
	Dial Dialer
	// HeloDomain is announced on each session.
	HeloDomain string
	// RetrySchedule are the waits between attempts; when exhausted the
	// item expires. Defaults to a conventional backoff. The same ladder
	// paces a failing destination domain: after k consecutive
	// domain-level failures, the whole domain waits RetrySchedule[k-1]
	// (capped at the last rung) before its next batch.
	RetrySchedule []time.Duration
	// MaxAttempts caps delivery attempts per item regardless of the
	// schedule length; 0 means len(RetrySchedule)+1.
	MaxAttempts int
	// Injector is an optional fault source consulted on the smarthost
	// path. Target "smarthost-dial" is decided once per session before
	// the dial and any fault fails the whole session; target "smarthost"
	// is decided per item — tempfail synthesizes a 421, other faults
	// surface as connection errors. A "smarthost*" rule covers both.
	// Target "domain:<name>" is decided per item for the destination
	// domain and fails only that domain (the dark-MX scenario); target
	// "wal-spool" drops the item's journal append (fail-open).
	Injector faults.Injector
	// MaxQueued bounds the number of items in the active delivery queue
	// (any state — the queue also holds terminal items for reporting).
	// Overflowing challenges are deferred, not dropped: they wait in a
	// raw FIFO (un-rendered, no Item allocated) and are promoted as
	// Flush frees capacity. 0 means unbounded.
	MaxQueued int
	// Now supplies timestamps; nil = time.Now.
	Now func() time.Time

	// Spool is the durable fold of the queue's journalled transitions.
	// nil allocates a private in-memory one, so the accessors work
	// uniformly; pass the store-registered State to make it part of
	// snapshots and recovery.
	Spool *spool.State
	// Journal appends one WAL record and returns its LSN (0 = dropped).
	// Wire it to (*wal.Journal).Emit; nil runs the spool unjournalled.
	Journal func(wal.Record) uint64
	// Breaker parameterises the per-domain circuit breakers; zero
	// values take resilience defaults (5 consecutive failures to open,
	// 30s open window, 1 half-open probe).
	Breaker resilience.BreakerConfig
	// MaxPerDomainInFlight bounds how many items of one destination
	// domain a single Flush attempts (0 = unbounded). A domain in
	// half-open always gets exactly one probe item.
	MaxPerDomainInFlight int
}

// DefaultRetrySchedule is a conventional MTA backoff.
var DefaultRetrySchedule = []time.Duration{
	15 * time.Minute, time.Hour, 4 * time.Hour, 12 * time.Hour, 24 * time.Hour,
}

// domainLedger is the per-destination-domain health state: the circuit
// breaker, the domain-level retry ladder position, and fate counters.
type domainLedger struct {
	breaker    *resilience.Breaker
	failStreak int
	retryAt    time.Time
	lastError  string
	queued     int
	sent       int64
	bounced    int64
	expired    int64
}

// DomainStats is the exported health of one destination domain.
type DomainStats struct {
	Domain     string
	Queued     int
	Sent       int64
	Bounced    int64
	Expired    int64
	Breaker    resilience.BreakerStats
	FailStreak int
	RetryAt    time.Time
	LastError  string
}

// nowClock adapts Config.Now to clock.Clock for the breakers.
type nowClock struct{ f func() time.Time }

func (c nowClock) Now() time.Time { return c.f() }

// Queue is the outbound challenge queue. Enqueue is cheap; Flush drives
// delivery (call it from a ticker or after Enqueue for immediate mode).
type Queue struct {
	cfg Config
	rec *spool.Recorder

	mu    sync.Mutex
	items []*Item
	// deferred holds challenges that overflowed MaxQueued, FIFO. They
	// carry no Item and no rendered body yet — deferral is deliberately
	// the cheapest possible representation of "not yet". Deferred
	// challenges are journalled at Enqueue like active ones, so a crash
	// loses neither.
	deferred []core.OutboundChallenge
	// active counts non-terminal (queued) items, so the bound check is
	// O(1) per Enqueue.
	active  int
	domains map[string]*domainLedger
}

// NewQueue returns an empty queue.
func NewQueue(cfg Config) *Queue {
	if cfg.Dial == nil {
		panic("outbound: Config.Dial is required")
	}
	if cfg.HeloDomain == "" {
		cfg.HeloDomain = "cr.invalid"
	}
	if len(cfg.RetrySchedule) == 0 {
		cfg.RetrySchedule = DefaultRetrySchedule
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = len(cfg.RetrySchedule) + 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Spool == nil {
		cfg.Spool = spool.NewState()
	}
	q := &Queue{cfg: cfg, domains: make(map[string]*domainLedger)}
	q.rec = &spool.Recorder{State: cfg.Spool, Emit: cfg.Journal}
	if cfg.Injector != nil {
		inj := cfg.Injector
		q.rec.Gate = func() bool { return inj.Decide("wal-spool", 0).Err == nil }
	}
	return q
}

// Spool returns the queue's durable spool state.
func (q *Queue) Spool() *spool.State { return q.cfg.Spool }

// JournalDropped reports how many transitions lost their journal append
// (fault injection or append failure) and were applied fail-open.
func (q *Queue) JournalDropped() int { return q.rec.Dropped() }

// toSpool converts a challenge to its durable form.
func toSpool(ch core.OutboundChallenge) spool.Challenge {
	return spool.Challenge{
		MsgID:   ch.MsgID,
		Token:   ch.Token,
		From:    ch.From,
		To:      ch.To,
		Subject: ch.Subject,
		URL:     ch.URL,
		Size:    ch.Size,
		Issued:  ch.Issued,
	}
}

// fromSpool is toSpool's inverse, for Restore.
func fromSpool(sc spool.Challenge) core.OutboundChallenge {
	return core.OutboundChallenge{
		MsgID:   sc.MsgID,
		Token:   sc.Token,
		From:    sc.From,
		To:      sc.To,
		Subject: sc.Subject,
		URL:     sc.URL,
		Size:    sc.Size,
		Issued:  sc.Issued,
	}
}

// ledgerLocked returns (creating if needed) the ledger for domain.
// Caller holds q.mu.
func (q *Queue) ledgerLocked(domain string) *domainLedger {
	led, ok := q.domains[domain]
	if !ok {
		led = &domainLedger{
			breaker: resilience.NewBreaker("outbound:"+domain, q.cfg.Breaker, nowClock{q.cfg.Now}),
		}
		q.domains[domain] = led
	}
	return led
}

// Enqueue adds a challenge for delivery on the next Flush, journalling
// it first so an acked challenge survives a crash. When the bounded
// active queue is full the challenge is deferred — generation waits, it
// is never dropped.
func (q *Queue) Enqueue(ch core.OutboundChallenge) {
	q.mu.Lock()
	q.rec.Enqueue(q.cfg.Now(), toSpool(ch))
	q.ledgerLocked(ch.To.Domain).queued++
	if q.cfg.MaxQueued > 0 && q.active >= q.cfg.MaxQueued {
		q.deferred = append(q.deferred, ch)
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, &Item{Challenge: ch, NextTry: q.cfg.Now()})
	q.active++
	q.mu.Unlock()
}

// Restore re-admits the pending spool recovered from a snapshot + WAL
// replay: every still-queued item becomes an active (or deferred) queue
// entry with its attempt count, error state and retry timer intact.
// Call it once at boot, after store.Recover and before the first Flush;
// it returns the number of challenges re-admitted. Restored items are
// not re-journalled — their transitions are already in the log.
func (q *Queue) Restore() int {
	pending := q.cfg.Spool.Pending()
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, sp := range pending {
		ch := fromSpool(sp.Challenge)
		q.ledgerLocked(ch.To.Domain).queued++
		if q.cfg.MaxQueued > 0 && q.active >= q.cfg.MaxQueued {
			q.deferred = append(q.deferred, ch)
			n++
			continue
		}
		it := &Item{
			Challenge: ch,
			Status:    StatusQueued,
			Attempts:  sp.Attempts,
			LastClass: ErrClass(sp.LastClass),
			LastError: sp.LastError,
			NextTry:   sp.NextTry,
		}
		q.items = append(q.items, it)
		q.active++
		n++
	}
	return n
}

// promoteLocked moves deferred challenges into the active queue while
// capacity allows, preserving FIFO order. Caller holds q.mu.
func (q *Queue) promoteLocked(now time.Time) {
	for len(q.deferred) > 0 && (q.cfg.MaxQueued <= 0 || q.active < q.cfg.MaxQueued) {
		ch := q.deferred[0]
		q.deferred = q.deferred[1:]
		q.items = append(q.items, &Item{Challenge: ch, NextTry: now})
		q.active++
	}
	if len(q.deferred) == 0 {
		q.deferred = nil
	}
}

// Deferred reports how many challenges are waiting for queue capacity.
func (q *Queue) Deferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.deferred)
}

// SpoolDepth reports the number of undelivered challenges the queue is
// responsible for: active queued items plus deferred overflow.
func (q *Queue) SpoolDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active + len(q.deferred)
}

// Sender returns a core.ChallengeSender that enqueues.
func (q *Queue) Sender() core.ChallengeSender {
	return func(ch core.OutboundChallenge) { q.Enqueue(ch) }
}

// RenderChallenge builds the RFC 5322 body of a challenge email: the
// text a real sender reads, with the CAPTCHA URL to open.
func RenderChallenge(ch core.OutboundChallenge) string {
	h := mail.NewHeaders()
	h.Set("From", ch.From.String())
	h.Set("To", ch.To.String())
	h.Set("Subject", "Please confirm your message ("+ch.MsgID+")")
	h.Set("Auto-Submitted", "auto-replied")
	h.Set("X-CR-Token", ch.Token)
	h.Set("MIME-Version", "1.0")
	h.Set("Content-Type", "text/plain; charset=utf-8")
	body := "Your message is being held by a challenge-response spam filter.\r\n" +
		"To deliver it, please confirm you are human by visiting:\r\n\r\n    " +
		ch.URL + "\r\n\r\n" +
		"You only need to do this once; future messages will be delivered\r\n" +
		"immediately. If you did not send a message, you can ignore this\r\n" +
		"email.\r\n"
	return h.Render() + body
}

// Flush attempts delivery of every due item over a single smarthost
// session. It returns the number of items that reached a terminal state
// (sent, bounced, expired). Transient errors reschedule per the retry
// schedule; dial failures leave the queue untouched for the next Flush.
func (q *Queue) Flush() (terminal int, err error) {
	return q.flush(false)
}

// FlushAll is Flush ignoring item retry timers and domain-ladder waits:
// every queued item is attempted now (open breakers still refuse their
// domain — a dark MX stays dark even during drain). The graceful-drain
// path uses it so a shutdown does not strand challenges waiting on a
// backoff schedule.
func (q *Queue) FlushAll() (terminal int, err error) {
	return q.flush(true)
}

// domGroup is one destination domain's batch of a flush.
type domGroup struct {
	domain   string
	led      *domainLedger
	items    []*Item
	probed   bool // breaker was half-open when admitted: exactly one probe item
	recorded bool // at least one item outcome was Recorded on the breaker
}

func (q *Queue) flush(ignoreSchedule bool) (terminal int, err error) {
	now := q.cfg.Now()
	q.mu.Lock()
	q.promoteLocked(now)
	perDomain := make(map[string][]*Item)
	for _, it := range q.items {
		if it.Status != StatusQueued || (!ignoreSchedule && it.NextTry.After(now)) {
			continue
		}
		d := it.Challenge.To.Domain
		perDomain[d] = append(perDomain[d], it)
	}
	names := make([]string, 0, len(perDomain))
	for d := range perDomain {
		names = append(names, d)
	}
	sort.Strings(names)
	var groups []*domGroup
	for _, d := range names {
		led := q.ledgerLocked(d)
		if !ignoreSchedule && now.Before(led.retryAt) {
			continue
		}
		if !led.breaker.Allow() {
			continue
		}
		g := &domGroup{domain: d, led: led, items: perDomain[d]}
		if led.breaker.State() == resilience.HalfOpen {
			g.probed = true
			g.items = g.items[:1]
		} else if q.cfg.MaxPerDomainInFlight > 0 && len(g.items) > q.cfg.MaxPerDomainInFlight {
			g.items = g.items[:q.cfg.MaxPerDomainInFlight]
		}
		groups = append(groups, g)
	}
	q.mu.Unlock()
	if len(groups) == 0 {
		return 0, nil
	}

	// releaseProbes re-opens the breaker of any admitted half-open
	// domain whose probe item never reached an outcome because the
	// whole session failed — otherwise the claimed probe slot would
	// wedge the breaker in half-open forever.
	releaseProbes := func(sessionErr error) {
		for _, g := range groups {
			if g.probed && !g.recorded {
				g.led.breaker.Record(sessionErr)
			}
		}
	}

	if inj := q.cfg.Injector; inj != nil {
		// Session-level faults surface before the dial, under their own
		// target: consulting "smarthost" here would count (and burn an RNG
		// draw on) per-item tempfail rules whose decision is then ignored.
		if d := inj.Decide("smarthost-dial", 0); d.Err != nil {
			releaseProbes(d.Err)
			return 0, fmt.Errorf("outbound: dial smarthost: %w", d.Err)
		}
	}
	client, err := q.cfg.Dial()
	if err != nil {
		releaseProbes(err)
		return 0, fmt.Errorf("outbound: dial smarthost: %w", err)
	}
	defer client.Close()
	if err := client.Hello(q.cfg.HeloDomain); err != nil {
		releaseProbes(err)
		return 0, fmt.Errorf("outbound: HELO: %w", err)
	}

	for _, g := range groups {
		for _, it := range g.items {
			var sendErr error
			domainFault := false
			if inj := q.cfg.Injector; inj != nil {
				if d := inj.Decide("domain:"+g.domain, 0); d.Kind == faults.KindTempfail {
					sendErr = &smtp.Reply{Code: 451, Text: "destination unavailable"}
					domainFault = true
				} else if d.Err != nil {
					sendErr = d.Err
					domainFault = true
				} else if d := inj.Decide("smarthost", 0); d.Kind == faults.KindTempfail {
					sendErr = &smtp.Reply{Code: 421, Text: "service temporarily unavailable"}
				} else if d.Err != nil {
					sendErr = d.Err
				}
			}
			if sendErr == nil {
				sendErr = client.SendMail(it.Challenge.From, []mail.Address{it.Challenge.To}, RenderChallenge(it.Challenge))
			}
			q.mu.Lock()
			it.Attempts++
			switch e := sendErr.(type) {
			case nil:
				it.Status = StatusSent
				q.rec.Terminal(now, it.Challenge.MsgID, spool.StatusSent, string(it.LastClass), it.LastError, it.Attempts)
				terminal++
				q.active--
				q.domainOutcomeLocked(g, it, now, nil)
			case *smtp.Reply:
				if e.Temporary() {
					it.LastClass = ClassTempfail
					it.LastError = string(ClassTempfail) + ": " + e.Error()
					q.rescheduleLocked(it, now)
					if it.Status == StatusExpired {
						terminal++
						q.active--
					}
					q.domainOutcomeLocked(g, it, now, sendErr)
				} else {
					it.LastClass = ClassPermfail
					it.LastError = string(ClassPermfail) + ": " + e.Error()
					it.Status = StatusBounced
					q.rec.Terminal(now, it.Challenge.MsgID, spool.StatusBounced, string(it.LastClass), it.LastError, it.Attempts)
					terminal++
					q.active--
					// A permanent rejection is a definitive answer from a
					// live path — the domain is healthy, the mailbox is not.
					q.domainOutcomeLocked(g, it, now, nil)
				}
				// The session survives SMTP-level rejections; reset the
				// transaction for the next item.
				q.mu.Unlock()
				_ = client.Reset()
				q.mu.Lock()
			default:
				it.LastClass = ClassConnection
				it.LastError = string(ClassConnection) + ": " + sendErr.Error()
				q.rescheduleLocked(it, now)
				if it.Status == StatusExpired {
					terminal++
					q.active--
				}
				q.domainOutcomeLocked(g, it, now, sendErr)
				if !domainFault {
					// Smarthost-session failure: stop the whole flush,
					// release any untested half-open probes, retry later.
					q.promoteLocked(now)
					q.mu.Unlock()
					releaseProbes(sendErr)
					return terminal, fmt.Errorf("outbound: session lost: %w", sendErr)
				}
			}
			q.mu.Unlock()
			if domainFault {
				// The destination is failing, not the smarthost: skip the
				// rest of this domain's batch and move on to the next
				// domain — this is exactly the head-of-line block the
				// per-domain ledgers exist to prevent.
				break
			}
		}
	}
	q.mu.Lock()
	q.promoteLocked(now)
	q.mu.Unlock()
	_ = client.Quit()
	return terminal, nil
}

// domainOutcomeLocked feeds one item outcome into its domain's ledger:
// the circuit breaker, the domain retry ladder and the fate counters.
// Caller holds q.mu.
func (q *Queue) domainOutcomeLocked(g *domGroup, it *Item, now time.Time, outcome error) {
	led := g.led
	g.recorded = true
	led.breaker.Record(outcome)
	if outcome == nil {
		led.failStreak = 0
		led.retryAt = time.Time{}
		led.lastError = ""
	} else {
		led.failStreak++
		idx := led.failStreak - 1
		if idx >= len(q.cfg.RetrySchedule) {
			idx = len(q.cfg.RetrySchedule) - 1
		}
		led.retryAt = now.Add(q.cfg.RetrySchedule[idx])
		led.lastError = it.LastError
	}
	switch it.Status {
	case StatusSent:
		led.sent++
		led.queued--
	case StatusBounced:
		led.bounced++
		led.queued--
	case StatusExpired:
		led.expired++
		led.queued--
	}
}

// rescheduleLocked applies the retry schedule, journalling the attempt
// (or the expiry it causes). Caller holds q.mu.
func (q *Queue) rescheduleLocked(it *Item, now time.Time) {
	idx := it.Attempts - 1
	if it.Attempts >= q.cfg.MaxAttempts || idx >= len(q.cfg.RetrySchedule) {
		it.Status = StatusExpired
		q.rec.Terminal(now, it.Challenge.MsgID, spool.StatusExpired, string(it.LastClass), it.LastError, it.Attempts)
		return
	}
	it.NextTry = now.Add(q.cfg.RetrySchedule[idx])
	q.rec.Attempt(now, it.Challenge.MsgID, string(it.LastClass), it.LastError, it.Attempts, it.NextTry)
}

// Stats counts items per state.
func (q *Queue) Stats() map[Status]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[Status]int)
	for _, it := range q.items {
		out[it.Status]++
	}
	return out
}

// ErrorClasses counts items per last-recorded error class, skipping
// items that never failed.
func (q *Queue) ErrorClasses() map[ErrClass]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[ErrClass]int)
	for _, it := range q.items {
		if it.LastClass != ClassNone {
			out[it.LastClass]++
		}
	}
	return out
}

// Items returns a snapshot of the queue.
func (q *Queue) Items() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Item, len(q.items))
	for i, it := range q.items {
		out[i] = *it
	}
	return out
}

// DomainStats returns the per-destination-domain health ledgers in
// domain order.
func (q *Queue) DomainStats() []DomainStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DomainStats, 0, len(q.domains))
	for name, led := range q.domains {
		out = append(out, DomainStats{
			Domain:     name,
			Queued:     led.queued,
			Sent:       led.sent,
			Bounced:    led.bounced,
			Expired:    led.expired,
			Breaker:    led.breaker.Stats(),
			FailStreak: led.failStreak,
			RetryAt:    led.retryAt,
			LastError:  led.lastError,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}
