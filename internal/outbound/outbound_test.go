package outbound

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mail"
	"repro/internal/smtp"
)

// smarthost is a test SMTP server that can accept, 4xx or 5xx per
// recipient address.
type smarthost struct {
	mu       sync.Mutex
	accepted []*mail.Message
	tempFail map[string]bool
	permFail map[string]bool
}

func (s *smarthost) ValidateSender(mail.Address) *smtp.Reply { return nil }

func (s *smarthost) ValidateRcpt(_, rcpt mail.Address) *smtp.Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tempFail[rcpt.Key()] {
		return &smtp.Reply{Code: 451, Text: "try later"}
	}
	if s.permFail[rcpt.Key()] {
		return &smtp.Reply{Code: 550, Text: "no such user"}
	}
	return nil
}

func (s *smarthost) Deliver(m *mail.Message) *smtp.Reply {
	s.mu.Lock()
	s.accepted = append(s.accepted, m)
	s.mu.Unlock()
	return nil
}

func startSmarthost(t *testing.T) (*smarthost, string) {
	t.Helper()
	sh := &smarthost{tempFail: map[string]bool{}, permFail: map[string]bool{}}
	srv := smtp.NewServer(smtp.Config{Hostname: "smarthost.example", ReadTimeout: 5 * time.Second}, sh)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(srv.Close)
	return sh, l.Addr().String()
}

func challengeTo(addr string) core.OutboundChallenge {
	return core.OutboundChallenge{
		MsgID:   mail.NewID("q"),
		Token:   "tok-xyz",
		From:    mail.MustParseAddress("challenge@corp.example"),
		To:      mail.MustParseAddress(addr),
		Subject: "original subject",
		URL:     "http://cr.corp.example/challenge/tok-xyz",
		Size:    1800,
	}
}

func newQueue(addr string) *Queue {
	return NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
	})
}

func TestFlushDelivers(t *testing.T) {
	sh, addr := startSmarthost(t)
	q := newQueue(addr)
	q.Enqueue(challengeTo("alice@example.com"))
	q.Enqueue(challengeTo("bob@example.org"))

	n, err := q.Flush()
	if err != nil || n != 2 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	if got := q.Stats()[StatusSent]; got != 2 {
		t.Fatalf("sent = %d", got)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.accepted) != 2 {
		t.Fatalf("smarthost accepted %d", len(sh.accepted))
	}
	body := sh.accepted[0].Body
	for _, want := range []string{"challenge-response spam filter", "http://cr.corp.example/challenge/tok-xyz"} {
		if !strings.Contains(body, want) {
			t.Fatalf("rendered challenge missing %q:\n%s", want, body)
		}
	}
	if sh.accepted[0].Subject == "" || !strings.Contains(sh.accepted[0].Subject, "confirm") {
		t.Fatalf("challenge subject = %q", sh.accepted[0].Subject)
	}
}

func TestPermanentRejectionBounces(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.permFail["ghost@example.com"] = true
	q := newQueue(addr)
	q.Enqueue(challengeTo("ghost@example.com"))
	q.Enqueue(challengeTo("real@example.com"))

	n, err := q.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("terminal = %d, want 2", n)
	}
	st := q.Stats()
	if st[StatusBounced] != 1 || st[StatusSent] != 1 {
		t.Fatalf("stats = %v", st)
	}
	// The bounced item carries the SMTP error.
	for _, it := range q.Items() {
		if it.Status == StatusBounced && !strings.Contains(it.LastError, "550") {
			t.Fatalf("bounce LastError = %q", it.LastError)
		}
	}
}

func TestTemporaryRejectionRetriesAndExpires(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.tempFail[mail.MustParseAddress("busy@example.com").Key()] = true

	now := time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	q := NewQueue(Config{
		Dial:          func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain:    "cr.corp.example",
		RetrySchedule: []time.Duration{time.Minute, time.Minute},
		Now:           func() time.Time { return now },
	})
	q.Enqueue(challengeTo("busy@example.com"))

	// Attempt 1: rescheduled.
	if n, err := q.Flush(); err != nil || n != 0 {
		t.Fatalf("flush1 = %d, %v", n, err)
	}
	if q.Stats()[StatusQueued] != 1 {
		t.Fatalf("stats after flush1 = %v", q.Stats())
	}
	// Not due yet: Flush is a no-op.
	if n, _ := q.Flush(); n != 0 {
		t.Fatalf("premature retry")
	}
	// Attempt 2 and 3: second reschedule, then expiry.
	now = now.Add(2 * time.Minute)
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if n, err := q.Flush(); err != nil || n != 1 {
		t.Fatalf("final flush = %d, %v", n, err)
	}
	if q.Stats()[StatusExpired] != 1 {
		t.Fatalf("stats = %v", q.Stats())
	}
}

func TestDialFailureKeepsQueue(t *testing.T) {
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return nil, errors.New("no route") },
		HeloDomain: "cr.corp.example",
	})
	q.Enqueue(challengeTo("alice@example.com"))
	if _, err := q.Flush(); err == nil {
		t.Fatal("dial failure not reported")
	}
	// Item is still queued and due; a later Flush can deliver it.
	if q.Stats()[StatusQueued] != 1 {
		t.Fatalf("stats = %v", q.Stats())
	}
}

func TestSenderIntegratesWithEngineCallback(t *testing.T) {
	_, addr := startSmarthost(t)
	q := newQueue(addr)
	sender := q.Sender()
	sender(challengeTo("alice@example.com"))
	if q.Stats()[StatusQueued] != 1 {
		t.Fatal("Sender did not enqueue")
	}
}

func TestEmptyFlushNoDial(t *testing.T) {
	dialed := false
	q := NewQueue(Config{
		Dial: func() (*smtp.Client, error) {
			dialed = true
			return nil, errors.New("should not dial")
		},
	})
	if n, err := q.Flush(); n != 0 || err != nil {
		t.Fatalf("empty flush = %d, %v", n, err)
	}
	if dialed {
		t.Fatal("Flush dialed with empty queue")
	}
}

func TestRenderChallengeHeaders(t *testing.T) {
	body := RenderChallenge(challengeTo("alice@example.com"))
	for _, want := range []string{
		"From: challenge@corp.example",
		"To: alice@example.com",
		"Auto-Submitted: auto-replied",
		"X-CR-Token: tok-xyz",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("RenderChallenge missing %q", want)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusQueued: "queued", StatusSent: "sent",
		StatusBounced: "bounced", StatusExpired: "expired",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestErrorClassesDistinguished(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.tempFail[mail.MustParseAddress("busy@example.com").Key()] = true
	sh.permFail["ghost@example.com"] = true
	q := newQueue(addr)
	q.Enqueue(challengeTo("busy@example.com"))
	q.Enqueue(challengeTo("ghost@example.com"))
	q.Enqueue(challengeTo("fine@example.com"))

	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, it := range q.Items() {
		switch it.Challenge.To.Local {
		case "busy":
			if it.LastClass != ClassTempfail || !strings.HasPrefix(it.LastError, "tempfail: 451") {
				t.Errorf("tempfail item: class=%q err=%q", it.LastClass, it.LastError)
			}
		case "ghost":
			if it.LastClass != ClassPermfail || !strings.HasPrefix(it.LastError, "permfail: 550") {
				t.Errorf("permfail item: class=%q err=%q", it.LastClass, it.LastError)
			}
		case "fine":
			if it.LastClass != ClassNone || it.LastError != "" {
				t.Errorf("clean item: class=%q err=%q", it.LastClass, it.LastError)
			}
		}
	}
	classes := q.ErrorClasses()
	if classes[ClassTempfail] != 1 || classes[ClassPermfail] != 1 || len(classes) != 2 {
		t.Errorf("ErrorClasses = %v", classes)
	}
}

func TestExpiredItemRecordsExhaustingClass(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.tempFail[mail.MustParseAddress("busy@example.com").Key()] = true
	now := time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	q := NewQueue(Config{
		Dial:          func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain:    "cr.corp.example",
		RetrySchedule: []time.Duration{time.Minute},
		Now:           func() time.Time { return now },
	})
	q.Enqueue(challengeTo("busy@example.com"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	it := q.Items()[0]
	if it.Status != StatusExpired {
		t.Fatalf("status = %v, want expired", it.Status)
	}
	if it.LastClass != ClassTempfail || !strings.HasPrefix(it.LastError, "tempfail:") {
		t.Errorf("expired item lost its error class: class=%q err=%q", it.LastClass, it.LastError)
	}
}

func TestMaxAttemptsCapsRetrySchedule(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.tempFail[mail.MustParseAddress("busy@example.com").Key()] = true
	now := time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	q := NewQueue(Config{
		Dial:          func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain:    "cr.corp.example",
		RetrySchedule: []time.Duration{time.Minute, time.Minute, time.Minute, time.Minute},
		MaxAttempts:   2,
		Now:           func() time.Time { return now },
	})
	q.Enqueue(challengeTo("busy@example.com"))
	for i := 0; i < 5; i++ {
		if _, err := q.Flush(); err != nil {
			t.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	it := q.Items()[0]
	if it.Status != StatusExpired || it.Attempts != 2 {
		t.Fatalf("status=%v attempts=%d, want expired after 2", it.Status, it.Attempts)
	}
}

func TestInjectedTempfailStorm(t *testing.T) {
	sh, addr := startSmarthost(t)
	inj := faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "smarthost", Kind: faults.KindTempfail},
	}}, 1, clock.Real{})
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		Injector:   inj,
	})
	q.Enqueue(challengeTo("alice@example.com"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	it := q.Items()[0]
	if it.Status != StatusQueued || it.LastClass != ClassTempfail || !strings.HasPrefix(it.LastError, "tempfail: 421") {
		t.Fatalf("injected tempfail: status=%v class=%q err=%q", it.Status, it.LastClass, it.LastError)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.accepted) != 0 {
		t.Fatalf("smarthost accepted %d messages during a 100%% tempfail storm", len(sh.accepted))
	}
}

func TestInjectedOutageFailsBeforeDial(t *testing.T) {
	inj := faults.New(&faults.Plan{Rules: []faults.Rule{
		{Target: "smarthost-dial", Kind: faults.KindOutage},
	}}, 1, clock.Real{})
	dialed := false
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { dialed = true; return nil, errors.New("unreachable") },
		HeloDomain: "cr.corp.example",
		Injector:   inj,
	})
	q.Enqueue(challengeTo("alice@example.com"))
	if _, err := q.Flush(); err == nil {
		t.Fatal("injected outage not reported")
	}
	if dialed {
		t.Fatal("dial attempted during injected outage")
	}
	if q.Stats()[StatusQueued] != 1 {
		t.Fatalf("stats = %v", q.Stats())
	}
}

func TestBoundedQueueDefersOverflow(t *testing.T) {
	sh, addr := startSmarthost(t)
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
		MaxQueued:  2,
	})
	for i := 0; i < 5; i++ {
		q.Enqueue(challengeTo(fmt.Sprintf("sender%d@example.com", i)))
	}
	if got := q.Deferred(); got != 3 {
		t.Fatalf("Deferred = %d, want 3", got)
	}
	if got := q.Stats()[StatusQueued]; got != 2 {
		t.Fatalf("queued = %d, want 2 (bounded)", got)
	}
	// Each Flush delivers the active items and promotes deferred ones:
	// nothing is ever dropped, generation is just time-shifted.
	for i := 0; i < 3; i++ {
		if _, err := q.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Deferred(); got != 0 {
		t.Fatalf("Deferred after flushes = %d, want 0", got)
	}
	if got := q.Stats()[StatusSent]; got != 5 {
		t.Fatalf("sent = %d, want all 5", got)
	}
	if got := len(sh.accepted); got != 5 {
		t.Fatalf("smarthost saw %d messages, want 5", got)
	}
	// FIFO: the deferred challenges arrive in enqueue order.
	for i, m := range sh.accepted {
		want := fmt.Sprintf("sender%d@example.com", i)
		if m.Rcpt.String() != want {
			t.Fatalf("delivery %d went to %s, want %s", i, m.Rcpt, want)
		}
	}
}

func TestFlushAllIgnoresRetryTimers(t *testing.T) {
	sh, addr := startSmarthost(t)
	sh.tempFail[mail.MustParseAddress("busy@example.com").Key()] = true
	q := NewQueue(Config{
		Dial:       func() (*smtp.Client, error) { return smtp.Dial(addr, 2*time.Second) },
		HeloDomain: "cr.corp.example",
	})
	q.Enqueue(challengeTo("busy@example.com"))
	if _, err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats()[StatusQueued]; got != 1 {
		t.Fatalf("queued = %d, want 1 (rescheduled)", got)
	}
	// A normal Flush skips the item (NextTry is in the future); the
	// drain path's FlushAll attempts it anyway.
	if n, _ := q.Flush(); n != 0 {
		t.Fatalf("Flush attempted a not-yet-due item (%d terminal)", n)
	}
	sh.tempFail = map[string]bool{}
	if _, err := q.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats()[StatusSent]; got != 1 {
		t.Fatalf("sent = %d, want 1 after FlushAll", got)
	}
}
