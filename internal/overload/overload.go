// Package overload implements admission control for the CR gateway: an
// adaptive concurrency limiter (AIMD on observed per-message service
// latency against a target), a bounded FIFO admission queue with
// deadline-based shedding, and a strictly fail-safe shed policy.
//
// The cardinal rule of the studied product is that legitimate mail must
// never be silently lost, and overload control inherits it: a shed
// message is *tempfailed* (SMTP 421/451), never dropped. Compliant MTAs
// retry tempfails on a backoff schedule — the same contract greylisting
// already exploits — so shedding converts an overload burst into a
// time-shifted delivery, not a loss. Every shed decision is emitted as a
// maillog "overload" event carrying the reason, so the log-crawling
// measurement pipeline (§2) can account for shed traffic exactly like
// any other disposition.
//
// The limiter is classic AIMD keyed on service latency: completions
// under the target grow the concurrency limit additively (+increase/limit
// per completion, ≈ +increase per window), completions over the target
// shrink it multiplicatively (×backoff), at most once per cooldown so a
// burst of equally-slow completions at one instant counts as a single
// congestion signal. Queued admissions carry a deadline; because every
// deadline is enqueue-time + a fixed patience, deadlines are monotone
// along the queue and expired entries are always at the head — a queued
// item past its deadline is shed whole, never half-processed.
//
// The controller is clock-injected: cmd/crserver runs it on the wall
// clock, the fleet simulation runs one controller per company lane on
// the lane's virtual clock, which keeps the surge experiment
// bit-for-bit deterministic for any worker count.
package overload

import (
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/maillog"
)

// Reason says why an admission was shed.
type Reason string

// Shed reasons, attached to maillog overload events and metrics.
const (
	// ReasonLimit: concurrency at limit and no queue space configured.
	ReasonLimit Reason = "limit"
	// ReasonQueueFull: the bounded admission queue is at capacity.
	ReasonQueueFull Reason = "queue-full"
	// ReasonDeadline: the item waited past its queue deadline.
	ReasonDeadline Reason = "deadline"
	// ReasonDraining: the controller is draining for shutdown.
	ReasonDraining Reason = "draining"
)

// Config parameterises a Controller. Zero fields take the defaults
// documented on each field.
type Config struct {
	// MinLimit is the AIMD floor (default 2). The limiter never backs
	// off below it, so progress is guaranteed even under sustained
	// congestion.
	MinLimit int
	// MaxLimit is the AIMD ceiling (default 256).
	MaxLimit int
	// InitialLimit seeds the limiter (default 16, clamped to
	// [MinLimit, MaxLimit]).
	InitialLimit int
	// TargetLatency is the per-message service-latency target (default
	// 250ms). Completions above it are congestion signals.
	TargetLatency time.Duration
	// Increase is the additive-increase constant (default 1): the limit
	// grows by Increase/limit per under-target completion, ≈ +Increase
	// per full window of completions.
	Increase float64
	// Backoff is the multiplicative-decrease factor in (0,1) (default
	// 0.7).
	Backoff float64
	// Cooldown is the minimum time between multiplicative decreases
	// (default TargetLatency). It makes one burst of slow completions
	// count as one congestion signal.
	Cooldown time.Duration
	// QueueCapacity bounds the admission queue (default 64). Negative
	// disables queueing: over-limit submissions shed immediately with
	// ReasonLimit.
	QueueCapacity int
	// QueueDeadline is how long a queued admission may wait before it
	// is shed (default 30s).
	QueueDeadline time.Duration
	// Clock supplies time (default clock.Real).
	Clock clock.Clock
	// Name labels emitted maillog events (the company/installation).
	Name string
	// EventSink receives overload events; nil discards them. It is
	// called outside the controller lock.
	EventSink func(maillog.Event)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MinLimit <= 0 {
		out.MinLimit = 2
	}
	if out.MaxLimit <= 0 {
		out.MaxLimit = 256
	}
	if out.MaxLimit < out.MinLimit {
		out.MaxLimit = out.MinLimit
	}
	if out.InitialLimit <= 0 {
		out.InitialLimit = 16
	}
	if out.InitialLimit < out.MinLimit {
		out.InitialLimit = out.MinLimit
	}
	if out.InitialLimit > out.MaxLimit {
		out.InitialLimit = out.MaxLimit
	}
	if out.TargetLatency <= 0 {
		out.TargetLatency = 250 * time.Millisecond
	}
	if out.Increase <= 0 {
		out.Increase = 1
	}
	if out.Backoff <= 0 || out.Backoff >= 1 {
		out.Backoff = 0.7
	}
	if out.Cooldown <= 0 {
		out.Cooldown = out.TargetLatency
	}
	if out.QueueCapacity == 0 {
		out.QueueCapacity = 64
	} else if out.QueueCapacity < 0 {
		out.QueueCapacity = 0 // negative: queueing disabled
	}
	if out.QueueDeadline <= 0 {
		out.QueueDeadline = 30 * time.Second
	}
	if out.Clock == nil {
		out.Clock = clock.Real{}
	}
	return out
}

// delayBuckets are the fixed exponential upper bounds of the
// admission-delay histogram. Fixed global bounds make quantiles
// deterministic and mergeable across controllers.
var delayBuckets = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
	10 * time.Second, 30 * time.Second, 1 * time.Minute,
	5 * time.Minute, 30 * time.Minute,
}

// numDelayBuckets includes the overflow bucket.
const numDelayBuckets = 18

// ticket is a queued admission.
type ticket struct {
	id       string
	enqueued time.Time
	deadline time.Time
	onGrant  func(g *Grant, waited time.Duration)
	onShed   func(Reason)
	done     bool // granted, shed, or cancelled
}

// Grant is a held admission slot. Release it exactly once when the
// message's service completes; the elapsed time feeds the AIMD limiter.
type Grant struct {
	c        *Controller
	acquired time.Time
	released bool
}

// Release returns the slot, records acquired→now as the service-latency
// observation, and grants queued admissions freed capacity allows.
// Releasing twice is a no-op.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	c := g.c
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	if g.released {
		c.mu.Unlock()
		return
	}
	g.released = true
	c.inflight--
	c.observeLocked(now.Sub(g.acquired), now)
	cbs := c.grantNextLocked(now)
	c.mu.Unlock()
	c.run(cbs)
}

// Outcome is the immediate result of Submit.
type Outcome struct {
	// Granted is non-nil when the submission was admitted immediately.
	Granted *Grant
	// Queued is true when the submission is waiting in the admission
	// queue; its callbacks will fire later.
	Queued bool
	// Reason is set when the submission was shed immediately.
	Reason Reason

	t *ticket // for cancel; nil unless Queued
}

// Shed reports whether the submission was refused.
func (o Outcome) Shed() bool { return o.Granted == nil && !o.Queued }

// Controller is the admission controller. All methods are safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu           sync.Mutex
	limit        float64
	inflight     int
	queue        []*ticket
	draining     bool
	lastDecrease time.Time
	decreaseSet  bool

	// metrics (under mu)
	admittedNow    int64
	admittedQueued int64
	shed           map[Reason]int64
	maxQueueDepth  int
	observations   int64
	decreases      int64
	delayHist      [numDelayBuckets]int64

	// callback trampoline (own lock; never held across c.mu)
	cbMu      sync.Mutex
	cbQueue   []func()
	cbRunning bool
}

// New returns a Controller for cfg.
func New(cfg Config) *Controller {
	c := cfg.withDefaults()
	return &Controller{
		cfg:   c,
		limit: float64(c.InitialLimit),
		shed:  make(map[Reason]int64),
	}
}

// Limit returns the current integer concurrency limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.intLimitLocked()
}

func (c *Controller) intLimitLocked() int {
	l := int(c.limit)
	if l < 1 {
		l = 1
	}
	return l
}

// InFlight returns the number of currently held grants.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// QueueDepth returns the number of queued admissions.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// QueueDeadline returns the effective queued-admission deadline, so
// callers driving virtual time can schedule an explicit Expire just
// past it (lazy expiry only runs on Submit/Release traffic).
func (c *Controller) QueueDeadline() time.Duration { return c.cfg.QueueDeadline }

// Draining reports whether StartDrain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Pressured reports whether the controller is under enough load that
// optional work (the probe filter chain) should be shed: the admission
// queue is at least half full. core.Engine consults it through
// SetPressure so filter work degrades before admissions do.
func (c *Controller) Pressured() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)*2 >= c.cfg.QueueCapacity
}

// Submit asks for an admission slot for message id. The outcome is one
// of: granted now (use and Release the Grant), queued (onGrant or
// onShed fires later, from whichever call frees capacity or expires the
// deadline), or shed now (Outcome.Reason set; onShed is NOT called for
// immediate sheds — the caller already has the reason in hand).
// Callbacks run outside the controller lock and may re-enter it.
func (c *Controller) Submit(id string, onGrant func(g *Grant, waited time.Duration), onShed func(Reason)) Outcome {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	if c.draining {
		c.shedLocked(ReasonDraining)
		depth := len(c.queue)
		c.mu.Unlock()
		c.emit(now, id, ReasonDraining, depth)
		return Outcome{Reason: ReasonDraining}
	}
	// Expire queue heads first so stale entries never hold space
	// against a fresh submission (deadlines are monotone, so expired
	// entries are exactly the prefix), then grant queued waiters any
	// freed capacity: admission is strictly FIFO — a fresh submission
	// never jumps an occupied queue.
	cbs := c.expireLocked(now)
	cbs = append(cbs, c.grantNextLocked(now)...)
	if c.inflight < c.intLimitLocked() && len(c.queue) == 0 {
		c.inflight++
		c.admittedNow++
		c.delayHist[bucketFor(0)]++
		g := &Grant{c: c, acquired: now}
		c.mu.Unlock()
		c.run(cbs)
		return Outcome{Granted: g}
	}
	if len(c.queue) >= c.cfg.QueueCapacity {
		reason := ReasonQueueFull
		if c.cfg.QueueCapacity == 0 {
			reason = ReasonLimit // queueing disabled: at-limit is the cause
		}
		c.shedLocked(reason)
		depth := len(c.queue)
		c.mu.Unlock()
		c.run(cbs)
		c.emit(now, id, reason, depth)
		return Outcome{Reason: reason}
	}
	t := &ticket{
		id:       id,
		enqueued: now,
		deadline: now.Add(c.cfg.QueueDeadline),
		onGrant:  onGrant,
		onShed:   onShed,
	}
	c.queue = append(c.queue, t)
	if len(c.queue) > c.maxQueueDepth {
		c.maxQueueDepth = len(c.queue)
	}
	c.mu.Unlock()
	c.run(cbs)
	return Outcome{Queued: true, t: t}
}

// Cancel withdraws a queued submission (e.g. the waiting SMTP session
// gave up). It returns true if the ticket was still queued — the caller
// owns the shed decision — and false if it was already granted or shed,
// in which case the ticket's callback has fired or will fire.
func (c *Controller) Cancel(o Outcome) bool {
	if o.t == nil {
		return false
	}
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	if o.t.done {
		c.mu.Unlock()
		return false
	}
	o.t.done = true
	for i, q := range c.queue {
		if q == o.t {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	c.shedLocked(ReasonDeadline)
	depth := len(c.queue)
	c.mu.Unlock()
	c.emit(now, o.t.id, ReasonDeadline, depth)
	return true
}

// Expire sheds every queued admission whose deadline has passed. The
// simulation schedules a call just after each enqueue's deadline;
// live controllers expire lazily on Submit/Release traffic.
func (c *Controller) Expire() {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	cbs := c.expireLocked(now)
	c.mu.Unlock()
	c.run(cbs)
}

// waitResult carries a Wait outcome from the callbacks to the waiter.
type waitResult struct {
	g      *Grant
	reason Reason
}

// Wait submits and blocks until the admission is granted or shed,
// returning (grant, "", true) or (nil, reason, false). It is the entry
// point for callers on real OS threads — the live SMTP gateway — and
// uses a real timer to bound the wait at the queue deadline, so it must
// only be used with a real clock; the simulation drives Submit's
// callbacks from its virtual scheduler instead.
func (c *Controller) Wait(id string) (*Grant, Reason, bool) {
	ch := make(chan waitResult, 1)
	out := c.Submit(id,
		func(g *Grant, _ time.Duration) { ch <- waitResult{g: g} },
		func(r Reason) { ch <- waitResult{reason: r} })
	switch {
	case out.Granted != nil:
		return out.Granted, "", true
	case !out.Queued:
		return nil, out.Reason, false
	}
	timer := time.NewTimer(c.cfg.QueueDeadline + 50*time.Millisecond)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.g != nil {
			return res.g, "", true
		}
		return nil, res.reason, false
	case <-timer.C:
		if c.Cancel(out) {
			return nil, ReasonDeadline, false
		}
		// Lost the race: a callback already fired.
		res := <-ch
		if res.g != nil {
			return res.g, "", true
		}
		return nil, res.reason, false
	}
}

// Observe feeds an externally-measured service latency to the AIMD
// limiter (e.g. the engine's own per-message service time when the
// controller fronts a path it cannot wrap with a Grant).
func (c *Controller) Observe(lat time.Duration) {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	c.observeLocked(lat, now)
	cbs := c.grantNextLocked(now)
	c.mu.Unlock()
	c.run(cbs)
}

// StartDrain flips the controller into drain mode: every queued
// admission is shed with ReasonDraining and every future Submit sheds
// immediately, so the SMTP layer can tempfail with 421 while in-flight
// grants finish.
func (c *Controller) StartDrain() {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return
	}
	c.draining = true
	var cbs []func()
	for _, t := range c.queue {
		t := t
		if t.done {
			continue
		}
		t.done = true
		c.shedLocked(ReasonDraining)
		if t.onShed != nil {
			cbs = append(cbs, func() { t.onShed(ReasonDraining) })
		}
		c.emitLater(&cbs, now, t.id, ReasonDraining, 0)
	}
	c.queue = nil
	c.mu.Unlock()
	c.run(cbs)
}

// observeLocked applies one latency sample to the AIMD limiter.
func (c *Controller) observeLocked(lat time.Duration, now time.Time) {
	c.observations++
	if lat > c.cfg.TargetLatency {
		if !c.decreaseSet || now.Sub(c.lastDecrease) >= c.cfg.Cooldown {
			c.limit *= c.cfg.Backoff
			if c.limit < float64(c.cfg.MinLimit) {
				c.limit = float64(c.cfg.MinLimit)
			}
			c.lastDecrease = now
			c.decreaseSet = true
			c.decreases++
		}
		return
	}
	c.limit += c.cfg.Increase / c.limit
	if c.limit > float64(c.cfg.MaxLimit) {
		c.limit = float64(c.cfg.MaxLimit)
	}
}

// grantNextLocked admits queued tickets up to the limit, shedding any
// whose deadline has passed. It returns the callbacks to run after the
// lock is dropped.
func (c *Controller) grantNextLocked(now time.Time) []func() {
	var cbs []func()
	for len(c.queue) > 0 && c.inflight < c.intLimitLocked() {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.done {
			continue
		}
		t.done = true
		if now.After(t.deadline) {
			c.shedLocked(ReasonDeadline)
			if t.onShed != nil {
				t := t
				cbs = append(cbs, func() { t.onShed(ReasonDeadline) })
			}
			c.emitLater(&cbs, now, t.id, ReasonDeadline, len(c.queue))
			continue
		}
		c.inflight++
		c.admittedQueued++
		waited := now.Sub(t.enqueued)
		c.delayHist[bucketFor(waited)]++
		g := &Grant{c: c, acquired: now}
		if t.onGrant != nil {
			t := t
			cbs = append(cbs, func() { t.onGrant(g, waited) })
		}
	}
	return cbs
}

// expireLocked sheds the expired prefix of the queue, returning shed
// callbacks to run outside the lock.
func (c *Controller) expireLocked(now time.Time) []func() {
	var cbs []func()
	for len(c.queue) > 0 {
		t := c.queue[0]
		if t.done {
			c.queue = c.queue[1:]
			continue
		}
		if !now.After(t.deadline) {
			break
		}
		c.queue = c.queue[1:]
		t.done = true
		c.shedLocked(ReasonDeadline)
		if t.onShed != nil {
			t := t
			cbs = append(cbs, func() { t.onShed(ReasonDeadline) })
		}
		c.emitLater(&cbs, now, t.id, ReasonDeadline, len(c.queue))
	}
	return cbs
}

func (c *Controller) shedLocked(r Reason) {
	c.shed[r]++
}

// emit sends one overload event to the sink (outside the lock).
func (c *Controller) emit(now time.Time, id string, r Reason, depth int) {
	sink := c.cfg.EventSink
	if sink == nil {
		return
	}
	sink(maillog.MakeEvent(now, c.cfg.Name, maillog.KindOverload, id,
		"reason", string(r), "queue", itoa(depth)))
}

// emitLater appends an emit to cbs so it runs after the lock drops.
func (c *Controller) emitLater(cbs *[]func(), now time.Time, id string, r Reason, depth int) {
	if c.cfg.EventSink == nil {
		return
	}
	*cbs = append(*cbs, func() { c.emit(now, id, r, depth) })
}

// run executes callbacks outside the controller lock, through a
// trampoline: a callback that re-enters the controller (a Grant
// released inside onGrant) queues follow-on callbacks instead of
// nesting them, so callbacks always fire in strict admission order.
func (c *Controller) run(cbs []func()) {
	if len(cbs) == 0 {
		return
	}
	c.cbMu.Lock()
	c.cbQueue = append(c.cbQueue, cbs...)
	if c.cbRunning {
		c.cbMu.Unlock()
		return
	}
	c.cbRunning = true
	for len(c.cbQueue) > 0 {
		fn := c.cbQueue[0]
		c.cbQueue = c.cbQueue[1:]
		c.cbMu.Unlock()
		fn()
		c.cbMu.Lock()
	}
	c.cbRunning = false
	c.cbMu.Unlock()
}

// itoa is strconv.Itoa without the import churn for small counts.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// bucketFor maps a delay to its histogram bucket index.
func bucketFor(d time.Duration) int {
	i := sort.Search(len(delayBuckets), func(i int) bool { return d <= delayBuckets[i] })
	return i // len(delayBuckets) == overflow bucket
}

// Metrics is a point-in-time snapshot of the controller's counters.
type Metrics struct {
	Limit          float64
	InFlight       int
	QueueDepth     int
	MaxQueueDepth  int
	AdmittedNow    int64
	AdmittedQueued int64
	Shed           map[Reason]int64
	Observations   int64
	Decreases      int64
	DelayHist      [numDelayBuckets]int64
	Draining       bool
}

// Metrics returns a snapshot.
func (c *Controller) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Metrics{
		Limit:          c.limit,
		InFlight:       c.inflight,
		QueueDepth:     len(c.queue),
		MaxQueueDepth:  c.maxQueueDepth,
		AdmittedNow:    c.admittedNow,
		AdmittedQueued: c.admittedQueued,
		Shed:           make(map[Reason]int64, len(c.shed)),
		Observations:   c.observations,
		Decreases:      c.decreases,
		DelayHist:      c.delayHist,
		Draining:       c.draining,
	}
	for k, v := range c.shed {
		m.Shed[k] = v
	}
	return m
}

// ShedTotal sums sheds across reasons.
func (m Metrics) ShedTotal() int64 {
	var n int64
	for _, v := range m.Shed {
		n += v
	}
	return n
}

// Admitted sums immediate and queued admissions.
func (m Metrics) Admitted() int64 { return m.AdmittedNow + m.AdmittedQueued }

// Merge adds other's counters into m (for fleet-wide aggregation).
// Point-in-time gauges take the max (MaxQueueDepth) or sum (QueueDepth,
// InFlight); Limit keeps the minimum, the most conservative lane.
func (m *Metrics) Merge(other Metrics) {
	if m.Shed == nil {
		m.Shed = make(map[Reason]int64)
	}
	if m.Observations == 0 && m.AdmittedNow == 0 && m.AdmittedQueued == 0 && len(m.Shed) == 0 {
		m.Limit = other.Limit
	} else if other.Limit < m.Limit {
		m.Limit = other.Limit
	}
	m.InFlight += other.InFlight
	m.QueueDepth += other.QueueDepth
	if other.MaxQueueDepth > m.MaxQueueDepth {
		m.MaxQueueDepth = other.MaxQueueDepth
	}
	m.AdmittedNow += other.AdmittedNow
	m.AdmittedQueued += other.AdmittedQueued
	for k, v := range other.Shed {
		m.Shed[k] += v
	}
	m.Observations += other.Observations
	m.Decreases += other.Decreases
	for i := range other.DelayHist {
		m.DelayHist[i] += other.DelayHist[i]
	}
}

// DelayQuantile returns the admission-delay quantile q in [0,1] as the
// upper bound of the histogram bucket where the cumulative count
// crosses q — deterministic across runs and worker counts. With no
// samples it returns 0.
func (m Metrics) DelayQuantile(q float64) time.Duration {
	var total int64
	for _, v := range m.DelayHist {
		total += v
	}
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var cum int64
	for i, v := range m.DelayHist {
		cum += v
		if cum > want {
			if i < len(delayBuckets) {
				return delayBuckets[i]
			}
			return delayBuckets[len(delayBuckets)-1] * 2 // overflow bucket
		}
	}
	return delayBuckets[len(delayBuckets)-1] * 2
}
