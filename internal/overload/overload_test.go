package overload

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/maillog"
)

var simStart = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

func simController(t *testing.T, cfg Config) (*Controller, *clock.Sim, *[]maillog.Event) {
	t.Helper()
	clk := clock.NewSim(simStart)
	events := &[]maillog.Event{}
	cfg.Clock = clk
	cfg.Name = "test-co"
	cfg.EventSink = func(e maillog.Event) { *events = append(*events, e) }
	return New(cfg), clk, events
}

func TestImmediateAdmission(t *testing.T) {
	c, _, _ := simController(t, Config{InitialLimit: 2})
	o1 := c.Submit("m1", nil, nil)
	o2 := c.Submit("m2", nil, nil)
	if o1.Granted == nil || o2.Granted == nil {
		t.Fatalf("expected both admitted: %+v %+v", o1, o2)
	}
	if got := c.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	o1.Granted.Release()
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	o1.Granted.Release() // double release is a no-op
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight after double release = %d, want 1", got)
	}
}

func TestQueueingAndFIFOGrant(t *testing.T) {
	c, clk, _ := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 4, QueueDeadline: time.Minute})
	o1 := c.Submit("m1", nil, nil)
	if o1.Granted == nil {
		t.Fatal("first submit not admitted")
	}
	var granted []string
	mk := func(id string) (func(*Grant, time.Duration), func(Reason)) {
		return func(g *Grant, _ time.Duration) {
				granted = append(granted, id)
				g.Release()
			}, func(r Reason) {
				t.Errorf("unexpected shed of %s: %s", id, r)
			}
	}
	for _, id := range []string{"q1", "q2", "q3"} {
		on, sh := mk(id)
		o := c.Submit(id, on, sh)
		if !o.Queued {
			t.Fatalf("submit %s: not queued: %+v", id, o)
		}
	}
	if d := c.QueueDepth(); d != 3 {
		t.Fatalf("QueueDepth = %d, want 3", d)
	}
	clk.Advance(10 * time.Millisecond)
	// Releasing the held grant cascades: q1 granted, its callback
	// releases, q2 granted, and so on — strict FIFO.
	o1.Granted.Release()
	want := []string{"q1", "q2", "q3"}
	if fmt.Sprint(granted) != fmt.Sprint(want) {
		t.Fatalf("grant order = %v, want %v", granted, want)
	}
	m := c.Metrics()
	if m.AdmittedQueued != 3 || m.AdmittedNow != 1 {
		t.Fatalf("admitted now/queued = %d/%d, want 1/3", m.AdmittedNow, m.AdmittedQueued)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c, _, events := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 2, QueueDeadline: time.Minute})
	c.Submit("held", nil, nil)
	c.Submit("q1", nil, nil)
	c.Submit("q2", nil, nil)
	o := c.Submit("spill", nil, nil)
	if !o.Shed() || o.Reason != ReasonQueueFull {
		t.Fatalf("expected queue-full shed, got %+v", o)
	}
	m := c.Metrics()
	if m.Shed[ReasonQueueFull] != 1 || m.MaxQueueDepth != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if len(*events) != 1 {
		t.Fatalf("events = %d, want 1", len(*events))
	}
	e := (*events)[0]
	if e.Kind != maillog.KindOverload || e.MsgID != "spill" || e.Field("reason") != "queue-full" {
		t.Fatalf("bad event: %s", e.Format())
	}
}

func TestDeadlineShedding(t *testing.T) {
	c, clk, events := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 4, QueueDeadline: 30 * time.Second})
	held := c.Submit("held", nil, nil)
	var sheds []Reason
	o := c.Submit("late", func(g *Grant, _ time.Duration) {
		t.Error("late should never be granted")
		g.Release()
	}, func(r Reason) { sheds = append(sheds, r) })
	if !o.Queued {
		t.Fatalf("not queued: %+v", o)
	}
	clk.Advance(31 * time.Second)
	c.Expire()
	if len(sheds) != 1 || sheds[0] != ReasonDeadline {
		t.Fatalf("sheds = %v, want [deadline]", sheds)
	}
	// The expired ticket is gone: releasing the held grant grants nothing.
	held.Granted.Release()
	if len(sheds) != 1 {
		t.Fatalf("sheds after release = %v", sheds)
	}
	found := false
	for _, e := range *events {
		if e.MsgID == "late" && e.Field("reason") == "deadline" {
			found = true
		}
	}
	if !found {
		t.Fatal("no deadline overload event for msg late")
	}
}

func TestDeadlineShedOnLateGrant(t *testing.T) {
	// A queued ticket whose deadline passes is shed at grant time too
	// (never half-processed), even without an explicit Expire call.
	c, clk, _ := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 4, QueueDeadline: 10 * time.Second})
	held := c.Submit("held", nil, nil)
	shed := false
	c.Submit("late", func(g *Grant, _ time.Duration) {
		t.Error("granted past deadline")
		g.Release()
	}, func(r Reason) {
		if r != ReasonDeadline {
			t.Errorf("reason = %s", r)
		}
		shed = true
	})
	clk.Advance(time.Minute)
	held.Granted.Release()
	if !shed {
		t.Fatal("expired ticket not shed on release")
	}
}

func TestAIMD(t *testing.T) {
	c, clk, _ := simController(t, Config{
		InitialLimit: 10, MinLimit: 2, MaxLimit: 20,
		TargetLatency: 100 * time.Millisecond,
		Backoff:       0.5, Cooldown: time.Second,
	})
	// Over-target latency: multiplicative decrease.
	c.Observe(500 * time.Millisecond)
	if l := c.Limit(); l != 5 {
		t.Fatalf("limit after backoff = %d, want 5", l)
	}
	// Second congestion signal inside the cooldown is ignored.
	c.Observe(500 * time.Millisecond)
	if l := c.Limit(); l != 5 {
		t.Fatalf("limit in cooldown = %d, want 5", l)
	}
	clk.Advance(2 * time.Second)
	c.Observe(500 * time.Millisecond)
	if l := c.Limit(); l != 2 {
		t.Fatalf("limit after second backoff = %d, want 2 (floor applied on next)", l)
	}
	// Floor.
	clk.Advance(2 * time.Second)
	c.Observe(500 * time.Millisecond)
	if l := c.Limit(); l != 2 {
		t.Fatalf("limit below floor: %d", l)
	}
	// Additive increase: many fast completions grow the limit.
	for i := 0; i < 1000; i++ {
		c.Observe(10 * time.Millisecond)
	}
	if l := c.Limit(); l != 20 {
		t.Fatalf("limit after recovery = %d, want ceiling 20", l)
	}
	m := c.Metrics()
	if m.Decreases != 3 {
		t.Fatalf("decreases = %d, want 3", m.Decreases)
	}
}

func TestReleaseFeedsAIMD(t *testing.T) {
	c, clk, _ := simController(t, Config{
		InitialLimit: 8, MinLimit: 2,
		TargetLatency: 100 * time.Millisecond, Backoff: 0.5,
	})
	o := c.Submit("slow", nil, nil)
	clk.Advance(time.Second) // service took 1s > 100ms target
	o.Granted.Release()
	if l := c.Limit(); l != 4 {
		t.Fatalf("limit = %d, want 4 after one backoff", l)
	}
}

func TestDrain(t *testing.T) {
	c, _, events := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 4, QueueDeadline: time.Minute})
	held := c.Submit("held", nil, nil)
	var reason Reason
	c.Submit("queued", func(g *Grant, _ time.Duration) {
		t.Error("granted during drain")
		g.Release()
	}, func(r Reason) { reason = r })
	c.StartDrain()
	if reason != ReasonDraining {
		t.Fatalf("queued ticket reason = %q, want draining", reason)
	}
	if o := c.Submit("new", nil, nil); !o.Shed() || o.Reason != ReasonDraining {
		t.Fatalf("submit during drain = %+v", o)
	}
	// In-flight work still completes.
	held.Granted.Release()
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if !c.Draining() {
		t.Fatal("not draining")
	}
	n := 0
	for _, e := range *events {
		if e.Kind == maillog.KindOverload && e.Field("reason") == "draining" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("draining events = %d, want 2", n)
	}
}

func TestCancel(t *testing.T) {
	c, _, _ := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 4, QueueDeadline: time.Minute})
	held := c.Submit("held", nil, nil)
	o := c.Submit("waiting", func(g *Grant, _ time.Duration) {
		t.Error("granted after cancel")
		g.Release()
	}, func(Reason) { t.Error("shed callback after cancel") })
	if !c.Cancel(o) {
		t.Fatal("cancel failed")
	}
	if c.Cancel(o) {
		t.Fatal("double cancel succeeded")
	}
	held.Granted.Release() // must not grant the cancelled ticket
	if m := c.Metrics(); m.Shed[ReasonDeadline] != 1 {
		t.Fatalf("shed = %+v", m.Shed)
	}
}

func TestPressured(t *testing.T) {
	c, _, _ := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 4, QueueDeadline: time.Minute})
	if c.Pressured() {
		t.Fatal("pressured while idle")
	}
	c.Submit("held", nil, nil)
	c.Submit("q1", nil, nil)
	if c.Pressured() {
		t.Fatal("pressured at 1/4 queue")
	}
	c.Submit("q2", nil, nil)
	if !c.Pressured() {
		t.Fatal("not pressured at half queue")
	}
}

func TestDelayHistogramQuantile(t *testing.T) {
	c, clk, _ := simController(t, Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 100, QueueDeadline: time.Hour})
	held := c.Submit("held", nil, nil)
	for i := 0; i < 10; i++ {
		c.Submit(fmt.Sprintf("q%d", i), func(g *Grant, _ time.Duration) { g.Release() }, nil)
	}
	clk.Advance(3 * time.Second)
	held.Granted.Release() // all 10 granted after 3s wait
	m := c.Metrics()
	// 1 immediate (0 wait) + 10 waited 3s: p50 and p99 land in the 5s bucket.
	if q := m.DelayQuantile(0.99); q != 5*time.Second {
		t.Fatalf("p99 = %v, want 5s bucket bound", q)
	}
	if q := m.DelayQuantile(0.0); q != time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms bucket bound", q)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{Limit: 10, AdmittedNow: 5, MaxQueueDepth: 3,
		Shed: map[Reason]int64{ReasonLimit: 2}}
	b := Metrics{Limit: 4, AdmittedQueued: 7, MaxQueueDepth: 9,
		Shed: map[Reason]int64{ReasonLimit: 1, ReasonDeadline: 4}}
	var m Metrics
	m.Merge(a)
	m.Merge(b)
	if m.Limit != 4 || m.Admitted() != 12 || m.MaxQueueDepth != 9 {
		t.Fatalf("merged: %+v", m)
	}
	if m.ShedTotal() != 7 || m.Shed[ReasonDeadline] != 4 {
		t.Fatalf("merged sheds: %+v", m.Shed)
	}
}

func TestWaitRealClock(t *testing.T) {
	// Wait is the live-gateway path: real clock, real goroutines.
	c := New(Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 2, QueueDeadline: 200 * time.Millisecond})
	g, _, ok := c.Wait("first")
	if !ok {
		t.Fatal("first Wait refused")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	got := make(chan bool, 1)
	go func() {
		defer wg.Done()
		g2, _, ok2 := c.Wait("second")
		got <- ok2
		if ok2 {
			g2.Release()
		}
	}()
	// Give the waiter time to queue, then free the slot.
	for c.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	g.Release()
	wg.Wait()
	if !<-got {
		t.Fatal("queued Wait was not granted after release")
	}
}

func TestWaitDeadlineTimeout(t *testing.T) {
	c := New(Config{InitialLimit: 1, MinLimit: 1, QueueCapacity: 2, QueueDeadline: 50 * time.Millisecond})
	g, _, ok := c.Wait("held")
	if !ok {
		t.Fatal("first Wait refused")
	}
	defer g.Release()
	_, reason, ok := c.Wait("starved")
	if ok || reason != ReasonDeadline {
		t.Fatalf("Wait = ok=%v reason=%s, want deadline shed", ok, reason)
	}
}

func TestConcurrentSubmitRelease(t *testing.T) {
	// Hammer the controller from many goroutines under -race.
	c := New(Config{InitialLimit: 4, MaxLimit: 8, QueueCapacity: 16,
		QueueDeadline: time.Second, TargetLatency: time.Hour})
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted, shed := 0, 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				g, _, ok := c.Wait(fmt.Sprintf("w%d-%d", worker, j))
				mu.Lock()
				if ok {
					granted++
				} else {
					shed++
				}
				mu.Unlock()
				if ok {
					g.Release()
				}
			}
		}(i)
	}
	wg.Wait()
	if granted+shed != 1600 {
		t.Fatalf("granted %d + shed %d != 1600", granted, shed)
	}
	if c.InFlight() != 0 || c.QueueDepth() != 0 {
		t.Fatalf("leaked state: inflight=%d queue=%d", c.InFlight(), c.QueueDepth())
	}
	m := c.Metrics()
	if m.Admitted() != int64(granted) || m.ShedTotal() != int64(shed) {
		t.Fatalf("metrics disagree: %+v vs granted=%d shed=%d", m, granted, shed)
	}
}
