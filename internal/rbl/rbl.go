// Package rbl simulates the DNS-blocklist ecosystem the paper's CR product
// both consumes and suffers from.
//
// Two roles:
//
//   - As a *filter input* (§2, §5.2): the product queries an IP blacklist
//     (SpamHaus in the study) for every gray message's client IP and drops
//     listed senders — 4,973,755 of the study's messages.
//
//   - As a *hazard* (§5.1): challenges sent in response to spoofed senders
//     can land in spamtraps; trap operators feed blocklists, so the
//     challenge server's own IP gets listed and its outgoing mail bounced.
//     The paper probes eight public lists (Barracuda, SpamCop, SpamHaus,
//     Cannibal, Orbit, SORBS, CBL, Surriel) every 4 hours for 132 days.
//
// Provider models one blocklist with a trap-driven listing policy and
// TTL-based delisting. Trap hits are reported through a TrapRegistry which
// fans them out to all subscribed providers, mirroring how real traps feed
// multiple lists.
package rbl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/mail"
)

// Policy controls how a provider converts spamtrap hits into listings.
type Policy struct {
	// HitThreshold is the number of trap hits within Window required to
	// list an IP. Real lists differ wildly in sensitivity; the fleet
	// experiment instantiates providers across this spectrum.
	HitThreshold int
	// Window is the sliding window over which hits are counted.
	Window time.Duration
	// ListingTTL is how long a listing lasts without further hits. Further
	// hits while listed extend the listing (as CBL-style lists do).
	ListingTTL time.Duration
}

// DefaultPolicy resembles a mid-sensitivity list: three hits in a day,
// listed for three days.
func DefaultPolicy() Policy {
	return Policy{HitThreshold: 3, Window: 24 * time.Hour, ListingTTL: 72 * time.Hour}
}

// DefaultQueryTimeout is the per-query deadline injected latency is
// compared against on the Query path.
const DefaultQueryTimeout = 3 * time.Second

// Provider is one simulated DNS blocklist. It is safe for concurrent
// use. Lookups (IsListed, Query, History) are pure reads under an
// RWMutex read lock; all listing-state mutations happen in ReportTrapHit,
// AddStatic and Sweep, so concurrent readers never serialize on each
// other — the property the fleet's parallel lanes lean on.
type Provider struct {
	name   string
	policy Policy
	clk    clock.Clock

	mu       sync.RWMutex
	inj      faults.Injector        // optional fault source for Query
	hits     map[string][]time.Time // recent trap hits per IP
	listings map[string]time.Time   // IP -> listed-until
	manual   map[string]bool        // permanently listed (known spammers)
	history  map[string][]Interval  // completed + open listing intervals
	stale    atomic.Int64           // queries answered from "stale" data
	// gen counts listing-state mutations (new listings, sweeps, static
	// adds, injector changes) so a memoizing lookup layer can invalidate
	// on blacklist/delist events instead of polling.
	gen atomic.Uint64
}

// Interval is a half-open listing period; Until is zero while still listed.
type Interval struct {
	From  time.Time
	Until time.Time
}

// NewProvider returns a provider with the given name and policy.
func NewProvider(name string, policy Policy, clk clock.Clock) *Provider {
	return &Provider{
		name:     name,
		policy:   policy,
		clk:      clk,
		hits:     make(map[string][]time.Time),
		listings: make(map[string]time.Time),
		manual:   make(map[string]bool),
		history:  make(map[string][]Interval),
	}
}

// Name returns the provider's name.
func (p *Provider) Name() string { return p.name }

// SetInjector installs a fault injector consulted on the Query path
// (target "rbl:<name>"). IsListed — the ground-truth view used by remote
// servers screening their own inbound mail — is deliberately unaffected:
// faults model the CR installation's lookup channel, not the listing
// database itself. Pass nil to clear.
func (p *Provider) SetInjector(inj faults.Injector) {
	p.mu.Lock()
	p.inj = inj
	p.mu.Unlock()
	p.gen.Add(1)
}

// Gen returns the listing-state generation; it increments whenever the
// answer Query could give for some IP changes (new listing, sweep,
// static add, injector swap). Cache layers compare generations per
// lookup (legacy mode) or use it as a store-after-miss guard (explicit
// invalidation mode).
func (p *Provider) Gen() uint64 { return p.gen.Load() }

// Query is the fallible lookup the CR filter chain uses: it consults the
// injector and returns an error for an injected outage/timeout, a stale
// (always-unlisted) answer for KindStale, and the true listing state
// otherwise.
func (p *Provider) Query(ip string) (bool, error) {
	p.mu.RLock()
	inj := p.inj
	p.mu.RUnlock()
	if inj != nil {
		d := inj.Decide("rbl:"+p.name, DefaultQueryTimeout)
		if d.Err != nil {
			return false, fmt.Errorf("rbl: %s query: %w", p.name, d.Err)
		}
		if d.Kind == faults.KindStale {
			p.stale.Add(1)
			return false, nil
		}
	}
	return p.IsListed(ip), nil
}

// StaleAnswers returns how many queries were served from injected stale
// data (and therefore silently answered "not listed").
func (p *Provider) StaleAnswers() int64 { return p.stale.Load() }

// AddStatic permanently lists ip — used to seed the providers with the
// "known spammer" population that the product's RBL filter catches.
func (p *Provider) AddStatic(ip string) {
	p.mu.Lock()
	p.manual[ip] = true
	p.mu.Unlock()
	p.gen.Add(1)
}

// ReportTrapHit records that ip delivered a message to a spamtrap and
// lists the IP if the policy threshold is crossed.
func (p *Provider) ReportTrapHit(ip string) {
	now := p.clk.Now()
	p.mu.Lock()
	defer p.mu.Unlock()

	// Slide the window.
	recent := p.hits[ip][:0]
	for _, t := range p.hits[ip] {
		if now.Sub(t) <= p.policy.Window {
			recent = append(recent, t)
		}
	}
	recent = append(recent, now)
	p.hits[ip] = recent

	if until, listed := p.listings[ip]; listed && until.After(now) {
		// Already listed: extend. No generation bump — extending a live
		// listing further into the future cannot change the answer Query
		// gives for any IP right now, so cached memos stay valid. (Bumping
		// here used to flush the whole RBL cache on nearly every trap hit
		// from an already-listed botnet IP, collapsing the hit rate to ~5%.)
		p.listings[ip] = now.Add(p.policy.ListingTTL)
		return
	}
	if len(recent) >= p.policy.HitThreshold {
		// Re-listing over an expired-but-unswept entry: close the stale
		// interval at its old expiry before opening a new one.
		if until, ok := p.listings[ip]; ok && !until.After(now) {
			p.closeIntervalLocked(ip, until)
		}
		p.listings[ip] = now.Add(p.policy.ListingTTL)
		p.history[ip] = append(p.history[ip], Interval{From: now})
		p.gen.Add(1)
	}
}

// IsListed reports whether ip is currently listed. It is a pure read: an
// expired listing answers false immediately, and its removal (history
// bookkeeping, generation bump) is deferred to the next Sweep — so
// concurrent lookups share a read lock and never mutate provider state.
func (p *Provider) IsListed(ip string) bool {
	now := p.clk.Now()
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.manual[ip] {
		return true
	}
	until, ok := p.listings[ip]
	return ok && until.After(now)
}

// Sweep eagerly removes every listing that has expired at now, closing
// its history interval at the expiry time, and returns the delisted IPs
// sorted. A single generation bump covers the whole batch, so cache
// layers invalidate once per sweep instead of once per lazy delist. The
// fleet calls Sweep at fired epoch barriers (while every lane is
// parked); standalone deployments may call it from a housekeeping tick
// or rely on the pure-read expiry in IsListed alone.
func (p *Provider) Sweep(now time.Time) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for ip, until := range p.listings {
		if !until.After(now) {
			delete(p.listings, ip)
			p.closeIntervalLocked(ip, until)
			out = append(out, ip)
		}
	}
	if len(out) > 0 {
		sort.Strings(out)
		p.gen.Add(1)
	}
	return out
}

// closeIntervalLocked closes ip's open history interval at until.
// Caller holds p.mu.
func (p *Provider) closeIntervalLocked(ip string, until time.Time) {
	if h := p.history[ip]; len(h) > 0 && h[len(h)-1].Until.IsZero() {
		h[len(h)-1].Until = until
	}
}

// History returns the listing intervals recorded for ip, closing any
// still-open interval at the current listed-until time for reporting.
func (p *Provider) History(ip string) []Interval {
	p.mu.RLock()
	defer p.mu.RUnlock()
	h := p.history[ip]
	out := make([]Interval, len(h))
	copy(out, h)
	for i := range out {
		if out[i].Until.IsZero() {
			if until, ok := p.listings[ip]; ok {
				out[i].Until = until
			} else {
				out[i].Until = p.clk.Now()
			}
		}
	}
	return out
}

// TrapRegistry is the set of spamtrap addresses and the providers they
// feed. Trap addresses look like ordinary mailboxes; a CR system cannot
// tell it is challenging a trap — that is precisely the §5.1 hazard.
type TrapRegistry struct {
	mu        sync.RWMutex
	traps     map[string]bool // address key -> is a trap
	providers []*Provider
	hits      int64
}

// NewTrapRegistry returns an empty registry feeding the given providers.
func NewTrapRegistry(providers ...*Provider) *TrapRegistry {
	return &TrapRegistry{traps: make(map[string]bool), providers: providers}
}

// AddTrap registers addr as a spamtrap.
func (t *TrapRegistry) AddTrap(addr mail.Address) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traps[addr.Key()] = true
}

// IsTrap reports whether addr is a registered trap.
func (t *TrapRegistry) IsTrap(addr mail.Address) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.traps[addr.Key()]
}

// Hit records a delivery from srcIP to the trap addr, feeding every
// subscribed provider. It is a no-op if addr is not a trap. Returns
// whether a trap was hit.
func (t *TrapRegistry) Hit(addr mail.Address, srcIP string) bool {
	t.mu.RLock()
	isTrap := t.traps[addr.Key()]
	providers := t.providers
	t.mu.RUnlock()
	if !isTrap {
		return false
	}
	t.mu.Lock()
	t.hits++
	t.mu.Unlock()
	for _, p := range providers {
		p.ReportTrapHit(srcIP)
	}
	return true
}

// Hits returns the total number of trap hits recorded.
func (t *TrapRegistry) Hits() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.hits
}

// Count returns the number of registered traps.
func (t *TrapRegistry) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.traps)
}

// Checker reproduces the paper's §5.1 measurement script: it polls a set
// of providers for a set of IPs on a fixed period (the paper used 4 hours
// for 132 days) and accumulates, per IP, the number of polls at which the
// IP appeared on at least one list.
type Checker struct {
	providers []*Provider

	mu      sync.Mutex
	polls   int
	listedN map[string]int // IP -> #polls listed on >=1 provider
	byProv  map[string]map[string]int
}

// NewChecker returns a Checker over the given providers.
func NewChecker(providers ...*Provider) *Checker {
	return &Checker{
		providers: providers,
		listedN:   make(map[string]int),
		byProv:    make(map[string]map[string]int),
	}
}

// Poll queries every provider for every IP once, updating counters.
// Duplicate IPs in the slice (e.g. a shared challenge/mail address) are
// counted once.
func (c *Checker) Poll(ips []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	seen := make(map[string]bool, len(ips))
	for _, ip := range ips {
		if seen[ip] {
			continue
		}
		seen[ip] = true
		any := false
		for _, p := range c.providers {
			if p.IsListed(ip) {
				any = true
				m := c.byProv[p.Name()]
				if m == nil {
					m = make(map[string]int)
					c.byProv[p.Name()] = m
				}
				m[ip]++
			}
		}
		if any {
			c.listedN[ip]++
		}
	}
}

// Polls returns the number of Poll calls so far.
func (c *Checker) Polls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}

// ListedFraction returns, for ip, the fraction of polls at which it was
// listed on at least one provider.
func (c *Checker) ListedFraction(ip string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.polls == 0 {
		return 0
	}
	return float64(c.listedN[ip]) / float64(c.polls)
}

// ListedDays converts the listed-poll count for ip into equivalent days
// given the polling period.
func (c *Checker) ListedDays(ip string, period time.Duration) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.listedN[ip]) * period.Hours() / 24
}

// IPs returns all IPs that were listed at least once, sorted.
func (c *Checker) IPs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.listedN))
	for ip := range c.listedN {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// StandardProviders builds the eight-list panel from §5.1 with policies
// spanning aggressive (CBL-like, 1 hit) to conservative (5 hits). The
// returned slice order matches the paper's enumeration.
func StandardProviders(clk clock.Clock) []*Provider {
	mk := func(name string, thr int, window, ttl time.Duration) *Provider {
		return NewProvider(name, Policy{HitThreshold: thr, Window: window, ListingTTL: ttl}, clk)
	}
	return []*Provider{
		mk("barracuda", 2, 24*time.Hour, 48*time.Hour),
		mk("spamcop", 2, 24*time.Hour, 24*time.Hour),
		mk("spamhaus", 3, 24*time.Hour, 72*time.Hour),
		mk("cannibal", 1, 48*time.Hour, 7*24*time.Hour),
		mk("orbit", 4, 24*time.Hour, 48*time.Hour),
		mk("sorbs", 3, 48*time.Hour, 96*time.Hour),
		mk("cbl", 1, 24*time.Hour, 24*time.Hour),
		mk("surriel", 5, 24*time.Hour, 48*time.Hour),
	}
}
