package rbl

import (
	"fmt"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

var t0 = time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC)

func TestStaticListing(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", DefaultPolicy(), clk)
	p.AddStatic("203.0.113.1")
	if !p.IsListed("203.0.113.1") {
		t.Fatal("static IP not listed")
	}
	if p.IsListed("203.0.113.2") {
		t.Fatal("unknown IP listed")
	}
	// Static listings never expire.
	clk.Advance(365 * 24 * time.Hour)
	if !p.IsListed("203.0.113.1") {
		t.Fatal("static listing expired")
	}
}

func TestThresholdListing(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", Policy{HitThreshold: 3, Window: time.Hour, ListingTTL: 24 * time.Hour}, clk)
	ip := "198.51.100.5"
	p.ReportTrapHit(ip)
	p.ReportTrapHit(ip)
	if p.IsListed(ip) {
		t.Fatal("listed below threshold")
	}
	p.ReportTrapHit(ip)
	if !p.IsListed(ip) {
		t.Fatal("not listed at threshold")
	}
}

func TestWindowSliding(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", Policy{HitThreshold: 3, Window: time.Hour, ListingTTL: 24 * time.Hour}, clk)
	ip := "198.51.100.6"
	p.ReportTrapHit(ip)
	p.ReportTrapHit(ip)
	clk.Advance(2 * time.Hour) // first two hits age out of the window
	p.ReportTrapHit(ip)
	if p.IsListed(ip) {
		t.Fatal("hits outside window counted")
	}
}

func TestListingExpiry(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 24 * time.Hour}, clk)
	ip := "198.51.100.7"
	p.ReportTrapHit(ip)
	if !p.IsListed(ip) {
		t.Fatal("not listed")
	}
	clk.Advance(25 * time.Hour)
	if p.IsListed(ip) {
		t.Fatal("listing did not expire")
	}
}

func TestListingExtension(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 24 * time.Hour}, clk)
	ip := "198.51.100.8"
	p.ReportTrapHit(ip)
	clk.Advance(20 * time.Hour)
	p.ReportTrapHit(ip) // extends to now+24h
	clk.Advance(20 * time.Hour)
	if !p.IsListed(ip) {
		t.Fatal("extension not applied")
	}
	clk.Advance(5 * time.Hour)
	if p.IsListed(ip) {
		t.Fatal("extended listing did not expire")
	}
}

func TestHistoryIntervals(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 10 * time.Hour}, clk)
	ip := "198.51.100.9"
	p.ReportTrapHit(ip)
	clk.Advance(11 * time.Hour)
	// The expired listing was never swept; the re-listing hit must close
	// the stale interval itself.
	p.ReportTrapHit(ip)
	h := p.History(ip)
	if len(h) != 2 {
		t.Fatalf("history intervals = %d, want 2", len(h))
	}
	if !h[0].From.Equal(t0) {
		t.Fatalf("first interval from %v", h[0].From)
	}
	if got := h[0].Until.Sub(h[0].From); got != 10*time.Hour {
		t.Fatalf("first interval length = %v, want 10h", got)
	}
}

func TestTrapRegistry(t *testing.T) {
	clk := clock.NewSim(t0)
	p1 := NewProvider("p1", Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: time.Hour}, clk)
	p2 := NewProvider("p2", Policy{HitThreshold: 2, Window: time.Hour, ListingTTL: time.Hour}, clk)
	reg := NewTrapRegistry(p1, p2)
	trap := mail.MustParseAddress("trap@lure.example")
	reg.AddTrap(trap)

	if !reg.IsTrap(trap) {
		t.Fatal("IsTrap = false for registered trap")
	}
	if reg.IsTrap(mail.MustParseAddress("real@user.example")) {
		t.Fatal("IsTrap = true for non-trap")
	}

	if hit := reg.Hit(mail.MustParseAddress("real@user.example"), "10.0.0.1"); hit {
		t.Fatal("Hit on non-trap returned true")
	}
	if !reg.Hit(trap, "10.0.0.1") {
		t.Fatal("Hit on trap returned false")
	}
	if !p1.IsListed("10.0.0.1") {
		t.Fatal("aggressive provider did not list after 1 hit")
	}
	if p2.IsListed("10.0.0.1") {
		t.Fatal("conservative provider listed after 1 hit")
	}
	if reg.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", reg.Hits())
	}
	if reg.Count() != 1 {
		t.Fatalf("Count = %d, want 1", reg.Count())
	}
}

func TestTrapAddressCaseInsensitive(t *testing.T) {
	reg := NewTrapRegistry()
	reg.AddTrap(mail.MustParseAddress("Trap@Lure.Example"))
	if !reg.IsTrap(mail.MustParseAddress("trap@lure.example")) {
		t.Fatal("trap matching must be case-insensitive")
	}
}

func TestChecker(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("p", Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 12 * time.Hour}, clk)
	c := NewChecker(p)
	ips := []string{"10.0.0.1", "10.0.0.2"}

	p.ReportTrapHit("10.0.0.1")
	// Poll every 4h for 48h: 10.0.0.1 listed for 12h => 3 of 12 polls.
	for i := 0; i < 12; i++ {
		c.Poll(ips)
		clk.Advance(4 * time.Hour)
	}
	if c.Polls() != 12 {
		t.Fatalf("Polls = %d", c.Polls())
	}
	f1 := c.ListedFraction("10.0.0.1")
	if f1 != 3.0/12 {
		t.Fatalf("ListedFraction = %v, want 0.25", f1)
	}
	if c.ListedFraction("10.0.0.2") != 0 {
		t.Fatal("unlisted IP has nonzero fraction")
	}
	if d := c.ListedDays("10.0.0.1", 4*time.Hour); d != 0.5 {
		t.Fatalf("ListedDays = %v, want 0.5", d)
	}
	if got := c.IPs(); len(got) != 1 || got[0] != "10.0.0.1" {
		t.Fatalf("IPs = %v", got)
	}
}

func TestCheckerNoPolls(t *testing.T) {
	c := NewChecker()
	if c.ListedFraction("10.0.0.1") != 0 {
		t.Fatal("fraction with zero polls must be 0")
	}
}

func TestStandardProviders(t *testing.T) {
	clk := clock.NewSim(t0)
	ps := StandardProviders(clk)
	if len(ps) != 8 {
		t.Fatalf("providers = %d, want 8 (the paper's panel)", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name()] {
			t.Fatalf("duplicate provider %q", p.Name())
		}
		names[p.Name()] = true
	}
	// The CBL-like provider must list on a single hit.
	for _, p := range ps {
		if p.Name() == "cbl" {
			p.ReportTrapHit("10.9.9.9")
			if !p.IsListed("10.9.9.9") {
				t.Fatal("cbl-like provider should list on first hit")
			}
		}
	}
}

func TestSweep(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("test", Policy{HitThreshold: 1, Window: time.Hour, ListingTTL: 2 * time.Hour}, clk)
	p.ReportTrapHit("198.51.100.2")
	p.ReportTrapHit("198.51.100.1")
	clk.Advance(time.Hour)
	p.ReportTrapHit("198.51.100.3") // expires an hour after the first two
	gen := p.Gen()

	clk.Advance(90 * time.Minute)
	// Expired but unswept: IsListed is a pure read and answers false
	// without mutating anything.
	if p.IsListed("198.51.100.1") {
		t.Fatal("expired listing still listed")
	}
	if got := p.Gen(); got != gen {
		t.Fatalf("pure-read IsListed bumped gen %d -> %d", gen, got)
	}

	swept := p.Sweep(clk.Now())
	if want := []string{"198.51.100.1", "198.51.100.2"}; !slices.Equal(swept, want) {
		t.Fatalf("swept = %v, want %v", swept, want)
	}
	if got := p.Gen(); got != gen+1 {
		t.Fatalf("sweep gen = %d, want one bump over %d", got, gen)
	}
	if p.IsListed("198.51.100.1") || !p.IsListed("198.51.100.3") {
		t.Fatal("sweep removed the wrong listings")
	}
	// The closed interval ends at the listing's expiry, not the sweep time.
	h := p.History("198.51.100.1")
	if len(h) != 1 || !h[0].Until.Equal(t0.Add(2*time.Hour)) {
		t.Fatalf("history after sweep = %+v", h)
	}
	// Nothing left to sweep: no-op, no gen bump.
	if again := p.Sweep(clk.Now()); len(again) != 0 || p.Gen() != gen+1 {
		t.Fatalf("second sweep = %v gen %d", again, p.Gen())
	}
}

func TestProviderConcurrency(t *testing.T) {
	clk := clock.NewSim(t0)
	p := NewProvider("c", DefaultPolicy(), clk)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			p.ReportTrapHit(fmt.Sprintf("10.0.0.%d", i%8))
		}(i)
		go func(i int) {
			defer wg.Done()
			p.IsListed(fmt.Sprintf("10.0.0.%d", i%8))
		}(i)
	}
	wg.Wait()
}

func BenchmarkIsListed(b *testing.B) {
	clk := clock.NewSim(t0)
	p := NewProvider("bench", DefaultPolicy(), clk)
	for i := 0; i < 256; i++ {
		p.AddStatic(fmt.Sprintf("203.0.113.%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.IsListed("203.0.113.128")
	}
}

func BenchmarkTrapHit(b *testing.B) {
	clk := clock.NewSim(t0)
	ps := StandardProviders(clk)
	reg := NewTrapRegistry(ps...)
	trap := mail.MustParseAddress("trap@lure.example")
	reg.AddTrap(trap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Hit(trap, "198.51.100.1")
	}
}
