package report

import (
	"fmt"
	"sort"

	"repro/internal/maillog"
)

// LogSummary renders the fleet-wide table the paper's Python scripts
// printed over the parsed daily logs: volumes, drop reasons, spools,
// deliveries, the reflection ratio and the solve rate. It is the
// presentation half of cmd/logstats, shared so experiments can render
// a scanned aggregate the same way.
func LogSummary(agg *maillog.Aggregate) *Table {
	tot := agg.Total()
	t := &Table{Title: "Log-derived statistics", Headers: []string{"Metric", "Value"}}
	t.AddRow("Log lines", agg.Lines)
	t.AddRow("Unparsable lines", agg.BadLines)
	t.AddRow("Incoming messages", tot.Incoming)
	for _, r := range sortedKeys(tot.MTADrops) {
		t.AddRow("MTA drop: "+r, tot.MTADrops[r])
	}
	for _, s := range []string{"white", "black", "gray"} {
		t.AddRow("Spool: "+s, tot.Spools[s])
	}
	for _, f := range sortedKeys(tot.FilterDrops) {
		t.AddRow("Filter drop: "+f, tot.FilterDrops[f])
	}
	t.AddRow("Challenges sent", tot.Challenges)
	for _, v := range []string{"whitelist", "challenge", "digest"} {
		t.AddRow("Delivered via "+v, tot.Deliveries[v])
	}
	t.AddRow("Challenge-page visits", tot.WebVisits)
	t.AddRow("CAPTCHA solves", tot.WebSolves)
	// Challenge fates observed through the DSN feedback loop (§5.1:
	// most challenges to spoofed senders bounce).
	var bounces int64
	for _, cls := range sortedKeys(tot.Bounces) {
		t.AddRow("Challenge bounce: "+cls, tot.Bounces[cls])
		bounces += tot.Bounces[cls]
	}
	if tot.Challenges > 0 && bounces > 0 {
		t.AddRow("Challenge bounce rate", fmt.Sprintf("%.1f%%", float64(bounces)/float64(tot.Challenges)*100))
	}
	if tot.LoopSuppressed > 0 {
		t.AddRow("Challenge loops suppressed", tot.LoopSuppressed)
	}
	t.AddRow("Reflection ratio (CR)", fmt.Sprintf("%.1f%%", tot.ReflectionRatio()*100))
	t.AddRow("Solve rate", fmt.Sprintf("%.1f%%", tot.SolveRate()*100))
	return t
}

// LogPerCompany renders the per-installation breakdown of a scanned
// aggregate, one row per company in name order.
func LogPerCompany(agg *maillog.Aggregate) *Table {
	t := &Table{
		Title:   "Per company",
		Headers: []string{"Company", "Incoming", "Gray", "Challenges", "Reflection", "Solves"},
	}
	for _, name := range agg.Companies() {
		c := agg.ByCompany[name]
		t.AddRow(name, c.Incoming, c.Spools["gray"], c.Challenges,
			fmt.Sprintf("%.1f%%", c.ReflectionRatio()*100), c.WebSolves)
	}
	return t
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
