package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/maillog"
)

func logFixture() *maillog.Aggregate {
	at := time.Date(2010, 7, 1, 10, 0, 0, 0, time.UTC)
	agg := maillog.NewAggregate()
	add := func(co string, kind maillog.Kind, kvs ...string) {
		agg.Add(maillog.MakeEvent(at, co, kind, "m-1", kvs...))
		agg.Lines++
	}
	add("acme", maillog.KindMTAAccept, "size", "1000")
	add("acme", maillog.KindMTADrop, "reason", "unknown-recipient")
	add("acme", maillog.KindDispatch, "spool", "gray")
	add("acme", maillog.KindFilterDrop, "filter", "rbl")
	add("acme", maillog.KindChallenge)
	add("acme", maillog.KindDeliver, "via", "whitelist")
	add("acme", maillog.KindWebVisit)
	add("acme", maillog.KindWebSolve)
	add("zeta", maillog.KindMTAAccept, "size", "500")
	add("zeta", maillog.KindDispatch, "spool", "white")
	add("zeta", maillog.KindDeliver, "via", "digest")
	agg.BadLines = 3
	agg.Lines += 3
	return agg
}

func TestLogSummary(t *testing.T) {
	out := LogSummary(logFixture()).Render()
	for _, want := range []string{
		"Log-derived statistics",
		"Log lines", "14",
		"Unparsable lines", "3",
		"MTA drop: unknown-recipient",
		"Spool: gray",
		"Filter drop: rbl",
		"Challenges sent",
		"Delivered via whitelist",
		"CAPTCHA solves",
		"Reflection ratio (CR)",
		"Solve rate", "100.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LogSummary missing %q:\n%s", want, out)
		}
	}
}

func TestLogPerCompany(t *testing.T) {
	out := LogPerCompany(logFixture()).Render()
	iAcme := strings.Index(out, "acme")
	iZeta := strings.Index(out, "zeta")
	if iAcme < 0 || iZeta < 0 || iAcme > iZeta {
		t.Fatalf("companies missing or out of order:\n%s", out)
	}
	for _, want := range []string{"Per company", "Incoming", "Reflection", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("LogPerCompany missing %q:\n%s", want, out)
		}
	}
}
