package report

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders an ASCII scatter/step plot of (x, y) points on a
// width×height character grid, with min/max axis annotations — enough to
// eyeball the shape of a CDF (Figure 7) or a time series the way the
// paper's figures do. Points outside the axis ranges are clamped.
type Plot struct {
	Title  string
	Width  int
	Height int
	// XLog plots x on a log10 scale (useful for delay CDFs spanning
	// minutes to days).
	XLog bool
	// Marker is the point glyph (default '*').
	Marker byte

	points [][2]float64
}

// Add appends one point.
func (p *Plot) Add(x, y float64) {
	p.points = append(p.points, [2]float64{x, y})
}

// AddSeries appends many points.
func (p *Plot) AddSeries(pts [][2]float64) {
	p.points = append(p.points, pts...)
}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 12
	}
	marker := p.Marker
	if marker == 0 {
		marker = '*'
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	if len(p.points) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	tx := func(x float64) float64 {
		if p.XLog {
			if x < 1e-9 {
				x = 1e-9
			}
			return math.Log10(x)
		}
		return x
	}

	minX, maxX := tx(p.points[0][0]), tx(p.points[0][0])
	minY, maxY := p.points[0][1], p.points[0][1]
	for _, pt := range p.points {
		x, y := tx(pt[0]), pt[1]
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, pt := range p.points {
		cx := int((tx(pt[0]) - minX) / (maxX - minX) * float64(w-1))
		cy := int((pt[1] - minY) / (maxY - minY) * float64(h-1))
		if cx < 0 {
			cx = 0
		}
		if cx >= w {
			cx = w - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= h {
			cy = h - 1
		}
		grid[h-1-cy][cx] = marker
	}

	yLabel := func(v float64) string { return fmt.Sprintf("%8.3g", v) }
	for i, row := range grid {
		switch i {
		case 0:
			b.WriteString(yLabel(maxY))
		case h - 1:
			b.WriteString(yLabel(minY))
		default:
			b.WriteString(strings.Repeat(" ", 8))
		}
		b.WriteString(" |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 8))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", w))
	b.WriteByte('\n')
	xmin, xmax := minX, maxX
	unit := ""
	if p.XLog {
		unit = " (log10)"
	}
	b.WriteString(fmt.Sprintf("%9s  %-.4g%s%*s%.4g%s\n", "", xmin, unit,
		w-len(fmt.Sprintf("%.4g%s", xmin, unit))-len(fmt.Sprintf("%.4g", xmax)), "", xmax, unit))
	return b.String()
}
