package report

import (
	"strings"
	"testing"
)

func TestPlotRendersPoints(t *testing.T) {
	p := &Plot{Title: "test curve", Width: 40, Height: 8}
	for i := 0; i <= 10; i++ {
		p.Add(float64(i), float64(i)/10)
	}
	out := p.Render()
	if !strings.Contains(out, "test curve") {
		t.Fatal("title missing")
	}
	if strings.Count(out, "*") < 8 {
		t.Fatalf("too few markers:\n%s", out)
	}
	// Axis labels: min and max y values.
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	// Monotone curve: the first grid row (max y) has its marker to the
	// right of the bottom row's marker.
	lines := strings.Split(out, "\n")
	var topIdx, botIdx int
	for _, l := range lines {
		if i := strings.IndexByte(l, '*'); i >= 0 {
			if topIdx == 0 {
				topIdx = i
			}
			botIdx = i
		}
	}
	if topIdx <= botIdx {
		t.Fatalf("rising curve renders falling: top marker at %d, bottom at %d\n%s", topIdx, botIdx, out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{}
	if !strings.Contains(p.Render(), "no data") {
		t.Fatal("empty plot not flagged")
	}
}

func TestPlotSingleValueNoDivZero(t *testing.T) {
	p := &Plot{Width: 10, Height: 4}
	p.Add(5, 5)
	p.Add(5, 5)
	out := p.Render() // must not panic
	if !strings.Contains(out, "*") {
		t.Fatalf("point lost:\n%s", out)
	}
}

func TestPlotLogScale(t *testing.T) {
	lin := &Plot{Width: 60, Height: 6}
	logp := &Plot{Width: 60, Height: 6, XLog: true}
	// Delay-CDF-like data: 1 min .. ~3 days.
	xs := []float64{1, 5, 30, 240, 1440, 4320}
	for i, x := range xs {
		y := float64(i+1) / float64(len(xs))
		lin.Add(x, y)
		logp.Add(x, y)
	}
	linOut, logOut := lin.Render(), logp.Render()
	// On a linear axis the small-x points collapse into one column; on a
	// log axis they spread out. Count distinct marker columns.
	distinct := func(out string) int {
		cols := map[int]bool{}
		for _, l := range strings.Split(out, "\n") {
			for i := 0; i < len(l); i++ {
				if l[i] == '*' {
					cols[i] = true
				}
			}
		}
		return len(cols)
	}
	if distinct(logOut) <= distinct(linOut) {
		t.Fatalf("log axis did not spread points: log=%d lin=%d", distinct(logOut), distinct(linOut))
	}
	if !strings.Contains(logOut, "log10") {
		t.Fatal("log axis not annotated")
	}
}

func TestPlotAddSeriesAndClamp(t *testing.T) {
	p := &Plot{Width: 20, Height: 5, Marker: '#'}
	p.AddSeries([][2]float64{{0, 0}, {1, 0.5}, {2, 1}})
	out := p.Render()
	if strings.Count(out, "#") != 3 {
		t.Fatalf("markers = %d:\n%s", strings.Count(out, "#"), out)
	}
}
