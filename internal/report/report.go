// Package report renders the reproduction's tables and figures as
// aligned ASCII, mirroring the layout of the paper's tables (Table 1, the
// drop-reason table) and the content of its figures (bar charts and CDFs
// become labelled rows with proportional bars).
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned table.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a proportional bar of the given fraction (clamped to
// [0, 1]) using width characters, with a numeric suffix.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return fmt.Sprintf("%s%s %6.2f%%", strings.Repeat("#", n), strings.Repeat(".", width-n), frac*100)
}

// Percent formats a fraction as a percentage.
func Percent(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}

// Figure is a titled block of pre-formatted lines.
type Figure struct {
	Title string
	Lines []string
}

// Addf appends a formatted line.
func (f *Figure) Addf(format string, args ...interface{}) {
	f.Lines = append(f.Lines, fmt.Sprintf(format, args...))
}

// AddBar appends a labelled proportional bar line.
func (f *Figure) AddBar(label string, frac float64) {
	f.Addf("%-28s %s", label, Bar(frac, 40))
}

// Render returns the figure block.
func (f *Figure) Render() string {
	var b strings.Builder
	b.WriteString(f.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(f.Title)))
	b.WriteByte('\n')
	for _, l := range f.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
