package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "General Statistics",
		Headers: []string{"Metric", "Value"},
	}
	tbl.AddRow("Number of Companies", 47)
	tbl.AddRow("Reflection ratio", 0.193)
	out := tbl.Render()
	for _, want := range []string{"General Statistics", "Metric", "Number of Companies", "47", "0.193"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, headers, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The value column must be aligned: both data rows have "47"/"0.193"
	// starting at the same column.
	i1 := strings.Index(lines[4], "47")
	i2 := strings.Index(lines[5], "0.193")
	if i1 != i2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", i1, i2, out)
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("a", "b")
	out := tbl.Render()
	if strings.Contains(out, "=") || strings.Contains(out, "---") {
		t.Fatalf("unexpected decorations:\n%s", out)
	}
	if !strings.Contains(out, "a  b") {
		t.Fatalf("row missing:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Headers: []string{"A", "B", "C"}}
	tbl.AddRow("only-one")
	out := tbl.Render() // must not panic
	if !strings.Contains(out, "only-one") {
		t.Fatal("ragged row lost")
	}
}

func TestBar(t *testing.T) {
	full := Bar(1, 10)
	if !strings.HasPrefix(full, "##########") || !strings.Contains(full, "100.00%") {
		t.Fatalf("Bar(1) = %q", full)
	}
	empty := Bar(0, 10)
	if !strings.HasPrefix(empty, "..........") || !strings.Contains(empty, "0.00%") {
		t.Fatalf("Bar(0) = %q", empty)
	}
	half := Bar(0.5, 10)
	if !strings.HasPrefix(half, "#####.....") {
		t.Fatalf("Bar(0.5) = %q", half)
	}
	// Clamping.
	if !strings.Contains(Bar(1.7, 10), "100.00%") {
		t.Fatal("Bar not clamped high")
	}
	if !strings.Contains(Bar(-0.5, 10), "0.00%") {
		t.Fatal("Bar not clamped low")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.193); got != "19.30%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestFigure(t *testing.T) {
	f := &Figure{Title: "Figure 4(a): Challenge delivery status"}
	f.AddBar("delivered", 0.49)
	f.Addf("total: %d", 4299610)
	out := f.Render()
	for _, want := range []string{"Figure 4(a)", "delivered", "49.00%", "total: 4299610", "===="} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure missing %q:\n%s", want, out)
		}
	}
}
