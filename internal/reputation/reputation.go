// Package reputation implements a concurrent sender-reputation engine:
// an N-way lock-striped store of exponentially time-decayed outcome
// counters keyed by sender address, sending IP and sender domain, and a
// scoring function that folds the three keys into one verdict band
// (trusted / neutral / suspect).
//
// The motivation comes straight out of the measurement: CR filter
// outcomes are dominated by sender history — whitelisted contacts sail
// through while repeat spam sources are cheaply rejectable — yet the
// base pipeline re-evaluates every message from scratch. Aggregated
// per-sender historical features alone classify spammers effectively
// (Menahem & Puzis, "Detecting Spammers via Aggregated Historical Data
// Set"), so the engine consults this store *before* the probe-capable
// auxiliary filters: a trusted sender skips them entirely (the fast
// path), a suspect sender is tightened via the filters.Reputation chain
// stage.
//
// All time arithmetic runs on the injected clock, so simulated
// deployments decay on virtual time and runs stay deterministic. The
// store is advisory: a write failure (modelled through the fault
// injector, target "reputation") is fail-open and never blocks a
// message.
package reputation

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/mail"
)

// Outcome is one classification event recorded against a sender.
type Outcome int

// Recorded outcomes. Each maps to one decayed counter.
const (
	// Delivered: a message from the sender reached a user's inbox.
	Delivered Outcome = iota
	// Challenged: a challenge was emitted for the sender's message.
	Challenged
	// Solved: the sender solved a CAPTCHA (the strongest positive
	// signal — bots essentially never do, §4 of the paper).
	Solved
	// Spam: a message was classified as spam (filter-dropped or sent by
	// a blacklisted sender).
	Spam
	// Bounced: a challenge to the sender bounced (no such user / no such
	// domain) — the spoofed-sender signature, 71.7% of the study's
	// challenge bounces.
	Bounced
	// RBLHit: the sender's message was dropped on a blocklist match.
	RBLHit

	// nOutcomes sizes the counter vector.
	nOutcomes = 6
)

// String returns the counter label.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Challenged:
		return "challenged"
	case Solved:
		return "solved"
	case Spam:
		return "spam"
	case Bounced:
		return "bounced"
	case RBLHit:
		return "rbl-hit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Band is the folded verdict over a sender's three keys.
type Band int

// Verdict bands.
const (
	// Neutral: not enough evidence either way; the full pipeline runs.
	Neutral Band = iota
	// Trusted: strong positive history; the engine skips the auxiliary
	// probe filters for this sender (fast path).
	Trusted
	// Suspect: strong negative history; the filters.Reputation chain
	// stage drops the message before the expensive probes run.
	Suspect
)

// String returns the band label.
func (b Band) String() string {
	switch b {
	case Trusted:
		return "trusted"
	case Suspect:
		return "suspect"
	default:
		return "neutral"
	}
}

// outcomeWeights score one decayed counter vector: deliveries and
// solves push positive, spam/bounce/blocklist evidence pushes negative,
// and a bare challenge is neutral (being unknown is not a crime).
var outcomeWeights = [nOutcomes]float64{
	Delivered:  1.0,
	Challenged: 0,
	Solved:     2.0,
	Spam:       -1.5,
	Bounced:    -1.0,
	RBLHit:     -2.0,
}

// Config parameterises a Store. Zero values get defaults.
type Config struct {
	// Shards is the lock-stripe count, rounded up to a power of two
	// (default 16). More shards means less contention under parallel
	// Record/Lookup load.
	Shards int
	// HalfLife is the exponential-decay half-life of every counter
	// (default 7 days): evidence older than ~7 half-lives carries <1%
	// weight, so a sender's past neither dooms nor blesses it forever.
	HalfLife time.Duration
	// TrustThreshold is the minimum folded score for Trusted (default
	// 0.5) and SuspectThreshold the maximum for Suspect (default -0.4).
	TrustThreshold   float64
	SuspectThreshold float64
	// MinObservations is the minimum decayed evidence mass (across all
	// contributing keys) before leaving Neutral (default 4): one lucky
	// delivery must not open the fast path.
	MinObservations float64
	// AddrWeight/DomainWeight/IPWeight fold the three key scores
	// (defaults 0.6/0.25/0.15). Keys without history are excluded and
	// the remaining weights renormalised.
	AddrWeight, DomainWeight, IPWeight float64
	// Injector is an optional fault source (target "reputation"):
	// injected faults drop writes and error lookups, exercising the
	// fail-open advisory path.
	Injector faults.Injector
}

// DefaultConfig returns the stock parameters.
func DefaultConfig() Config {
	return Config{
		Shards:           16,
		HalfLife:         7 * 24 * time.Hour,
		TrustThreshold:   0.5,
		SuspectThreshold: -0.4,
		MinObservations:  4,
		AddrWeight:       0.6,
		DomainWeight:     0.25,
		IPWeight:         0.15,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	// Round up to a power of two so the shard index is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.HalfLife <= 0 {
		c.HalfLife = d.HalfLife
	}
	if c.TrustThreshold == 0 {
		c.TrustThreshold = d.TrustThreshold
	}
	if c.SuspectThreshold == 0 {
		c.SuspectThreshold = d.SuspectThreshold
	}
	if c.MinObservations <= 0 {
		c.MinObservations = d.MinObservations
	}
	if c.AddrWeight <= 0 && c.DomainWeight <= 0 && c.IPWeight <= 0 {
		c.AddrWeight, c.DomainWeight, c.IPWeight = d.AddrWeight, d.DomainWeight, d.IPWeight
	}
	return c
}

// entry is one key's decayed counter vector. counts are normalised to
// `last`: reading at time t scales them by 2^(-(t-last)/halfLife).
// lsn is the WAL sequence number of the latest observation folded in
// (zero when no journal is attached); replay uses it to skip records
// whose effect is already present.
type entry struct {
	counts [nOutcomes]float64
	last   time.Time
	lsn    uint64
}

// decayTo folds elapsed time into the counters.
func (e *entry) decayTo(now time.Time, halfLife time.Duration) {
	dt := now.Sub(e.last)
	if dt <= 0 {
		return
	}
	f := math.Exp2(-float64(dt) / float64(halfLife))
	for i := range e.counts {
		e.counts[i] *= f
	}
	e.last = now
}

// mass returns the total decayed evidence weight. Bare challenges are
// excluded: an outstanding challenge says nothing either way (most spam
// challenges simply go unanswered), so it must neither dilute a good
// sender's score nor push a silent one toward a band on its own.
func (e *entry) mass() float64 {
	var m float64
	for i, c := range e.counts {
		if Outcome(i) == Challenged {
			continue
		}
		m += c
	}
	return m
}

// score reduces the counter vector to [-2, +2]-ish: the weighted
// outcome sum over the evidence mass, smoothed by a +2 pseudo-count so
// sparse histories stay near zero.
func (e *entry) score() float64 {
	var s float64
	for i, c := range e.counts {
		s += outcomeWeights[i] * c
	}
	return s / (e.mass() + 2)
}

// scoredAt evaluates the entry at `now` without mutating it: the value
// receiver copies the counter vector, the copy decays, the original is
// untouched. Read paths (Lookup, TopSenders) must stay pure so stored
// bits are exactly the fold of the recorded observation sequence — the
// invariant the WAL crash-recovery experiment checks byte-for-byte.
func (e entry) scoredAt(now time.Time, halfLife time.Duration) (score, mass float64) {
	(&e).decayTo(now, halfLife)
	return e.score(), e.mass()
}

// shard is one lock stripe.
type shard struct {
	mu      sync.Mutex
	entries map[repKey]*entry
}

// Store is the sharded reputation store. It is safe for concurrent use;
// Record and Lookup touch only the shards owning the consulted keys.
type Store struct {
	cfg Config
	clk clock.Clock

	shards []shard
	mask   uint32

	// walMu serialises (journal append, shard apply) pairs and Export
	// when a change journal is attached, so per-entry LSNs are applied
	// in order and a snapshot never misses a journalled observation.
	// Without a journal the hot path never touches it.
	walMu   sync.Mutex
	journal func(sender mail.Address, ip string, o Outcome, at time.Time) uint64

	records       atomic.Int64
	lookups       atomic.Int64
	droppedWrites atomic.Int64
	failedLookups atomic.Int64
}

// NewStore builds a store on the given clock.
func NewStore(cfg Config, clk clock.Clock) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, clk: clk, shards: make([]shard, cfg.Shards), mask: uint32(cfg.Shards - 1)}
	for i := range s.shards {
		s.shards[i].entries = make(map[repKey]*entry)
	}
	return s
}

// Config returns the effective (default-filled) configuration.
func (s *Store) Config() Config { return s.cfg }

// Key namespaces. One flat sharded map holds all three key kinds. The
// prefixed-string form ("a:bob@x.com", "d:x.com", "i:192.0.2.1") is the
// external representation used by exports and reports; internally keys
// are comparable structs so the hot path never concatenates.
const (
	addrPrefix   = "a:"
	domainPrefix = "d:"
	ipPrefix     = "i:"
)

// repKey is a store key: a kind tag ('a' address, 'd' domain, 'i' IP)
// plus the identity split into local/domain parts so address keys reuse
// the message's own strings. Using a comparable struct instead of the
// prefixed string means Record/Lookup build keys with zero allocations
// (for the common all-lower-case local part, ToLower returns its input).
type repKey struct {
	kind  byte
	local string // address keys only; lower-cased
	name  string // domain ('a'/'d') or IP ('i')
}

// String returns the external prefixed form ("a:bob@x.com", "d:x.com",
// "i:192.0.2.1").
func (k repKey) String() string {
	if k.kind == 'a' {
		return string([]byte{k.kind, ':'}) + k.local + "@" + k.name
	}
	return string([]byte{k.kind, ':'}) + k.name
}

// parseRepKey inverts String (for Import of exported snapshots).
func parseRepKey(s string) (repKey, bool) {
	if len(s) < 2 || s[1] != ':' {
		return repKey{}, false
	}
	k := repKey{kind: s[0], name: s[2:]}
	if k.kind == 'a' {
		at := strings.LastIndexByte(k.name, '@')
		if at < 0 {
			return repKey{}, false
		}
		k.local, k.name = k.name[:at], k.name[at+1:]
	}
	return k, true
}

// addrKey builds the canonical address key for a sender.
func addrKey(sender mail.Address) repKey {
	return repKey{kind: 'a', local: strings.ToLower(sender.Local), name: sender.Domain}
}

// keysFor fills keys with the store keys a message contributes to and
// returns how many were set. The null sender has no usable identity.
func keysFor(sender mail.Address, ip string, keys *[3]repKey) int {
	n := 0
	if !sender.IsNull() {
		keys[n] = addrKey(sender)
		keys[n+1] = repKey{kind: 'd', name: sender.Domain}
		n += 2
	}
	if ip != "" {
		keys[n] = repKey{kind: 'i', name: ip}
		n++
	}
	return n
}

// shardFor maps a key to its lock stripe (FNV-1a over the key parts,
// computed inline — no []byte conversion, no hasher allocation).
func (s *Store) shardFor(key repKey) *shard {
	h := uint32(2166136261)
	h = (h ^ uint32(key.kind)) * 16777619
	for i := 0; i < len(key.local); i++ {
		h = (h ^ uint32(key.local[i])) * 16777619
	}
	h = (h ^ uint32('@')) * 16777619
	for i := 0; i < len(key.name); i++ {
		h = (h ^ uint32(key.name[i])) * 16777619
	}
	return &s.shards[h&s.mask]
}

// Record adds one outcome observation for the sender. An injected
// store fault drops the write (counted, never surfaced): reputation is
// advisory, so a broken store must not block the mail path.
func (s *Store) Record(sender mail.Address, ip string, o Outcome) {
	var keys [3]repKey
	n := keysFor(sender, ip, &keys)
	if n == 0 {
		return
	}
	if inj := s.cfg.Injector; inj != nil {
		if d := inj.Decide("reputation", 0); d.Err != nil {
			s.droppedWrites.Add(1)
			return
		}
	}
	now := s.clk.Now()
	if s.journal != nil {
		// Journal first (the append assigns the LSN), then apply, with
		// the pair serialised so shard state never lags a smaller LSN
		// behind a larger one and Export sees every journalled record.
		s.walMu.Lock()
		lsn := s.journal(sender, ip, o, now)
		s.apply(keys[:n], o, now, lsn)
		s.walMu.Unlock()
	} else {
		s.apply(keys[:n], o, now, 0)
	}
	s.records.Add(1)
}

// SetJournal installs the change-journal hook. The hook appends one
// observation record and returns its LSN (or zero if the append was
// dropped). It must be installed before the store sees concurrent use
// and must not call back into the store.
func (s *Store) SetJournal(fn func(sender mail.Address, ip string, o Outcome, at time.Time) uint64) {
	s.journal = fn
}

// apply folds one observation into the owning shards. lsn is zero when
// no journal is attached.
func (s *Store) apply(keys []repKey, o Outcome, at time.Time, lsn uint64) {
	for _, key := range keys {
		sh := s.shardFor(key)
		sh.mu.Lock()
		e := sh.entries[key]
		if e == nil {
			e = &entry{last: at}
			sh.entries[key] = e
		}
		e.decayTo(at, s.cfg.HalfLife)
		e.counts[o]++
		if lsn > e.lsn {
			e.lsn = lsn
		}
		sh.mu.Unlock()
	}
}

// Apply re-applies a journalled observation during WAL replay. The
// per-entry LSN guard makes it idempotent: a record whose effect is
// already in the snapshot (entry.lsn >= record LSN) is skipped, so
// replaying any in-order suffix of the journal converges to the exact
// live-store bits.
func (s *Store) Apply(sender mail.Address, ip string, o Outcome, at time.Time, lsn uint64) {
	var keys [3]repKey
	n := keysFor(sender, ip, &keys)
	for _, key := range keys[:n] {
		sh := s.shardFor(key)
		sh.mu.Lock()
		e := sh.entries[key]
		if e == nil {
			e = &entry{last: at}
			sh.entries[key] = e
		}
		if lsn > e.lsn {
			e.decayTo(at, s.cfg.HalfLife)
			e.counts[o]++
			e.lsn = lsn
		}
		sh.mu.Unlock()
	}
}

// KeyScore is one key's contribution to a verdict.
type KeyScore struct {
	Key   string
	Score float64
	Mass  float64
}

// Verdict is the folded reputation of one (sender, IP) pair.
type Verdict struct {
	Band  Band
	Score float64
	// Mass is the total decayed evidence behind the verdict.
	Mass float64
	// Keys lists the contributing keys (only those with history).
	Keys []KeyScore
}

// Lookup folds the sender's three keys into a verdict. The error path
// exists only under fault injection (store unavailable); callers treat
// it as Neutral / fail-open.
func (s *Store) Lookup(sender mail.Address, ip string) (Verdict, error) {
	s.lookups.Add(1)
	if inj := s.cfg.Injector; inj != nil {
		if d := inj.Decide("reputation", 0); d.Err != nil {
			s.failedLookups.Add(1)
			return Verdict{}, fmt.Errorf("reputation: store unavailable: %w", d.Err)
		}
	}
	return s.verdict(sender, ip), nil
}

// verdict is Lookup without the fault gate.
func (s *Store) verdict(sender mail.Address, ip string) Verdict {
	now := s.clk.Now()
	var keys [3]repKey
	var weights [3]float64
	n := 0
	if !sender.IsNull() {
		keys[0], weights[0] = addrKey(sender), s.cfg.AddrWeight
		keys[1], weights[1] = repKey{kind: 'd', name: sender.Domain}, s.cfg.DomainWeight
		n = 2
	}
	if ip != "" {
		keys[n], weights[n] = repKey{kind: 'i', name: ip}, s.cfg.IPWeight
		n++
	}
	var v Verdict
	var wsum, acc float64
	for i := 0; i < n; i++ {
		key, weight := keys[i], weights[i]
		sh := s.shardFor(key)
		sh.mu.Lock()
		e := sh.entries[key]
		var ks KeyScore
		found := false
		if e != nil {
			score, mass := e.scoredAt(now, s.cfg.HalfLife)
			ks = KeyScore{Key: key.String(), Score: score, Mass: mass}
			found = true
		}
		sh.mu.Unlock()
		if !found {
			continue
		}
		v.Keys = append(v.Keys, ks)
		v.Mass += ks.Mass
		acc += weight * ks.Score
		wsum += weight
	}
	if wsum > 0 {
		v.Score = acc / wsum
	}
	switch {
	case v.Mass < s.cfg.MinObservations:
		v.Band = Neutral
	case v.Score >= s.cfg.TrustThreshold:
		v.Band = Trusted
	case v.Score <= s.cfg.SuspectThreshold:
		v.Band = Suspect
	default:
		v.Band = Neutral
	}
	return v
}

// Score is Lookup for callers that do not care about the fault channel
// (reports, benchmarks): injected faults are ignored.
func (s *Store) Score(sender mail.Address, ip string) Verdict {
	return s.verdict(sender, ip)
}

// Stats is an operational snapshot of the store.
type Stats struct {
	Entries       int
	Records       int64
	Lookups       int64
	DroppedWrites int64
	FailedLookups int64
	// ShardOccupancy is the entry count per lock stripe, for the admin
	// UI's contention view.
	ShardOccupancy []int
}

// Stats returns the current operational counters.
func (s *Store) Stats() Stats {
	st := Stats{ShardOccupancy: make([]int, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.ShardOccupancy[i] = len(sh.entries)
		st.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	st.Records, st.Lookups = s.records.Load(), s.lookups.Load()
	st.DroppedWrites, st.FailedLookups = s.droppedWrites.Load(), s.failedLookups.Load()
	return st
}

// EntrySummary is one key's standing, for Top-K reports.
type EntrySummary struct {
	Key   string
	Band  Band
	Score float64
	Mass  float64
}

// TopSenders returns the k highest-evidence sender-address entries in
// the given band, ordered by decayed evidence mass (ties by key). Each
// entry is banded on its own score with the store thresholds — the
// per-key view the /reputation admin page shows.
func (s *Store) TopSenders(band Band, k int) []EntrySummary {
	now := s.clk.Now()
	var out []EntrySummary
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			if key.kind != 'a' {
				continue
			}
			score, mass := e.scoredAt(now, s.cfg.HalfLife)
			sum := EntrySummary{Key: key.local + "@" + key.name, Score: score, Mass: mass}
			switch {
			case sum.Mass < s.cfg.MinObservations:
				sum.Band = Neutral
			case sum.Score >= s.cfg.TrustThreshold:
				sum.Band = Trusted
			case sum.Score <= s.cfg.SuspectThreshold:
				sum.Band = Suspect
			default:
				sum.Band = Neutral
			}
			if sum.Band == band {
				out = append(out, sum)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mass != out[j].Mass {
			return out[i].Mass > out[j].Mass
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ExportedEntry is the serialised form of one key's counters. Counts
// are exported exactly as stored (normalised to Last), so a JSON
// round-trip reproduces scores bit-for-bit.
type ExportedEntry struct {
	Key    string             `json:"key"`
	Counts [nOutcomes]float64 `json:"counts"`
	Last   time.Time          `json:"last"`
	// LSN is the WAL sequence number of the newest observation folded
	// into the counters (zero without a journal); replay after a crash
	// skips records already covered by it.
	LSN uint64 `json:"lsn,omitempty"`
}

// Export snapshots every entry, sorted by key for deterministic output.
// With a journal attached the export is serialised against Record, so
// the snapshot reflects a clean prefix of the observation log.
func (s *Store) Export() []ExportedEntry {
	if s.journal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
	}
	var out []ExportedEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			out = append(out, ExportedEntry{Key: key.String(), Counts: e.counts, Last: e.last, LSN: e.lsn})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Import merges exported entries into the store, replacing any existing
// entry with the same key. Restoring into a fresh store reproduces the
// exported scores exactly.
func (s *Store) Import(entries []ExportedEntry) {
	for _, ee := range entries {
		key, ok := parseRepKey(ee.Key)
		if !ok {
			continue
		}
		sh := s.shardFor(key)
		sh.mu.Lock()
		sh.entries[key] = &entry{counts: ee.Counts, last: ee.Last, lsn: ee.LSN}
		sh.mu.Unlock()
	}
}
