package reputation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/mail"
)

var t0 = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

func newStore(clk clock.Clock) *Store {
	cfg := DefaultConfig()
	cfg.MinObservations = 3
	return NewStore(cfg, clk)
}

func addr(s string) mail.Address { return mail.MustParseAddress(s) }

func TestBandsFromHistory(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newStore(clk)
	good := addr("alice@partner.example")
	bad := addr("fake123@bystander.example")

	// No history: neutral.
	if v := s.Score(good, "192.0.2.1"); v.Band != Neutral || v.Mass != 0 {
		t.Fatalf("empty store verdict = %+v, want neutral/0", v)
	}

	// Positive history promotes to trusted.
	for i := 0; i < 5; i++ {
		s.Record(good, "192.0.2.1", Delivered)
	}
	s.Record(good, "192.0.2.1", Solved)
	v := s.Score(good, "192.0.2.1")
	if v.Band != Trusted {
		t.Fatalf("after 5 deliveries + solve: %+v, want trusted", v)
	}
	if len(v.Keys) != 3 {
		t.Fatalf("contributing keys = %v, want addr+domain+ip", v.Keys)
	}

	// Negative history demotes to suspect.
	for i := 0; i < 4; i++ {
		s.Record(bad, "100.64.0.9", RBLHit)
		s.Record(bad, "100.64.0.9", Bounced)
	}
	if v := s.Score(bad, "100.64.0.9"); v.Band != Suspect {
		t.Fatalf("after rbl hits + bounces: %+v, want suspect", v)
	}

	// A single good event must not open the fast path (MinObservations).
	fresh := addr("new@partner.example")
	s.Record(fresh, "192.0.2.77", Delivered)
	if v := s.Score(fresh, "192.0.2.77"); v.Band == Trusted {
		t.Fatalf("one delivery reached trusted: %+v", v)
	}
}

func TestDomainAndIPCarryOver(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newStore(clk)
	// Build negative history for one spoofed sender at a botnet IP.
	for i := 0; i < 10; i++ {
		s.Record(addr("spoof1@victim.example"), "100.64.0.1", Spam)
	}
	// A brand-new local part at the same domain+IP inherits suspicion
	// through the domain and IP keys even with zero address history.
	v := s.Score(addr("spoof2@victim.example"), "100.64.0.1")
	if v.Band != Suspect {
		t.Fatalf("sibling spoof verdict = %+v, want suspect via domain+ip", v)
	}
}

// TestDecaySevenHalfLives is the decay-correctness contract: counters
// recorded at virtual t=0 must carry <1% weight after 7 half-lives.
func TestDecaySevenHalfLives(t *testing.T) {
	clk := clock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.HalfLife = 24 * time.Hour
	s := NewStore(cfg, clk)
	a := addr("alice@partner.example")
	for i := 0; i < 100; i++ {
		s.Record(a, "192.0.2.1", Delivered)
	}
	before := s.Score(a, "192.0.2.1")
	if before.Mass < 299 { // 100 records x 3 keys
		t.Fatalf("initial mass = %v, want ~300", before.Mass)
	}

	clk.Advance(7 * cfg.HalfLife)
	after := s.Score(a, "192.0.2.1")
	if after.Mass >= before.Mass*0.01 {
		t.Fatalf("mass after 7 half-lives = %v (was %v); want <1%% weight", after.Mass, before.Mass)
	}
	// Decayed-out history returns the sender to neutral.
	if after.Band != Neutral {
		t.Fatalf("band after decay = %v, want neutral", after.Band)
	}
}

func TestDecayIsHalfPerHalfLife(t *testing.T) {
	clk := clock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.HalfLife = 24 * time.Hour
	s := NewStore(cfg, clk)
	a := addr("alice@partner.example")
	for i := 0; i < 8; i++ {
		s.Record(a, "", Delivered)
	}
	clk.Advance(cfg.HalfLife)
	v := s.Score(a, "")
	// 8 per key over 2 keys (addr+domain), halved: 8 total.
	if v.Mass < 7.99 || v.Mass > 8.01 {
		t.Fatalf("mass after one half-life = %v, want 8", v.Mass)
	}
}

// TestSnapshotRoundTripBitForBit: export → JSON → import into a fresh
// store must preserve every score bit-for-bit, including after partial
// decay left non-trivial float values behind.
func TestSnapshotRoundTripBitForBit(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newStore(clk)
	senders := []mail.Address{
		addr("alice@partner.example"),
		addr("news@letters.example"),
		addr("fake@bystander.example"),
	}
	outcomes := []Outcome{Delivered, Challenged, Solved, Spam, Bounced, RBLHit}
	for i := 0; i < 500; i++ {
		sd := senders[i%len(senders)]
		clk.Advance(37 * time.Minute) // irregular spacing → messy decay factors
		s.Record(sd, fmt.Sprintf("192.0.2.%d", i%7), outcomes[i%len(outcomes)])
	}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(s.Export()); err != nil {
		t.Fatal(err)
	}
	var entries []ExportedEntry
	if err := json.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	restored := newStore(clk)
	restored.Import(entries)

	for _, sd := range senders {
		for ip := 0; ip < 7; ip++ {
			ipStr := fmt.Sprintf("192.0.2.%d", ip)
			a, b := s.Score(sd, ipStr), restored.Score(sd, ipStr)
			if a.Score != b.Score || a.Mass != b.Mass || a.Band != b.Band {
				t.Fatalf("score drift for %s/%s: %+v vs %+v", sd, ipStr, a, b)
			}
		}
	}
	// The exported forms must also agree exactly.
	ea, eb := s.Export(), restored.Export()
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestConcurrentRecordAndLookup(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newStore(clk)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sd := addr(fmt.Sprintf("s%d@dom%d.example", i%50, g%4))
				ip := fmt.Sprintf("10.0.%d.%d", g, i%200)
				if i%3 == 0 {
					s.Record(sd, ip, Outcome(i%nOutcomes))
				} else {
					_, _ = s.Lookup(sd, ip)
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries == 0 || st.Records == 0 || st.Lookups == 0 {
		t.Fatalf("stats after concurrent load: %+v", st)
	}
	if len(st.ShardOccupancy) != s.cfg.Shards {
		t.Fatalf("shard occupancy length %d, want %d", len(st.ShardOccupancy), s.cfg.Shards)
	}
	var occ int
	for _, n := range st.ShardOccupancy {
		occ += n
	}
	if occ != st.Entries {
		t.Fatalf("occupancy sum %d != entries %d", occ, st.Entries)
	}
}

func TestTopSenders(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newStore(clk)
	for i := 0; i < 6; i++ {
		s.Record(addr("big@partner.example"), "", Delivered)
		s.Record(addr("bad@bystander.example"), "", RBLHit)
	}
	for i := 0; i < 4; i++ {
		s.Record(addr("small@partner.example"), "", Delivered)
	}
	top := s.TopSenders(Trusted, 10)
	if len(top) != 2 || top[0].Key != "big@partner.example" || top[1].Key != "small@partner.example" {
		t.Fatalf("trusted top-k = %+v", top)
	}
	bad := s.TopSenders(Suspect, 1)
	if len(bad) != 1 || bad[0].Key != "bad@bystander.example" {
		t.Fatalf("suspect top-k = %+v", bad)
	}
}

func TestInjectedFaultsFailOpen(t *testing.T) {
	clk := clock.NewSim(t0)
	plan, err := faults.Parse(strings.NewReader(
		`{"name":"rep-down","rules":[{"target":"reputation","kind":"error"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Injector = faults.New(plan, 1, clk)
	s := NewStore(cfg, clk)

	a := addr("alice@partner.example")
	s.Record(a, "192.0.2.1", Delivered) // dropped, not fatal
	if _, err := s.Lookup(a, "192.0.2.1"); err == nil {
		t.Fatal("lookup under store outage should error (callers fail open)")
	}
	st := s.Stats()
	if st.DroppedWrites != 1 || st.FailedLookups != 1 || st.Entries != 0 {
		t.Fatalf("fault accounting: %+v", st)
	}
}

func TestNullSenderAndEmptyIPIgnored(t *testing.T) {
	clk := clock.NewSim(t0)
	s := newStore(clk)
	s.Record(mail.Null, "", Delivered)
	if st := s.Stats(); st.Entries != 0 || st.Records != 0 {
		t.Fatalf("null-sender record should be a no-op: %+v", st)
	}
	if v := s.Score(mail.Null, ""); v.Band != Neutral || len(v.Keys) != 0 {
		t.Fatalf("null-sender verdict = %+v", v)
	}
}
