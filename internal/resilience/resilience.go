// Package resilience provides the small hardening primitives the CR
// pipeline wraps around its network-dependent components: a three-state
// circuit breaker (closed → open → half-open) and a jittered exponential
// backoff for bounded retries.
//
// Both are clock-injected so the simulation exercises them in virtual
// time — breaker trip/recovery cycles and backoff schedules are tested
// without a single real sleep — and both are safe for concurrent use, as
// a live deployment shares them across SMTP sessions.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
)

// State is a circuit breaker's position.
type State int

// Breaker states.
const (
	// Closed: requests flow; failures are counted.
	Closed State = iota
	// Open: requests are refused outright until OpenTimeout elapses.
	Open
	// HalfOpen: a limited number of probe requests test recovery.
	HalfOpen
)

// String returns the state label.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrOpen is returned by Breaker.Do while the breaker refuses requests.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig parameterises a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker (default 5).
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before allowing
	// half-open probes (default 30s).
	OpenTimeout time.Duration
	// HalfOpenProbes is the number of consecutive probe successes needed
	// to close again (default 1). A probe failure re-opens immediately.
	HalfOpenProbes int
}

// DefaultBreakerConfig returns the stock parameters.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{FailureThreshold: 5, OpenTimeout: 30 * time.Second, HalfOpenProbes: 1}
}

// BreakerStats is a snapshot of a breaker's counters.
type BreakerStats struct {
	State     State
	Trips     int64 // closed/half-open -> open transitions
	Rejected  int64 // requests refused while open
	Successes int64
	Failures  int64
}

// Breaker is a minimal consecutive-failure circuit breaker. It is safe
// for concurrent use.
type Breaker struct {
	name string
	cfg  BreakerConfig
	clk  clock.Clock

	mu       sync.Mutex
	state    State
	fails    int // consecutive failures (closed) / probe failures (half-open)
	probes   int // consecutive probe successes (half-open)
	probing  int // half-open probes currently in flight (at most 1)
	openedAt time.Time
	stats    BreakerStats
}

// NewBreaker returns a closed breaker named for its guarded dependency.
func NewBreaker(name string, cfg BreakerConfig, clk clock.Clock) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = 30 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{name: name, cfg: cfg, clk: clk}
}

// Name returns the guarded dependency's name.
func (b *Breaker) Name() string { return b.name }

// Allow reports whether a request may proceed, transitioning
// open → half-open once OpenTimeout has elapsed. Half-open admits one
// probe at a time: concurrent callers racing the transition are
// rejected until the in-flight probe Records its outcome, so a single
// failed probe re-opens the breaker before a second request can slip
// through to the still-broken dependency.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		if b.clk.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
			b.state = HalfOpen
			b.probes = 0
			b.probing = 0
		} else {
			b.stats.Rejected++
			return false
		}
	}
	if b.state == HalfOpen {
		if b.probing > 0 {
			b.stats.Rejected++
			return false
		}
		b.probing++
	}
	return true
}

// Record reports the outcome of an allowed request.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probing > 0 {
		b.probing--
	}
	if err == nil {
		b.stats.Successes++
		switch b.state {
		case HalfOpen:
			b.probes++
			if b.probes >= b.cfg.HalfOpenProbes {
				b.state = Closed
				b.fails = 0
			}
		default:
			b.fails = 0
		}
		return
	}
	b.stats.Failures++
	switch b.state {
	case HalfOpen:
		b.trip()
	default: // Closed
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the breaker. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.clk.Now()
	b.fails = 0
	b.probes = 0
	b.probing = 0
	b.stats.Trips++
}

// Do runs fn behind the breaker: ErrOpen without calling fn while open,
// otherwise fn's error (recorded).
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return fmt.Errorf("%w: %s", ErrOpen, b.name)
	}
	err := fn()
	b.Record(err)
	return err
}

// State returns the current state (resolving an elapsed open window to
// half-open, as Allow would).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.clk.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		return HalfOpen
	}
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.State = b.state
	return st
}

// Backoff computes jittered exponential retry delays:
//
//	delay(n) = min(Max, Base·Factor^n) · uniform(1-Jitter, 1+Jitter)
//
// for attempt n = 0, 1, 2, ... Jitter de-synchronises retry storms: when
// a smarthost tempfails a whole queue, the retries must not arrive as one
// thundering herd.
type Backoff struct {
	// Base is the attempt-0 delay (default 1s).
	Base time.Duration
	// Max caps the un-jittered delay (default 5m).
	Max time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Jitter is the ± fraction of randomisation (default 0.2; 0 disables).
	Jitter float64
}

// DefaultBackoff returns the stock schedule: 1s·2ⁿ capped at 5m, ±20%.
func DefaultBackoff() Backoff {
	return Backoff{Base: time.Second, Max: 5 * time.Minute, Factor: 2, Jitter: 0.2}
}

// Delay returns the wait before retry attempt n (0-based), drawing the
// jitter from rng (a nil rng disables jitter). The result is always in
// [base·(1-Jitter), min(Max, Base·Factor^n)·(1+Jitter)].
func (bo Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	base := bo.Base
	if base <= 0 {
		base = time.Second
	}
	max := bo.Max
	if max <= 0 {
		max = 5 * time.Minute
	}
	factor := bo.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if bo.Jitter > 0 && rng != nil {
		d *= 1 - bo.Jitter + 2*bo.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// Retrier runs an operation with bounded retries. Waits between attempts
// go through Sleep, so the simulation (which must never block the event
// loop) injects a no-op while live deployments pass a real sleeper.
type Retrier struct {
	// MaxAttempts bounds total calls (default 3; 1 means no retry).
	MaxAttempts int
	// Backoff computes the inter-attempt delays.
	Backoff Backoff
	// Sleep waits between attempts; nil retries immediately.
	Sleep func(time.Duration)
	// Retryable reports whether err is worth retrying; nil retries all
	// non-nil errors.
	Retryable func(error) bool

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier returns a Retrier with a seeded jitter source.
func NewRetrier(maxAttempts int, bo Backoff, seed int64) *Retrier {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	return &Retrier{MaxAttempts: maxAttempts, Backoff: bo, rng: rand.New(rand.NewSource(seed))}
}

// Do calls fn up to MaxAttempts times, sleeping the backoff delay between
// attempts, and returns the last error.
func (r *Retrier) Do(fn func() error) error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if r.Retryable != nil && !r.Retryable(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		r.mu.Lock()
		d := r.Backoff.Delay(i, r.rng)
		r.mu.Unlock()
		if r.Sleep != nil {
			r.Sleep(d)
		}
	}
	return err
}
