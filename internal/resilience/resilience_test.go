package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

var (
	epoch   = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	errBoom = errors.New("boom")
)

func TestBreakerClosedToOpen(t *testing.T) {
	clk := clock.NewSim(epoch)
	b := NewBreaker("dep", BreakerConfig{FailureThreshold: 3, OpenTimeout: 30 * time.Second}, clk)

	// Failures below the threshold keep it closed; a success resets the
	// consecutive count.
	b.Record(errBoom)
	b.Record(errBoom)
	b.Record(nil)
	b.Record(errBoom)
	b.Record(errBoom)
	if got := b.State(); got != Closed {
		t.Fatalf("state after interleaved failures = %v, want closed", got)
	}
	b.Record(errBoom) // third consecutive
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
	if st := b.Stats(); st.Trips != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want 1 trip / 1 rejection", st)
	}
}

func TestBreakerHalfOpenProbeSuccess(t *testing.T) {
	clk := clock.NewSim(epoch)
	b := NewBreaker("dep", BreakerConfig{FailureThreshold: 1, OpenTimeout: 30 * time.Second, HalfOpenProbes: 2}, clk)

	b.Record(errBoom)
	if b.Allow() {
		t.Fatal("freshly tripped breaker allowed a request")
	}
	clk.Advance(30 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after OpenTimeout")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after timeout = %v, want half-open", got)
	}
	b.Record(nil)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after 1/2 probes = %v, want half-open", got)
	}
	b.Record(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2/2 probes = %v, want closed", got)
	}
}

func TestBreakerHalfOpenProbeFailure(t *testing.T) {
	clk := clock.NewSim(epoch)
	b := NewBreaker("dep", BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Minute}, clk)

	b.Record(errBoom)
	clk.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(errBoom) // probe fails: re-open immediately
	if b.Allow() {
		t.Fatal("breaker closed again after a failed probe")
	}
	if st := b.Stats(); st.Trips != 2 {
		t.Errorf("trips = %d, want 2", st.Trips)
	}
	// The re-opened window starts fresh.
	clk.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe window never opened")
	}
}

func TestBreakerDo(t *testing.T) {
	clk := clock.NewSim(epoch)
	b := NewBreaker("dep", BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour}, clk)
	if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	called := false
	err := b.Do(func() error { called = true; return nil })
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen", err)
	}
	if called {
		t.Fatal("fn called while breaker open")
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	bo := Backoff{Base: time.Second, Max: 5 * time.Minute, Factor: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		raw := float64(time.Second) * pow2(attempt)
		if raw > float64(5*time.Minute) {
			raw = float64(5 * time.Minute)
		}
		lo := time.Duration(raw * 0.8)
		hi := time.Duration(raw * 1.2)
		for i := 0; i < 200; i++ {
			d := bo.Delay(attempt, rng)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	// Nil rng disables jitter: exact exponential values.
	if d := bo.Delay(3, nil); d != 8*time.Second {
		t.Errorf("unjittered delay(3) = %v, want 8s", d)
	}
	if d := bo.Delay(20, nil); d != 5*time.Minute {
		t.Errorf("unjittered delay(20) = %v, want the 5m cap", d)
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

func TestRetrierBoundedAttemptsNoSleep(t *testing.T) {
	r := NewRetrier(4, DefaultBackoff(), 7)
	var slept []time.Duration
	r.Sleep = func(d time.Duration) { slept = append(slept, d) }

	calls := 0
	err := r.Do(func() error { calls++; return errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
	// Sleeps happen between attempts only, with growing jittered delays.
	if len(slept) != 3 {
		t.Fatalf("sleeps = %d, want 3", len(slept))
	}
	for i, d := range slept {
		raw := float64(time.Second) * pow2(i)
		if d < time.Duration(raw*0.8) || d > time.Duration(raw*1.2) {
			t.Errorf("sleep %d = %v outside ±20%% of %v", i, d, time.Duration(raw))
		}
	}

	// Success on attempt 2 stops the loop.
	calls = 0
	err = r.Do(func() error {
		calls++
		if calls < 2 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Errorf("retry-then-succeed: err=%v calls=%d", err, calls)
	}
}

func TestRetrierRetryablePredicate(t *testing.T) {
	r := NewRetrier(5, DefaultBackoff(), 1)
	r.Retryable = func(err error) bool { return !errors.Is(err, errBoom) }
	calls := 0
	if err := r.Do(func() error { calls++; return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 1 {
		t.Errorf("non-retryable error retried %d times", calls)
	}
}

func TestHalfOpenAdmitsSingleConcurrentProbe(t *testing.T) {
	clk := clock.NewSim(epoch)
	b := NewBreaker("dep", BreakerConfig{FailureThreshold: 1, OpenTimeout: 30 * time.Second}, clk)
	b.Record(errBoom) // trip
	if b.State() != Open {
		t.Fatal("breaker not open")
	}
	clk.Advance(time.Minute) // past OpenTimeout: next Allow goes half-open

	// A stampede of recovered traffic races the half-open transition.
	// Exactly one request may probe the dependency; the rest are
	// rejected until that probe reports back.
	const goroutines = 32
	var wg sync.WaitGroup
	var admitted int32
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				atomic.AddInt32(&admitted, 1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", admitted)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open while probe in flight", b.State())
	}

	// The single probe fails: the breaker re-opens immediately and
	// everyone is refused again.
	b.Record(errBoom)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("request admitted right after a failed probe re-opened the breaker")
	}

	// Next window: the probe succeeds and the breaker closes for all.
	clk.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe not admitted in new half-open window")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	var wg2 sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if !b.Allow() {
				t.Error("closed breaker refused a request")
			}
			b.Record(nil)
		}()
	}
	wg2.Wait()
}
