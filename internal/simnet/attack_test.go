package simnet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mail"
)

// TestTargetedAttackBypassesCRByDesign reproduces the §4.1 observation:
// CR filters are ineffective by design against targeted attacks — an
// attacker who uses a real, attacker-controlled sender address receives
// the challenge and simply solves it, delivering the malicious message
// AND whitelisting himself for all future mail. (The paper cites
// Symantec: only ~1 in 5,000 spam messages is targeted, and no anti-spam
// class stops them.)
func TestTargetedAttackBypassesCRByDesign(t *testing.T) {
	w := newWorld(t, 77)
	r := w.addRemote("attacker.example", "192.0.2.200")
	// The attacker watches his real mailbox and solves immediately.
	attacker := Behavior{
		VisitProb:           1,
		SolveProbGivenVisit: 1,
		Delay:               DefaultBehavior(PersonaLegit).Delay,
		AttemptsDist:        []float64{1}, // first try, obviously
	}
	r.AddMailboxBehavior("mallory", PersonaLegit, attacker)

	// The hand-crafted spear-phish.
	w.inject("mallory@attacker.example", "192.0.2.200")
	w.sched.RunFor(7 * 24 * time.Hour)

	eng := w.comp.Engine
	if got := eng.Metrics().Delivered[core.ViaChallenge]; got != 1 {
		t.Fatalf("targeted message deliveries = %d; CR cannot stop a solving attacker", got)
	}
	bob := mail.MustParseAddress("bob@corp.example")
	mallory := mail.MustParseAddress("mallory@attacker.example")
	if !eng.Whitelists().IsWhite(bob, mallory) {
		t.Fatal("attacker not whitelisted after solving — but he is now trusted forever")
	}

	// Follow-up attack mail flows straight to the inbox, unchallenged.
	w.inject("mallory@attacker.example", "192.0.2.200")
	if got := eng.Metrics().SpoolWhite; got != 1 {
		t.Fatalf("follow-up not instant-delivered: white=%d", got)
	}
	if got := eng.Metrics().ChallengesSent; got != 1 {
		t.Fatalf("follow-up was re-challenged: %d", got)
	}

	// The user's only defence is the blacklist.
	eng.Whitelists().RemoveWhite(bob, mallory)
	eng.Whitelists().AddBlack(bob, mallory)
	w.inject("mallory@attacker.example", "192.0.2.200")
	if got := eng.Metrics().SpoolBlack; got != 1 {
		t.Fatalf("blacklisted attacker not dropped: black=%d", got)
	}
}
