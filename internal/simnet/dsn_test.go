package simnet

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/whitelist"
)

// newDSNWorld builds a single-company network with DSN emission enabled.
func newDSNWorld(t *testing.T) *world {
	t.Helper()
	w := &world{clk: clock.NewSim(t0)}
	w.sched = clock.NewScheduler(w.clk)
	w.dns = dnssim.NewServer()
	w.provs = rbl.StandardProviders(w.clk)
	w.traps = rbl.NewTrapRegistry(w.provs...)
	w.net = New(w.clk, w.sched, w.dns, w.provs, w.traps, Config{Seed: 3, EmitDSNs: true})

	chain := filters.NewChain(filters.NewAntivirus(), filters.NewReverseDNS(w.dns))
	eng := core.New(core.Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, w.clk, w.dns, chain, whitelist.NewStore(w.clk), nil)
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	w.dns.RegisterMailDomain("corp.example", "198.51.100.1")
	w.comp = &Company{Name: "corp", Engine: eng, ChallengeIP: "198.51.100.1", MailIP: "198.51.100.1"}
	w.net.AttachCompany(w.comp)
	return w
}

func TestBouncedChallengeProducesDSN(t *testing.T) {
	w := newDSNWorld(t)
	w.addRemote("example.com", "192.0.2.10") // mailbox will not exist
	w.inject("ghost@example.com", "192.0.2.10")
	w.sched.RunFor(time.Hour)

	rec := w.net.Records()[0]
	if rec.Status != StatusBouncedNoUser {
		t.Fatalf("status = %v", rec.Status)
	}
	m := w.comp.Engine.Metrics()
	// The engine saw two messages: the spam and the DSN for its own
	// bounced challenge.
	if m.MTAIncoming != 2 {
		t.Fatalf("MTAIncoming = %d, want 2 (original + DSN)", m.MTAIncoming)
	}
	// The DSN is null-sender: quarantined for the digest, never
	// challenged (no mail loop).
	if m.QuarantineOnly != 1 {
		t.Fatalf("QuarantineOnly = %d, want 1 (the DSN)", m.QuarantineOnly)
	}
	if m.ChallengesSent != 1 {
		t.Fatalf("ChallengesSent = %d — challenging a DSN would loop", m.ChallengesSent)
	}
	// The DSN lands in the challenge mailbox's pending list.
	pending := w.comp.Engine.PendingForUser(mail.MustParseAddress("challenge@corp.example"))
	if len(pending) != 1 || !pending[0].Sender.IsNull() {
		t.Fatalf("challenge-mailbox pending = %+v", pending)
	}
}

func TestExpiredChallengeProducesDSN(t *testing.T) {
	w := newDSNWorld(t)
	r := w.addRemote("deadmx.example", "192.0.2.66")
	r.Unreachable = true
	w.inject("x@deadmx.example", "192.0.2.66")
	w.sched.RunFor(10 * 24 * time.Hour)

	if w.net.Records()[0].Status != StatusExpired {
		t.Fatalf("status = %v", w.net.Records()[0].Status)
	}
	if got := w.comp.Engine.Metrics().QuarantineOnly; got != 1 {
		t.Fatalf("expired challenge produced %d DSNs, want 1", got)
	}
}

func TestDeliveredChallengeProducesNoDSN(t *testing.T) {
	w := newDSNWorld(t)
	r := w.addRemote("example.com", "192.0.2.10")
	r.AddMailbox("alice", PersonaRobot) // delivered, ignored
	w.inject("alice@example.com", "192.0.2.10")
	w.sched.RunFor(time.Hour)

	if got := w.comp.Engine.Metrics().MTAIncoming; got != 1 {
		t.Fatalf("MTAIncoming = %d, want 1 (no DSN for delivered challenges)", got)
	}
}

func TestDSNDisabledByDefault(t *testing.T) {
	w := newWorld(t, 44) // EmitDSNs false
	w.addRemote("example.com", "192.0.2.10")
	w.inject("ghost@example.com", "192.0.2.10")
	w.sched.RunFor(time.Hour)
	if got := w.comp.Engine.Metrics().MTAIncoming; got != 1 {
		t.Fatalf("MTAIncoming = %d; DSNs should be off by default", got)
	}
}
