package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/mail"
	"repro/internal/rbl"
)

// ChallengeStatus is the final delivery status of one challenge email,
// the classification behind Figure 4(a).
type ChallengeStatus int

// Challenge delivery outcomes.
const (
	// StatusPending: still being attempted.
	StatusPending ChallengeStatus = iota
	// StatusDelivered: accepted by the destination server.
	StatusDelivered
	// StatusBouncedNoUser: rejected because the recipient does not exist
	// (71.7% of the study's bounces — the spoofed-sender signature).
	StatusBouncedNoUser
	// StatusBouncedNoDomain: the recipient domain has no mail server.
	StatusBouncedNoDomain
	// StatusBouncedBlacklisted: rejected because the challenge server's
	// IP is on a blocklist the destination consults (§5.1).
	StatusBouncedBlacklisted
	// StatusExpired: all delivery attempts failed transiently and the
	// message aged out of the outbound queue.
	StatusExpired
)

// String returns the status label.
func (s ChallengeStatus) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusDelivered:
		return "delivered"
	case StatusBouncedNoUser:
		return "bounced-no-user"
	case StatusBouncedNoDomain:
		return "bounced-no-domain"
	case StatusBouncedBlacklisted:
		return "bounced-blacklisted"
	case StatusExpired:
		return "expired"
	default:
		return fmt.Sprintf("ChallengeStatus(%d)", int(s))
	}
}

// Bounced reports whether the status is any bounce variant.
func (s ChallengeStatus) Bounced() bool {
	return s == StatusBouncedNoUser || s == StatusBouncedNoDomain || s == StatusBouncedBlacklisted
}

// ChallengeRecord tracks one challenge through delivery and solving.
type ChallengeRecord struct {
	Challenge core.OutboundChallenge
	Company   string
	FromIP    string
	Status    ChallengeStatus
	Attempts  int // delivery attempts
	Delivered time.Time
	Visited   bool
	Solved    bool
	SolvedAt  time.Time
	// CaptchaAttempts is the number of answer submissions used on a
	// successful solve (1 = first try).
	CaptchaAttempts int
	TrapHit         bool
	Persona         Persona // meaningful when delivered to an existing mailbox
}

// Company is one CR installation attached to the network.
type Company struct {
	// Name identifies the company in reports.
	Name string
	// Engine is the company's CR engine.
	Engine *core.Engine
	// ChallengeIP is the MTA-OUT address used for challenges.
	ChallengeIP string
	// MailIP is the MTA-OUT address used for ordinary user mail. A third
	// of the study's installations used a second IP here to shield user
	// mail from challenge-induced blacklisting (§5.1).
	MailIP string

	// lane is the company's private execution context when the fleet
	// drives companies in parallel (AttachCompanyLane); nil for
	// companies attached with AttachCompany, which share the network's
	// global clock/scheduler/RNG.
	lane *lane
}

// lane holds the per-company clock, scheduler, RNG stream and ID source
// used under epoch-barrier parallel execution, plus the buffer of trap
// hits deferred to the next barrier. A lane is only ever touched by the
// one worker advancing its company within an epoch (and by the barrier
// flush, which the worker-pool join sequences after), so it needs no
// locking of its own.
type lane struct {
	clk      *clock.Sim
	sched    *clock.Scheduler
	rng      *rand.Rand
	ids      *mail.IDSource
	trapHits []trapHit
}

// trapHit is one deferred spamtrap delivery: the cross-company side
// effect (feeding every blocklist provider) is applied at the epoch
// barrier in company-name order so aggregate listing state is
// independent of worker count.
type trapHit struct {
	to mail.Address
	ip string
}

// SplitMTAOut reports whether challenges and user mail use distinct IPs.
func (c *Company) SplitMTAOut() bool { return c.ChallengeIP != c.MailIP }

// UserMailOutcome is the fate of an ordinary outbound user message, used
// by the split-MTA-OUT ablation.
type UserMailOutcome int

// Outbound user-mail outcomes.
const (
	// UserMailDelivered: accepted by the destination.
	UserMailDelivered UserMailOutcome = iota
	// UserMailBouncedBlacklisted: rejected because the sending IP is
	// blocklisted — collateral damage of challenge backscatter.
	UserMailBouncedBlacklisted
	// UserMailBouncedNoUser: no such recipient.
	UserMailBouncedNoUser
	// UserMailFailed: destination unreachable.
	UserMailFailed
)

// Config parameterises a Network.
type Config struct {
	// Seed drives all persona randomness.
	Seed int64
	// TransitDelay is the base SMTP transit time for a challenge.
	TransitDelay time.Duration
	// RetrySchedule are the delays between delivery attempts to a
	// transiently-failing server; when exhausted the challenge expires.
	RetrySchedule []time.Duration
	// EmitDSNs, when true, turns every bounced or expired challenge into
	// a real delivery-status-notification message delivered back to the
	// originating company's MTA-IN (null envelope sender, per RFC 3464).
	// This closes the loop the paper's administrators saw in their logs:
	// a CR server's inbox fills with bounces of its own challenges. With
	// DSNs on, the engine learns bounce outcomes from the DSNs it parses
	// (processDSN) rather than from a direct transport-layer callback —
	// the two paths are never both active, so bounces count once.
	EmitDSNs bool
	// Injector is an optional fault source. Target "outbound-dsn"
	// garbles the machine-readable block of an emitted DSN, modelling a
	// reporting MTA whose bounce format the parser cannot read.
	Injector faults.Injector
}

// DefaultRetrySchedule mirrors a conventional MTA queue: growing backoff
// over roughly two days, then give up (the study's "expired after many
// unsuccessful attempts").
var DefaultRetrySchedule = []time.Duration{
	15 * time.Minute, time.Hour, 4 * time.Hour, 12 * time.Hour, 24 * time.Hour,
}

// Network is the simulated Internet: remote servers, blocklist
// providers, spamtraps, and the delivery agent. Events run on the
// caller's scheduler (virtual time).
type Network struct {
	clk       *clock.Sim
	sched     *clock.Scheduler
	dns       *dnssim.Server
	providers []*rbl.Provider
	traps     *rbl.TrapRegistry
	cfg       Config

	mu        sync.Mutex
	rng       *rand.Rand
	remotes   map[string]*RemoteServer
	companies map[string]*Company
	// sorted is the companies in name order, rebuilt on attach
	// (copy-on-write): barrier-time iteration grabs the slice under mu
	// and walks it lock-free instead of re-sorting per barrier.
	sorted []*Company
	// records are kept per company: appends for one company only ever
	// come from that company's lane (or the single driver thread), so
	// each slice has a deterministic order regardless of worker count.
	records  map[string][]*ChallengeRecord
	userMail map[UserMailOutcome]int64
	// resolvable optionally overrides dns.Resolvable on the delivery
	// path, letting the fleet route the per-attempt domain probe through
	// its resolver cache.
	resolvable func(domain string) bool
}

// New assembles a Network.
func New(clk *clock.Sim, sched *clock.Scheduler, dns *dnssim.Server, providers []*rbl.Provider, traps *rbl.TrapRegistry, cfg Config) *Network {
	if cfg.TransitDelay <= 0 {
		cfg.TransitDelay = 30 * time.Second
	}
	if len(cfg.RetrySchedule) == 0 {
		cfg.RetrySchedule = DefaultRetrySchedule
	}
	return &Network{
		clk:       clk,
		sched:     sched,
		dns:       dns,
		providers: providers,
		traps:     traps,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		remotes:   make(map[string]*RemoteServer),
		companies: make(map[string]*Company),
		records:   make(map[string][]*ChallengeRecord),
		userMail:  make(map[UserMailOutcome]int64),
	}
}

// SetResolvable overrides the domain-resolvability probe used on the
// challenge delivery path (default: the DNS server's Resolvable). The
// fleet points it at its dnscache layer.
func (n *Network) SetResolvable(f func(domain string) bool) {
	n.mu.Lock()
	n.resolvable = f
	n.mu.Unlock()
}

func (n *Network) domainResolvable(domain string) bool {
	n.mu.Lock()
	f := n.resolvable
	n.mu.Unlock()
	if f != nil {
		return f(domain)
	}
	return n.dns.Resolvable(domain)
}

// DNS returns the network's DNS server.
func (n *Network) DNS() *dnssim.Server { return n.dns }

// Traps returns the spamtrap registry.
func (n *Network) Traps() *rbl.TrapRegistry { return n.traps }

// Providers returns the blocklist providers.
func (n *Network) Providers() []*rbl.Provider { return n.providers }

// AddRemote registers a remote mail server and its DNS records. An
// unreachable server still has DNS records (the spammer's spoofed domain
// resolves; its mail server just never answers).
func (n *Network) AddRemote(r *RemoteServer) {
	n.mu.Lock()
	n.remotes[r.Domain] = r
	n.mu.Unlock()
	n.dns.RegisterMailDomain(r.Domain, r.IP)
}

// Remote returns the server for domain, or nil.
func (n *Network) Remote(domain string) *RemoteServer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.remotes[domain]
}

// AttachCompany wires a company's engine to the network: its challenges
// are delivered through the simulated Internet from its ChallengeIP.
func (n *Network) AttachCompany(c *Company) {
	n.mu.Lock()
	n.companies[c.Name] = c
	sorted := make([]*Company, 0, len(n.companies))
	for _, cc := range n.companies {
		sorted = append(sorted, cc)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	n.sorted = sorted
	n.mu.Unlock()
	c.Engine.SetChallengeSender(func(ch core.OutboundChallenge) {
		n.SubmitChallenge(c, ch)
	})
}

// AttachCompanyLane is AttachCompany for epoch-barrier parallel
// execution: the company's network events (challenge transit, retries,
// recipient reactions, DSNs) run on its own clock and scheduler, and all
// persona randomness comes from a private RNG stream seeded with seed —
// so the company's trajectory is identical regardless of how many other
// companies run beside it. Spamtrap hits are the one cross-company side
// effect; they are buffered on the lane and applied by FlushTrapHits at
// the epoch barrier.
func (n *Network) AttachCompanyLane(c *Company, clk *clock.Sim, sched *clock.Scheduler, seed int64) {
	c.lane = &lane{
		clk:   clk,
		sched: sched,
		rng:   rand.New(rand.NewSource(seed)),
		ids:   mail.NewIDSource("dsn-" + c.Name),
	}
	n.AttachCompany(c)
}

// laneCtx returns the clock and scheduler events for c must run on.
func (n *Network) laneCtx(c *Company) (*clock.Sim, *clock.Scheduler) {
	if c.lane != nil {
		return c.lane.clk, c.lane.sched
	}
	return n.clk, n.sched
}

// FlushTrapHits applies the spamtrap hits buffered by every lane since
// the last flush, in company-name-sorted order. The fleet calls it at
// fired epoch barriers, after all lanes have reached the barrier and
// before any lane resumes, so blocklist providers see an update order —
// and therefore produce listing decisions — independent of worker count.
// When onIP is non-nil it is called once per applied hit with the source
// IP (the fleet feeds these to its RBL memo invalidation).
func (n *Network) FlushTrapHits(onIP func(ip string)) int {
	flushed := 0
	for _, c := range n.companiesSorted() {
		if c.lane == nil {
			continue
		}
		for _, h := range c.lane.trapHits {
			n.traps.Hit(h.to, h.ip)
			if onIP != nil {
				onIP(h.ip)
			}
			flushed++
		}
		c.lane.trapHits = c.lane.trapHits[:0]
	}
	return flushed
}

// StagedTrapHits reports how many trap hits are buffered on lanes,
// waiting for the next FlushTrapHits. The fleet's sparse-barrier
// predicate consults it at every epoch rendezvous: a non-zero count
// means a cross-company effect is pending and the barrier must fire.
// Callers must have synchronized with the lanes (all parked), as the
// fleet's epoch rendezvous does.
func (n *Network) StagedTrapHits() int {
	staged := 0
	for _, c := range n.companiesSorted() {
		if c.lane != nil {
			staged += len(c.lane.trapHits)
		}
	}
	return staged
}

// Company returns the attached company by name, or nil.
func (n *Network) Company(name string) *Company {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.companies[name]
}

// companiesSorted returns the shared name-sorted slice (callers must
// not mutate it).
func (n *Network) companiesSorted() []*Company {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sorted
}

// Companies returns the attached companies sorted by name.
func (n *Network) Companies() []*Company {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Company, len(n.sorted))
	copy(out, n.sorted)
	return out
}

// SubmitChallenge queues a challenge for delivery after the transit
// delay. The delivery agent then walks the retry schedule.
func (n *Network) SubmitChallenge(c *Company, ch core.OutboundChallenge) {
	rec := &ChallengeRecord{
		Challenge: ch,
		Company:   c.Name,
		FromIP:    c.ChallengeIP,
		Status:    StatusPending,
	}
	n.mu.Lock()
	n.records[c.Name] = append(n.records[c.Name], rec)
	n.mu.Unlock()
	_, sched := n.laneCtx(c)
	sched.After(n.cfg.TransitDelay, func() { n.attemptDelivery(c, rec) })
}

// attemptDelivery tries to hand rec to the destination server once.
func (n *Network) attemptDelivery(c *Company, rec *ChallengeRecord) {
	rec.Attempts++
	to := rec.Challenge.To
	clk, _ := n.laneCtx(c)

	n.mu.Lock()
	remote := n.remotes[to.Domain]
	n.mu.Unlock()

	// No server for the domain (or no DNS): hard bounce. Without DSNs
	// the transport layer reports the bounce directly; with DSNs the
	// engine learns it by parsing the notification (counting it twice
	// would double the reputation penalty).
	if remote == nil || !n.domainResolvable(to.Domain) {
		rec.Status = StatusBouncedNoDomain
		if !n.cfg.EmitDSNs {
			c.Engine.RecordChallengeBounce(to)
		}
		n.emitDSN(c, rec, "", "5.1.2", "host not found")
		return
	}

	if remote.Unreachable || clk.Now().Before(remote.DownUntil) {
		n.retryOrExpire(c, rec)
		return
	}

	// Destination screens inbound mail against its blocklist: a listed
	// challenge-server IP gets a 5xx (permanent) rejection.
	if remote.Screen != nil && remote.Screen.IsListed(rec.FromIP) {
		rec.Status = StatusBouncedBlacklisted
		n.emitDSN(c, rec, remote.IP, "5.7.1", "550 connection refused: "+rec.FromIP+" listed on "+remote.Screen.Name())
		return
	}

	// Spamtraps accept everything (that is how they lure spam) and
	// report the sending IP to the blocklist providers. Under lane
	// execution the provider update is deferred to the epoch barrier so
	// listing state never depends on lane interleaving.
	if n.traps != nil && n.traps.IsTrap(to) {
		rec.Status = StatusDelivered
		rec.Delivered = clk.Now()
		rec.TrapHit = true
		if c.lane != nil {
			c.lane.trapHits = append(c.lane.trapHits, trapHit{to: to, ip: rec.FromIP})
		} else {
			n.traps.Hit(to, rec.FromIP)
		}
		return
	}

	persona, behavior, exists := remote.Lookup(to)
	if !exists {
		rec.Status = StatusBouncedNoUser
		// The spoofed-sender signature: the reputation store learns that
		// challenges to this sender bounce. (Blacklisted rejections are
		// the challenge server's own standing, not the sender's, and are
		// not recorded.) With DSNs on, the engine's DSN feedback applies
		// the penalty instead.
		if !n.cfg.EmitDSNs {
			c.Engine.RecordChallengeBounce(to)
		}
		n.emitDSN(c, rec, remote.IP, "5.1.1", "550 no such user: "+to.String())
		return
	}

	rec.Status = StatusDelivered
	rec.Delivered = clk.Now()
	rec.Persona = persona
	n.scheduleRecipientReaction(c, rec, behavior)
}

// emitDSN synthesises the delivery-status notification a remote (or the
// local queue runner) sends when a challenge cannot be delivered, and
// feeds it back into the originating company's MTA-IN after a transit
// delay. DSNs use the null reverse-path, so the engine never challenges
// them (that would loop); they sit in the gray spool for the digest.
// The body carries an RFC 3464-style field block — enhanced status code
// plus the original message ID — so the engine's DSN parser can
// correlate the bounce back to the challenged gray message.
func (n *Network) emitDSN(c *Company, rec *ChallengeRecord, srcIP, status, reason string) {
	if !n.cfg.EmitDSNs {
		return
	}
	if srcIP == "" {
		// Local-queue DSNs (expiry, no-domain) originate from the
		// company's own MTA-OUT.
		srcIP = c.MailIP
	}
	clk, sched := n.laneCtx(c)
	id := mail.NewID("dsn")
	if c.lane != nil {
		id = c.lane.ids.Next()
	}
	body := mail.FormatDSNBody(rec.Challenge.To.String(), status, reason, rec.Challenge.MsgID)
	if n.cfg.Injector != nil {
		if d := n.cfg.Injector.Decide("outbound-dsn", 0); d.Err != nil {
			// A garbling reporting MTA: the machine-readable block is
			// destroyed, so the engine sees an uncorrelatable bounce
			// and must degrade gracefully, never crash.
			body = "\xff\xfe<<" + reason + ">> =?garbage?= \x00"
		}
	}
	dsn := &mail.Message{
		ID:           id,
		EnvelopeFrom: mail.Null,
		Rcpt:         rec.Challenge.From,
		Subject:      "Undelivered Mail Returned to Sender",
		Body:         body,
		Size:         1200 + len(reason),
		ClientIP:     srcIP,
		Received:     clk.Now(),
	}
	sched.After(n.cfg.TransitDelay, func() { c.Engine.Receive(dsn) })
}

func (n *Network) retryOrExpire(c *Company, rec *ChallengeRecord) {
	idx := rec.Attempts - 1
	if idx >= len(n.cfg.RetrySchedule) {
		rec.Status = StatusExpired
		n.emitDSN(c, rec, "", "4.4.7", "delivery time expired")
		return
	}
	_, sched := n.laneCtx(c)
	sched.After(n.cfg.RetrySchedule[idx], func() { n.attemptDelivery(c, rec) })
}

// scheduleRecipientReaction decides, per the mailbox behavior profile,
// whether the challenge URL gets visited and solved, and schedules those
// actions in virtual time.
func (n *Network) scheduleRecipientReaction(c *Company, rec *ChallengeRecord, b Behavior) {
	var visit, solve bool
	var delay time.Duration
	attempts := 1
	draw := func(rng *rand.Rand) {
		visit = rng.Float64() < b.VisitProb
		solve = visit && rng.Float64() < b.SolveProbGivenVisit
		if b.Delay != nil {
			delay = b.Delay(rng)
		}
		if len(b.AttemptsDist) > 0 {
			attempts = sampleAttempts(rng, b.AttemptsDist)
		}
	}
	if c.lane != nil {
		// Lane RNG: single-threaded within the lane, no lock needed.
		draw(c.lane.rng)
	} else {
		n.mu.Lock()
		draw(n.rng)
		n.mu.Unlock()
	}

	if !visit {
		return
	}
	clk, sched := n.laneCtx(c)
	sched.After(delay, func() {
		svc := c.Engine.Captcha()
		if _, err := svc.Visit(rec.Challenge.Token); err != nil {
			return // expired or already resolved via digest
		}
		rec.Visited = true
		if !solve {
			return
		}
		// Fumble attempts-1 times, then submit the right answer. Each
		// wrong try is a real Solve call so the service's attempt
		// counters match Figure 4(b).
		for i := 0; i < attempts-1; i++ {
			_ = svc.Solve(rec.Challenge.Token, "wrong-answer")
		}
		ans, err := svc.Answer(rec.Challenge.Token)
		if err != nil {
			return
		}
		if err := svc.Solve(rec.Challenge.Token, ans); err != nil {
			return
		}
		rec.Solved = true
		rec.SolvedAt = clk.Now()
		rec.CaptchaAttempts = attempts
	})
}

// SendUserMail models one ordinary outbound message from a company user
// through the company's MailIP, returning its fate. This is the §5.1
// collateral-damage channel: if challenge backscatter got the shared IP
// blacklisted, user mail bounces too.
func (n *Network) SendUserMail(c *Company, to mail.Address) UserMailOutcome {
	n.mu.Lock()
	remote := n.remotes[to.Domain]
	n.mu.Unlock()

	outcome := UserMailDelivered
	switch {
	case remote == nil || remote.Unreachable:
		outcome = UserMailFailed
	case remote.Screen != nil && remote.Screen.IsListed(c.MailIP):
		outcome = UserMailBouncedBlacklisted
	default:
		if _, _, ok := remote.Lookup(to); !ok && !(n.traps != nil && n.traps.IsTrap(to)) {
			outcome = UserMailBouncedNoUser
		}
	}
	n.mu.Lock()
	n.userMail[outcome]++
	n.mu.Unlock()
	return outcome
}

// UserMailStats returns the outbound user-mail outcome counters.
func (n *Network) UserMailStats() map[UserMailOutcome]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[UserMailOutcome]int64, len(n.userMail))
	for k, v := range n.userMail {
		out[k] = v
	}
	return out
}

// Records returns a snapshot of all challenge records, grouped by
// company in name order (submission order within each company).
func (n *Network) Records() []*ChallengeRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.records))
	total := 0
	for name, recs := range n.records {
		names = append(names, name)
		total += len(recs)
	}
	sort.Strings(names)
	out := make([]*ChallengeRecord, 0, total)
	for _, name := range names {
		out = append(out, n.records[name]...)
	}
	return out
}

// DeliveryStats aggregates challenge records into the Figure 4(a)
// distribution plus the solve/visit bookkeeping of §3.2.
type DeliveryStats struct {
	Total        int
	ByStatus     map[ChallengeStatus]int
	TrapHits     int
	Solved       int
	VisitedOnly  int
	NeverVisited int // delivered (non-trap) but URL never opened
}

// DeliveryStats computes the aggregate over all records.
func (n *Network) DeliveryStats() DeliveryStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := DeliveryStats{ByStatus: make(map[ChallengeStatus]int)}
	for _, recs := range n.records {
		for _, r := range recs {
			st.Total++
			st.ByStatus[r.Status]++
			if r.TrapHit {
				st.TrapHits++
			}
			if r.Status == StatusDelivered && !r.TrapHit {
				switch {
				case r.Solved:
					st.Solved++
				case r.Visited:
					st.VisitedOnly++
				default:
					st.NeverVisited++
				}
			} else if r.Status == StatusDelivered && r.TrapHit {
				st.NeverVisited++
			}
		}
	}
	return st
}

// AttemptsHistogram returns, over solved challenges, how many CAPTCHA
// attempts each took (keys 1..5) — Figure 4(b). Solved challenges are
// removed from the captcha services on delivery, so the records are the
// surviving source of truth.
func (n *Network) AttemptsHistogram() map[int]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int]int)
	for _, recs := range n.records {
		for _, r := range recs {
			if r.Solved && r.CaptchaAttempts > 0 {
				out[r.CaptchaAttempts]++
			}
		}
	}
	return out
}
