// Package simnet simulates the Internet surrounding the CR deployments:
// the remote mail servers that receive challenges (and bounce, blacklist
// or accept them), the humans and robots behind remote mailboxes (who
// ignore, visit or solve challenges), the spamtraps feeding blocklists,
// and the delivery agent with its retry/expiry schedule.
//
// This is the substitution for the paper's real six-month Internet
// exposure: every observable the study measured — challenge delivery
// status (Figure 4a), CAPTCHA attempts (4b), solve delays (7/8), server
// blacklisting (11) — is produced by these models rather than assumed.
package simnet

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/mail"
	"repro/internal/rbl"
)

// Persona models who is behind a remote mailbox, which determines what
// happens when a challenge (mis)lands there.
type Persona int

// Personas.
const (
	// PersonaLegit is a real correspondent who actually sent the original
	// message: very likely to open and solve the challenge quickly.
	PersonaLegit Persona = iota
	// PersonaNewsletter is the operator of a marketing/newsletter sending
	// program: solves challenges with operator-dependent diligence (the
	// paper saw high-sender-similarity clusters with up to 97% solves).
	PersonaNewsletter
	// PersonaInnocent is a bystander whose address was spoofed by spam:
	// almost always ignores the misdirected challenge, very rarely solves
	// it (the paper's ~1-in-10,000 spurious spam delivery, §4.1).
	PersonaInnocent
	// PersonaRobot is an automated sender (notification system, receipt
	// mailer): its mailbox exists but nothing ever reads challenges.
	PersonaRobot
)

// String returns the persona label.
func (p Persona) String() string {
	switch p {
	case PersonaLegit:
		return "legit"
	case PersonaNewsletter:
		return "newsletter"
	case PersonaInnocent:
		return "innocent"
	case PersonaRobot:
		return "robot"
	default:
		return "unknown"
	}
}

// Behavior is the challenge-handling profile of a persona: whether the
// challenge URL gets opened, whether the CAPTCHA gets solved, after how
// long, and in how many attempts.
type Behavior struct {
	// VisitProb is the probability the challenge URL is ever opened.
	VisitProb float64
	// SolveProbGivenVisit is the probability a visit leads to a solve.
	SolveProbGivenVisit float64
	// Delay samples the time between challenge delivery and the visit.
	Delay func(rng *rand.Rand) time.Duration
	// AttemptsDist is the distribution of total attempts used on a solve
	// (index i = probability of i+1 attempts). The paper observed at most
	// five attempts, ever.
	AttemptsDist []float64
}

// solveDelayCDF samples the legit-sender reaction-time distribution
// calibrated to Figure 7: ~30% within 5 minutes, ~50% within 30 minutes,
// most of the rest within 4 hours, stragglers up to 3 days.
func solveDelayCDF(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	switch {
	case u < 0.42:
		return time.Duration(rng.Int63n(int64(5 * time.Minute)))
	case u < 0.68:
		return 5*time.Minute + time.Duration(rng.Int63n(int64(25*time.Minute)))
	case u < 0.90:
		return 30*time.Minute + time.Duration(rng.Int63n(int64(210*time.Minute)))
	case u < 0.97:
		return 4*time.Hour + time.Duration(rng.Int63n(int64(20*time.Hour)))
	default:
		return 24*time.Hour + time.Duration(rng.Int63n(int64(48*time.Hour)))
	}
}

// operatorDelayCDF samples newsletter-operator reaction times: these are
// humans working through a queue, typically within a business day.
func operatorDelayCDF(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	switch {
	case u < 0.4:
		return time.Duration(rng.Int63n(int64(2 * time.Hour)))
	case u < 0.9:
		return 2*time.Hour + time.Duration(rng.Int63n(int64(22*time.Hour)))
	default:
		return 24*time.Hour + time.Duration(rng.Int63n(int64(48*time.Hour)))
	}
}

// defaultAttempts is calibrated to Figure 4(b): the large majority of
// solves succeed on the first try and none ever needed more than five.
var defaultAttempts = []float64{0.76, 0.15, 0.06, 0.02, 0.01}

// DefaultBehavior returns the stock behavior profile for a persona.
func DefaultBehavior(p Persona) Behavior {
	switch p {
	case PersonaLegit:
		return Behavior{
			VisitProb:           0.88,
			SolveProbGivenVisit: 0.95,
			Delay:               solveDelayCDF,
			AttemptsDist:        defaultAttempts,
		}
	case PersonaNewsletter:
		return Behavior{
			VisitProb:           0.75,
			SolveProbGivenVisit: 0.90,
			Delay:               operatorDelayCDF,
			AttemptsDist:        defaultAttempts,
		}
	case PersonaInnocent:
		return Behavior{
			// Misdirected challenges are overwhelmingly ignored; the tiny
			// solve tail is the §4.1 spurious-delivery channel.
			VisitProb:           0.010,
			SolveProbGivenVisit: 0.08,
			Delay:               operatorDelayCDF,
			AttemptsDist:        defaultAttempts,
		}
	case PersonaRobot:
		return Behavior{VisitProb: 0, SolveProbGivenVisit: 0, Delay: solveDelayCDF, AttemptsDist: defaultAttempts}
	default:
		return Behavior{Delay: solveDelayCDF, AttemptsDist: defaultAttempts}
	}
}

// sampleAttempts draws a total attempt count from dist (1-based).
func sampleAttempts(rng *rand.Rand, dist []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if u < acc {
			return i + 1
		}
	}
	return len(dist)
}

// RemoteServer models one external mail domain: which mailboxes exist,
// who is behind them, whether inbound mail is screened against
// blocklists, and whether the server is reachable at all.
type RemoteServer struct {
	// Domain is the mail domain this server is authoritative for.
	Domain string
	// IP is the server's address (registered in DNS by the network).
	IP string
	// Screen, when non-nil, is the blocklist this server consults for
	// inbound mail: connections from IPs listed there are rejected with
	// a 5xx — the mechanism that turns a blacklisted challenge-server IP
	// into bounced challenges (§5.1). Real MTAs subscribe to one or two
	// lists, not all of them.
	Screen *rbl.Provider
	// Unreachable, when true, makes every delivery attempt fail
	// transiently; challenges to it eventually expire (Figure 4a's
	// "expired" slice). Spammers routinely spoof such domains.
	Unreachable bool
	// DownUntil models a transient outage: delivery attempts before this
	// instant fail temporarily and are retried; once the server is back,
	// queued challenges get through (late, but delivered).
	DownUntil time.Time

	mu        sync.RWMutex
	mailboxes map[string]Persona // by lower-case local part
	behaviors map[string]Behavior
}

// NewRemoteServer returns an empty remote mail server for domain.
func NewRemoteServer(domain, ip string) *RemoteServer {
	return &RemoteServer{
		Domain:    domain,
		IP:        ip,
		mailboxes: make(map[string]Persona),
		behaviors: make(map[string]Behavior),
	}
}

// AddMailbox registers a mailbox with the stock behavior of p.
func (r *RemoteServer) AddMailbox(local string, p Persona) {
	r.AddMailboxBehavior(local, p, DefaultBehavior(p))
}

// AddMailboxBehavior registers a mailbox with a custom behavior profile.
func (r *RemoteServer) AddMailboxBehavior(local string, p Persona, b Behavior) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := mail.Address{Local: local, Domain: r.Domain}.Key()
	r.mailboxes[key] = p
	r.behaviors[key] = b
}

// Lookup returns the persona and behavior for addr, and whether the
// mailbox exists.
func (r *RemoteServer) Lookup(addr mail.Address) (Persona, Behavior, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.mailboxes[addr.Key()]
	if !ok {
		return 0, Behavior{}, false
	}
	return p, r.behaviors[addr.Key()], true
}

// Mailboxes returns the number of registered mailboxes.
func (r *RemoteServer) Mailboxes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.mailboxes)
}
