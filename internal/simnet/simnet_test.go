package simnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/filters"
	"repro/internal/mail"
	"repro/internal/rbl"
	"repro/internal/whitelist"
)

var t0 = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

// world bundles a single-company network for tests.
type world struct {
	clk   *clock.Sim
	sched *clock.Scheduler
	dns   *dnssim.Server
	provs []*rbl.Provider
	traps *rbl.TrapRegistry
	net   *Network
	comp  *Company
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	w := &world{clk: clock.NewSim(t0)}
	w.sched = clock.NewScheduler(w.clk)
	w.dns = dnssim.NewServer()
	w.provs = rbl.StandardProviders(w.clk)
	w.traps = rbl.NewTrapRegistry(w.provs...)
	w.net = New(w.clk, w.sched, w.dns, w.provs, w.traps, Config{Seed: seed})

	spamhaus := w.provs[2] // the engine's RBL filter input
	chain := filters.NewChain(
		filters.NewAntivirus(),
		filters.NewReverseDNS(w.dns),
		filters.NewRBL(spamhaus),
	)
	wl := whitelist.NewStore(w.clk)
	eng := core.New(core.Config{
		Name:             "corp",
		Domains:          []string{"corp.example"},
		QuarantineTTL:    30 * 24 * time.Hour,
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
		ChallengeSize:    1800,
		Seed:             seed,
	}, w.clk, w.dns, chain, wl, nil)
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	w.dns.RegisterMailDomain("corp.example", "198.51.100.1")

	w.comp = &Company{Name: "corp", Engine: eng, ChallengeIP: "198.51.100.1", MailIP: "198.51.100.1"}
	w.net.AttachCompany(w.comp)
	return w
}

// addRemote registers a well-behaved remote domain and returns it.
func (w *world) addRemote(domain, ip string) *RemoteServer {
	r := NewRemoteServer(domain, ip)
	w.net.AddRemote(r)
	return r
}

// inject feeds one message from sender into the company engine.
func (w *world) inject(senderAddr string, clientIP string) *mail.Message {
	m := &mail.Message{
		ID:           mail.NewID("sn"),
		EnvelopeFrom: mail.MustParseAddress(senderAddr),
		Rcpt:         mail.MustParseAddress("bob@corp.example"),
		Subject:      "subject line with enough words to be ordinary",
		Size:         4000,
		ClientIP:     clientIP,
		Received:     w.clk.Now(),
	}
	w.comp.Engine.Receive(m)
	return m
}

func TestChallengeDeliveredAndSolvedByLegitSender(t *testing.T) {
	w := newWorld(t, 1)
	r := w.addRemote("example.com", "192.0.2.10")
	// Guarantee a deterministic solve: visit always, solve always.
	b := DefaultBehavior(PersonaLegit)
	b.VisitProb, b.SolveProbGivenVisit = 1, 1
	r.AddMailboxBehavior("alice", PersonaLegit, b)

	w.inject("alice@example.com", "192.0.2.10")
	if got := len(w.net.Records()); got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
	w.sched.RunFor(7 * 24 * time.Hour)

	rec := w.net.Records()[0]
	if rec.Status != StatusDelivered {
		t.Fatalf("status = %v", rec.Status)
	}
	if !rec.Solved || !rec.Visited {
		t.Fatalf("record not solved: %+v", rec)
	}
	if rec.CaptchaAttempts < 1 || rec.CaptchaAttempts > 5 {
		t.Fatalf("attempts = %d, want 1..5 (paper: never >5)", rec.CaptchaAttempts)
	}
	// Engine side: message delivered via challenge, sender whitelisted.
	eng := w.comp.Engine
	if eng.Metrics().Delivered[core.ViaChallenge] != 1 {
		t.Fatal("engine did not deliver on solve")
	}
	if !eng.Whitelists().IsWhite(mail.MustParseAddress("bob@corp.example"), mail.MustParseAddress("alice@example.com")) {
		t.Fatal("sender not whitelisted after solve")
	}
}

func TestChallengeBouncesNoUser(t *testing.T) {
	w := newWorld(t, 2)
	w.addRemote("example.com", "192.0.2.10") // domain exists, mailbox doesn't
	w.inject("ghost@example.com", "192.0.2.10")
	w.sched.RunFor(time.Hour)
	rec := w.net.Records()[0]
	if rec.Status != StatusBouncedNoUser {
		t.Fatalf("status = %v, want bounced-no-user", rec.Status)
	}
	if !rec.Status.Bounced() {
		t.Fatal("Bounced() = false")
	}
}

func TestChallengeBouncesNoDomain(t *testing.T) {
	w := newWorld(t, 3)
	// Sender domain resolvable at MTA-IN time but has no remote server:
	// register DNS only.
	w.dns.RegisterMailDomain("phantom.example", "203.0.113.99")
	w.dns.AddPTR("203.0.113.50", "mail.phantom.example")
	w.inject("x@phantom.example", "203.0.113.50")
	w.sched.RunFor(time.Hour)
	rec := w.net.Records()[0]
	if rec.Status != StatusBouncedNoDomain {
		t.Fatalf("status = %v, want bounced-no-domain", rec.Status)
	}
}

func TestChallengeExpiresForUnreachableServer(t *testing.T) {
	w := newWorld(t, 4)
	r := w.addRemote("deadmx.example", "192.0.2.66")
	r.Unreachable = true
	w.inject("x@deadmx.example", "192.0.2.66")
	w.sched.RunFor(10 * 24 * time.Hour)
	rec := w.net.Records()[0]
	if rec.Status != StatusExpired {
		t.Fatalf("status = %v, want expired", rec.Status)
	}
	if rec.Attempts != len(DefaultRetrySchedule)+1 {
		t.Fatalf("attempts = %d, want %d", rec.Attempts, len(DefaultRetrySchedule)+1)
	}
}

func TestChallengeToTrapListsServerIP(t *testing.T) {
	w := newWorld(t, 5)
	w.addRemote("lure.example", "192.0.2.77")
	// Five distinct trap addresses: the engine challenges each sender
	// once (repeat senders are deduplicated), so distinct senders are
	// needed to accumulate trap hits.
	for i := 0; i < 5; i++ {
		w.traps.AddTrap(mail.MustParseAddress(fmt.Sprintf("contact%d@lure.example", i)))
	}
	for i := 0; i < 5; i++ {
		w.inject(fmt.Sprintf("contact%d@lure.example", i), "192.0.2.77")
	}
	w.sched.RunFor(time.Hour)

	st := w.net.DeliveryStats()
	if st.TrapHits != 5 {
		t.Fatalf("trap hits = %d, want 5", st.TrapHits)
	}
	listed := false
	for _, p := range w.provs {
		if p.IsListed(w.comp.ChallengeIP) {
			listed = true
		}
	}
	if !listed {
		t.Fatal("challenge IP not blacklisted after repeated trap hits")
	}
}

func TestChallengeBouncedWhenBlacklisted(t *testing.T) {
	w := newWorld(t, 6)
	r := w.addRemote("careful.example", "192.0.2.88")
	r.Screen = w.provs[0]
	r.AddMailbox("user", PersonaInnocent)
	// Pre-list the company's challenge IP on the screened provider.
	w.provs[0].AddStatic(w.comp.ChallengeIP)
	w.inject("user@careful.example", "192.0.2.88")
	w.sched.RunFor(time.Hour)
	rec := w.net.Records()[0]
	if rec.Status != StatusBouncedBlacklisted {
		t.Fatalf("status = %v, want bounced-blacklisted", rec.Status)
	}
}

func TestRobotNeverReacts(t *testing.T) {
	w := newWorld(t, 7)
	r := w.addRemote("notifier.example", "192.0.2.99")
	r.AddMailbox("noreply", PersonaRobot)
	w.inject("noreply@notifier.example", "192.0.2.99")
	w.sched.RunFor(30 * 24 * time.Hour)
	rec := w.net.Records()[0]
	if rec.Status != StatusDelivered || rec.Visited || rec.Solved {
		t.Fatalf("robot record = %+v", rec)
	}
	st := w.net.DeliveryStats()
	if st.NeverVisited != 1 {
		t.Fatalf("NeverVisited = %d", st.NeverVisited)
	}
}

func TestInnocentAlmostAlwaysIgnores(t *testing.T) {
	w := newWorld(t, 8)
	r := w.addRemote("bystander.example", "203.0.113.5")
	for i := 0; i < 300; i++ {
		r.AddMailbox(fmt.Sprintf("victim%d", i), PersonaInnocent)
	}
	for i := 0; i < 300; i++ {
		w.inject(fmt.Sprintf("victim%d@bystander.example", i), "203.0.113.5")
	}
	w.sched.RunFor(30 * 24 * time.Hour)
	st := w.net.DeliveryStats()
	if st.ByStatus[StatusDelivered] != 300 {
		t.Fatalf("delivered = %d", st.ByStatus[StatusDelivered])
	}
	// With VisitProb 0.01, solves must be rare (allow a little slack).
	if st.Solved > 5 {
		t.Fatalf("innocent solves = %d, want near 0", st.Solved)
	}
	if st.NeverVisited < 280 {
		t.Fatalf("NeverVisited = %d, want ~297", st.NeverVisited)
	}
}

func TestSendUserMailOutcomes(t *testing.T) {
	w := newWorld(t, 9)
	r := w.addRemote("partner.example", "192.0.2.123")
	r.AddMailbox("client", PersonaLegit)

	if got := w.net.SendUserMail(w.comp, mail.MustParseAddress("client@partner.example")); got != UserMailDelivered {
		t.Fatalf("outcome = %v, want delivered", got)
	}
	if got := w.net.SendUserMail(w.comp, mail.MustParseAddress("ghost@partner.example")); got != UserMailBouncedNoUser {
		t.Fatalf("outcome = %v, want no-user", got)
	}
	if got := w.net.SendUserMail(w.comp, mail.MustParseAddress("x@nowhere.example")); got != UserMailFailed {
		t.Fatalf("outcome = %v, want failed", got)
	}

	// Blacklist the shared IP: user mail to a screening destination bounces.
	r.Screen = w.provs[0]
	w.provs[0].AddStatic(w.comp.MailIP)
	if got := w.net.SendUserMail(w.comp, mail.MustParseAddress("client@partner.example")); got != UserMailBouncedBlacklisted {
		t.Fatalf("outcome = %v, want bounced-blacklisted", got)
	}
	stats := w.net.UserMailStats()
	if stats[UserMailDelivered] != 1 || stats[UserMailBouncedBlacklisted] != 1 {
		t.Fatalf("user mail stats = %v", stats)
	}
}

func TestSplitMTAOutShieldsUserMail(t *testing.T) {
	w := newWorld(t, 10)
	w.comp.ChallengeIP = "198.51.100.1"
	w.comp.MailIP = "198.51.100.2"
	if !w.comp.SplitMTAOut() {
		t.Fatal("SplitMTAOut = false")
	}
	r := w.addRemote("partner.example", "192.0.2.123")
	r.Screen = w.provs[0]
	r.AddMailbox("client", PersonaLegit)
	w.provs[0].AddStatic(w.comp.ChallengeIP) // only the challenge IP is listed
	if got := w.net.SendUserMail(w.comp, mail.MustParseAddress("client@partner.example")); got != UserMailDelivered {
		t.Fatalf("split-IP user mail = %v, want delivered", got)
	}
}

func TestAttemptsHistogramNeverExceedsFive(t *testing.T) {
	w := newWorld(t, 11)
	r := w.addRemote("example.com", "192.0.2.10")
	b := DefaultBehavior(PersonaLegit)
	b.VisitProb, b.SolveProbGivenVisit = 1, 1
	for i := 0; i < 200; i++ {
		r.AddMailboxBehavior(fmt.Sprintf("s%d", i), PersonaLegit, b)
	}
	for i := 0; i < 200; i++ {
		w.inject(fmt.Sprintf("s%d@example.com", i), "192.0.2.10")
	}
	w.sched.RunFor(14 * 24 * time.Hour)
	hist := w.net.AttemptsHistogram()
	total := 0
	for attempts, n := range hist {
		if attempts < 1 || attempts > 5 {
			t.Fatalf("attempts bucket %d outside 1..5", attempts)
		}
		total += n
	}
	if total < 190 {
		t.Fatalf("solved = %d, want ~200", total)
	}
	if hist[1] <= hist[2] {
		t.Fatalf("first-try solves (%d) should dominate second-try (%d)", hist[1], hist[2])
	}
}

func TestDeliveryStatsAggregation(t *testing.T) {
	w := newWorld(t, 12)
	r := w.addRemote("example.com", "192.0.2.10")
	b := DefaultBehavior(PersonaLegit)
	b.VisitProb, b.SolveProbGivenVisit = 1, 1
	r.AddMailboxBehavior("real", PersonaLegit, b)
	dead := w.addRemote("deadmx.example", "192.0.2.66")
	dead.Unreachable = true

	w.inject("real@example.com", "192.0.2.10")  // delivered+solved
	w.inject("ghost@example.com", "192.0.2.10") // bounce no-user
	w.inject("x@deadmx.example", "192.0.2.66")  // expired
	w.sched.RunFor(10 * 24 * time.Hour)

	st := w.net.DeliveryStats()
	if st.Total != 3 {
		t.Fatalf("total = %d", st.Total)
	}
	if st.ByStatus[StatusDelivered] != 1 || st.ByStatus[StatusBouncedNoUser] != 1 || st.ByStatus[StatusExpired] != 1 {
		t.Fatalf("ByStatus = %v", st.ByStatus)
	}
	if st.Solved != 1 {
		t.Fatalf("solved = %d", st.Solved)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[ChallengeStatus]string{
		StatusPending:            "pending",
		StatusDelivered:          "delivered",
		StatusBouncedNoUser:      "bounced-no-user",
		StatusBouncedNoDomain:    "bounced-no-domain",
		StatusBouncedBlacklisted: "bounced-blacklisted",
		StatusExpired:            "expired",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	for p, want := range map[Persona]string{
		PersonaLegit: "legit", PersonaNewsletter: "newsletter",
		PersonaInnocent: "innocent", PersonaRobot: "robot",
	} {
		if p.String() != want {
			t.Errorf("Persona(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		w := newWorld(t, 42)
		mail.ResetIDCounter()
		r := w.addRemote("example.com", "192.0.2.10")
		for i := 0; i < 50; i++ {
			r.AddMailbox(fmt.Sprintf("s%d", i), PersonaLegit)
		}
		for i := 0; i < 50; i++ {
			w.inject(fmt.Sprintf("s%d@example.com", i), "192.0.2.10")
		}
		w.sched.RunFor(7 * 24 * time.Hour)
		st := w.net.DeliveryStats()
		return st.Solved, st.NeverVisited
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("equal seeds diverged: (%d,%d) vs (%d,%d)", s1, n1, s2, n2)
	}
}

func BenchmarkChallengeRoundTrip(b *testing.B) {
	w := &world{clk: clock.NewSim(t0)}
	w.sched = clock.NewScheduler(w.clk)
	w.dns = dnssim.NewServer()
	w.provs = rbl.StandardProviders(w.clk)
	w.traps = rbl.NewTrapRegistry(w.provs...)
	w.net = New(w.clk, w.sched, w.dns, w.provs, w.traps, Config{Seed: 1})
	wl := whitelist.NewStore(w.clk)
	eng := core.New(core.Config{
		Name: "bench", Domains: []string{"corp.example"},
		ChallengeFrom:    mail.MustParseAddress("challenge@corp.example"),
		ChallengeBaseURL: "http://cr.corp.example",
	}, w.clk, w.dns, filters.NewChain(), wl, nil)
	eng.AddUser(mail.MustParseAddress("bob@corp.example"))
	w.comp = &Company{Name: "bench", Engine: eng, ChallengeIP: "198.51.100.1", MailIP: "198.51.100.1"}
	w.net.AttachCompany(w.comp)
	r := NewRemoteServer("example.com", "192.0.2.10")
	bh := DefaultBehavior(PersonaLegit)
	bh.VisitProb, bh.SolveProbGivenVisit = 1, 1
	for i := 0; i < 1000; i++ {
		r.AddMailboxBehavior(fmt.Sprintf("s%d", i), PersonaLegit, bh)
	}
	w.net.AddRemote(r)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &mail.Message{
			ID:           fmt.Sprintf("bench-%d", i),
			EnvelopeFrom: mail.Address{Local: fmt.Sprintf("s%d", i%1000), Domain: "example.com"},
			Rcpt:         mail.MustParseAddress("bob@corp.example"),
			Subject:      "bench",
			Size:         4000,
			ClientIP:     "192.0.2.10",
			Received:     w.clk.Now(),
		}
		eng.Receive(m)
		w.sched.RunFor(time.Hour)
	}
}

// TestTransientOutageDeliversLate: a destination that is down for a few
// hours receives the challenge once it recovers — the retry schedule's
// success path (as opposed to the expiry path of unreachable servers).
func TestTransientOutageDeliversLate(t *testing.T) {
	w := newWorld(t, 55)
	r := w.addRemote("flaky.example", "192.0.2.44")
	b := DefaultBehavior(PersonaLegit)
	b.VisitProb, b.SolveProbGivenVisit = 1, 1
	r.AddMailboxBehavior("carol", PersonaLegit, b)
	r.DownUntil = w.clk.Now().Add(3 * time.Hour) // outage window

	w.inject("carol@flaky.example", "192.0.2.44")
	w.sched.RunFor(10 * 24 * time.Hour)

	rec := w.net.Records()[0]
	if rec.Status != StatusDelivered {
		t.Fatalf("status = %v, want delivered after recovery", rec.Status)
	}
	if rec.Attempts < 2 {
		t.Fatalf("attempts = %d, want retries before success", rec.Attempts)
	}
	// The challenge was solved despite the late delivery.
	if !rec.Solved {
		t.Fatal("late-delivered challenge not solved")
	}
	// Delivery happened after the outage ended.
	if rec.Delivered.Before(t0.Add(3 * time.Hour)) {
		t.Fatalf("delivered at %v, during the outage", rec.Delivered)
	}
}
