package smtp

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/mail"
)

// Client is a minimal SMTP client used by the CR deployment to deliver
// challenges and outgoing user mail, and by tests to drive the server.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Extensions advertised by the server's EHLO reply.
	ext map[string]string
}

// Dial connects to addr (host:port) and consumes the greeting. The
// timeout bounds both the TCP connect and the greeting read, so a peer
// that accepts the connection but never speaks SMTP cannot hang us.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe)
// and consumes the server greeting.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		ext:  make(map[string]string),
	}
	if _, err := c.readReply(220); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the underlying connection without QUIT.
func (c *Client) Close() error { return c.conn.Close() }

// cmd sends one command line and expects the given reply code class.
func (c *Client) cmd(wantCode int, format string, args ...interface{}) (*Reply, error) {
	if _, err := fmt.Fprintf(c.bw, format+"\r\n", args...); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return c.readReply(wantCode)
}

// readReply parses a (possibly multi-line) reply. If want > 0 and the
// code differs, the reply is returned as an error.
func (c *Client) readReply(want int) (*Reply, error) {
	var code int
	var texts []string
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if len(line) < 4 {
			return nil, fmt.Errorf("smtp: short reply %q", line)
		}
		n, err := strconv.Atoi(line[:3])
		if err != nil {
			return nil, fmt.Errorf("smtp: bad reply code in %q", line)
		}
		code = n
		texts = append(texts, line[4:])
		if line[3] == ' ' {
			break
		}
		if line[3] != '-' {
			return nil, fmt.Errorf("smtp: bad reply separator in %q", line)
		}
	}
	r := &Reply{Code: code, Text: strings.Join(texts, "\n")}
	if want > 0 && code != want {
		return r, r
	}
	return r, nil
}

// Hello sends EHLO (falling back to HELO) and records extensions.
func (c *Client) Hello(domain string) error {
	r, err := c.cmd(0, "EHLO %s", domain)
	if err != nil {
		return err
	}
	if r.Code == 250 {
		for i, line := range strings.Split(r.Text, "\n") {
			if i == 0 {
				continue // greeting line
			}
			name, arg, _ := strings.Cut(line, " ")
			c.ext[strings.ToUpper(name)] = arg
		}
		return nil
	}
	if _, err := c.cmd(250, "HELO %s", domain); err != nil {
		return err
	}
	return nil
}

// Extension returns the parameter of an advertised EHLO extension and
// whether it was advertised at all.
func (c *Client) Extension(name string) (string, bool) {
	v, ok := c.ext[strings.ToUpper(name)]
	return v, ok
}

// Mail starts a transaction. A zero Address sends the null reverse-path.
func (c *Client) Mail(from mail.Address) error {
	_, err := c.cmd(250, "MAIL FROM:%s", bracket(from))
	return err
}

// Rcpt adds a recipient.
func (c *Client) Rcpt(to mail.Address) error {
	_, err := c.cmd(250, "RCPT TO:%s", bracket(to))
	return err
}

// Data sends the message body (CRLF line endings added as needed, lines
// dot-stuffed) and completes the transaction.
func (c *Client) Data(body string) error {
	if _, err := c.cmd(354, "DATA"); err != nil {
		return err
	}
	for _, line := range strings.Split(strings.ReplaceAll(body, "\r\n", "\n"), "\n") {
		if strings.HasPrefix(line, ".") {
			line = "." + line // dot-stuffing
		}
		if _, err := fmt.Fprintf(c.bw, "%s\r\n", line); err != nil {
			return err
		}
	}
	if _, err := c.bw.WriteString(".\r\n"); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	_, err := c.readReply(250)
	return err
}

// Quit ends the session politely and closes the connection.
func (c *Client) Quit() error {
	_, err := c.cmd(221, "QUIT")
	c.conn.Close()
	return err
}

// Reset aborts the current transaction.
func (c *Client) Reset() error {
	_, err := c.cmd(250, "RSET")
	return err
}

// SendMail is the convenience path: one transaction delivering body from
// from to every rcpt.
func (c *Client) SendMail(from mail.Address, rcpts []mail.Address, body string) error {
	if err := c.Mail(from); err != nil {
		return err
	}
	for _, r := range rcpts {
		if err := c.Rcpt(r); err != nil {
			return err
		}
	}
	return c.Data(body)
}

func bracket(a mail.Address) string {
	if a.IsNull() {
		return "<>"
	}
	return "<" + a.String() + ">"
}

// BuildMessage renders a simple RFC 5322 message with the given fields,
// suitable for Client.Data.
func BuildMessage(from, to mail.Address, subject, body string) string {
	h := mail.NewHeaders()
	h.Set("From", from.String())
	h.Set("To", to.String())
	h.Set("Subject", subject)
	h.Set("MIME-Version", "1.0")
	h.Set("Content-Type", "text/plain; charset=utf-8")
	return h.Render() + body
}
