package smtp

import (
	"net"
	"testing"
	"time"

	"repro/internal/mail"
)

func TestSplitVerb(t *testing.T) {
	cases := []struct {
		line, verb, args string
	}{
		{"HELO example.com", "HELO", "example.com"},
		{"helo example.com", "HELO", "example.com"},
		{"QUIT", "QUIT", ""},
		{"MAIL FROM:<a@b.example>  ", "MAIL", "FROM:<a@b.example>"},
		{"", "", ""},
	}
	for _, c := range cases {
		verb, args := splitVerb(c.line)
		if verb != c.verb || args != c.args {
			t.Errorf("splitVerb(%q) = %q, %q; want %q, %q", c.line, verb, args, c.verb, c.args)
		}
	}
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		args, prefix string
		path, params string
		ok           bool
	}{
		{"FROM:<a@b.example>", "FROM", "<a@b.example>", "", true},
		{"from:<a@b.example>", "FROM", "<a@b.example>", "", true},
		{"FROM: <a@b.example>", "FROM", "<a@b.example>", "", true},
		{"FROM:<a@b.example> SIZE=1000 BODY=8BITMIME", "FROM", "<a@b.example>", "SIZE=1000 BODY=8BITMIME", true},
		{"FROM:<>", "FROM", "<>", "", true},
		{"TO:<bob@corp.example>", "TO", "<bob@corp.example>", "", true},
		{"TO <bob@corp.example>", "TO", "", "", false}, // missing colon
		{"RCPT:<x@y.example>", "FROM", "", "", false},  // wrong prefix
	}
	for _, c := range cases {
		path, params, ok := parsePath(c.args, c.prefix)
		if ok != c.ok || path != c.path || params != c.params {
			t.Errorf("parsePath(%q, %q) = %q, %q, %v; want %q, %q, %v",
				c.args, c.prefix, path, params, ok, c.path, c.params, c.ok)
		}
	}
}

func TestParamInt(t *testing.T) {
	if n, ok := paramInt("SIZE=12345 BODY=8BITMIME", "SIZE"); !ok || n != 12345 {
		t.Fatalf("paramInt = %d, %v", n, ok)
	}
	if n, ok := paramInt("size=99", "SIZE"); !ok || n != 99 {
		t.Fatalf("case-insensitive paramInt = %d, %v", n, ok)
	}
	if _, ok := paramInt("BODY=8BITMIME", "SIZE"); ok {
		t.Fatal("missing param found")
	}
	if _, ok := paramInt("SIZE=abc", "SIZE"); ok {
		t.Fatal("non-numeric param accepted")
	}
	if _, ok := paramInt("", "SIZE"); ok {
		t.Fatal("empty params found something")
	}
}

func TestExtractHeaders(t *testing.T) {
	body := "Received: from x\r\n" +
		"From: Alice Doe <alice@example.com>\r\n" +
		"Subject: the subject line\r\n" +
		"\r\n" +
		"Subject: not this one (body)\r\n"
	subject, from, autoSub := extractHeaders(body)
	if subject != "the subject line" {
		t.Fatalf("subject = %q", subject)
	}
	if from.String() != "alice@example.com" {
		t.Fatalf("from = %v", from)
	}
	if autoSub != "" {
		t.Fatalf("auto-submitted = %q for plain mail", autoSub)
	}
}

func TestExtractHeadersAutoSubmitted(t *testing.T) {
	_, _, autoSub := extractHeaders("Auto-Submitted: Auto-Replied\r\nSubject: x\r\n\r\nbody")
	if autoSub != "auto-replied" {
		t.Fatalf("auto-submitted = %q", autoSub)
	}
	if _, _, v := extractHeaders("Auto-Submitted: no\r\n\r\nbody"); v != "" {
		t.Fatalf("Auto-Submitted: no should normalise to empty, got %q", v)
	}
}

func TestExtractHeadersMissing(t *testing.T) {
	subject, from, _ := extractHeaders("no headers at all just a body")
	// The single line is scanned as a header candidate and matches
	// nothing; both stay zero.
	if subject != "" || from != (mail.Address{}) {
		t.Fatalf("subject=%q from=%v", subject, from)
	}
}

func TestExtractHeadersCaseInsensitive(t *testing.T) {
	subject, from, _ := extractHeaders("SUBJECT: shouty\r\nfrom: <a@b.example>\r\n\r\n")
	if subject != "shouty" || from.String() != "a@b.example" {
		t.Fatalf("subject=%q from=%v", subject, from)
	}
}

// TestClientMultilineReply verifies the client parses multi-line replies
// (which EHLO produces) including the final space-separated line.
func TestClientMultilineReply(t *testing.T) {
	server, client := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer server.Close()
		buf := make([]byte, 1024)
		// Greeting.
		if _, err := server.Write([]byte("220 test ESMTP\r\n")); err != nil {
			done <- err
			return
		}
		// Read the EHLO command.
		if _, err := server.Read(buf); err != nil {
			done <- err
			return
		}
		_, err := server.Write([]byte("250-test greets you\r\n250-SIZE 1000\r\n250-PIPELINING\r\n250 HELP\r\n"))
		done <- err
	}()

	c, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Extension("SIZE"); !ok || v != "1000" {
		t.Fatalf("SIZE ext = %q, %v", v, ok)
	}
	if _, ok := c.Extension("HELP"); !ok {
		t.Fatal("final multiline line lost")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestClientBadReplies verifies malformed server replies error cleanly.
func TestClientBadReplies(t *testing.T) {
	for _, greeting := range []string{
		"22\r\n",        // short
		"abc hello\r\n", // non-numeric
		"250?weird\r\n", // bad separator
	} {
		server, client := net.Pipe()
		go func(g string) {
			server.Write([]byte(g)) //nolint:errcheck
			server.Close()
		}(greeting)
		if _, err := NewClient(client); err == nil {
			t.Errorf("greeting %q accepted", greeting)
		}
	}
}

// TestServeConnOverPipe drives a full session over net.Pipe (no TCP),
// proving the server only needs a net.Conn.
func TestServeConnOverPipe(t *testing.T) {
	backend := newBackend()
	srv := NewServer(Config{Hostname: "pipe.example", ReadTimeout: 2 * time.Second}, backend)
	server, client := net.Pipe()
	go srv.ServeConn(server)

	c, err := NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("pipeclient.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.SendMail(alice, []mail.Address{bob}, "Subject: over a pipe\r\n\r\nhello"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
	msgs := backend.messages()
	if len(msgs) != 1 || msgs[0].Subject != "over a pipe" {
		t.Fatalf("pipe delivery failed: %+v", msgs)
	}
}

func TestReplyTemporary(t *testing.T) {
	if !(&Reply{451, "x"}).Temporary() {
		t.Fatal("451 not temporary")
	}
	if (&Reply{550, "x"}).Temporary() {
		t.Fatal("550 temporary")
	}
	if got := (&Reply{550, "no such user"}).Error(); got != "550 no such user" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestBracket(t *testing.T) {
	if bracket(mail.Null) != "<>" {
		t.Fatal("null bracket wrong")
	}
	if bracket(alice) != "<alice@example.com>" {
		t.Fatalf("bracket = %q", bracket(alice))
	}
}

func TestCutPrefixFold(t *testing.T) {
	if rest, ok := cutPrefixFold("FROM:<x>", "from"); !ok || rest != ":<x>" {
		t.Fatalf("cutPrefixFold = %q, %v", rest, ok)
	}
	if _, ok := cutPrefixFold("FR", "FROM"); ok {
		t.Fatal("short string matched")
	}
}
