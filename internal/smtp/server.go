// Package smtp implements the RFC 5321 mail-transfer layer of the CR
// deployment: the server that fronts the MTA-IN and a client used to send
// challenges and user mail.
//
// The implementation is deliberately a subset: HELO/EHLO, MAIL, RCPT,
// DATA (with dot-stuffing), RSET, NOOP, VRFY and QUIT, plus the SIZE
// extension — the commands the product's mail path exercises. The server
// delegates policy to a Backend so internal/core supplies the acceptance
// decisions (including per-recipient 550s for unknown users, which is how
// the study's MTA-INs rejected 62.36% of traffic).
package smtp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mail"
)

// Reply is an SMTP status reply.
type Reply struct {
	Code int
	Text string
}

// Error returns the reply as "code text" — Reply doubles as the error
// type backends use to reject commands.
func (r *Reply) Error() string { return fmt.Sprintf("%d %s", r.Code, r.Text) }

// Temporary reports whether the reply is a 4xx transient failure.
func (r *Reply) Temporary() bool { return r.Code >= 400 && r.Code < 500 }

// Standard replies.
var (
	replyBadSequence   = &Reply{503, "bad sequence of commands"}
	replySyntax        = &Reply{501, "syntax error in parameters"}
	replyUnknown       = &Reply{500, "command not recognized"}
	replyOK            = &Reply{250, "OK"}
	replyStartData     = &Reply{354, "start mail input; end with <CRLF>.<CRLF>"}
	replyBye           = &Reply{221, "closing connection"}
	replyCannotVerify  = &Reply{252, "cannot VRFY user, but will accept message"}
	replyTooBig        = &Reply{552, "message size exceeds fixed maximum"}
	replyNoValidRcpts  = &Reply{554, "no valid recipients"}
	replyMailboxSyntax = &Reply{553, "mailbox name not allowed"}
)

// Backend supplies the policy decisions for a Server. Methods return nil
// to accept or a *Reply to reject with that status. Implementations must
// be safe for concurrent use.
type Backend interface {
	// ValidateSender is called at MAIL FROM with the parsed reverse-path.
	ValidateSender(from mail.Address) *Reply
	// ValidateRcpt is called at each RCPT TO.
	ValidateRcpt(from, rcpt mail.Address) *Reply
	// Deliver is called once per accepted recipient after DATA completes.
	// The message carries that recipient in Rcpt.
	Deliver(msg *mail.Message) *Reply
}

// Config parameterises a Server.
type Config struct {
	// Hostname is announced in the greeting and HELO replies.
	Hostname string
	// MaxMessageBytes caps DATA size (advertised via SIZE). 0 = 10 MiB.
	MaxMessageBytes int
	// MaxRecipients caps RCPT count per transaction. 0 = 100.
	MaxRecipients int
	// ReadTimeout bounds each command read. 0 = 5 minutes.
	ReadTimeout time.Duration
	// Now supplies message receipt timestamps; nil = time.Now.
	Now func() time.Time
}

// Server accepts SMTP connections and feeds accepted mail to a Backend.
type Server struct {
	cfg     Config
	backend Backend

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
}

// NewServer returns a Server with the given backend.
func NewServer(cfg Config, backend Backend) *Server {
	if cfg.Hostname == "" {
		cfg.Hostname = "mta.invalid"
	}
	if cfg.MaxMessageBytes <= 0 {
		cfg.MaxMessageBytes = 10 << 20
	}
	if cfg.MaxRecipients <= 0 {
		cfg.MaxRecipients = 100
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 5 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Server{cfg: cfg, backend: backend, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close is called. It always returns
// a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			// Lost the race with shutdown: turn the client away with a
			// tempfail instead of slamming the connection, so it retries.
			fmt.Fprintf(conn, "421 %s service shutting down, try again later\r\n", s.cfg.Hostname)
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.ServeConn(conn)
		}()
	}
}

// Close stops the listener and closes active connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

// Shutdown drains the server gracefully: it stops accepting new
// connections immediately, then waits up to timeout for in-flight
// sessions to finish their transactions before force-closing whatever
// remains. It returns true if every session ended on its own. Combined
// with a draining admission controller (new DATA payloads get 421),
// this is the SMTP half of the fail-safe drain sequence: a shutdown
// turns deliveries into retries, never losses.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return false
}

// session is the per-connection state machine.
type session struct {
	srv    *Server
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	remote string // client IP (dotted quad)

	helo string
	from mail.Address
	// gotFrom distinguishes "MAIL FROM:<>" (null sender, legal) from
	// "no MAIL yet".
	gotFrom bool
	rcpts   []mail.Address
}

// ServeConn runs one SMTP session on conn. Exposed so tests and the
// in-memory transport can drive sessions over net.Pipe.
func (s *Server) ServeConn(conn net.Conn) {
	sess := &session{
		srv:  s,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	if addr, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		sess.remote = addr.IP.String()
	} else if host, _, err := net.SplitHostPort(conn.RemoteAddr().String()); err == nil {
		sess.remote = host
	}
	sess.run()
}

func (s *session) reply(r *Reply) error {
	if _, err := fmt.Fprintf(s.bw, "%d %s\r\n", r.Code, r.Text); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *session) replyLines(code int, lines ...string) error {
	for i, l := range lines {
		sep := "-"
		if i == len(lines)-1 {
			sep = " "
		}
		if _, err := fmt.Fprintf(s.bw, "%d%s%s\r\n", code, sep, l); err != nil {
			return err
		}
	}
	return s.bw.Flush()
}

func (s *session) readLine() (string, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.ReadTimeout)); err != nil {
		return "", err
	}
	line, err := s.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (s *session) run() {
	if err := s.reply(&Reply{220, s.srv.cfg.Hostname + " ESMTP ready"}); err != nil {
		return
	}
	for {
		line, err := s.readLine()
		if err != nil {
			return
		}
		verb, args := splitVerb(line)
		switch verb {
		case "HELO":
			s.reset()
			s.helo = args
			err = s.reply(&Reply{250, s.srv.cfg.Hostname})
		case "EHLO":
			s.reset()
			s.helo = args
			err = s.replyLines(250,
				s.srv.cfg.Hostname+" greets you",
				"SIZE "+strconv.Itoa(s.srv.cfg.MaxMessageBytes),
				"PIPELINING",
				"8BITMIME",
			)
		case "MAIL":
			err = s.handleMail(args)
		case "RCPT":
			err = s.handleRcpt(args)
		case "DATA":
			err = s.handleData()
		case "RSET":
			s.reset()
			err = s.reply(replyOK)
		case "NOOP":
			err = s.reply(replyOK)
		case "VRFY":
			err = s.reply(replyCannotVerify)
		case "QUIT":
			_ = s.reply(replyBye)
			return
		default:
			err = s.reply(replyUnknown)
		}
		if err != nil {
			return
		}
	}
}

func (s *session) reset() {
	s.from = mail.Address{}
	s.gotFrom = false
	s.rcpts = nil
}

func splitVerb(line string) (verb, args string) {
	verb = line
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, args = line[:i], strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(verb), args
}

// parsePath extracts the address from "FROM:<a@b>" / "TO:<a@b>" syntax,
// tolerating the space variants real clients emit.
func parsePath(args, prefix string) (string, string, bool) {
	rest, ok := cutPrefixFold(args, prefix)
	if !ok {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	rest, ok = strings.CutPrefix(rest, ":")
	if !ok {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	// Parameters (e.g. SIZE=nnn) follow the path after a space.
	path, params, _ := strings.Cut(rest, " ")
	return path, params, true
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

func (s *session) handleMail(args string) error {
	if s.helo == "" {
		return s.reply(replyBadSequence)
	}
	if s.gotFrom {
		return s.reply(replyBadSequence)
	}
	path, params, ok := parsePath(args, "FROM")
	if !ok {
		return s.reply(replySyntax)
	}
	addr, err := mail.ParseAddress(path)
	if err != nil {
		return s.reply(replyMailboxSyntax)
	}
	if size, found := paramInt(params, "SIZE"); found && size > s.srv.cfg.MaxMessageBytes {
		return s.reply(replyTooBig)
	}
	if r := s.srv.backend.ValidateSender(addr); r != nil {
		return s.reply(r)
	}
	s.from = addr
	s.gotFrom = true
	return s.reply(replyOK)
}

func paramInt(params, key string) (int, bool) {
	for _, p := range strings.Fields(params) {
		k, v, ok := strings.Cut(p, "=")
		if ok && strings.EqualFold(k, key) {
			n, err := strconv.Atoi(v)
			if err == nil {
				return n, true
			}
		}
	}
	return 0, false
}

func (s *session) handleRcpt(args string) error {
	if !s.gotFrom {
		return s.reply(replyBadSequence)
	}
	if len(s.rcpts) >= s.srv.cfg.MaxRecipients {
		return s.reply(&Reply{452, "too many recipients"})
	}
	path, _, ok := parsePath(args, "TO")
	if !ok {
		return s.reply(replySyntax)
	}
	addr, err := mail.ParseAddress(path)
	if err != nil || addr.IsNull() {
		return s.reply(replyMailboxSyntax)
	}
	if r := s.srv.backend.ValidateRcpt(s.from, addr); r != nil {
		return s.reply(r)
	}
	s.rcpts = append(s.rcpts, addr)
	return s.reply(replyOK)
}

func (s *session) handleData() error {
	if !s.gotFrom {
		return s.reply(replyBadSequence)
	}
	if len(s.rcpts) == 0 {
		return s.reply(replyNoValidRcpts)
	}
	if err := s.reply(replyStartData); err != nil {
		return err
	}
	body, err := s.readData()
	if err != nil {
		if errors.Is(err, errTooBig) {
			// Drain until terminator already handled; report and reset.
			s.reset()
			return s.reply(replyTooBig)
		}
		return err
	}

	subject, headerFrom, autoSub := extractHeaders(body)
	base := &mail.Message{
		ID:            mail.NewID("smtp"),
		EnvelopeFrom:  s.from,
		HeaderFrom:    headerFrom,
		Subject:       subject,
		Size:          len(body),
		Body:          body,
		ClientIP:      s.remote,
		HeloDomain:    s.helo,
		AutoSubmitted: autoSub,
		Received:      s.srv.cfg.Now(),
	}
	var firstErr *Reply
	delivered := 0
	for _, rcpt := range s.rcpts {
		if r := s.srv.backend.Deliver(base.Clone(rcpt)); r != nil {
			if firstErr == nil {
				firstErr = r
			}
			continue
		}
		delivered++
	}
	s.reset()
	if delivered == 0 && firstErr != nil {
		return s.reply(firstErr)
	}
	return s.reply(&Reply{250, fmt.Sprintf("OK, delivered to %d recipient(s)", delivered)})
}

var errTooBig = errors.New("smtp: message too large")

// readData consumes a dot-terminated DATA body, undoing dot-stuffing.
func (s *session) readData() (string, error) {
	var b strings.Builder
	for {
		line, err := s.readLine()
		if err != nil {
			return "", err
		}
		if line == "." {
			return b.String(), nil
		}
		if strings.HasPrefix(line, ".") {
			line = line[1:] // dot-unstuffing per RFC 5321 §4.5.2
		}
		if b.Len()+len(line)+2 > s.srv.cfg.MaxMessageBytes {
			// Keep consuming to the terminator so the session survives.
			for {
				l, err := s.readLine()
				if err != nil {
					return "", err
				}
				if l == "." {
					return "", errTooBig
				}
			}
		}
		b.WriteString(line)
		b.WriteString("\r\n")
	}
}

// extractHeaders pulls Subject, From and Auto-Submitted out of a raw
// message body. Auto-Submitted normalises "no" (and absence) to "" so
// consumers can treat any non-empty value as "this is automated mail".
func extractHeaders(body string) (subject string, headerFrom mail.Address, autoSubmitted string) {
	for _, line := range strings.Split(body, "\r\n") {
		if line == "" {
			break // end of headers
		}
		if v, ok := cutHeaderField(line, "Subject"); ok {
			subject = v
		}
		if v, ok := cutHeaderField(line, "From"); ok {
			if a, err := mail.ParseAddress(stripDisplayName(v)); err == nil {
				headerFrom = a
			}
		}
		if v, ok := cutHeaderField(line, "Auto-Submitted"); ok {
			v = strings.ToLower(strings.TrimSpace(v))
			if v != "no" {
				autoSubmitted = v
			}
		}
	}
	return subject, headerFrom, autoSubmitted
}

func cutHeaderField(line, name string) (string, bool) {
	rest, ok := cutPrefixFold(line, name)
	if !ok {
		return "", false
	}
	rest, ok = strings.CutPrefix(rest, ":")
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// stripDisplayName reduces `Name <a@b>` to `<a@b>`.
func stripDisplayName(v string) string {
	if i := strings.LastIndexByte(v, '<'); i >= 0 {
		if j := strings.IndexByte(v[i:], '>'); j > 0 {
			return v[i : i+j+1]
		}
	}
	return v
}
