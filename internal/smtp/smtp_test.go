package smtp

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mail"
)

// recordingBackend accepts everything unless programmed otherwise, and
// records deliveries.
type recordingBackend struct {
	mu         sync.Mutex
	delivered  []*mail.Message
	rejectFrom map[string]*Reply
	rejectRcpt map[string]*Reply
	deliverErr *Reply
}

func newBackend() *recordingBackend {
	return &recordingBackend{
		rejectFrom: make(map[string]*Reply),
		rejectRcpt: make(map[string]*Reply),
	}
}

func (b *recordingBackend) ValidateSender(from mail.Address) *Reply {
	return b.rejectFrom[from.Key()]
}

func (b *recordingBackend) ValidateRcpt(from, rcpt mail.Address) *Reply {
	return b.rejectRcpt[rcpt.Key()]
}

func (b *recordingBackend) Deliver(msg *mail.Message) *Reply {
	if b.deliverErr != nil {
		return b.deliverErr
	}
	b.mu.Lock()
	b.delivered = append(b.delivered, msg)
	b.mu.Unlock()
	return nil
}

func (b *recordingBackend) messages() []*mail.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*mail.Message, len(b.delivered))
	copy(out, b.delivered)
	return out
}

// startServer runs a Server on a random TCP port and returns its address.
func startServer(t *testing.T, backend Backend) (string, *Server) {
	t.Helper()
	srv := NewServer(Config{Hostname: "mta.corp.example", ReadTimeout: 5 * time.Second}, backend)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(srv.Close)
	return l.Addr().String(), srv
}

func dialOK(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Hello("client.example.com"); err != nil {
		t.Fatal(err)
	}
	return c
}

var (
	alice = mail.MustParseAddress("alice@example.com")
	bob   = mail.MustParseAddress("bob@corp.example")
)

func TestFullTransaction(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)

	body := BuildMessage(alice, bob, "hello bob this is a real subject", "Hi Bob,\r\nLunch?\r\n")
	if err := c.SendMail(alice, []mail.Address{bob}, body); err != nil {
		t.Fatal(err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}

	msgs := b.messages()
	if len(msgs) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m.EnvelopeFrom != alice || m.Rcpt != bob {
		t.Fatalf("envelope = %v -> %v", m.EnvelopeFrom, m.Rcpt)
	}
	if m.Subject != "hello bob this is a real subject" {
		t.Fatalf("subject = %q", m.Subject)
	}
	if m.HeaderFrom != alice {
		t.Fatalf("header From = %v", m.HeaderFrom)
	}
	if m.ClientIP != "127.0.0.1" {
		t.Fatalf("client IP = %q", m.ClientIP)
	}
	if m.HeloDomain != "client.example.com" {
		t.Fatalf("helo = %q", m.HeloDomain)
	}
	if m.Size != len(m.Body) || m.Size == 0 {
		t.Fatalf("size = %d, body = %d", m.Size, len(m.Body))
	}
}

func TestMultipleRecipients(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	carol := mail.MustParseAddress("carol@corp.example")

	if err := c.SendMail(alice, []mail.Address{bob, carol}, "Subject: multi rcpt\r\n\r\nbody"); err != nil {
		t.Fatal(err)
	}
	msgs := b.messages()
	if len(msgs) != 2 {
		t.Fatalf("delivered %d, want 2 (one per recipient)", len(msgs))
	}
	if msgs[0].Rcpt == msgs[1].Rcpt {
		t.Fatal("both deliveries to same recipient")
	}
	if msgs[0].ID != msgs[1].ID {
		t.Fatal("per-recipient clones must share the message ID")
	}
}

func TestEHLOExtensions(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	if _, ok := c.Extension("SIZE"); !ok {
		t.Fatal("SIZE not advertised")
	}
	if _, ok := c.Extension("pipelining"); !ok {
		t.Fatal("extension lookup must be case-insensitive")
	}
}

func TestNullSender(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	if err := c.SendMail(mail.Null, []mail.Address{bob}, "Subject: DSN\r\n\r\nbounce"); err != nil {
		t.Fatal(err)
	}
	msgs := b.messages()
	if len(msgs) != 1 || !msgs[0].EnvelopeFrom.IsNull() {
		t.Fatalf("null sender mishandled: %+v", msgs)
	}
}

func TestRejectedSender(t *testing.T) {
	b := newBackend()
	b.rejectFrom[alice.Key()] = &Reply{550, "sender rejected"}
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	err := c.Mail(alice)
	if err == nil {
		t.Fatal("rejected sender accepted")
	}
	r, ok := err.(*Reply)
	if !ok || r.Code != 550 {
		t.Fatalf("err = %v, want 550 Reply", err)
	}
}

func TestRejectedRecipientDoesNotAbortTransaction(t *testing.T) {
	b := newBackend()
	ghost := mail.MustParseAddress("ghost@corp.example")
	b.rejectRcpt[ghost.Key()] = &Reply{550, "no such user"}
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)

	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt(ghost); err == nil {
		t.Fatal("unknown recipient accepted")
	}
	// A valid recipient afterwards still works.
	if err := c.Rcpt(bob); err != nil {
		t.Fatalf("valid recipient after rejection: %v", err)
	}
	if err := c.Data("Subject: x\r\n\r\nhello"); err != nil {
		t.Fatal(err)
	}
	if len(b.messages()) != 1 {
		t.Fatal("message not delivered to surviving recipient")
	}
}

func TestMalformedAddressGets553(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
	_, err := c.cmd(250, "RCPT TO:<not an address>")
	r, ok := err.(*Reply)
	if !ok || r.Code != 553 {
		t.Fatalf("malformed rcpt reply = %v, want 553", err)
	}
}

func TestCommandSequencing(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// MAIL before HELO: 503.
	if _, err := c.cmd(250, "MAIL FROM:<a@b.example>"); err == nil {
		t.Fatal("MAIL before HELO accepted")
	}
	if err := c.Hello("x.example.com"); err != nil {
		t.Fatal(err)
	}
	// RCPT before MAIL: 503.
	if _, err := c.cmd(250, "RCPT TO:<bob@corp.example>"); err == nil {
		t.Fatal("RCPT before MAIL accepted")
	}
	// DATA with no recipients: 554.
	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
	_, err = c.cmd(354, "DATA")
	r, ok := err.(*Reply)
	if !ok || r.Code != 554 {
		t.Fatalf("DATA w/o rcpt = %v, want 554", err)
	}
	// Duplicate MAIL: 503.
	if err := c.Mail(alice); err == nil {
		t.Fatal("second MAIL accepted")
	}
}

func TestRSETClearsTransaction(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt(bob); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	// After RSET, MAIL is legal again.
	if err := c.Mail(alice); err != nil {
		t.Fatalf("MAIL after RSET: %v", err)
	}
}

func TestUnknownCommandAndNoopVrfy(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	if _, err := c.cmd(0, "FROBNICATE"); err != nil {
		t.Fatal(err)
	}
	r, _ := c.cmd(0, "NOOP")
	if r.Code != 250 {
		t.Fatalf("NOOP = %d", r.Code)
	}
	r, _ = c.cmd(0, "VRFY bob")
	if r.Code != 252 {
		t.Fatalf("VRFY = %d", r.Code)
	}
}

func TestDotStuffingRoundTrip(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	body := "Subject: dots\r\n\r\n.leading dot line\r\n..double\r\nnormal\r\n"
	if err := c.SendMail(alice, []mail.Address{bob}, body); err != nil {
		t.Fatal(err)
	}
	msgs := b.messages()
	if len(msgs) != 1 {
		t.Fatal("no delivery")
	}
	if !strings.Contains(msgs[0].Body, "\r\n.leading dot line\r\n") {
		t.Fatalf("dot-unstuffing failed:\n%q", msgs[0].Body)
	}
	if !strings.Contains(msgs[0].Body, "\r\n..double\r\n") {
		t.Fatalf("double-dot handling failed:\n%q", msgs[0].Body)
	}
}

func TestMessageTooLarge(t *testing.T) {
	b := newBackend()
	srv := NewServer(Config{Hostname: "mta", MaxMessageBytes: 100, ReadTimeout: 5 * time.Second}, b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	c := dialOK(t, l.Addr().String())
	big := strings.Repeat("a", 50)
	err = c.SendMail(alice, []mail.Address{bob}, big+"\r\n"+big+"\r\n"+big)
	r, ok := err.(*Reply)
	if !ok || r.Code != 552 {
		t.Fatalf("oversize err = %v, want 552", err)
	}
	// Session survives: new transaction works.
	if err := c.SendMail(alice, []mail.Address{bob}, "Subject: ok\r\n\r\nsmall"); err != nil {
		t.Fatalf("session dead after 552: %v", err)
	}
	if len(b.messages()) != 1 {
		t.Fatal("small follow-up not delivered")
	}
}

func TestSizeParameterRejectedEarly(t *testing.T) {
	b := newBackend()
	srv := NewServer(Config{Hostname: "mta", MaxMessageBytes: 1000, ReadTimeout: 5 * time.Second}, b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()
	c := dialOK(t, l.Addr().String())
	_, err = c.cmd(250, "MAIL FROM:<alice@example.com> SIZE=50000")
	r, ok := err.(*Reply)
	if !ok || r.Code != 552 {
		t.Fatalf("SIZE reject = %v, want 552", err)
	}
}

func TestDeliverFailureReported(t *testing.T) {
	b := newBackend()
	b.deliverErr = &Reply{451, "try again later"}
	addr, _ := startServer(t, b)
	c := dialOK(t, addr)
	err := c.SendMail(alice, []mail.Address{bob}, "Subject: x\r\n\r\nbody")
	r, ok := err.(*Reply)
	if !ok || r.Code != 451 || !r.Temporary() {
		t.Fatalf("deliver failure = %v, want temporary 451", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if err := c.Hello("x.example.com"); err != nil {
				t.Error(err)
				return
			}
			if err := c.SendMail(alice, []mail.Address{bob}, "Subject: c\r\n\r\nbody"); err != nil {
				t.Error(err)
			}
			c.Quit() //nolint:errcheck
		}()
	}
	wg.Wait()
	if len(b.messages()) != 8 {
		t.Fatalf("delivered %d, want 8", len(b.messages()))
	}
}

func TestHELOFallback(t *testing.T) {
	b := newBackend()
	addr, _ := startServer(t, b)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Plain HELO must work too.
	if _, err := c.cmd(250, "HELO legacy.example.com"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail(alice); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseStopsServing(t *testing.T) {
	b := newBackend()
	addr, srv := startServer(t, b)
	srv.Close()
	time.Sleep(10 * time.Millisecond)
	if _, err := Dial(addr, 300*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

func TestStripDisplayName(t *testing.T) {
	cases := map[string]string{
		"Alice Doe <alice@example.com>": "<alice@example.com>",
		"<alice@example.com>":           "<alice@example.com>",
		"alice@example.com":             "alice@example.com",
	}
	for in, want := range cases {
		if got := stripDisplayName(in); got != want {
			t.Errorf("stripDisplayName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBuildMessage(t *testing.T) {
	body := BuildMessage(alice, bob, "greetings", "hello")
	for _, want := range []string{"From: alice@example.com", "To: bob@corp.example", "Subject: greetings", "hello"} {
		if !strings.Contains(body, want) {
			t.Fatalf("BuildMessage missing %q:\n%s", want, body)
		}
	}
}

func BenchmarkTransactionOverTCP(b *testing.B) {
	backend := newBackend()
	srv := NewServer(Config{Hostname: "mta", ReadTimeout: 5 * time.Second}, backend)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	c, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("bench.example.com"); err != nil {
		b.Fatal(err)
	}
	body := BuildMessage(alice, bob, "bench", strings.Repeat("x", 1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendMail(alice, []mail.Address{bob}, body); err != nil {
			b.Fatal(err)
		}
	}
}

func TestShutdownWaitsForInFlightSession(t *testing.T) {
	b := newBackend()
	addr, srv := startServer(t, b)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("client.example.com"); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	// The listener closes promptly: new connections are refused while
	// the in-flight session keeps working.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c2, err := Dial(addr, 200*time.Millisecond)
		if err != nil {
			break
		}
		// Raced an accept that got the 421 greeting; try again.
		c2.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The in-flight session completes a full transaction mid-drain.
	from := mail.MustParseAddress("alice@example.com")
	to := mail.MustParseAddress("bob@corp.example")
	if err := c.SendMail(from, []mail.Address{to}, BuildMessage(from, to, "subject", "body")); err != nil {
		t.Fatalf("in-flight transaction failed during drain: %v", err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
	if clean := <-done; !clean {
		t.Fatal("Shutdown force-closed despite session ending")
	}
	if got := len(b.messages()); got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
}

func TestShutdownForceClosesAfterTimeout(t *testing.T) {
	b := newBackend()
	addr, srv := startServer(t, b)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("client.example.com"); err != nil {
		t.Fatal(err)
	}
	// The session idles past the timeout: Shutdown reports force-close.
	if clean := srv.Shutdown(100 * time.Millisecond); clean {
		t.Fatal("Shutdown reported clean drain with a lingering session")
	}
}
