// Package spf implements a Sender Policy Framework (RFC 4408) evaluator.
//
// §5.2 of the paper runs an offline what-if: would adding an SPF check to
// the CR product's filter chain reduce the number of misdirected challenges?
// (Their answer: it removes ~2.5% of "bad" challenges at the cost of 0.25%
// of the solved ones.) This package provides the evaluator used both by the
// optional SPF filter in internal/filters and by the offline experiment
// driver for Figure 12.
//
// The implemented subset covers the mechanisms the experiment needs:
// ip4 (with CIDR), a, mx, include, all, plus the redirect modifier and the
// four qualifiers (+ - ~ ?). Macros, ip6, ptr and exists are not
// implemented; policies using them evaluate to PermError, which the filter
// treats as "no usable policy" exactly as a conservative production
// deployment would.
package spf

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dnssim"
)

// Result is the outcome of an SPF check, per RFC 4408 §2.5.
type Result int

// SPF results.
const (
	// None: no SPF policy published for the domain.
	None Result = iota
	// Neutral: the policy explicitly takes no position ("?").
	Neutral
	// Pass: the client is authorized to send for the domain.
	Pass
	// Fail: the client is NOT authorized ("-"); mail should be rejected.
	Fail
	// SoftFail: probably not authorized ("~"); mark but do not reject.
	SoftFail
	// TempError: a DNS lookup failed transiently; retry later.
	TempError
	// PermError: the policy could not be interpreted.
	PermError
)

// String returns the RFC result name.
func (r Result) String() string {
	switch r {
	case None:
		return "None"
	case Neutral:
		return "Neutral"
	case Pass:
		return "Pass"
	case Fail:
		return "Fail"
	case SoftFail:
		return "SoftFail"
	case TempError:
		return "TempError"
	case PermError:
		return "PermError"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// maxDNSMechanisms caps the DNS-querying mechanisms evaluated per check,
// per RFC 4408 §10.1 (limit of 10), preventing include loops.
const maxDNSMechanisms = 10

var errLookupLimit = errors.New("spf: DNS mechanism limit exceeded")

// Checker evaluates SPF policies against a resolver.
type Checker struct {
	resolver dnssim.Resolver
}

// New returns a Checker using the given resolver.
func New(r dnssim.Resolver) *Checker {
	return &Checker{resolver: r}
}

// Check evaluates the SPF policy of domain for a connection from ip
// (dotted quad). It returns the RFC 4408 result.
func (c *Checker) Check(ip, domain string) Result {
	e := &eval{c: c}
	return e.checkHost(ip, domain)
}

type eval struct {
	c       *Checker
	queries int
}

func (e *eval) budget() error {
	e.queries++
	if e.queries > maxDNSMechanisms {
		return errLookupLimit
	}
	return nil
}

func (e *eval) checkHost(ip, domain string) Result {
	txts, err := e.c.resolver.LookupTXT(domain)
	if err != nil {
		switch {
		case dnssim.IsTemporary(err):
			return TempError
		default:
			return None // NXDOMAIN or no TXT record: no policy
		}
	}
	var record string
	for _, t := range txts {
		if t == "v=spf1" || strings.HasPrefix(t, "v=spf1 ") {
			if record != "" {
				return PermError // multiple SPF records
			}
			record = t
		}
	}
	if record == "" {
		return None
	}
	return e.evalRecord(ip, domain, record)
}

func (e *eval) evalRecord(ip, domain, record string) Result {
	terms := strings.Fields(record)[1:] // skip "v=spf1"
	redirect := ""
	for _, term := range terms {
		if rest, ok := cutModifier(term, "redirect"); ok {
			redirect = rest
			continue
		}
		if _, ok := cutModifier(term, "exp"); ok {
			continue // explanation strings are irrelevant to the verdict
		}
		qualifier, mech := splitQualifier(term)
		match, err := e.matchMechanism(ip, domain, mech)
		if err != nil {
			if dnssim.IsTemporary(err) {
				return TempError
			}
			return PermError
		}
		if match {
			return qualifier
		}
	}
	if redirect != "" {
		if err := e.budget(); err != nil {
			return PermError
		}
		r := e.checkHost(ip, redirect)
		if r == None {
			return PermError // RFC 4408 §6.1
		}
		return r
	}
	return Neutral // no mechanism matched, no redirect
}

// cutModifier returns the value of "name=value" if term is that modifier.
func cutModifier(term, name string) (string, bool) {
	if strings.HasPrefix(term, name+"=") {
		return term[len(name)+1:], true
	}
	return "", false
}

func splitQualifier(term string) (Result, string) {
	if term == "" {
		return Neutral, term
	}
	switch term[0] {
	case '+':
		return Pass, term[1:]
	case '-':
		return Fail, term[1:]
	case '~':
		return SoftFail, term[1:]
	case '?':
		return Neutral, term[1:]
	default:
		return Pass, term
	}
}

func (e *eval) matchMechanism(ip, domain, mech string) (bool, error) {
	name, arg := mech, ""
	if i := strings.IndexAny(mech, ":"); i >= 0 {
		name, arg = mech[:i], mech[i+1:]
	}
	// a/24 style: CIDR suffix on a or mx without explicit domain.
	cidr := -1
	if j := strings.IndexByte(name, '/'); j >= 0 {
		var err error
		cidr, err = strconv.Atoi(name[j+1:])
		if err != nil {
			return false, fmt.Errorf("spf: bad CIDR in %q", mech)
		}
		name = name[:j]
	}
	if arg != "" {
		if j := strings.IndexByte(arg, '/'); j >= 0 {
			var err error
			cidr, err = strconv.Atoi(arg[j+1:])
			if err != nil {
				return false, fmt.Errorf("spf: bad CIDR in %q", mech)
			}
			arg = arg[:j]
		}
	}
	switch strings.ToLower(name) {
	case "all":
		return true, nil
	case "ip4":
		if arg == "" {
			return false, fmt.Errorf("spf: ip4 without address in %q", mech)
		}
		return ip4Match(ip, arg, cidr)
	case "a":
		target := domain
		if arg != "" {
			target = arg
		}
		if err := e.budget(); err != nil {
			return false, err
		}
		ips, err := e.c.resolver.LookupA(target)
		if err != nil {
			if dnssim.IsTemporary(err) {
				return false, err
			}
			return false, nil // NXDOMAIN / no record: mechanism simply does not match
		}
		for _, a := range ips {
			ok, err := ip4Match(ip, a, cidr)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case "mx":
		target := domain
		if arg != "" {
			target = arg
		}
		if err := e.budget(); err != nil {
			return false, err
		}
		mxs, err := e.c.resolver.LookupMX(target)
		if err != nil {
			if dnssim.IsTemporary(err) {
				return false, err
			}
			return false, nil
		}
		for _, mx := range mxs {
			ips, err := e.c.resolver.LookupA(mx.Host)
			if err != nil {
				if dnssim.IsTemporary(err) {
					return false, err
				}
				continue
			}
			for _, a := range ips {
				ok, err := ip4Match(ip, a, cidr)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
		}
		return false, nil
	case "include":
		if arg == "" {
			return false, fmt.Errorf("spf: include without domain in %q", mech)
		}
		if err := e.budget(); err != nil {
			return false, err
		}
		switch e.checkHost(ip, arg) {
		case Pass:
			return true, nil
		case Fail, SoftFail, Neutral:
			return false, nil
		case TempError:
			return false, fmt.Errorf("%w: include %s", dnssim.ErrTimeout, arg)
		default: // None, PermError
			return false, fmt.Errorf("spf: include %s has no usable policy", arg)
		}
	case "ip6", "ptr", "exists":
		return false, fmt.Errorf("spf: mechanism %q not supported", name)
	default:
		return false, fmt.Errorf("spf: unknown mechanism %q", name)
	}
}

// ip4Match reports whether ip falls within net/cidr. cidr < 0 means /32.
func ip4Match(ip, network string, cidr int) (bool, error) {
	a, err := parseIPv4(ip)
	if err != nil {
		return false, err
	}
	n, err := parseIPv4(network)
	if err != nil {
		return false, err
	}
	if cidr < 0 {
		cidr = 32
	}
	if cidr > 32 {
		return false, fmt.Errorf("spf: CIDR /%d out of range", cidr)
	}
	if cidr == 0 {
		return true, nil
	}
	mask := ^uint32(0) << (32 - uint(cidr))
	return a&mask == n&mask, nil
}

// parseIPv4 converts a dotted quad to a uint32 without net.ParseIP, so the
// package stays allocation-light on the hot filter path.
func parseIPv4(s string) (uint32, error) {
	var v uint32
	part := 0
	val := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if val < 0 || val > 255 || part > 3 {
				return 0, fmt.Errorf("spf: bad IPv4 %q", s)
			}
			v = v<<8 | uint32(val)
			val = -1
			part++
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("spf: bad IPv4 %q", s)
		}
		if val < 0 {
			val = 0
		}
		val = val*10 + int(c-'0')
		if val > 255 {
			return 0, fmt.Errorf("spf: bad IPv4 %q", s)
		}
	}
	if part != 4 {
		return 0, fmt.Errorf("spf: bad IPv4 %q", s)
	}
	return v, nil
}
