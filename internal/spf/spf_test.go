package spf

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dnssim"
)

func newEnv() (*dnssim.Server, *Checker) {
	dns := dnssim.NewServer()
	return dns, New(dns)
}

func TestNoPolicy(t *testing.T) {
	dns, c := newEnv()
	dns.AddA("nopolicy.example", "192.0.2.1")
	if r := c.Check("192.0.2.1", "nopolicy.example"); r != None {
		t.Fatalf("no TXT: %v, want None", r)
	}
	if r := c.Check("192.0.2.1", "nxdomain.example"); r != None {
		t.Fatalf("NXDOMAIN: %v, want None", r)
	}
}

func TestNonSPFTXTIgnored(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "google-site-verification=abc")
	if r := c.Check("192.0.2.1", "example.com"); r != None {
		t.Fatalf("non-SPF TXT: %v, want None", r)
	}
}

func TestIP4Mechanism(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ip4:192.0.2.0/24 -all")
	if r := c.Check("192.0.2.55", "example.com"); r != Pass {
		t.Fatalf("in-range: %v, want Pass", r)
	}
	if r := c.Check("198.51.100.1", "example.com"); r != Fail {
		t.Fatalf("out-of-range: %v, want Fail", r)
	}
}

func TestIP4SingleHost(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ip4:192.0.2.7 -all")
	if r := c.Check("192.0.2.7", "example.com"); r != Pass {
		t.Fatalf("exact IP: %v, want Pass", r)
	}
	if r := c.Check("192.0.2.8", "example.com"); r != Fail {
		t.Fatalf("other IP: %v, want Fail", r)
	}
}

func TestAMechanism(t *testing.T) {
	dns, c := newEnv()
	dns.AddA("example.com", "192.0.2.10")
	dns.AddTXT("example.com", "v=spf1 a -all")
	if r := c.Check("192.0.2.10", "example.com"); r != Pass {
		t.Fatalf("a match: %v, want Pass", r)
	}
	if r := c.Check("192.0.2.11", "example.com"); r != Fail {
		t.Fatalf("a miss: %v, want Fail", r)
	}
}

func TestAMechanismWithDomainAndCIDR(t *testing.T) {
	dns, c := newEnv()
	dns.AddA("senders.example.net", "203.0.113.0")
	dns.AddTXT("example.com", "v=spf1 a:senders.example.net/24 -all")
	if r := c.Check("203.0.113.99", "example.com"); r != Pass {
		t.Fatalf("a:domain/cidr: %v, want Pass", r)
	}
}

func TestMXMechanism(t *testing.T) {
	dns, c := newEnv()
	dns.AddMX("example.com", "mail.example.com", 10)
	dns.AddA("mail.example.com", "192.0.2.25")
	dns.AddTXT("example.com", "v=spf1 mx -all")
	if r := c.Check("192.0.2.25", "example.com"); r != Pass {
		t.Fatalf("mx match: %v, want Pass", r)
	}
	if r := c.Check("192.0.2.26", "example.com"); r != Fail {
		t.Fatalf("mx miss: %v, want Fail", r)
	}
}

func TestInclude(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("spf.mailprovider.example", "v=spf1 ip4:198.51.100.0/24 -all")
	dns.AddTXT("example.com", "v=spf1 include:spf.mailprovider.example -all")
	if r := c.Check("198.51.100.9", "example.com"); r != Pass {
		t.Fatalf("include pass: %v, want Pass", r)
	}
	// include that fails does NOT cause Fail — it just doesn't match.
	if r := c.Check("192.0.2.1", "example.com"); r != Fail {
		t.Fatalf("include miss then -all: %v, want Fail", r)
	}
}

func TestIncludeWithoutPolicyIsPermError(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 include:ghost.example -all")
	if r := c.Check("192.0.2.1", "example.com"); r != PermError {
		t.Fatalf("include of policy-less domain: %v, want PermError", r)
	}
}

func TestQualifiers(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("soft.example", "v=spf1 ~all")
	dns.AddTXT("neutral.example", "v=spf1 ?all")
	dns.AddTXT("plus.example", "v=spf1 +ip4:10.0.0.1 -all")
	if r := c.Check("192.0.2.1", "soft.example"); r != SoftFail {
		t.Fatalf("~all: %v, want SoftFail", r)
	}
	if r := c.Check("192.0.2.1", "neutral.example"); r != Neutral {
		t.Fatalf("?all: %v, want Neutral", r)
	}
	if r := c.Check("10.0.0.1", "plus.example"); r != Pass {
		t.Fatalf("+ip4: %v, want Pass", r)
	}
}

func TestNoMatchNoAllIsNeutral(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ip4:10.0.0.0/8")
	if r := c.Check("192.0.2.1", "example.com"); r != Neutral {
		t.Fatalf("fall-off-end: %v, want Neutral", r)
	}
}

func TestRedirect(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("alias.example", "v=spf1 redirect=real.example")
	dns.AddTXT("real.example", "v=spf1 ip4:192.0.2.0/24 -all")
	if r := c.Check("192.0.2.3", "alias.example"); r != Pass {
		t.Fatalf("redirect pass: %v, want Pass", r)
	}
	if r := c.Check("10.0.0.1", "alias.example"); r != Fail {
		t.Fatalf("redirect fail: %v, want Fail", r)
	}
	// Redirect to a domain without a policy is PermError.
	dns.AddTXT("badalias.example", "v=spf1 redirect=ghost.example")
	if r := c.Check("10.0.0.1", "badalias.example"); r != PermError {
		t.Fatalf("redirect to no-policy: %v, want PermError", r)
	}
}

func TestTempError(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 -all")
	dns.FailDomain("example.com", dnssim.ErrTimeout)
	if r := c.Check("192.0.2.1", "example.com"); r != TempError {
		t.Fatalf("timeout: %v, want TempError", r)
	}
}

func TestTempErrorInsideMechanism(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 a:flaky.example -all")
	dns.AddA("flaky.example", "192.0.2.1")
	dns.FailDomain("flaky.example", dnssim.ErrTimeout)
	if r := c.Check("192.0.2.1", "example.com"); r != TempError {
		t.Fatalf("timeout in mechanism: %v, want TempError", r)
	}
}

func TestMultipleSPFRecordsIsPermError(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 -all")
	dns.AddTXT("example.com", "v=spf1 +all")
	if r := c.Check("192.0.2.1", "example.com"); r != PermError {
		t.Fatalf("duplicate records: %v, want PermError", r)
	}
}

func TestUnsupportedMechanismIsPermError(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ptr -all")
	if r := c.Check("192.0.2.1", "example.com"); r != PermError {
		t.Fatalf("ptr mechanism: %v, want PermError", r)
	}
	dns.AddTXT("other.example", "v=spf1 frobnicate:x -all")
	if r := c.Check("192.0.2.1", "other.example"); r != PermError {
		t.Fatalf("unknown mechanism: %v, want PermError", r)
	}
}

func TestIncludeLoopHitsLimit(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("a.example", "v=spf1 include:b.example -all")
	dns.AddTXT("b.example", "v=spf1 include:a.example -all")
	if r := c.Check("192.0.2.1", "a.example"); r != PermError {
		t.Fatalf("include loop: %v, want PermError", r)
	}
}

func TestExpModifierIgnored(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ip4:192.0.2.1 exp=why.example -all")
	if r := c.Check("192.0.2.1", "example.com"); r != Pass {
		t.Fatalf("with exp: %v, want Pass", r)
	}
}

func TestParseIPv4(t *testing.T) {
	good := map[string]uint32{
		"0.0.0.0":         0,
		"255.255.255.255": 0xFFFFFFFF,
		"192.0.2.1":       0xC0000201,
		"10.0.0.1":        0x0A000001,
	}
	for s, want := range good {
		got, err := parseIPv4(s)
		if err != nil || got != want {
			t.Errorf("parseIPv4(%q) = %x, %v; want %x", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4."} {
		if _, err := parseIPv4(bad); err == nil {
			t.Errorf("parseIPv4(%q) succeeded, want error", bad)
		}
	}
}

func TestIP4MatchCIDRBoundaries(t *testing.T) {
	cases := []struct {
		ip, net string
		cidr    int
		want    bool
	}{
		{"192.0.2.255", "192.0.2.0", 24, true},
		{"192.0.3.0", "192.0.2.0", 24, false},
		{"10.200.1.1", "10.0.0.0", 8, true},
		{"11.0.0.0", "10.0.0.0", 8, false},
		{"1.2.3.4", "9.9.9.9", 0, true}, // /0 matches everything
		{"1.2.3.4", "1.2.3.4", -1, true},
		{"1.2.3.5", "1.2.3.4", -1, false},
	}
	for _, c := range cases {
		got, err := ip4Match(c.ip, c.net, c.cidr)
		if err != nil || got != c.want {
			t.Errorf("ip4Match(%s, %s/%d) = %v, %v; want %v", c.ip, c.net, c.cidr, got, err, c.want)
		}
	}
	if _, err := ip4Match("1.2.3.4", "1.2.3.0", 33); err == nil {
		t.Error("cidr /33 accepted")
	}
}

func TestResultString(t *testing.T) {
	for r, s := range map[Result]string{
		None: "None", Neutral: "Neutral", Pass: "Pass", Fail: "Fail",
		SoftFail: "SoftFail", TempError: "TempError", PermError: "PermError",
	} {
		if r.String() != s {
			t.Errorf("Result(%d).String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if got := Result(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown Result String = %q", got)
	}
}

// Property: evaluation is deterministic and always yields a defined result.
func TestCheckDeterministicProperty(t *testing.T) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ip4:192.0.2.0/24 ~all")
	f := func(a, b, cc, d uint8) bool {
		ip := itoa(a) + "." + itoa(b) + "." + itoa(cc) + "." + itoa(d)
		r1 := c.Check(ip, "example.com")
		r2 := c.Check(ip, "example.com")
		if r1 != r2 {
			return false
		}
		return r1 == Pass || r1 == SoftFail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v uint8) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b [3]byte
	i := 3
	for v > 0 {
		i--
		b[i] = digits[v%10]
		v /= 10
	}
	return string(b[i:])
}

func BenchmarkCheckIP4(b *testing.B) {
	dns, c := newEnv()
	dns.AddTXT("example.com", "v=spf1 ip4:192.0.2.0/24 ip4:198.51.100.0/24 -all")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Check("198.51.100.77", "example.com")
	}
}

func BenchmarkCheckInclude(b *testing.B) {
	dns, c := newEnv()
	dns.AddTXT("spf.provider.example", "v=spf1 ip4:203.0.113.0/24 -all")
	dns.AddTXT("example.com", "v=spf1 include:spf.provider.example -all")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Check("203.0.113.50", "example.com")
	}
}
